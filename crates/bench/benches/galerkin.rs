//! Galerkin assembly + eigensolve scaling — the cost the paper reports as
//! "eigenpair computation takes 11.2s, using Matlab" (one-time setup).
//! Also the quadrature-order ablation from DESIGN.md.

use klest_bench::microbench::{criterion_group, criterion_main, BenchmarkId, Criterion};
use klest_core::{assemble_galerkin, GalerkinKle, KleOptions, QuadratureRule};
use klest_geometry::Rect;
use klest_kernels::GaussianKernel;
use klest_mesh::{Mesh, MeshBuilder};
use std::hint::black_box;

fn mesh_with(max_area: f64) -> Mesh {
    MeshBuilder::new(Rect::unit_die())
        .max_area(max_area)
        .min_angle_degrees(28.0)
        .build()
        .expect("mesh builds")
}

fn bench_assembly(c: &mut Criterion) {
    let kernel = GaussianKernel::with_correlation_distance(1.0);
    let mut group = c.benchmark_group("galerkin_assembly");
    for max_area in [0.05, 0.02, 0.01] {
        let mesh = mesh_with(max_area);
        group.bench_with_input(
            BenchmarkId::new("centroid", mesh.len()),
            &mesh,
            |b, mesh| b.iter(|| black_box(assemble_galerkin(mesh, &kernel, QuadratureRule::Centroid))),
        );
    }
    // Quadrature ablation at fixed mesh size.
    let mesh = mesh_with(0.02);
    for (name, rule) in [
        ("3point", QuadratureRule::ThreePoint),
        ("7point", QuadratureRule::SevenPoint),
    ] {
        group.bench_with_input(BenchmarkId::new(name, mesh.len()), &mesh, |b, mesh| {
            b.iter(|| black_box(assemble_galerkin(mesh, &kernel, rule)))
        });
    }
    group.finish();
}

fn bench_eigensolve(c: &mut Criterion) {
    let kernel = GaussianKernel::with_correlation_distance(1.0);
    let mut group = c.benchmark_group("galerkin_eigensolve");
    group.sample_size(10);
    for max_area in [0.05, 0.02, 0.01] {
        let mesh = mesh_with(max_area);
        let k = assemble_galerkin(&mesh, &kernel, QuadratureRule::Centroid);
        group.bench_with_input(BenchmarkId::from_parameter(mesh.len()), &mesh, |b, mesh| {
            b.iter(|| {
                black_box(
                    GalerkinKle::from_matrix(k.clone(), mesh, KleOptions::default())
                        .expect("solves"),
                )
            })
        });
    }
    group.finish();
}

fn bench_solver_ablation(c: &mut Criterion) {
    // Full O(n³) QL vs Lanczos partial solve for the 200 leading pairs —
    // the paper's "compute only the first 200" situation.
    use klest_core::EigenSolver;
    let kernel = GaussianKernel::with_correlation_distance(1.0);
    let mesh = mesh_with(0.01);
    let k = assemble_galerkin(&mesh, &kernel, QuadratureRule::Centroid);
    let mut group = c.benchmark_group("eigensolver_ablation");
    group.sample_size(10);
    group.bench_with_input(BenchmarkId::new("full_ql", mesh.len()), &mesh, |b, mesh| {
        b.iter(|| {
            black_box(
                GalerkinKle::from_matrix(k.clone(), mesh, KleOptions::default()).expect("solves"),
            )
        })
    });
    let lanczos = KleOptions {
        solver: EigenSolver::Lanczos,
        max_eigenpairs: 50,
        ..KleOptions::default()
    };
    group.bench_with_input(
        BenchmarkId::new("lanczos_50", mesh.len()),
        &mesh,
        |b, mesh| {
            b.iter(|| {
                black_box(GalerkinKle::from_matrix(k.clone(), mesh, lanczos).expect("solves"))
            })
        },
    );
    group.finish();
}

criterion_group!(benches, bench_assembly, bench_eigensolve, bench_solver_ablation);
criterion_main!(benches);
