//! Kernel and special-function evaluation throughput: the Galerkin
//! assembly makes O(n²) kernel calls, so per-call cost matters for the
//! Bessel-family kernels of eq. (6).

use klest_bench::microbench::{criterion_group, criterion_main, Criterion};
use klest_geometry::Point2;
use klest_kernels::special::{bessel_k, gamma};
use klest_kernels::{
    CovarianceKernel, ExponentialKernel, GaussianKernel, MaternKernel,
    SeparableExponentialKernel,
};
use std::hint::black_box;

fn pair_cloud() -> Vec<(Point2, Point2)> {
    (0..256)
        .map(|i| {
            let t = i as f64 / 256.0;
            (
                Point2::new(-1.0 + 2.0 * (t * 13.0).fract(), -1.0 + 2.0 * (t * 29.0).fract()),
                Point2::new(-1.0 + 2.0 * (t * 47.0).fract(), -1.0 + 2.0 * (t * 71.0).fract()),
            )
        })
        .collect()
}

fn bench_kernels(c: &mut Criterion) {
    let pairs = pair_cloud();
    let mut group = c.benchmark_group("kernel_eval_256_pairs");
    let gaussian = GaussianKernel::new(2.8);
    let exponential = ExponentialKernel::new(2.0);
    let separable = SeparableExponentialKernel::new(1.5);
    let matern = MaternKernel::new(3.0, 2.5).expect("valid");
    group.bench_function("gaussian", |b| {
        b.iter(|| {
            let s: f64 = pairs.iter().map(|&(x, y)| gaussian.eval(x, y)).sum();
            black_box(s)
        })
    });
    group.bench_function("exponential", |b| {
        b.iter(|| {
            let s: f64 = pairs.iter().map(|&(x, y)| exponential.eval(x, y)).sum();
            black_box(s)
        })
    });
    group.bench_function("separable_exponential", |b| {
        b.iter(|| {
            let s: f64 = pairs.iter().map(|&(x, y)| separable.eval(x, y)).sum();
            black_box(s)
        })
    });
    group.bench_function("matern_bessel", |b| {
        b.iter(|| {
            let s: f64 = pairs.iter().map(|&(x, y)| matern.eval(x, y)).sum();
            black_box(s)
        })
    });
    group.finish();
}

fn bench_special_functions(c: &mut Criterion) {
    let mut group = c.benchmark_group("special_functions");
    group.bench_function("bessel_k_small_arg", |b| {
        b.iter(|| black_box(bessel_k(1.5, 0.8).expect("valid")))
    });
    group.bench_function("bessel_k_large_arg", |b| {
        b.iter(|| black_box(bessel_k(1.5, 8.0).expect("valid")))
    });
    group.bench_function("gamma", |b| b.iter(|| black_box(gamma(2.5))));
    group.finish();
}

criterion_group!(benches, bench_kernels, bench_special_functions);
criterion_main!(benches);
