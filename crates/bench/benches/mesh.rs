//! Meshing and point-location costs, including the grid-vs-linear
//! `IndexOfContainingTriangle` ablation the paper alludes to
//! ("can be made efficient using some space indexing scheme").

use klest_bench::microbench::{criterion_group, criterion_main, BenchmarkId, Criterion};
use klest_geometry::{Point2, Rect};
use klest_mesh::MeshBuilder;
use std::hint::black_box;

fn bench_refinement(c: &mut Criterion) {
    let mut group = c.benchmark_group("mesh_refinement");
    group.sample_size(10);
    for max_area in [0.05f64, 0.01, 0.004] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("area_{max_area}")),
            &max_area,
            |b, &a| {
                b.iter(|| {
                    black_box(
                        MeshBuilder::new(Rect::unit_die())
                            .max_area(a)
                            .min_angle_degrees(28.0)
                            .build()
                            .expect("mesh"),
                    )
                })
            },
        );
    }
    group.finish();
}

fn bench_point_location(c: &mut Criterion) {
    let mesh = MeshBuilder::new(Rect::unit_die())
        .max_area_fraction(0.001)
        .min_angle_degrees(28.0)
        .build()
        .expect("paper mesh");
    let locator = mesh.locator();
    // Deterministic query cloud.
    let queries: Vec<Point2> = (0..1000)
        .map(|i| {
            let t = i as f64 / 1000.0;
            Point2::new(
                -0.99 + 1.98 * (t * 37.0).fract(),
                -0.99 + 1.98 * (t * 61.0).fract(),
            )
        })
        .collect();
    let mut group = c.benchmark_group("point_location_1k_queries");
    group.bench_function("grid_index", |b| {
        b.iter(|| {
            let mut acc = 0usize;
            for &q in &queries {
                acc += locator.locate(q).expect("inside");
            }
            black_box(acc)
        })
    });
    group.bench_function("linear_scan", |b| {
        b.iter(|| {
            let mut acc = 0usize;
            for &q in &queries {
                acc += mesh.locate_linear(q).expect("inside");
            }
            black_box(acc)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_refinement, bench_point_location);
criterion_main!(benches);
