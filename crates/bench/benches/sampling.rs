//! Per-sample generation cost: Algorithm 1 (Cholesky correlate, O(N_g²))
//! vs Algorithm 2 (KLE reconstruct + gather, O(n·r)) vs the beyond-paper
//! pre-gathered variant (O(N_g·r)) — the mechanism behind Table 1's
//! speedup column and its small-circuit slowdown.

use klest_bench::microbench::{criterion_group, criterion_main, BenchmarkId, Criterion};
use klest_circuit::{generate, GeneratorConfig, Placement};
use klest_core::{GalerkinKle, KleOptions};
use klest_geometry::Rect;
use klest_kernels::GaussianKernel;
use klest_mesh::MeshBuilder;
use klest_ssta::{CholeskySampler, GateFieldSampler, KleFieldSampler, NormalSource};
use klest_rng::{SeedableRng, StdRng};
use std::hint::black_box;

fn bench_generation(c: &mut Criterion) {
    let kernel = GaussianKernel::with_correlation_distance(1.0);
    let mesh = MeshBuilder::new(Rect::unit_die())
        .max_area_fraction(0.001)
        .min_angle_degrees(28.0)
        .build()
        .expect("paper mesh");
    let kle = GalerkinKle::compute(&mesh, &kernel, KleOptions::default()).expect("KLE");

    let mut group = c.benchmark_group("sample_generation");
    for gates in [200usize, 800, 2400] {
        let circuit = generate("bench", GeneratorConfig::combinational(gates, 1)).expect("gen");
        let placement = Placement::recursive_bisection(&circuit);
        let locs = placement.locations();
        let n = locs.len();

        let chol = CholeskySampler::new(&kernel, locs).expect("cholesky");
        let kle_paper = KleFieldSampler::new(&kle, &mesh, 25, locs).expect("kle");
        let kle_fused = KleFieldSampler::pregathered(&kle, &mesh, 25, locs).expect("kle");

        let mut buf = vec![0.0; n];
        group.bench_with_input(BenchmarkId::new("alg1_cholesky", gates), &(), |b, _| {
            let mut normals = NormalSource::new(StdRng::seed_from_u64(1));
            b.iter(|| {
                chol.sample_into(&mut normals, &mut buf);
                black_box(buf[0])
            })
        });
        group.bench_with_input(BenchmarkId::new("alg2_kle_paper", gates), &(), |b, _| {
            let mut normals = NormalSource::new(StdRng::seed_from_u64(1));
            b.iter(|| {
                kle_paper.sample_into(&mut normals, &mut buf);
                black_box(buf[0])
            })
        });
        group.bench_with_input(BenchmarkId::new("alg2_kle_pregathered", gates), &(), |b, _| {
            let mut normals = NormalSource::new(StdRng::seed_from_u64(1));
            b.iter(|| {
                kle_fused.sample_into(&mut normals, &mut buf);
                black_box(buf[0])
            })
        });
    }
    group.finish();
}

fn bench_setup(c: &mut Criterion) {
    // One-time setup: Cholesky factorisation (per circuit!) vs the KLE
    // gather (cheap; the eigensolve is shared across all circuits).
    let kernel = GaussianKernel::with_correlation_distance(1.0);
    let mut group = c.benchmark_group("sampler_setup");
    group.sample_size(10);
    for gates in [200usize, 800] {
        let circuit = generate("bench", GeneratorConfig::combinational(gates, 1)).expect("gen");
        let placement = Placement::recursive_bisection(&circuit);
        let locs = placement.locations().to_vec();
        group.bench_with_input(BenchmarkId::new("cholesky_factor", gates), &locs, |b, locs| {
            b.iter(|| black_box(CholeskySampler::new(&kernel, locs).expect("spd")))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_generation, bench_setup);
criterion_main!(benches);
