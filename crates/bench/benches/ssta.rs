//! Statistical-timing engine benches: the canonical one-pass SSTA vs a
//! single Monte Carlo iteration, and incremental vs full re-timing.

use klest_bench::microbench::{criterion_group, criterion_main, BenchmarkId, Criterion};
use klest_circuit::{generate, GeneratorConfig, NodeId, Placement, WireModel};
use klest_kernels::GaussianKernel;
use klest_ssta::canonical::analyze_canonical;
use klest_ssta::experiments::{CircuitSetup, KleContext};
use klest_ssta::{KleFieldSampler, NormalSource};
use klest_sta::{GateLibrary, IncrementalTimer, ParamVector, Timer};
use klest_rng::{SeedableRng, StdRng};
use std::hint::black_box;

fn bench_canonical(c: &mut Criterion) {
    let kernel = GaussianKernel::with_correlation_distance(1.0);
    let ctx = KleContext::coarse(&kernel).expect("ctx");
    let mut group = c.benchmark_group("canonical_ssta");
    group.sample_size(20);
    for gates in [200usize, 800] {
        let circuit = generate("b", GeneratorConfig::combinational(gates, 1)).expect("gen");
        let setup = CircuitSetup::prepare(&circuit);
        let sampler =
            KleFieldSampler::new(&ctx.kle, &ctx.mesh, ctx.rank, setup.locations()).expect("s");
        group.bench_with_input(BenchmarkId::new("one_pass", gates), &(), |b, _| {
            b.iter(|| black_box(analyze_canonical(&setup.timer, &sampler).expect("canonical")))
        });
        // The comparable MC unit: drawing 4 fields + one timing pass.
        let mut fields = vec![vec![0.0; setup.timer.node_count()]; 4];
        let mut params = vec![ParamVector::ZERO; setup.timer.node_count()];
        let mut arrivals = vec![0.0; setup.timer.node_count()];
        let mut slews = vec![0.0; setup.timer.node_count()];
        group.bench_with_input(BenchmarkId::new("one_mc_sample", gates), &(), |b, _| {
            let mut normals = NormalSource::new(StdRng::seed_from_u64(1));
            b.iter(|| {
                use klest_ssta::GateFieldSampler;
                for f in fields.iter_mut() {
                    sampler.sample_into(&mut normals, f);
                }
                for (i, p) in params.iter_mut().enumerate() {
                    *p = ParamVector::new([fields[0][i], fields[1][i], fields[2][i], fields[3][i]]);
                }
                black_box(setup.timer.analyze_into(&params, &mut arrivals, &mut slews))
            })
        });
    }
    group.finish();
}

fn bench_incremental(c: &mut Criterion) {
    let circuit = generate("inc", GeneratorConfig::combinational(3000, 2)).expect("gen");
    let placement = Placement::recursive_bisection(&circuit);
    let timer = Timer::new(
        &circuit,
        &placement,
        WireModel::default(),
        GateLibrary::default_90nm(),
    );
    let base = vec![ParamVector::ZERO; circuit.node_count()];
    let victim = NodeId((circuit.node_count() - 20) as u32);
    let perturbed = ParamVector::new([1.0, -0.5, 0.8, 0.2]);

    let mut group = c.benchmark_group("retiming_after_one_change");
    group.bench_function("full_reanalysis", |b| {
        let mut params = base.clone();
        params[victim.index()] = perturbed;
        let mut arrivals = vec![0.0; circuit.node_count()];
        let mut slews = vec![0.0; circuit.node_count()];
        b.iter(|| black_box(timer.analyze_into(&params, &mut arrivals, &mut slews)))
    });
    group.bench_function("incremental", |b| {
        let mut inc = IncrementalTimer::new(&timer, base.clone()).expect("sized params");
        let mut flip = false;
        b.iter(|| {
            // Alternate between perturbed and nominal so each iteration
            // does real work.
            let p = if flip { ParamVector::ZERO } else { perturbed };
            flip = !flip;
            black_box(inc.update(&[(victim, p)]).expect("in-range node"))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_canonical, bench_incremental);
criterion_main!(benches);
