//! Timer throughput: one STA sweep per Monte Carlo sample is the shared
//! cost of both algorithms; its scaling bounds the achievable speedup.

use klest_bench::microbench::{criterion_group, criterion_main, BenchmarkId, Criterion};
use klest_circuit::{generate, GeneratorConfig, Placement, WireModel};
use klest_sta::{GateLibrary, ParamVector, Timer};
use std::hint::black_box;

fn bench_timer(c: &mut Criterion) {
    let mut group = c.benchmark_group("sta_analyze");
    for gates in [200usize, 800, 3200] {
        let circuit = generate("sta", GeneratorConfig::combinational(gates, 2)).expect("gen");
        let placement = Placement::recursive_bisection(&circuit);
        let timer = Timer::new(
            &circuit,
            &placement,
            WireModel::default(),
            GateLibrary::default_90nm(),
        );
        let params = vec![ParamVector::new([0.3, -0.2, 0.5, 0.1]); circuit.node_count()];
        let mut arrivals = vec![0.0; circuit.node_count()];
        let mut slews = vec![0.0; circuit.node_count()];
        group.bench_with_input(BenchmarkId::from_parameter(gates), &(), |b, _| {
            b.iter(|| black_box(timer.analyze_into(&params, &mut arrivals, &mut slews)))
        });
    }
    group.finish();
}

fn bench_timer_setup(c: &mut Criterion) {
    let mut group = c.benchmark_group("sta_build");
    group.sample_size(20);
    let circuit = generate("sta", GeneratorConfig::combinational(2000, 2)).expect("gen");
    let placement = Placement::recursive_bisection(&circuit);
    group.bench_function("timer_2000_gates", |b| {
        b.iter(|| {
            black_box(Timer::new(
                &circuit,
                &placement,
                WireModel::default(),
                GateLibrary::default_90nm(),
            ))
        })
    });
    group.bench_function("placement_2000_gates", |b| {
        b.iter(|| black_box(Placement::recursive_bisection(&circuit)))
    });
    group.finish();
}

criterion_group!(benches, bench_timer, bench_timer_setup);
criterion_main!(benches);
