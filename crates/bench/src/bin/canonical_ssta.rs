//! Beyond-the-paper experiment the paper explicitly gestures at: using
//! the KLE's ~25 uncorrelated RVs as the parameter basis of an
//! *analytical* block-based SSTA ([5][6]) instead of Monte Carlo.
//! One Clark-propagation pass vs N timing passes — accuracy and cost
//! across the Table 1 circuits.
//!
//! ```text
//! cargo run --release -p klest-bench --bin canonical_ssta -- --samples 20000
//! ```

use klest_bench::{default_threads, print_table, Args};
use klest_circuit::{benchmark_scaled, TABLE1_BENCHMARKS};
use klest_kernels::GaussianKernel;
use klest_ssta::canonical::analyze_canonical;
use klest_ssta::experiments::{CircuitSetup, KleContext};
use klest_ssta::{run_monte_carlo, KleFieldSampler, McConfig};
use std::time::Instant;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args = Args::parse();
    let samples: usize = args.get("samples", 20_000);
    let scale: f64 = args.get("scale", 0.2);
    let seed: u64 = args.get("seed", 2008);
    let threads: usize = args.get("threads", default_threads());
    let count: usize = args.get("circuits", 8);
    let kernel = GaussianKernel::with_correlation_distance(args.get("dist", 1.0));
    let ctx = KleContext::paper_default(&kernel)?;
    eprintln!(
        "# canonical SSTA vs {samples}-sample KLE Monte Carlo (scale {scale}, rank {})",
        ctx.rank
    );

    let mut rows = Vec::new();
    for id in TABLE1_BENCHMARKS.iter().take(count) {
        let circuit = benchmark_scaled(*id, scale)?;
        let setup = CircuitSetup::prepare(&circuit);
        let sampler = KleFieldSampler::new(&ctx.kle, &ctx.mesh, ctx.rank, setup.locations())?;
        let mc = run_monte_carlo(
            &setup.timer,
            &sampler,
            &McConfig::new(samples, seed).with_threads(threads),
        )?;
        let mc_stats = mc.worst_delay_stats();
        let started = Instant::now();
        let canonical = analyze_canonical(&setup.timer, &sampler)?;
        let canonical_time = started.elapsed();
        let w = canonical.worst();
        let mean_err = 100.0 * (w.mean - mc_stats.mean).abs() / mc_stats.mean;
        let sigma_err = 100.0 * (w.sigma() - mc_stats.std_dev).abs() / mc_stats.std_dev;
        rows.push(vec![
            setup.name().to_string(),
            setup.gates().to_string(),
            format!("{mean_err:.3}"),
            format!("{sigma_err:.2}"),
            format!("{:.3}", mc.wall_time().as_secs_f64()),
            format!("{:.4}", canonical_time.as_secs_f64()),
            format!(
                "{:.0}",
                mc.wall_time().as_secs_f64() / canonical_time.as_secs_f64().max(1e-9)
            ),
        ]);
        eprintln!(
            "# {}: mean err {mean_err:.3}%, sigma err {sigma_err:.2}%, {:.0}x faster than MC",
            setup.name(),
            mc.wall_time().as_secs_f64() / canonical_time.as_secs_f64().max(1e-9)
        );
    }
    print_table(
        &["circuit", "Ng", "mean_err_%", "sigma_err_%", "mc_s", "canonical_s", "speedup"],
        &rows,
    );
    eprintln!("# errors contain linearisation + Clark-max approximations; the MC reference shares the KLE basis");
    Ok(())
}
