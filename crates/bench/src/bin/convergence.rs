//! Theorem 2 in numbers: eigenvalue error vs mesh size `h` for the
//! separable exponential kernel (analytic reference from [8]), with the
//! quadrature-order ablation.
//!
//! ```text
//! cargo run --release -p klest-bench --bin convergence
//! ```

use klest_bench::{print_table, Args};
use klest_core::analytic::separable_2d_eigenvalues;
use klest_core::convergence::eigenvalue_convergence;
use klest_core::QuadratureRule;
use klest_kernels::SeparableExponentialKernel;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args = Args::parse();
    let c: f64 = args.get("c", 1.0);
    let compare: usize = args.get("eigenvalues", 8);
    let kernel = SeparableExponentialKernel::new(c);
    let reference = separable_2d_eigenvalues(c, 1.0, compare);
    let ladder = [0.2, 0.1, 0.05, 0.02, 0.01, 0.005];

    let mut rows = Vec::new();
    for (name, rule) in [
        ("centroid", QuadratureRule::Centroid),
        ("3-point", QuadratureRule::ThreePoint),
        ("7-point", QuadratureRule::SevenPoint),
    ] {
        let study = eigenvalue_convergence(&kernel, &reference, &ladder, compare, rule)?;
        eprintln!("# {name}: observed order p = {:.2}", study.order);
        for p in &study.points {
            rows.push(vec![
                name.to_string(),
                p.triangles.to_string(),
                format!("{:.4}", p.h),
                format!("{:.3e}", p.error),
            ]);
        }
        rows.push(vec![
            name.to_string(),
            "-".into(),
            "order".into(),
            format!("{:.2}", study.order),
        ]);
    }
    print_table(&["rule", "n", "h", "max_rel_error"], &rows);
    eprintln!("# Theorem 2 guarantees linear (p >= 1) convergence for the centroid rule");
    Ok(())
}
