//! Exports visualization assets: the paper mesh, the first
//! eigenfunctions (Fig. 4's surfaces) and two sampled field outcomes
//! (Fig. 1(b)'s surfaces) as Wavefront OBJ files that open in any 3-D
//! viewer.
//!
//! ```text
//! cargo run --release -p klest-bench --bin export_fields -- --out results
//! ```

use klest_bench::Args;
use klest_core::{GalerkinKle, KleOptions, KleSampler, TruncationCriterion};
use klest_geometry::Rect;
use klest_kernels::GaussianKernel;
use klest_mesh::{export, MeshBuilder};
use klest_ssta::NormalSource;
use klest_rng::{SeedableRng, StdRng};
use std::fs;
use std::path::PathBuf;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args = Args::parse();
    let out_dir = PathBuf::from(args.get_str("out", "results"));
    let modes: usize = args.get("modes", 4);
    fs::create_dir_all(&out_dir)?;

    let kernel = GaussianKernel::with_correlation_distance(args.get("dist", 1.0));
    let mesh = MeshBuilder::new(Rect::unit_die())
        .max_area_fraction(args.get("area-fraction", 0.002))
        .min_angle_degrees(28.0)
        .build()?;
    let kle = GalerkinKle::compute(&mesh, &kernel, KleOptions::default())?;
    let r = kle.select_rank(&TruncationCriterion::default());
    eprintln!("# mesh n = {}, rank r = {r}", mesh.len());

    // Flat mesh.
    let mesh_path = out_dir.join("mesh.obj");
    fs::write(&mesh_path, export::to_obj(&mesh))?;
    eprintln!("wrote {}", mesh_path.display());

    // Eigenfunction surfaces (Fig. 4).
    for j in 0..modes.min(kle.retained()) {
        let field = kle.eigenfunction(j);
        let path = out_dir.join(format!("eigenfunction_{}.obj", j + 1));
        fs::write(&path, export::to_obj_with_field(&mesh, &field, 0.5))?;
        eprintln!(
            "wrote {} (lambda = {:.4})",
            path.display(),
            kle.eigenvalues()[j]
        );
    }

    // Two sampled outcomes (Fig. 1b).
    let sampler = KleSampler::new(&kle, &mesh, r)?;
    let mut normals = NormalSource::new(StdRng::seed_from_u64(args.get("seed", 7)));
    for outcome in 1..=2 {
        let mut xi = vec![0.0; r];
        normals.fill(&mut xi);
        let field = sampler.realize(&xi)?;
        let path = out_dir.join(format!("outcome_{outcome}.obj"));
        fs::write(&path, export::to_obj_with_field(&mesh, &field, 0.3))?;
        eprintln!("wrote {}", path.display());
    }
    Ok(())
}
