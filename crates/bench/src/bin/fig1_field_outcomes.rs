//! Fig. 1(b): two sampled outcomes of the normalized channel-length
//! random field across the die.
//!
//! Builds the paper's mesh + KLE, draws two independent realisations
//! (eq. 28) and prints them as CSV `x,y,outcome1,outcome2` at the
//! triangle centroids. Nearby locations track each other within an
//! outcome; the two outcomes differ — the qualitative content of the
//! figure.
//!
//! ```text
//! cargo run --release -p klest-bench --bin fig1_field_outcomes -- --seed 7
//! ```

use klest_bench::Args;
use klest_core::{GalerkinKle, KleOptions, KleSampler, TruncationCriterion};
use klest_geometry::Rect;
use klest_kernels::GaussianKernel;
use klest_mesh::MeshBuilder;
use klest_ssta::NormalSource;
use klest_rng::{SeedableRng, StdRng};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args = Args::parse();
    let seed: u64 = args.get("seed", 7);
    let max_area_fraction: f64 = args.get("area-fraction", 0.004);
    let kernel = GaussianKernel::with_correlation_distance(args.get("dist", 1.0));
    let mesh = MeshBuilder::new(Rect::unit_die())
        .max_area_fraction(max_area_fraction)
        .min_angle_degrees(28.0)
        .build()?;
    let kle = GalerkinKle::compute(&mesh, &kernel, KleOptions::default())?;
    let r = kle.select_rank(&TruncationCriterion::default());
    let sampler = KleSampler::new(&kle, &mesh, r)?;
    eprintln!(
        "# Fig 1(b): two outcomes of the normalized L field; n = {}, r = {r}",
        mesh.len()
    );

    let mut normals = NormalSource::new(StdRng::seed_from_u64(seed));
    let draw = |normals: &mut NormalSource<StdRng>| -> Result<Vec<f64>, Box<dyn std::error::Error>> {
        let mut xi = vec![0.0; r];
        normals.fill(&mut xi);
        Ok(sampler.realize(&xi)?)
    };
    let outcome1 = draw(&mut normals)?;
    let outcome2 = draw(&mut normals)?;

    println!("x,y,outcome1,outcome2");
    for (i, c) in mesh.centroids().iter().enumerate() {
        println!("{:.4},{:.4},{:.5},{:.5}", c.x, c.y, outcome1[i], outcome2[i]);
    }

    // Quantitative sanity lines: spatial smoothness within an outcome,
    // near-independence between outcomes.
    let locator = mesh.locator();
    let t0 = locator.locate(klest_geometry::Point2::new(0.0, 0.0)).expect("center");
    let t1 = locator.locate(klest_geometry::Point2::new(0.05, 0.05)).expect("near center");
    eprintln!(
        "# outcome1 at center vs 0.07 away: {:.4} vs {:.4} (close values = spatial correlation)",
        outcome1[t0], outcome1[t1]
    );
    eprintln!(
        "# outcome1 vs outcome2 at center: {:.4} vs {:.4} (independent draws)",
        outcome1[t0], outcome2[t0]
    );
    Ok(())
}
