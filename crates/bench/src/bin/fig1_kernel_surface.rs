//! Fig. 1(a): the Gaussian (double exponential) covariance kernel surface
//! over the normalized die, with the first argument fixed at the origin.
//!
//! Prints a CSV `y1,y2,K(0,y)` grid suitable for surface plotting.
//!
//! ```text
//! cargo run --release -p klest-bench --bin fig1_kernel_surface -- --grid 41
//! ```

use klest_bench::Args;
use klest_geometry::Point2;
use klest_kernels::{CovarianceKernel, GaussianKernel};

fn main() {
    let args = Args::parse();
    let grid: usize = args.get("grid", 41);
    let kernel = match args.get::<f64>("c", f64::NAN) {
        c if c.is_finite() => GaussianKernel::new(c),
        _ => GaussianKernel::with_correlation_distance(args.get("dist", 1.0)),
    };
    eprintln!(
        "# Fig 1(a): Gaussian kernel surface, c = {:.4} (paper: best 2-D fit to the linear kernel)",
        kernel.decay()
    );
    println!("y1,y2,k");
    let origin = Point2::ORIGIN;
    for i in 0..grid {
        let y1 = -1.0 + 2.0 * i as f64 / (grid - 1) as f64;
        for j in 0..grid {
            let y2 = -1.0 + 2.0 * j as f64 / (grid - 1) as f64;
            let k = kernel.eval(origin, Point2::new(y1, y2));
            println!("{y1:.4},{y2:.4},{k:.6}");
        }
    }
    // Console summary matching the figure's qualitative claims.
    let k_half = kernel.correlation_at_distance(1.0).expect("isotropic");
    let k_corner = kernel.correlation_at_distance(2f64.sqrt() * 2.0).expect("isotropic");
    eprintln!("# K(0,0) = 1, K at r=1.0: {k_half:.4}, K at far corner: {k_corner:.6}");
}
