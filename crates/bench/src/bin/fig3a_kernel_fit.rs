//! Fig. 3(a): best fits of the Gaussian and exponential kernels to the
//! measurement-supported linear kernel of [12].
//!
//! Prints the fitted decay rates and SSEs, then a CSV of the three
//! curves. The paper's observation — the Gaussian fits the linear kernel
//! better than the exponential — is reproduced as the SSE comparison.
//!
//! ```text
//! cargo run --release -p klest-bench --bin fig3a_kernel_fit
//! ```

use klest_bench::Args;
use klest_kernels::fit::{
    fit_exponential_to_linear_1d, fit_exponential_to_linear_2d, fit_gaussian_to_linear_1d,
    fit_gaussian_to_linear_2d,
};

fn main() {
    let args = Args::parse();
    let dist: f64 = args.get("dist", 1.0);
    let points: usize = args.get("points", 100);

    let g1 = fit_gaussian_to_linear_1d(dist);
    let e1 = fit_exponential_to_linear_1d(dist);
    eprintln!("# Fig 3(a): 1-D best fits to linear kernel (correlation distance {dist})");
    eprintln!(
        "# gaussian:    c = {:.4}, SSE = {:.6}",
        g1.decay, g1.sse
    );
    eprintln!(
        "# exponential: c = {:.4}, SSE = {:.6}",
        e1.decay, e1.sse
    );
    eprintln!(
        "# gaussian fits better: {} (paper's conclusion)",
        g1.sse < e1.sse
    );
    let g2 = fit_gaussian_to_linear_2d(dist);
    let e2 = fit_exponential_to_linear_2d(dist);
    eprintln!("# 2-D (area-weighted) fits: gaussian c = {g2:.4} (the experiments' c), exponential c = {:.4}", e2.decay);

    println!("r,linear,gaussian,exponential");
    for i in 0..points {
        let r = 2.0 * dist * i as f64 / (points - 1) as f64;
        let lin = (1.0 - r / dist).max(0.0);
        let gauss = (-g1.decay * r * r).exp();
        let expo = (-e1.decay * r).exp();
        println!("{r:.4},{lin:.5},{gauss:.5},{expo:.5}");
    }
}
