//! Fig. 3(b): error in reconstructing the 2-D Gaussian kernel from r = 25
//! numerically computed eigenpairs (paper: max |error| ≈ 0.016 on the
//! n = 1546 mesh).
//!
//! Reconstructs `K̂(x, y) = Σ_{j<r} λ_j f_j(x) f_j(y)` with `x` fixed at
//! the origin (as in the figure) and reports the error surface plus its
//! maximum, then also the maximum over random point pairs. `--quadrature
//! 3|7` runs the higher-order assembly ablation.
//!
//! ```text
//! cargo run --release -p klest-bench --bin fig3b_reconstruction_error -- --rank 25
//! ```

use klest_bench::Args;
use klest_core::{assemble_galerkin, GalerkinKle, KleOptions, QuadratureRule};
use klest_geometry::{Point2, Rect};
use klest_kernels::{CovarianceKernel, GaussianKernel};
use klest_mesh::MeshBuilder;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args = Args::parse();
    let rank: usize = args.get("rank", 25);
    let grid: usize = args.get("grid", 41);
    let area_fraction: f64 = args.get("area-fraction", 0.001);
    let rule = match args.get::<usize>("quadrature", 1) {
        1 => QuadratureRule::Centroid,
        3 => QuadratureRule::ThreePoint,
        7 => QuadratureRule::SevenPoint,
        other => panic!("--quadrature must be 1, 3 or 7 (got {other})"),
    };
    let kernel = GaussianKernel::with_correlation_distance(args.get("dist", 1.0));

    let mesh = MeshBuilder::new(Rect::unit_die())
        .max_area_fraction(area_fraction)
        .min_angle_degrees(28.0)
        .build()?;
    eprintln!(
        "# Fig 3(b): mesh n = {} (paper: 1546), kernel c = {:.4}, rank = {rank}, quadrature = {rule:?}",
        mesh.len(),
        kernel.decay()
    );
    let _ = grid; // surface resolution is the mesh itself
    let k = assemble_galerkin(&mesh, &kernel, rule);
    let kle = GalerkinKle::from_matrix(k, &mesh, KleOptions::default())?;
    let locator = mesh.locator();

    // Error surface with x fixed at the center triangle, evaluated at
    // every triangle centroid — the expansion is piecewise constant, so
    // centroids are where its own approximation error (truncation +
    // quadrature) is visible without the extra point-vs-centroid
    // discretisation penalty.
    let i0 = locator.locate(Point2::ORIGIN).expect("center is inside the die");
    let mut max_err: f64 = 0.0;
    println!("y1,y2,error");
    for t in 0..mesh.len() {
        let approx = kle.reconstruct_kernel_between_triangles(i0, t, rank);
        let c = mesh.centroids()[t];
        let err = approx - kernel.eval(mesh.centroids()[i0], c);
        max_err = max_err.max(err.abs());
        println!("{:.4},{:.4},{err:.6}", c.x, c.y);
    }
    eprintln!("# max |error| with x = 0 (the figure's metric): {max_err:.4} (paper: 0.016)");

    // Worst error over all centroid pairs (the figure only shows the
    // x = 0 slice; corners are the hardest pairs).
    let mut max_pair_err: f64 = 0.0;
    for i in (0..mesh.len()).step_by(3) {
        for t in 0..mesh.len() {
            let approx = kle.reconstruct_kernel_between_triangles(i, t, rank);
            let exact = kernel.eval(mesh.centroids()[i], mesh.centroids()[t]);
            max_pair_err = max_pair_err.max((approx - exact).abs());
        }
    }
    eprintln!("# max |error| over all centroid pairs (sampled): {max_pair_err:.4}");

    // Diagnostic: evaluating at arbitrary die points adds the
    // piecewise-constant discretisation error on top (O(h |grad K|)).
    let mut seed = 0xfeedu64;
    let mut rnd = move || {
        seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        -0.999 + 1.998 * ((seed >> 11) as f64 / (1u64 << 53) as f64)
    };
    let mut max_point_err: f64 = 0.0;
    for _ in 0..2000 {
        let x = Point2::new(rnd(), rnd());
        let y = Point2::new(rnd(), rnd());
        let approx = kle.reconstruct_kernel(&locator, x, y, rank)?;
        max_point_err = max_point_err.max((approx - kernel.eval(x, y)).abs());
    }
    eprintln!("# max |error| at 2000 random point pairs (incl. piecewise-constant penalty): {max_point_err:.4}");
    Ok(())
}
