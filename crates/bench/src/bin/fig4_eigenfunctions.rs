//! Fig. 4: the first two eigenfunctions of the Gaussian kernel, showing
//! the Fourier-series-like behaviour (higher eigenfunctions model higher
//! spatial frequencies).
//!
//! Prints CSV `x,y,f1,f2,f3,f4` of eigenfunction values at the triangle
//! centroids, plus sign-structure summaries: the first eigenfunction is
//! sign-definite (one lobe); the second crosses zero (two lobes).
//!
//! ```text
//! cargo run --release -p klest-bench --bin fig4_eigenfunctions
//! ```

use klest_bench::Args;
use klest_core::{GalerkinKle, KleOptions};
use klest_geometry::Rect;
use klest_kernels::GaussianKernel;
use klest_mesh::MeshBuilder;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args = Args::parse();
    let area_fraction: f64 = args.get("area-fraction", 0.001);
    let count: usize = args.get("count", 4);
    let kernel = GaussianKernel::with_correlation_distance(args.get("dist", 1.0));
    let mesh = MeshBuilder::new(Rect::unit_die())
        .max_area_fraction(area_fraction)
        .min_angle_degrees(28.0)
        .build()?;
    let kle = GalerkinKle::compute(&mesh, &kernel, KleOptions::default())?;
    eprintln!("# Fig 4: first {count} eigenfunctions on n = {} mesh", mesh.len());

    let funcs: Vec<Vec<f64>> = (0..count).map(|j| kle.eigenfunction(j)).collect();
    let header: Vec<String> = (1..=count).map(|j| format!("f{j}")).collect();
    println!("x,y,{}", header.join(","));
    for (i, c) in mesh.centroids().iter().enumerate() {
        let vals: Vec<String> = funcs.iter().map(|f| format!("{:.5}", f[i])).collect();
        println!("{:.4},{:.4},{}", c.x, c.y, vals.join(","));
    }

    // Fourier-like structure: count sign lobes via sign changes along the
    // x axis through the die center.
    for (j, f) in funcs.iter().enumerate() {
        let pos = f.iter().filter(|&&v| v > 0.0).count();
        let neg = f.len() - pos;
        eprintln!(
            "# f{}: lambda = {:.4}, {} positive / {} negative triangles",
            j + 1,
            kle.eigenvalues()[j],
            pos,
            neg
        );
    }
    Ok(())
}
