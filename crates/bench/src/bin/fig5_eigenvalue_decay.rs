//! Fig. 5: the rapid decay of the KLE eigenvalues, and the paper's
//! truncation criterion selecting r (= 25 in the paper) such that the
//! unused λ-tail is under 1% of the retained spectrum.
//!
//! Prints CSV `index,eigenvalue` for the first `--count` eigenvalues and
//! the criterion's selections for several tail budgets.
//!
//! ```text
//! cargo run --release -p klest-bench --bin fig5_eigenvalue_decay
//! ```

use klest_bench::Args;
use klest_core::{GalerkinKle, KleOptions, TruncationCriterion};
use klest_geometry::Rect;
use klest_kernels::GaussianKernel;
use klest_mesh::MeshBuilder;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args = Args::parse();
    let area_fraction: f64 = args.get("area-fraction", 0.001);
    let count: usize = args.get("count", 200);
    let kernel = GaussianKernel::with_correlation_distance(args.get("dist", 1.0));
    let mesh = MeshBuilder::new(Rect::unit_die())
        .max_area_fraction(area_fraction)
        .min_angle_degrees(28.0)
        .build()?;
    let kle = GalerkinKle::compute(&mesh, &kernel, KleOptions::default())?;
    eprintln!("# Fig 5: eigenvalue decay on n = {} mesh, kernel c = {:.4}", mesh.len(), kernel.decay());

    println!("index,eigenvalue");
    for (i, l) in kle.eigenvalues().iter().take(count).enumerate() {
        println!("{},{:.6e}", i + 1, l);
    }

    let l = kle.eigenvalues();
    eprintln!("# lambda_1 = {:.4}, lambda_10 = {:.4e}, lambda_25 = {:.4e}, lambda_100 = {:.4e}", l[0], l[9], l[24], l[99]);
    for frac in [0.05, 0.02, 0.01, 0.005] {
        let crit = TruncationCriterion::new(200, frac);
        let r = kle.select_rank(&crit);
        eprintln!(
            "# tail budget {:.1}% -> r = {r} (variance captured {:.3}%)",
            100.0 * frac,
            100.0 * kle.variance_captured(r)
        );
    }
    let r_paper = kle.select_rank(&TruncationCriterion::default());
    eprintln!("# paper criterion (m = 200, 1%): r = {r_paper} (paper: 25)");
    Ok(())
}
