//! Fig. 6: error of the covariance-kernel STA's σ_d estimate against the
//! reference Monte Carlo STA on c1908, (a) sweeping the number of
//! eigenpairs r at fixed mesh, (b) sweeping the mesh size n at fixed
//! r = 25. The error is the relative σ error averaged over all primary
//! outputs, exactly the paper's metric.
//!
//! ```text
//! cargo run --release -p klest-bench --bin fig6_sweeps -- --sweep r --samples 20000
//! cargo run --release -p klest-bench --bin fig6_sweeps -- --sweep n --samples 20000
//! ```

use klest_bench::{default_threads, print_table, Args};
use klest_circuit::{benchmark, BenchmarkId};
use klest_kernels::GaussianKernel;
use klest_ssta::experiments::{CircuitSetup, KleContext};
use klest_ssta::{run_monte_carlo, CholeskySampler, KleFieldSampler, McConfig};
use klest_core::TruncationCriterion;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args = Args::parse();
    let sweep = args.get_str("sweep", "r");
    let samples: usize = args.get("samples", 20_000);
    let seed: u64 = args.get("seed", 2008);
    let threads: usize = args.get("threads", default_threads());
    let kernel = GaussianKernel::with_correlation_distance(args.get("dist", 1.0));

    let circuit = benchmark(BenchmarkId::C1908)?;
    let setup = CircuitSetup::prepare(&circuit);
    eprintln!(
        "# Fig 6 ({sweep} sweep): c1908, {} gates, {} samples, {} threads",
        setup.gates(),
        samples,
        threads
    );

    // Reference Monte Carlo STA (Algorithm 1), shared by both sweeps.
    let config = McConfig::new(samples, seed).with_threads(threads);
    let ref_sampler = CholeskySampler::new(&kernel, setup.locations())?;
    let reference = run_monte_carlo(&setup.timer, &ref_sampler, &config)?;
    eprintln!(
        "# reference: mean = {:.3}, sigma = {:.3}",
        reference.worst_delay_stats().mean,
        reference.worst_delay_stats().std_dev
    );

    let kle_config = McConfig::new(samples, seed ^ 0xabcd).with_threads(threads);
    let mut rows = Vec::new();
    match sweep.as_str() {
        "r" => {
            // Fig 6(a): paper mesh (n = 1546-ish), increasing r.
            let ctx = KleContext::paper_default(&kernel)?;
            eprintln!("# mesh n = {} (paper: 1546)", ctx.mesh.len());
            for r in [1usize, 2, 4, 6, 10, 15, 20, 25, 30, 40, 50] {
                let sampler = KleFieldSampler::new(&ctx.kle, &ctx.mesh, r, setup.locations())?;
                let run = run_monte_carlo(&setup.timer, &sampler, &kle_config)?;
                let err_sigma = run.output_stats().avg_sigma_error_pct(reference.output_stats());
                let err_mu = run.output_stats().avg_mean_error_pct(reference.output_stats());
                rows.push(vec![
                    r.to_string(),
                    format!("{err_sigma:.3}"),
                    format!("{err_mu:.4}"),
                ]);
                eprintln!("# r = {r}: sigma err {err_sigma:.3}%");
            }
            print_table(&["r", "sigma_err_%", "mean_err_%"], &rows);
        }
        "n" => {
            // Fig 6(b): r = 25 fixed, increasing mesh resolution.
            let r = args.get("rank", 25);
            for area_fraction in [0.02, 0.01, 0.005, 0.002, 0.001, 0.0005] {
                let ctx = KleContext::build(
                    &kernel,
                    area_fraction,
                    28.0,
                    &TruncationCriterion::default(),
                )?;
                let sampler = KleFieldSampler::new(&ctx.kle, &ctx.mesh, r, setup.locations())?;
                let run = run_monte_carlo(&setup.timer, &sampler, &kle_config)?;
                let err_sigma = run.output_stats().avg_sigma_error_pct(reference.output_stats());
                let err_mu = run.output_stats().avg_mean_error_pct(reference.output_stats());
                rows.push(vec![
                    ctx.mesh.len().to_string(),
                    format!("{err_sigma:.3}"),
                    format!("{err_mu:.4}"),
                ]);
                eprintln!("# n = {}: sigma err {err_sigma:.3}%", ctx.mesh.len());
            }
            print_table(&["n", "sigma_err_%", "mean_err_%"], &rows);
        }
        other => panic!("--sweep must be 'r' or 'n' (got {other})"),
    }
    Ok(())
}
