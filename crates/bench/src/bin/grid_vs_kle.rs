//! Ablation: the grid-based PCA model of Sec. 2.1 ([5]) against the
//! paper's grid-free KLE, at matched random-variable budgets.
//!
//! For each RV budget r, the grid model uses a `g x g` grid with PCA
//! truncated to r, and the KLE uses rank r directly. The comparison
//! metric is the Fig. 6 one: σ error averaged over primary outputs
//! against the full-covariance reference. This quantifies the paper's
//! core motivation — the grid resolution is an arbitrary knob, and a
//! wrong choice costs accuracy the grid model gives no way to recover.
//!
//! ```text
//! cargo run --release -p klest-bench --bin grid_vs_kle -- --samples 20000
//! ```

use klest_bench::{default_threads, print_table, Args};
use klest_circuit::{benchmark_scaled, BenchmarkId};
use klest_geometry::Rect;
use klest_kernels::GaussianKernel;
use klest_ssta::experiments::{CircuitSetup, KleContext};
use klest_ssta::{run_monte_carlo, CholeskySampler, GridPcaSampler, KleFieldSampler, McConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args = Args::parse();
    let samples: usize = args.get("samples", 20_000);
    let seed: u64 = args.get("seed", 2008);
    let threads: usize = args.get("threads", default_threads());
    let scale: f64 = args.get("scale", 1.0);
    let kernel = GaussianKernel::with_correlation_distance(args.get("dist", 1.0));

    let circuit = benchmark_scaled(BenchmarkId::C1908, scale)?;
    let setup = CircuitSetup::prepare(&circuit);
    eprintln!(
        "# grid-PCA vs KLE on c1908 ({} gates), {samples} samples",
        setup.gates()
    );

    let config = McConfig::new(samples, seed).with_threads(threads);
    let reference = {
        let s = CholeskySampler::new(&kernel, setup.locations())?;
        run_monte_carlo(&setup.timer, &s, &config)?
    };
    let kle_config = McConfig::new(samples, seed ^ 0x5a5a).with_threads(threads);
    let ctx = KleContext::paper_default(&kernel)?;

    let mut rows = Vec::new();
    for r in [5usize, 10, 15, 25] {
        // KLE at rank r.
        let kle_sampler = KleFieldSampler::new(&ctx.kle, &ctx.mesh, r, setup.locations())?;
        let kle_run = run_monte_carlo(&setup.timer, &kle_sampler, &kle_config)?;
        let kle_err = kle_run
            .output_stats()
            .avg_sigma_error_pct(reference.output_stats());
        // Grid model at several resolutions, same r.
        for g in [4usize, 8, 16] {
            if g * g < r {
                continue;
            }
            let grid_sampler =
                GridPcaSampler::new(&kernel, Rect::unit_die(), g, r, setup.locations())?;
            let grid_run = run_monte_carlo(&setup.timer, &grid_sampler, &kle_config)?;
            let grid_err = grid_run
                .output_stats()
                .avg_sigma_error_pct(reference.output_stats());
            rows.push(vec![
                r.to_string(),
                format!("{g}x{g}"),
                format!("{grid_err:.3}"),
                format!("{kle_err:.3}"),
                format!("{:.1}", 100.0 * grid_sampler.variance_captured()),
            ]);
            eprintln!("# r = {r}, grid {g}x{g}: grid err {grid_err:.3}% vs KLE err {kle_err:.3}%");
        }
    }
    print_table(
        &["r", "grid", "grid_sigma_err_%", "kle_sigma_err_%", "grid_var_%"],
        &rows,
    );
    eprintln!("# the KLE needs no resolution knob; the grid model's accuracy depends on g, which nothing in the model pins down");
    Ok(())
}
