//! Hierarchical-vs-flat SSTA bench, emitted into a `BENCH_*.json` run
//! report (see `scripts/bench_report.sh`).
//!
//! One synthetic netlist, one shared KLE ξ basis, five timed arms:
//!
//! - **flat cold**: the whole front end (mesh, Galerkin assembly,
//!   eigensolve, truncation) plus the monolithic canonical pass — the
//!   cost a from-scratch re-time pays with nothing cached;
//! - **flat warm**: the monolithic canonical pass alone, spectrum
//!   already in hand;
//! - **hier cold**: partition + per-block extraction + boundary
//!   composition with an empty block cache;
//! - **hier warm**: the same construction against the now-populated
//!   cache — every model is a lookup, only composition runs;
//! - **edit re-time**: a one-gate parameter edit through
//!   [`HierEngine::edit_gate`] — exactly one block is re-extracted
//!   (its region hash changed), the rest are reused, composition is
//!   re-run.
//!
//! The run asserts the accuracy contract (composed worst mean within 2%
//! and σ within 5% of flat; warm reproduces cold bitwise) and the
//! headline perf claim: the warm one-block-edit re-time must be ≥5×
//! faster than the cold flat pass. The warm-flat ratio is reported
//! ungated — per-block extraction carries one canonical term per
//! boundary origin, so it is deliberately paying accuracy bookkeeping a
//! single monolithic pass does not. With `--report PATH` a top-level
//! `"hier"` object is merged into the existing run report; without it
//! the JSON object prints to stdout.

use klest_bench::Args;
use klest_circuit::{generate, GeneratorConfig, NodeId, Partition};
use klest_core::pipeline::{ArtifactCache, ArtifactKey};
use klest_core::{EigenSolver, QuadratureRule};
use klest_geometry::Rect;
use klest_kernels::{CovarianceKernel, GaussianKernel};
use klest_runtime::CancelToken;
use klest_ssta::canonical::analyze_canonical;
use klest_ssta::experiments::{CircuitSetup, KleContext};
use klest_ssta::hier::HierEngine;
use klest_ssta::KleFieldSampler;
use klest_sta::ParamVector;
use std::time::Instant;

/// Median of three timed runs: at millisecond scale, scheduler noise is
/// symmetric, so the median beats min or mean as a cost estimate.
fn median3<F: FnMut() -> f64>(mut run: F) -> f64 {
    let mut t = [run(), run(), run()];
    t.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    t[1]
}

fn main() {
    let args = Args::parse();
    let gates: usize = args.get("gates", 1200);
    let blocks: usize = args.get("blocks", 8);
    let seed: u64 = args.get("seed", 2008);
    // Mesh resolution of the KLE front end. The default is fine enough
    // that a cold start pays a real assembly + eigensolve, as any
    // production-resolution run does.
    let area_fraction: f64 = args.get("area-fraction", 0.004);

    let circuit = generate(format!("hier{gates}"), GeneratorConfig::combinational(gates, seed))
        .expect("generator accepts the bench size");
    let setup = CircuitSetup::prepare(&circuit);
    let kernel = GaussianKernel::new(2.0);
    let partition = Partition::build(&circuit, blocks);
    let token = CancelToken::unlimited();
    let nominal = vec![ParamVector::ZERO; circuit.node_count()];

    // Arm 1: cold flat re-time — nothing cached, so the full front end
    // (mesh, assembly, eigensolve, truncation) runs before the
    // monolithic canonical pass.
    let criterion = klest_core::TruncationCriterion::new(60, 0.01);
    let build_ctx =
        || KleContext::build(&kernel, area_fraction, 25.0, &criterion).expect("KLE context");
    let ctx = build_ctx();
    let flat_cold_secs = median3(|| {
        let started = Instant::now();
        let cold_ctx = build_ctx();
        let cold_sampler =
            KleFieldSampler::new(&cold_ctx.kle, &cold_ctx.mesh, cold_ctx.rank, setup.locations())
                .expect("sampler over circuit locations");
        analyze_canonical(&setup.timer, &cold_sampler).expect("flat canonical pass");
        started.elapsed().as_secs_f64()
    });

    let sampler = KleFieldSampler::new(&ctx.kle, &ctx.mesh, ctx.rank, setup.locations())
        .expect("sampler over circuit locations");

    // Arm 2: warm flat re-time — the canonical pass alone, spectrum in
    // hand (what a flat engine pays per edit once everything is cached).
    let flat = analyze_canonical(&setup.timer, &sampler).expect("flat canonical pass");
    let flat_warm_secs = median3(|| {
        let started = Instant::now();
        let r = analyze_canonical(&setup.timer, &sampler).expect("flat canonical pass");
        let secs = started.elapsed().as_secs_f64();
        assert_eq!(r.worst().mean.to_bits(), flat.worst().mean.to_bits());
        secs
    });

    // Block models are cached under the spectrum key of the coarse
    // front end, exactly as the CLI and daemon key them.
    let cache = ArtifactCache::new();
    let mesh_key = ArtifactKey::mesh(Rect::unit_die(), area_fraction, 25.0);
    let galerkin_key = ArtifactKey::galerkin(
        &mesh_key,
        &kernel.cache_key().expect("gaussian kernel is cacheable"),
        QuadratureRule::Centroid,
    );
    let spectrum_key = ArtifactKey::spectrum(&galerkin_key, EigenSolver::Full, 200);

    // Arm 3: cold hierarchical construction (extract every block).
    let started = Instant::now();
    let mut engine = HierEngine::new(
        &setup.timer,
        &sampler,
        &partition,
        nominal.clone(),
        Some((&cache, spectrum_key.clone())),
        &token,
    )
    .expect("cold hierarchical construction");
    let hier_cold_secs = started.elapsed().as_secs_f64();
    let cold_stats = engine.last_stats();
    assert_eq!(cold_stats.extracted, partition.block_count());
    assert_eq!(cold_stats.cache_hits, 0);

    // Accuracy contract: composed worst within the stated bound.
    let (h, f) = (engine.worst(), flat.worst());
    let e_mu_pct = 100.0 * (h.mean - f.mean).abs() / f.mean;
    let e_sigma_pct = 100.0 * (h.sigma() - f.sigma()).abs() / f.sigma();
    assert!(e_mu_pct <= 2.0, "worst mean off by {e_mu_pct:.3}%");
    assert!(e_sigma_pct <= 5.0, "worst sigma off by {e_sigma_pct:.3}%");
    let cold_worst_bits = h.mean.to_bits();

    // Arm 4: warm construction — every model is a cache lookup.
    let hier_warm_secs = median3(|| {
        let started = Instant::now();
        let warm = HierEngine::new(
            &setup.timer,
            &sampler,
            &partition,
            nominal.clone(),
            Some((&cache, spectrum_key.clone())),
            &token,
        )
        .expect("warm hierarchical construction");
        let secs = started.elapsed().as_secs_f64();
        let stats = warm.last_stats();
        assert_eq!(stats.extracted, 0, "warm run must extract nothing");
        assert_eq!(stats.cache_hits, partition.block_count());
        assert_eq!(
            warm.worst().mean.to_bits(),
            cold_worst_bits,
            "warm composition must reproduce the cold one bitwise"
        );
        secs
    });

    // Arm 5: one-gate edit re-time. Each run edits with a fresh
    // parameter value, so the victim block's region hash is new every
    // time and a real extraction (not a compose-only cache hit) is
    // measured.
    let victim = NodeId((circuit.node_count() / 2) as u32);
    let mut scale = 0.30;
    let edit_retime_secs = median3(|| {
        scale += 0.01;
        let p = ParamVector::new([scale, -0.5 * scale, 0.25 * scale, 0.1 * scale]);
        let started = Instant::now();
        engine.edit_gate(victim, p, &token).expect("edit re-time");
        let secs = started.elapsed().as_secs_f64();
        let stats = engine.last_stats();
        assert_eq!(stats.extracted, 1, "an edit re-extracts exactly one block");
        secs
    });

    // The headline claim: a warm one-block-edit re-time beats the cold
    // flat pass by at least 5x. The warm-flat ratio rides along ungated.
    let speedup = flat_cold_secs / edit_retime_secs.max(1e-9);
    let speedup_warm = flat_warm_secs / edit_retime_secs.max(1e-9);
    assert!(
        speedup >= 5.0,
        "edit re-time must be >=5x faster than the cold flat pass: \
         flat {flat_cold_secs:.4}s vs edit {edit_retime_secs:.4}s ({speedup:.1}x)"
    );

    let hier = format!(
        concat!(
            "{{\n",
            "    \"gates\": {},\n",
            "    \"blocks\": {},\n",
            "    \"rank\": {},\n",
            "    \"flat_cold_secs\": {:.6},\n",
            "    \"flat_warm_secs\": {:.6},\n",
            "    \"hier_cold_secs\": {:.6},\n",
            "    \"hier_warm_secs\": {:.6},\n",
            "    \"edit_retime_secs\": {:.6},\n",
            "    \"speedup_edit_vs_flat\": {:.2},\n",
            "    \"speedup_edit_vs_flat_warm\": {:.2},\n",
            "    \"e_mu_pct\": {:.4},\n",
            "    \"e_sigma_pct\": {:.4},\n",
            "    \"warm_bitwise_equal\": true\n",
            "  }}"
        ),
        gates,
        partition.block_count(),
        ctx.rank,
        flat_cold_secs,
        flat_warm_secs,
        hier_cold_secs,
        hier_warm_secs,
        edit_retime_secs,
        speedup,
        speedup_warm,
        e_mu_pct,
        e_sigma_pct,
    );

    match args.get_str("report", "") {
        path if path.is_empty() => println!("{{\n  \"hier\": {hier}\n}}"),
        path => {
            let report = std::fs::read_to_string(&path)
                .unwrap_or_else(|e| panic!("reading report {path}: {e}"));
            let body = report
                .trim_end()
                .strip_suffix('}')
                .unwrap_or_else(|| panic!("report {path} is not a JSON object"))
                .trim_end()
                .to_string();
            let merged = format!("{body},\n  \"hier\": {hier}\n}}\n");
            std::fs::write(&path, merged)
                .unwrap_or_else(|e| panic!("writing report {path}: {e}"));
            eprintln!(
                "hier_bench: {gates} gates, {} blocks — cold flat {flat_cold_secs:.4}s, edit \
                 re-time {edit_retime_secs:.4}s ({speedup:.1}x) — merged into {path}",
                partition.block_count(),
            );
        }
    }
}
