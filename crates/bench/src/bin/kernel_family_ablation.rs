//! The paper's generality claim, measured: run the *same* Galerkin/KLE
//! pipeline over the kernel families discussed in the paper and report
//! the rank each needs, the reconstruction quality, and the SSTA
//! agreement with the full-covariance reference — no per-kernel code.
//!
//! ```text
//! cargo run --release -p klest-bench --bin kernel_family_ablation -- --samples 10000
//! ```

use klest_bench::{default_threads, print_table, Args};
use klest_circuit::{benchmark_scaled, BenchmarkId};
use klest_kernels::{
    CovarianceKernel, ExponentialKernel, GaussianKernel, MaternKernel,
    SeparableExponentialKernel,
};
use klest_ssta::experiments::{compare_methods, CircuitSetup, KleContext};
use klest_ssta::McConfig;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args = Args::parse();
    let samples: usize = args.get("samples", 10_000);
    let seed: u64 = args.get("seed", 2008);
    let threads: usize = args.get("threads", default_threads());
    let area_fraction: f64 = args.get("area-fraction", 0.002);

    let gaussian = GaussianKernel::with_correlation_distance(1.0);
    let exponential = ExponentialKernel::new(2.1365); // 2-D best fit (fig3a)
    let matern = MaternKernel::new(3.0, 2.5)?;
    let separable = SeparableExponentialKernel::new(1.5);
    let kernels: [(&str, &dyn CovarianceKernel); 4] = [
        ("gaussian", &gaussian),
        ("exponential", &exponential),
        ("matern(3,2.5)", &matern),
        ("separable-exp", &separable),
    ];

    let circuit = benchmark_scaled(BenchmarkId::C1908, 0.5)?;
    let setup = CircuitSetup::prepare(&circuit);
    eprintln!(
        "# kernel-family ablation on c1908/{} gates, {samples} samples, mesh fraction {area_fraction}",
        setup.gates()
    );

    let mut rows = Vec::new();
    for (name, kernel) in kernels {
        let ctx = KleContext::build(kernel, area_fraction, 28.0, &Default::default())?;
        let cmp = compare_methods(
            &setup,
            kernel,
            &ctx,
            &McConfig::new(samples, seed).with_threads(threads),
        )?;
        eprintln!(
            "# {name}: n = {}, r = {}, e_mu = {:.3}%, e_sigma = {:.3}%",
            ctx.mesh.len(),
            ctx.rank,
            cmp.e_mu_pct,
            cmp.e_sigma_pct
        );
        rows.push(vec![
            name.to_string(),
            ctx.mesh.len().to_string(),
            ctx.rank.to_string(),
            format!("{:.1}", 100.0 * ctx.kle.variance_captured(ctx.rank)),
            format!("{:.3}", cmp.e_mu_pct),
            format!("{:.3}", cmp.e_sigma_pct),
        ]);
    }
    print_table(
        &["kernel", "n", "rank_r", "var_%", "e_mu_%", "e_sigma_%"],
        &rows,
    );
    eprintln!("# rougher kernels (exponential/Matérn with low smoothness) need more modes — the spectrum decays slower — but the pipeline is unchanged");
    Ok(())
}
