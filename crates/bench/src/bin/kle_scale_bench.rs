//! Scale bench for the matrix-free KLE eigensolve, emitted into a
//! `BENCH_*.json` run report (see `scripts/bench_report.sh`).
//!
//! Three claims are checked and reported:
//!
//! 1. **Correctness gate** — on a small mesh where the dense path is
//!    cheap, the matrix-free spectrum must match the dense QL spectrum
//!    to solver tolerance before any timing is reported;
//! 2. **Timed scale run** — a matrix-free KLE on a `--area-fraction`
//!    mesh (the dense matrix for the same mesh is *never* assembled),
//!    with wall time and the O(n·k) workspace model reported next to
//!    the n² bytes the dense path would have needed;
//! 3. **Laptop-budget projection** — the same workspace model evaluated
//!    at 10⁵ elements, asserting the matrix-free footprint stays under
//!    a 1 GiB laptop budget where the dense matrix would need ~80 GB.
//!
//! With `--report PATH` the entry is merged into the existing run report
//! as a top-level `"kle_scale"` object; without it the JSON object is
//! printed to stdout.

use klest_bench::Args;
use klest_core::{EigenSolver, GalerkinKle, KleOptions};
use klest_geometry::Rect;
use klest_kernels::GaussianKernel;
use klest_mesh::MeshBuilder;
use std::time::Instant;

/// Peak float64 workspace of the matrix-free solve for an n-element mesh
/// at k modes, in bytes: the Lanczos basis (m = 2k+10 vectors), the
/// transient restart basis (k+1 Ritz vectors), the apply/scale work
/// vectors, the projected m×m matrix, and the retained n×k KLE basis.
fn matrix_free_bytes(n: usize, k: usize) -> usize {
    let m = 2 * k + 10;
    8 * (n * (m + 2 * k + 4) + m * m)
}

/// Bytes of the dense n×n Galerkin matrix the full solver materializes.
fn dense_bytes(n: usize) -> usize {
    8 * n * n
}

fn main() {
    let args = Args::parse();
    let threads: usize = args.get("threads", 4);
    let modes: usize = args.get("modes", 25);
    let max_iters: usize = args.get("max-iters", 500);
    let area_fraction: f64 = args.get("area-fraction", 0.001);
    let kernel = GaussianKernel::with_correlation_distance(1.0);

    // Gate: dense and matrix-free must agree before timings mean anything.
    let small = MeshBuilder::new(Rect::unit_die())
        .max_area(0.02)
        .min_angle_degrees(28.0)
        .build()
        .expect("small mesh builds");
    let k_gate = 8;
    let dense = GalerkinKle::compute(
        &small,
        &kernel,
        KleOptions {
            max_eigenpairs: k_gate,
            ..KleOptions::default()
        },
    )
    .expect("dense KLE");
    let free = GalerkinKle::compute(
        &small,
        &kernel,
        KleOptions {
            solver: EigenSolver::MatrixFree {
                k: k_gate,
                max_iters,
            },
            ..KleOptions::default()
        },
    )
    .expect("matrix-free KLE");
    let head = dense.eigenvalues()[0];
    for (i, (a, d)) in free.eigenvalues().iter().zip(dense.eigenvalues()).enumerate() {
        assert!(
            (a - d).abs() <= 1e-8 * head,
            "matrix-free eigenvalue {i} ({a}) drifted from dense ({d})"
        );
    }

    // Timed scale run: matrix-free only — the dense matrix is never built.
    let mesh = MeshBuilder::new(Rect::unit_die())
        .max_area_fraction(area_fraction)
        .min_angle_degrees(28.0)
        .build()
        .expect("scale mesh builds");
    let n = mesh.len();
    let started = Instant::now();
    let kle = GalerkinKle::compute(
        &mesh,
        &kernel,
        KleOptions {
            solver: EigenSolver::MatrixFree { k: modes, max_iters },
            assembly_threads: threads,
            ..KleOptions::default()
        },
    )
    .expect("scale KLE");
    let wall = started.elapsed().as_secs_f64();
    let retained = kle.eigenvalues().len();
    let captured = kle.variance_captured(retained);

    // Laptop-budget projection at the paper-scale 10⁵ elements.
    let n_target = 100_000;
    let projected = matrix_free_bytes(n_target, modes);
    assert!(
        projected < 1 << 30,
        "matrix-free workspace at 1e5 elements ({projected} B) exceeds the 1 GiB laptop budget"
    );

    let entry = format!(
        concat!(
            "{{\n",
            "    \"triangles\": {},\n",
            "    \"modes\": {},\n",
            "    \"retained\": {},\n",
            "    \"matrix_free_secs\": {:.6},\n",
            "    \"variance_captured\": {:.6},\n",
            "    \"matrix_free_bytes\": {},\n",
            "    \"dense_matrix_bytes\": {},\n",
            "    \"memory_ratio\": {:.1},\n",
            "    \"projected_1e5_matrix_free_bytes\": {},\n",
            "    \"projected_1e5_dense_matrix_bytes\": {}\n",
            "  }}"
        ),
        n,
        modes,
        retained,
        wall,
        captured,
        matrix_free_bytes(n, modes),
        dense_bytes(n),
        dense_bytes(n) as f64 / matrix_free_bytes(n, modes) as f64,
        projected,
        dense_bytes(n_target),
    );

    match args.get_str("report", "") {
        path if path.is_empty() => println!("{{\n  \"kle_scale\": {entry}\n}}"),
        path => {
            let report = std::fs::read_to_string(&path)
                .unwrap_or_else(|e| panic!("reading report {path}: {e}"));
            let body = report
                .trim_end()
                .strip_suffix('}')
                .unwrap_or_else(|| panic!("report {path} is not a JSON object"))
                .trim_end()
                .to_string();
            let merged = format!("{body},\n  \"kle_scale\": {entry}\n}}\n");
            std::fs::write(&path, merged)
                .unwrap_or_else(|e| panic!("writing report {path}: {e}"));
            eprintln!(
                "kle_scale_bench: n = {n}, k = {modes} in {wall:.2}s, memory x{:.0} vs dense — merged into {path}",
                dense_bytes(n) as f64 / matrix_free_bytes(n, modes) as f64,
            );
        }
    }
}
