//! Polynomial-chaos surrogate vs Monte Carlo vs canonical SSTA — three
//! consumers of the same KLE basis, one accuracy/cost table.
//!
//! ```text
//! cargo run --release -p klest-bench --bin pce_surrogate -- --samples 20000
//! ```

use klest_bench::{default_threads, print_table, Args};
use klest_circuit::{benchmark_scaled, BenchmarkId};
use klest_kernels::GaussianKernel;
use klest_ssta::canonical::analyze_canonical;
use klest_ssta::experiments::{CircuitSetup, KleContext};
use klest_ssta::pce::fit_pce;
use klest_ssta::{run_monte_carlo, KleFieldSampler, McConfig};
use std::time::Instant;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args = Args::parse();
    let mc_samples: usize = args.get("samples", 20_000);
    let train: usize = args.get("train", 2000);
    let rank: usize = args.get("rank", 12);
    let seed: u64 = args.get("seed", 2008);
    let threads: usize = args.get("threads", default_threads());

    let kernel = GaussianKernel::with_correlation_distance(args.get("dist", 1.0));
    let ctx = KleContext::paper_default(&kernel)?;
    let rank = rank.min(ctx.rank);
    let circuit = benchmark_scaled(BenchmarkId::C1908, args.get("scale", 0.5))?;
    let setup = CircuitSetup::prepare(&circuit);
    let sampler = KleFieldSampler::new(&ctx.kle, &ctx.mesh, rank, setup.locations())?;
    eprintln!(
        "# PCE vs MC vs canonical on c1908/{} gates, rank {rank} ({} xi variables)",
        setup.gates(),
        4 * rank
    );

    // Reference: large MC on the same KLE basis.
    let t0 = Instant::now();
    let mc = run_monte_carlo(
        &setup.timer,
        &sampler,
        &McConfig::new(mc_samples, seed).with_threads(threads),
    )?;
    let mc_time = t0.elapsed();
    let stats = mc.worst_delay_stats();

    // PCE surrogate fitted from `train` timing runs.
    let t1 = Instant::now();
    let pce = fit_pce(&setup.timer, &sampler, train, seed ^ 0x77)?;
    let pce_time = t1.elapsed();

    // Canonical one-pass.
    let t2 = Instant::now();
    let canon = analyze_canonical(&setup.timer, &sampler)?;
    let canon_time = t2.elapsed();

    let rel = |x: f64, reference: f64| 100.0 * (x - reference).abs() / reference;
    let rows = vec![
        vec![
            format!("MC x{mc_samples}"),
            format!("{:.3}", stats.mean),
            format!("{:.3}", stats.std_dev),
            "-".into(),
            "-".into(),
            format!("{:.3}", mc_time.as_secs_f64()),
        ],
        vec![
            format!("PCE (train {train})"),
            format!("{:.3}", pce.mean()),
            format!("{:.3}", pce.sigma()),
            format!("{:.3}", rel(pce.mean(), stats.mean)),
            format!("{:.2}", rel(pce.sigma(), stats.std_dev)),
            format!("{:.3}", pce_time.as_secs_f64()),
        ],
        vec![
            "canonical (1 pass)".into(),
            format!("{:.3}", canon.worst().mean),
            format!("{:.3}", canon.worst().sigma()),
            format!("{:.3}", rel(canon.worst().mean, stats.mean)),
            format!("{:.2}", rel(canon.worst().sigma(), stats.std_dev)),
            format!("{:.5}", canon_time.as_secs_f64()),
        ],
    ];
    print_table(
        &["method", "mean", "sigma", "mean_err_%", "sigma_err_%", "time_s"],
        &rows,
    );
    eprintln!(
        "# PCE residual RMS {:.3} (vs sigma {:.3}): the quadratic surrogate explains the response almost exactly",
        pce.residual_rms(),
        stats.std_dev
    );
    Ok(())
}
