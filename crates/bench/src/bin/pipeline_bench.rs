//! Timed acceptance benches for the stage-graph pipeline, emitted into a
//! `BENCH_*.json` run report (see `scripts/bench_report.sh`):
//!
//! - `galerkin_assembly_serial_vs_parallel` — wall time of the Galerkin
//!   assembly at 1 worker vs `--threads` workers on the same mesh, with
//!   the outputs checked bitwise-equal before either number is reported;
//! - `pipeline_cold_vs_warm_cache` — wall time of the full front end
//!   (mesh → assembly → eigensolve → truncation) on a cold artifact
//!   cache vs the warm re-run that serves every stage from it.
//!
//! With `--report PATH` the two entries are merged into the existing run
//! report as a top-level `"benches"` object; without it the JSON object
//! is printed to stdout.

use klest_bench::Args;
use klest_core::pipeline::{run_frontend, ArtifactCache, ExecPolicy, FrontEndConfig};
use klest_core::{assemble_galerkin_parallel, QuadratureRule, TruncationCriterion};
use klest_geometry::Rect;
use klest_kernels::GaussianKernel;
use klest_mesh::MeshBuilder;
use std::hint::black_box;
use std::time::Instant;

fn secs<T>(reps: usize, mut f: impl FnMut() -> T) -> (f64, T) {
    let mut best = f64::INFINITY;
    let mut last = None;
    for _ in 0..reps {
        let started = Instant::now();
        let out = black_box(f());
        best = best.min(started.elapsed().as_secs_f64());
        last = Some(out);
    }
    (best, last.expect("reps >= 1"))
}

fn main() {
    let args = Args::parse();
    let threads: usize = args.get("threads", 4);
    let reps: usize = args.get("reps", 3);
    let area_fraction: f64 = args.get("area-fraction", 0.004);
    let kernel = GaussianKernel::with_correlation_distance(1.0);

    // Bench 1: serial vs parallel assembly on one mesh.
    let mesh = MeshBuilder::new(Rect::unit_die())
        .max_area_fraction(area_fraction)
        .min_angle_degrees(28.0)
        .build()
        .expect("mesh builds");
    let rule = QuadratureRule::Centroid;
    let (serial_secs, serial) =
        secs(reps, || assemble_galerkin_parallel(&mesh, &kernel, rule, 1));
    let (parallel_secs, parallel) =
        secs(reps, || assemble_galerkin_parallel(&mesh, &kernel, rule, threads));
    assert_eq!(serial.rows(), parallel.rows());
    for i in 0..serial.rows() {
        for j in 0..serial.cols() {
            assert_eq!(
                serial[(i, j)].to_bits(),
                parallel[(i, j)].to_bits(),
                "parallel assembly must be bitwise identical at ({i},{j})"
            );
        }
    }

    // Bench 2: the full front end, cold cache vs warm cache.
    let config = FrontEndConfig::new(area_fraction, 28.0, TruncationCriterion::new(60, 0.01));
    let cache = ArtifactCache::new();
    let started = Instant::now();
    run_frontend(&kernel, &config, ExecPolicy::Plain, Some(&cache)).expect("cold front end");
    let cold_secs = started.elapsed().as_secs_f64();
    let (warm_secs, _) = secs(reps, || {
        run_frontend(&kernel, &config, ExecPolicy::Plain, Some(&cache)).expect("warm front end")
    });
    let snapshot = cache.snapshot();
    assert!(snapshot.hits() > 0, "warm pass must be served from cache");

    let benches = format!(
        concat!(
            "{{\n",
            "    \"galerkin_assembly_serial_vs_parallel\": {{\n",
            "      \"triangles\": {},\n",
            "      \"threads\": {},\n",
            "      \"serial_secs\": {:.6},\n",
            "      \"parallel_secs\": {:.6},\n",
            "      \"speedup\": {:.3}\n",
            "    }},\n",
            "    \"pipeline_cold_vs_warm_cache\": {{\n",
            "      \"cold_secs\": {:.6},\n",
            "      \"warm_secs\": {:.6},\n",
            "      \"speedup\": {:.3},\n",
            "      \"warm_hits\": {}\n",
            "    }}\n",
            "  }}"
        ),
        mesh.len(),
        threads,
        serial_secs,
        parallel_secs,
        serial_secs / parallel_secs.max(1e-12),
        cold_secs,
        warm_secs,
        cold_secs / warm_secs.max(1e-12),
        snapshot.hits(),
    );

    match args.get_str("report", "") {
        path if path.is_empty() => println!("{{\n  \"benches\": {benches}\n}}"),
        path => {
            let report = std::fs::read_to_string(&path)
                .unwrap_or_else(|e| panic!("reading report {path}: {e}"));
            let body = report
                .trim_end()
                .strip_suffix('}')
                .unwrap_or_else(|| panic!("report {path} is not a JSON object"))
                .trim_end()
                .to_string();
            let merged = format!("{body},\n  \"benches\": {benches}\n}}\n");
            std::fs::write(&path, merged)
                .unwrap_or_else(|e| panic!("writing report {path}: {e}"));
            eprintln!(
                "pipeline_bench: assembly x{:.2} at {threads} threads, warm cache x{:.2} — merged into {path}",
                serial_secs / parallel_secs.max(1e-12),
                cold_secs / warm_secs.max(1e-12),
            );
        }
    }
}
