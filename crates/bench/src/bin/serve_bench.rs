//! Overload acceptance bench for the `klest-serve` daemon, emitted into a
//! `BENCH_*.json` run report (see `scripts/bench_report.sh`).
//!
//! Replays one long newline-delimited JSON stream against an in-process
//! [`Server`] — thousands of mixed warm/cold queries plus hostile traffic
//! (an injected panic, worker-pinning hangs, a deadline storm, and a
//! flood deep enough to overflow the admission queue) — then checks the
//! robustness contract end to end:
//!
//! - every shed is a **typed** response (`overloaded` with a retry hint,
//!   or `deadline_expired`), never a dropped line;
//! - the injected panic terminates as a typed `fault` after a retry,
//!   and the hangs are broken by their deadlines (cancelled/salvaged);
//! - every *admitted healthy* query completes, and the drain is clean;
//! - warm-cache queries are served without re-running mesh/assembly/
//!   eigensolve (cold vs warm latency is reported from the obs
//!   histograms).
//!
//! With `--report PATH` a top-level `"serve"` object is merged into the
//! existing run report; without it the JSON object prints to stdout.

use klest_bench::Args;
use klest_obs::{snapshot, HistState};
use klest_serve::{ServeConfig, Server};
use std::io::Cursor;
use std::time::{Duration, Instant};

/// The three distinct kernel/die configurations the replay cycles over.
/// Each is a different artifact-cache key, so the first query per config
/// is cold and everything after is warm.
const CONFIGS: [&str; 3] = [
    r#""gates":16,"samples":32,"area_fraction":0.1"#,
    r#""gates":16,"samples":32,"area_fraction":0.1,"kernel":"exponential","c":2.0"#,
    r#""gates":16,"samples":32,"area_fraction":0.1,"kernel":"gaussian","dist":0.7"#,
];

fn hist(name: &str) -> Option<HistState> {
    snapshot()
        .histograms
        .into_iter()
        .find(|(n, _)| n == name)
        .map(|(_, h)| h)
}

fn mean_ms(h: &Option<HistState>) -> f64 {
    h.as_ref().and_then(|h| h.mean()).unwrap_or(0.0)
}

fn count(h: &Option<HistState>) -> u64 {
    h.as_ref().map(|h| h.count).unwrap_or(0)
}

fn main() {
    let args = Args::parse();
    let requests: usize = args.get::<usize>("requests", 2000).max(200);
    let workers: usize = args.get("workers", 2);
    // Default depth scales with the replay size so the flood always
    // overflows admission regardless of `--requests`.
    let queue_depth: usize = args.get("queue-depth", (requests / 8).clamp(64, 256));
    let storm: usize = args.get("storm", 40);

    klest_obs::reset();
    klest_obs::enable();

    // The replay injects one panicking query on purpose; keep the default
    // hook's backtrace for real panics but stay quiet for the drill.
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let drill = info
            .payload()
            .downcast_ref::<String>()
            .is_some_and(|m| m.contains("fault drill"));
        if !drill {
            default_hook(info);
        }
    }));

    // One stream, four phases. Ordering is what makes the run
    // deterministic: the hostile traffic goes in *first*, while the
    // queue is near-empty (guaranteed admission); the two hangs then pin
    // both workers for ~300 ms, so the 1 ms deadline storm behind them
    // expires in the queue, and the warm flood behind *that* overflows
    // the admission queue.
    let mut input = String::new();
    for (i, cfg) in CONFIGS.iter().enumerate() {
        input.push_str(&format!("{{\"id\":\"prime-{i}\",{cfg}}}\n"));
    }
    // A panicking query, a hang broken by its deadline, and a two-shard
    // hang whose surviving shard is salvaged.
    input.push_str(&format!(
        "{{\"id\":\"boom\",\"inject_panic\":true,{}}}\n",
        CONFIGS[0]
    ));
    input.push_str(&format!(
        "{{\"id\":\"hang\",\"inject_hang_ms\":30000,\"deadline_ms\":300,{}}}\n",
        CONFIGS[0]
    ));
    input.push_str(&format!(
        "{{\"id\":\"sal\",\"inject_hang_ms\":30000,\"deadline_ms\":300,\"threads\":2,{}}}\n",
        CONFIGS[0]
    ));
    // Deadline storm: 1 ms deadlines queued behind the pinned workers,
    // so each expires while queued and is shed without consuming a
    // worker.
    for i in 0..storm {
        let cfg = CONFIGS[i % CONFIGS.len()];
        input.push_str(&format!("{{\"id\":\"dl-{i}\",\"deadline_ms\":1,{cfg}}}\n"));
    }
    // Warm flood: overflows the queue while the workers are pinned.
    for i in 0..requests {
        let cfg = CONFIGS[i % CONFIGS.len()];
        input.push_str(&format!("{{\"id\":\"w{i}\",{cfg}}}\n"));
    }
    input.push_str("{\"op\":\"shutdown\"}\n");

    let config = ServeConfig {
        workers,
        queue_depth,
        drain: Duration::from_secs(120),
        ..ServeConfig::default()
    };
    let server = Server::new(config);
    let mut out: Vec<u8> = Vec::new();
    let started = Instant::now();
    let summary = server.serve(Cursor::new(input), &mut out);
    let wall_secs = started.elapsed().as_secs_f64();
    let text = String::from_utf8(out).expect("responses are UTF-8");
    let lines: Vec<&str> = text.lines().collect();

    // Contract 1: exactly one terminal response per admitted query, and
    // one response line per received request (+ drain ack + summary).
    assert_eq!(
        summary.admitted,
        summary.admitted_terminals(),
        "every admitted query must get exactly one terminal response: {summary:?}"
    );
    assert!(summary.drained_clean, "drain must finish cleanly: {summary:?}");
    assert!(summary.shutdown, "shutdown request must start the drain");
    assert_eq!(summary.bad_requests, 0, "the replay stream is well-formed");

    // Contract 2: overload and queue-deadline sheds are typed responses.
    assert!(
        summary.shed_overload >= 1,
        "the flood must overflow depth {queue_depth}: {summary:?}"
    );
    let typed_overloads = lines
        .iter()
        .filter(|l| l.contains("\"reason\":\"overloaded\"") && l.contains("\"retry_after_ms\":"))
        .count() as u64;
    assert_eq!(
        typed_overloads, summary.shed_overload,
        "each overload shed must carry a typed retry hint"
    );
    assert!(
        summary.shed_deadline >= 1,
        "the 1 ms deadline storm must expire in the queue: {summary:?}"
    );

    // Contract 3: faulty traffic is isolated, healthy traffic completes.
    let find = |id: &str| {
        let pat = format!("\"id\":\"{id}\"");
        *lines
            .iter()
            .find(|l| l.contains(&pat))
            .unwrap_or_else(|| panic!("no response for {id}"))
    };
    assert!(
        find("boom").contains("\"status\":\"fault\""),
        "injected panic must be a typed fault: {}",
        find("boom")
    );
    for id in ["hang", "sal"] {
        let line = find(id);
        assert!(
            ["\"status\":\"cancelled\"", "\"status\":\"salvaged\""]
                .iter()
                .any(|p| line.contains(p)),
            "{id} must be broken by its deadline, not completed or dropped: {line}"
        );
    }
    assert_eq!(summary.faults, 1, "only the injected panic may fault: {summary:?}");
    let healthy_admitted = summary.admitted
        - summary.faults
        - summary.cancelled
        - summary.salvaged
        - summary.shed_deadline
        - summary.shed_draining;
    assert_eq!(
        summary.completed, healthy_admitted,
        "every admitted healthy query must complete: {summary:?}"
    );
    assert!(
        summary.completed >= CONFIGS.len() as u64,
        "at least the cold primes must complete: {summary:?}"
    );

    // Contract 4: the shared artifact cache serves the flood warm.
    let warm = hist("serve.latency_ms.warm");
    let cold = hist("serve.latency_ms.cold");
    let wait = hist("serve.queue_wait_ms");
    assert!(
        count(&warm) > 0,
        "warm queries must be classified against the shared cache"
    );
    assert_eq!(
        count(&warm) + count(&cold),
        summary.completed + summary.salvaged,
        "every completed query lands in exactly one latency histogram"
    );

    // The deadline-SLO window after the replay: the storm and the two
    // hangs are recorded misses, healthy deadline-carriers are hits.
    let slo = server.slo_snapshot();
    let opt_json = |v: Option<f64>| match v {
        Some(x) => format!("{x:.6}"),
        None => "null".to_string(),
    };

    // Freeze the main replay's obs registry before the overhead arms
    // pollute it with their own traffic.
    let snap = snapshot();

    // telemetry_overhead: the same all-warm healthy traffic replayed
    // twice on fresh daemons — telemetry dark (obs sink off, no traces)
    // vs fully lit (obs on, per-request traces, stats probes) — to put
    // a measured number on what the observability layer costs.
    let overhead_requests = (requests / 4).clamp(100, 500);
    let bench_arm = |telemetry_on: bool| -> (u64, f64) {
        if telemetry_on {
            klest_obs::enable();
        } else {
            klest_obs::disable();
        }
        let config = ServeConfig {
            workers,
            queue_depth: overhead_requests + 8,
            drain: Duration::from_secs(120),
            trace_responses: telemetry_on,
            ..ServeConfig::default()
        };
        let server = Server::new(config);
        // Prime the cache outside the timed window so both arms replay
        // pure warm traffic.
        let prime = format!("{{\"id\":\"prime\",{}}}\n", CONFIGS[0]);
        server.serve(Cursor::new(prime), Vec::new());
        let mut input = String::new();
        for i in 0..overhead_requests {
            let trace = if telemetry_on { "\"trace\":true," } else { "" };
            input.push_str(&format!("{{\"id\":\"o{i}\",{trace}{}}}\n", CONFIGS[0]));
            if telemetry_on && i % 50 == 0 {
                input.push_str("{\"op\":\"stats\"}\n");
            }
        }
        let started = Instant::now();
        let summary = server.serve(Cursor::new(input), Vec::new());
        let secs = started.elapsed().as_secs_f64();
        assert_eq!(
            summary.completed, overhead_requests as u64,
            "overhead arm (telemetry_on={telemetry_on}) must complete everything: {summary:?}"
        );
        (summary.completed, secs)
    };
    // Interleaved median-of-three per arm: at ~0.3 s a run, scheduler
    // noise is ±8% on any single measurement and symmetric, so the
    // median is a far better estimate of the true cost than min or mean.
    let mut off_runs = Vec::new();
    let mut on_runs = Vec::new();
    let mut off_done = 0;
    let mut on_done = 0;
    for _ in 0..3 {
        let (done, secs) = bench_arm(false);
        off_done = done;
        off_runs.push(secs);
        let (done, secs) = bench_arm(true);
        on_done = done;
        on_runs.push(secs);
    }
    let median = |runs: &mut Vec<f64>| {
        runs.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        runs[runs.len() / 2]
    };
    let off_secs = median(&mut off_runs);
    let on_secs = median(&mut on_runs);
    klest_obs::enable();
    let off_qps = off_done as f64 / off_secs.max(1e-9);
    let on_qps = on_done as f64 / on_secs.max(1e-9);
    let overhead_pct = (off_qps / on_qps.max(1e-9) - 1.0) * 100.0;
    // The acceptance target is ≤5%; the hard gate is looser so a noisy
    // shared CI box cannot flake the bench, while the exact number is
    // always in the report for the tracked comparison.
    assert!(
        overhead_pct <= 50.0,
        "telemetry overhead out of hand: off {off_qps:.1} q/s vs on {on_qps:.1} q/s ({overhead_pct:.1}%)"
    );

    // Embed every serve.* counter/gauge/histogram from the obs registry,
    // so the admission metrics ride along in the merged report.
    let mut metrics: Vec<String> = Vec::new();
    for (name, v) in &snap.counters {
        if name.starts_with("serve.") {
            metrics.push(format!("      \"{name}\": {v}"));
        }
    }
    for (name, v) in &snap.gauges {
        if name.starts_with("serve.") {
            metrics.push(format!("      \"{name}\": {v}"));
        }
    }
    for (name, h) in &snap.histograms {
        if name.starts_with("serve.") {
            metrics.push(format!(
                "      \"{name}\": {{ \"count\": {}, \"mean_ms\": {:.3} }}",
                h.count,
                h.mean().unwrap_or(0.0)
            ));
        }
    }
    let metrics = metrics.join(",\n");

    let serve = format!(
        concat!(
            "{{\n",
            "    \"requests\": {},\n",
            "    \"received\": {},\n",
            "    \"admitted\": {},\n",
            "    \"completed\": {},\n",
            "    \"salvaged\": {},\n",
            "    \"shed_overload\": {},\n",
            "    \"shed_deadline\": {},\n",
            "    \"cancelled\": {},\n",
            "    \"faults\": {},\n",
            "    \"workers\": {},\n",
            "    \"queue_depth\": {},\n",
            "    \"latency_ms_warm_mean\": {:.3},\n",
            "    \"latency_ms_cold_mean\": {:.3},\n",
            "    \"queue_wait_ms_mean\": {:.3},\n",
            "    \"wall_secs\": {:.3},\n",
            "    \"drained_clean\": {},\n",
            "    \"slo\": {{ \"target\": {}, \"window_total\": {}, \"window_met\": {}, ",
            "\"fraction\": {}, \"error_budget_remaining\": {} }},\n",
            "    \"telemetry_overhead\": {{ \"requests\": {}, \"off_qps\": {:.1}, ",
            "\"on_qps\": {:.1}, \"overhead_pct\": {:.2} }},\n",
            "    \"metrics\": {{\n{}\n    }}\n",
            "  }}"
        ),
        requests,
        summary.received,
        summary.admitted,
        summary.completed,
        summary.salvaged,
        summary.shed_overload,
        summary.shed_deadline,
        summary.cancelled,
        summary.faults,
        workers,
        queue_depth,
        mean_ms(&warm),
        mean_ms(&cold),
        mean_ms(&wait),
        wall_secs,
        summary.drained_clean,
        slo.target,
        slo.total,
        slo.met,
        opt_json(slo.fraction()),
        opt_json(slo.error_budget_remaining()),
        overhead_requests,
        off_qps,
        on_qps,
        overhead_pct,
        metrics,
    );

    match args.get_str("report", "") {
        path if path.is_empty() => println!("{{\n  \"serve\": {serve}\n}}"),
        path => {
            let report = std::fs::read_to_string(&path)
                .unwrap_or_else(|e| panic!("reading report {path}: {e}"));
            let body = report
                .trim_end()
                .strip_suffix('}')
                .unwrap_or_else(|| panic!("report {path} is not a JSON object"))
                .trim_end()
                .to_string();
            let merged = format!("{body},\n  \"serve\": {serve}\n}}\n");
            std::fs::write(&path, merged)
                .unwrap_or_else(|e| panic!("writing report {path}: {e}"));
            eprintln!(
                "serve_bench: {} completed / {} shed of {} received in {wall_secs:.2}s, drain clean — merged into {path}",
                summary.completed,
                summary.shed_overload + summary.shed_deadline,
                summary.received,
            );
        }
    }
}
