//! Table 1: percentage mismatch in worst-delay mean (e_μ) and std-dev
//! (e_σ) between the reference Monte Carlo STA (Algorithm 1) and the
//! covariance-kernel STA (Algorithm 2), plus the speedup, for the 14
//! ISCAS85/89-sized circuits.
//!
//! The paper runs 100 K samples on up to 22 K gates; the default here is
//! scaled (see EXPERIMENTS.md) — `--scale 1 --samples 100000` reproduces
//! the full setting given enough time and ~8 GB of memory for the largest
//! Cholesky factor.
//!
//! ```text
//! cargo run --release -p klest-bench --bin table1 -- --samples 2000 --scale 0.2
//! ```

use klest_bench::{default_threads, print_table, Args};
use klest_circuit::{benchmark_scaled, TABLE1_BENCHMARKS};
use klest_kernels::GaussianKernel;
use klest_ssta::experiments::{compare_methods, CircuitSetup, KleContext};
use klest_ssta::McConfig;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args = Args::parse();
    let samples: usize = args.get("samples", 2000);
    let scale: f64 = args.get("scale", 0.2);
    let seed: u64 = args.get("seed", 2008);
    let threads: usize = args.get("threads", default_threads());
    let max_gates: usize = args.get("max-gates", usize::MAX);
    let kernel = GaussianKernel::with_correlation_distance(args.get("dist", 1.0));

    eprintln!(
        "# Table 1: {samples} samples, gate-count scale {scale}, {threads} threads, kernel c = {:.4}",
        kernel.decay()
    );
    eprintln!("# building KLE context (paper mesh: 0.1% area, 28 deg, m = 200, 1% tail)...");
    let ctx = KleContext::paper_default(&kernel)?;
    eprintln!(
        "# mesh n = {} (paper: 1546), rank r = {} (paper: 25), eigenpair setup {:.2}s (paper: 11.2s Matlab)",
        ctx.mesh.len(),
        ctx.rank,
        ctx.setup_time.as_secs_f64()
    );

    let mut rows = Vec::new();
    for id in TABLE1_BENCHMARKS {
        let circuit = benchmark_scaled(id, scale)?;
        if circuit.gate_count() > max_gates {
            eprintln!("# skipping {id} ({} gates > --max-gates {max_gates})", circuit.gate_count());
            continue;
        }
        let setup = CircuitSetup::prepare(&circuit);
        let config = McConfig::new(samples, seed).with_threads(threads);
        let cmp = compare_methods(&setup, &kernel, &ctx, &config)?;
        eprintln!(
            "# {}: Ng = {}, e_mu = {:.3}%, e_sigma = {:.3}%, speedup = {:.2} ({:.2}s vs {:.2}s)",
            cmp.name,
            cmp.gates,
            cmp.e_mu_pct,
            cmp.e_sigma_pct,
            cmp.speedup,
            cmp.mc_time.as_secs_f64(),
            cmp.kle_time.as_secs_f64()
        );
        rows.push(vec![
            cmp.name.clone(),
            cmp.gates.to_string(),
            format!("{:.3}", cmp.e_mu_pct),
            format!("{:.3}", cmp.e_sigma_pct),
            format!("{:.2}", cmp.speedup),
            format!("{:.2}", cmp.mc_time.as_secs_f64()),
            format!("{:.2}", cmp.kle_time.as_secs_f64()),
        ]);
    }
    print_table(
        &["circuit", "Ng", "e_mu_%", "e_sigma_%", "speedup", "mc_s", "kle_s"],
        &rows,
    );
    eprintln!("# paper shape: e_mu ~ 0.003-0.109%, e_sigma ~ 0.03-5.6%, speedup < 1 for small circuits growing to ~10x for large ones");
    Ok(())
}
