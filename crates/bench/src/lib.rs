//! Support utilities for the experiment harness binaries that regenerate
//! the paper's tables and figures (see DESIGN.md's experiment index and
//! EXPERIMENTS.md for recorded outputs).

use std::collections::HashMap;

pub mod microbench;

/// A `--key value` pair whose value failed to parse as the expected
/// type. Carries everything a caller needs to build a typed, user-facing
/// error (the CLI maps it to `KlestError::InvalidArgument`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArgParseError {
    /// Flag name, without the leading `--`.
    pub key: String,
    /// The raw value supplied on the command line.
    pub value: String,
    /// The parser's message.
    pub message: String,
}

impl std::fmt::Display for ArgParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "--{} {}: {}", self.key, self.value, self.message)
    }
}

impl std::error::Error for ArgParseError {}

/// Minimal `--key value` / `--flag` argument parser for the harness
/// binaries (no external CLI dependency needed for eight tiny tools).
#[derive(Debug, Clone)]
pub struct Args {
    values: HashMap<String, String>,
    flags: Vec<String>,
}

impl Args {
    /// Parses `std::env::args()` (skipping the binary name).
    pub fn parse() -> Self {
        Self::from_iter(std::env::args().skip(1))
    }

    /// Parses an explicit argument list.
    #[allow(clippy::should_implement_trait)] // not a collection; keep the evocative name
    pub fn from_iter<I: IntoIterator<Item = String>>(args: I) -> Self {
        let mut values = HashMap::new();
        let mut flags = Vec::new();
        let mut iter = args.into_iter().peekable();
        while let Some(arg) = iter.next() {
            if let Some(key) = arg.strip_prefix("--") {
                match iter.peek() {
                    Some(v) if !v.starts_with("--") => {
                        values.insert(key.to_string(), iter.next().expect("peeked"));
                    }
                    _ => flags.push(key.to_string()),
                }
            }
        }
        Args { values, flags }
    }

    /// Typed lookup with default.
    ///
    /// # Panics
    ///
    /// Panics with a clear message when the value does not parse.
    pub fn get<T: std::str::FromStr>(&self, key: &str, default: T) -> T
    where
        T::Err: std::fmt::Debug,
    {
        match self.values.get(key) {
            Some(v) => v.parse().unwrap_or_else(|e| panic!("--{key} {v}: {e:?}")),
            None => default,
        }
    }

    /// Typed lookup with default that surfaces malformed values as a
    /// typed [`ArgParseError`] instead of panicking — the parser the CLI
    /// uses so `klest ssta --samples banana` is a clean error, not a
    /// crash.
    ///
    /// # Errors
    ///
    /// [`ArgParseError`] when the value is present but does not parse.
    pub fn try_get<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, ArgParseError>
    where
        T::Err: std::fmt::Display,
    {
        match self.values.get(key) {
            Some(v) => v.parse().map_err(|e: T::Err| ArgParseError {
                key: key.to_string(),
                value: v.clone(),
                message: e.to_string(),
            }),
            None => Ok(default),
        }
    }

    /// String lookup with default.
    pub fn get_str(&self, key: &str, default: &str) -> String {
        self.values
            .get(key)
            .cloned()
            .unwrap_or_else(|| default.to_string())
    }

    /// Boolean flag presence.
    pub fn flag(&self, key: &str) -> bool {
        self.flags.iter().any(|f| f == key)
    }
}

/// Number of worker threads to default to: physical parallelism minus
/// one, at least one.
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get().saturating_sub(1).max(1))
        .unwrap_or(1)
}

/// Prints a row-separated markdown-ish table.
pub fn print_table(headers: &[&str], rows: &[Vec<String>]) {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let line = |cells: &[String]| {
        let padded: Vec<String> = cells
            .iter()
            .zip(&widths)
            .map(|(c, w)| format!("{c:>w$}"))
            .collect();
        println!("| {} |", padded.join(" | "));
    };
    line(&headers.iter().map(|h| h.to_string()).collect::<Vec<_>>());
    println!(
        "|{}|",
        widths
            .iter()
            .map(|w| "-".repeat(w + 2))
            .collect::<Vec<_>>()
            .join("|")
    );
    for row in rows {
        line(row);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &str) -> Args {
        Args::from_iter(s.split_whitespace().map(String::from))
    }

    #[test]
    fn parses_values_and_flags() {
        let a = args("--samples 500 --full --scale 0.25");
        assert_eq!(a.get::<usize>("samples", 1), 500);
        assert_eq!(a.get::<f64>("scale", 1.0), 0.25);
        assert!(a.flag("full"));
        assert!(!a.flag("quick"));
        assert_eq!(a.get::<u64>("seed", 7), 7, "default applies");
        assert_eq!(a.get_str("sweep", "r"), "r");
    }

    #[test]
    fn value_then_flag_disambiguation() {
        let a = args("--verbose --n 10");
        assert!(a.flag("verbose"));
        assert_eq!(a.get::<usize>("n", 0), 10);
    }

    #[test]
    #[should_panic]
    fn bad_value_panics() {
        let a = args("--n ten");
        let _ = a.get::<usize>("n", 0);
    }

    #[test]
    fn try_get_returns_typed_error() {
        let a = args("--n ten --scale 0.5");
        assert_eq!(a.try_get::<f64>("scale", 1.0).unwrap(), 0.5);
        assert_eq!(a.try_get::<usize>("missing", 42).unwrap(), 42);
        let e = a.try_get::<usize>("n", 0).unwrap_err();
        assert_eq!(e.key, "n");
        assert_eq!(e.value, "ten");
        assert!(e.to_string().contains("--n ten"), "{e}");
    }

    #[test]
    fn threads_positive() {
        assert!(default_threads() >= 1);
    }
}
