//! Minimal in-tree micro-benchmark harness with a criterion-shaped API.
//!
//! The workspace builds fully offline, so the benches cannot depend on the
//! `criterion` crate. This module provides the small slice of its API the
//! bench files use — `Criterion`, `benchmark_group`, `sample_size`,
//! `bench_function`, `bench_with_input`, `BenchmarkId`, `b.iter(..)` and
//! the `criterion_group!`/`criterion_main!` macros — backed by a simple
//! calibrate-then-sample timer that reports the median time per iteration.
//!
//! Invocation mirrors cargo's conventions: `cargo bench` runs everything;
//! a positional argument filters benchmarks by substring; `--test` (passed
//! by `cargo test --benches`) runs each body once without timing.

use std::time::{Duration, Instant};

/// Per-sample time budget used when calibrating iteration counts.
const TARGET_SAMPLE: Duration = Duration::from_millis(5);

/// Top-level harness state: CLI filter and test-mode flag.
#[derive(Debug, Clone, Default)]
pub struct Criterion {
    filter: Option<String>,
    test_mode: bool,
}

impl Criterion {
    /// Builds the harness from `std::env::args()` (cargo bench passes
    /// `--bench`, cargo test passes `--test`; a bare argument filters by
    /// substring).
    pub fn from_args() -> Self {
        let mut filter = None;
        let mut test_mode = false;
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--test" => test_mode = true,
                a if a.starts_with("--") => {}
                a => filter = Some(a.to_string()),
            }
        }
        Criterion { filter, test_mode }
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: 20,
            c: self,
        }
    }

    fn selected(&self, id: &str) -> bool {
        self.filter.as_deref().is_none_or(|f| id.contains(f))
    }
}

/// Identifier for one benchmark within a group: `function/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// A two-part id, e.g. `BenchmarkId::new("centroid", mesh.len())`.
    pub fn new(name: impl std::fmt::Display, param: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{name}/{param}"),
        }
    }

    /// A parameter-only id, e.g. `BenchmarkId::from_parameter(gates)`.
    pub fn from_parameter(param: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: param.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> Self {
        BenchmarkId {
            id: name.to_string(),
        }
    }
}

/// A group of benchmarks sharing a name prefix and sample budget.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    c: &'a Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples to collect per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Benchmarks `f`, which receives a [`Bencher`] and must call
    /// [`Bencher::iter`].
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into().id);
        if self.c.selected(&full) {
            let mut b = Bencher {
                test_mode: self.c.test_mode,
                sample_size: self.sample_size,
                stats: None,
            };
            f(&mut b);
            b.report(&full);
        }
        self
    }

    /// Benchmarks `f` with a borrowed input, criterion-style.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group (kept for API compatibility; reporting is
    /// per-benchmark).
    pub fn finish(self) {}
}

/// Per-iteration timing summary of one benchmark: order statistics over
/// the sorted sample set plus the calibrated inner-loop iteration count.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SampleStats {
    /// Fastest sample — the least-perturbed measurement.
    pub min: Duration,
    /// Arithmetic mean across samples.
    pub mean: Duration,
    /// Median sample (the headline number; robust to outliers).
    pub median: Duration,
    /// 95th-percentile sample — the noise ceiling.
    pub p95: Duration,
    /// Iterations per sample chosen by calibration.
    pub iters: u64,
}

/// Timing driver handed to each benchmark body.
#[derive(Debug)]
pub struct Bencher {
    test_mode: bool,
    sample_size: usize,
    stats: Option<SampleStats>,
}

impl Bencher {
    /// Runs `f` repeatedly and records per-iteration order statistics
    /// (min / mean / median / p95) over the timed samples.
    ///
    /// In test mode (`--test`) the body runs exactly once, untimed, so
    /// `cargo test --benches` stays fast while still exercising the code.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        if self.test_mode {
            std::hint::black_box(f());
            return;
        }
        // Calibrate: one timed call decides how many iterations fill a
        // sample without starving fast bodies of resolution.
        let t0 = Instant::now();
        std::hint::black_box(f());
        let once = t0.elapsed().max(Duration::from_nanos(1));
        let iters = (TARGET_SAMPLE.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u64;

        let mut samples = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(f());
            }
            samples.push(start.elapsed() / iters as u32);
        }
        samples.sort_unstable();
        let n = samples.len();
        let mean = samples.iter().sum::<Duration>() / n as u32;
        self.stats = Some(SampleStats {
            min: samples[0],
            mean,
            median: samples[n / 2],
            // Nearest-rank p95, clamped to the last sample.
            p95: samples[((n * 95).div_ceil(100)).saturating_sub(1).min(n - 1)],
            iters,
        });
    }

    /// The collected statistics (`None` in test mode or before `iter`).
    pub fn stats(&self) -> Option<&SampleStats> {
        self.stats.as_ref()
    }

    fn report(&self, id: &str) {
        match &self.stats {
            Some(s) => println!(
                "{id:<55} median {:>12}  min {} mean {} p95 {}  ({} samples x {} iters)",
                fmt(s.median),
                fmt(s.min),
                fmt(s.mean),
                fmt(s.p95),
                self.sample_size,
                s.iters
            ),
            None if self.test_mode => println!("{id:<55} ok (test mode)"),
            None => println!("{id:<55} (no measurement: body never called iter)"),
        }
    }
}

/// Human-readable duration with unit scaling.
fn fmt(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 10_000 {
        format!("{ns} ns/iter")
    } else if ns < 10_000_000 {
        format!("{:.2} µs/iter", ns as f64 / 1e3)
    } else if ns < 10_000_000_000 {
        format!("{:.2} ms/iter", ns as f64 / 1e6)
    } else {
        format!("{:.2} s/iter", ns as f64 / 1e9)
    }
}

/// Bundles benchmark functions into a single runner, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($func:path),+ $(,)?) => {
        fn $name(c: &mut $crate::microbench::Criterion) {
            $( $func(c); )+
        }
    };
}

/// Entry point for a `harness = false` bench target.
#[macro_export]
macro_rules! criterion_main {
    ($name:ident) => {
        fn main() {
            let mut c = $crate::microbench::Criterion::from_args();
            $name(&mut c);
        }
    };
}

pub use crate::{criterion_group, criterion_main};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("centroid", 742).id, "centroid/742");
        assert_eq!(BenchmarkId::from_parameter(800).id, "800");
        assert_eq!(BenchmarkId::from("plain").id, "plain");
    }

    #[test]
    fn test_mode_runs_body_once() {
        let c = Criterion {
            filter: None,
            test_mode: true,
        };
        let mut calls = 0;
        let mut group = BenchmarkGroup {
            name: "g".into(),
            sample_size: 20,
            c: &c,
        };
        group.bench_function("once", |b| b.iter(|| calls += 1));
        group.finish();
        assert_eq!(calls, 1);
    }

    #[test]
    fn filter_skips_unmatched() {
        let c = Criterion {
            filter: Some("wanted".into()),
            test_mode: true,
        };
        let mut ran = false;
        let mut group = BenchmarkGroup {
            name: "g".into(),
            sample_size: 20,
            c: &c,
        };
        group.bench_function("other", |b| b.iter(|| ran = true));
        group.finish();
        assert!(!ran);
    }

    #[test]
    fn timed_mode_measures_something() {
        let c = Criterion {
            filter: None,
            test_mode: false,
        };
        let mut b = Bencher {
            test_mode: c.test_mode,
            sample_size: 3,
            stats: None,
        };
        b.iter(|| std::hint::black_box(1 + 1));
        let s = b.stats().expect("timed mode collects stats");
        assert!(s.iters >= 1);
        // Order statistics over a sorted sample set respect
        // min <= median <= p95 and min <= mean <= p95.
        assert!(s.min <= s.median && s.median <= s.p95);
        assert!(s.min <= s.mean && s.mean <= s.p95);
    }
}
