//! Synthetic benchmark generator.
//!
//! Produces random combinational DAGs with ISCAS-like shape: bounded
//! fanin (1–3), a fanout distribution dominated by small fanouts with a
//! heavy-ish tail, reconvergent paths, and logic depth growing slowly
//! with size. Generation is fully deterministic in the seed so every
//! experiment is reproducible.

use crate::{Circuit, CircuitError, GateKind, NodeId};
use klest_rng::{Rng, SeedableRng, StdRng};

/// Parameters of the synthetic generator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GeneratorConfig {
    /// Number of logic gates to create (primary inputs are extra).
    pub gates: usize,
    /// Number of primary inputs.
    pub inputs: usize,
    /// RNG seed — same seed, same circuit.
    pub seed: u64,
    /// Locality bias in (0, 1]: higher values make gates prefer recent
    /// fanins, producing deeper circuits (ISCAS85-ish ≈ 0.9 for
    /// multipliers; lower for shallow control logic).
    pub locality: f64,
}

impl GeneratorConfig {
    /// A reasonable configuration for a combinational (c-series-like)
    /// circuit of `gates` gates.
    pub fn combinational(gates: usize, seed: u64) -> Self {
        GeneratorConfig {
            gates,
            // ISCAS85 circuits have tens to a couple hundred inputs.
            inputs: (gates as f64).sqrt().ceil() as usize + 8,
            seed,
            locality: 0.85,
        }
    }

    /// A configuration mimicking an unrolled sequential (s-series-like)
    /// circuit: many more "inputs" (flip-flop outputs) and shallower
    /// logic.
    pub fn sequential(gates: usize, seed: u64) -> Self {
        GeneratorConfig {
            gates,
            inputs: (gates as f64).sqrt().ceil() as usize * 3 + 16,
            seed,
            locality: 0.6,
        }
    }
}

/// Generates a synthetic circuit.
///
/// # Errors
///
/// Propagates [`CircuitError`] from the builder (cannot occur for a valid
/// configuration) and rejects configurations with zero gates or inputs
/// via [`CircuitError::Empty`].
pub fn generate(name: impl Into<String>, config: GeneratorConfig) -> Result<Circuit, CircuitError> {
    if config.gates == 0 || config.inputs == 0 {
        return Err(CircuitError::Empty);
    }
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut b = Circuit::builder(name);
    let mut nodes: Vec<NodeId> = (0..config.inputs).map(|_| b.input()).collect();
    // Track fanout counts so we can mark sinks as primary outputs.
    let mut fanout_count = vec![0usize; config.inputs + config.gates];

    for _ in 0..config.gates {
        // Pick a gate kind; weights approximate standard-cell mix.
        let kind = pick_kind(&mut rng);
        let k = kind.fanin_count();
        let mut fanins = Vec::with_capacity(k);
        for _ in 0..k {
            let src = pick_fanin(&mut rng, &nodes, config.locality, &fanins);
            fanins.push(src);
        }
        let id = b.gate(kind, &fanins)?;
        for f in &fanins {
            fanout_count[f.index()] += 1;
        }
        nodes.push(id);
    }

    // Primary outputs: every logic node with no fanout.
    let mut any_output = false;
    for &n in nodes.iter().skip(config.inputs) {
        if fanout_count[n.index()] == 0 {
            b.output(n);
            any_output = true;
        }
    }
    if !any_output {
        // Degenerate but possible for tiny circuits: expose the last gate.
        b.output(*nodes.last().expect("at least one node"));
    }
    b.build()
}

fn pick_kind(rng: &mut StdRng) -> GateKind {
    // (kind, weight): mostly 2-input gates, some inverters/buffers, a few
    // 3-input gates — a plausible mapped-netlist mix.
    const MIX: &[(GateKind, u32)] = &[
        (GateKind::Inv, 14),
        (GateKind::Buf, 4),
        (GateKind::Nand2, 28),
        (GateKind::Nor2, 16),
        (GateKind::And2, 12),
        (GateKind::Or2, 10),
        (GateKind::Xor2, 8),
        (GateKind::Nand3, 5),
        (GateKind::Nor3, 3),
    ];
    let total: u32 = MIX.iter().map(|&(_, w)| w).sum();
    let mut roll = rng.gen_range(0..total);
    for &(kind, w) in MIX {
        if roll < w {
            return kind;
        }
        roll -= w;
    }
    GateKind::Nand2
}

/// Chooses a fanin with a geometric locality bias toward recent nodes,
/// avoiding duplicate pins on the same gate.
fn pick_fanin(rng: &mut StdRng, nodes: &[NodeId], locality: f64, taken: &[NodeId]) -> NodeId {
    let n = nodes.len();
    for _ in 0..16 {
        let candidate = if rng.gen::<f64>() < locality {
            // Geometric look-back: distance ~ Geom(p) capped at n.
            let p: f64 = 0.02;
            let u: f64 = rng.gen::<f64>().max(1e-12);
            let back = (u.ln() / (1.0 - p).ln()).ceil() as usize;
            nodes[n - 1 - back.min(n - 1)]
        } else {
            nodes[rng.gen_range(0..n)]
        };
        if !taken.contains(&candidate) {
            return candidate;
        }
    }
    // Fall back to any non-duplicate scan.
    *nodes
        .iter()
        .rev()
        .find(|c| !taken.contains(c))
        .unwrap_or(&nodes[0])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_gate_count() {
        for &n in &[10, 100, 383, 1000] {
            let c = generate("t", GeneratorConfig::combinational(n, 1)).unwrap();
            assert_eq!(c.gate_count(), n, "gate count for n = {n}");
            assert!(c.input_count() > 0);
            assert!(!c.outputs().is_empty());
        }
    }

    #[test]
    fn deterministic_in_seed() {
        let a = generate("a", GeneratorConfig::combinational(200, 42)).unwrap();
        let b = generate("b", GeneratorConfig::combinational(200, 42)).unwrap();
        assert_eq!(a.node_count(), b.node_count());
        for id in a.topological_order() {
            assert_eq!(a.kind(id), b.kind(id));
            assert_eq!(a.fanins(id), b.fanins(id));
        }
        let c = generate("c", GeneratorConfig::combinational(200, 43)).unwrap();
        let same = a
            .topological_order()
            .all(|id| a.kind(id) == c.kind(id) && a.fanins(id) == c.fanins(id));
        assert!(!same, "different seeds must differ");
    }

    #[test]
    fn depth_grows_slowly_with_size() {
        let small = generate("s", GeneratorConfig::combinational(100, 7)).unwrap();
        let large = generate("l", GeneratorConfig::combinational(5000, 7)).unwrap();
        assert!(small.depth() >= 4, "depth {}", small.depth());
        assert!(large.depth() > small.depth());
        assert!(
            large.depth() < large.gate_count() / 10,
            "depth {} too close to gate count",
            large.depth()
        );
    }

    #[test]
    fn no_duplicate_pins() {
        let c = generate("d", GeneratorConfig::combinational(500, 3)).unwrap();
        for id in c.topological_order() {
            let f = c.fanins(id);
            for i in 0..f.len() {
                for j in (i + 1)..f.len() {
                    assert_ne!(f[i], f[j], "duplicate pin on {id}");
                }
            }
        }
    }

    #[test]
    fn sequential_config_has_more_inputs() {
        let comb = GeneratorConfig::combinational(1000, 1);
        let seq = GeneratorConfig::sequential(1000, 1);
        assert!(seq.inputs > comb.inputs);
        let c = generate("s", seq).unwrap();
        assert_eq!(c.gate_count(), 1000);
    }

    #[test]
    fn outputs_have_no_fanout() {
        let c = generate("o", GeneratorConfig::combinational(300, 9)).unwrap();
        for &o in c.outputs() {
            assert!(c.fanouts(o).is_empty(), "output {o} has fanout");
        }
    }

    #[test]
    fn rejects_degenerate_config() {
        assert!(generate(
            "z",
            GeneratorConfig { gates: 0, inputs: 4, seed: 0, locality: 0.5 }
        )
        .is_err());
        assert!(generate(
            "z",
            GeneratorConfig { gates: 5, inputs: 0, seed: 0, locality: 0.5 }
        )
        .is_err());
    }

    #[test]
    fn fanout_distribution_is_skewed() {
        // Most nodes have small fanout; a few have large fanout.
        let c = generate("f", GeneratorConfig::combinational(2000, 11)).unwrap();
        let mut counts: Vec<usize> = c
            .topological_order()
            .map(|id| c.fanouts(id).len())
            .collect();
        counts.sort_unstable();
        let median = counts[counts.len() / 2];
        let max = *counts.last().unwrap();
        assert!(median <= 3, "median fanout {median}");
        assert!(max >= 8, "max fanout {max}");
    }
}
