//! Netlist text format: a small ISCAS89-flavoured bench dialect so
//! circuits can be saved, diffed and loaded by downstream tools.
//!
//! ```text
//! # comment
//! INPUT(n0)
//! INPUT(n1)
//! n2 = NAND2(n0, n1)
//! n3 = INV(n2)
//! OUTPUT(n3)
//! ```
//!
//! Node names must be `n<index>` with indices in topological order (the
//! writer always produces this; the reader enforces it, mirroring the
//! builder's invariant).

use crate::{Circuit, GateKind, NodeId};
use std::collections::HashMap;
use std::fmt::Write as _;

/// Errors from netlist parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseNetlistError {
    /// A line did not match any of the accepted forms.
    Syntax {
        /// 1-based line number.
        line: usize,
        /// The offending text.
        text: String,
    },
    /// An unknown gate kind name.
    UnknownGate {
        /// 1-based line number.
        line: usize,
        /// The gate name found.
        kind: String,
    },
    /// A reference to an undeclared node.
    UnknownNode {
        /// 1-based line number.
        line: usize,
        /// The node name found.
        node: String,
    },
    /// The same node was defined twice.
    DuplicateNode {
        /// 1-based line number.
        line: usize,
        /// The node name.
        node: String,
    },
    /// Structural validation failed after parsing.
    Circuit(crate::CircuitError),
}

impl std::fmt::Display for ParseNetlistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseNetlistError::Syntax { line, text } => {
                write!(f, "line {line}: cannot parse '{text}'")
            }
            ParseNetlistError::UnknownGate { line, kind } => {
                write!(f, "line {line}: unknown gate kind '{kind}'")
            }
            ParseNetlistError::UnknownNode { line, node } => {
                write!(f, "line {line}: unknown node '{node}'")
            }
            ParseNetlistError::DuplicateNode { line, node } => {
                write!(f, "line {line}: node '{node}' defined twice")
            }
            ParseNetlistError::Circuit(e) => write!(f, "invalid circuit: {e}"),
        }
    }
}

impl std::error::Error for ParseNetlistError {}

impl From<crate::CircuitError> for ParseNetlistError {
    fn from(e: crate::CircuitError) -> Self {
        ParseNetlistError::Circuit(e)
    }
}

fn kind_name(kind: GateKind) -> &'static str {
    match kind {
        GateKind::Input => "INPUT",
        GateKind::Buf => "BUF",
        GateKind::Inv => "INV",
        GateKind::Nand2 => "NAND2",
        GateKind::Nor2 => "NOR2",
        GateKind::And2 => "AND2",
        GateKind::Or2 => "OR2",
        GateKind::Xor2 => "XOR2",
        GateKind::Nand3 => "NAND3",
        GateKind::Nor3 => "NOR3",
    }
}

fn kind_from_name(name: &str) -> Option<GateKind> {
    Some(match name {
        "BUF" => GateKind::Buf,
        "INV" | "NOT" => GateKind::Inv,
        "NAND2" | "NAND" => GateKind::Nand2,
        "NOR2" | "NOR" => GateKind::Nor2,
        "AND2" | "AND" => GateKind::And2,
        "OR2" | "OR" => GateKind::Or2,
        "XOR2" | "XOR" => GateKind::Xor2,
        "NAND3" => GateKind::Nand3,
        "NOR3" => GateKind::Nor3,
        _ => return None,
    })
}

/// Serialises a circuit to the bench dialect.
pub fn write_netlist(circuit: &Circuit) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "# {}", circuit.name());
    for id in circuit.topological_order() {
        match circuit.kind(id) {
            GateKind::Input => {
                let _ = writeln!(out, "INPUT({id})");
            }
            kind => {
                let fanins: Vec<String> =
                    circuit.fanins(id).iter().map(|f| f.to_string()).collect();
                let _ = writeln!(out, "{id} = {}({})", kind_name(kind), fanins.join(", "));
            }
        }
    }
    for o in circuit.outputs() {
        let _ = writeln!(out, "OUTPUT({o})");
    }
    out
}

/// Parses the bench dialect back into a [`Circuit`].
///
/// # Errors
///
/// [`ParseNetlistError`] describing the first problem found, with its
/// line number.
pub fn parse_netlist(name: impl Into<String>, text: &str) -> Result<Circuit, ParseNetlistError> {
    let mut builder = Circuit::builder(name);
    let mut ids: HashMap<String, NodeId> = HashMap::new();
    let mut outputs: Vec<(usize, String)> = Vec::new();

    for (lineno, raw) in text.lines().enumerate() {
        let line = lineno + 1;
        let trimmed = raw.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        if let Some(inner) = strip_call(trimmed, "INPUT") {
            let node = inner.trim().to_string();
            if ids.contains_key(&node) {
                return Err(ParseNetlistError::DuplicateNode { line, node });
            }
            let id = builder.input();
            ids.insert(node, id);
        } else if let Some(inner) = strip_call(trimmed, "OUTPUT") {
            outputs.push((line, inner.trim().to_string()));
        } else if let Some((lhs, rhs)) = trimmed.split_once('=') {
            let target = lhs.trim().to_string();
            if ids.contains_key(&target) {
                return Err(ParseNetlistError::DuplicateNode { line, node: target });
            }
            let rhs = rhs.trim();
            let (kind_str, args) = rhs
                .split_once('(')
                .ok_or_else(|| ParseNetlistError::Syntax {
                    line,
                    text: trimmed.to_string(),
                })?;
            let args = args
                .strip_suffix(')')
                .ok_or_else(|| ParseNetlistError::Syntax {
                    line,
                    text: trimmed.to_string(),
                })?;
            let kind = kind_from_name(kind_str.trim().to_ascii_uppercase().as_str()).ok_or_else(
                || ParseNetlistError::UnknownGate {
                    line,
                    kind: kind_str.trim().to_string(),
                },
            )?;
            let mut fanins = Vec::new();
            for a in args.split(',') {
                let node = a.trim();
                let id = ids
                    .get(node)
                    .copied()
                    .ok_or_else(|| ParseNetlistError::UnknownNode {
                        line,
                        node: node.to_string(),
                    })?;
                fanins.push(id);
            }
            let id = builder.gate(kind, &fanins)?;
            ids.insert(target, id);
        } else {
            return Err(ParseNetlistError::Syntax {
                line,
                text: trimmed.to_string(),
            });
        }
    }
    for (line, node) in outputs {
        let id = ids
            .get(&node)
            .copied()
            .ok_or(ParseNetlistError::UnknownNode { line, node })?;
        builder.output(id);
    }
    Ok(builder.build()?)
}

fn strip_call<'a>(line: &'a str, keyword: &str) -> Option<&'a str> {
    line.strip_prefix(keyword)?
        .trim_start()
        .strip_prefix('(')?
        .strip_suffix(')')
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{generate, GeneratorConfig};

    #[test]
    fn roundtrip_tiny() {
        let text = "\
# tiny
INPUT(a)
INPUT(b)
g = NAND2(a, b)
h = INV(g)
OUTPUT(h)
";
        let c = parse_netlist("tiny", text).unwrap();
        assert_eq!(c.gate_count(), 2);
        assert_eq!(c.input_count(), 2);
        assert_eq!(c.outputs().len(), 1);
        assert_eq!(c.kind(NodeId(2)), GateKind::Nand2);
        // Write and re-parse: structurally identical.
        let written = write_netlist(&c);
        let c2 = parse_netlist("tiny2", &written).unwrap();
        assert_eq!(c.node_count(), c2.node_count());
        for id in c.topological_order() {
            assert_eq!(c.kind(id), c2.kind(id));
            assert_eq!(c.fanins(id), c2.fanins(id));
        }
        assert_eq!(c.outputs(), c2.outputs());
    }

    #[test]
    fn roundtrip_generated_circuits() {
        for seed in [1u64, 7, 42] {
            let c = generate("gen", GeneratorConfig::combinational(300, seed)).unwrap();
            let text = write_netlist(&c);
            let back = parse_netlist("gen", &text).unwrap();
            assert_eq!(c.node_count(), back.node_count());
            assert_eq!(c.outputs(), back.outputs());
            for id in c.topological_order() {
                assert_eq!(c.kind(id), back.kind(id), "kind mismatch at {id}");
                assert_eq!(c.fanins(id), back.fanins(id), "fanin mismatch at {id}");
            }
        }
    }

    #[test]
    fn comments_blank_lines_aliases() {
        let text = "\n\
# header comment
INPUT(x)
y = NOT(x)
z = BUF (y)
OUTPUT(z)
";
        let c = parse_netlist("alias", text).unwrap();
        assert_eq!(c.kind(NodeId(1)), GateKind::Inv);
        assert_eq!(c.kind(NodeId(2)), GateKind::Buf);
    }

    #[test]
    fn error_reporting() {
        let bad_syntax = parse_netlist("x", "INPUT(a)\nwhat is this\n");
        assert!(matches!(
            bad_syntax.unwrap_err(),
            ParseNetlistError::Syntax { line: 2, .. }
        ));
        let bad_gate = parse_netlist("x", "INPUT(a)\nb = FROB(a)\nOUTPUT(b)");
        assert!(matches!(
            bad_gate.unwrap_err(),
            ParseNetlistError::UnknownGate { line: 2, .. }
        ));
        let bad_node = parse_netlist("x", "INPUT(a)\nb = INV(zz)\nOUTPUT(b)");
        assert!(matches!(
            bad_node.unwrap_err(),
            ParseNetlistError::UnknownNode { line: 2, .. }
        ));
        let dup = parse_netlist("x", "INPUT(a)\nINPUT(a)\n");
        assert!(matches!(
            dup.unwrap_err(),
            ParseNetlistError::DuplicateNode { line: 2, .. }
        ));
        let dangling_output = parse_netlist("x", "INPUT(a)\nOUTPUT(qq)\n");
        assert!(matches!(
            dangling_output.unwrap_err(),
            ParseNetlistError::UnknownNode { .. }
        ));
        let wrong_arity = parse_netlist("x", "INPUT(a)\nb = NAND2(a)\nOUTPUT(b)");
        assert!(matches!(
            wrong_arity.unwrap_err(),
            ParseNetlistError::Circuit(_)
        ));
        // Display formats mention line numbers.
        let msg = ParseNetlistError::Syntax { line: 9, text: "zz".into() }.to_string();
        assert!(msg.contains("line 9"));
    }

    #[test]
    fn all_gate_kinds_roundtrip_names() {
        for &k in GateKind::logic_kinds() {
            let name = kind_name(k);
            assert_eq!(kind_from_name(name), Some(k), "{name}");
        }
    }
}
