//! # klest-circuit
//!
//! Gate-level circuit substrate for the SSTA experiments: netlist data
//! structures, a synthetic benchmark generator reproducing the ISCAS85/89
//! circuit sizes of the paper's Table 1, recursive-bisection placement
//! (standing in for the Capo placer [23]), and half-perimeter-wirelength
//! wire loads.
//!
//! The original ISCAS netlists are not redistributable here; see DESIGN.md
//! for why synthetic circuits with matched gate counts and realistic
//! topology preserve the paper's comparison (the experiments measure
//! statistical agreement and sampling cost, which depend on circuit size,
//! gate locations and path structure, not on specific Boolean functions).
//!
//! ```
//! use klest_circuit::{benchmark, BenchmarkId, Placement};
//!
//! # fn main() -> Result<(), klest_circuit::CircuitError> {
//! let circuit = benchmark(BenchmarkId::C880)?;
//! assert_eq!(circuit.gate_count(), 383);
//! let placement = Placement::recursive_bisection(&circuit);
//! assert_eq!(placement.len(), circuit.node_count());
//! # Ok(())
//! # }
//! ```

#![deny(missing_docs)]

mod generator;
mod io;
mod netlist;
mod partition;
mod placement;
mod stats;
mod suite;
mod wire;

pub use generator::{GeneratorConfig, generate};
pub use io::{parse_netlist, write_netlist, ParseNetlistError};
pub use netlist::{Circuit, CircuitError, GateKind, NodeId};
pub use partition::Partition;
pub use placement::Placement;
pub use stats::CircuitStats;
pub use suite::{benchmark, benchmark_scaled, BenchmarkId, TABLE1_BENCHMARKS};
pub use wire::{WireModel, WireParasitics};
