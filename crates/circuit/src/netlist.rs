//! Netlist data structures: a combinational DAG of logic gates.

use std::fmt;

/// Index of a node (primary input or gate) in a [`Circuit`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The index as a usize.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Logic function of a node.
///
/// `Input` nodes model primary inputs *and* (for the unrolled s-series
/// benchmarks) flip-flop outputs; they have no fanins and zero intrinsic
/// delay.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GateKind {
    /// Primary input / register output (no fanins).
    Input,
    /// Buffer (1 fanin).
    Buf,
    /// Inverter (1 fanin).
    Inv,
    /// 2-input NAND.
    Nand2,
    /// 2-input NOR.
    Nor2,
    /// 2-input AND.
    And2,
    /// 2-input OR.
    Or2,
    /// 2-input XOR.
    Xor2,
    /// 3-input NAND.
    Nand3,
    /// 3-input NOR.
    Nor3,
}

impl GateKind {
    /// Number of fanin pins this gate kind expects.
    pub fn fanin_count(&self) -> usize {
        match self {
            GateKind::Input => 0,
            GateKind::Buf | GateKind::Inv => 1,
            GateKind::Nand2 | GateKind::Nor2 | GateKind::And2 | GateKind::Or2 | GateKind::Xor2 => 2,
            GateKind::Nand3 | GateKind::Nor3 => 3,
        }
    }

    /// All logic (non-input) kinds.
    pub fn logic_kinds() -> &'static [GateKind] {
        &[
            GateKind::Buf,
            GateKind::Inv,
            GateKind::Nand2,
            GateKind::Nor2,
            GateKind::And2,
            GateKind::Or2,
            GateKind::Xor2,
            GateKind::Nand3,
            GateKind::Nor3,
        ]
    }
}

impl fmt::Display for GateKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            GateKind::Input => "INPUT",
            GateKind::Buf => "BUF",
            GateKind::Inv => "INV",
            GateKind::Nand2 => "NAND2",
            GateKind::Nor2 => "NOR2",
            GateKind::And2 => "AND2",
            GateKind::Or2 => "OR2",
            GateKind::Xor2 => "XOR2",
            GateKind::Nand3 => "NAND3",
            GateKind::Nor3 => "NOR3",
        };
        f.write_str(s)
    }
}

/// Errors constructing or validating a circuit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CircuitError {
    /// A gate references a fanin at or after itself (the builder requires
    /// nodes in topological order) or out of range.
    InvalidFanin {
        /// The gate being added.
        node: u32,
        /// The offending fanin reference.
        fanin: u32,
    },
    /// The fanin list length does not match the gate kind.
    FaninCountMismatch {
        /// The gate being added.
        node: u32,
        /// Expected pins.
        expected: usize,
        /// Supplied pins.
        got: usize,
    },
    /// An output was declared for a node that does not exist.
    UnknownOutput {
        /// The dangling node reference.
        node: u32,
    },
    /// The circuit has no primary output.
    NoOutputs,
    /// The circuit has no nodes at all.
    Empty,
}

impl fmt::Display for CircuitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CircuitError::InvalidFanin { node, fanin } => {
                write!(f, "node n{node} references invalid fanin n{fanin}")
            }
            CircuitError::FaninCountMismatch { node, expected, got } => {
                write!(f, "node n{node} expects {expected} fanins, got {got}")
            }
            CircuitError::UnknownOutput { node } => {
                write!(f, "output references unknown node n{node}")
            }
            CircuitError::NoOutputs => write!(f, "circuit declares no primary outputs"),
            CircuitError::Empty => write!(f, "circuit has no nodes"),
        }
    }
}

impl std::error::Error for CircuitError {}

/// A combinational gate-level circuit.
///
/// Nodes are stored in topological order (fanins always precede their
/// consumers), which the builder enforces; timing analysis can therefore
/// propagate arrival times with a single forward sweep.
#[derive(Debug, Clone)]
pub struct Circuit {
    name: String,
    kinds: Vec<GateKind>,
    /// Flattened fanin lists.
    fanins: Vec<Vec<NodeId>>,
    /// Fanout adjacency (derived).
    fanouts: Vec<Vec<NodeId>>,
    outputs: Vec<NodeId>,
    input_count: usize,
}

impl Circuit {
    /// Starts building a circuit with the given name.
    pub fn builder(name: impl Into<String>) -> CircuitBuilder {
        CircuitBuilder {
            name: name.into(),
            kinds: Vec::new(),
            fanins: Vec::new(),
            outputs: Vec::new(),
        }
    }

    /// Circuit name (e.g. `"c1908"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Total node count (inputs + gates).
    pub fn node_count(&self) -> usize {
        self.kinds.len()
    }

    /// Number of logic gates (excluding primary inputs) — the `N_g` of
    /// Table 1.
    pub fn gate_count(&self) -> usize {
        self.node_count() - self.input_count
    }

    /// Number of primary inputs.
    pub fn input_count(&self) -> usize {
        self.input_count
    }

    /// Primary outputs.
    pub fn outputs(&self) -> &[NodeId] {
        &self.outputs
    }

    /// Kind of node `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn kind(&self, id: NodeId) -> GateKind {
        self.kinds[id.index()]
    }

    /// Fanins of node `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn fanins(&self, id: NodeId) -> &[NodeId] {
        &self.fanins[id.index()]
    }

    /// Fanouts of node `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn fanouts(&self, id: NodeId) -> &[NodeId] {
        &self.fanouts[id.index()]
    }

    /// All nodes in topological order.
    pub fn topological_order(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.node_count() as u32).map(NodeId)
    }

    /// Iterator over the primary-input nodes.
    pub fn inputs(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.topological_order()
            .filter(move |&id| self.kind(id) == GateKind::Input)
    }

    /// Logic depth: the longest input-to-output path measured in gates.
    pub fn depth(&self) -> usize {
        let mut level = vec![0usize; self.node_count()];
        let mut max = 0;
        for id in self.topological_order() {
            let l = self
                .fanins(id)
                .iter()
                .map(|f| level[f.index()] + 1)
                .max()
                .unwrap_or(0);
            level[id.index()] = l;
            max = max.max(l);
        }
        max
    }

    /// Per-node logic level (0 for primary inputs).
    pub fn levels(&self) -> Vec<usize> {
        let mut level = vec![0usize; self.node_count()];
        for id in self.topological_order() {
            level[id.index()] = self
                .fanins(id)
                .iter()
                .map(|f| level[f.index()] + 1)
                .max()
                .unwrap_or(0);
        }
        level
    }
}

/// Builder enforcing topological construction of a [`Circuit`].
#[derive(Debug, Clone)]
pub struct CircuitBuilder {
    name: String,
    kinds: Vec<GateKind>,
    fanins: Vec<Vec<NodeId>>,
    outputs: Vec<NodeId>,
}

impl CircuitBuilder {
    /// Adds a primary input, returning its id.
    pub fn input(&mut self) -> NodeId {
        let id = NodeId(self.kinds.len() as u32);
        self.kinds.push(GateKind::Input);
        self.fanins.push(Vec::new());
        id
    }

    /// Adds a gate with the given fanins, returning its id.
    ///
    /// # Errors
    ///
    /// [`CircuitError::FaninCountMismatch`] or
    /// [`CircuitError::InvalidFanin`] (forward or out-of-range references).
    pub fn gate(&mut self, kind: GateKind, fanins: &[NodeId]) -> Result<NodeId, CircuitError> {
        let id = NodeId(self.kinds.len() as u32);
        if fanins.len() != kind.fanin_count() {
            return Err(CircuitError::FaninCountMismatch {
                node: id.0,
                expected: kind.fanin_count(),
                got: fanins.len(),
            });
        }
        for f in fanins {
            if f.0 >= id.0 {
                return Err(CircuitError::InvalidFanin { node: id.0, fanin: f.0 });
            }
        }
        self.kinds.push(kind);
        self.fanins.push(fanins.to_vec());
        Ok(id)
    }

    /// Declares a primary output.
    pub fn output(&mut self, node: NodeId) -> &mut Self {
        self.outputs.push(node);
        self
    }

    /// Finalises the circuit.
    ///
    /// # Errors
    ///
    /// [`CircuitError::Empty`], [`CircuitError::NoOutputs`] or
    /// [`CircuitError::UnknownOutput`].
    pub fn build(self) -> Result<Circuit, CircuitError> {
        if self.kinds.is_empty() {
            return Err(CircuitError::Empty);
        }
        if self.outputs.is_empty() {
            return Err(CircuitError::NoOutputs);
        }
        for o in &self.outputs {
            if o.index() >= self.kinds.len() {
                return Err(CircuitError::UnknownOutput { node: o.0 });
            }
        }
        let mut fanouts = vec![Vec::new(); self.kinds.len()];
        for (i, fs) in self.fanins.iter().enumerate() {
            for f in fs {
                fanouts[f.index()].push(NodeId(i as u32));
            }
        }
        let input_count = self
            .kinds
            .iter()
            .filter(|&&k| k == GateKind::Input)
            .count();
        Ok(Circuit {
            name: self.name,
            kinds: self.kinds,
            fanins: self.fanins,
            fanouts,
            outputs: self.outputs,
            input_count,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Circuit {
        // a, b inputs; g = NAND2(a, b); h = INV(g); output h.
        let mut b = Circuit::builder("tiny");
        let a = b.input();
        let bb = b.input();
        let g = b.gate(GateKind::Nand2, &[a, bb]).unwrap();
        let h = b.gate(GateKind::Inv, &[g]).unwrap();
        b.output(h);
        b.build().unwrap()
    }

    #[test]
    fn counts_and_accessors() {
        let c = tiny();
        assert_eq!(c.name(), "tiny");
        assert_eq!(c.node_count(), 4);
        assert_eq!(c.gate_count(), 2);
        assert_eq!(c.input_count(), 2);
        assert_eq!(c.outputs(), &[NodeId(3)]);
        assert_eq!(c.kind(NodeId(2)), GateKind::Nand2);
        assert_eq!(c.fanins(NodeId(2)), &[NodeId(0), NodeId(1)]);
        assert_eq!(c.fanouts(NodeId(0)), &[NodeId(2)]);
        assert_eq!(c.fanouts(NodeId(2)), &[NodeId(3)]);
        assert_eq!(c.inputs().count(), 2);
        assert_eq!(c.depth(), 2);
        assert_eq!(c.levels(), vec![0, 0, 1, 2]);
    }

    #[test]
    fn builder_rejects_bad_fanin_counts() {
        let mut b = Circuit::builder("bad");
        let a = b.input();
        let e = b.gate(GateKind::Nand2, &[a]);
        assert!(matches!(
            e,
            Err(CircuitError::FaninCountMismatch { expected: 2, got: 1, .. })
        ));
    }

    #[test]
    fn builder_rejects_forward_references() {
        let mut b = Circuit::builder("fwd");
        let a = b.input();
        let e = b.gate(GateKind::Inv, &[NodeId(5)]);
        assert!(matches!(e, Err(CircuitError::InvalidFanin { fanin: 5, .. })));
        let e2 = b.gate(GateKind::Buf, &[NodeId(a.0 + 1)]);
        assert!(e2.is_err());
    }

    #[test]
    fn builder_rejects_empty_and_no_outputs() {
        assert_eq!(
            Circuit::builder("e").build().unwrap_err(),
            CircuitError::Empty
        );
        let mut b = Circuit::builder("n");
        b.input();
        assert_eq!(b.build().unwrap_err(), CircuitError::NoOutputs);
    }

    #[test]
    fn builder_rejects_unknown_output() {
        let mut b = Circuit::builder("u");
        b.input();
        b.output(NodeId(7));
        assert!(matches!(
            b.build().unwrap_err(),
            CircuitError::UnknownOutput { node: 7 }
        ));
    }

    #[test]
    fn gate_kind_pin_counts() {
        assert_eq!(GateKind::Input.fanin_count(), 0);
        assert_eq!(GateKind::Inv.fanin_count(), 1);
        assert_eq!(GateKind::Xor2.fanin_count(), 2);
        assert_eq!(GateKind::Nand3.fanin_count(), 3);
        for k in GateKind::logic_kinds() {
            assert!(k.fanin_count() >= 1);
            assert!(!format!("{k}").is_empty());
        }
        assert_eq!(format!("{}", NodeId(3)), "n3");
    }

    #[test]
    fn error_display() {
        assert!(CircuitError::NoOutputs.to_string().contains("output"));
        assert!(CircuitError::Empty.to_string().contains("no nodes"));
        assert!(CircuitError::InvalidFanin { node: 1, fanin: 2 }
            .to_string()
            .contains("n2"));
    }
}
