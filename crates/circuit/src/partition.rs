//! Die-region partitioning for hierarchical SSTA.
//!
//! [`Partition`] extends the recursive-bisection placement into a block
//! decomposition: the same DFS post-order and alternating median cuts
//! that drive [`Placement`](crate::Placement) are stopped early, leaving
//! `blocks` contiguous index ranges, each owning one rectangular die
//! region. Because the partition tree is a prefix of the placement tree,
//! every node's placement location falls inside its block's rectangle,
//! and the block rectangles tile the die exactly.
//!
//! Each block exposes its boundary: *cut inputs* (nodes in other blocks
//! feeding a gate in this block) and *cut outputs* (nodes in this block
//! feeding a gate elsewhere). A per-block content hash over the region
//! rectangle and the contained netlist arcs gives the hierarchical
//! engine a content-addressed cache key; callers fold in gate-parameter
//! bits so an edit re-keys exactly one block.

use crate::placement::bfs_order;
use crate::{Circuit, NodeId};
use klest_geometry::{Point2, Rect};

/// One die-region block of a [`Partition`].
#[derive(Debug, Clone)]
struct Block {
    rect: Rect,
    nodes: Vec<NodeId>,
    cut_inputs: Vec<NodeId>,
    cut_outputs: Vec<NodeId>,
    content_hash: u64,
}

/// A decomposition of a circuit into die-region blocks, produced by the
/// same recursive bisection as [`Placement`](crate::Placement) but
/// stopped at a target block count.
#[derive(Debug, Clone)]
pub struct Partition {
    die: Rect,
    blocks: Vec<Block>,
    node_block: Vec<u32>,
}

/// FNV-1a offset basis / prime, matching the content-addressing used by
/// the artifact cache (`klest-core`).
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv1a_u64(hash: u64, v: u64) -> u64 {
    let mut h = hash;
    for byte in v.to_le_bytes() {
        h ^= byte as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

impl Partition {
    /// Partitions `circuit` into at most `blocks` die-region blocks on
    /// the normalized `[-1, 1]²` die.
    ///
    /// `blocks` is clamped to `[1, node_count]`. The decomposition is a
    /// pure function of the circuit and the block count — deterministic
    /// across runs and processes.
    pub fn build(circuit: &Circuit, blocks: usize) -> Self {
        Self::build_on(circuit, blocks, Rect::unit_die())
    }

    /// Partitions `circuit` on an arbitrary rectangular die.
    pub fn build_on(circuit: &Circuit, blocks: usize, die: Rect) -> Self {
        let order = bfs_order(circuit);
        let n = order.len();
        let target = blocks.clamp(1, n.max(1));
        // Leaves of the (partial) bisection tree: (lo, hi, rect,
        // vertical-cut flag). Splitting always picks the most populous
        // leaf (ties: lowest lo), so the leaf set is a deterministic
        // prefix of the full placement recursion tree.
        let mut leaves: Vec<(usize, usize, Rect, bool)> = vec![(0, n, die, true)];
        while leaves.len() < target {
            let (pos, _) = leaves
                .iter()
                .enumerate()
                .max_by_key(|(i, (lo, hi, _, _))| (hi - lo, usize::MAX - i))
                .expect("leaves is non-empty");
            let (lo, hi, rect, vertical) = leaves.remove(pos);
            let count = hi - lo;
            if count <= 1 {
                // Every leaf is a single node already; cannot split further.
                leaves.push((lo, hi, rect, vertical));
                break;
            }
            let mid = lo + count / 2;
            let bbox = rect.bbox();
            if vertical {
                let cut = bbox.min.x + bbox.width() * (mid - lo) as f64 / count as f64;
                let left = Rect::new(bbox.min, Point2::new(cut, bbox.max.y));
                let right = Rect::new(Point2::new(cut, bbox.min.y), bbox.max);
                leaves.push((lo, mid, left, false));
                leaves.push((mid, hi, right, false));
            } else {
                let cut = bbox.min.y + bbox.height() * (mid - lo) as f64 / count as f64;
                let bottom = Rect::new(bbox.min, Point2::new(bbox.max.x, cut));
                let top = Rect::new(Point2::new(bbox.min.x, cut), bbox.max);
                leaves.push((lo, mid, bottom, true));
                leaves.push((mid, hi, top, true));
            }
        }
        // Stable block numbering: by index range, independent of the
        // order splits happened to be applied in.
        leaves.sort_by_key(|&(lo, _, _, _)| lo);

        let mut node_block = vec![0u32; n];
        let mut blocks: Vec<Block> = leaves
            .iter()
            .enumerate()
            .map(|(b, &(lo, hi, rect, _))| {
                let mut nodes: Vec<NodeId> = order[lo..hi].to_vec();
                // Ascending node-id order inside the block: node ids are
                // topological, so iterating a block's nodes visits every
                // fanin-before-fanout pair in order.
                nodes.sort_by_key(|id| id.index());
                for &id in &nodes {
                    node_block[id.index()] = b as u32;
                }
                Block {
                    rect,
                    nodes,
                    cut_inputs: Vec::new(),
                    cut_outputs: Vec::new(),
                    content_hash: 0,
                }
            })
            .collect();

        // Boundary sets: one pass over all arcs. A cross-block arc u→v
        // makes u a cut output of block(u) and a cut input of block(v).
        for (b, block) in blocks.iter_mut().enumerate() {
            let mut cut_inputs = Vec::new();
            let mut cut_outputs = Vec::new();
            for &id in &block.nodes {
                let mut crosses_out = false;
                for &f in circuit.fanins(id) {
                    if node_block[f.index()] as usize != b && !cut_inputs.contains(&f) {
                        cut_inputs.push(f);
                    }
                }
                for &o in circuit.fanouts(id) {
                    if node_block[o.index()] as usize != b {
                        crosses_out = true;
                    }
                }
                if crosses_out {
                    cut_outputs.push(id);
                }
            }
            cut_inputs.sort_by_key(|id| id.index());
            block.cut_inputs = cut_inputs;
            block.cut_outputs = cut_outputs;
        }

        // Content hash: region rect bits × contained netlist arcs (node
        // id, gate kind, fanin ids). Exact f64 bit patterns, same
        // discipline as the artifact-cache keys.
        for block in &mut blocks {
            let bbox = block.rect.bbox();
            let mut h = FNV_OFFSET;
            for v in [bbox.min.x, bbox.min.y, bbox.max.x, bbox.max.y] {
                h = fnv1a_u64(h, v.to_bits());
            }
            h = fnv1a_u64(h, block.nodes.len() as u64);
            for &id in &block.nodes {
                h = fnv1a_u64(h, id.index() as u64);
                h = fnv1a_u64(h, circuit.kind(id) as u64);
                for &f in circuit.fanins(id) {
                    h = fnv1a_u64(h, f.index() as u64);
                }
            }
            block.content_hash = h;
        }

        Partition {
            die,
            blocks,
            node_block,
        }
    }

    /// The die rectangle the blocks tile.
    pub fn die(&self) -> Rect {
        self.die
    }

    /// Number of blocks.
    pub fn block_count(&self) -> usize {
        self.blocks.len()
    }

    /// The block owning node `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn block_of(&self, id: NodeId) -> usize {
        self.node_block[id.index()] as usize
    }

    /// The die region of block `b`.
    ///
    /// # Panics
    ///
    /// Panics if `b` is out of range.
    pub fn rect(&self, b: usize) -> Rect {
        self.blocks[b].rect
    }

    /// The nodes of block `b`, in ascending node-id (topological) order.
    ///
    /// # Panics
    ///
    /// Panics if `b` is out of range.
    pub fn nodes(&self, b: usize) -> &[NodeId] {
        &self.blocks[b].nodes
    }

    /// Nodes in *other* blocks that feed a gate in block `b`, in
    /// ascending node-id order.
    ///
    /// # Panics
    ///
    /// Panics if `b` is out of range.
    pub fn cut_inputs(&self, b: usize) -> &[NodeId] {
        &self.blocks[b].cut_inputs
    }

    /// Nodes of block `b` that feed a gate in another block, in
    /// ascending node-id order.
    ///
    /// # Panics
    ///
    /// Panics if `b` is out of range.
    pub fn cut_outputs(&self, b: usize) -> &[NodeId] {
        &self.blocks[b].cut_outputs
    }

    /// Total number of distinct cut nodes (nodes with at least one
    /// cross-block arc on either side).
    pub fn cut_node_count(&self) -> usize {
        let mut cut = vec![false; self.node_block.len()];
        for b in 0..self.blocks.len() {
            for &id in &self.blocks[b].cut_outputs {
                cut[id.index()] = true;
            }
            for &id in &self.blocks[b].cut_inputs {
                cut[id.index()] = true;
            }
        }
        cut.iter().filter(|&&c| c).count()
    }

    /// Content hash of block `b`: region rect × contained netlist arcs
    /// (node ids, gate kinds, fanin ids), over exact f64 bit patterns.
    /// Fold per-gate parameter bits in with [`Partition::fold_params`]
    /// to get an edit-sensitive cache key.
    ///
    /// # Panics
    ///
    /// Panics if `b` is out of range.
    pub fn content_hash(&self, b: usize) -> u64 {
        self.blocks[b].content_hash
    }

    /// Folds caller-supplied words (gate-parameter bits, basis rank,
    /// …) into block `b`'s content hash, producing the region hash used
    /// as an artifact-cache key component.
    ///
    /// # Panics
    ///
    /// Panics if `b` is out of range.
    pub fn fold_params(&self, b: usize, words: impl IntoIterator<Item = u64>) -> u64 {
        let mut h = self.blocks[b].content_hash;
        for w in words {
            h = fnv1a_u64(h, w);
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{generate, GeneratorConfig, Placement};

    fn circuit(n: usize) -> Circuit {
        generate("p", GeneratorConfig::combinational(n, 5)).unwrap()
    }

    #[test]
    fn every_node_in_exactly_one_block() {
        let c = circuit(400);
        let p = Partition::build(&c, 8);
        assert_eq!(p.block_count(), 8);
        let mut seen = vec![0usize; c.node_count()];
        for b in 0..p.block_count() {
            for &id in p.nodes(b) {
                seen[id.index()] += 1;
                assert_eq!(p.block_of(id), b);
            }
        }
        assert!(seen.iter().all(|&s| s == 1), "every node exactly once");
    }

    #[test]
    fn rects_tile_the_die_and_contain_placement() {
        let c = circuit(600);
        let p = Partition::build(&c, 6);
        let die_area = p.die().bbox().area();
        let total: f64 = (0..p.block_count()).map(|b| p.rect(b).bbox().area()).sum();
        assert!(
            (total - die_area).abs() < 1e-9 * die_area,
            "areas {total} vs die {die_area}"
        );
        // The partition tree is a prefix of the placement tree, so every
        // placed node lands inside its block's rectangle.
        let place = Placement::recursive_bisection(&c);
        for b in 0..p.block_count() {
            for &id in p.nodes(b) {
                assert!(
                    p.rect(b).contains(place.location(id)),
                    "node {id} outside block {b}"
                );
            }
        }
    }

    #[test]
    fn cut_sets_consistent_from_both_sides() {
        let c = circuit(500);
        let p = Partition::build(&c, 5);
        for id in c.topological_order() {
            let b = p.block_of(id);
            for &f in c.fanins(id) {
                let fb = p.block_of(f);
                if fb != b {
                    assert!(p.cut_inputs(b).contains(&f), "{f} missing from inputs of {b}");
                    assert!(
                        p.cut_outputs(fb).contains(&f),
                        "{f} missing from outputs of {fb}"
                    );
                }
            }
        }
        assert!(p.cut_node_count() > 0, "multi-block partition must have cuts");
    }

    #[test]
    fn deterministic_across_runs() {
        let c = circuit(300);
        let a = Partition::build(&c, 7);
        let b = Partition::build(&c, 7);
        assert_eq!(a.block_count(), b.block_count());
        for i in 0..a.block_count() {
            assert_eq!(a.content_hash(i), b.content_hash(i));
            assert_eq!(a.nodes(i), b.nodes(i));
            assert_eq!(a.rect(i), b.rect(i));
        }
    }

    #[test]
    fn single_block_has_no_cuts() {
        let c = circuit(64);
        let p = Partition::build(&c, 1);
        assert_eq!(p.block_count(), 1);
        assert_eq!(p.cut_node_count(), 0);
        assert_eq!(p.nodes(0).len(), c.node_count());
    }

    #[test]
    fn block_count_clamped() {
        let c = circuit(16);
        let p = Partition::build(&c, 0);
        assert_eq!(p.block_count(), 1);
        let q = Partition::build(&c, 10_000);
        assert!(q.block_count() <= c.node_count());
    }

    #[test]
    fn param_fold_changes_hash() {
        let c = circuit(128);
        let p = Partition::build(&c, 4);
        let base = p.fold_params(0, []);
        assert_eq!(base, p.content_hash(0));
        let edited = p.fold_params(0, [0x3ff0_0000_0000_0000]);
        assert_ne!(base, edited);
    }
}
