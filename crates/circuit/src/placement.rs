//! Recursive-bisection placement (the Capo [23] stand-in).
//!
//! Capo is a min-cut recursive bisector; this module implements the same
//! strategy in simplified form: nodes are ordered by a depth-first
//! post-order from the primary outputs (so each logic cone occupies a
//! contiguous index range), then the ordered list is recursively split in
//! half with alternating vertical/horizontal cuts of the die. Connected
//! gates end up spatially near each other, which is exactly the property
//! the spatial-correlation experiments need.

use crate::{Circuit, NodeId};
use klest_geometry::{Point2, Rect};

/// A placement: one die location per circuit node, on the normalized die.
#[derive(Debug, Clone)]
pub struct Placement {
    die: Rect,
    locations: Vec<Point2>,
}

impl Placement {
    /// Places `circuit` on the normalized `[-1, 1]²` die with recursive
    /// bisection.
    pub fn recursive_bisection(circuit: &Circuit) -> Self {
        Self::recursive_bisection_on(circuit, Rect::unit_die())
    }

    /// Places `circuit` on an arbitrary rectangular die.
    pub fn recursive_bisection_on(circuit: &Circuit, die: Rect) -> Self {
        let order = bfs_order(circuit);
        let n = order.len();
        let mut locations = vec![Point2::ORIGIN; n];
        // Recursive split of the ordered slice into halves, assigning
        // sub-rectangles with alternating cut directions.
        let mut stack: Vec<(usize, usize, Rect, bool)> = vec![(0, n, die, true)];
        while let Some((lo, hi, rect, vertical)) = stack.pop() {
            let count = hi - lo;
            if count == 0 {
                continue;
            }
            if count == 1 {
                locations[order[lo].index()] = rect.bbox().center();
                continue;
            }
            let mid = lo + count / 2;
            let bbox = rect.bbox();
            if vertical {
                let cut = bbox.min.x + bbox.width() * (mid - lo) as f64 / count as f64;
                let left = Rect::new(bbox.min, Point2::new(cut, bbox.max.y));
                let right = Rect::new(Point2::new(cut, bbox.min.y), bbox.max);
                stack.push((lo, mid, left, false));
                stack.push((mid, hi, right, false));
            } else {
                let cut = bbox.min.y + bbox.height() * (mid - lo) as f64 / count as f64;
                let bottom = Rect::new(bbox.min, Point2::new(bbox.max.x, cut));
                let top = Rect::new(Point2::new(bbox.min.x, cut), bbox.max);
                stack.push((lo, mid, bottom, true));
                stack.push((mid, hi, top, true));
            }
        }
        Placement { die, locations }
    }

    /// The die rectangle.
    pub fn die(&self) -> Rect {
        self.die
    }

    /// Location of node `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn location(&self, id: NodeId) -> Point2 {
        self.locations[id.index()]
    }

    /// All locations, indexed by node.
    pub fn locations(&self) -> &[Point2] {
        &self.locations
    }

    /// Number of placed nodes.
    pub fn len(&self) -> usize {
        self.locations.len()
    }

    /// Whether the placement is empty.
    pub fn is_empty(&self) -> bool {
        self.locations.is_empty()
    }

    /// Total half-perimeter wirelength over all nets (driver + fanouts).
    pub fn total_hpwl(&self, circuit: &Circuit) -> f64 {
        let mut total = 0.0;
        for id in circuit.topological_order() {
            let fanouts = circuit.fanouts(id);
            if fanouts.is_empty() {
                continue;
            }
            let pins = std::iter::once(self.location(id))
                .chain(fanouts.iter().map(|&f| self.location(f)));
            if let Some(bbox) = klest_geometry::BBox::from_points(pins) {
                total += bbox.half_perimeter();
            }
        }
        total
    }
}

/// Depth-first post-order over the DAG from the primary outputs, walking
/// fanins. Each output's fan-in cone gets a contiguous index range, so
/// the recursive bisection keeps logic cones — i.e. connected gates —
/// spatially together (the property min-cut placers optimise for).
/// Unreachable nodes (none, in generated circuits) are appended at the
/// end.
pub(crate) fn bfs_order(circuit: &Circuit) -> Vec<NodeId> {
    let n = circuit.node_count();
    let mut seen = vec![false; n];
    let mut order = Vec::with_capacity(n);
    // Iterative DFS with an explicit (node, next-fanin) stack.
    let mut stack: Vec<(NodeId, usize)> = Vec::new();
    for &out in circuit.outputs() {
        if seen[out.index()] {
            continue;
        }
        seen[out.index()] = true;
        stack.push((out, 0));
        while let Some(&mut (id, ref mut next)) = stack.last_mut() {
            let fanins = circuit.fanins(id);
            if *next < fanins.len() {
                let f = fanins[*next];
                *next += 1;
                if !seen[f.index()] {
                    seen[f.index()] = true;
                    stack.push((f, 0));
                }
            } else {
                order.push(id);
                stack.pop();
            }
        }
    }
    for (i, &was_seen) in seen.iter().enumerate() {
        if !was_seen {
            order.push(NodeId(i as u32));
        }
    }
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{generate, GeneratorConfig};

    fn circuit(n: usize) -> Circuit {
        generate("p", GeneratorConfig::combinational(n, 5)).unwrap()
    }

    #[test]
    fn all_nodes_inside_die() {
        let c = circuit(500);
        let p = Placement::recursive_bisection(&c);
        assert_eq!(p.len(), c.node_count());
        assert!(!p.is_empty());
        for id in c.topological_order() {
            assert!(p.die().contains(p.location(id)), "node {id} off-die");
        }
    }

    #[test]
    fn placement_spreads_over_die() {
        // Not all in one corner: the bounding box of locations should
        // cover most of the die.
        let c = circuit(1000);
        let p = Placement::recursive_bisection(&c);
        let bbox = klest_geometry::BBox::from_points(p.locations().iter().copied()).unwrap();
        assert!(bbox.width() > 1.5, "width {}", bbox.width());
        assert!(bbox.height() > 1.5, "height {}", bbox.height());
    }

    #[test]
    fn connected_gates_are_nearby() {
        // The whole point of recursive bisection: average edge length is
        // much shorter than the average random-pair distance (~1.09 for
        // uniform points on [-1,1]²).
        let c = circuit(2000);
        let p = Placement::recursive_bisection(&c);
        let mut total = 0.0;
        let mut edges = 0usize;
        for id in c.topological_order() {
            for &f in c.fanins(id) {
                total += p.location(id).distance(p.location(f));
                edges += 1;
            }
        }
        let avg = total / edges as f64;
        assert!(avg < 0.7, "average edge length {avg} too long");
    }

    #[test]
    fn distinct_cells_for_most_nodes() {
        let c = circuit(300);
        let p = Placement::recursive_bisection(&c);
        let mut locs: Vec<(i64, i64)> = p
            .locations()
            .iter()
            .map(|l| ((l.x * 1e9) as i64, (l.y * 1e9) as i64))
            .collect();
        locs.sort_unstable();
        locs.dedup();
        assert!(
            locs.len() as f64 > 0.95 * p.len() as f64,
            "{} unique of {}",
            locs.len(),
            p.len()
        );
    }

    #[test]
    fn hpwl_is_positive_and_scales() {
        let small = circuit(100);
        let large = circuit(1000);
        let ps = Placement::recursive_bisection(&small);
        let pl = Placement::recursive_bisection(&large);
        let hs = ps.total_hpwl(&small);
        let hl = pl.total_hpwl(&large);
        assert!(hs > 0.0);
        assert!(hl > hs, "HPWL should grow with size: {hs} vs {hl}");
    }

    #[test]
    fn custom_die_respected() {
        let c = circuit(64);
        let die = Rect::new(Point2::new(0.0, 0.0), Point2::new(10.0, 5.0));
        let p = Placement::recursive_bisection_on(&c, die);
        for id in c.topological_order() {
            assert!(die.contains(p.location(id)));
        }
        assert_eq!(p.die(), die);
    }
}
