//! Circuit topology statistics.
//!
//! Used to sanity-check that synthetic benchmarks look like mapped
//! netlists (bounded fanin, skewed fanout, shallow-ish depth) and to
//! report workload characteristics alongside experiment results.

use crate::{Circuit, GateKind};

/// Topology summary of a circuit.
#[derive(Debug, Clone, PartialEq)]
pub struct CircuitStats {
    /// Total nodes (inputs + gates).
    pub nodes: usize,
    /// Logic gates (`N_g`).
    pub gates: usize,
    /// Primary inputs.
    pub inputs: usize,
    /// Primary outputs.
    pub outputs: usize,
    /// Longest input-to-output path in gates.
    pub depth: usize,
    /// Mean fanout over driving nodes.
    pub mean_fanout: f64,
    /// Largest fanout.
    pub max_fanout: usize,
    /// Mean fanin over logic gates.
    pub mean_fanin: f64,
    /// Gate-kind histogram `(kind, count)`, descending by count.
    pub kind_histogram: Vec<(GateKind, usize)>,
    /// Per-level gate counts (index = logic level).
    pub level_profile: Vec<usize>,
}

impl CircuitStats {
    /// Measures `circuit`.
    pub fn measure(circuit: &Circuit) -> Self {
        let nodes = circuit.node_count();
        let mut fanout_total = 0usize;
        let mut fanout_max = 0usize;
        let mut drivers = 0usize;
        let mut fanin_total = 0usize;
        let mut kinds: Vec<(GateKind, usize)> = Vec::new();
        for id in circuit.topological_order() {
            let fo = circuit.fanouts(id).len();
            if fo > 0 {
                drivers += 1;
                fanout_total += fo;
                fanout_max = fanout_max.max(fo);
            }
            let kind = circuit.kind(id);
            if kind != GateKind::Input {
                fanin_total += circuit.fanins(id).len();
                match kinds.iter_mut().find(|(k, _)| *k == kind) {
                    Some((_, c)) => *c += 1,
                    None => kinds.push((kind, 1)),
                }
            }
        }
        kinds.sort_by_key(|&(_, count)| std::cmp::Reverse(count));
        let levels = circuit.levels();
        let depth = levels.iter().copied().max().unwrap_or(0);
        let mut level_profile = vec![0usize; depth + 1];
        for (&level, id) in levels.iter().zip(circuit.topological_order()) {
            if circuit.kind(id) != GateKind::Input {
                level_profile[level] += 1;
            }
        }
        CircuitStats {
            nodes,
            gates: circuit.gate_count(),
            inputs: circuit.input_count(),
            outputs: circuit.outputs().len(),
            depth,
            mean_fanout: if drivers > 0 {
                fanout_total as f64 / drivers as f64
            } else {
                0.0
            },
            max_fanout: fanout_max,
            mean_fanin: if circuit.gate_count() > 0 {
                fanin_total as f64 / circuit.gate_count() as f64
            } else {
                0.0
            },
            kind_histogram: kinds,
            level_profile,
        }
    }
}

impl std::fmt::Display for CircuitStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} gates / {} inputs / {} outputs, depth {}, fanout mean {:.2} max {}, fanin mean {:.2}",
            self.gates,
            self.inputs,
            self.outputs,
            self.depth,
            self.mean_fanout,
            self.max_fanout,
            self.mean_fanin
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{generate, GeneratorConfig};

    #[test]
    fn measures_tiny_circuit_exactly() {
        let mut b = Circuit::builder("t");
        let a = b.input();
        let x = b.input();
        let g = b.gate(GateKind::Nand2, &[a, x]).unwrap();
        let h = b.gate(GateKind::Inv, &[g]).unwrap();
        b.output(h);
        let c = b.build().unwrap();
        let s = CircuitStats::measure(&c);
        assert_eq!(s.nodes, 4);
        assert_eq!(s.gates, 2);
        assert_eq!(s.inputs, 2);
        assert_eq!(s.outputs, 1);
        assert_eq!(s.depth, 2);
        assert_eq!(s.max_fanout, 1);
        assert!((s.mean_fanin - 1.5).abs() < 1e-12);
        assert_eq!(s.kind_histogram.len(), 2);
        assert_eq!(s.level_profile, vec![0, 1, 1]);
        assert!(s.to_string().contains("2 gates"));
    }

    #[test]
    fn generated_circuits_look_like_netlists() {
        let c = generate("g", GeneratorConfig::combinational(2000, 3)).unwrap();
        let s = CircuitStats::measure(&c);
        assert_eq!(s.gates, 2000);
        // Mapped-netlist shape: fanin between 1 and 3, mean around 2.
        assert!(s.mean_fanin > 1.5 && s.mean_fanin < 2.5, "{}", s.mean_fanin);
        // Fanout skew: small mean, meaningful max.
        assert!(s.mean_fanout < 4.0);
        assert!(s.max_fanout >= 8);
        // Depth well below gate count but nontrivial.
        assert!(s.depth > 10 && s.depth < s.gates / 5, "depth {}", s.depth);
        // NAND2 dominates the mix (the generator's weights).
        assert_eq!(s.kind_histogram[0].0, GateKind::Nand2);
        // Level profile accounts for every gate.
        assert_eq!(s.level_profile.iter().sum::<usize>(), s.gates);
        assert_eq!(s.level_profile[0], 0, "no logic at input level");
    }

    #[test]
    fn sequential_profile_is_shallower() {
        let comb = CircuitStats::measure(
            &generate("c", GeneratorConfig::combinational(3000, 5)).unwrap(),
        );
        let seq = CircuitStats::measure(
            &generate("s", GeneratorConfig::sequential(3000, 5)).unwrap(),
        );
        assert!(
            seq.depth < comb.depth,
            "unrolled sequential logic should be shallower: {} vs {}",
            seq.depth,
            comb.depth
        );
        assert!(seq.inputs > comb.inputs);
    }
}
