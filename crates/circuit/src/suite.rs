//! The Table 1 benchmark suite: synthetic circuits with the exact gate
//! counts of the ISCAS85/89 circuits the paper evaluates.

use crate::{generate, Circuit, CircuitError, GeneratorConfig};

/// Identifier of a Table 1 benchmark circuit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum BenchmarkId {
    C880,
    C1355,
    C1908,
    C3540,
    C5315,
    C6288,
    S5378,
    C7552,
    S9234,
    S13207,
    S15850,
    S35932,
    S38584,
    S38417,
}

impl BenchmarkId {
    /// Canonical circuit name as printed in Table 1.
    pub fn name(&self) -> &'static str {
        match self {
            BenchmarkId::C880 => "c880",
            BenchmarkId::C1355 => "c1355",
            BenchmarkId::C1908 => "c1908",
            BenchmarkId::C3540 => "c3540",
            BenchmarkId::C5315 => "c5315",
            BenchmarkId::C6288 => "c6288",
            BenchmarkId::S5378 => "s5378",
            BenchmarkId::C7552 => "c7552",
            BenchmarkId::S9234 => "s9234",
            BenchmarkId::S13207 => "s13207",
            BenchmarkId::S15850 => "s15850",
            BenchmarkId::S35932 => "s35932",
            BenchmarkId::S38584 => "s38584",
            BenchmarkId::S38417 => "s38417",
        }
    }

    /// Gate count as reported in Table 1 (`N_g`).
    pub fn gate_count(&self) -> usize {
        match self {
            BenchmarkId::C880 => 383,
            BenchmarkId::C1355 => 546,
            BenchmarkId::C1908 => 880,
            BenchmarkId::C3540 => 1669,
            BenchmarkId::C5315 => 2307,
            BenchmarkId::C6288 => 2416,
            BenchmarkId::S5378 => 2779,
            BenchmarkId::C7552 => 3512,
            BenchmarkId::S9234 => 5597,
            BenchmarkId::S13207 => 7951,
            BenchmarkId::S15850 => 9772,
            BenchmarkId::S35932 => 16065,
            BenchmarkId::S38584 => 19253,
            BenchmarkId::S38417 => 22179,
        }
    }

    /// Is this an (unrolled) sequential s-series circuit?
    pub fn is_sequential(&self) -> bool {
        matches!(
            self,
            BenchmarkId::S5378
                | BenchmarkId::S9234
                | BenchmarkId::S13207
                | BenchmarkId::S15850
                | BenchmarkId::S35932
                | BenchmarkId::S38584
                | BenchmarkId::S38417
        )
    }

    /// Deterministic seed: the same benchmark always generates the same
    /// circuit.
    fn seed(&self) -> u64 {
        // Stable arbitrary constants; distinct per circuit.
        0x5eed_0000 + self.gate_count() as u64
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// All Table 1 benchmarks, in the paper's row order (ascending `N_g`,
/// with the two late c-circuits interleaved exactly as printed).
pub const TABLE1_BENCHMARKS: [BenchmarkId; 14] = [
    BenchmarkId::C880,
    BenchmarkId::C1355,
    BenchmarkId::C1908,
    BenchmarkId::C3540,
    BenchmarkId::C5315,
    BenchmarkId::C6288,
    BenchmarkId::S5378,
    BenchmarkId::C7552,
    BenchmarkId::S9234,
    BenchmarkId::S13207,
    BenchmarkId::S15850,
    BenchmarkId::S35932,
    BenchmarkId::S38584,
    BenchmarkId::S38417,
];

/// Generates the synthetic stand-in for a Table 1 benchmark at its exact
/// gate count.
///
/// # Errors
///
/// Propagates [`CircuitError`] (cannot occur for these fixed
/// configurations).
pub fn benchmark(id: BenchmarkId) -> Result<Circuit, CircuitError> {
    let config = if id.is_sequential() {
        GeneratorConfig::sequential(id.gate_count(), id.seed())
    } else {
        GeneratorConfig::combinational(id.gate_count(), id.seed())
    };
    generate(id.name(), config)
}

/// Generates a scaled-down version of a benchmark (gate count multiplied
/// by `scale` and rounded, minimum 16 gates). Used by harnesses that
/// cannot afford the full 100 K × 22 K-gate experiments of the paper on a
/// development machine (see EXPERIMENTS.md).
///
/// # Errors
///
/// Propagates [`CircuitError`].
pub fn benchmark_scaled(id: BenchmarkId, scale: f64) -> Result<Circuit, CircuitError> {
    let gates = ((id.gate_count() as f64 * scale).round() as usize).max(16);
    let config = if id.is_sequential() {
        GeneratorConfig::sequential(gates, id.seed())
    } else {
        GeneratorConfig::combinational(gates, id.seed())
    };
    generate(id.name(), config)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gate_counts_match_table1() {
        let expected = [
            ("c880", 383),
            ("c1355", 546),
            ("c1908", 880),
            ("c3540", 1669),
            ("c5315", 2307),
            ("c6288", 2416),
            ("s5378", 2779),
            ("c7552", 3512),
            ("s9234", 5597),
            ("s13207", 7951),
            ("s15850", 9772),
            ("s35932", 16065),
            ("s38584", 19253),
            ("s38417", 22179),
        ];
        for (id, (name, count)) in TABLE1_BENCHMARKS.iter().zip(expected) {
            assert_eq!(id.name(), name);
            assert_eq!(id.gate_count(), count);
            assert_eq!(id.to_string(), name);
        }
    }

    #[test]
    fn small_benchmarks_generate_exactly() {
        for id in [BenchmarkId::C880, BenchmarkId::C1355, BenchmarkId::C1908] {
            let c = benchmark(id).unwrap();
            assert_eq!(c.gate_count(), id.gate_count());
            assert_eq!(c.name(), id.name());
        }
    }

    #[test]
    fn sequential_flag() {
        assert!(!BenchmarkId::C880.is_sequential());
        assert!(BenchmarkId::S5378.is_sequential());
        assert_eq!(
            TABLE1_BENCHMARKS.iter().filter(|b| b.is_sequential()).count(),
            7
        );
    }

    #[test]
    fn generation_is_reproducible() {
        let a = benchmark(BenchmarkId::C880).unwrap();
        let b = benchmark(BenchmarkId::C880).unwrap();
        for id in a.topological_order() {
            assert_eq!(a.fanins(id), b.fanins(id));
        }
    }

    #[test]
    fn scaled_benchmark() {
        let c = benchmark_scaled(BenchmarkId::S38417, 0.01).unwrap();
        assert_eq!(c.gate_count(), 222);
        let floor = benchmark_scaled(BenchmarkId::C880, 0.001).unwrap();
        assert_eq!(floor.gate_count(), 16, "minimum gate floor");
    }
}
