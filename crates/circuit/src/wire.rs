//! Wire-load modeling from placement: half-perimeter wirelength mapped to
//! lumped RC parasitics (paper Sec. 5.1: "half-perimeter wirelength was
//! used to model the wire loads").

use crate::{Circuit, NodeId, Placement};
use klest_geometry::BBox;

/// Per-unit-length electrical parameters of the interconnect, plus pin
/// capacitance. Values are in normalized units chosen to make wire and
/// gate delays comparable at 90 nm-like ratios; the experiments report
/// *relative* statistics, so absolute calibration is not critical (see
/// DESIGN.md).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WireModel {
    /// Resistance per unit length (normalized-die units).
    pub res_per_len: f64,
    /// Capacitance per unit length.
    pub cap_per_len: f64,
    /// Input-pin capacitance added per sink.
    pub pin_cap: f64,
}

impl Default for WireModel {
    fn default() -> Self {
        WireModel {
            res_per_len: 0.4,
            cap_per_len: 0.3,
            pin_cap: 0.05,
        }
    }
}

/// Lumped parasitics of one net.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct WireParasitics {
    /// Total wire resistance.
    pub resistance: f64,
    /// Total wire + pin capacitance.
    pub capacitance: f64,
    /// Half-perimeter wirelength the values were derived from.
    pub wirelength: f64,
}

impl WireModel {
    /// Parasitics of the net driven by `driver`, from the HPWL of the
    /// driver + sink bounding box.
    pub fn net_parasitics(
        &self,
        circuit: &Circuit,
        placement: &Placement,
        driver: NodeId,
    ) -> WireParasitics {
        let fanouts = circuit.fanouts(driver);
        if fanouts.is_empty() {
            return WireParasitics::default();
        }
        let pins = std::iter::once(placement.location(driver))
            .chain(fanouts.iter().map(|&f| placement.location(f)));
        let wl = BBox::from_points(pins)
            .map(|b| b.half_perimeter())
            .unwrap_or(0.0);
        WireParasitics {
            resistance: self.res_per_len * wl,
            capacitance: self.cap_per_len * wl + self.pin_cap * fanouts.len() as f64,
            wirelength: wl,
        }
    }

    /// Parasitics for every node's output net, indexed by node.
    pub fn all_nets(&self, circuit: &Circuit, placement: &Placement) -> Vec<WireParasitics> {
        circuit
            .topological_order()
            .map(|id| self.net_parasitics(circuit, placement, id))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{generate, GeneratorConfig};

    #[test]
    fn sink_count_drives_pin_cap() {
        let c = generate("w", GeneratorConfig::combinational(200, 2)).unwrap();
        let p = Placement::recursive_bisection(&c);
        let model = WireModel::default();
        for id in c.topological_order() {
            let para = model.net_parasitics(&c, &p, id);
            let sinks = c.fanouts(id).len();
            if sinks == 0 {
                assert_eq!(para, WireParasitics::default());
            } else {
                assert!(para.capacitance >= model.pin_cap * sinks as f64);
                assert!(para.resistance >= 0.0);
                assert!(para.wirelength >= 0.0);
            }
        }
    }

    #[test]
    fn longer_nets_cost_more() {
        let c = generate("w2", GeneratorConfig::combinational(500, 4)).unwrap();
        let p = Placement::recursive_bisection(&c);
        let model = WireModel::default();
        let nets = model.all_nets(&c, &p);
        assert_eq!(nets.len(), c.node_count());
        // Across nets with equal sink counts, RC grows with wirelength.
        let mut one_sink: Vec<&WireParasitics> = c
            .topological_order()
            .filter(|&id| c.fanouts(id).len() == 1)
            .map(|id| &nets[id.index()])
            .collect();
        assert!(one_sink.len() > 10);
        one_sink.sort_by(|a, b| a.wirelength.partial_cmp(&b.wirelength).unwrap());
        let first = one_sink.first().unwrap();
        let last = one_sink.last().unwrap();
        assert!(last.capacitance >= first.capacitance);
        assert!(last.resistance >= first.resistance);
    }

    #[test]
    fn scaling_with_model_parameters() {
        let c = generate("w3", GeneratorConfig::combinational(100, 6)).unwrap();
        let p = Placement::recursive_bisection(&c);
        let base = WireModel::default();
        let double = WireModel {
            res_per_len: base.res_per_len * 2.0,
            cap_per_len: base.cap_per_len,
            pin_cap: base.pin_cap,
        };
        let driver = c
            .topological_order()
            .find(|&id| !c.fanouts(id).is_empty() && base.net_parasitics(&c, &p, id).wirelength > 0.0)
            .unwrap();
        let a = base.net_parasitics(&c, &p, driver);
        let b = double.net_parasitics(&c, &p, driver);
        assert!((b.resistance - 2.0 * a.resistance).abs() < 1e-12);
        assert_eq!(b.capacitance, a.capacitance);
    }
}
