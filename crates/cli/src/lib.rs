//! Implementation of the `klest` command-line tool (see `main.rs` for
//! the thin binary wrapper). Each subcommand is a function taking parsed
//! [`Args`] and writing to the given writer, so the whole surface is
//! unit-testable without spawning processes.

use klest::KlestError;
use klest_bench::Args;
use klest_circuit::{benchmark_scaled, generate, write_netlist, BenchmarkId, GeneratorConfig};
use klest_core::pipeline::{ArtifactCache, ArtifactKey, ExecPolicy, FrontEndConfig};
use klest_core::{EigenSolver, GalerkinKle, KleOptions, TruncationCriterion};
use klest_geometry::Rect;
use klest_kernels::{
    CovarianceKernel, ExponentialKernel, GaussianKernel, MaternKernel,
    SeparableExponentialKernel,
};
use klest_mesh::{export, MeshBuilder};
use klest_runtime::{Budget, CancelToken, StageBudgets};
use klest_ssta::experiments::{
    compare_methods_supervised, compare_methods_with_report, CircuitSetup, KleContext,
};
use klest_ssta::faultinject::{FaultPlan, Stage};
use klest_serve::{ServeConfig, Server};
use klest_ssta::{McConfig, SalvageStats};
use std::io::Write;
use std::time::Duration;

/// Top-level CLI error: message already formatted for the user.
pub type CliResult = Result<(), String>;

fn err<E: std::fmt::Display>(e: E) -> String {
    e.to_string()
}

/// Typed numeric flag lookup: a malformed value becomes a
/// [`KlestError::InvalidArgument`] message instead of a panic.
fn arg<T: std::str::FromStr>(args: &Args, key: &str, default: T) -> Result<T, String>
where
    T::Err: std::fmt::Display,
{
    args.try_get(key, default)
        .map_err(|e| KlestError::from(e).to_string())
}

/// An `InvalidArgument`-flavoured message for values that parse but are
/// out of range (e.g. `--deadline -1`).
fn bad_arg(key: &str, value: impl std::fmt::Display, message: &str) -> String {
    KlestError::InvalidArgument {
        key: key.to_string(),
        value: value.to_string(),
        message: message.to_string(),
    }
    .to_string()
}

/// Usage text.
pub const USAGE: &str = "\
klest — correlation-kernel KLE for statistical timing (DATE 2008 reproduction)

USAGE:
  klest <command> [--flag value ...]

COMMANDS:
  mesh      build a quality die mesh          [--area-fraction 0.001] [--min-angle 28] [--obj out.obj]
  kle       compute the KLE of a kernel       [--kernel gaussian|exponential|matern|separable]
                                              [--c F] [--b F] [--s F] [--tail 0.01] [--area-fraction 0.001]
                                              [--solver full|lanczos|matrix-free] [--modes K]
                                              [--max-iters 500] [--threads N]
  validate  check kernel validity             [--kernel ...] (same kernel flags; also accepts 'cone' [--d F])
  netlist   generate a synthetic netlist      [--gates 500] [--seed 7] [--sequential] [--out file.bench]
  ssta      compare KLE vs reference MC SSTA  [--circuit c1908] [--scale 0.5] [--samples 2000] [--seed 2008]
                                              [--area-fraction 0.001] [--threads N] [--cache-dir DIR]
                                              [--assembly-threads N]
                                              [--deadline SECS] [--stage-budget mesh=S,eigen=S,mc=S]
                                              [--inject-panic-shard I] [--inject-hang-ms MS]
  hier      hierarchical block-model SSTA     [--gates 400] [--seed 7] [--blocks 4] [--dist 1.0]
                                              [--area-fraction 0.01] [--cache-dir DIR]
                                              [--edit-node I] [--edit-scale 0.3]
  serve     long-lived timing-query daemon    [--workers 2] [--queue-depth 16] [--drain-ms 10000]
                                              [--default-deadline-ms MS] [--cache-dir DIR]
                                              [--state-dir DIR]
                                              [--requests FILE] [--socket PATH]
                                              [--trace-responses] [--slo-target 0.95]
                                              [--metrics-interval-ms MS --metrics-out FILE]
  help      this text

GLOBAL FLAGS (every command):
  --trace           print the hierarchical span tree and metrics to stderr
  --report out.json write a machine-readable run report (spans, counters,
                    gauges, histograms, degradation events) to out.json

DEADLINES (ssta): with --deadline and/or --stage-budget the run goes through
the supervised runtime — workers are fault-isolated, a blown budget cancels
cooperatively, and completed Monte Carlo samples are salvaged into a
truncated estimate with a widened confidence interval instead of being
discarded. The --inject-* flags deterministically fault one worker shard
(panic or hang) to exercise that machinery.

CACHING (ssta): --cache-dir DIR persists the KLE front-end artifacts (mesh,
spectrum) content-addressed by kernel + mesh + solver configuration, so a
repeated invocation with the same flags skips mesh build, Galerkin assembly
and the eigensolve entirely. Cache traffic lands in the run report as the
pipeline.cache.{mesh,galerkin,spectrum}.{hits,misses} counters. --threads N
also parallelizes Galerkin assembly (bitwise identical for any N).

SOLVERS (kle): --solver full (default) runs the dense QL eigensolve;
--solver lanczos computes only the leading --modes pairs from the dense
matrix; --solver matrix-free never assembles the O(n²) Galerkin matrix at
all — kernel entries are evaluated per matrix-vector product and peak
memory stays O(n·k), so 10⁵-element meshes (--area-fraction 2e-5) fit
where the dense path cannot allocate. --modes K picks the eigenpair count
(default 25 for matrix-free), --max-iters bounds the operator
applications, --threads N shards the matvec (bitwise identical output
for any N).

HIERARCHY (hier): partitions a generated circuit into --blocks die-region
blocks, extracts one compressed timing model per block over the shared KLE
ξ basis, composes them into circuit-level arrivals, and checks the composed
worst delay against the flat canonical pass (mean within 2%, sigma within
5% — a breach is a nonzero exit). It then applies a one-gate parameter
edit (--edit-node, default mid-netlist; --edit-scale sets its magnitude)
and re-times: only the edited gate's block is re-extracted, every other
block model is reused. --cache-dir DIR persists block models
content-addressed by region hash × spectrum, so a repeated invocation
serves every block warm and the post-edit revert is a cache hit; traffic
lands in the pipeline.cache.block.{hits,misses} counters.

SERVING: klest serve reads one JSON request per line from stdin (or
--requests FILE, or a Unix --socket PATH) and writes one JSON response per
request: {\"id\":\"q1\",\"circuit\":\"c880\",\"scale\":0.05,\"samples\":200,
\"deadline_ms\":5000}. Admission is a bounded queue: a full queue sheds with
status=shed reason=overloaded plus a retry_after_ms hint; a request whose
deadline expires while queued is shed without consuming a worker; a
panicking or hanging request is isolated and reported as status=fault or
cancelled while other requests keep running. {\"op\":\"shutdown\"} or EOF
(the std-only daemon cannot trap SIGTERM — process managers should close
stdin) drains gracefully within --drain-ms and emits a final
status=drained summary line. --state-dir DIR makes the daemon
crash-restartable: admitted queries are journaled (fsynced) to
DIR/journal.log before they run and marked done after their one terminal
response, the disk artifact cache defaults to DIR/cache, and a restarted
daemon recovers the cache (quarantining torn entries) and replays the
journal's pending tail, answering each journaled request exactly once.

TELEMETRY (serve): {\"op\":\"stats\"} answers inline with queue depth,
lifetime admit/shed/fault counters, windowed warm/cold latency quantiles
(p50/p95/p99/mean over the last minute), cache hit ratio and sizes, worker
utilization and the deadline-SLO window (fraction met + error budget
remaining vs --slo-target). A query carrying \"trace\":true gets a per-
request trace object (per-stage wall times, artifact warmth, salvage
events) when the daemon also runs with --trace-responses. With
--metrics-interval-ms N --metrics-out FILE the daemon appends one
klest-metrics/v1 JSON snapshot line (counters, gauges, latency quantiles,
rates since the previous line) to FILE every N ms.
";

/// Builds the kernel selected by `--kernel` (+ its shape flags).
///
/// # Errors
///
/// A user-facing message for unknown kernels or invalid parameters.
pub fn kernel_from_args(args: &Args) -> Result<Box<dyn CovarianceKernel>, String> {
    let name = args.get_str("kernel", "gaussian");
    match name.as_str() {
        "gaussian" => {
            let c = arg::<f64>(args, "c", f64::NAN)?;
            if c.is_finite() {
                Ok(Box::new(GaussianKernel::try_new(c).map_err(err)?))
            } else {
                Ok(Box::new(GaussianKernel::with_correlation_distance(
                    arg(args, "dist", 1.0)?,
                )))
            }
        }
        "exponential" => Ok(Box::new(
            ExponentialKernel::try_new(arg(args, "c", 2.0)?).map_err(err)?,
        )),
        "separable" => Ok(Box::new(
            SeparableExponentialKernel::try_new(arg(args, "c", 1.5)?).map_err(err)?,
        )),
        "matern" => Ok(Box::new(
            MaternKernel::new(arg(args, "b", 3.0)?, arg(args, "s", 2.5)?).map_err(err)?,
        )),
        "cone" => Ok(Box::new(
            klest_kernels::LinearConeKernel::try_new(arg(args, "d", 1.0)?).map_err(err)?,
        )),
        other => Err(format!(
            "unknown kernel '{other}' (expected gaussian, exponential, separable, matern or cone)"
        )),
    }
}

/// `klest mesh`.
///
/// # Errors
///
/// User-facing message on meshing or I/O failure.
pub fn cmd_mesh<W: Write>(args: &Args, out: &mut W) -> CliResult {
    let mesh = MeshBuilder::new(Rect::unit_die())
        .max_area_fraction(arg(args, "area-fraction", 0.001)?)
        .min_angle_degrees(arg(args, "min-angle", 28.0)?)
        .build()
        .map_err(err)?;
    writeln!(out, "{}", mesh.quality()).map_err(err)?;
    if let Some(path) = args_opt_str(args, "obj") {
        std::fs::write(&path, export::to_obj(&mesh)).map_err(err)?;
        writeln!(out, "wrote {path}").map_err(err)?;
    }
    Ok(())
}

/// Typed `--solver`/`--modes`/`--max-iters`/`--threads` parsing shared
/// by `klest kle`. `--modes` is presence-detected so the historical
/// defaults of each solver are preserved when it is omitted (full keeps
/// its 200-pair cap, matrix-free defaults to 25 computed pairs).
fn kle_options_from_args(args: &Args) -> Result<KleOptions, String> {
    let modes = match args_opt_str(args, "modes") {
        Some(_) => {
            let m: usize = arg(args, "modes", 25)?;
            if m == 0 {
                return Err(bad_arg("modes", m, "must be at least 1"));
            }
            Some(m)
        }
        None => None,
    };
    let max_iters: usize = arg(args, "max-iters", 500)?;
    if max_iters == 0 {
        return Err(bad_arg("max-iters", max_iters, "must be at least 1"));
    }
    let mut options = KleOptions {
        assembly_threads: arg(args, "threads", 0)?,
        ..KleOptions::default()
    };
    let solver = args.get_str("solver", "full");
    match solver.as_str() {
        "full" => {
            if let Some(m) = modes {
                options.max_eigenpairs = m;
            }
        }
        "lanczos" => {
            options.solver = EigenSolver::Lanczos;
            options.max_eigenpairs = modes.unwrap_or(options.max_eigenpairs);
        }
        "matrix-free" => {
            let k = modes.unwrap_or(25);
            options.solver = EigenSolver::MatrixFree { k, max_iters };
            options.max_eigenpairs = k;
        }
        other => {
            return Err(bad_arg(
                "solver",
                other,
                "expected full, lanczos or matrix-free",
            ))
        }
    }
    Ok(options)
}

/// `klest kle`.
///
/// # Errors
///
/// User-facing message on kernel/mesh/eigensolve failure.
pub fn cmd_kle<W: Write>(args: &Args, out: &mut W) -> CliResult {
    let kernel = kernel_from_args(args)?;
    let options = kle_options_from_args(args)?;
    let mesh = MeshBuilder::new(Rect::unit_die())
        .max_area_fraction(arg(args, "area-fraction", 0.001)?)
        .min_angle_degrees(arg(args, "min-angle", 28.0)?)
        .build()
        .map_err(err)?;
    let kle = GalerkinKle::compute(&mesh, kernel.as_ref(), options).map_err(err)?;
    let criterion = TruncationCriterion::new(200, arg(args, "tail", 0.01)?);
    let r = kle.select_rank(&criterion);
    writeln!(
        out,
        "kernel {} on n = {} triangles: rank r = {r} ({:.2}% variance)",
        kernel.name(),
        mesh.len(),
        100.0 * kle.variance_captured(r)
    )
    .map_err(err)?;
    for (i, l) in kle.eigenvalues().iter().take(arg(args, "show", 10)?).enumerate() {
        writeln!(out, "lambda_{:<3} = {l:.6e}", i + 1).map_err(err)?;
    }
    Ok(())
}

/// `klest validate`.
///
/// # Errors
///
/// User-facing message on kernel construction failure.
pub fn cmd_validate<W: Write>(args: &Args, out: &mut W) -> CliResult {
    let kernel = kernel_from_args(args)?;
    let gram = klest_kernels::validity::check_positive_semidefinite(
        kernel.as_ref(),
        Rect::unit_die(),
        arg(args, "points", 48)?,
        arg(args, "trials", 8)?,
        arg(args, "seed", 2024)?,
    )
    .map_err(err)?;
    writeln!(
        out,
        "empirical (Gram matrices): min eigenvalue {:.3e} -> {}",
        gram.min_eigenvalue,
        if gram.is_psd() { "valid" } else { "INVALID" }
    )
    .map_err(err)?;
    let spectral_ok = match klest_kernels::spectral::check_spectral_validity(kernel.as_ref(), 25.0, 80) {
        Some(spec) => {
            writeln!(
                out,
                "spectral (Bochner):       min density    {:.3e} at omega {:.2} -> {}",
                spec.min_density,
                spec.argmin_omega,
                if spec.is_valid() { "valid" } else { "INVALID" }
            )
            .map_err(err)?;
            spec.is_valid()
        }
        None => {
            writeln!(out, "spectral (Bochner):       n/a (anisotropic kernel)").map_err(err)?;
            true
        }
    };
    // The Gram check is a spot check (it can miss subtle indefiniteness
    // at small sample sizes); the spectral scan is the sharper oracle
    // where it applies — the verdict requires both.
    writeln!(
        out,
        "verdict: {}",
        if gram.is_psd() && spectral_ok { "valid" } else { "INVALID" }
    )
    .map_err(err)?;
    Ok(())
}

/// `klest netlist`.
///
/// # Errors
///
/// User-facing message on generation or I/O failure.
pub fn cmd_netlist<W: Write>(args: &Args, out: &mut W) -> CliResult {
    let gates = arg(args, "gates", 500)?;
    let seed = arg(args, "seed", 7)?;
    let config = if args.flag("sequential") {
        GeneratorConfig::sequential(gates, seed)
    } else {
        GeneratorConfig::combinational(gates, seed)
    };
    let circuit = generate(format!("synth{gates}"), config).map_err(err)?;
    let stats = klest_circuit::CircuitStats::measure(&circuit);
    writeln!(out, "{stats}").map_err(err)?;
    let text = write_netlist(&circuit);
    match args_opt_str(args, "out") {
        Some(path) => {
            std::fs::write(&path, text).map_err(err)?;
            writeln!(out, "wrote {path}").map_err(err)?;
        }
        None => out.write_all(text.as_bytes()).map_err(err)?,
    }
    Ok(())
}

/// `klest ssta`.
///
/// Without deadline flags this runs the plain comparison path. Any of
/// `--deadline`, `--stage-budget`, `--inject-panic-shard` or
/// `--inject-hang-ms` routes the run through the supervised runtime:
/// cooperative cancellation, per-worker fault isolation with retries,
/// and salvage of completed Monte Carlo samples on budget exhaustion.
///
/// # Errors
///
/// User-facing message on any stage failure or malformed flag.
pub fn cmd_ssta<W: Write>(args: &Args, out: &mut W) -> CliResult {
    let kernel = GaussianKernel::with_correlation_distance(arg(args, "dist", 1.0)?);
    let name = args.get_str("circuit", "c1908");
    let id = TABLE1_NAMES
        .iter()
        .find(|(n, _)| *n == name)
        .map(|(_, id)| *id)
        .ok_or_else(|| format!("unknown circuit '{name}' (expected a Table 1 name like c1908)"))?;
    let circuit = benchmark_scaled(id, arg(args, "scale", 0.5)?).map_err(err)?;
    let setup = CircuitSetup::prepare(&circuit);
    let area_fraction = arg(args, "area-fraction", 0.001)?;
    let threads = arg(args, "threads", klest_bench::default_threads())?;
    let config = McConfig::new(arg(args, "samples", 2000)?, arg(args, "seed", 2008)?)
        .with_threads(threads);
    let criterion = TruncationCriterion::default();
    let mut frontend = FrontEndConfig::new(area_fraction, 28.0, criterion);
    // --threads drives both the Monte Carlo pool and the
    // (bitwise-deterministic) parallel Galerkin assembly;
    // --assembly-threads overrides the latter alone. MC statistics
    // depend on the shard count (per-shard RNG streams), assembly
    // results never do.
    frontend.options.assembly_threads = arg(args, "assembly-threads", threads)?;
    let cache = args_opt_str(args, "cache-dir").map(ArtifactCache::with_disk);

    let deadline_secs = arg(args, "deadline", f64::INFINITY)?;
    let stage_budget_spec = args_opt_str(args, "stage-budget");
    let panic_shard = arg::<i64>(args, "inject-panic-shard", -1)?;
    let hang_ms = arg::<u64>(args, "inject-hang-ms", 0)?;
    let supervised = deadline_secs.is_finite()
        || stage_budget_spec.is_some()
        || panic_shard >= 0
        || hang_ms > 0;

    let cmp = if supervised {
        let budget = if deadline_secs.is_finite() {
            Budget::try_from_secs(deadline_secs).ok_or_else(|| {
                bad_arg("deadline", deadline_secs, "expected a positive number of seconds")
            })?
        } else {
            Budget::UNLIMITED
        };
        let budgets = match &stage_budget_spec {
            Some(spec) => {
                StageBudgets::parse(spec).map_err(|m| bad_arg("stage-budget", spec, &m))?
            }
            None => StageBudgets::none(),
        };
        let mut plan = FaultPlan::new();
        let mut inject = false;
        if panic_shard >= 0 {
            plan = plan.panic_at(Stage::Mc, panic_shard as usize);
            inject = true;
        }
        if hang_ms > 0 {
            // Pin the hang to a different shard than the panic so the
            // two injections hit distinct victims deterministically.
            let hang_shard = if panic_shard >= 0 {
                (panic_shard as usize + 1) % threads.max(1)
            } else {
                0
            };
            plan = plan.hang_at(Stage::Mc, hang_shard, hang_ms);
            inject = true;
        }
        let token = CancelToken::with_budget(budget);
        let ctx = KleContext::build_with(
            &kernel,
            &frontend.clone().with_supervised_ladder(),
            ExecPolicy::Supervised {
                token: &token,
                budgets: &budgets,
            },
            cache.as_ref(),
        )
        .map_err(err)?;
        compare_methods_supervised(
            &setup,
            &kernel,
            &ctx,
            &config,
            &token,
            &budgets,
            inject.then_some(&plan),
        )
        .map_err(err)?
    } else {
        let ctx = KleContext::build_with(&kernel, &frontend, ExecPolicy::Plain, cache.as_ref())
            .map_err(err)?;
        compare_methods_with_report(&setup, &kernel, &ctx, &config).map_err(err)?
    };

    if let Some(cache) = &cache {
        let snap = cache.snapshot();
        writeln!(
            out,
            "cache: {} hit(s), {} miss(es)",
            snap.hits(),
            snap.misses()
        )
        .map_err(err)?;
    }

    klest_obs::gauge_set("ssta.rank", cmp.rank as f64);
    klest_obs::gauge_set("ssta.speedup", cmp.speedup);
    klest_obs::gauge_set("ssta.e_mu_pct", cmp.e_mu_pct);
    klest_obs::gauge_set("ssta.e_sigma_pct", cmp.e_sigma_pct);
    writeln!(
        out,
        "{} ({} gates, r = {}): e_mu = {:.3}%, e_sigma = {:.3}%, speedup = {:.2}x",
        cmp.name, cmp.gates, cmp.rank, cmp.e_mu_pct, cmp.e_sigma_pct, cmp.speedup
    )
    .map_err(err)?;
    print_salvage(out, "reference", cmp.mc_salvage.as_ref())?;
    print_salvage(out, "kle", cmp.kle_salvage.as_ref())?;
    if !cmp.degradation.is_clean() {
        writeln!(out, "degradation: {}", cmp.degradation).map_err(err)?;
    }
    Ok(())
}

/// `klest hier`: hierarchical block-model SSTA — partition, per-block
/// extraction over the shared ξ basis, composition, a flat-vs-composed
/// agreement gate, and a one-gate edit re-timed through the block cache.
///
/// # Errors
///
/// User-facing message on any stage failure, malformed flag, or a
/// composed worst delay outside the 2% mean / 5% sigma agreement band.
pub fn cmd_hier<W: Write>(args: &Args, out: &mut W) -> CliResult {
    use klest_ssta::canonical::analyze_canonical;
    use klest_ssta::hier::HierEngine;
    use klest_ssta::KleFieldSampler;

    let gates: usize = arg(args, "gates", 400)?;
    let seed: u64 = arg(args, "seed", 7)?;
    let blocks: usize = arg(args, "blocks", 4)?;
    if blocks == 0 {
        return Err(bad_arg("blocks", blocks, "must be at least 1"));
    }
    let edit_scale: f64 = arg(args, "edit-scale", 0.3)?;
    if !edit_scale.is_finite() {
        return Err(bad_arg("edit-scale", edit_scale, "must be finite"));
    }
    let circuit = generate(
        format!("hier{gates}"),
        GeneratorConfig::combinational(gates, seed),
    )
    .map_err(err)?;
    let setup = CircuitSetup::prepare(&circuit);
    let partition = klest_circuit::Partition::build(&circuit, blocks);
    let kernel = GaussianKernel::with_correlation_distance(arg(args, "dist", 1.0)?);
    let frontend = FrontEndConfig::new(
        arg(args, "area-fraction", 0.01)?,
        28.0,
        TruncationCriterion::default(),
    );
    let cache = args_opt_str(args, "cache-dir").map(ArtifactCache::with_disk);
    let ctx = KleContext::build_with(&kernel, &frontend, ExecPolicy::Plain, cache.as_ref())
        .map_err(err)?;
    let sampler = KleFieldSampler::new(&ctx.kle, &ctx.mesh, ctx.rank, setup.locations())
        .map_err(err)?;
    let flat = {
        let _span = klest_obs::span("hier/flat");
        analyze_canonical(&setup.timer, &sampler).map_err(err)?
    };

    // Block models are cache-addressed under the spectrum key (the shared
    // ξ basis) — the same key derivation the front end uses.
    let spectrum_key = kernel.cache_key().map(|kk| {
        let mesh_key = ArtifactKey::mesh(
            frontend.die,
            frontend.max_area_fraction,
            frontend.min_angle_degrees,
        );
        let galerkin_key = ArtifactKey::galerkin(&mesh_key, &kk, frontend.options.quadrature);
        ArtifactKey::spectrum(
            &galerkin_key,
            frontend.options.solver,
            frontend.options.max_eigenpairs,
        )
    });
    let cache_pair = match (&cache, spectrum_key) {
        (Some(c), Some(k)) => Some((c, k)),
        _ => None,
    };
    let token = CancelToken::unlimited();
    let mut engine = HierEngine::new(
        &setup.timer,
        &sampler,
        &partition,
        vec![klest_sta::ParamVector::ZERO; circuit.node_count()],
        cache_pair,
        &token,
    )
    .map_err(err)?;
    let stats = engine.last_stats();
    let f = flat.worst();
    let (f_mean, f_sigma) = (f.mean, f.sigma());
    let (h_mean, h_sigma) = {
        let h = engine.worst();
        (h.mean, h.sigma())
    };
    let e_mu_pct = 100.0 * (h_mean - f_mean).abs() / f_mean;
    let e_sigma_pct = 100.0 * (h_sigma - f_sigma).abs() / f_sigma;
    klest_obs::gauge_set("hier.blocks", stats.blocks as f64);
    klest_obs::gauge_set("hier.e_mu_pct", e_mu_pct);
    klest_obs::gauge_set("hier.e_sigma_pct", e_sigma_pct);
    writeln!(
        out,
        "{} ({} gates, r = {}, {} block(s)): flat mu = {:.6}, sigma = {:.6}",
        circuit.name(),
        circuit.gate_count(),
        ctx.rank,
        partition.block_count(),
        f_mean,
        f_sigma
    )
    .map_err(err)?;
    writeln!(
        out,
        "hier: mu = {h_mean:.6}, sigma = {h_sigma:.6}, \
         e_mu = {e_mu_pct:.3}%, e_sigma = {e_sigma_pct:.3}%"
    )
    .map_err(err)?;
    writeln!(
        out,
        "extract: {} cache hit(s), {} extracted, {} recovered serially",
        stats.cache_hits, stats.extracted, stats.recovered_serially
    )
    .map_err(err)?;

    // One-gate edit: re-keys exactly one block, everything else is
    // reused. The default victim is mid-netlist (never a primary input —
    // inputs precede gates in id order and gates outnumber inputs).
    let default_victim = circuit.node_count() / 2;
    let victim: usize = arg(args, "edit-node", default_victim)?;
    if victim >= circuit.node_count() {
        return Err(bad_arg(
            "edit-node",
            victim,
            &format!("circuit has {} nodes", circuit.node_count()),
        ));
    }
    let p = klest_sta::ParamVector::new([edit_scale, -edit_scale / 2.0, edit_scale / 4.0, 0.0]);
    let edited_mean = {
        let _span = klest_obs::span("hier/edit");
        engine
            .edit_gate(klest_circuit::NodeId(victim as u32), p, &token)
            .map_err(err)?
            .mean
    };
    let edit_stats = engine.last_stats();
    writeln!(
        out,
        "edit n{victim}: worst mu {h_mean:.6} -> {edited_mean:.6} \
         ({} block(s) re-extracted, {} warm)",
        edit_stats.extracted, edit_stats.cache_hits
    )
    .map_err(err)?;
    if let Some(cache) = &cache {
        let snap = cache.snapshot();
        writeln!(
            out,
            "cache: {} block hit(s), {} block miss(es)",
            snap.block_hits, snap.block_misses
        )
        .map_err(err)?;
    }
    if e_mu_pct > 2.0 || e_sigma_pct > 5.0 {
        return Err(format!(
            "agreement: FAILED — composed worst (mu {h_mean:.6}, sigma {h_sigma:.6}) \
             deviates from flat (mu {f_mean:.6}, sigma {f_sigma:.6}) \
             beyond 2% mean / 5% sigma"
        ));
    }
    writeln!(out, "agreement: OK (e_mu <= 2%, e_sigma <= 5%)").map_err(err)?;
    Ok(())
}

/// Prints one arm's salvage line (supervised runs only) and mirrors the
/// numbers into observability gauges for the run report.
fn print_salvage<W: Write>(out: &mut W, arm: &str, salvage: Option<&SalvageStats>) -> CliResult {
    let Some(s) = salvage else { return Ok(()) };
    klest_obs::gauge_set(&format!("ssta.{arm}.salvaged_samples"), s.completed as f64);
    klest_obs::gauge_set(&format!("ssta.{arm}.shards_retried"), s.shards_retried as f64);
    klest_obs::gauge_set(&format!("ssta.{arm}.ci_widening"), s.ci_widening);
    writeln!(
        out,
        "salvage[{arm}]: {}/{} samples kept, {} shard(s) retried, {} worker fault(s), CI x{:.3}",
        s.completed, s.planned, s.shards_retried, s.worker_faults, s.ci_widening
    )
    .map_err(err)
}

const TABLE1_NAMES: [(&str, BenchmarkId); 14] = [
    ("c880", BenchmarkId::C880),
    ("c1355", BenchmarkId::C1355),
    ("c1908", BenchmarkId::C1908),
    ("c3540", BenchmarkId::C3540),
    ("c5315", BenchmarkId::C5315),
    ("c6288", BenchmarkId::C6288),
    ("s5378", BenchmarkId::S5378),
    ("c7552", BenchmarkId::C7552),
    ("s9234", BenchmarkId::S9234),
    ("s13207", BenchmarkId::S13207),
    ("s15850", BenchmarkId::S15850),
    ("s35932", BenchmarkId::S35932),
    ("s38584", BenchmarkId::S38584),
    ("s38417", BenchmarkId::S38417),
];

/// `klest serve`: the long-lived batched query daemon (see
/// `klest-serve` for the protocol and admission-control semantics).
///
/// # Errors
///
/// Typed `InvalidArgument` messages for malformed or out-of-range
/// flags; an error (exit 1) when the drain budget expired and in-flight
/// work had to be force-cancelled.
pub fn cmd_serve<W: Write + Send>(args: &Args, out: &mut W) -> CliResult {
    let workers = arg::<usize>(args, "workers", 2)?;
    if !(1..=64).contains(&workers) {
        return Err(bad_arg("workers", workers, "must be in 1..=64"));
    }
    let queue_depth = arg::<usize>(args, "queue-depth", 16)?;
    if !(1..=4096).contains(&queue_depth) {
        return Err(bad_arg("queue-depth", queue_depth, "must be in 1..=4096"));
    }
    let drain_ms = arg::<u64>(args, "drain-ms", 10_000)?;
    if !(1..=600_000).contains(&drain_ms) {
        return Err(bad_arg("drain-ms", drain_ms, "must be in 1..=600000 (ms)"));
    }
    let default_deadline = match arg::<u64>(args, "default-deadline-ms", 0)? {
        0 => None,
        ms if ms <= 600_000 => Some(Duration::from_millis(ms)),
        ms => {
            return Err(bad_arg(
                "default-deadline-ms",
                ms,
                "must be in 1..=600000 (ms), or omitted for no default deadline",
            ))
        }
    };
    let metrics_interval = match arg::<u64>(args, "metrics-interval-ms", 0)? {
        0 => None,
        ms if (10..=600_000).contains(&ms) => Some(Duration::from_millis(ms)),
        ms => {
            return Err(bad_arg(
                "metrics-interval-ms",
                ms,
                "must be in 10..=600000 (ms), or omitted to disable periodic snapshots",
            ))
        }
    };
    let metrics_out = args_opt_str(args, "metrics-out").map(std::path::PathBuf::from);
    if metrics_interval.is_some() != metrics_out.is_some() {
        return Err(
            "periodic metrics need both --metrics-interval-ms N and --metrics-out FILE"
                .to_string(),
        );
    }
    let slo_target = arg::<f64>(args, "slo-target", 0.95)?;
    if !(slo_target > 0.0 && slo_target <= 1.0) {
        return Err(bad_arg("slo-target", slo_target, "must be in (0, 1]"));
    }
    // Snapshot lines diff obs counters, so the sink must be live for
    // the emitter to see anything.
    if metrics_out.is_some() {
        klest_obs::enable();
    }
    let config = ServeConfig {
        workers,
        queue_depth,
        drain: Duration::from_millis(drain_ms),
        default_deadline,
        cache_dir: args_opt_str(args, "cache-dir").map(Into::into),
        state_dir: args_opt_str(args, "state-dir").map(Into::into),
        trace_responses: args.flag("trace-responses"),
        metrics_interval,
        metrics_out,
        slo_target,
    };
    let server = Server::new(config);
    let summary = if let Some(path) = args_opt_str(args, "socket") {
        #[cfg(unix)]
        {
            server
                .serve_unix(std::path::Path::new(&path))
                .map_err(|e| format!("serving on socket {path}: {e}"))?
        }
        #[cfg(not(unix))]
        {
            return Err(bad_arg(
                "socket",
                path,
                "unix sockets are not available on this platform",
            ));
        }
    } else if let Some(path) = args_opt_str(args, "requests") {
        let file =
            std::fs::File::open(&path).map_err(|e| format!("opening requests {path}: {e}"))?;
        server.serve(std::io::BufReader::new(file), &mut *out)
    } else {
        server.serve(std::io::stdin().lock(), &mut *out)
    };
    if !summary.drained_clean {
        return Err(format!(
            "drain budget expired: {} in-flight/queued request(s) were force-cancelled or shed",
            summary.cancelled + summary.shed_draining
        ));
    }
    Ok(())
}

fn args_opt_str(args: &Args, key: &str) -> Option<String> {
    let v = args.get_str(key, "\u{0}");
    if v == "\u{0}" {
        None
    } else {
        Some(v)
    }
}

/// Dispatches a full command line (without the binary name).
///
/// Every subcommand honours the global `--trace` flag (human-readable
/// span tree + metrics to stderr) and `--report <path>` option
/// (deterministic JSON run report, schema `klest-run-report/v1`). With
/// neither present the observability sink stays off and instrumented
/// code paths cost one relaxed atomic load each.
///
/// # Errors
///
/// The user-facing error message for the failing subcommand.
pub fn run<W: Write + Send>(argv: &[String], out: &mut W) -> CliResult {
    let Some(command) = argv.first() else {
        writeln!(out, "{USAGE}").map_err(err)?;
        return Ok(());
    };
    let args = Args::from_iter(argv[1..].iter().cloned());
    let trace = args.flag("trace");
    let report_path = args_opt_str(&args, "report");
    let observing = trace || report_path.is_some();
    if observing {
        klest_obs::reset();
        klest_obs::enable();
    }
    let result = {
        let _span = klest_obs::span(command);
        dispatch(command, &args, out)
    };
    if observing {
        klest_obs::disable();
        if trace {
            eprint!("{}", klest_obs::render_trace());
        }
        let mut write_result = Ok(());
        if let Some(path) = &report_path {
            let report =
                klest_obs::RunReport::collect("klest", env!("CARGO_PKG_VERSION"), command, argv);
            write_result = std::fs::write(path, report.to_json())
                .map_err(|e| format!("writing report {path}: {e}"));
        }
        klest_obs::reset();
        // A failing subcommand takes precedence over a report I/O error.
        result?;
        write_result?;
        if let Some(path) = &report_path {
            writeln!(out, "wrote {path}").map_err(err)?;
        }
        Ok(())
    } else {
        result
    }
}

fn dispatch<W: Write + Send>(command: &str, args: &Args, out: &mut W) -> CliResult {
    match command {
        "mesh" => cmd_mesh(args, out),
        "kle" => cmd_kle(args, out),
        "validate" => cmd_validate(args, out),
        "netlist" => cmd_netlist(args, out),
        "ssta" => cmd_ssta(args, out),
        "hier" => cmd_hier(args, out),
        "serve" => cmd_serve(args, out),
        "help" | "--help" | "-h" => {
            writeln!(out, "{USAGE}").map_err(err)?;
            Ok(())
        }
        other => Err(format!("unknown command '{other}'\n\n{USAGE}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_str(line: &str) -> Result<String, String> {
        let argv: Vec<String> = line.split_whitespace().map(String::from).collect();
        let mut buf = Vec::new();
        run(&argv, &mut buf)?;
        Ok(String::from_utf8(buf).expect("utf8"))
    }

    #[test]
    fn kle_solver_flags_are_typed_errors_not_exits() {
        let e = run_str("kle --kernel gaussian --area-fraction 0.05 --solver qr").unwrap_err();
        assert!(e.contains("solver") && e.contains("qr"), "{e}");
        let e = run_str("kle --kernel gaussian --area-fraction 0.05 --solver matrix-free --modes 0")
            .unwrap_err();
        assert!(e.contains("modes"), "{e}");
        let e = run_str(
            "kle --kernel gaussian --area-fraction 0.05 --solver matrix-free --max-iters 0",
        )
        .unwrap_err();
        assert!(e.contains("max-iters"), "{e}");
        let e = run_str("kle --kernel gaussian --area-fraction 0.05 --modes potato").unwrap_err();
        assert!(e.contains("modes") && e.contains("potato"), "{e}");
        let e = run_str("kle --kernel gaussian --area-fraction 0.05 --threads potato").unwrap_err();
        assert!(e.contains("threads") && e.contains("potato"), "{e}");
    }

    #[test]
    fn kle_matrix_free_solver_agrees_with_dense_default() {
        fn first_lambda(out: &str) -> f64 {
            out.lines()
                .find(|l| l.starts_with("lambda_1"))
                .and_then(|l| l.split('=').nth(1))
                .and_then(|v| v.trim().parse::<f64>().ok())
                .expect("lambda_1 line")
        }
        let dense = run_str("kle --kernel gaussian --area-fraction 0.05 --show 3").unwrap();
        let mf = run_str(
            "kle --kernel gaussian --area-fraction 0.05 --show 3 \
             --solver matrix-free --modes 8 --max-iters 400",
        )
        .unwrap();
        assert!(mf.contains("rank r ="), "{mf}");
        let (a, b) = (first_lambda(&dense), first_lambda(&mf));
        assert!(
            (a - b).abs() < 1e-6 * a.abs(),
            "dense lambda_1 {a} vs matrix-free {b}"
        );
        // Lanczos over the dense matrix accepts the same --modes flag.
        let lz = run_str(
            "kle --kernel gaussian --area-fraction 0.05 --show 3 --solver lanczos --modes 8",
        )
        .unwrap();
        let c = first_lambda(&lz);
        assert!((a - c).abs() < 1e-6 * a.abs(), "lanczos lambda_1 {c} vs {a}");
    }

    #[test]
    fn serve_bad_flags_are_typed_errors_not_exits() {
        // Unparsable values route through Args::try_get →
        // KlestError::InvalidArgument; all of these must return Err
        // before the daemon ever reads a request.
        let e = run_str("serve --queue-depth potato").unwrap_err();
        assert!(e.contains("queue-depth") && e.contains("potato"), "{e}");
        let e = run_str("serve --drain-ms -5").unwrap_err();
        assert!(e.contains("drain-ms") && e.contains("-5"), "{e}");
        // Parsable but out-of-range values get range messages.
        let e = run_str("serve --queue-depth 0").unwrap_err();
        assert!(e.contains("1..=4096"), "{e}");
        let e = run_str("serve --drain-ms 0").unwrap_err();
        assert!(e.contains("1..=600000"), "{e}");
        let e = run_str("serve --workers 0").unwrap_err();
        assert!(e.contains("1..=64"), "{e}");
        let e = run_str("serve --default-deadline-ms 999999999").unwrap_err();
        assert!(e.contains("default-deadline-ms"), "{e}");
        // Telemetry flags: interval range, interval/file pairing, SLO range.
        let e = run_str("serve --metrics-interval-ms 5 --metrics-out /tmp/m.jsonl").unwrap_err();
        assert!(e.contains("10..=600000"), "{e}");
        let e = run_str("serve --metrics-interval-ms 1000").unwrap_err();
        assert!(e.contains("--metrics-out"), "{e}");
        let e = run_str("serve --slo-target 1.5").unwrap_err();
        assert!(e.contains("slo-target"), "{e}");
        let e = run_str("serve --slo-target 0").unwrap_err();
        assert!(e.contains("slo-target"), "{e}");
    }

    #[test]
    fn serve_trace_flag_and_stats_op_round_trip() {
        let dir = std::env::temp_dir().join(format!("klest-cli-trace-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("tmp dir");
        let path = dir.join("requests.jsonl");
        std::fs::write(
            &path,
            concat!(
                "{\"id\":\"t1\",\"trace\":true,\"gates\":8,\"samples\":16,\"area_fraction\":0.1}\n",
                "{\"op\":\"stats\",\"id\":\"s1\"}\n",
                "{\"op\":\"shutdown\"}\n"
            ),
        )
        .expect("write requests");
        let out = run_str(&format!(
            "serve --workers 1 --trace-responses --requests {}",
            path.display()
        ))
        .expect("serve runs clean");
        assert!(out.contains("\"trace\":{"), "{out}");
        assert!(out.contains("\"trace_id\":\""), "{out}");
        assert!(out.contains("\"status\":\"stats\""), "{out}");
        assert!(out.contains("\"slo\":{"), "{out}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn serve_metrics_out_writes_snapshot_lines() {
        let dir = std::env::temp_dir().join(format!("klest-cli-metrics-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("tmp dir");
        let requests = dir.join("requests.jsonl");
        let metrics = dir.join("metrics.jsonl");
        std::fs::write(
            &requests,
            concat!(
                "{\"id\":\"m1\",\"inject_hang_ms\":30000,\"deadline_ms\":200,",
                "\"gates\":8,\"samples\":16,\"area_fraction\":0.1}\n"
            ),
        )
        .expect("write requests");
        run_str(&format!(
            "serve --workers 1 --metrics-interval-ms 25 --metrics-out {} --requests {}",
            metrics.display(),
            requests.display()
        ))
        .expect("serve runs clean");
        let text = std::fs::read_to_string(&metrics).expect("metrics file written");
        assert!(
            text.lines()
                .all(|l| l.starts_with(r#"{"schema":"klest-metrics/v1""#)),
            "{text}"
        );
        assert!(!text.trim().is_empty(), "at least one snapshot line");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn serve_replays_a_request_file_and_drains() {
        let dir = std::env::temp_dir().join(format!("klest-cli-serve-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("tmp dir");
        let path = dir.join("requests.jsonl");
        std::fs::write(
            &path,
            concat!(
                "{\"id\":\"q1\",\"gates\":8,\"samples\":16,\"area_fraction\":0.1}\n",
                "{\"id\":\"q2\",\"gates\":8,\"samples\":16,\"area_fraction\":0.1}\n",
                "{\"op\":\"shutdown\"}\n"
            ),
        )
        .expect("write requests");
        let out = run_str(&format!(
            "serve --workers 1 --requests {}",
            path.display()
        ))
        .expect("serve runs clean");
        assert!(out.contains("\"id\":\"q1\""), "{out}");
        assert!(out.contains("\"status\":\"completed\""), "{out}");
        // Identical config ⇒ the second request must be a warm hit.
        assert!(out.contains("\"warm\":true"), "{out}");
        assert!(out.contains("\"status\":\"drained\""), "{out}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn help_and_empty() {
        assert!(run_str("help").unwrap().contains("COMMANDS"));
        assert!(run_str("").unwrap().contains("USAGE"));
        let e = run_str("frobnicate").unwrap_err();
        assert!(e.contains("unknown command"));
    }

    #[test]
    fn mesh_command() {
        let out = run_str("mesh --area-fraction 0.02 --min-angle 25").unwrap();
        assert!(out.contains("triangles"), "{out}");
    }

    #[test]
    fn kle_command_selects_rank() {
        let out = run_str("kle --kernel gaussian --area-fraction 0.02 --show 3").unwrap();
        assert!(out.contains("rank r = "), "{out}");
        assert!(out.contains("lambda_1"), "{out}");
    }

    #[test]
    fn validate_commands() {
        let good = run_str("validate --kernel gaussian --points 24 --trials 4").unwrap();
        assert!(good.contains("valid"), "{good}");
        let bad = run_str("validate --kernel cone --points 60 --trials 8").unwrap();
        assert!(bad.contains("INVALID"), "{bad}");
        assert!(bad.contains("verdict: INVALID"), "{bad}");
        // Even at default spot-check sizes the verdict catches the cone
        // through the spectral oracle.
        let subtle = run_str("validate --kernel cone --d 1.0 --points 24 --trials 3").unwrap();
        assert!(subtle.contains("verdict: INVALID"), "{subtle}");
        let aniso = run_str("validate --kernel separable --points 24 --trials 4").unwrap();
        assert!(aniso.contains("anisotropic"), "{aniso}");
    }

    #[test]
    fn netlist_command_emits_bench_text() {
        let out = run_str("netlist --gates 40 --seed 3").unwrap();
        assert!(out.contains("INPUT("), "{out}");
        assert!(out.contains("OUTPUT("), "{out}");
        assert!(out.contains("40 gates"), "{out}");
    }

    #[test]
    fn kernel_errors_are_user_facing() {
        assert!(run_str("kle --kernel frob").unwrap_err().contains("unknown kernel"));
        assert!(run_str("kle --kernel gaussian --c -3").unwrap_err().contains("positive"));
        assert!(run_str("ssta --circuit nope").unwrap_err().contains("unknown circuit"));
    }

    #[test]
    fn ssta_command_small() {
        let out = run_str("ssta --circuit c880 --scale 0.2 --samples 150 --threads 2").unwrap();
        assert!(out.contains("e_mu"), "{out}");
        assert!(out.contains("speedup"), "{out}");
        assert!(!out.contains("salvage["), "plain runs print no salvage: {out}");
    }

    #[test]
    fn hier_command_agrees_and_retimes_one_block() {
        let out = run_str("hier --gates 150 --seed 9 --blocks 4 --area-fraction 0.02").unwrap();
        assert!(out.contains("4 block(s)"), "{out}");
        assert!(out.contains("e_mu"), "{out}");
        assert!(out.contains("(1 block(s) re-extracted, 0 warm)"), "{out}");
        assert!(out.contains("agreement: OK"), "{out}");
    }

    #[test]
    fn hier_cache_dir_warm_run_serves_blocks_from_cache() {
        let dir = std::env::temp_dir().join(format!("klest-cli-hier-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let base = format!(
            "hier --gates 150 --seed 9 --blocks 3 --area-fraction 0.02 --cache-dir {}",
            dir.display()
        );
        let cold = run_str(&base).unwrap();
        assert!(cold.contains("extract: 0 cache hit(s), 3 extracted"), "{cold}");
        // Second run: all three initial blocks warm, and the edit's
        // re-keyed block was already stored by the first run's edit.
        let warm = run_str(&base).unwrap();
        assert!(warm.contains("extract: 3 cache hit(s), 0 extracted"), "{warm}");
        assert!(warm.contains("(0 block(s) re-extracted, 1 warm)"), "{warm}");
        assert!(warm.contains("agreement: OK"), "{warm}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn hier_bad_flags_are_typed_errors() {
        let e = run_str("hier --blocks 0").unwrap_err();
        assert!(e.contains("blocks"), "{e}");
        let e = run_str("hier --gates 100 --edit-node 100000").unwrap_err();
        assert!(e.contains("edit-node"), "{e}");
        let e = run_str("hier --blocks potato").unwrap_err();
        assert!(e.contains("blocks") && e.contains("potato"), "{e}");
    }

    #[test]
    fn malformed_numeric_flags_are_typed_errors() {
        let e = run_str("ssta --circuit c880 --samples banana").unwrap_err();
        assert!(e.contains("invalid argument --samples banana"), "{e}");
        let e = run_str("mesh --area-fraction huge").unwrap_err();
        assert!(e.contains("invalid argument --area-fraction huge"), "{e}");
        let e = run_str("kle --kernel matern --b wide").unwrap_err();
        assert!(e.contains("invalid argument --b wide"), "{e}");
        let e = run_str("netlist --gates 3.5").unwrap_err();
        assert!(e.contains("invalid argument --gates 3.5"), "{e}");
        // Parses but out of range: negative deadline.
        let e = run_str("ssta --circuit c880 --deadline -2").unwrap_err();
        assert!(e.contains("invalid argument --deadline -2"), "{e}");
        assert!(e.contains("positive"), "{e}");
        // Malformed stage-budget spec.
        let e = run_str("ssta --circuit c880 --stage-budget mc:0.5").unwrap_err();
        assert!(e.contains("invalid argument --stage-budget"), "{e}");
    }

    #[test]
    fn ssta_supervised_clean_run_reports_full_salvage() {
        // A generous deadline changes the mechanism, not the outcome.
        let out = run_str(
            "ssta --circuit c880 --scale 0.2 --samples 150 --threads 2 \
             --area-fraction 0.02 --deadline 600",
        )
        .unwrap();
        assert!(out.contains("salvage[reference]: 150/150"), "{out}");
        assert!(out.contains("salvage[kle]: 150/150"), "{out}");
    }

    #[test]
    fn ssta_cache_dir_warm_run_hits_and_reproduces_numbers() {
        // Acceptance criterion: a warm artifact cache skips mesh build,
        // assembly and the eigensolve (observable via the obs counters
        // in the run report) and reproduces the cold-run statistics
        // exactly.
        let dir = std::env::temp_dir().join("klest-cli-cache-test");
        std::fs::remove_dir_all(&dir).ok();
        let r1 = std::env::temp_dir().join("klest-cli-cache-r1.json");
        let r2 = std::env::temp_dir().join("klest-cli-cache-r2.json");
        let base = format!(
            "ssta --circuit c880 --scale 0.2 --samples 120 --threads 2 \
             --area-fraction 0.02 --cache-dir {}",
            dir.display()
        );
        let out1 = run_str(&format!("{base} --report {}", r1.display())).unwrap();
        let out2 = run_str(&format!("{base} --report {}", r2.display())).unwrap();
        let json1 = std::fs::read_to_string(&r1).expect("cold report");
        let json2 = std::fs::read_to_string(&r2).expect("warm report");
        std::fs::remove_file(&r1).ok();
        std::fs::remove_file(&r2).ok();
        std::fs::remove_dir_all(&dir).ok();
        assert!(out1.contains("cache: 0 hit(s)"), "{out1}");
        assert!(json1.contains("pipeline.cache.spectrum.misses"), "{json1}");
        // The warm run serves mesh + spectrum from disk and never reaches
        // the assembly / eigensolve stages.
        assert!(json2.contains("pipeline.cache.spectrum.hits"), "{json2}");
        assert!(json2.contains("pipeline.cache.mesh.hits"), "{json2}");
        assert!(!json2.contains("galerkin/assemble"), "{json2}");
        assert!(out2.contains("hit(s)"), "{out2}");
        assert!(!out2.contains("cache: 0 hit(s)"), "{out2}");
        // Statistics are identical; only the timing-dependent speedup
        // column may differ between the two invocations.
        let stats = |s: &str| {
            s.lines()
                .find(|l| l.contains("e_mu"))
                .expect("stats line")
                .split(", speedup")
                .next()
                .expect("stats prefix")
                .to_string()
        };
        assert_eq!(stats(&out1), stats(&out2));
    }

    #[test]
    fn ssta_supervised_acceptance_salvages_and_reports() {
        // Acceptance criterion from the issue: a fault-injected run with
        // one panicking shard and one hung shard under a 2 s deadline
        // must exit cleanly, retry the panicking shard, salvage the
        // completed samples, and surface Cancelled / WorkerFault events
        // in both the printed degradation summary and the report JSON.
        let report = std::env::temp_dir().join("klest-cli-acceptance-report.json");
        let report_path = report.to_str().expect("utf8 temp path").to_string();
        let line = format!(
            "ssta --circuit c880 --scale 0.2 --samples 300 --threads 2 \
             --area-fraction 0.02 --deadline 2 --stage-budget mc=0.5 \
             --inject-panic-shard 0 --inject-hang-ms 600000 --report {report_path}"
        );
        let out = run_str(&line).expect("injected faults must not make the CLI fail");
        let json = std::fs::read_to_string(&report).expect("report written");
        std::fs::remove_file(&report).ok();
        assert!(out.contains("salvage[reference]:"), "{out}");
        assert!(out.contains("shard(s) retried"), "{out}");
        assert!(out.contains("degradation:"), "{out}");
        assert!(json.contains("cancelled"), "{json}");
        assert!(json.contains("worker fault"), "{json}");
    }
}
