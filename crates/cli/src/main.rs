//! The `klest` binary: thin wrapper over [`klest_cli::run`].

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    // `Stdout` rather than `StdoutLock`: serve workers write responses
    // concurrently, so the writer must be `Send` (the lock guard isn't).
    let mut stdout = std::io::stdout();
    if let Err(message) = klest_cli::run(&argv, &mut stdout) {
        eprintln!("error: {message}");
        std::process::exit(1);
    }
}
