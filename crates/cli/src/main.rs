//! The `klest` binary: thin wrapper over [`klest_cli::run`].

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut stdout = std::io::stdout().lock();
    if let Err(message) = klest_cli::run(&argv, &mut stdout) {
        eprintln!("error: {message}");
        std::process::exit(1);
    }
}
