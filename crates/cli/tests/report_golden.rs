//! End-to-end tests of the CLI observability surface: the `--report`
//! JSON is deterministic for a fixed seeded command (stable key order,
//! no non-finite values), and `--trace` spans nest correctly.

use std::path::PathBuf;
use std::sync::{Mutex, MutexGuard, PoisonError};

/// The observability registry is process-global and `run` resets it, so
/// tests touching `--trace`/`--report` must not interleave.
static LOCK: Mutex<()> = Mutex::new(());

fn lock() -> MutexGuard<'static, ()> {
    LOCK.lock().unwrap_or_else(PoisonError::into_inner)
}

fn run_str(line: &str) -> Result<String, String> {
    let argv: Vec<String> = line.split_whitespace().map(String::from).collect();
    let mut buf = Vec::new();
    klest_cli::run(&argv, &mut buf)?;
    Ok(String::from_utf8(buf).expect("utf8"))
}

fn tmp_path(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("klest_{}_{name}.json", std::process::id()))
}

/// All JSON object keys, in document order. Walks the text with a string
/// scanner (not a parser): a quoted string is a key iff the next
/// non-whitespace character is ':'.
fn key_sequence(json: &str) -> Vec<String> {
    let bytes = json.as_bytes();
    let mut keys = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'"' {
            let start = i + 1;
            let mut j = start;
            while j < bytes.len() && bytes[j] != b'"' {
                if bytes[j] == b'\\' {
                    j += 1;
                }
                j += 1;
            }
            let mut k = j + 1;
            while k < bytes.len() && (bytes[k] as char).is_whitespace() {
                k += 1;
            }
            if k < bytes.len() && bytes[k] == b':' {
                keys.push(json[start..j].to_string());
            }
            i = j + 1;
        } else {
            i += 1;
        }
    }
    keys
}

/// Replaces every `"wall_ns": <integer>` value with 0 so two reports of
/// the same seeded run can be compared exactly (timings are the only
/// nondeterministic field).
fn zero_wall_ns(json: &str) -> String {
    let mut out = String::with_capacity(json.len());
    let mut rest = json;
    while let Some(pos) = rest.find("\"wall_ns\":") {
        let after = pos + "\"wall_ns\":".len();
        out.push_str(&rest[..after]);
        out.push_str(" 0");
        let tail = &rest[after..];
        let end = tail
            .find([',', '\n', '}'])
            .unwrap_or(tail.len());
        rest = &tail[end..];
    }
    out.push_str(rest);
    out
}

/// Extracts the `wall_ns` value of the span node with exactly `path`.
fn wall_ns_of(json: &str, path: &str) -> Option<u64> {
    let needle = format!("\"path\": \"{path}\"");
    let pos = json.find(&needle)?;
    let tail = &json[pos..];
    let wpos = tail.find("\"wall_ns\":")?;
    let digits: String = tail[wpos + "\"wall_ns\":".len()..]
        .chars()
        .skip_while(|c| c.is_whitespace())
        .take_while(char::is_ascii_digit)
        .collect();
    digits.parse().ok()
}

const KLE_CMD: &str = "kle --kernel gaussian --area-fraction 0.05 --show 3";

#[test]
fn kle_report_is_deterministic_and_matches_golden() {
    let _guard = lock();
    // Same output path for both runs so argv (which the report embeds)
    // is identical; the second run overwrites the first.
    let path = tmp_path("kle_det");
    run_str(&format!("{KLE_CMD} --report {}", path.display())).unwrap();
    let a = std::fs::read_to_string(&path).unwrap();
    run_str(&format!("{KLE_CMD} --report {}", path.display())).unwrap();
    let b = std::fs::read_to_string(&path).unwrap();
    let _ = std::fs::remove_file(&path);

    // Two runs of the same seeded command differ only in timings.
    assert_eq!(zero_wall_ns(&a), zero_wall_ns(&b));

    // No non-finite values leak into the JSON (they serialize as null,
    // and a healthy run produces none at all).
    for token in ["NaN", "nan", "Infinity", "inf", "null"] {
        assert!(!a.contains(token), "report contains {token}:\n{a}");
    }

    // Key order matches the committed golden sequence exactly.
    let golden_path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/golden/kle_report_keys.txt"
    );
    let golden = std::fs::read_to_string(golden_path).expect("golden file present");
    let expected: Vec<&str> = golden.lines().filter(|l| !l.is_empty()).collect();
    let actual = key_sequence(&a);
    assert_eq!(
        actual, expected,
        "report key sequence drifted from tests/golden/kle_report_keys.txt \
         — if the schema change is intentional, regenerate the golden file"
    );
}

#[test]
fn kle_trace_nests_spans_under_command() {
    let _guard = lock();
    let report = tmp_path("kle_trace");
    // --trace renders to stderr (not capturable here); the span tree it
    // renders is the same one the report serializes, so nesting is
    // asserted on the JSON.
    let out = run_str(&format!("{KLE_CMD} --trace --report {}", report.display())).unwrap();
    assert!(out.contains("rank r = "), "{out}");
    let json = std::fs::read_to_string(&report).unwrap();
    let _ = std::fs::remove_file(&report);

    // Full nested paths: command span at the root, pipeline stages below.
    for path in [
        "kle",
        "kle/mesh/build",
        "kle/galerkin/assemble",
        "kle/galerkin/eigensolve",
        "kle/truncate",
    ] {
        assert!(
            json.contains(&format!("\"path\": \"{path}\"")),
            "missing span {path} in:\n{json}"
        );
    }
    // Nesting, not flattening: children appear inside their parent node,
    // so the parent's path occurs before the child's in the serialized
    // depth-first order.
    let pos = |p: &str| json.find(&format!("\"path\": \"{p}\"")).unwrap();
    assert!(pos("kle") < pos("kle/mesh/build"));
    assert!(pos("kle/mesh/build") < pos("kle/galerkin/assemble"));
    assert!(pos("kle/galerkin/assemble") < pos("kle/galerkin/eigensolve"));
    assert!(pos("kle/galerkin/eigensolve") < pos("kle/truncate"));
}

#[test]
fn ssta_report_covers_all_pipeline_stages() {
    let _guard = lock();
    let report = tmp_path("ssta");
    let out = run_str(&format!(
        "ssta --circuit c880 --scale 0.2 --samples 120 --seed 2008 --threads 2 --report {}",
        report.display()
    ))
    .unwrap();
    assert!(out.contains("e_mu"), "{out}");
    let json = std::fs::read_to_string(&report).unwrap();
    let _ = std::fs::remove_file(&report);

    // Every pipeline stage shows up with a nonzero wall time.
    for path in [
        "ssta",
        "ssta/kle/mesh/build",
        "ssta/kle/galerkin/assemble",
        "ssta/kle/galerkin/eigensolve",
        "ssta/kle/truncate",
        "ssta/mc/reference",
        "ssta/mc/kle",
    ] {
        let ns = wall_ns_of(&json, path).unwrap_or_else(|| panic!("span {path} missing"));
        assert!(ns > 0, "span {path} has zero wall time");
    }
    // Eigensolver effort and MC throughput are reported as metrics.
    for needle in [
        "\"eigen.ql_iterations\"",
        "\"mc.samples\"",
        "\"mc.samples_per_sec\"",
        "\"mc.worker_wall_ms\"",
        "\"mesh.min_angle_deg\"",
        "\"kle.rank\"",
        "\"ssta.speedup\"",
        "\"events\"",
    ] {
        assert!(json.contains(needle), "missing {needle} in:\n{json}");
    }
    assert!(json.contains("\"schema\": \"klest-run-report/v1\""));
}

#[test]
fn report_flag_off_leaves_no_observability_output() {
    let _guard = lock();
    // Without --trace/--report the sink stays off and output is the
    // plain command output only.
    let out = run_str("mesh --area-fraction 0.1").unwrap();
    assert!(out.contains("triangles"), "{out}");
    assert!(!out.contains("wrote"), "{out}");
}
