//! Closed-form KLE references (Ghanem & Spanos [8]).
//!
//! The 1-D exponential kernel `K(x, y) = exp(-c |x - y|)` on `[-a, a]`
//! admits an analytic KLE: eigenvalues `λ = 2c / (ω² + c²)` where `ω`
//! runs over the roots of
//!
//! - even modes: `c - ω tan(ω a) = 0`, eigenfunction `∝ cos(ω x)`,
//! - odd modes:  `ω + c tan(ω a) = 0`, eigenfunction `∝ sin(ω x)`.
//!
//! A 2-D kernel separable into such factors (the paper's eq. 5) has
//! eigenpairs given by products of the 1-D ones — the ground truth the
//! paper cites when motivating a *numerical* method for non-separable
//! kernels. `klest` uses these closed forms to validate the Galerkin
//! solver end to end.

/// Parity of a 1-D exponential-kernel eigenmode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Parity {
    /// Cosine mode, root of `c - ω tan(ω a)`.
    Even,
    /// Sine mode, root of `ω + c tan(ω a)`.
    Odd,
}

/// One analytic eigenpair of the 1-D exponential kernel.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Mode1d {
    /// Eigenvalue `λ = 2c / (ω² + c²)`.
    pub lambda: f64,
    /// Transcendental frequency `ω`.
    pub omega: f64,
    /// Cosine or sine mode.
    pub parity: Parity,
}

/// Analytic KLE of `exp(-c |x - y|)` on the symmetric interval `[-a, a]`.
#[derive(Debug, Clone)]
pub struct Exponential1dKle {
    a: f64,
    c: f64,
    modes: Vec<Mode1d>,
}

impl Exponential1dKle {
    /// Computes the first `count` eigenpairs (sorted by descending λ).
    ///
    /// # Panics
    ///
    /// Panics unless `c > 0`, `a > 0` and `count > 0`.
    pub fn new(c: f64, a: f64, count: usize) -> Self {
        assert!(c > 0.0 && a > 0.0 && count > 0, "invalid KLE parameters");
        let mut modes = Vec::with_capacity(2 * count);
        let half_pi = std::f64::consts::FRAC_PI_2;
        let pi = std::f64::consts::PI;
        // Even roots: one in each ω a ∈ (kπ, kπ + π/2).
        for k in 0..count {
            let lo = (k as f64 * pi) / a + 1e-12;
            let hi = (k as f64 * pi + half_pi) / a - 1e-12;
            let f = |w: f64| c - w * (w * a).tan();
            let w = bisect(f, lo, hi);
            modes.push(Mode1d {
                lambda: 2.0 * c / (w * w + c * c),
                omega: w,
                parity: Parity::Even,
            });
        }
        // Odd roots: one in each ω a ∈ (kπ + π/2, (k+1)π).
        for k in 0..count {
            let lo = (k as f64 * pi + half_pi) / a + 1e-12;
            let hi = ((k + 1) as f64 * pi) / a - 1e-12;
            let f = |w: f64| w + c * (w * a).tan();
            let w = bisect(f, lo, hi);
            modes.push(Mode1d {
                lambda: 2.0 * c / (w * w + c * c),
                omega: w,
                parity: Parity::Odd,
            });
        }
        modes.sort_by(|x, y| f64::total_cmp(&y.lambda, &x.lambda));
        modes.truncate(count);
        Exponential1dKle { a, c, modes }
    }

    /// The computed modes, descending by eigenvalue.
    pub fn modes(&self) -> &[Mode1d] {
        &self.modes
    }

    /// Eigenvalues, descending.
    pub fn eigenvalues(&self) -> Vec<f64> {
        self.modes.iter().map(|m| m.lambda).collect()
    }

    /// The interval half-length `a`.
    pub fn half_length(&self) -> f64 {
        self.a
    }

    /// The kernel decay rate `c`.
    pub fn decay(&self) -> f64 {
        self.c
    }

    /// Value of the `i`-th (L²-normalized) eigenfunction at `x`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn eigenfunction(&self, i: usize, x: f64) -> f64 {
        let m = self.modes[i];
        let (w, a) = (m.omega, self.a);
        match m.parity {
            Parity::Even => {
                let norm = (a + (2.0 * w * a).sin() / (2.0 * w)).sqrt();
                (w * x).cos() / norm
            }
            Parity::Odd => {
                let norm = (a - (2.0 * w * a).sin() / (2.0 * w)).sqrt();
                (w * x).sin() / norm
            }
        }
    }
}

/// Top `count` eigenvalues of the separable 2-D kernel
/// `exp(-c(|x₁-y₁| + |x₂-y₂|))` on `[-a, a]²`: all pairwise products of
/// 1-D eigenvalues, sorted descending (paper Sec. 3.1, citing [8]).
pub fn separable_2d_eigenvalues(c: f64, a: f64, count: usize) -> Vec<f64> {
    // Enough 1-D modes that the smallest product we keep is safe: the
    // product list is dominated by the first ~count 1-D values.
    let m = count.max(4);
    let one_d = Exponential1dKle::new(c, a, m).eigenvalues();
    let mut products = Vec::with_capacity(m * m);
    for &li in &one_d {
        for &lj in &one_d {
            products.push(li * lj);
        }
    }
    products.sort_by(|x, y| f64::total_cmp(y, x));
    products.truncate(count);
    products
}

/// Bisection root finder; assumes a sign change on `[lo, hi]`.
fn bisect<F: Fn(f64) -> f64>(f: F, mut lo: f64, mut hi: f64) -> f64 {
    let mut flo = f(lo);
    debug_assert!(
        flo * f(hi) <= 0.0,
        "bisection bracket has no sign change"
    );
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        let fmid = f(mid);
        if fmid == 0.0 {
            return mid;
        }
        if flo * fmid < 0.0 {
            hi = mid;
        } else {
            lo = mid;
            flo = fmid;
        }
        if (hi - lo) < 1e-14 * hi.abs().max(1.0) {
            break;
        }
    }
    0.5 * (lo + hi)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roots_satisfy_transcendental_equations() {
        let kle = Exponential1dKle::new(1.0, 1.0, 8);
        for m in kle.modes() {
            match m.parity {
                Parity::Even => {
                    let r = kle.decay() - m.omega * (m.omega * kle.half_length()).tan();
                    assert!(r.abs() < 1e-8, "even residual {r}");
                }
                Parity::Odd => {
                    let r = m.omega + kle.decay() * (m.omega * kle.half_length()).tan();
                    assert!(r.abs() < 1e-8, "odd residual {r}");
                }
            }
            assert!((m.lambda - 2.0 / (m.omega * m.omega + 1.0)).abs() < 1e-12);
        }
    }

    #[test]
    fn eigenvalues_positive_descending_and_trace() {
        let (c, a) = (1.3, 1.0);
        let kle = Exponential1dKle::new(c, a, 60);
        let ev = kle.eigenvalues();
        for w in ev.windows(2) {
            assert!(w[0] >= w[1]);
            assert!(w[1] > 0.0);
        }
        // Mercer trace: Σ λ = ∫ K(x,x) dx = 2a. 60 modes capture almost
        // all of it (tail decays like 1/ω²).
        let sum: f64 = ev.iter().sum();
        assert!(sum < 2.0 * a);
        assert!(sum > 0.95 * 2.0 * a, "sum = {sum}");
    }

    #[test]
    fn eigenfunctions_orthonormal_numerically() {
        let kle = Exponential1dKle::new(1.0, 1.0, 5);
        let quad = 4000;
        let inner = |i: usize, j: usize| -> f64 {
            let mut acc = 0.0;
            for q in 0..quad {
                let x = -1.0 + 2.0 * (q as f64 + 0.5) / quad as f64;
                acc += kle.eigenfunction(i, x) * kle.eigenfunction(j, x);
            }
            acc * 2.0 / quad as f64
        };
        for i in 0..5 {
            for j in i..5 {
                let v = inner(i, j);
                let expected = if i == j { 1.0 } else { 0.0 };
                assert!((v - expected).abs() < 1e-6, "⟨{i},{j}⟩ = {v}");
            }
        }
    }

    #[test]
    fn integral_equation_holds() {
        // ∫ K(x, y) f(y) dy = λ f(x) at a few probe points.
        let (c, a) = (1.0, 1.0);
        let kle = Exponential1dKle::new(c, a, 4);
        let quad = 8000;
        for i in 0..4 {
            for &x in &[-0.7, -0.1, 0.4, 0.9] {
                let mut lhs = 0.0;
                for q in 0..quad {
                    let y = -a + 2.0 * a * (q as f64 + 0.5) / quad as f64;
                    lhs += (-c * (x - y).abs()).exp() * kle.eigenfunction(i, y);
                }
                lhs *= 2.0 * a / quad as f64;
                let rhs = kle.modes()[i].lambda * kle.eigenfunction(i, x);
                assert!(
                    (lhs - rhs).abs() < 1e-4,
                    "mode {i} at x = {x}: {lhs} vs {rhs}"
                );
            }
        }
    }

    #[test]
    fn first_mode_is_even_cosine() {
        let kle = Exponential1dKle::new(1.0, 1.0, 3);
        assert_eq!(kle.modes()[0].parity, Parity::Even);
        // Ghanem–Spanos reference: for c = a = 1 the first even root of
        // c = ω tan(ω) is ω₁ ≈ 0.8603, λ₁ = 2/(ω₁² + 1) ≈ 1.1493.
        assert!((kle.modes()[0].omega - 0.8603).abs() < 1e-3);
        assert!((kle.modes()[0].lambda - 1.1493).abs() < 1e-3);
    }

    #[test]
    fn separable_2d_products() {
        let ev2 = separable_2d_eigenvalues(1.0, 1.0, 10);
        let ev1 = Exponential1dKle::new(1.0, 1.0, 10).eigenvalues();
        // Top 2-D eigenvalue is the square of the top 1-D one.
        assert!((ev2[0] - ev1[0] * ev1[0]).abs() < 1e-12);
        // Second is λ1 λ2 (doubly degenerate).
        assert!((ev2[1] - ev1[0] * ev1[1]).abs() < 1e-12);
        assert!((ev2[2] - ev1[0] * ev1[1]).abs() < 1e-12);
        for w in ev2.windows(2) {
            assert!(w[0] >= w[1]);
        }
    }

    #[test]
    #[should_panic]
    fn invalid_parameters_panic() {
        let _ = Exponential1dKle::new(-1.0, 1.0, 3);
    }
}
