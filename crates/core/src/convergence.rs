//! Convergence studies for the Galerkin method (Theorem 2).
//!
//! The paper proves the centroid-rule integration error — and hence the
//! whole method ([3]) — converges linearly in the longest triangle side
//! `h`. This module packages the machinery to measure that: run the KLE
//! across a mesh-refinement ladder, compare against a reference spectrum
//! and fit the observed convergence order `p` in `error = C·h^p` by
//! log-log regression.

use crate::{GalerkinKle, KleError, KleOptions, QuadratureRule};
use klest_geometry::Rect;
use klest_kernels::CovarianceKernel;
use klest_mesh::{MeshBuilder, MeshError};

/// One rung of a refinement ladder.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConvergencePoint {
    /// Number of triangles `n`.
    pub triangles: usize,
    /// Longest triangle side `h`.
    pub h: f64,
    /// Error against the reference (max relative error over the compared
    /// eigenvalues).
    pub error: f64,
}

/// Result of a convergence study.
#[derive(Debug, Clone, PartialEq)]
pub struct ConvergenceStudy {
    /// The ladder, fine to coarse as supplied.
    pub points: Vec<ConvergencePoint>,
    /// Fitted order `p` in `error ≈ C h^p` (log-log least squares).
    pub order: f64,
}

/// Errors from a convergence study.
#[derive(Debug)]
pub enum ConvergenceError {
    /// Meshing failed at one rung.
    Mesh(MeshError),
    /// KLE computation failed at one rung.
    Kle(KleError),
    /// Fewer than two rungs were requested — no order can be fitted.
    TooFewRungs,
}

impl std::fmt::Display for ConvergenceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConvergenceError::Mesh(e) => write!(f, "meshing failed: {e}"),
            ConvergenceError::Kle(e) => write!(f, "KLE failed: {e}"),
            ConvergenceError::TooFewRungs => write!(f, "need at least two mesh sizes"),
        }
    }
}

impl std::error::Error for ConvergenceError {}

/// Runs the KLE across `max_areas` (one mesh per entry) and measures the
/// worst relative error of the first `compare` eigenvalues against
/// `reference` (e.g. an analytic spectrum, or a much finer mesh's).
///
/// # Errors
///
/// [`ConvergenceError`] if meshing/KLE fails or fewer than two rungs are
/// given.
pub fn eigenvalue_convergence<K: CovarianceKernel + ?Sized>(
    kernel: &K,
    reference: &[f64],
    max_areas: &[f64],
    compare: usize,
    rule: QuadratureRule,
) -> Result<ConvergenceStudy, ConvergenceError> {
    if max_areas.len() < 2 {
        return Err(ConvergenceError::TooFewRungs);
    }
    let compare = compare.min(reference.len());
    let mut points = Vec::with_capacity(max_areas.len());
    for &area in max_areas {
        let mesh = MeshBuilder::new(Rect::unit_die())
            .max_area(area)
            .min_angle_degrees(28.0)
            .build()
            .map_err(ConvergenceError::Mesh)?;
        let options = KleOptions {
            quadrature: rule,
            max_eigenpairs: compare.max(1),
            ..KleOptions::default()
        };
        let kle = GalerkinKle::compute(&mesh, kernel, options).map_err(ConvergenceError::Kle)?;
        let mut err = 0.0f64;
        for (a, e) in kle.eigenvalues().iter().zip(reference).take(compare) {
            err = err.max((a - e).abs() / e.abs().max(f64::MIN_POSITIVE));
        }
        points.push(ConvergencePoint {
            triangles: mesh.len(),
            h: mesh.max_side(),
            error: err,
        });
    }
    // Log-log regression: slope of ln(error) against ln(h).
    let usable: Vec<&ConvergencePoint> = points.iter().filter(|p| p.error > 0.0).collect();
    let order = if usable.len() >= 2 {
        let n = usable.len() as f64;
        let (mut sx, mut sy, mut sxx, mut sxy) = (0.0, 0.0, 0.0, 0.0);
        for p in &usable {
            let x = p.h.ln();
            let y = p.error.ln();
            sx += x;
            sy += y;
            sxx += x * x;
            sxy += x * y;
        }
        (n * sxy - sx * sy) / (n * sxx - sx * sx)
    } else {
        0.0
    };
    Ok(ConvergenceStudy { points, order })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analytic::separable_2d_eigenvalues;
    use klest_kernels::SeparableExponentialKernel;

    #[test]
    fn observed_order_is_positive_and_near_linear_or_better() {
        let kernel = SeparableExponentialKernel::new(1.0);
        let reference = separable_2d_eigenvalues(1.0, 1.0, 5);
        let study = eigenvalue_convergence(
            &kernel,
            &reference,
            &[0.1, 0.05, 0.02, 0.01],
            5,
            QuadratureRule::Centroid,
        )
        .unwrap();
        assert_eq!(study.points.len(), 4);
        // h decreases down the ladder, error with it.
        for w in study.points.windows(2) {
            assert!(w[1].h < w[0].h, "h must shrink");
        }
        assert!(
            study.points.last().unwrap().error < study.points[0].error,
            "finest rung must beat coarsest"
        );
        // Theorem 2 guarantees at least linear convergence.
        assert!(
            study.order > 0.7,
            "observed order {} too low for a linear method",
            study.order
        );
    }

    #[test]
    fn too_few_rungs_rejected() {
        let kernel = SeparableExponentialKernel::new(1.0);
        let reference = [1.0];
        assert!(matches!(
            eigenvalue_convergence(&kernel, &reference, &[0.1], 1, QuadratureRule::Centroid),
            Err(ConvergenceError::TooFewRungs)
        ));
    }

    #[test]
    fn higher_order_rule_reports_smaller_errors() {
        let kernel = SeparableExponentialKernel::new(1.0);
        let reference = separable_2d_eigenvalues(1.0, 1.0, 3);
        let ladder = [0.1, 0.04];
        let centroid = eigenvalue_convergence(
            &kernel,
            &reference,
            &ladder,
            3,
            QuadratureRule::Centroid,
        )
        .unwrap();
        let seven = eigenvalue_convergence(
            &kernel,
            &reference,
            &ladder,
            3,
            QuadratureRule::SevenPoint,
        )
        .unwrap();
        for (c, s) in centroid.points.iter().zip(&seven.points) {
            assert!(
                s.error <= c.error * 1.05,
                "7-point {} should not lose to centroid {}",
                s.error,
                c.error
            );
        }
    }
}
