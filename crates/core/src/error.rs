//! Error type for the KLE pipeline.

use klest_linalg::LinalgError;
use std::fmt;

/// Errors from KLE computation and sampling.
#[derive(Debug, Clone, PartialEq)]
pub enum KleError {
    /// The underlying eigensolve / factorisation failed.
    Linalg(LinalgError),
    /// A requested truncation rank exceeds the retained eigenpairs.
    RankOutOfRange {
        /// Requested rank.
        requested: usize,
        /// Eigenpairs actually retained.
        available: usize,
    },
    /// The sample vector handed to the sampler has the wrong length.
    SampleDimensionMismatch {
        /// Expected length (the truncation rank `r`).
        expected: usize,
        /// Supplied length.
        got: usize,
    },
    /// A point could not be located in the mesh (outside the die).
    PointOutsideMesh {
        /// Index of the offending point in the caller's list.
        index: usize,
    },
    /// A pre-located triangle index exceeds the mesh size (e.g. indices
    /// computed against a different mesh).
    TriangleOutOfRange {
        /// The offending triangle index.
        index: usize,
        /// Number of triangles in the mesh.
        triangles: usize,
    },
    /// The KLE computation was cancelled cooperatively (deadline or
    /// explicit cancel); carries the runtime's typed partial-result marker.
    /// `completed` counts assembled Galerkin rows or converged eigenvalues,
    /// depending on `stage`.
    Cancelled(klest_runtime::Cancelled),
}

impl fmt::Display for KleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KleError::Linalg(e) => write!(f, "linear algebra failure: {e}"),
            KleError::RankOutOfRange { requested, available } => write!(
                f,
                "truncation rank {requested} exceeds the {available} retained eigenpairs"
            ),
            KleError::SampleDimensionMismatch { expected, got } => {
                write!(f, "sample vector has length {got}, expected {expected}")
            }
            KleError::PointOutsideMesh { index } => {
                write!(f, "point {index} lies outside the meshed die area")
            }
            KleError::TriangleOutOfRange { index, triangles } => {
                write!(f, "triangle index {index} out of range ({triangles} triangles)")
            }
            KleError::Cancelled(c) => write!(f, "{c}"),
        }
    }
}

impl std::error::Error for KleError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            KleError::Linalg(e) => Some(e),
            _ => None,
        }
    }
}

impl From<LinalgError> for KleError {
    fn from(e: LinalgError) -> Self {
        // Cancellation is not a numerical failure; keep the runtime marker
        // at the top level so callers can match one variant per crate.
        match e {
            LinalgError::Cancelled(c) => KleError::Cancelled(c),
            other => KleError::Linalg(other),
        }
    }
}

impl From<klest_runtime::Cancelled> for KleError {
    fn from(c: klest_runtime::Cancelled) -> Self {
        KleError::Cancelled(c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        use std::error::Error;
        let e = KleError::from(LinalgError::Empty);
        assert!(e.to_string().contains("linear algebra"));
        assert!(e.source().is_some());
        let e = KleError::RankOutOfRange {
            requested: 30,
            available: 25,
        };
        assert!(e.to_string().contains("30"));
        assert!(e.source().is_none());
        assert!(KleError::SampleDimensionMismatch { expected: 3, got: 2 }
            .to_string()
            .contains("expected 3"));
        assert!(KleError::PointOutsideMesh { index: 5 }
            .to_string()
            .contains("point 5"));
    }
}
