//! Galerkin assembly of the covariance operator (paper eq. 12/18/21).
//!
//! Assembly is the dominant front-end cost (O(n²) kernel–quadrature
//! evaluations for n triangles, Table 2 of the paper), so beyond the
//! serial reference path this module shards the upper triangle into
//! contiguous row blocks dispatched on the [`klest_runtime::Supervisor`]
//! worker pool — inheriting panic isolation, bounded retries and
//! cooperative cancellation — while guaranteeing the assembled matrix is
//! **bitwise identical** for every worker count (each entry is computed
//! by exactly the same floating-point expression in the same order;
//! workers produce disjoint owned row blocks that are scattered into the
//! matrix afterwards).

use crate::QuadratureRule;
use klest_geometry::Point2;
use klest_kernels::CovarianceKernel;
use klest_linalg::{LinalgError, LinearOperator, Matrix};
use klest_mesh::Mesh;
use klest_runtime::{CancelToken, Cancelled, Supervisor};

/// Below this basis size the parallel entry points fall back to the
/// serial loop: thread spawn + scatter overhead beats the win for tiny
/// matrices, and the serial path keeps its exact one-checkpoint-per-row
/// cancellation accounting.
pub const PARALLEL_MIN_TRIANGLES: usize = 128;

/// Resolves a requested assembly worker count: `0` means "auto", which
/// reads the `KLEST_THREADS` environment variable (a positive integer)
/// and defaults to `1` (serial) when unset or malformed — parallel
/// assembly is opt-in, so default builds stay byte-for-byte identical to
/// the historical serial pipeline everywhere, including checkpoint
/// ordering.
pub fn resolve_assembly_threads(requested: usize) -> usize {
    if requested > 0 {
        return requested;
    }
    std::env::var("KLEST_THREADS")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n >= 1)
        .unwrap_or(1)
}

/// Number of upper-triangle entries (incl. diagonal) in rows
/// `start .. start + count` of an `n x n` matrix: row `i` holds `n - i`.
fn tri_entries(n: usize, start: usize, count: usize) -> u64 {
    let count = count.min(n.saturating_sub(start));
    let (n, start, count) = (n as u64, start as u64, count as u64);
    count * (n - start) - count * count.saturating_sub(1) / 2
}

/// Deterministic contiguous row-block boundaries balancing the
/// upper-triangle entry count per shard (early rows are longer, so equal
/// row counts would starve the late shards). Pure function of
/// `(n, shards)` — the same boundaries on every run and machine.
fn shard_row_bounds(n: usize, shards: usize) -> Vec<(usize, usize)> {
    let shards = shards.max(1).min(n.max(1));
    let mut bounds = Vec::with_capacity(shards);
    let mut start = 0usize;
    let mut remaining = tri_entries(n, 0, n);
    for s in 0..shards {
        let left = (shards - s) as u64;
        let target = remaining.div_ceil(left);
        let mut end = start;
        let mut got = 0u64;
        while end < n && got < target {
            got += (n - end) as u64;
            end += 1;
        }
        if s + 1 == shards {
            end = n;
            got = tri_entries(n, start, n - start);
        }
        bounds.push((start, end));
        start = end;
        remaining = remaining.saturating_sub(got);
    }
    bounds
}

/// Assembles the Galerkin matrix
/// `K_ik = ∫_{Δ_k} ∫_{Δ_i} K(x, y) dx dy`
/// over the piecewise-constant triangle basis.
///
/// With the paper's centroid rule this is exactly eq. (21):
/// `K_ik ≈ K(x_{Δ_i}, x_{Δ_k}) a_i a_k`. Higher-order rules tensor their
/// nodes across the two triangles. Symmetry is enforced by assembling the
/// upper triangle and mirroring, which also halves the kernel
/// evaluations.
///
/// ```
/// use klest_core::{assemble_galerkin, QuadratureRule};
/// use klest_kernels::GaussianKernel;
/// use klest_mesh::MeshBuilder;
/// use klest_geometry::Rect;
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mesh = MeshBuilder::new(Rect::unit_die()).max_area(0.5).build()?;
/// let k = assemble_galerkin(&mesh, &GaussianKernel::new(1.0), QuadratureRule::Centroid);
/// assert_eq!(k.rows(), mesh.len());
/// assert_eq!(k.asymmetry()?, 0.0);
/// # Ok(())
/// # }
/// ```
pub fn assemble_galerkin<K: CovarianceKernel + ?Sized>(
    mesh: &Mesh,
    kernel: &K,
    rule: QuadratureRule,
) -> Matrix {
    // Infallible without a token: the only error path is cancellation,
    // which an untripped unlimited token cannot produce. An empty matrix
    // here would silently poison every downstream eigensolve, so the
    // invariant is guarded loudly instead of papered over.
    assemble_inner(mesh, kernel, rule, None)
        .expect("tokenless assembly cannot be cancelled")
}

/// Like [`assemble_galerkin`], but polling `token` once per assembled row
/// (each row costs `O(n)` kernel–quadrature evaluations, so polls stay off
/// the innermost loop) and returning a typed [`Cancelled`] — with
/// `completed` = rows assembled — when the budget trips.
///
/// # Errors
///
/// Only [`Cancelled`], when the token trips mid-assembly.
pub fn assemble_galerkin_with_token<K: CovarianceKernel + ?Sized>(
    mesh: &Mesh,
    kernel: &K,
    rule: QuadratureRule,
    token: &CancelToken,
) -> Result<Matrix, Cancelled> {
    assemble_inner(mesh, kernel, rule, Some(token))
}

/// Parallel [`assemble_galerkin`]: the upper triangle is sharded into
/// contiguous row blocks (balanced by entry count) and dispatched on a
/// [`Supervisor`] pool, so worker panics are isolated and retried. The
/// result is **bitwise identical** to the serial assembly for any
/// `threads` value. `threads == 0` resolves via
/// [`resolve_assembly_threads`]; small problems (below
/// [`PARALLEL_MIN_TRIANGLES`]) always run serially.
pub fn assemble_galerkin_parallel<K: CovarianceKernel + ?Sized>(
    mesh: &Mesh,
    kernel: &K,
    rule: QuadratureRule,
    threads: usize,
) -> Matrix {
    assemble_parallel_inner(mesh, kernel, rule, threads, None)
        .expect("tokenless assembly cannot be cancelled")
}

/// Parallel [`assemble_galerkin_with_token`]: workers poll the token once
/// per assembled row; on cancellation the typed [`Cancelled`] reports
/// `completed` = rows fully assembled across all shards (the salvageable
/// prefix of the work), and the obs counters `galerkin.kernel_evals` /
/// `galerkin.rows_salvaged` account only the work actually performed.
///
/// # Errors
///
/// Only [`Cancelled`], when the token trips mid-assembly.
pub fn assemble_galerkin_parallel_with_token<K: CovarianceKernel + ?Sized>(
    mesh: &Mesh,
    kernel: &K,
    rule: QuadratureRule,
    threads: usize,
    token: &CancelToken,
) -> Result<Matrix, Cancelled> {
    assemble_parallel_inner(mesh, kernel, rule, threads, Some(token))
}

/// Shared per-triangle quadrature data, precomputed once and read by all
/// shards.
enum RuleData<'a> {
    Centroid {
        centroids: &'a [Point2],
        areas: &'a [f64],
    },
    Nodes(Vec<Vec<(Point2, f64)>>),
}

impl RuleData<'_> {
    fn prepare<'a>(mesh: &'a Mesh, rule: QuadratureRule) -> RuleData<'a> {
        match rule {
            QuadratureRule::Centroid => RuleData::Centroid {
                centroids: mesh.centroids(),
                areas: mesh.areas(),
            },
            _ => RuleData::Nodes(
                (0..mesh.len()).map(|i| rule.nodes(&mesh.triangle(i))).collect(),
            ),
        }
    }

    /// One matrix entry `K_ij` — the single floating-point expression both
    /// the serial and every parallel configuration evaluate, in the same
    /// operation order, which is what makes the assembly bitwise
    /// deterministic across worker counts.
    #[inline]
    fn entry<K: CovarianceKernel + ?Sized>(&self, kernel: &K, i: usize, j: usize) -> f64 {
        match self {
            RuleData::Centroid { centroids, areas } => {
                kernel.eval(centroids[i], centroids[j]) * areas[i] * areas[j]
            }
            RuleData::Nodes(node_sets) => {
                let mut acc = 0.0;
                for &(xi, wi) in &node_sets[i] {
                    for &(yj, wj) in &node_sets[j] {
                        acc += wi * wj * kernel.eval(xi, yj);
                    }
                }
                acc
            }
        }
    }
}

fn assemble_inner<K: CovarianceKernel + ?Sized>(
    mesh: &Mesh,
    kernel: &K,
    rule: QuadratureRule,
    token: Option<&CancelToken>,
) -> Result<Matrix, Cancelled> {
    let _span = klest_obs::span("galerkin/assemble");
    let n = mesh.len();
    if klest_obs::enabled() {
        klest_obs::gauge_set("galerkin.matrix_dim", n as f64);
    }
    let data = RuleData::prepare(mesh, rule);
    let mut k = Matrix::zeros(n, n);
    let mut assembled = 0usize;
    let result = (|| -> Result<(), Cancelled> {
        for i in 0..n {
            if let Some(token) = token {
                token
                    .checkpoint("galerkin/assemble")
                    .map_err(|c| c.with_completed(i))?;
            }
            for j in i..n {
                let v = data.entry(kernel, i, j);
                k[(i, j)] = v;
                k[(j, i)] = v;
            }
            assembled = i + 1;
        }
        Ok(())
    })();
    record_assembly_counters(n, rule, assembled, result.is_err());
    result.map(|()| k)
}

fn assemble_parallel_inner<K: CovarianceKernel + ?Sized>(
    mesh: &Mesh,
    kernel: &K,
    rule: QuadratureRule,
    threads: usize,
    token: Option<&CancelToken>,
) -> Result<Matrix, Cancelled> {
    let n = mesh.len();
    let workers = resolve_assembly_threads(threads).min(n.max(1));
    if workers <= 1 || n < PARALLEL_MIN_TRIANGLES {
        return assemble_inner(mesh, kernel, rule, token);
    }
    let _span = klest_obs::span("galerkin/assemble");
    if klest_obs::enabled() {
        klest_obs::gauge_set("galerkin.matrix_dim", n as f64);
    }
    let data = RuleData::prepare(mesh, rule);
    let bounds = shard_row_bounds(n, workers);
    let pool_token = token.cloned().unwrap_or_else(CancelToken::unlimited);
    let supervisor = Supervisor::new(pool_token);
    let data_ref = &data;
    // Each shard returns an owned, packed copy of its upper-triangle rows
    // (row i contributes columns i..n). Owned results keep retries safe:
    // a panicking attempt cannot leave half-written matrix rows behind.
    let run = supervisor.run(bounds.len(), |shard, tok| -> Result<Vec<f64>, Cancelled> {
        let (r0, r1) = bounds[shard];
        let mut packed = Vec::with_capacity(tri_entries(n, r0, r1 - r0) as usize);
        for i in r0..r1 {
            tok.checkpoint("galerkin/assemble")
                .map_err(|c| c.with_completed(i - r0))?;
            for j in i..n {
                packed.push(data_ref.entry(kernel, i, j));
            }
        }
        Ok(packed)
    });

    // Scatter the owned blocks into the matrix (single-threaded, so the
    // symmetric mirror writes into other shards' row ranges are safe).
    let mut k = Matrix::zeros(n, n);
    let mut assembled = 0usize;
    let mut cancelled: Option<Cancelled> = None;
    let mut faulted: Vec<usize> = Vec::new();
    for (shard, result) in run.results.iter().enumerate() {
        let (r0, r1) = bounds[shard];
        match result {
            Some(Ok(packed)) => {
                let mut at = 0usize;
                for i in r0..r1 {
                    for j in i..n {
                        let v = packed[at];
                        at += 1;
                        k[(i, j)] = v;
                        k[(j, i)] = v;
                    }
                }
                assembled += r1 - r0;
            }
            Some(Err(c)) => {
                // Rows this shard finished before its trip were computed
                // but not returned; count them as performed work.
                assembled += c.completed;
                if cancelled.is_none() {
                    cancelled = Some(c.clone());
                }
            }
            None => faulted.push(shard),
        }
    }
    if let Some(c) = cancelled {
        record_assembly_counters(n, rule, assembled, true);
        return Err(c.with_completed(assembled));
    }
    // A shard whose every attempt panicked (a poisoned kernel, say) is
    // re-assembled serially here so a deterministic panic surfaces on the
    // caller's thread exactly as it would on the serial path, while
    // transient faults get one more chance.
    for shard in faulted {
        let (r0, r1) = bounds[shard];
        for i in r0..r1 {
            for j in i..n {
                let v = data.entry(kernel, i, j);
                k[(i, j)] = v;
                k[(j, i)] = v;
            }
        }
        assembled += r1 - r0;
    }
    record_assembly_counters(n, rule, assembled, false);
    Ok(k)
}

/// The Galerkin matrix as an on-the-fly [`LinearOperator`]: `apply`
/// evaluates kernel–quadrature entries per matrix–vector product instead
/// of ever materializing the O(n²) matrix, which is what lets the
/// matrix-free Lanczos path
/// ([`PartialEigen::lanczos_op`](klest_linalg::PartialEigen::lanczos_op))
/// run KLEs on 10⁵-element meshes in O(n·k) memory.
///
/// **Bitwise contract**: `y[i]` is the exact floating-point expression
/// the dense path evaluates — entries come from the same
/// mirrored-upper-triangle [`RuleData::entry`] calls and accumulate in
/// the same left-to-right order as `vecops::dot(dense_row_i, x)` — so a
/// matrix-free solve and a dense solve walk identical Krylov spaces, for
/// **any worker count** (each `y[i]` is produced by exactly one worker
/// running that one expression; shard boundaries reuse the
/// entry-balanced [`shard_row_bounds`] of the parallel assembly).
///
/// Cost: one apply is O(n²) kernel evaluations (the full square, not the
/// half the one-shot assembly pays — the price of never storing the
/// mirror), so matrix-free wins when `iters × 2 < n/8` … in practice
/// always, since the dense path cannot even allocate at n = 10⁵.
pub struct GalerkinOperator<'a, K: ?Sized> {
    data: RuleData<'a>,
    kernel: &'a K,
    n: usize,
    rule: QuadratureRule,
    threads: usize,
    token: Option<CancelToken>,
}

impl<'a, K: CovarianceKernel + ?Sized> GalerkinOperator<'a, K> {
    /// Builds the operator over `mesh` × `kernel` with the given
    /// quadrature rule. `threads` follows the assembly convention:
    /// `0` = auto via [`resolve_assembly_threads`], `1` = serial, and
    /// meshes below [`PARALLEL_MIN_TRIANGLES`] always run serially.
    pub fn new(mesh: &'a Mesh, kernel: &'a K, rule: QuadratureRule, threads: usize) -> Self {
        GalerkinOperator {
            data: RuleData::prepare(mesh, rule),
            kernel,
            n: mesh.len(),
            rule,
            threads,
            token: None,
        }
    }

    /// Attaches a cooperative [`CancelToken`], polled once per output row
    /// (stage `"galerkin/matvec"`). On a trip, `apply` returns
    /// [`LinalgError::Cancelled`] with `completed` = rows produced.
    #[must_use]
    pub fn with_token(mut self, token: &CancelToken) -> Self {
        self.token = Some(token.clone());
        self
    }

    /// The quadrature rule the operator evaluates entries with.
    pub fn rule(&self) -> QuadratureRule {
        self.rule
    }

    /// One output element `y[i] = Σ_j K_ij x[j]` — the canonical
    /// expression every configuration (serial, any shard count, faulted
    /// re-run) evaluates for row `i`, matching the dense
    /// `vecops::dot(row_i, x)` bitwise: same mirrored entries, same
    /// left-to-right accumulation from `0.0`.
    #[inline]
    fn row_value(&self, i: usize, x: &[f64]) -> f64 {
        let mut acc = 0.0;
        for (j, &xj) in x.iter().enumerate() {
            let e = if i <= j {
                self.data.entry(self.kernel, i, j)
            } else {
                self.data.entry(self.kernel, j, i)
            };
            acc += e * xj;
        }
        acc
    }

    fn apply_serial(&self, x: &[f64], y: &mut [f64]) -> Result<(), Cancelled> {
        for (i, out) in y.iter_mut().enumerate() {
            if let Some(token) = &self.token {
                token
                    .checkpoint("galerkin/matvec")
                    .map_err(|c| c.with_completed(i))?;
            }
            *out = self.row_value(i, x);
        }
        Ok(())
    }

    fn apply_parallel(&self, x: &[f64], y: &mut [f64], workers: usize) -> Result<(), Cancelled> {
        let n = self.n;
        let bounds = shard_row_bounds(n, workers);
        let pool_token = self
            .token
            .clone()
            .unwrap_or_else(CancelToken::unlimited);
        let supervisor = Supervisor::new(pool_token);
        // Owned per-shard row blocks, scattered single-threaded below —
        // the same retry-safe shape as the parallel assembly.
        let run = supervisor.run(bounds.len(), |shard, tok| -> Result<Vec<f64>, Cancelled> {
            let (r0, r1) = bounds[shard];
            let mut block = Vec::with_capacity(r1 - r0);
            for i in r0..r1 {
                tok.checkpoint("galerkin/matvec")
                    .map_err(|c| c.with_completed(i - r0))?;
                block.push(self.row_value(i, x));
            }
            Ok(block)
        });
        let mut produced = 0usize;
        let mut cancelled: Option<Cancelled> = None;
        let mut faulted: Vec<usize> = Vec::new();
        for (shard, result) in run.results.iter().enumerate() {
            let (r0, r1) = bounds[shard];
            match result {
                Some(Ok(block)) => {
                    y[r0..r1].copy_from_slice(block);
                    produced += r1 - r0;
                }
                Some(Err(c)) => {
                    produced += c.completed;
                    if cancelled.is_none() {
                        cancelled = Some(c.clone());
                    }
                }
                None => faulted.push(shard),
            }
        }
        if let Some(c) = cancelled {
            return Err(c.with_completed(produced));
        }
        // Shards whose every attempt panicked re-run serially on the
        // caller's thread, mirroring the parallel-assembly contract: a
        // deterministic panic surfaces exactly as on the serial path.
        for shard in faulted {
            let (r0, r1) = bounds[shard];
            for (i, out) in y[r0..r1].iter_mut().enumerate() {
                *out = self.row_value(r0 + i, x);
            }
        }
        Ok(())
    }
}

impl<K: CovarianceKernel + ?Sized> LinearOperator for GalerkinOperator<'_, K> {
    fn dim(&self) -> usize {
        self.n
    }

    fn apply(&self, x: &[f64], y: &mut [f64]) -> Result<(), LinalgError> {
        if x.len() != self.n || y.len() != self.n {
            return Err(LinalgError::DimensionMismatch {
                op: "galerkin operator apply",
                left: (self.n, self.n),
                right: (x.len(), y.len()),
            });
        }
        let workers = resolve_assembly_threads(self.threads).min(self.n.max(1));
        let result = if workers <= 1 || self.n < PARALLEL_MIN_TRIANGLES {
            self.apply_serial(x, y)
        } else {
            self.apply_parallel(x, y, workers)
        };
        if klest_obs::enabled() {
            klest_obs::counter_add("galerkin.operator_matvecs", 1);
            let nodes = self.rule.node_count() as u64;
            let rows = match &result {
                Ok(()) => self.n,
                Err(c) => c.completed,
            } as u64;
            // A matvec evaluates full rows (n entries each), not the
            // assembly's half triangle.
            klest_obs::counter_add("galerkin.kernel_evals", rows * self.n as u64 * nodes * nodes);
        }
        result.map_err(LinalgError::from)
    }
}

/// Books the work actually performed: `galerkin.kernel_evals` counts the
/// kernel evaluations of the rows genuinely assembled (not the planned
/// total — a cancelled assembly no longer over-reports), and a cancelled
/// run additionally records the salvageable prefix as
/// `galerkin.rows_salvaged`.
fn record_assembly_counters(n: usize, rule: QuadratureRule, rows: usize, cancelled: bool) {
    if !klest_obs::enabled() {
        return;
    }
    let nodes = rule.node_count() as u64;
    klest_obs::counter_add("galerkin.kernel_evals", tri_entries(n, 0, rows) * nodes * nodes);
    if cancelled {
        klest_obs::counter_add("galerkin.rows_salvaged", rows as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use klest_geometry::Rect;
    use klest_kernels::GaussianKernel;
    use klest_mesh::MeshBuilder;

    fn mesh() -> Mesh {
        MeshBuilder::new(Rect::unit_die())
            .max_area(0.2)
            .min_angle_degrees(25.0)
            .build()
            .unwrap()
    }

    fn big_mesh() -> Mesh {
        // Above PARALLEL_MIN_TRIANGLES so the parallel path actually runs.
        MeshBuilder::new(Rect::unit_die())
            .max_area(0.02)
            .min_angle_degrees(25.0)
            .build()
            .unwrap()
    }

    #[test]
    fn centroid_rule_matches_closed_form() {
        let m = mesh();
        let kern = GaussianKernel::new(1.5);
        let k = assemble_galerkin(&m, &kern, QuadratureRule::Centroid);
        for i in 0..m.len() {
            for j in 0..m.len() {
                let expected =
                    kern.eval(m.centroids()[i], m.centroids()[j]) * m.areas()[i] * m.areas()[j];
                assert!((k[(i, j)] - expected).abs() < 1e-15);
            }
        }
    }

    #[test]
    fn assembly_is_symmetric_for_all_rules() {
        let m = mesh();
        let kern = GaussianKernel::new(1.0);
        for rule in [
            QuadratureRule::Centroid,
            QuadratureRule::ThreePoint,
            QuadratureRule::SevenPoint,
        ] {
            let k = assemble_galerkin(&m, &kern, rule);
            assert_eq!(k.asymmetry().unwrap(), 0.0, "{rule:?}");
        }
    }

    #[test]
    fn diagonal_dominated_by_self_correlation() {
        // K(x, x) = 1 is the kernel maximum, so the centroid-rule diagonal
        // equals a_i² exactly.
        let m = mesh();
        let k = assemble_galerkin(&m, &GaussianKernel::new(1.0), QuadratureRule::Centroid);
        for i in 0..m.len() {
            let a = m.areas()[i];
            assert!((k[(i, i)] - a * a).abs() < 1e-15);
        }
    }

    #[test]
    fn higher_order_rule_converges_to_same_values() {
        // On a fixed mesh, 3-point and 7-point assemblies should agree
        // with each other more closely than with the centroid rule
        // (they're both exact to higher degree).
        let m = mesh();
        let kern = GaussianKernel::new(2.0);
        let k1 = assemble_galerkin(&m, &kern, QuadratureRule::Centroid);
        let k3 = assemble_galerkin(&m, &kern, QuadratureRule::ThreePoint);
        let k7 = assemble_galerkin(&m, &kern, QuadratureRule::SevenPoint);
        let d13 = k1.sub(&k3).unwrap().max_abs();
        let d37 = k3.sub(&k7).unwrap().max_abs();
        assert!(d37 < d13, "3pt-7pt gap {d37} should be below centroid gap {d13}");
    }

    #[test]
    fn total_mass_approximates_double_integral() {
        // Σ_ik K_ik ≈ ∬∬ K over D × D. For the Gaussian kernel this is a
        // smooth positive quantity; centroid vs 7-point must agree within
        // the linear-convergence error budget.
        let m = mesh();
        let kern = GaussianKernel::new(1.0);
        let s1: f64 = assemble_galerkin(&m, &kern, QuadratureRule::Centroid)
            .as_slice()
            .iter()
            .sum();
        let s7: f64 = assemble_galerkin(&m, &kern, QuadratureRule::SevenPoint)
            .as_slice()
            .iter()
            .sum();
        // The test mesh is deliberately coarse (max_area 0.2, h ≈ 0.9),
        // so the centroid rule's linear-in-h error is a few percent.
        assert!((s1 - s7).abs() / s7.abs() < 0.05, "{s1} vs {s7}");
    }

    #[test]
    fn shard_bounds_partition_rows_and_balance_entries() {
        for (n, shards) in [(5, 2), (128, 4), (200, 7), (200, 1), (3, 8)] {
            let bounds = shard_row_bounds(n, shards);
            assert_eq!(bounds[0].0, 0);
            assert_eq!(bounds[bounds.len() - 1].1, n);
            for w in bounds.windows(2) {
                assert_eq!(w[0].1, w[1].0, "contiguous");
            }
            let total: u64 = bounds.iter().map(|&(a, b)| tri_entries(n, a, b - a)).sum();
            assert_eq!(total, tri_entries(n, 0, n));
        }
        // Balance sanity on a real size: no shard more than ~2x the mean.
        let n = 500;
        let bounds = shard_row_bounds(n, 8);
        let mean = tri_entries(n, 0, n) / 8;
        for &(a, b) in &bounds {
            assert!(tri_entries(n, a, b - a) <= 2 * mean);
        }
    }

    #[test]
    fn tri_entries_closed_form() {
        assert_eq!(tri_entries(4, 0, 4), 10);
        assert_eq!(tri_entries(4, 0, 1), 4);
        assert_eq!(tri_entries(4, 3, 1), 1);
        assert_eq!(tri_entries(4, 2, 99), 3, "count clamps to available rows");
        assert_eq!(tri_entries(0, 0, 0), 0);
    }

    #[test]
    fn parallel_assembly_is_bitwise_identical_to_serial() {
        let m = big_mesh();
        assert!(m.len() >= PARALLEL_MIN_TRIANGLES, "mesh too small: {}", m.len());
        let kern = GaussianKernel::new(1.5);
        for rule in [QuadratureRule::Centroid, QuadratureRule::ThreePoint] {
            let serial = assemble_galerkin(&m, &kern, rule);
            for threads in [2, 3, 8] {
                let parallel = assemble_galerkin_parallel(&m, &kern, rule, threads);
                assert!(
                    serial.as_slice() == parallel.as_slice(),
                    "{rule:?} with {threads} threads drifted from serial"
                );
            }
        }
    }

    #[test]
    fn parallel_below_threshold_falls_back_to_serial() {
        let m = mesh();
        assert!(m.len() < PARALLEL_MIN_TRIANGLES);
        let kern = GaussianKernel::new(1.0);
        let serial = assemble_galerkin(&m, &kern, QuadratureRule::Centroid);
        let parallel = assemble_galerkin_parallel(&m, &kern, QuadratureRule::Centroid, 8);
        assert!(serial.as_slice() == parallel.as_slice());
    }

    #[test]
    fn parallel_cancellation_is_typed_with_row_accounting() {
        let m = big_mesh();
        let kern = GaussianKernel::new(1.0);
        let token = CancelToken::unlimited();
        token.cancel();
        match assemble_galerkin_parallel_with_token(
            &m,
            &kern,
            QuadratureRule::Centroid,
            4,
            &token,
        ) {
            Err(c) => {
                assert_eq!(c.stage, "galerkin/assemble");
                assert_eq!(c.completed, 0, "pre-tripped token assembles nothing");
            }
            Ok(_) => panic!("expected cancellation"),
        }
    }

    #[test]
    fn resolve_threads_prefers_explicit_request() {
        assert_eq!(resolve_assembly_threads(3), 3);
        assert_eq!(resolve_assembly_threads(1), 1);
        // 0 = auto; without KLEST_THREADS in the test environment this is
        // serial. (Env-var parsing itself is covered by the CLI tests to
        // avoid racing set_var across parallel test threads.)
    }
}
