//! Galerkin assembly of the covariance operator (paper eq. 12/18/21).

use crate::QuadratureRule;
use klest_kernels::CovarianceKernel;
use klest_linalg::Matrix;
use klest_mesh::Mesh;
use klest_runtime::{CancelToken, Cancelled};

/// Assembles the Galerkin matrix
/// `K_ik = ∫_{Δ_k} ∫_{Δ_i} K(x, y) dx dy`
/// over the piecewise-constant triangle basis.
///
/// With the paper's centroid rule this is exactly eq. (21):
/// `K_ik ≈ K(x_{Δ_i}, x_{Δ_k}) a_i a_k`. Higher-order rules tensor their
/// nodes across the two triangles. Symmetry is enforced by assembling the
/// upper triangle and mirroring, which also halves the kernel
/// evaluations.
///
/// ```
/// use klest_core::{assemble_galerkin, QuadratureRule};
/// use klest_kernels::GaussianKernel;
/// use klest_mesh::MeshBuilder;
/// use klest_geometry::Rect;
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mesh = MeshBuilder::new(Rect::unit_die()).max_area(0.5).build()?;
/// let k = assemble_galerkin(&mesh, &GaussianKernel::new(1.0), QuadratureRule::Centroid);
/// assert_eq!(k.rows(), mesh.len());
/// assert_eq!(k.asymmetry()?, 0.0);
/// # Ok(())
/// # }
/// ```
pub fn assemble_galerkin<K: CovarianceKernel + ?Sized>(
    mesh: &Mesh,
    kernel: &K,
    rule: QuadratureRule,
) -> Matrix {
    // Infallible without a token: the only error path is cancellation.
    match assemble_inner(mesh, kernel, rule, None) {
        Ok(k) => k,
        Err(_) => Matrix::zeros(0, 0), // unreachable: no token, no trip
    }
}

/// Like [`assemble_galerkin`], but polling `token` once per assembled row
/// (each row costs `O(n)` kernel–quadrature evaluations, so polls stay off
/// the innermost loop) and returning a typed [`Cancelled`] — with
/// `completed` = rows assembled — when the budget trips.
///
/// # Errors
///
/// Only [`Cancelled`], when the token trips mid-assembly.
pub fn assemble_galerkin_with_token<K: CovarianceKernel + ?Sized>(
    mesh: &Mesh,
    kernel: &K,
    rule: QuadratureRule,
    token: &CancelToken,
) -> Result<Matrix, Cancelled> {
    assemble_inner(mesh, kernel, rule, Some(token))
}

fn assemble_inner<K: CovarianceKernel + ?Sized>(
    mesh: &Mesh,
    kernel: &K,
    rule: QuadratureRule,
    token: Option<&CancelToken>,
) -> Result<Matrix, Cancelled> {
    let _span = klest_obs::span("galerkin/assemble");
    let n = mesh.len();
    if klest_obs::enabled() {
        klest_obs::gauge_set("galerkin.matrix_dim", n as f64);
        // Upper triangle incl. diagonal, k quadrature nodes per triangle →
        // k² kernel evaluations per matrix entry.
        let pairs = (n * (n + 1) / 2) as u64;
        let nodes = rule.node_count() as u64;
        klest_obs::counter_add("galerkin.kernel_evals", pairs * nodes * nodes);
    }
    let poll = |i: usize| -> Result<(), Cancelled> {
        if let Some(token) = token {
            token
                .checkpoint("galerkin/assemble")
                .map_err(|c| c.with_completed(i))?;
        }
        Ok(())
    };
    let mut k = Matrix::zeros(n, n);
    match rule {
        QuadratureRule::Centroid => {
            let centroids = mesh.centroids();
            let areas = mesh.areas();
            for i in 0..n {
                poll(i)?;
                for j in i..n {
                    let v = kernel.eval(centroids[i], centroids[j]) * areas[i] * areas[j];
                    k[(i, j)] = v;
                    k[(j, i)] = v;
                }
            }
        }
        _ => {
            // Precompute the per-triangle node sets once.
            let node_sets: Vec<Vec<(klest_geometry::Point2, f64)>> =
                (0..n).map(|i| rule.nodes(&mesh.triangle(i))).collect();
            for i in 0..n {
                poll(i)?;
                for j in i..n {
                    let mut acc = 0.0;
                    for &(xi, wi) in &node_sets[i] {
                        for &(yj, wj) in &node_sets[j] {
                            acc += wi * wj * kernel.eval(xi, yj);
                        }
                    }
                    k[(i, j)] = acc;
                    k[(j, i)] = acc;
                }
            }
        }
    }
    Ok(k)
}

#[cfg(test)]
mod tests {
    use super::*;
    use klest_geometry::Rect;
    use klest_kernels::GaussianKernel;
    use klest_mesh::MeshBuilder;

    fn mesh() -> Mesh {
        MeshBuilder::new(Rect::unit_die())
            .max_area(0.2)
            .min_angle_degrees(25.0)
            .build()
            .unwrap()
    }

    #[test]
    fn centroid_rule_matches_closed_form() {
        let m = mesh();
        let kern = GaussianKernel::new(1.5);
        let k = assemble_galerkin(&m, &kern, QuadratureRule::Centroid);
        for i in 0..m.len() {
            for j in 0..m.len() {
                let expected =
                    kern.eval(m.centroids()[i], m.centroids()[j]) * m.areas()[i] * m.areas()[j];
                assert!((k[(i, j)] - expected).abs() < 1e-15);
            }
        }
    }

    #[test]
    fn assembly_is_symmetric_for_all_rules() {
        let m = mesh();
        let kern = GaussianKernel::new(1.0);
        for rule in [
            QuadratureRule::Centroid,
            QuadratureRule::ThreePoint,
            QuadratureRule::SevenPoint,
        ] {
            let k = assemble_galerkin(&m, &kern, rule);
            assert_eq!(k.asymmetry().unwrap(), 0.0, "{rule:?}");
        }
    }

    #[test]
    fn diagonal_dominated_by_self_correlation() {
        // K(x, x) = 1 is the kernel maximum, so the centroid-rule diagonal
        // equals a_i² exactly.
        let m = mesh();
        let k = assemble_galerkin(&m, &GaussianKernel::new(1.0), QuadratureRule::Centroid);
        for i in 0..m.len() {
            let a = m.areas()[i];
            assert!((k[(i, i)] - a * a).abs() < 1e-15);
        }
    }

    #[test]
    fn higher_order_rule_converges_to_same_values() {
        // On a fixed mesh, 3-point and 7-point assemblies should agree
        // with each other more closely than with the centroid rule
        // (they're both exact to higher degree).
        let m = mesh();
        let kern = GaussianKernel::new(2.0);
        let k1 = assemble_galerkin(&m, &kern, QuadratureRule::Centroid);
        let k3 = assemble_galerkin(&m, &kern, QuadratureRule::ThreePoint);
        let k7 = assemble_galerkin(&m, &kern, QuadratureRule::SevenPoint);
        let d13 = k1.sub(&k3).unwrap().max_abs();
        let d37 = k3.sub(&k7).unwrap().max_abs();
        assert!(d37 < d13, "3pt-7pt gap {d37} should be below centroid gap {d13}");
    }

    #[test]
    fn total_mass_approximates_double_integral() {
        // Σ_ik K_ik ≈ ∬∬ K over D × D. For the Gaussian kernel this is a
        // smooth positive quantity; centroid vs 7-point must agree within
        // the linear-convergence error budget.
        let m = mesh();
        let kern = GaussianKernel::new(1.0);
        let s1: f64 = assemble_galerkin(&m, &kern, QuadratureRule::Centroid)
            .as_slice()
            .iter()
            .sum();
        let s7: f64 = assemble_galerkin(&m, &kern, QuadratureRule::SevenPoint)
            .as_slice()
            .iter()
            .sum();
        // The test mesh is deliberately coarse (max_area 0.2, h ≈ 0.9),
        // so the centroid rule's linear-in-h error is a few percent.
        assert!((s1 - s7).abs() / s7.abs() < 0.05, "{s1} vs {s7}");
    }
}
