//! The Galerkin KLE solver (paper Secs. 3.2 and 4).

use crate::{GalerkinOperator, KleError, QuadratureRule, TruncationCriterion};
use klest_geometry::Point2;
use klest_kernels::CovarianceKernel;
use klest_linalg::{DiagonalGep, LinearOperator, Matrix, PartialEigen, ScaledOperator};
use klest_mesh::{Mesh, TriangleLocator};
use klest_runtime::CancelToken;

/// Which eigensolver backs the KLE.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EigenSolver {
    /// Full Householder + QL decomposition: all `n` eigenvalues, O(n³).
    #[default]
    Full,
    /// Lanczos iteration for the leading `max_eigenpairs` only — the
    /// paper's actual situation ("we have computed only the first 200",
    /// via Matlab's `eigs`). O(m n² ) for `m` retained pairs; the
    /// truncation criterion then uses its `λ_m (n - m)` bound for the
    /// unseen tail.
    Lanczos,
    /// Matrix-free thick-restart Lanczos over a [`GalerkinOperator`]:
    /// kernel entries are evaluated per matrix–vector product and the
    /// O(n²) Galerkin matrix is **never assembled**, so peak memory is
    /// O(n·k) and 10⁵-element meshes fit where the dense path cannot
    /// even allocate. Spectra match the dense solvers within solver
    /// tolerance (the operator's matvec is bitwise identical to the
    /// dense one). `k ≥ n` falls back to the dense full solve — at that
    /// point the "partial" problem is the whole spectrum and dense is
    /// both exact and cheaper.
    MatrixFree {
        /// Number of leading eigenpairs to compute.
        k: usize,
        /// Budget of operator applications across all restart cycles;
        /// exhausting it yields a typed [`KleError::Linalg`]
        /// (`NoConvergence`) instead of looping.
        max_iters: usize,
    },
}

/// Options for [`GalerkinKle::compute`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KleOptions {
    /// Quadrature rule for the Galerkin integrals (paper: centroid).
    pub quadrature: QuadratureRule,
    /// How many leading eigenpairs to retain (paper: 200, from which the
    /// truncation criterion then picks r = 25). With [`EigenSolver::Full`]
    /// all `n` eigen*values* are kept for the tail bound and this caps
    /// only the stored eigen*vectors*; with [`EigenSolver::Lanczos`] this
    /// is the number of pairs computed at all.
    pub max_eigenpairs: usize,
    /// Eigensolver backend.
    pub solver: EigenSolver,
    /// Worker threads for Galerkin assembly. `0` (the default) means
    /// "auto": honour the `KLEST_THREADS` environment variable, else run
    /// serially — so existing call sites keep the historical serial
    /// behaviour (including checkpoint ordering) unless parallelism is
    /// requested. The assembled matrix is bitwise identical for every
    /// value (see [`crate::assemble_galerkin_parallel`]).
    pub assembly_threads: usize,
}

impl Default for KleOptions {
    fn default() -> Self {
        KleOptions {
            quadrature: QuadratureRule::Centroid,
            max_eigenpairs: 200,
            solver: EigenSolver::Full,
            assembly_threads: 0,
        }
    }
}

/// The Karhunen-Loève expansion of a random field, computed with the
/// paper's Galerkin method.
///
/// Eigenfunctions are piecewise constant over the mesh triangles:
/// `f_j(x) = d_{j,i}` for `x ∈ Δ_i` (eq. 7/17), normalized so
/// `∫_D f_j² = Σ_i d_{j,i}² a_i = 1`.
#[derive(Debug, Clone)]
pub struct GalerkinKle {
    /// Computed eigenvalues, descending — all `n` for the full solver,
    /// the leading `m` for Lanczos.
    eigenvalues: Vec<f64>,
    /// `n x m` matrix of retained eigenvectors (`m = min(n, max_eigenpairs)`).
    d: Matrix,
    /// Triangle areas (`Φ` diagonal).
    areas: Vec<f64>,
    /// Triangle centroids, kept for reconstruction queries.
    centroids: Vec<Point2>,
    /// Exact operator trace `Σ_j λ_j = |D|` (total die area), available
    /// without the full spectrum.
    trace: f64,
}

impl GalerkinKle {
    /// Assembles the Galerkin system for `kernel` on `mesh` and solves the
    /// eigenproblem.
    ///
    /// # Errors
    ///
    /// Propagates [`KleError::Linalg`] from the eigensolver.
    pub fn compute<K: CovarianceKernel + ?Sized>(
        mesh: &Mesh,
        kernel: &K,
        options: KleOptions,
    ) -> Result<Self, KleError> {
        Self::compute_inner(mesh, kernel, options, None)
    }

    /// Like [`compute`](GalerkinKle::compute), but polling `token` through
    /// both stages — once per assembled Galerkin row and once per
    /// eigensolver sweep — so a deadline can cancel a long KLE build.
    ///
    /// # Errors
    ///
    /// Everything [`compute`](GalerkinKle::compute) reports, plus
    /// [`KleError::Cancelled`] when the token trips.
    pub fn compute_with_token<K: CovarianceKernel + ?Sized>(
        mesh: &Mesh,
        kernel: &K,
        options: KleOptions,
        token: &CancelToken,
    ) -> Result<Self, KleError> {
        Self::compute_inner(mesh, kernel, options, Some(token))
    }

    fn compute_inner<K: CovarianceKernel + ?Sized>(
        mesh: &Mesh,
        kernel: &K,
        options: KleOptions,
        token: Option<&CancelToken>,
    ) -> Result<Self, KleError> {
        if let EigenSolver::MatrixFree { k, max_iters } = options.solver {
            if k < mesh.len() {
                return Self::compute_matrix_free(mesh, kernel, options, k, max_iters, token);
            }
            // k ≥ n: fall through to assembly — from_matrix_inner
            // normalizes this to the dense full solve.
        }
        let k = match token {
            Some(token) => crate::assemble_galerkin_parallel_with_token(
                mesh,
                kernel,
                options.quadrature,
                options.assembly_threads,
                token,
            )?,
            None => crate::assemble_galerkin_parallel_with_token(
                mesh,
                kernel,
                options.quadrature,
                options.assembly_threads,
                &CancelToken::unlimited(),
            )?,
        };
        Self::from_matrix_inner(k, mesh, options, token)
    }

    /// Solves the eigenproblem for a pre-assembled Galerkin matrix
    /// (exposed so benches can time assembly and solve separately).
    ///
    /// # Errors
    ///
    /// Propagates [`KleError::Linalg`].
    pub fn from_matrix(k: Matrix, mesh: &Mesh, options: KleOptions) -> Result<Self, KleError> {
        Self::from_matrix_inner(k, mesh, options, None)
    }

    /// Like [`from_matrix`](GalerkinKle::from_matrix), but polling `token`
    /// inside the eigensolver; additionally reports [`KleError::Cancelled`]
    /// when the token trips mid-solve.
    pub fn from_matrix_with_token(
        k: Matrix,
        mesh: &Mesh,
        options: KleOptions,
        token: &CancelToken,
    ) -> Result<Self, KleError> {
        Self::from_matrix_inner(k, mesh, options, Some(token))
    }

    /// The matrix-free KLE: builds a [`GalerkinOperator`] over the mesh
    /// and runs thick-restart Lanczos on its Φ^{-1/2}·K·Φ^{-1/2}
    /// similarity — no stage on this path allocates anything O(n²).
    fn compute_matrix_free<K: CovarianceKernel + ?Sized>(
        mesh: &Mesh,
        kernel: &K,
        options: KleOptions,
        modes: usize,
        max_iters: usize,
        token: Option<&CancelToken>,
    ) -> Result<Self, KleError> {
        let _span = klest_obs::span("galerkin/eigensolve");
        let n = mesh.len();
        if klest_obs::enabled() {
            klest_obs::gauge_set("galerkin.matrix_dim", n as f64);
        }
        let mut op =
            GalerkinOperator::new(mesh, kernel, options.quadrature, options.assembly_threads);
        if let Some(token) = token {
            token
                .checkpoint("eigen/matrix-free")
                .map_err(KleError::Cancelled)?;
            op = op.with_token(token);
        }
        let (eigenvalues, d) = Self::matrix_free_pairs(op, mesh.areas(), modes, max_iters)?;
        klest_obs::gauge_set("kle.eigenpairs_retained", d.cols() as f64);
        Ok(GalerkinKle {
            eigenvalues,
            d,
            areas: mesh.areas().to_vec(),
            centroids: mesh.centroids().to_vec(),
            trace: mesh.total_area(),
        })
    }

    /// Shared matrix-free eigensolve core: wraps `op` (the raw Galerkin
    /// action) in the Φ^{-1/2} similarity, runs the operator Lanczos
    /// engine and maps eigenvectors back to the Φ-orthonormal `d` basis,
    /// exactly mirroring the dense Lanczos arm's arithmetic.
    fn matrix_free_pairs<Op: LinearOperator>(
        op: Op,
        areas: &[f64],
        modes: usize,
        max_iters: usize,
    ) -> Result<(Vec<f64>, Matrix), KleError> {
        let n = areas.len();
        let inv_sqrt: Vec<f64> = areas.iter().map(|a| 1.0 / a.sqrt()).collect();
        let scaled = ScaledOperator::new(op, inv_sqrt)?;
        let partial = PartialEigen::lanczos_op(&scaled, modes, max_iters)?;
        let inv_sqrt = scaled.scale();
        let got = partial.len();
        let mut d = Matrix::zeros(n, got);
        for j in 0..got {
            for i in 0..n {
                d[(i, j)] = partial.eigenvectors()[(i, j)] * inv_sqrt[i];
            }
        }
        Ok((partial.eigenvalues().to_vec(), d))
    }

    fn from_matrix_inner(
        k: Matrix,
        mesh: &Mesh,
        options: KleOptions,
        token: Option<&CancelToken>,
    ) -> Result<Self, KleError> {
        let _span = klest_obs::span("galerkin/eigensolve");
        let n = mesh.len();
        let m = options.max_eigenpairs.min(n).max(1);
        // k ≥ n makes the "partial" matrix-free problem the full
        // spectrum: the dense solve is exact and cheaper, so normalize.
        let solver = match options.solver {
            EigenSolver::MatrixFree { k: modes, .. } if modes >= n => EigenSolver::Full,
            s => s,
        };
        let (eigenvalues, d) = match solver {
            EigenSolver::Full => {
                let gep = match token {
                    Some(token) => DiagonalGep::solve_with_token(&k, mesh.areas(), token)?,
                    None => DiagonalGep::solve(&k, mesh.areas())?,
                };
                let mut d = Matrix::zeros(n, m);
                for j in 0..m {
                    for i in 0..n {
                        d[(i, j)] = gep.eigenvectors()[(i, j)];
                    }
                }
                (gep.eigenvalues().to_vec(), d)
            }
            EigenSolver::Lanczos => {
                // Symmetric similarity A = Φ^{-1/2} K Φ^{-1/2}, partial
                // solve, then map back d = Φ^{-1/2} u (Φ-orthonormality of
                // d follows from ‖u‖ = 1, as in DiagonalGep). The Lanczos
                // engine itself is not token-aware; one poll before the
                // solve still honours budgets already exhausted upstream.
                if let Some(token) = token {
                    token
                        .checkpoint("eigen/lanczos")
                        .map_err(KleError::Cancelled)?;
                }
                let inv_sqrt: Vec<f64> = mesh.areas().iter().map(|a| 1.0 / a.sqrt()).collect();
                let a = Matrix::from_fn(n, n, |i, j| k[(i, j)] * inv_sqrt[i] * inv_sqrt[j]);
                let krylov = (2 * m + 10).min(n);
                let partial = PartialEigen::lanczos(&a, m, krylov)?;
                let got = partial.len();
                let mut d = Matrix::zeros(n, got);
                for j in 0..got {
                    for i in 0..n {
                        d[(i, j)] = partial.eigenvectors()[(i, j)] * inv_sqrt[i];
                    }
                }
                (partial.eigenvalues().to_vec(), d)
            }
            EigenSolver::MatrixFree { k: modes, max_iters } => {
                // Pre-assembled matrix handed to the matrix-free engine:
                // the dense adapter's matvec is bitwise identical to the
                // on-the-fly GalerkinOperator, so this arm produces the
                // exact bits compute() does on the same mesh — useful
                // for benches timing assembly and solve separately.
                if let Some(token) = token {
                    token
                        .checkpoint("eigen/matrix-free")
                        .map_err(KleError::Cancelled)?;
                }
                Self::matrix_free_pairs(&k, mesh.areas(), modes, max_iters)?
            }
        };
        klest_obs::gauge_set("kle.eigenpairs_retained", d.cols() as f64);
        Ok(GalerkinKle {
            eigenvalues,
            d,
            areas: mesh.areas().to_vec(),
            centroids: mesh.centroids().to_vec(),
            trace: mesh.total_area(),
        })
    }

    /// Reconstructs a [`GalerkinKle`] from its raw parts (pipeline cache
    /// deserialisation). The parts must originate from a prior solve —
    /// this performs no validation beyond shape consistency.
    pub(crate) fn from_raw(
        eigenvalues: Vec<f64>,
        d: Matrix,
        areas: Vec<f64>,
        centroids: Vec<Point2>,
        trace: f64,
    ) -> Self {
        debug_assert_eq!(d.rows(), areas.len());
        debug_assert_eq!(areas.len(), centroids.len());
        GalerkinKle {
            eigenvalues,
            d,
            areas,
            centroids,
            trace,
        }
    }

    /// The full retained eigenvector matrix (pipeline cache serialisation).
    pub(crate) fn d_matrix(&self) -> &Matrix {
        &self.d
    }

    /// The exact operator trace (pipeline cache serialisation).
    pub(crate) fn trace(&self) -> f64 {
        self.trace
    }

    /// Computed KLE eigenvalues, descending (Fig. 5's decay curve) — all
    /// `n` under [`EigenSolver::Full`], the leading pairs under Lanczos.
    pub fn eigenvalues(&self) -> &[f64] {
        &self.eigenvalues
    }

    /// Number of basis triangles `n`.
    pub fn basis_size(&self) -> usize {
        self.areas.len()
    }

    /// Number of retained eigenvectors `m`.
    pub fn retained(&self) -> usize {
        self.d.cols()
    }

    /// Piecewise-constant values of eigenfunction `j` (one value per
    /// triangle) — Fig. 4 plots these surfaces.
    ///
    /// # Panics
    ///
    /// Panics if `j >= retained()`.
    pub fn eigenfunction(&self, j: usize) -> Vec<f64> {
        self.d.col(j)
    }

    /// Value of eigenfunction `j` in triangle `i`.
    ///
    /// # Panics
    ///
    /// Panics if indices are out of range.
    pub fn eigenfunction_value(&self, j: usize, triangle: usize) -> f64 {
        self.d[(triangle, j)]
    }

    /// Triangle areas (the `Φ` diagonal the solve used).
    pub fn areas(&self) -> &[f64] {
        &self.areas
    }

    /// Triangle centroids.
    pub fn centroids(&self) -> &[Point2] {
        &self.centroids
    }

    /// Applies the paper's truncation criterion, returning the selected
    /// rank `r` (25 in the paper's experiments). Works with both solvers:
    /// under Lanczos the criterion's `λ_m (n - m)` bound covers the
    /// uncomputed tail.
    pub fn select_rank(&self, criterion: &TruncationCriterion) -> usize {
        let _span = klest_obs::span("truncate");
        let r = criterion
            .select_with_basis(&self.eigenvalues, self.basis_size())
            .min(self.retained());
        if klest_obs::enabled() {
            klest_obs::gauge_set("kle.rank", r as f64);
            klest_obs::gauge_set("kle.variance_captured", self.variance_captured(r));
        }
        r
    }

    /// Like [`select_rank`](Self::select_rank), but also reports whether
    /// the selected rank genuinely meets the tail budget. `false` means
    /// the criterion saturated (flat spectrum, or the rank was capped by
    /// the retained eigenvector count) — the r-term expansion does *not*
    /// cover the requested variance fraction, and callers should degrade
    /// (e.g. to the full Cholesky reference) rather than trust it.
    pub fn select_rank_checked(&self, criterion: &TruncationCriterion) -> (usize, bool) {
        let r = self.select_rank(criterion);
        let met = criterion.budget_met_with_basis(&self.eigenvalues, self.basis_size(), r);
        (r, met)
    }

    /// The reconstruction matrix `D_λ = D_r √Λ_r` of eq. (28)
    /// (`n x r`): multiplying a standard-normal `ξ ∈ R^r` yields one field
    /// realisation over the triangles.
    ///
    /// # Errors
    ///
    /// [`KleError::RankOutOfRange`] if `r` exceeds the retained
    /// eigenpairs, or if a retained eigenvalue within `r` is negative
    /// (possible only for an invalid kernel).
    pub fn reconstruction_matrix(&self, r: usize) -> Result<Matrix, KleError> {
        if r == 0 || r > self.retained() {
            return Err(KleError::RankOutOfRange {
                requested: r,
                available: self.retained(),
            });
        }
        let n = self.basis_size();
        let mut m = Matrix::zeros(n, r);
        for j in 0..r {
            let lam = self.eigenvalues[j];
            if lam < 0.0 {
                return Err(KleError::RankOutOfRange {
                    requested: r,
                    available: j,
                });
            }
            let s = lam.sqrt();
            for i in 0..n {
                m[(i, j)] = self.d[(i, j)] * s;
            }
        }
        Ok(m)
    }

    /// Truncated kernel reconstruction
    /// `K̂(x, y) = Σ_{j<r} λ_j f_j(x) f_j(y)` where `x ∈ Δ_i`, `y ∈ Δ_k`
    /// (used for Fig. 3b's reconstruction-error surface).
    ///
    /// # Errors
    ///
    /// [`KleError::RankOutOfRange`] for invalid `r`;
    /// [`KleError::PointOutsideMesh`] when a point cannot be located.
    pub fn reconstruct_kernel(
        &self,
        locator: &TriangleLocator,
        x: Point2,
        y: Point2,
        r: usize,
    ) -> Result<f64, KleError> {
        if r == 0 || r > self.retained() {
            return Err(KleError::RankOutOfRange {
                requested: r,
                available: self.retained(),
            });
        }
        let i = locator
            .locate(x)
            .ok_or(KleError::PointOutsideMesh { index: 0 })?;
        let k = locator
            .locate(y)
            .ok_or(KleError::PointOutsideMesh { index: 1 })?;
        Ok(self.reconstruct_kernel_between_triangles(i, k, r))
    }

    /// Truncated kernel reconstruction between two triangles by index.
    ///
    /// # Panics
    ///
    /// Panics if triangle indices are out of range or `r > retained()`.
    pub fn reconstruct_kernel_between_triangles(&self, i: usize, k: usize, r: usize) -> f64 {
        (0..r)
            .map(|j| self.eigenvalues[j] * self.d[(i, j)] * self.d[(k, j)])
            .sum()
    }

    /// Per-triangle truncated variance `Σ_{j<r} λ_j f_j(x)²` — the
    /// variance the r-term expansion actually delivers at each die
    /// location (exactly 1 everywhere only as r → n). Truncation bias
    /// concentrates where the eigenfunctions resolve the field worst
    /// (die corners), which is where Fig. 3(b)'s worst errors live.
    ///
    /// # Panics
    ///
    /// Panics if `r > retained()`.
    pub fn variance_map(&self, r: usize) -> Vec<f64> {
        assert!(r <= self.retained(), "rank {r} exceeds retained {}", self.retained());
        let n = self.basis_size();
        (0..n)
            .map(|i| {
                (0..r)
                    .map(|j| self.eigenvalues[j].max(0.0) * self.d[(i, j)] * self.d[(i, j)])
                    .sum()
            })
            .collect()
    }

    /// Fraction of total variance captured by the first `r` eigenpairs:
    /// `Σ_{j<r} λ_j / Σ_j λ_j`. The denominator is the exact operator
    /// trace `|D|` (Mercer), so the figure is meaningful even when only
    /// the leading eigenvalues were computed (Lanczos).
    pub fn variance_captured(&self, r: usize) -> f64 {
        if self.trace <= 0.0 {
            return 0.0;
        }
        let head: f64 = self.eigenvalues[..r.min(self.eigenvalues.len())]
            .iter()
            .map(|&l| l.max(0.0))
            .sum();
        head / self.trace
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use klest_geometry::Rect;
    use klest_kernels::GaussianKernel;
    use klest_mesh::MeshBuilder;

    fn small_kle() -> (Mesh, GalerkinKle) {
        let mesh = MeshBuilder::new(Rect::unit_die())
            .max_area(0.08)
            .min_angle_degrees(25.0)
            .build()
            .unwrap();
        let kle = GalerkinKle::compute(&mesh, &GaussianKernel::new(1.5), KleOptions::default())
            .unwrap();
        (mesh, kle)
    }

    #[test]
    fn eigenvalues_descend_and_are_mostly_positive() {
        let (_, kle) = small_kle();
        let ev = kle.eigenvalues();
        for w in ev.windows(2) {
            assert!(w[0] >= w[1] - 1e-12);
        }
        // A valid kernel's operator is PSD; discretisation noise may make
        // the far tail slightly negative, never the head.
        assert!(ev[0] > 0.0);
        assert!(ev[ev.len() - 1] > -1e-8);
    }

    #[test]
    fn eigenvalue_sum_matches_trace() {
        // Mercer: Σ λ_j = ∫ K(x,x) dx = |D| = 4 for a correlation kernel.
        // The Galerkin approximation preserves the discrete trace exactly:
        // Σ λ = trace(Φ^{-1/2} K Φ^{-1/2}) = Σ K_ii / a_i = Σ a_i = 4.
        let (mesh, kle) = small_kle();
        let total: f64 = kle.eigenvalues().iter().sum();
        assert!(
            (total - mesh.total_area()).abs() < 1e-9,
            "Σλ = {total}, |D| = {}",
            mesh.total_area()
        );
    }

    #[test]
    fn eigenfunctions_are_l2_orthonormal() {
        let (_, kle) = small_kle();
        let m = kle.retained().min(6);
        for i in 0..m {
            for j in i..m {
                let fi = kle.eigenfunction(i);
                let fj = kle.eigenfunction(j);
                let inner: f64 = fi
                    .iter()
                    .zip(fj.iter())
                    .zip(kle.areas().iter())
                    .map(|((a, b), w)| a * b * w)
                    .sum();
                let expected = if i == j { 1.0 } else { 0.0 };
                assert!(
                    (inner - expected).abs() < 1e-9,
                    "⟨f_{i}, f_{j}⟩ = {inner}"
                );
            }
        }
    }

    #[test]
    fn first_eigenfunction_has_constant_sign() {
        // The leading eigenfunction of a positive kernel is sign-definite
        // (Perron–Frobenius analogue).
        let (_, kle) = small_kle();
        let f0 = kle.eigenfunction(0);
        let pos = f0.iter().filter(|&&v| v > 0.0).count();
        assert!(pos == 0 || pos == f0.len(), "{pos} of {}", f0.len());
    }

    #[test]
    fn reconstruction_matrix_shape_and_scaling() {
        let (_, kle) = small_kle();
        let r = 5;
        let dl = kle.reconstruction_matrix(r).unwrap();
        assert_eq!(dl.rows(), kle.basis_size());
        assert_eq!(dl.cols(), r);
        for j in 0..r {
            let lam = kle.eigenvalues()[j];
            assert!(
                (dl[(0, j)] - kle.eigenfunction_value(j, 0) * lam.sqrt()).abs() < 1e-12
            );
        }
        assert!(matches!(
            kle.reconstruction_matrix(0),
            Err(KleError::RankOutOfRange { .. })
        ));
        assert!(matches!(
            kle.reconstruction_matrix(kle.retained() + 1),
            Err(KleError::RankOutOfRange { .. })
        ));
    }

    #[test]
    fn kernel_reconstruction_error_shrinks_with_rank(){
        let (mesh, kle) = small_kle();
        let kern = GaussianKernel::new(1.5);
        let err = |r: usize| {
            let mut worst = 0.0f64;
            for i in 0..mesh.len() {
                for k in 0..mesh.len() {
                    let approx = kle.reconstruct_kernel_between_triangles(i, k, r);
                    let exact = kern.eval(mesh.centroids()[i], mesh.centroids()[k]);
                    worst = worst.max((approx - exact).abs());
                }
            }
            worst
        };
        let e_small = err(3);
        let e_large = err(kle.retained().min(30));
        assert!(
            e_large < e_small,
            "rank 30 error {e_large} should beat rank 3 error {e_small}"
        );
    }

    #[test]
    fn reconstruct_kernel_via_locator() {
        let (mesh, kle) = small_kle();
        let locator = mesh.locator();
        let v = kle
            .reconstruct_kernel(&locator, Point2::new(0.1, 0.1), Point2::new(0.1, 0.1), 20)
            .unwrap();
        assert!(v > 0.5, "self-correlation should be near 1, got {v}");
        assert!(matches!(
            kle.reconstruct_kernel(&locator, Point2::new(5.0, 5.0), Point2::ORIGIN, 5),
            Err(KleError::PointOutsideMesh { index: 0 })
        ));
        assert!(matches!(
            kle.reconstruct_kernel(&locator, Point2::ORIGIN, Point2::ORIGIN, 0),
            Err(KleError::RankOutOfRange { .. })
        ));
    }

    #[test]
    fn variance_captured_monotone() {
        let (_, kle) = small_kle();
        let mut prev = 0.0;
        for r in 1..=kle.retained().min(20) {
            let v = kle.variance_captured(r);
            assert!(v >= prev - 1e-15);
            assert!(v <= 1.0 + 1e-12);
            prev = v;
        }
        assert!(kle.variance_captured(kle.basis_size()) > 0.999);
    }

    #[test]
    fn lanczos_solver_matches_full_on_leading_pairs() {
        let mesh = MeshBuilder::new(Rect::unit_die())
            .max_area(0.03)
            .min_angle_degrees(25.0)
            .build()
            .unwrap();
        let kernel = GaussianKernel::new(2.0);
        let full = GalerkinKle::compute(&mesh, &kernel, KleOptions::default()).unwrap();
        let lanczos_opts = KleOptions {
            solver: crate::EigenSolver::Lanczos,
            max_eigenpairs: 30,
            ..KleOptions::default()
        };
        let partial = GalerkinKle::compute(&mesh, &kernel, lanczos_opts).unwrap();
        assert!(partial.retained() <= 30);
        // Leading eigenvalues agree to solver precision.
        for j in 0..partial.retained().min(20) {
            let (a, b) = (partial.eigenvalues()[j], full.eigenvalues()[j]);
            assert!(
                (a - b).abs() < 1e-8 * b.abs().max(1e-8),
                "eigenvalue {j}: {a} vs {b}"
            );
        }
        // Rank selection agrees (both see the same leading spectrum and
        // the same basis size for the tail bound).
        let crit = TruncationCriterion::new(30, 0.01);
        assert_eq!(partial.select_rank(&crit), full.select_rank(&crit));
        // Φ-orthonormal eigenfunctions from the Lanczos path too.
        for i in 0..3 {
            let fi = partial.eigenfunction(i);
            let norm: f64 = fi
                .iter()
                .zip(partial.areas())
                .map(|(v, a)| v * v * a)
                .sum();
            assert!((norm - 1.0).abs() < 1e-8, "mode {i} norm {norm}");
        }
        // Variance accounting uses the exact trace under both solvers.
        let r = 10;
        assert!(
            (partial.variance_captured(r) - full.variance_captured(r)).abs() < 1e-6
        );
    }

    #[test]
    fn variance_map_properties() {
        let (mesh, kle) = small_kle();
        let r = 20.min(kle.retained());
        let map = kle.variance_map(r);
        assert_eq!(map.len(), mesh.len());
        // Pointwise truncated variance is within (0, 1] up to
        // discretisation noise, and its area-weighted mean equals the
        // captured-variance fraction times |D| / |D|.
        let mut weighted = 0.0;
        for (v, a) in map.iter().zip(mesh.areas()) {
            assert!(*v > 0.0 && *v < 1.05, "pointwise variance {v}");
            weighted += v * a;
        }
        let captured = kle.variance_captured(r);
        assert!(
            (weighted / mesh.total_area() - captured).abs() < 1e-9,
            "area-mean {} vs captured {}",
            weighted / mesh.total_area(),
            captured
        );
        // More modes -> no less variance anywhere.
        let map_small = kle.variance_map(5);
        for (big, small) in map.iter().zip(&map_small) {
            assert!(big >= small);
        }
    }

    #[test]
    fn select_rank_checked_reports_budget() {
        let (_, kle) = small_kle();
        // The default criterion is satisfiable for a Gaussian kernel.
        let (r, met) = kle.select_rank_checked(&TruncationCriterion::default());
        assert_eq!(r, kle.select_rank(&TruncationCriterion::default()));
        assert!(met, "Gaussian spectrum must meet the 1% budget");
        // An absurdly tight budget with few computed pairs saturates.
        let tight = TruncationCriterion::new(3, 1e-12);
        let (r_tight, met_tight) = kle.select_rank_checked(&tight);
        assert_eq!(r_tight, 3);
        assert!(!met_tight, "3 pairs cannot meet a 1e-12 tail budget");
    }

    #[test]
    fn cancelled_token_stops_assembly_then_eigensolve() {
        use klest_runtime::CancelToken;
        let mesh = MeshBuilder::new(Rect::unit_die())
            .max_area(0.08)
            .min_angle_degrees(25.0)
            .build()
            .unwrap();
        let kernel = GaussianKernel::new(1.5);
        // Tripped before assembly: cancellation surfaces from the
        // assembly loop with zero rows completed.
        let token = CancelToken::unlimited();
        token.cancel();
        match GalerkinKle::compute_with_token(&mesh, &kernel, KleOptions::default(), &token) {
            Err(KleError::Cancelled(c)) => {
                assert_eq!(c.stage, "galerkin/assemble");
                assert_eq!(c.completed, 0);
            }
            other => panic!("expected Cancelled, got {other:?}"),
        }
        // Tripped mid-pipeline: assembly's n rows consume n checkpoints,
        // so a budget of n + 2 trips inside the eigensolve.
        let token = CancelToken::unlimited();
        token.trip_after_checkpoints(mesh.len() as u64 + 2);
        match GalerkinKle::compute_with_token(&mesh, &kernel, KleOptions::default(), &token) {
            Err(KleError::Cancelled(c)) => assert_eq!(c.stage, "eigen/ql"),
            other => panic!("expected Cancelled, got {other:?}"),
        }
        // A live token reproduces the plain path bit for bit.
        let live = CancelToken::unlimited();
        let with = GalerkinKle::compute_with_token(&mesh, &kernel, KleOptions::default(), &live)
            .unwrap();
        let without = GalerkinKle::compute(&mesh, &kernel, KleOptions::default()).unwrap();
        for (a, b) in with.eigenvalues().iter().zip(without.eigenvalues()) {
            assert_eq!(a, b);
        }
    }

    #[test]
    fn matrix_free_solver_matches_full_on_leading_pairs() {
        let mesh = MeshBuilder::new(Rect::unit_die())
            .max_area(0.03)
            .min_angle_degrees(25.0)
            .build()
            .unwrap();
        let kernel = GaussianKernel::new(2.0);
        let full = GalerkinKle::compute(&mesh, &kernel, KleOptions::default()).unwrap();
        let mf_opts = KleOptions {
            solver: EigenSolver::MatrixFree {
                k: 20,
                max_iters: 500,
            },
            ..KleOptions::default()
        };
        let mf = GalerkinKle::compute(&mesh, &kernel, mf_opts).unwrap();
        assert_eq!(mf.retained(), 20);
        for j in 0..20 {
            let (a, b) = (mf.eigenvalues()[j], full.eigenvalues()[j]);
            assert!(
                (a - b).abs() < 1e-8 * b.abs().max(1e-8),
                "eigenvalue {j}: {a} vs {b}"
            );
        }
        // Φ-orthonormal eigenfunctions from the matrix-free path too.
        for i in 0..3 {
            let fi = mf.eigenfunction(i);
            let norm: f64 = fi.iter().zip(mf.areas()).map(|(v, a)| v * v * a).sum();
            assert!((norm - 1.0).abs() < 1e-8, "mode {i} norm {norm}");
        }
        // Exact-trace variance accounting holds without the tail.
        assert!((mf.variance_captured(10) - full.variance_captured(10)).abs() < 1e-6);
    }

    #[test]
    fn matrix_free_compute_is_bitwise_equal_to_from_matrix() {
        // compute() drives the on-the-fly GalerkinOperator; from_matrix()
        // drives the dense adapter over the assembled matrix. Their
        // matvecs are the same floating-point expressions, so the two
        // spectra must agree bit for bit.
        let mesh = MeshBuilder::new(Rect::unit_die())
            .max_area(0.05)
            .min_angle_degrees(25.0)
            .build()
            .unwrap();
        let kernel = GaussianKernel::new(1.5);
        let opts = KleOptions {
            solver: EigenSolver::MatrixFree {
                k: 8,
                max_iters: 400,
            },
            ..KleOptions::default()
        };
        let operator = GalerkinKle::compute(&mesh, &kernel, opts).unwrap();
        let dense = crate::assemble_galerkin(&mesh, &kernel, QuadratureRule::Centroid);
        let adapter = GalerkinKle::from_matrix(dense, &mesh, opts).unwrap();
        assert_eq!(operator.eigenvalues(), adapter.eigenvalues());
        assert_eq!(
            operator.d_matrix().as_slice(),
            adapter.d_matrix().as_slice()
        );
    }

    #[test]
    fn matrix_free_with_k_at_least_n_falls_back_to_dense() {
        let mesh = MeshBuilder::new(Rect::unit_die())
            .max_area(0.2)
            .build()
            .unwrap();
        let kernel = GaussianKernel::new(1.0);
        let n = mesh.len();
        let opts = KleOptions {
            solver: EigenSolver::MatrixFree {
                k: n + 10,
                max_iters: 500,
            },
            ..KleOptions::default()
        };
        let mf = GalerkinKle::compute(&mesh, &kernel, opts).unwrap();
        let full = GalerkinKle::compute(&mesh, &kernel, KleOptions::default()).unwrap();
        // The fallback IS the dense full solve: all n eigenvalues, bitwise.
        assert_eq!(mf.eigenvalues().len(), n);
        assert_eq!(mf.eigenvalues(), full.eigenvalues());
    }

    #[test]
    fn matrix_free_cancellation_is_typed() {
        use klest_runtime::CancelToken;
        let mesh = MeshBuilder::new(Rect::unit_die())
            .max_area(0.08)
            .min_angle_degrees(25.0)
            .build()
            .unwrap();
        let kernel = GaussianKernel::new(1.5);
        let opts = KleOptions {
            solver: EigenSolver::MatrixFree {
                k: 5,
                max_iters: 300,
            },
            ..KleOptions::default()
        };
        // Pre-tripped: caught at the eigen/matrix-free gate.
        let token = CancelToken::unlimited();
        token.cancel();
        match GalerkinKle::compute_with_token(&mesh, &kernel, opts, &token) {
            Err(KleError::Cancelled(c)) => assert_eq!(c.stage, "eigen/matrix-free"),
            other => panic!("expected Cancelled, got {other:?}"),
        }
        // Tripped mid-solve: surfaces from the operator's per-row polls.
        let token = CancelToken::unlimited();
        token.trip_after_checkpoints(mesh.len() as u64 + 2);
        match GalerkinKle::compute_with_token(&mesh, &kernel, opts, &token) {
            Err(KleError::Cancelled(c)) => assert_eq!(c.stage, "galerkin/matvec"),
            other => panic!("expected Cancelled, got {other:?}"),
        }
        // A live token reproduces the plain path bit for bit.
        let live = CancelToken::unlimited();
        let with = GalerkinKle::compute_with_token(&mesh, &kernel, opts, &live).unwrap();
        let without = GalerkinKle::compute(&mesh, &kernel, opts).unwrap();
        assert_eq!(with.eigenvalues(), without.eigenvalues());
    }

    #[test]
    fn max_eigenpairs_caps_storage() {
        let mesh = MeshBuilder::new(Rect::unit_die())
            .max_area(0.2)
            .build()
            .unwrap();
        let opts = KleOptions {
            max_eigenpairs: 4,
            ..KleOptions::default()
        };
        let kle = GalerkinKle::compute(&mesh, &GaussianKernel::new(1.0), opts).unwrap();
        assert_eq!(kle.retained(), 4);
        assert_eq!(kle.eigenvalues().len(), mesh.len());
    }
}
