//! # klest-core
//!
//! The paper's primary contribution: a robust numerical method — Galerkin
//! projection on a triangulation with numerical integration — for
//! computing the **Karhunen-Loève Expansion** (KLE) of a 2-D random field
//! with an *arbitrary* (physically valid) covariance kernel.
//!
//! Pipeline (paper Secs. 3–4):
//!
//! 1. [`assemble_galerkin`] builds `K_ik = ∬ K(x,y) φ_i(y) φ_k(x)` over a
//!    piecewise-constant triangle basis using a [`QuadratureRule`]
//!    (the paper's centroid rule, eq. 21, or higher-order rules),
//! 2. [`GalerkinKle::compute`] solves the generalized eigenproblem
//!    `K d = λ Φ d` (eq. 13) and exposes the KLE eigenpairs,
//! 3. [`TruncationCriterion`] picks the rank `r` with the paper's
//!    λ-tail bound (the rule that yields r = 25 in Sec. 5.2),
//! 4. [`KleSampler`] draws field realisations `p_Δ = D √Λ ξ` (eq. 28),
//! 5. [`analytic`] provides closed-form 1-D/2-D exponential-kernel KLEs
//!    ([8]) used as ground truth in tests and benches.
//!
//! ```
//! use klest_core::{GalerkinKle, KleOptions, TruncationCriterion};
//! use klest_kernels::GaussianKernel;
//! use klest_mesh::MeshBuilder;
//! use klest_geometry::Rect;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mesh = MeshBuilder::new(Rect::unit_die()).max_area(0.05).build()?;
//! let kernel = GaussianKernel::new(2.0);
//! let kle = GalerkinKle::compute(&mesh, &kernel, KleOptions::default())?;
//! let r = kle.select_rank(&TruncationCriterion::default());
//! assert!(r >= 1);
//! # Ok(())
//! # }
//! ```

#![deny(missing_docs)]

pub mod analytic;
pub mod convergence;
mod error;
mod galerkin;
mod kle;
pub mod pipeline;
mod quadrature;
mod sampler;
mod truncation;

pub use error::KleError;
pub use galerkin::{
    assemble_galerkin, assemble_galerkin_parallel, assemble_galerkin_parallel_with_token,
    assemble_galerkin_with_token, resolve_assembly_threads, GalerkinOperator,
    PARALLEL_MIN_TRIANGLES,
};
pub use kle::{EigenSolver, GalerkinKle, KleOptions};
pub use quadrature::QuadratureRule;
pub use sampler::KleSampler;
pub use truncation::{spectrum_is_descending, TruncationCriterion};
