//! The KLE front-end as a typed stage graph with a content-addressed
//! artifact cache.
//!
//! The paper's central economics (Sec. 5.3, Table 2) are that the
//! front-end — mesh → Galerkin assembly → eigensolve → truncation — is
//! computed **once** and amortized across every downstream SSTA query.
//! This module makes that structure explicit instead of ad hoc:
//!
//! - [`Stage`] is a typed pipeline node (`mesh/build`,
//!   `galerkin/assemble`, `galerkin/eigensolve`, `truncate`); each knows
//!   its obs name and which wall-clock stage budget governs it.
//! - [`Engine`] executes stages under an [`ExecPolicy`]: `Plain` runs
//!   them bare (no token, bitwise the historical strict path), while
//!   `Supervised` derives a child [`CancelToken`] per budget key so
//!   cancellation checkpoints are injected by the engine, not
//!   copy-pasted per caller.
//! - [`run_frontend`] wires the stages into the canonical dataflow —
//!   including the supervised mesh-coarsening ladder — and consults an
//!   optional [`ArtifactCache`] between stages, so the mesh, assembled
//!   Galerkin matrix and computed spectrum are each built at most once
//!   per distinct configuration and shared across MC arms, sweep points
//!   and (with a disk directory) repeated CLI invocations.
//!
//! # Keys, invalidation and the determinism contract
//!
//! Artifacts are addressed by [`ArtifactKey`]: a human-readable
//! descriptor embedding every input that influences the artifact's
//! *bits* — die rectangle, mesh max-area and min-angle, the kernel's
//! [`CovarianceKernel::cache_key`] (exact parameter bits), quadrature
//! rule, eigensolver choice and eigenpair cap — each `f64` encoded as
//! its IEEE-754 bit pattern, so a one-ULP parameter change is a
//! different key. There is no invalidation protocol: keys are
//! content-addressed, so "stale" entries are simply never looked up
//! again. A cache hit returns an artifact **bitwise identical** to what
//! recomputation would produce; this holds for the in-memory layer
//! trivially (the artifact is shared) and for the disk layer because
//! every float is serialized as its exact bit pattern and
//! [`Mesh`] reconstruction recomputes derived quantities through the
//! same code path the builder used. Kernels whose `cache_key()` is
//! `None` opt out: the pipeline silently bypasses the cache. The
//! truncation stage is always recomputed — it is O(m) and depends on the
//! caller's [`TruncationCriterion`], which deliberately stays out of the
//! spectrum key so criterion sweeps share one spectrum.

use crate::{
    assemble_galerkin_parallel, assemble_galerkin_parallel_with_token, EigenSolver, GalerkinKle,
    KleError, KleOptions, QuadratureRule, TruncationCriterion,
};
use klest_geometry::{Point2, Rect};
use klest_kernels::CovarianceKernel;
use klest_linalg::Matrix;
use klest_mesh::{Mesh, MeshBuilder, MeshError};
use klest_runtime::{Budget, CancelToken, Cancelled, StageBudgets};
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::{Duration, Instant};

// ---------------------------------------------------------------------------
// Stage graph
// ---------------------------------------------------------------------------

/// A typed pipeline node: consumes `I`, produces `Self::Output`.
///
/// Stages never derive their own cancellation tokens — the [`Engine`]
/// does that from [`Stage::budget_key`] and the active [`ExecPolicy`],
/// which is what lets one dataflow serve the plain, with-report and
/// supervised execution modes.
pub trait Stage<I> {
    /// What the stage produces on success.
    type Output;
    /// The stage's typed failure.
    type Error;
    /// Stable stage name (matches the obs span the stage emits).
    fn name(&self) -> &'static str;
    /// Which named wall-clock budget governs this stage under a
    /// supervised policy (`None` = the parent's own budget).
    fn budget_key(&self) -> Option<&'static str> {
        None
    }
    /// Runs the stage. `token`, when present, must be polled at the
    /// stage's cancellation checkpoints.
    ///
    /// # Errors
    ///
    /// The stage's typed error, including cancellation where supported.
    fn run(&self, input: I, token: Option<&CancelToken>) -> Result<Self::Output, Self::Error>;
}

/// How the [`Engine`] executes stages.
#[derive(Clone, Copy)]
pub enum ExecPolicy<'a> {
    /// No tokens, no budgets: stages run exactly like the historical
    /// strict entry points (bitwise identical outputs).
    Plain,
    /// Deadline-aware: each stage runs under a child of `token` carrying
    /// the stage's named budget from `budgets` (unlimited for stages with
    /// no entry), so one straggling stage cannot starve its siblings.
    Supervised {
        /// Parent token; every stage child is clamped by its deadline.
        token: &'a CancelToken,
        /// Per-stage wall-clock budgets.
        budgets: &'a StageBudgets,
    },
}

impl ExecPolicy<'_> {
    /// Is this a supervised (token-carrying) policy?
    pub fn is_supervised(&self) -> bool {
        matches!(self, ExecPolicy::Supervised { .. })
    }

    /// Derives the token a stage with budget key `key` runs under:
    /// `None` for a plain policy, otherwise a fresh child carrying the
    /// named budget (unlimited when `key` is `None` or has no entry, but
    /// still clamped by the parent deadline).
    pub fn stage_token(&self, key: Option<&'static str>) -> Option<CancelToken> {
        match self {
            ExecPolicy::Plain => None,
            ExecPolicy::Supervised { token, budgets } => Some(match key {
                Some(key) => token.child(budgets.budget(key)),
                None => token.child(Budget::UNLIMITED),
            }),
        }
    }

    /// Is the parent token already cancelled? (Always `false` for plain.)
    pub fn parent_cancelled(&self) -> bool {
        match self {
            ExecPolicy::Plain => false,
            ExecPolicy::Supervised { token, .. } => token.is_cancelled(),
        }
    }

    fn budget_limit(&self, key: &str) -> Option<Duration> {
        match self {
            ExecPolicy::Plain => None,
            ExecPolicy::Supervised { budgets, .. } => budgets.budget(key).limit(),
        }
    }
}

/// Executes [`Stage`]s under one [`ExecPolicy`].
pub struct Engine<'a> {
    policy: ExecPolicy<'a>,
}

impl<'a> Engine<'a> {
    /// An engine with the given policy.
    pub fn new(policy: ExecPolicy<'a>) -> Self {
        Engine { policy }
    }

    /// The active policy.
    pub fn policy(&self) -> &ExecPolicy<'a> {
        &self.policy
    }

    /// Runs `stage`, deriving a fresh stage token from its budget key.
    ///
    /// # Errors
    ///
    /// The stage's typed error.
    pub fn exec<I, S: Stage<I>>(&self, stage: &S, input: I) -> Result<S::Output, S::Error> {
        let token = self.policy.stage_token(stage.budget_key());
        stage.run(input, token.as_ref())
    }

    /// Runs `stage` under a caller-managed token — used when several
    /// stages must share one budget window (historically, Galerkin
    /// assembly and the eigensolve share the `eigen` budget).
    ///
    /// # Errors
    ///
    /// The stage's typed error.
    pub fn exec_with<I, S: Stage<I>>(
        &self,
        stage: &S,
        input: I,
        token: Option<&CancelToken>,
    ) -> Result<S::Output, S::Error> {
        stage.run(input, token)
    }
}

/// Quality-mesh generation over the die ([`MeshBuilder`]).
pub struct MeshStage {
    /// The die rectangle.
    pub die: Rect,
    /// Maximum triangle area as a fraction of the die area.
    pub max_area_fraction: f64,
    /// Ruppert minimum-angle constraint, degrees.
    pub min_angle_degrees: f64,
}

impl Stage<()> for MeshStage {
    type Output = Mesh;
    type Error = MeshError;

    fn name(&self) -> &'static str {
        "mesh/build"
    }

    fn budget_key(&self) -> Option<&'static str> {
        Some("mesh")
    }

    fn run(&self, _input: (), token: Option<&CancelToken>) -> Result<Mesh, MeshError> {
        let builder = MeshBuilder::new(self.die)
            .max_area_fraction(self.max_area_fraction)
            .min_angle_degrees(self.min_angle_degrees);
        match token {
            Some(token) => builder.build_with_token(token),
            None => builder.build(),
        }
    }
}

/// Galerkin matrix assembly (serial or supervised-parallel; bitwise
/// identical either way).
pub struct AssembleStage<'k, K: ?Sized> {
    /// The covariance kernel.
    pub kernel: &'k K,
    /// Quadrature rule for the double integrals.
    pub quadrature: QuadratureRule,
    /// Worker threads (`0` = auto, see
    /// [`crate::resolve_assembly_threads`]).
    pub threads: usize,
}

impl<K: CovarianceKernel + ?Sized> Stage<&Mesh> for AssembleStage<'_, K> {
    type Output = Matrix;
    type Error = KleError;

    fn name(&self) -> &'static str {
        "galerkin/assemble"
    }

    fn budget_key(&self) -> Option<&'static str> {
        // Assembly and the eigensolve historically share one wall-clock
        // window; see `run_frontend`.
        Some("eigen")
    }

    fn run(&self, mesh: &Mesh, token: Option<&CancelToken>) -> Result<Matrix, KleError> {
        match token {
            Some(token) => Ok(assemble_galerkin_parallel_with_token(
                mesh,
                self.kernel,
                self.quadrature,
                self.threads,
                token,
            )?),
            None => Ok(assemble_galerkin_parallel(
                mesh,
                self.kernel,
                self.quadrature,
                self.threads,
            )),
        }
    }
}

/// The generalized eigensolve `K d = λ Φ d` on a pre-assembled matrix.
pub struct EigensolveStage {
    /// Solver backend, eigenpair cap and quadrature (the latter unused
    /// here but part of the one options struct).
    pub options: KleOptions,
}

impl Stage<(Matrix, &Mesh)> for EigensolveStage {
    type Output = GalerkinKle;
    type Error = KleError;

    fn name(&self) -> &'static str {
        "galerkin/eigensolve"
    }

    fn budget_key(&self) -> Option<&'static str> {
        Some("eigen")
    }

    fn run(
        &self,
        (matrix, mesh): (Matrix, &Mesh),
        token: Option<&CancelToken>,
    ) -> Result<GalerkinKle, KleError> {
        match token {
            Some(token) => GalerkinKle::from_matrix_with_token(matrix, mesh, self.options, token),
            None => GalerkinKle::from_matrix(matrix, mesh, self.options),
        }
    }
}

/// The matrix-free eigensolve: mesh → spectrum directly, driving
/// thick-restart Lanczos through an on-the-fly
/// [`crate::GalerkinOperator`]. No assembly stage runs ahead of this and
/// no O(n²) artifact exists anywhere on the path — the stage replaces
/// the [`AssembleStage`]+[`EigensolveStage`] pair when
/// [`EigenSolver::MatrixFree`] is selected.
pub struct MatrixFreeEigensolveStage<'k, K: ?Sized> {
    /// The covariance kernel (entries evaluated per matvec).
    pub kernel: &'k K,
    /// Solver options; `options.solver` must be
    /// [`EigenSolver::MatrixFree`] for the stage to be meaningful.
    pub options: KleOptions,
}

impl<K: CovarianceKernel + ?Sized> Stage<&Mesh> for MatrixFreeEigensolveStage<'_, K> {
    type Output = GalerkinKle;
    type Error = KleError;

    fn name(&self) -> &'static str {
        "galerkin/eigensolve"
    }

    fn budget_key(&self) -> Option<&'static str> {
        // The one stage covers what assembly + eigensolve span on the
        // dense path, so it owns the whole `eigen` window.
        Some("eigen")
    }

    fn run(&self, mesh: &Mesh, token: Option<&CancelToken>) -> Result<GalerkinKle, KleError> {
        match token {
            Some(token) => GalerkinKle::compute_with_token(mesh, self.kernel, self.options, token),
            None => GalerkinKle::compute(mesh, self.kernel, self.options),
        }
    }
}

/// Rank selection by the paper's λ-tail criterion. Cheap (O(m)) and
/// criterion-dependent, so it is always recomputed rather than cached.
pub struct TruncateStage {
    /// The truncation criterion.
    pub criterion: TruncationCriterion,
}

impl Stage<&GalerkinKle> for TruncateStage {
    type Output = (usize, bool);
    type Error = std::convert::Infallible;

    fn name(&self) -> &'static str {
        "truncate"
    }

    fn run(
        &self,
        kle: &GalerkinKle,
        _token: Option<&CancelToken>,
    ) -> Result<(usize, bool), Self::Error> {
        Ok(kle.select_rank_checked(&self.criterion))
    }
}

// ---------------------------------------------------------------------------
// Artifact keys
// ---------------------------------------------------------------------------

/// 64-bit FNV-1a — tiny, dependency-free, deterministic across runs and
/// platforms. Used only to derive compact disk file names; equality is
/// always decided on the full descriptor, so collisions merely cost a
/// cache miss.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn f64_bits(v: f64) -> String {
    format!("{:016x}", v.to_bits())
}

fn parse_f64_bits(s: &str) -> Option<f64> {
    u64::from_str_radix(s, 16).ok().map(f64::from_bits)
}

fn quadrature_tag(rule: QuadratureRule) -> &'static str {
    match rule {
        QuadratureRule::Centroid => "centroid",
        QuadratureRule::ThreePoint => "three-point",
        QuadratureRule::SevenPoint => "seven-point",
    }
}

fn solver_tag(solver: EigenSolver) -> String {
    match solver {
        EigenSolver::Full => "full".to_string(),
        EigenSolver::Lanczos => "lanczos".to_string(),
        // k and max_iters both shape the computed spectrum (restart
        // schedule and convergence budget), so they are part of the
        // content address: matrix-free spectra cache independently of
        // the dense solvers' and of each other's configurations.
        EigenSolver::MatrixFree { k, max_iters } => {
            format!("matrix-free:k={k}:iters={max_iters}")
        }
    }
}

/// A content address for a pipeline artifact: a human-readable
/// descriptor embedding the exact bit patterns of every input that
/// shapes the artifact. Two configurations produce the same key iff
/// recomputation would produce bitwise-identical artifacts.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ArtifactKey {
    descriptor: String,
}

impl ArtifactKey {
    /// Key for a quality mesh of `die` under the given constraints.
    pub fn mesh(die: Rect, max_area_fraction: f64, min_angle_degrees: f64) -> ArtifactKey {
        let bb = die.bbox();
        ArtifactKey {
            descriptor: format!(
                "mesh|die={},{},{},{}|area-fraction={}|min-angle={}",
                f64_bits(bb.min.x),
                f64_bits(bb.min.y),
                f64_bits(bb.max.x),
                f64_bits(bb.max.y),
                f64_bits(max_area_fraction),
                f64_bits(min_angle_degrees),
            ),
        }
    }

    /// Key for the assembled Galerkin matrix: the mesh key plus the
    /// kernel's exact [`CovarianceKernel::cache_key`] and the quadrature
    /// rule.
    pub fn galerkin(mesh: &ArtifactKey, kernel_key: &str, rule: QuadratureRule) -> ArtifactKey {
        ArtifactKey {
            descriptor: format!(
                "galerkin|{}|kernel={kernel_key}|quadrature={}",
                mesh.descriptor,
                quadrature_tag(rule),
            ),
        }
    }

    /// Key for the computed spectrum: the Galerkin key plus the solver
    /// choice and eigenpair cap. The truncation criterion is deliberately
    /// excluded — rank selection is recomputed per query so criterion
    /// sweeps share one spectrum.
    pub fn spectrum(galerkin: &ArtifactKey, solver: EigenSolver, max_eigenpairs: usize) -> ArtifactKey {
        ArtifactKey {
            descriptor: format!(
                "spectrum|{}|solver={}|max-eigenpairs={max_eigenpairs}",
                galerkin.descriptor,
                solver_tag(solver),
            ),
        }
    }

    /// Key for a per-block hierarchical timing model: the spectrum key
    /// (the shared ξ basis the block's canonical forms are expressed
    /// over) plus the block's region hash — region rect × contained
    /// netlist arcs × gate-parameter bits, computed by the partition
    /// layer. An edit to one gate changes exactly one block's region
    /// hash, so exactly one block artifact re-keys.
    pub fn block(region_hash: u64, spectrum: &ArtifactKey) -> ArtifactKey {
        ArtifactKey {
            descriptor: format!(
                "block|{}|region={region_hash:016x}",
                spectrum.descriptor
            ),
        }
    }

    /// The full human-readable descriptor (the identity of the key).
    pub fn descriptor(&self) -> &str {
        &self.descriptor
    }

    /// FNV-1a fingerprint of the descriptor (compact disk file names).
    pub fn fingerprint(&self) -> u64 {
        fnv1a64(self.descriptor.as_bytes())
    }
}

// ---------------------------------------------------------------------------
// Artifact cache
// ---------------------------------------------------------------------------

/// One cached boundary-output arc set of a hierarchical block timing
/// model: the canonical-form terms arriving at one boundary-output
/// node, each term optionally anchored to a boundary-input origin whose
/// arrival is substituted at compose time.
///
/// This is the cache-level *data* representation — plain vectors of
/// exact f64 values — deliberately free of `klest-ssta` types so the
/// artifact cache can own its (de)serialization; the hierarchical
/// engine converts to and from its `CanonicalForm` algebra losslessly.
#[derive(Debug, Clone, PartialEq)]
pub struct BlockArc {
    /// The boundary-output node id this arc set times.
    pub node: u32,
    /// The terms, in the deterministic fold order the extraction pass
    /// produced them in.
    pub terms: Vec<BlockTerm>,
}

/// One term of a [`BlockArc`]: a canonical form (mean, per-ξ
/// sensitivities, independent residual), plus the boundary-input node
/// whose arrival it rides on (`None` for a block-local cone).
#[derive(Debug, Clone, PartialEq)]
pub struct BlockTerm {
    /// Boundary-input node id, or `None` when the term's cone is
    /// entirely inside the block.
    pub origin: Option<u32>,
    /// Mean of the canonical form.
    pub mean: f64,
    /// Sensitivities over the shared ξ basis (`dim` entries).
    pub sens: Vec<f64>,
    /// Independent residual magnitude.
    pub indep: f64,
}

/// A compressed per-block timing model over the shared KLE ξ basis:
/// boundary-input→boundary-output arcs as canonical-form terms, with
/// intra-block nodes eliminated. Produced by the hierarchical
/// extraction pass in `klest-ssta`, cached (memory + disk) here.
#[derive(Debug, Clone, PartialEq)]
pub struct BlockTimingModel {
    /// Dimension of the ξ sensitivity vectors (4 × KLE rank).
    pub dim: usize,
    /// One arc set per boundary-output node, ascending node id.
    pub outputs: Vec<BlockArc>,
}

/// Hit/miss totals per cache level (a point-in-time copy).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheSnapshot {
    /// Mesh-level hits.
    pub mesh_hits: u64,
    /// Mesh-level misses.
    pub mesh_misses: u64,
    /// Galerkin-matrix hits.
    pub galerkin_hits: u64,
    /// Galerkin-matrix misses.
    pub galerkin_misses: u64,
    /// Spectrum hits.
    pub spectrum_hits: u64,
    /// Spectrum misses.
    pub spectrum_misses: u64,
    /// Block-timing-model hits.
    pub block_hits: u64,
    /// Block-timing-model misses.
    pub block_misses: u64,
    /// Disk-layer store attempts that failed (tmp write, fsync or
    /// rename error, or a manifest append failure). Each one silently
    /// lost the persistent copy of an artifact.
    pub disk_write_failures: u64,
    /// Corrupted or torn disk entries renamed aside to `*.quarantine`
    /// instead of being silently recomputed over.
    pub quarantined: u64,
}

impl CacheSnapshot {
    /// Total hits across all levels.
    pub fn hits(&self) -> u64 {
        self.mesh_hits + self.galerkin_hits + self.spectrum_hits + self.block_hits
    }

    /// Total misses across all levels.
    pub fn misses(&self) -> u64 {
        self.mesh_misses + self.galerkin_misses + self.spectrum_misses + self.block_misses
    }
}

#[derive(Default)]
struct CacheStats {
    mesh_hits: AtomicU64,
    mesh_misses: AtomicU64,
    galerkin_hits: AtomicU64,
    galerkin_misses: AtomicU64,
    spectrum_hits: AtomicU64,
    spectrum_misses: AtomicU64,
    block_hits: AtomicU64,
    block_misses: AtomicU64,
    disk_write_failures: AtomicU64,
    quarantined: AtomicU64,
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    // A panicking holder can only have been between two plain HashMap
    // operations; the map is still structurally sound, so poisoning is
    // ignored rather than propagated.
    match m.lock() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    }
}

fn bump(counter: &AtomicU64, obs_name: &str) {
    counter.fetch_add(1, Ordering::Relaxed);
    if klest_obs::enabled() {
        klest_obs::counter_add(obs_name, 1);
    }
}

/// Content-addressed store for front-end artifacts: meshes, assembled
/// Galerkin matrices and computed spectra, keyed by [`ArtifactKey`].
///
/// Always holds an in-memory layer (shared `Arc`s, zero-copy hits).
/// [`ArtifactCache::with_disk`] adds an on-disk layer for meshes and
/// spectra — the two artifacts worth persisting across processes; the
/// O(n²) matrix is deliberately memory-only since a spectrum hit already
/// skips assembly — with fsynced tmp-file + rename writes and exact-bits
/// float encoding. A disk problem never fails a pipeline, but it is no
/// longer silent either:
///
/// - every successful store appends an fsynced, generation-stamped
///   record (`entry <gen> <file> <fnv1a64> <len>`) to a `manifest.log`
///   journal in the cache directory; [`ArtifactCache::with_disk`]
///   replays the journal on open and validates recorded checksums,
/// - a corrupted or torn entry — checksum mismatch against the
///   manifest, or an unparseable artifact at read time — is
///   **quarantined**: renamed aside to `<file>.quarantine` and counted
///   ([`CacheSnapshot::quarantined`], obs `pipeline.cache.quarantined`)
///   so recurring corruption is visible instead of masked by silent
///   recomputes,
/// - a failed store (tmp write, fsync, rename or manifest append) is
///   counted in [`CacheSnapshot::disk_write_failures`] (obs
///   `pipeline.cache.disk_write_failures`).
///
/// Hits and misses are counted per level ([`ArtifactCache::snapshot`])
/// and mirrored to the obs counters
/// `pipeline.cache.{mesh,galerkin,spectrum}.{hits,misses}`.
pub struct ArtifactCache {
    meshes: Mutex<HashMap<String, Arc<Mesh>>>,
    matrices: Mutex<HashMap<String, Arc<Matrix>>>,
    spectra: Mutex<HashMap<String, Arc<GalerkinKle>>>,
    blocks: Mutex<HashMap<String, Arc<BlockTimingModel>>>,
    disk_dir: Option<PathBuf>,
    /// Latest journalled `(checksum, byte length)` per cache filename.
    manifest: Mutex<HashMap<String, (u64, u64)>>,
    /// Next generation stamp for manifest appends (continues past the
    /// largest generation replayed from an existing journal).
    manifest_generation: AtomicU64,
    stats: CacheStats,
}

impl Default for ArtifactCache {
    fn default() -> Self {
        Self::new()
    }
}

impl ArtifactCache {
    /// An in-memory cache (per-process; shared by reference).
    pub fn new() -> ArtifactCache {
        ArtifactCache {
            meshes: Mutex::new(HashMap::new()),
            matrices: Mutex::new(HashMap::new()),
            spectra: Mutex::new(HashMap::new()),
            blocks: Mutex::new(HashMap::new()),
            disk_dir: None,
            manifest: Mutex::new(HashMap::new()),
            manifest_generation: AtomicU64::new(0),
            stats: CacheStats::default(),
        }
    }

    /// An in-memory cache backed by an on-disk layer under `dir`
    /// (created on first store). Replays the `manifest.log` journal if
    /// one exists and validates every recorded entry whose file is
    /// present: a checksum or length mismatch quarantines the file
    /// immediately, so a crash-torn cache is cleaned at open rather
    /// than discovered lookup by lookup.
    pub fn with_disk<P: Into<PathBuf>>(dir: P) -> ArtifactCache {
        let mut cache = Self::new();
        let dir = dir.into();
        let (entries, next_generation) = load_manifest(&dir.join(MANIFEST_NAME));
        cache.manifest = Mutex::new(entries);
        cache.manifest_generation = AtomicU64::new(next_generation);
        cache.disk_dir = Some(dir);
        cache.validate_manifest_on_open();
        cache
    }

    /// The disk directory, when the on-disk layer is enabled.
    pub fn disk_dir(&self) -> Option<&Path> {
        self.disk_dir.as_deref()
    }

    /// Point-in-time hit/miss totals.
    pub fn snapshot(&self) -> CacheSnapshot {
        CacheSnapshot {
            mesh_hits: self.stats.mesh_hits.load(Ordering::Relaxed),
            mesh_misses: self.stats.mesh_misses.load(Ordering::Relaxed),
            galerkin_hits: self.stats.galerkin_hits.load(Ordering::Relaxed),
            galerkin_misses: self.stats.galerkin_misses.load(Ordering::Relaxed),
            spectrum_hits: self.stats.spectrum_hits.load(Ordering::Relaxed),
            spectrum_misses: self.stats.spectrum_misses.load(Ordering::Relaxed),
            block_hits: self.stats.block_hits.load(Ordering::Relaxed),
            block_misses: self.stats.block_misses.load(Ordering::Relaxed),
            disk_write_failures: self.stats.disk_write_failures.load(Ordering::Relaxed),
            quarantined: self.stats.quarantined.load(Ordering::Relaxed),
        }
    }

    /// Number of entries in each memory layer, in
    /// `(mesh, galerkin, spectrum, block)` order — the "cache sizes" a
    /// stats endpoint reports. Disk entries are not walked.
    pub fn memory_sizes(&self) -> (usize, usize, usize, usize) {
        (
            lock(&self.meshes).len(),
            lock(&self.matrices).len(),
            lock(&self.spectra).len(),
            lock(&self.blocks).len(),
        )
    }

    /// Looks up a mesh (memory first, then disk when enabled).
    pub fn lookup_mesh(&self, key: &ArtifactKey) -> Option<Arc<Mesh>> {
        if let Some(hit) = lock(&self.meshes).get(key.descriptor()).cloned() {
            bump(&self.stats.mesh_hits, "pipeline.cache.mesh.hits");
            return Some(hit);
        }
        if let Some(mesh) = self.disk_load_mesh(key) {
            let mesh = Arc::new(mesh);
            lock(&self.meshes).insert(key.descriptor().to_string(), Arc::clone(&mesh));
            bump(&self.stats.mesh_hits, "pipeline.cache.mesh.hits");
            return Some(mesh);
        }
        bump(&self.stats.mesh_misses, "pipeline.cache.mesh.misses");
        None
    }

    /// Stores a mesh under `key` (and on disk when enabled; polygonal
    /// dies stay memory-only — their boundary is not serialized).
    pub fn store_mesh(&self, key: &ArtifactKey, mesh: Arc<Mesh>) {
        if mesh.boundary().is_none() {
            self.disk_store(key, "mesh", &serialize_mesh(key, &mesh));
        }
        lock(&self.meshes).insert(key.descriptor().to_string(), mesh);
    }

    /// Looks up an assembled Galerkin matrix (memory-only level).
    pub fn lookup_galerkin(&self, key: &ArtifactKey) -> Option<Arc<Matrix>> {
        match lock(&self.matrices).get(key.descriptor()).cloned() {
            Some(hit) => {
                bump(&self.stats.galerkin_hits, "pipeline.cache.galerkin.hits");
                Some(hit)
            }
            None => {
                bump(&self.stats.galerkin_misses, "pipeline.cache.galerkin.misses");
                None
            }
        }
    }

    /// Stores an assembled Galerkin matrix under `key`.
    pub fn store_galerkin(&self, key: &ArtifactKey, matrix: Arc<Matrix>) {
        lock(&self.matrices).insert(key.descriptor().to_string(), matrix);
    }

    /// Looks up a computed spectrum (memory first, then disk).
    pub fn lookup_spectrum(&self, key: &ArtifactKey) -> Option<Arc<GalerkinKle>> {
        if let Some(hit) = lock(&self.spectra).get(key.descriptor()).cloned() {
            bump(&self.stats.spectrum_hits, "pipeline.cache.spectrum.hits");
            return Some(hit);
        }
        if let Some(kle) = self.disk_load_spectrum(key) {
            let kle = Arc::new(kle);
            lock(&self.spectra).insert(key.descriptor().to_string(), Arc::clone(&kle));
            bump(&self.stats.spectrum_hits, "pipeline.cache.spectrum.hits");
            return Some(kle);
        }
        bump(&self.stats.spectrum_misses, "pipeline.cache.spectrum.misses");
        None
    }

    /// Non-counting warm probe: is a spectrum for `key` already present
    /// in the memory layer or on disk? Unlike
    /// [`lookup_spectrum`](Self::lookup_spectrum) this touches no hit /
    /// miss counters and deserializes nothing — it is the cheap
    /// "will this query be warm?" predicate a serving layer uses to
    /// classify request latencies without perturbing cache statistics.
    /// (Disk presence is a file-existence check; a torn file still
    /// counts as cold at lookup time.)
    pub fn peek_spectrum(&self, key: &ArtifactKey) -> bool {
        if lock(&self.spectra).contains_key(key.descriptor()) {
            return true;
        }
        self.disk_path(key, "kle")
            .is_some_and(|p| p.exists())
    }

    /// Non-counting warm probe for the mesh layer; same contract as
    /// [`peek_spectrum`](Self::peek_spectrum).
    pub fn peek_mesh(&self, key: &ArtifactKey) -> bool {
        if lock(&self.meshes).contains_key(key.descriptor()) {
            return true;
        }
        self.disk_path(key, "mesh").is_some_and(|p| p.exists())
    }

    /// Non-counting warm probe for the Galerkin-matrix layer (memory
    /// only — matrices have no disk layer); same contract as
    /// [`peek_spectrum`](Self::peek_spectrum).
    pub fn peek_galerkin(&self, key: &ArtifactKey) -> bool {
        lock(&self.matrices).contains_key(key.descriptor())
    }

    /// Stores a computed spectrum under `key` (and on disk when enabled).
    pub fn store_spectrum(&self, key: &ArtifactKey, kle: Arc<GalerkinKle>) {
        self.disk_store(key, "kle", &serialize_spectrum(key, &kle));
        lock(&self.spectra).insert(key.descriptor().to_string(), kle);
    }

    /// Looks up a hierarchical block timing model (memory first, then
    /// disk). Counted in [`CacheSnapshot::block_hits`] /
    /// [`CacheSnapshot::block_misses`] and mirrored to the obs counters
    /// `pipeline.cache.block.{hits,misses}`.
    pub fn lookup_block(&self, key: &ArtifactKey) -> Option<Arc<BlockTimingModel>> {
        if let Some(hit) = lock(&self.blocks).get(key.descriptor()).cloned() {
            bump(&self.stats.block_hits, "pipeline.cache.block.hits");
            return Some(hit);
        }
        if let Some(model) = self.disk_load_block(key) {
            let model = Arc::new(model);
            lock(&self.blocks).insert(key.descriptor().to_string(), Arc::clone(&model));
            bump(&self.stats.block_hits, "pipeline.cache.block.hits");
            return Some(model);
        }
        bump(&self.stats.block_misses, "pipeline.cache.block.misses");
        None
    }

    /// Non-counting warm probe for the block-model layer; same contract
    /// as [`peek_spectrum`](Self::peek_spectrum).
    pub fn peek_block(&self, key: &ArtifactKey) -> bool {
        if lock(&self.blocks).contains_key(key.descriptor()) {
            return true;
        }
        self.disk_path(key, "block").is_some_and(|p| p.exists())
    }

    /// Stores a block timing model under `key` (and on disk when
    /// enabled), with the same journaled-manifest discipline as the
    /// other disk artifacts.
    pub fn store_block(&self, key: &ArtifactKey, model: Arc<BlockTimingModel>) {
        self.disk_store(key, "block", &serialize_block(key, &model));
        lock(&self.blocks).insert(key.descriptor().to_string(), model);
    }

    fn disk_path(&self, key: &ArtifactKey, ext: &str) -> Option<PathBuf> {
        self.disk_dir
            .as_ref()
            .map(|d| d.join(format!("{:016x}.{ext}", key.fingerprint())))
    }

    fn disk_store(&self, key: &ArtifactKey, ext: &str, content: &str) {
        let Some(path) = self.disk_path(key, ext) else {
            return;
        };
        let Some(dir) = path.parent() else { return };
        // Best effort throughout: a read-only or full disk must never
        // fail the pipeline, it just loses the persistent layer — but
        // every lost write is counted (`disk_write_failures`), never
        // silently dropped.
        if std::fs::create_dir_all(dir).is_err() {
            self.count_write_failure();
            return;
        }
        // Crash safety: write to a tmp name unique per process *and*
        // writer, fsync it, then atomically rename into place. A killed
        // or racing writer can therefore never leave a torn file at the
        // final path — readers see either the old complete artifact or
        // the new one. (A shared tmp name would let two concurrent
        // writers interleave bytes and rename a torn file into place.)
        static WRITE_SEQ: AtomicU64 = AtomicU64::new(0);
        let seq = WRITE_SEQ.fetch_add(1, Ordering::Relaxed);
        let tmp = path.with_extension(format!(
            "{ext}.tmp.{}.{seq}",
            std::process::id()
        ));
        if write_synced(&tmp, content).is_err() || std::fs::rename(&tmp, &path).is_err() {
            let _ = std::fs::remove_file(&tmp);
            self.count_write_failure();
            return;
        }
        fsync_dir(dir);
        self.manifest_append(&path, content);
    }

    fn count_write_failure(&self) {
        bump(
            &self.stats.disk_write_failures,
            "pipeline.cache.disk_write_failures",
        );
    }

    /// Journals a completed store: one fsynced, generation-stamped
    /// record per write. The journal is append-only; the newest record
    /// per filename wins on replay.
    fn manifest_append(&self, path: &Path, content: &str) {
        let (Some(dir), Some(name)) = (
            self.disk_dir.as_deref(),
            path.file_name().and_then(|n| n.to_str()),
        ) else {
            return;
        };
        let generation = self.manifest_generation.fetch_add(1, Ordering::Relaxed);
        let checksum = fnv1a64(content.as_bytes());
        let len = content.len() as u64;
        let line = format!("entry {generation} {name} {checksum:016x} {len}\n");
        let appended = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(dir.join(MANIFEST_NAME))
            .and_then(|mut f| {
                use std::io::Write as _;
                f.write_all(line.as_bytes())?;
                f.sync_all()
            });
        if appended.is_err() {
            // The artifact itself landed; only its journal record is
            // lost (it will be re-validated as unrecorded-but-parseable
            // on the next open). Still a disk write failure.
            self.count_write_failure();
            return;
        }
        lock(&self.manifest).insert(name.to_string(), (checksum, len));
    }

    /// Renames a corrupt or torn entry aside to `<file>.quarantine`
    /// (preserving the evidence) and counts it; forgetting its manifest
    /// record so later lookups see a clean miss.
    fn quarantine(&self, path: &Path) {
        let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
            return;
        };
        let target = path.with_file_name(format!("{name}.quarantine"));
        if std::fs::rename(path, &target).is_ok() {
            bump(&self.stats.quarantined, "pipeline.cache.quarantined");
        }
        lock(&self.manifest).remove(name);
    }

    /// Open-time integrity pass: every journalled entry whose file is
    /// present must match its recorded checksum and length; a mismatch
    /// is quarantined now. Missing files are merely stale records.
    fn validate_manifest_on_open(&self) {
        let Some(dir) = self.disk_dir.as_deref() else { return };
        let recorded: Vec<(String, (u64, u64))> = lock(&self.manifest)
            .iter()
            .map(|(k, v)| (k.clone(), *v))
            .collect();
        for (name, (checksum, len)) in recorded {
            let path = dir.join(&name);
            let Ok(bytes) = std::fs::read(&path) else {
                continue;
            };
            if bytes.len() as u64 != len || fnv1a64(&bytes) != checksum {
                self.quarantine(&path);
            }
        }
    }

    /// Reads a disk entry, enforcing the manifest checksum when one is
    /// recorded. Returns `None` (after quarantining) on any mismatch.
    fn disk_read_validated(&self, path: &Path) -> Option<String> {
        let text = std::fs::read_to_string(path).ok()?;
        let name = path.file_name().and_then(|n| n.to_str())?;
        if let Some(&(checksum, len)) = lock(&self.manifest).get(name) {
            if text.len() as u64 != len || fnv1a64(text.as_bytes()) != checksum {
                self.quarantine(path);
                return None;
            }
        }
        Some(text)
    }

    fn disk_load_mesh(&self, key: &ArtifactKey) -> Option<Mesh> {
        let path = self.disk_path(key, "mesh")?;
        let text = self.disk_read_validated(&path)?;
        match deserialize_mesh(key, &text) {
            Some(mesh) => Some(mesh),
            None => {
                self.quarantine(&path);
                None
            }
        }
    }

    fn disk_load_spectrum(&self, key: &ArtifactKey) -> Option<GalerkinKle> {
        let path = self.disk_path(key, "kle")?;
        let text = self.disk_read_validated(&path)?;
        match deserialize_spectrum(key, &text) {
            Some(kle) => Some(kle),
            None => {
                self.quarantine(&path);
                None
            }
        }
    }

    fn disk_load_block(&self, key: &ArtifactKey) -> Option<BlockTimingModel> {
        let path = self.disk_path(key, "block")?;
        let text = self.disk_read_validated(&path)?;
        match deserialize_block(key, &text) {
            Some(model) => Some(model),
            None => {
                self.quarantine(&path);
                None
            }
        }
    }
}

/// Name of the append-only store journal inside a disk cache directory.
const MANIFEST_NAME: &str = "manifest.log";

/// Writes `content` to `path` and fsyncs the file before returning.
fn write_synced(path: &Path, content: &str) -> std::io::Result<()> {
    use std::io::Write as _;
    let mut file = std::fs::File::create(path)?;
    file.write_all(content.as_bytes())?;
    file.sync_all()
}

/// Best-effort directory fsync so a completed rename survives a crash.
fn fsync_dir(dir: &Path) {
    if let Ok(handle) = std::fs::File::open(dir) {
        let _ = handle.sync_all();
    }
}

/// Replays a `manifest.log` journal. Malformed lines — including a
/// torn final append — are skipped; later records supersede earlier
/// ones for the same filename. Returns the surviving entries and the
/// next free generation stamp.
fn load_manifest(path: &Path) -> (HashMap<String, (u64, u64)>, u64) {
    let mut entries = HashMap::new();
    let mut next_generation = 0u64;
    let Ok(text) = std::fs::read_to_string(path) else {
        return (entries, next_generation);
    };
    for line in text.lines() {
        let Some(rest) = line.strip_prefix("entry ") else {
            continue;
        };
        let mut it = rest.split_whitespace();
        let (Some(generation), Some(name), Some(checksum), Some(len)) =
            (it.next(), it.next(), it.next(), it.next())
        else {
            continue;
        };
        // Strict shape: exactly four fields, checksum exactly 16 hex
        // digits — a torn tail merged with a later append fails both.
        if it.next().is_some() || checksum.len() != 16 {
            continue;
        }
        let (Ok(generation), Ok(checksum), Ok(len)) = (
            generation.parse::<u64>(),
            u64::from_str_radix(checksum, 16),
            len.parse::<u64>(),
        ) else {
            continue;
        };
        next_generation = next_generation.max(generation + 1);
        entries.insert(name.to_string(), (checksum, len));
    }
    (entries, next_generation)
}

const MESH_HEADER: &str = "klest-cache/mesh/v1";
const SPECTRUM_HEADER: &str = "klest-cache/kle/v1";
const BLOCK_HEADER: &str = "klest-cache/block/v1";

fn serialize_mesh(key: &ArtifactKey, mesh: &Mesh) -> String {
    let bb = mesh.domain().bbox();
    let mut out = String::new();
    out.push_str(MESH_HEADER);
    out.push('\n');
    out.push_str(key.descriptor());
    out.push('\n');
    out.push_str(&format!(
        "die {} {} {} {}\n",
        f64_bits(bb.min.x),
        f64_bits(bb.min.y),
        f64_bits(bb.max.x),
        f64_bits(bb.max.y)
    ));
    out.push_str(&format!("points {}\n", mesh.points().len()));
    for p in mesh.points() {
        out.push_str(&format!("{} {}\n", f64_bits(p.x), f64_bits(p.y)));
    }
    out.push_str(&format!("triangles {}\n", mesh.len()));
    for &[a, b, c] in mesh.triangle_indices() {
        out.push_str(&format!("{a} {b} {c}\n"));
    }
    out
}

fn deserialize_mesh(key: &ArtifactKey, text: &str) -> Option<Mesh> {
    let mut lines = text.lines();
    if lines.next()? != MESH_HEADER || lines.next()? != key.descriptor() {
        return None;
    }
    let die_line = lines.next()?;
    let mut it = die_line.strip_prefix("die ")?.split_whitespace();
    let (minx, miny, maxx, maxy) = (
        parse_f64_bits(it.next()?)?,
        parse_f64_bits(it.next()?)?,
        parse_f64_bits(it.next()?)?,
        parse_f64_bits(it.next()?)?,
    );
    let n_points: usize = lines.next()?.strip_prefix("points ")?.parse().ok()?;
    let mut points = Vec::with_capacity(n_points);
    for _ in 0..n_points {
        let mut it = lines.next()?.split_whitespace();
        points.push(Point2::new(
            parse_f64_bits(it.next()?)?,
            parse_f64_bits(it.next()?)?,
        ));
    }
    let n_tris: usize = lines.next()?.strip_prefix("triangles ")?.parse().ok()?;
    let mut triangles = Vec::with_capacity(n_tris);
    for _ in 0..n_tris {
        let mut it = lines.next()?.split_whitespace();
        triangles.push([
            it.next()?.parse().ok()?,
            it.next()?.parse().ok()?,
            it.next()?.parse().ok()?,
        ]);
    }
    // from_parts recomputes centroids/areas through the same arithmetic
    // the builder used, so the roundtrip is bitwise faithful.
    Mesh::from_parts(
        Rect::new(Point2::new(minx, miny), Point2::new(maxx, maxy)),
        points,
        triangles,
    )
    .ok()
}

fn push_f64_line(out: &mut String, values: impl Iterator<Item = f64>) {
    let mut first = true;
    for v in values {
        if !first {
            out.push(' ');
        }
        first = false;
        out.push_str(&f64_bits(v));
    }
    out.push('\n');
}

fn serialize_spectrum(key: &ArtifactKey, kle: &GalerkinKle) -> String {
    let d = kle.d_matrix();
    let mut out = String::new();
    out.push_str(SPECTRUM_HEADER);
    out.push('\n');
    out.push_str(key.descriptor());
    out.push('\n');
    out.push_str(&format!("trace {}\n", f64_bits(kle.trace())));
    out.push_str(&format!("eigenvalues {}\n", kle.eigenvalues().len()));
    push_f64_line(&mut out, kle.eigenvalues().iter().copied());
    out.push_str(&format!("d {} {}\n", d.rows(), d.cols()));
    push_f64_line(&mut out, d.as_slice().iter().copied());
    out.push_str(&format!("areas {}\n", kle.areas().len()));
    push_f64_line(&mut out, kle.areas().iter().copied());
    out.push_str(&format!("centroids {}\n", kle.centroids().len()));
    push_f64_line(
        &mut out,
        kle.centroids().iter().flat_map(|p| [p.x, p.y]),
    );
    out
}

fn parse_f64_line(line: &str, expect: usize) -> Option<Vec<f64>> {
    let values: Option<Vec<f64>> = line.split_whitespace().map(parse_f64_bits).collect();
    let values = values?;
    (values.len() == expect).then_some(values)
}

fn deserialize_spectrum(key: &ArtifactKey, text: &str) -> Option<GalerkinKle> {
    let mut lines = text.lines();
    if lines.next()? != SPECTRUM_HEADER || lines.next()? != key.descriptor() {
        return None;
    }
    let trace = parse_f64_bits(lines.next()?.strip_prefix("trace ")?)?;
    let n_eig: usize = lines.next()?.strip_prefix("eigenvalues ")?.parse().ok()?;
    let eigenvalues = parse_f64_line(lines.next()?, n_eig)?;
    let mut dims = lines.next()?.strip_prefix("d ")?.split_whitespace();
    let rows: usize = dims.next()?.parse().ok()?;
    let cols: usize = dims.next()?.parse().ok()?;
    let d = Matrix::from_vec(rows, cols, parse_f64_line(lines.next()?, rows * cols)?).ok()?;
    let n_areas: usize = lines.next()?.strip_prefix("areas ")?.parse().ok()?;
    let areas = parse_f64_line(lines.next()?, n_areas)?;
    let n_cent: usize = lines.next()?.strip_prefix("centroids ")?.parse().ok()?;
    let flat = parse_f64_line(lines.next()?, 2 * n_cent)?;
    let centroids: Vec<Point2> = flat.chunks(2).map(|c| Point2::new(c[0], c[1])).collect();
    if rows != n_areas || n_areas != n_cent {
        return None;
    }
    Some(GalerkinKle::from_raw(eigenvalues, d, areas, centroids, trace))
}

fn serialize_block(key: &ArtifactKey, model: &BlockTimingModel) -> String {
    let mut out = String::new();
    out.push_str(BLOCK_HEADER);
    out.push('\n');
    out.push_str(key.descriptor());
    out.push('\n');
    out.push_str(&format!("dim {} outputs {}\n", model.dim, model.outputs.len()));
    for arc in &model.outputs {
        out.push_str(&format!("output {} {}\n", arc.node, arc.terms.len()));
        for term in &arc.terms {
            match term.origin {
                Some(o) => out.push_str(&format!("term {o} ")),
                None => out.push_str("term - "),
            }
            out.push_str(&format!(
                "{} {}\n",
                f64_bits(term.mean),
                f64_bits(term.indep)
            ));
            push_f64_line(&mut out, term.sens.iter().copied());
        }
    }
    out
}

fn deserialize_block(key: &ArtifactKey, text: &str) -> Option<BlockTimingModel> {
    let mut lines = text.lines();
    if lines.next()? != BLOCK_HEADER || lines.next()? != key.descriptor() {
        return None;
    }
    let mut it = lines.next()?.strip_prefix("dim ")?.split_whitespace();
    let dim: usize = it.next()?.parse().ok()?;
    if it.next()? != "outputs" {
        return None;
    }
    let n_outputs: usize = it.next()?.parse().ok()?;
    let mut outputs = Vec::with_capacity(n_outputs);
    for _ in 0..n_outputs {
        let mut it = lines.next()?.strip_prefix("output ")?.split_whitespace();
        let node: u32 = it.next()?.parse().ok()?;
        let n_terms: usize = it.next()?.parse().ok()?;
        let mut terms = Vec::with_capacity(n_terms);
        for _ in 0..n_terms {
            let mut it = lines.next()?.strip_prefix("term ")?.split_whitespace();
            let origin = match it.next()? {
                "-" => None,
                o => Some(o.parse::<u32>().ok()?),
            };
            let mean = parse_f64_bits(it.next()?)?;
            let indep = parse_f64_bits(it.next()?)?;
            let sens = parse_f64_line(lines.next()?, dim)?;
            terms.push(BlockTerm {
                origin,
                mean,
                sens,
                indep,
            });
        }
        outputs.push(BlockArc { node, terms });
    }
    Some(BlockTimingModel { dim, outputs })
}

// ---------------------------------------------------------------------------
// The canonical front-end dataflow
// ---------------------------------------------------------------------------

/// Configuration for [`run_frontend`] — everything that shapes the mesh,
/// the expansion and the truncation decision.
#[derive(Debug, Clone)]
pub struct FrontEndConfig {
    /// The die region.
    pub die: Rect,
    /// Maximum triangle area as a fraction of the die area (the paper's
    /// 0.1% is `0.001`).
    pub max_area_fraction: f64,
    /// Minimum-angle mesh quality constraint, degrees (paper: 28°).
    pub min_angle_degrees: f64,
    /// KLE solve options (quadrature, solver, eigenpair cap, assembly
    /// threads).
    pub options: KleOptions,
    /// Truncation criterion for rank selection.
    pub criterion: TruncationCriterion,
    /// Mesh degradation ladder: multipliers on `max_area_fraction` tried
    /// in order when a supervised mesh build's budget trips. `[1.0]`
    /// (the default) disables coarsening; the historical supervised
    /// ladder is `[1.0, 4.0, 16.0]`. Plain policies only ever use the
    /// first rung.
    pub mesh_ladder: Vec<f64>,
}

impl FrontEndConfig {
    /// A config on the unit die with default options, no ladder.
    pub fn new(
        max_area_fraction: f64,
        min_angle_degrees: f64,
        criterion: TruncationCriterion,
    ) -> FrontEndConfig {
        FrontEndConfig {
            die: Rect::unit_die(),
            max_area_fraction,
            min_angle_degrees,
            options: KleOptions::default(),
            criterion,
            mesh_ladder: vec![1.0],
        }
    }

    /// The historical supervised coarsening ladder (4× per rung, two
    /// fallback rungs).
    pub fn with_supervised_ladder(mut self) -> FrontEndConfig {
        self.mesh_ladder = vec![1.0, 4.0, 16.0];
        self
    }
}

/// One recorded mesh coarsening (a ladder rung whose budget tripped).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MeshCoarsening {
    /// The area fraction that could not be meshed in budget.
    pub from_area_fraction: f64,
    /// The coarser fraction tried next.
    pub to_area_fraction: f64,
}

/// Everything the front end produces: artifacts are `Arc`-shared so MC
/// arms and cache all reference one copy.
#[derive(Debug, Clone)]
pub struct FrontEndOutcome {
    /// The die mesh.
    pub mesh: Arc<Mesh>,
    /// The computed expansion.
    pub kle: Arc<GalerkinKle>,
    /// Truncation rank selected by the criterion.
    pub rank: usize,
    /// Did the rank genuinely meet the criterion's tail budget?
    pub budget_met: bool,
    /// Mesh-ladder coarsenings applied (empty on the happy path).
    pub coarsenings: Vec<MeshCoarsening>,
    /// Wall time of the front end (near zero on a warm spectrum hit).
    pub setup_time: Duration,
}

/// Typed front-end failure.
#[derive(Debug)]
pub enum FrontEndError {
    /// Meshing failed (including a ladder that ran out of rungs).
    Mesh(MeshError),
    /// Assembly or the eigensolve failed (including cancellation).
    Kle(KleError),
}

impl std::fmt::Display for FrontEndError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrontEndError::Mesh(e) => write!(f, "meshing failed: {e}"),
            FrontEndError::Kle(e) => write!(f, "KLE failed: {e}"),
        }
    }
}

impl std::error::Error for FrontEndError {}

/// Runs the canonical KLE front end — mesh → Galerkin assembly →
/// eigensolve → truncation — under `policy`, consulting `cache` between
/// stages when given.
///
/// Contracts:
///
/// - With [`ExecPolicy::Plain`] and no cache this is bitwise identical
///   to the historical strict path (`MeshBuilder` + `GalerkinKle::compute`).
/// - With [`ExecPolicy::Supervised`] the mesh runs under per-rung `mesh`
///   budget children (retrying on the config's coarsening ladder), and
///   assembly + eigensolve share one `eigen` budget child — the
///   historical `build_supervised` semantics. With an untripped
///   unlimited token and empty budgets, outputs equal the plain path
///   bitwise.
/// - A warm spectrum hit skips mesh build, assembly *and* eigensolve
///   entirely (observable via the `pipeline.cache.*` counters and the
///   absence of the corresponding spans); a mesh or matrix hit skips
///   just its own stage. Artifacts returned from cache are bitwise
///   equal to recomputation.
/// - Kernels with no [`CovarianceKernel::cache_key`] bypass the cache.
///
/// # Errors
///
/// [`FrontEndError`] from meshing (including cancellation after the last
/// ladder rung) or from assembly / eigensolve.
pub fn run_frontend<K: CovarianceKernel + ?Sized>(
    kernel: &K,
    config: &FrontEndConfig,
    policy: ExecPolicy<'_>,
    cache: Option<&ArtifactCache>,
) -> Result<FrontEndOutcome, FrontEndError> {
    let _span = klest_obs::span("kle");
    let started = Instant::now();
    let engine = Engine::new(policy);
    let kernel_key = kernel.cache_key();
    let ladder: &[f64] = if config.mesh_ladder.is_empty() {
        &[1.0]
    } else {
        &config.mesh_ladder
    };
    let supervised = engine.policy().is_supervised();
    let mut coarsenings = Vec::new();
    let mut built: Option<(Arc<Mesh>, Arc<GalerkinKle>)> = None;

    for (rung, factor) in ladder.iter().enumerate() {
        let fraction = config.max_area_fraction * factor;
        let keys = kernel_key.as_deref().map(|kk| {
            let mesh_key = ArtifactKey::mesh(config.die, fraction, config.min_angle_degrees);
            let galerkin_key = ArtifactKey::galerkin(&mesh_key, kk, config.options.quadrature);
            let spectrum_key = ArtifactKey::spectrum(
                &galerkin_key,
                config.options.solver,
                config.options.max_eigenpairs,
            );
            (mesh_key, galerkin_key, spectrum_key)
        });
        let keyed_cache = match (cache, &keys) {
            (Some(cache), Some(keys)) => Some((cache, keys)),
            _ => None,
        };

        // Stage 1: mesh (cache, or build under a fresh per-rung `mesh`
        // budget child — each ladder rung restarts the budget clock).
        let mesh_stage = MeshStage {
            die: config.die,
            max_area_fraction: fraction,
            min_angle_degrees: config.min_angle_degrees,
        };
        let cached_mesh = keyed_cache.and_then(|(c, (mk, _, _))| c.lookup_mesh(mk));
        let mesh = match cached_mesh {
            Some(mesh) => mesh,
            None => match engine.exec(&mesh_stage, ()) {
                Ok(mesh) => {
                    let mesh = Arc::new(mesh);
                    if let Some((c, (mk, _, _))) = keyed_cache {
                        c.store_mesh(mk, Arc::clone(&mesh));
                    }
                    mesh
                }
                Err(MeshError::Cancelled(c)) => {
                    // Parent dead or ladder exhausted: give up, typed.
                    if !supervised
                        || engine.policy().parent_cancelled()
                        || rung + 1 == ladder.len()
                    {
                        return Err(FrontEndError::Mesh(MeshError::Cancelled(c)));
                    }
                    coarsenings.push(MeshCoarsening {
                        from_area_fraction: fraction,
                        to_area_fraction: config.max_area_fraction * ladder[rung + 1],
                    });
                    continue;
                }
                Err(e) => return Err(FrontEndError::Mesh(e)),
            },
        };

        // Stages 2+3: spectrum (cache, or assemble + eigensolve sharing
        // one `eigen` budget window, as `build_supervised` always did).
        let cached_kle = keyed_cache.and_then(|(c, (_, _, sk))| c.lookup_spectrum(sk));
        let kle = match cached_kle {
            Some(kle) => kle,
            None => {
                let eigen_token = engine.policy().stage_token(Some("eigen"));
                let kle = if matches!(config.options.solver, EigenSolver::MatrixFree { .. }) {
                    // Matrix-free: no assembly stage runs, and the O(n²)
                    // Galerkin artifact is neither looked up nor stored —
                    // nothing n×n may exist anywhere on this path.
                    let eigensolve = MatrixFreeEigensolveStage {
                        kernel,
                        options: config.options,
                    };
                    engine
                        .exec_with(&eigensolve, &*mesh, eigen_token.as_ref())
                        .map_err(FrontEndError::Kle)?
                } else {
                    let assemble = AssembleStage {
                        kernel,
                        quadrature: config.options.quadrature,
                        threads: config.options.assembly_threads,
                    };
                    let cached_matrix =
                        keyed_cache.and_then(|(c, (_, gk, _))| c.lookup_galerkin(gk));
                    let matrix = match cached_matrix {
                        Some(matrix) => (*matrix).clone(),
                        None => {
                            let matrix = engine
                                .exec_with(&assemble, &*mesh, eigen_token.as_ref())
                                .map_err(FrontEndError::Kle)?;
                            if let Some((c, (_, gk, _))) = keyed_cache {
                                c.store_galerkin(gk, Arc::new(matrix.clone()));
                            }
                            matrix
                        }
                    };
                    let eigensolve = EigensolveStage {
                        options: config.options,
                    };
                    engine
                        .exec_with(&eigensolve, (matrix, &*mesh), eigen_token.as_ref())
                        .map_err(FrontEndError::Kle)?
                };
                let kle = Arc::new(kle);
                if let Some((c, (_, _, sk))) = keyed_cache {
                    c.store_spectrum(sk, Arc::clone(&kle));
                }
                kle
            }
        };
        built = Some((mesh, kle));
        break;
    }

    let (mesh, kle) = match built {
        Some(pair) => pair,
        // Unreachable: every ladder arm either sets the pair or returns,
        // but stay typed rather than panic.
        None => {
            return Err(FrontEndError::Mesh(MeshError::Cancelled(Cancelled {
                stage: "mesh/refine",
                completed: 0,
                budget: engine.policy().budget_limit("mesh"),
            })))
        }
    };

    // Stage 4: truncation — always recomputed (cheap, criterion-local).
    let truncate = TruncateStage {
        criterion: config.criterion,
    };
    let (rank, budget_met) = match engine.exec(&truncate, &*kle) {
        Ok(pair) => pair,
        Err(never) => match never {},
    };
    Ok(FrontEndOutcome {
        mesh,
        kle,
        rank,
        budget_met,
        coarsenings,
        setup_time: started.elapsed(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use klest_kernels::GaussianKernel;

    fn coarse_config() -> FrontEndConfig {
        FrontEndConfig::new(0.05, 25.0, TruncationCriterion::new(40, 0.01))
    }

    #[test]
    fn plain_frontend_matches_historical_strict_path() {
        let kernel = GaussianKernel::new(1.5);
        let config = coarse_config();
        let out = run_frontend(&kernel, &config, ExecPolicy::Plain, None).unwrap();
        let mesh = MeshBuilder::new(Rect::unit_die())
            .max_area_fraction(0.05)
            .min_angle_degrees(25.0)
            .build()
            .unwrap();
        let kle = GalerkinKle::compute(&mesh, &kernel, KleOptions::default()).unwrap();
        assert_eq!(out.mesh.len(), mesh.len());
        assert_eq!(out.kle.eigenvalues(), kle.eigenvalues());
        let (rank, met) = kle.select_rank_checked(&config.criterion);
        assert_eq!(out.rank, rank);
        assert_eq!(out.budget_met, met);
        assert!(out.coarsenings.is_empty());
    }

    #[test]
    fn supervised_frontend_matches_plain_on_live_token() {
        let kernel = GaussianKernel::new(1.5);
        let config = coarse_config().with_supervised_ladder();
        let plain = run_frontend(&kernel, &config, ExecPolicy::Plain, None).unwrap();
        let token = CancelToken::unlimited();
        let budgets = StageBudgets::none();
        let sup = run_frontend(
            &kernel,
            &config,
            ExecPolicy::Supervised {
                token: &token,
                budgets: &budgets,
            },
            None,
        )
        .unwrap();
        assert_eq!(plain.mesh.len(), sup.mesh.len());
        assert_eq!(plain.kle.eigenvalues(), sup.kle.eigenvalues());
        assert_eq!(plain.rank, sup.rank);
        assert!(sup.coarsenings.is_empty());
    }

    #[test]
    fn pre_tripped_token_is_a_typed_mesh_cancellation() {
        let kernel = GaussianKernel::new(1.0);
        let config = coarse_config().with_supervised_ladder();
        let token = CancelToken::unlimited();
        token.cancel();
        let budgets = StageBudgets::none();
        match run_frontend(
            &kernel,
            &config,
            ExecPolicy::Supervised {
                token: &token,
                budgets: &budgets,
            },
            None,
        ) {
            Err(FrontEndError::Mesh(MeshError::Cancelled(_))) => {}
            other => panic!("expected mesh cancellation, got {other:?}"),
        }
    }

    #[test]
    fn warm_cache_skips_every_expensive_stage() {
        let kernel = GaussianKernel::new(1.5);
        let config = coarse_config();
        let cache = ArtifactCache::new();
        let cold = run_frontend(&kernel, &config, ExecPolicy::Plain, Some(&cache)).unwrap();
        let after_cold = cache.snapshot();
        assert_eq!(after_cold.hits(), 0);
        assert_eq!(after_cold.spectrum_misses, 1);
        let warm = run_frontend(&kernel, &config, ExecPolicy::Plain, Some(&cache)).unwrap();
        let after_warm = cache.snapshot();
        // Warm run: mesh + spectrum hits, no further galerkin lookups
        // (the spectrum hit short-circuits assembly and eigensolve).
        assert_eq!(after_warm.mesh_hits, 1);
        assert_eq!(after_warm.spectrum_hits, 1);
        assert_eq!(after_warm.galerkin_misses, after_cold.galerkin_misses);
        // And the artifacts are the *same allocation*, hence bitwise equal.
        assert!(Arc::ptr_eq(&cold.kle, &warm.kle));
        assert!(Arc::ptr_eq(&cold.mesh, &warm.mesh));
        assert_eq!(cold.rank, warm.rank);
    }

    #[test]
    fn key_perturbations_miss() {
        let die = Rect::unit_die();
        let base_mesh = ArtifactKey::mesh(die, 0.05, 25.0);
        let kernel = GaussianKernel::new(1.5);
        let kk = kernel.cache_key().unwrap();
        let base = ArtifactKey::galerkin(&base_mesh, &kk, QuadratureRule::Centroid);
        // One-ULP area change: different mesh key, hence different chain.
        let bumped_area = f64::from_bits(0.05f64.to_bits() + 1);
        assert_ne!(
            base_mesh,
            ArtifactKey::mesh(die, bumped_area, 25.0),
            "one-ULP max-area must change the key"
        );
        // Kernel parameter change.
        let other_kernel = GaussianKernel::new(1.5000001);
        assert_ne!(
            base,
            ArtifactKey::galerkin(&base_mesh, &other_kernel.cache_key().unwrap(), QuadratureRule::Centroid)
        );
        // Quadrature change.
        assert_ne!(
            base,
            ArtifactKey::galerkin(&base_mesh, &kk, QuadratureRule::ThreePoint)
        );
        // Solver / cap change at the spectrum level.
        let s = ArtifactKey::spectrum(&base, EigenSolver::Full, 200);
        assert_ne!(s, ArtifactKey::spectrum(&base, EigenSolver::Lanczos, 200));
        assert_ne!(s, ArtifactKey::spectrum(&base, EigenSolver::Full, 100));
    }

    #[test]
    fn fnv_is_the_reference_function() {
        // Reference vectors for 64-bit FNV-1a.
        assert_eq!(fnv1a64(b""), 0xcbf29ce484222325);
        assert_eq!(fnv1a64(b"a"), 0xaf63dc4c8601ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn disk_layer_roundtrips_bitwise() {
        let dir = std::env::temp_dir().join(format!(
            "klest-cache-test-{}-{:016x}",
            std::process::id(),
            fnv1a64(b"disk_layer_roundtrips_bitwise")
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let kernel = GaussianKernel::new(2.0);
        let config = coarse_config();
        let cold_cache = ArtifactCache::with_disk(&dir);
        let cold = run_frontend(&kernel, &config, ExecPolicy::Plain, Some(&cold_cache)).unwrap();
        // A *fresh* cache over the same directory: memory empty, disk warm.
        let warm_cache = ArtifactCache::with_disk(&dir);
        let warm = run_frontend(&kernel, &config, ExecPolicy::Plain, Some(&warm_cache)).unwrap();
        let snap = warm_cache.snapshot();
        assert_eq!(snap.mesh_hits, 1, "{snap:?}");
        assert_eq!(snap.spectrum_hits, 1, "{snap:?}");
        // Bitwise equality across the serialization boundary.
        assert_eq!(cold.kle.eigenvalues(), warm.kle.eigenvalues());
        assert!(cold.kle.d_matrix().as_slice() == warm.kle.d_matrix().as_slice());
        assert_eq!(cold.kle.areas(), warm.kle.areas());
        assert_eq!(cold.mesh.points(), warm.mesh.points());
        assert_eq!(cold.mesh.areas(), warm.mesh.areas());
        assert_eq!(cold.rank, warm.rank);
        // The store journal recorded every write, nothing was
        // quarantined on replay, and a healthy open flags no failures.
        let manifest = std::fs::read_to_string(dir.join("manifest.log")).unwrap();
        assert!(
            manifest.lines().filter(|l| l.starts_with("entry ")).count() >= 2,
            "manifest journal missing store records:\n{manifest}"
        );
        assert!(manifest.contains("entry 0 "), "{manifest}");
        let snap = warm_cache.snapshot();
        assert_eq!(snap.quarantined, 0, "{snap:?}");
        assert_eq!(snap.disk_write_failures, 0, "{snap:?}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn failed_disk_writes_are_counted_not_silent() {
        // Point the disk layer at a path that is a regular file, so
        // every store's create_dir_all fails. The pipeline must still
        // succeed — and every lost write must be counted.
        let blocker = std::env::temp_dir().join(format!(
            "klest-cache-test-{}-{:016x}",
            std::process::id(),
            fnv1a64(b"failed_disk_writes_are_counted_not_silent")
        ));
        std::fs::write(&blocker, "a file where the cache dir should be").unwrap();
        let cache = ArtifactCache::with_disk(&blocker);
        let kernel = GaussianKernel::new(1.5);
        let out =
            run_frontend(&kernel, &coarse_config(), ExecPolicy::Plain, Some(&cache)).unwrap();
        assert!(out.kle.eigenvalues()[0] > 0.0);
        let snap = cache.snapshot();
        // One failed store per persisted artifact level (mesh + kle).
        assert_eq!(snap.disk_write_failures, 2, "{snap:?}");
        let _ = std::fs::remove_file(&blocker);
    }

    #[test]
    fn corrupt_disk_entry_degrades_to_miss() {
        let dir = std::env::temp_dir().join(format!(
            "klest-cache-test-{}-{:016x}",
            std::process::id(),
            fnv1a64(b"corrupt_disk_entry_degrades_to_miss")
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let kernel = GaussianKernel::new(1.0);
        let config = coarse_config();
        let cache = ArtifactCache::with_disk(&dir);
        run_frontend(&kernel, &config, ExecPolicy::Plain, Some(&cache)).unwrap();
        // Truncate every cached file to garbage.
        for entry in std::fs::read_dir(&dir).unwrap() {
            std::fs::write(entry.unwrap().path(), "not a cache file").unwrap();
        }
        let fresh = ArtifactCache::with_disk(&dir);
        let out = run_frontend(&kernel, &config, ExecPolicy::Plain, Some(&fresh)).unwrap();
        assert!(out.kle.eigenvalues()[0] > 0.0);
        let snap = fresh.snapshot();
        assert_eq!(snap.spectrum_hits, 0, "{snap:?}");
        assert_eq!(snap.spectrum_misses, 1, "{snap:?}");
        // The corrupt mesh and spectrum were quarantined (renamed
        // aside), not silently recomputed over.
        assert_eq!(snap.quarantined, 2, "{snap:?}");
        let quarantined: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.path().to_string_lossy().ends_with(".quarantine"))
            .collect();
        assert_eq!(quarantined.len(), 2, "{quarantined:?}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_partial_file_is_miss_and_repaired_by_rewrite() {
        // Simulates a writer killed mid-write (or a pre-atomic-rename
        // torn write): the on-disk artifact is a strict prefix of a
        // valid file. The read path must treat it as a miss, recompute,
        // and the store path must repair it via tmp-file + atomic
        // rename so the next process gets a clean hit again.
        let dir = std::env::temp_dir().join(format!(
            "klest-cache-test-{}-{:016x}",
            std::process::id(),
            fnv1a64(b"torn_partial_file_is_miss_and_repaired_by_rewrite")
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let kernel = GaussianKernel::new(1.25);
        let config = coarse_config();
        let cold_cache = ArtifactCache::with_disk(&dir);
        let cold = run_frontend(&kernel, &config, ExecPolicy::Plain, Some(&cold_cache)).unwrap();
        // Tear every artifact: keep only the first half of the bytes.
        for entry in std::fs::read_dir(&dir).unwrap() {
            let path = entry.unwrap().path();
            let bytes = std::fs::read(&path).unwrap();
            assert!(bytes.len() > 16, "artifact unexpectedly tiny");
            std::fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();
        }
        // A fresh cache over the torn directory: every lookup is a miss
        // (never a panic, never a half-parsed artifact) ...
        let torn = ArtifactCache::with_disk(&dir);
        let mesh_key = ArtifactKey::mesh(config.die, config.max_area_fraction, config.min_angle_degrees);
        let galerkin_key = ArtifactKey::galerkin(
            &mesh_key,
            &kernel.cache_key().unwrap(),
            config.options.quadrature,
        );
        let spectrum_key = ArtifactKey::spectrum(
            &galerkin_key,
            config.options.solver,
            config.options.max_eigenpairs,
        );
        assert!(torn.lookup_mesh(&mesh_key).is_none(), "torn mesh must miss");
        assert!(
            torn.lookup_spectrum(&spectrum_key).is_none(),
            "torn spectrum must miss"
        );
        let snap = torn.snapshot();
        assert_eq!(snap.hits(), 0, "{snap:?}");
        // Both torn artifacts were quarantined — either at open (their
        // journalled checksum no longer matched) or at lookup (the
        // torn bytes failed to parse) — never silently skipped.
        assert_eq!(snap.quarantined, 2, "{snap:?}");
        assert!(
            std::fs::read_dir(&dir)
                .unwrap()
                .filter_map(|e| e.ok())
                .any(|e| e.path().to_string_lossy().ends_with(".quarantine")),
            "quarantined files must be preserved on disk"
        );
        // ... and a recompute through the same cache repairs the files.
        let repaired = run_frontend(&kernel, &config, ExecPolicy::Plain, Some(&torn)).unwrap();
        let fresh = ArtifactCache::with_disk(&dir);
        let warm = run_frontend(&kernel, &config, ExecPolicy::Plain, Some(&fresh)).unwrap();
        let snap = fresh.snapshot();
        assert_eq!(snap.mesh_hits, 1, "repaired mesh serves hits: {snap:?}");
        assert_eq!(snap.spectrum_hits, 1, "repaired spectrum serves hits: {snap:?}");
        assert_eq!(cold.kle.eigenvalues(), warm.kle.eigenvalues());
        assert_eq!(repaired.kle.eigenvalues(), warm.kle.eigenvalues());
        assert_eq!(cold.mesh.points(), warm.mesh.points());
        // No tmp droppings survive a completed store.
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.path().to_string_lossy().contains(".tmp."))
            .collect();
        assert!(leftovers.is_empty(), "stale tmp files: {leftovers:?}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn peek_spectrum_probes_without_counting() {
        let kernel = GaussianKernel::new(1.75);
        let config = coarse_config();
        let cache = ArtifactCache::new();
        let mesh_key = ArtifactKey::mesh(config.die, config.max_area_fraction, config.min_angle_degrees);
        let galerkin_key = ArtifactKey::galerkin(
            &mesh_key,
            &kernel.cache_key().unwrap(),
            config.options.quadrature,
        );
        let spectrum_key = ArtifactKey::spectrum(
            &galerkin_key,
            config.options.solver,
            config.options.max_eigenpairs,
        );
        assert!(!cache.peek_spectrum(&spectrum_key));
        run_frontend(&kernel, &config, ExecPolicy::Plain, Some(&cache)).unwrap();
        let before = cache.snapshot();
        assert!(cache.peek_spectrum(&spectrum_key));
        // The probe perturbed no counters.
        assert_eq!(cache.snapshot(), before);
    }

    fn sample_block_model() -> BlockTimingModel {
        BlockTimingModel {
            dim: 3,
            outputs: vec![
                BlockArc {
                    node: 7,
                    terms: vec![
                        BlockTerm {
                            origin: None,
                            mean: 1.25,
                            sens: vec![0.5, -0.25, 1e-17],
                            indep: 0.125,
                        },
                        BlockTerm {
                            origin: Some(3),
                            mean: -0.75,
                            sens: vec![f64::MIN_POSITIVE, 0.0, -2.5],
                            indep: 0.0,
                        },
                    ],
                },
                BlockArc {
                    node: 11,
                    terms: vec![BlockTerm {
                        origin: Some(0),
                        mean: 2.0,
                        sens: vec![1.0, 2.0, 3.0],
                        indep: 0.5,
                    }],
                },
            ],
        }
    }

    fn sample_block_key(tag: u64) -> ArtifactKey {
        let mesh_key = ArtifactKey::mesh(Rect::unit_die(), 0.05, 25.0);
        let galerkin_key = ArtifactKey::galerkin(
            &mesh_key,
            &GaussianKernel::new(1.5).cache_key().unwrap(),
            QuadratureRule::Centroid,
        );
        let spectrum_key = ArtifactKey::spectrum(&galerkin_key, EigenSolver::Full, 200);
        ArtifactKey::block(tag, &spectrum_key)
    }

    #[test]
    fn block_layer_counts_and_returns_shared_allocation() {
        let cache = ArtifactCache::new();
        let key = sample_block_key(0xdead_beef);
        assert!(cache.lookup_block(&key).is_none());
        let model = Arc::new(sample_block_model());
        cache.store_block(&key, Arc::clone(&model));
        let hit = cache.lookup_block(&key).expect("stored model");
        assert!(Arc::ptr_eq(&hit, &model));
        // A different region hash is a different artifact.
        assert!(cache.lookup_block(&sample_block_key(0xdead_bef0)).is_none());
        let snap = cache.snapshot();
        assert_eq!(snap.block_hits, 1, "{snap:?}");
        assert_eq!(snap.block_misses, 2, "{snap:?}");
        assert_eq!(snap.hits(), 1);
        assert_eq!(snap.misses(), 2);
        assert_eq!(cache.memory_sizes(), (0, 0, 0, 1));
    }

    #[test]
    fn block_disk_roundtrip_is_bitwise_and_journaled() {
        let dir = std::env::temp_dir().join(format!(
            "klest-cache-test-{}-{:016x}",
            std::process::id(),
            fnv1a64(b"block_disk_roundtrip_is_bitwise_and_journaled")
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let key = sample_block_key(0x1234);
        let model = Arc::new(sample_block_model());
        let cold = ArtifactCache::with_disk(&dir);
        cold.store_block(&key, Arc::clone(&model));
        // Fresh cache over the same directory: memory empty, disk warm.
        let warm = ArtifactCache::with_disk(&dir);
        assert!(warm.peek_block(&key));
        let loaded = warm.lookup_block(&key).expect("disk hit");
        assert_eq!(*loaded, *model, "bitwise roundtrip through disk");
        let snap = warm.snapshot();
        assert_eq!(snap.block_hits, 1, "{snap:?}");
        assert_eq!(snap.quarantined, 0, "{snap:?}");
        let manifest = std::fs::read_to_string(dir.join("manifest.log")).unwrap();
        assert!(
            manifest.lines().any(|l| l.starts_with("entry ")),
            "block store must be journaled:\n{manifest}"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_block_entry_quarantines_and_misses() {
        let dir = std::env::temp_dir().join(format!(
            "klest-cache-test-{}-{:016x}",
            std::process::id(),
            fnv1a64(b"corrupt_block_entry_quarantines_and_misses")
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let key = sample_block_key(0x777);
        let cold = ArtifactCache::with_disk(&dir);
        cold.store_block(&key, Arc::new(sample_block_model()));
        // Truncate the artifact body while keeping the manifest happy is
        // impossible (checksummed), so any mutilation must degrade to a
        // clean miss plus quarantine.
        let path = cold
            .disk_path(&key, "block")
            .expect("disk layer configured");
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, &text[..text.len() / 2]).unwrap();
        let warm = ArtifactCache::with_disk(&dir);
        assert!(warm.lookup_block(&key).is_none());
        let snap = warm.snapshot();
        assert_eq!(snap.block_misses, 1, "{snap:?}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn block_serialization_rejects_foreign_descriptor() {
        let key = sample_block_key(1);
        let other = sample_block_key(2);
        let model = sample_block_model();
        let text = serialize_block(&key, &model);
        assert_eq!(deserialize_block(&key, &text), Some(model));
        assert!(deserialize_block(&other, &text).is_none());
        assert!(deserialize_block(&key, "garbage").is_none());
    }

    #[test]
    fn block_key_folds_region_and_spectrum() {
        let a = sample_block_key(1);
        let b = sample_block_key(2);
        assert_ne!(a, b, "region hash must perturb the key");
        assert!(a.descriptor().starts_with("block|"));
        assert!(a.descriptor().contains("region=0000000000000001"));
    }

    #[test]
    fn keyless_kernel_bypasses_cache() {
        struct Opaque;
        impl CovarianceKernel for Opaque {
            fn eval(&self, x: Point2, y: Point2) -> f64 {
                let dx = x.x - y.x;
                let dy = x.y - y.y;
                (-(dx * dx + dy * dy)).exp()
            }
            fn name(&self) -> &str {
                "opaque"
            }
        }
        let cache = ArtifactCache::new();
        let config = coarse_config();
        run_frontend(&Opaque, &config, ExecPolicy::Plain, Some(&cache)).unwrap();
        let snap = cache.snapshot();
        assert_eq!(snap.hits() + snap.misses(), 0, "{snap:?}");
    }
}
