//! Triangle quadrature rules.
//!
//! The paper integrates with the centroid rule (eq. 20/21) and proves its
//! linear convergence in the mesh size `h` (Theorem 2), noting that
//! "higher order piecewise polynomials ... along with high order numerical
//! integration" may also be used. This module provides the centroid rule
//! plus two standard symmetric Gauss rules on the triangle so that the
//! accuracy/cost trade-off can be measured (ablation in the benches).

use klest_geometry::{Point2, Triangle};

/// A numerical integration rule over a triangle.
///
/// All rules return nodes with weights that sum to the triangle area, so
/// `∫_Δ g ≈ Σ w_q g(x_q)` directly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum QuadratureRule {
    /// One point at the centroid — exact for linear integrands; the
    /// paper's rule (eq. 20).
    #[default]
    Centroid,
    /// Three midside points — exact for quadratics.
    ThreePoint,
    /// Seven-point symmetric rule — exact for degree-5 polynomials.
    SevenPoint,
}

impl QuadratureRule {
    /// Number of nodes of the rule.
    pub fn node_count(&self) -> usize {
        match self {
            QuadratureRule::Centroid => 1,
            QuadratureRule::ThreePoint => 3,
            QuadratureRule::SevenPoint => 7,
        }
    }

    /// Nodes and weights on a concrete triangle. Weights sum to the
    /// triangle's area.
    pub fn nodes(&self, t: &Triangle) -> Vec<(Point2, f64)> {
        let area = t.area();
        let bary = |l1: f64, l2: f64, l3: f64| {
            Point2::new(
                l1 * t.a.x + l2 * t.b.x + l3 * t.c.x,
                l1 * t.a.y + l2 * t.b.y + l3 * t.c.y,
            )
        };
        match self {
            QuadratureRule::Centroid => {
                vec![(t.centroid(), area)]
            }
            QuadratureRule::ThreePoint => {
                let w = area / 3.0;
                vec![
                    (bary(0.5, 0.5, 0.0), w),
                    (bary(0.0, 0.5, 0.5), w),
                    (bary(0.5, 0.0, 0.5), w),
                ]
            }
            QuadratureRule::SevenPoint => {
                // Standard degree-5 rule (Strang & Fix / Cowper).
                let w0 = 0.225;
                let a1 = 0.059_715_871_789_77;
                let b1 = 0.470_142_064_105_115;
                let w1 = 0.132_394_152_788_506;
                let a2 = 0.797_426_985_353_087;
                let b2 = 0.101_286_507_323_456;
                let w2 = 0.125_939_180_544_827;
                vec![
                    (bary(1.0 / 3.0, 1.0 / 3.0, 1.0 / 3.0), w0 * area),
                    (bary(a1, b1, b1), w1 * area),
                    (bary(b1, a1, b1), w1 * area),
                    (bary(b1, b1, a1), w1 * area),
                    (bary(a2, b2, b2), w2 * area),
                    (bary(b2, a2, b2), w2 * area),
                    (bary(b2, b2, a2), w2 * area),
                ]
            }
        }
    }

    /// Integrates `g` over the triangle with this rule.
    pub fn integrate<F: Fn(Point2) -> f64>(&self, t: &Triangle, g: F) -> f64 {
        self.nodes(t).iter().map(|&(p, w)| w * g(p)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tri() -> Triangle {
        Triangle::new(
            Point2::new(0.0, 0.0),
            Point2::new(2.0, 0.0),
            Point2::new(0.0, 3.0),
        )
    }

    #[test]
    fn weights_sum_to_area() {
        let t = tri();
        for rule in [
            QuadratureRule::Centroid,
            QuadratureRule::ThreePoint,
            QuadratureRule::SevenPoint,
        ] {
            let total: f64 = rule.nodes(&t).iter().map(|&(_, w)| w).sum();
            assert!((total - t.area()).abs() < 1e-12, "{rule:?}");
            assert_eq!(rule.nodes(&t).len(), rule.node_count());
        }
    }

    #[test]
    fn constant_integrand_exact_for_all_rules() {
        let t = tri();
        for rule in [
            QuadratureRule::Centroid,
            QuadratureRule::ThreePoint,
            QuadratureRule::SevenPoint,
        ] {
            let v = rule.integrate(&t, |_| 2.5);
            assert!((v - 2.5 * t.area()).abs() < 1e-12, "{rule:?}");
        }
    }

    #[test]
    fn linear_integrand_exact_for_all_rules() {
        // ∫ (x + y) over the triangle = area * (x̄ + ȳ) at the centroid.
        let t = tri();
        let exact = t.area() * (t.centroid().x + t.centroid().y);
        for rule in [
            QuadratureRule::Centroid,
            QuadratureRule::ThreePoint,
            QuadratureRule::SevenPoint,
        ] {
            let v = rule.integrate(&t, |p| p.x + p.y);
            assert!((v - exact).abs() < 1e-12, "{rule:?}: {v} vs {exact}");
        }
    }

    #[test]
    fn quadratic_exact_for_three_point() {
        // ∫ x² over the right triangle (0,0)-(2,0)-(0,3).
        // ∫∫ x² dy dx with y from 0 to 3(1 - x/2): ∫_0^2 x² 3(1-x/2) dx
        // = 3 [x³/3 - x⁴/8]_0^2 = 3 (8/3 - 2) = 2.
        let t = tri();
        let exact = 2.0;
        let v3 = QuadratureRule::ThreePoint.integrate(&t, |p| p.x * p.x);
        assert!((v3 - exact).abs() < 1e-12, "3-point: {v3}");
        let v7 = QuadratureRule::SevenPoint.integrate(&t, |p| p.x * p.x);
        assert!((v7 - exact).abs() < 1e-12, "7-point: {v7}");
        // Centroid rule is NOT exact for quadratics.
        let v1 = QuadratureRule::Centroid.integrate(&t, |p| p.x * p.x);
        assert!((v1 - exact).abs() > 1e-3, "centroid rule should be inexact");
    }

    #[test]
    fn quintic_exact_for_seven_point() {
        // ∫ x⁵ over the unit right triangle (0,0)-(1,0)-(0,1):
        // ∫_0^1 x⁵(1-x) dx = 1/6 - 1/7 = 1/42.
        let t = Triangle::new(
            Point2::new(0.0, 0.0),
            Point2::new(1.0, 0.0),
            Point2::new(0.0, 1.0),
        );
        let exact = 1.0 / 42.0;
        let v = QuadratureRule::SevenPoint.integrate(&t, |p| p.x.powi(5));
        assert!((v - exact).abs() < 1e-12, "{v} vs {exact}");
        // 3-point rule is not exact at degree 5.
        let v3 = QuadratureRule::ThreePoint.integrate(&t, |p| p.x.powi(5));
        assert!((v3 - exact).abs() > 1e-6);
    }

    #[test]
    fn rule_accuracy_ordering_on_smooth_function() {
        // For exp(-(x²+y²)) the error should not increase with rule order.
        let t = tri();
        // High-resolution reference by subdividing with the 7-point rule.
        let mut reference = 0.0;
        let sub = 32;
        for i in 0..sub {
            for j in 0..sub {
                // Map the subdivision of the reference triangle.
                let f = |u: f64, v: f64| {
                    Point2::new(
                        t.a.x + u * (t.b.x - t.a.x) + v * (t.c.x - t.a.x),
                        t.a.y + u * (t.b.y - t.a.y) + v * (t.c.y - t.a.y),
                    )
                };
                let (u0, v0) = (i as f64 / sub as f64, j as f64 / sub as f64);
                let du = 1.0 / sub as f64;
                if (i + j) < sub {
                    let tt = Triangle::new(f(u0, v0), f(u0 + du, v0), f(u0, v0 + du));
                    reference +=
                        QuadratureRule::SevenPoint.integrate(&tt, |p| (-(p.x * p.x + p.y * p.y)).exp());
                }
                if i + j + 2 <= sub {
                    let tt =
                        Triangle::new(f(u0 + du, v0), f(u0 + du, v0 + du), f(u0, v0 + du));
                    reference +=
                        QuadratureRule::SevenPoint.integrate(&tt, |p| (-(p.x * p.x + p.y * p.y)).exp());
                }
            }
        }
        let g = |p: Point2| (-(p.x * p.x + p.y * p.y)).exp();
        let e1 = (QuadratureRule::Centroid.integrate(&t, g) - reference).abs();
        let e7 = (QuadratureRule::SevenPoint.integrate(&t, g) - reference).abs();
        assert!(e7 < e1, "7-point ({e7}) should beat centroid ({e1})");
    }
}
