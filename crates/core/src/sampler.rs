//! Field realisation sampling — eq. (28) and the mapping step of
//! Algorithm 2.

use crate::{GalerkinKle, KleError};
use klest_geometry::Point2;
use klest_linalg::Matrix;
use klest_mesh::{Mesh, TriangleLocator};

/// Draws realisations of the random field from `r` uncorrelated standard
/// normals: `p_Δ = D_λ ξ` (paper eq. 28), plus the
/// gate-location-to-triangle gather of Algorithm 2 (lines 4–7).
///
/// ```
/// use klest_core::{GalerkinKle, KleOptions, KleSampler};
/// use klest_kernels::GaussianKernel;
/// use klest_mesh::MeshBuilder;
/// use klest_geometry::{Point2, Rect};
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mesh = MeshBuilder::new(Rect::unit_die()).max_area(0.1).build()?;
/// let kle = GalerkinKle::compute(&mesh, &GaussianKernel::new(1.0), KleOptions::default())?;
/// let sampler = KleSampler::new(&kle, &mesh, 5)?;
/// let field = sampler.realize(&[0.1, -0.3, 0.5, 0.0, 1.0])?;
/// assert_eq!(field.len(), mesh.len());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct KleSampler {
    /// `n x r` reconstruction matrix `D √Λ`.
    d_lambda: Matrix,
    locator: TriangleLocator,
}

impl KleSampler {
    /// Builds a sampler of rank `r` from a computed KLE.
    ///
    /// # Errors
    ///
    /// [`KleError::RankOutOfRange`] if `r` is 0 or exceeds the retained
    /// eigenpairs.
    pub fn new(kle: &GalerkinKle, mesh: &Mesh, r: usize) -> Result<Self, KleError> {
        let d_lambda = kle.reconstruction_matrix(r)?;
        Ok(KleSampler {
            d_lambda,
            locator: mesh.locator(),
        })
    }

    /// The truncation rank `r` (number of uncorrelated RVs).
    pub fn rank(&self) -> usize {
        self.d_lambda.cols()
    }

    /// Number of mesh triangles `n`.
    pub fn basis_size(&self) -> usize {
        self.d_lambda.rows()
    }

    /// One field realisation over all triangles from a standard-normal
    /// vector `ξ` of length `r`.
    ///
    /// # Errors
    ///
    /// [`KleError::SampleDimensionMismatch`] if `ξ` has the wrong length.
    pub fn realize(&self, xi: &[f64]) -> Result<Vec<f64>, KleError> {
        if xi.len() != self.rank() {
            return Err(KleError::SampleDimensionMismatch {
                expected: self.rank(),
                got: xi.len(),
            });
        }
        Ok(self
            .d_lambda
            .mul_vec(xi)
            .expect("dimensions checked above"))
    }

    /// Maps arbitrary die locations (gate positions) to their containing
    /// triangles — `IndexOfContainingTriangle()` from Algorithm 2, done
    /// once up front.
    ///
    /// # Errors
    ///
    /// [`KleError::PointOutsideMesh`] with the index of the first point
    /// outside the meshed area.
    pub fn triangles_of(&self, points: &[Point2]) -> Result<Vec<usize>, KleError> {
        points
            .iter()
            .enumerate()
            .map(|(i, &p)| {
                self.locator
                    .locate(p)
                    .ok_or(KleError::PointOutsideMesh { index: i })
            })
            .collect()
    }

    /// Like [`triangles_of`](Self::triangles_of), but never fails: points
    /// outside the meshed area are clamped to the triangle with the
    /// nearest centroid. Returns the triangle indices plus how many
    /// points needed clamping, so callers can record the degradation.
    pub fn triangles_of_clamped(&self, points: &[Point2]) -> (Vec<usize>, usize) {
        let mut clamped = 0usize;
        let tris = points
            .iter()
            .map(|&p| {
                let (t, was_clamped) = self.locator.locate_or_nearest(p);
                if was_clamped {
                    clamped += 1;
                }
                t
            })
            .collect();
        (tris, clamped)
    }

    /// Field realisation gathered at pre-located triangles: the per-gate
    /// parameter values of Algorithm 2.
    ///
    /// # Errors
    ///
    /// [`KleError::SampleDimensionMismatch`] for a wrong-length `ξ`;
    /// [`KleError::TriangleOutOfRange`] if any triangle index exceeds the
    /// mesh (e.g. indices located against a different mesh).
    pub fn realize_at(&self, xi: &[f64], triangles: &[usize]) -> Result<Vec<f64>, KleError> {
        let field = self.realize(xi)?;
        triangles
            .iter()
            .map(|&t| {
                field.get(t).copied().ok_or(KleError::TriangleOutOfRange {
                    index: t,
                    triangles: field.len(),
                })
            })
            .collect()
    }

    /// The reconstruction matrix `D_λ` (shared with benches that time the
    /// matrix-matrix form `P_Δ = D_λ Ξ` of Algorithm 2 line 3).
    pub fn reconstruction_matrix(&self) -> &Matrix {
        &self.d_lambda
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::KleOptions;
    use klest_geometry::Rect;
    use klest_kernels::{CovarianceKernel, GaussianKernel};
    use klest_mesh::MeshBuilder;

    fn setup(r: usize) -> (Mesh, GalerkinKle, KleSampler) {
        let mesh = MeshBuilder::new(Rect::unit_die())
            .max_area(0.05)
            .min_angle_degrees(25.0)
            .build()
            .unwrap();
        let kle = GalerkinKle::compute(&mesh, &GaussianKernel::new(1.5), KleOptions::default())
            .unwrap();
        let sampler = KleSampler::new(&kle, &mesh, r).unwrap();
        (mesh, kle, sampler)
    }

    #[test]
    fn shapes_and_errors() {
        let (mesh, kle, sampler) = setup(8);
        assert_eq!(sampler.rank(), 8);
        assert_eq!(sampler.basis_size(), mesh.len());
        assert!(matches!(
            sampler.realize(&[0.0; 3]),
            Err(KleError::SampleDimensionMismatch { expected: 8, got: 3 })
        ));
        assert!(KleSampler::new(&kle, &mesh, 0).is_err());
        assert!(KleSampler::new(&kle, &mesh, kle.retained() + 1).is_err());
    }

    #[test]
    fn zero_xi_gives_zero_field() {
        let (_, _, sampler) = setup(8);
        let field = sampler.realize(&[0.0; 8]).unwrap();
        assert!(field.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn single_mode_realization_is_scaled_eigenfunction() {
        let (_, kle, sampler) = setup(4);
        let mut xi = vec![0.0; 4];
        xi[1] = 2.0;
        let field = sampler.realize(&xi).unwrap();
        let lam = kle.eigenvalues()[1];
        let f1 = kle.eigenfunction(1);
        for (v, f) in field.iter().zip(f1.iter()) {
            assert!((v - 2.0 * lam.sqrt() * f).abs() < 1e-12);
        }
    }

    #[test]
    fn triangles_of_and_gather() {
        let (mesh, _, sampler) = setup(6);
        let gates = vec![
            Point2::new(0.0, 0.0),
            Point2::new(0.5, -0.5),
            Point2::new(-0.9, 0.9),
        ];
        let tris = sampler.triangles_of(&gates).unwrap();
        for (g, &t) in gates.iter().zip(&tris) {
            assert!(mesh.triangle(t).contains(*g));
        }
        let xi = vec![0.3, -0.2, 0.8, 0.0, 0.1, -0.4];
        let full = sampler.realize(&xi).unwrap();
        let at = sampler.realize_at(&xi, &tris).unwrap();
        for (k, &t) in tris.iter().enumerate() {
            assert_eq!(at[k], full[t]);
        }
        // Outside point errors with its index.
        let bad = sampler.triangles_of(&[Point2::ORIGIN, Point2::new(9.0, 9.0)]);
        assert!(matches!(bad, Err(KleError::PointOutsideMesh { index: 1 })));
    }

    #[test]
    fn realize_at_rejects_out_of_range_triangle() {
        let (mesh, _, sampler) = setup(4);
        let xi = [0.1, 0.2, -0.3, 0.4];
        let bad = sampler.realize_at(&xi, &[0, mesh.len() + 5]);
        assert!(matches!(
            bad,
            Err(KleError::TriangleOutOfRange { index, .. }) if index == mesh.len() + 5
        ));
    }

    #[test]
    fn triangles_of_clamped_recovers_offdie_points() {
        let (mesh, _, sampler) = setup(6);
        let gates = vec![
            Point2::new(0.0, 0.0),
            Point2::new(9.0, 9.0), // far off-die
            Point2::new(-0.5, 0.5),
        ];
        let (tris, clamped) = sampler.triangles_of_clamped(&gates);
        assert_eq!(tris.len(), 3);
        assert_eq!(clamped, 1);
        // In-die points agree with the strict path.
        let strict = sampler.triangles_of(&[gates[0], gates[2]]).unwrap();
        assert_eq!(tris[0], strict[0]);
        assert_eq!(tris[2], strict[1]);
        // The clamped point lands on the triangle nearest the top-right
        // corner.
        let c = mesh.centroids()[tris[1]];
        assert!(c.x > 0.5 && c.y > 0.5, "clamped to {c}");
        // All-inside input clamps nothing.
        let (_, none) = sampler.triangles_of_clamped(&[gates[0], gates[2]]);
        assert_eq!(none, 0);
    }

    #[test]
    fn sample_covariance_approximates_kernel() {
        // Monte Carlo check of the core KLE promise: fields built from r
        // uncorrelated normals reproduce the kernel's covariance between
        // two well-separated triangles.
        let (mesh, kle, sampler) = setup(kle_rank());
        fn kle_rank() -> usize {
            24
        }
        let kern = GaussianKernel::new(1.5);
        // Two triangle indices: near center and offset.
        let loc = mesh.locator();
        let t1 = loc.locate(Point2::new(0.0, 0.0)).unwrap();
        let t2 = loc.locate(Point2::new(0.4, 0.2)).unwrap();
        let _ = &kle;
        // Deterministic normals via a simple LCG + Box-Muller.
        let mut seed = 7u64;
        let mut unif = move || {
            seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((seed >> 11) as f64 + 0.5) / (1u64 << 53) as f64
        };
        let mut normal = move || {
            let (u1, u2): (f64, f64) = (unif(), unif());
            (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
        };
        let n_samples = 20_000;
        let (mut s1, mut s2, mut s12, mut s11, mut s22) = (0.0, 0.0, 0.0, 0.0, 0.0);
        for _ in 0..n_samples {
            let xi: Vec<f64> = (0..sampler.rank()).map(|_| normal()).collect();
            let f = sampler.realize(&xi).unwrap();
            s1 += f[t1];
            s2 += f[t2];
            s12 += f[t1] * f[t2];
            s11 += f[t1] * f[t1];
            s22 += f[t2] * f[t2];
        }
        let nf = n_samples as f64;
        let (m1, m2) = (s1 / nf, s2 / nf);
        let cov = s12 / nf - m1 * m2;
        let var1 = s11 / nf - m1 * m1;
        let var2 = s22 / nf - m2 * m2;
        let expected = kern.eval(mesh.centroids()[t1], mesh.centroids()[t2]);
        assert!(
            (cov - expected).abs() < 0.05,
            "cov = {cov}, kernel = {expected}"
        );
        // Truncated variance is slightly below 1 but close.
        assert!(var1 > 0.85 && var1 < 1.1, "var1 = {var1}");
        assert!(var2 > 0.85 && var2 < 1.1, "var2 = {var2}");
    }
}
