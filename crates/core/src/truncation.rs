//! The paper's truncation-rank selection rule (Sec. 5.2).
//!
//! Having computed only the first `m` (= 200) eigenpairs of an `n`-basis
//! problem, the sum of all unused eigenvalues is bounded by
//! `λ_m (n - m) + Σ_{i=r+1}^{m} λ_i` (every uncomputed eigenvalue is at
//! most `λ_m`). The paper picks the smallest `r` for which this bound is
//! at most 1% of `Σ_{i=1}^{r} λ_i`, yielding r = 25 for its Gaussian
//! kernel on the n = 1546 mesh.

/// Is the spectrum sorted descending and NaN-free?
///
/// The tail bound `λ_m (n - m) + Σ_{i=r+1}^{m} λ_i` is only an upper
/// bound on the discarded variance when `λ_m` really is the smallest
/// computed eigenvalue — i.e. when the spectrum is descending. Ties and
/// near-degenerate pairs (|λ_i − λ_{i+1}| at rounding scale) count as
/// descending; a single NaN does not.
pub fn spectrum_is_descending(eigenvalues: &[f64]) -> bool {
    eigenvalues.iter().all(|x| !x.is_nan())
        && eigenvalues.windows(2).all(|w| w[0] >= w[1])
}

/// A descending-sorted copy with NaNs replaced by 0.0 — the same value
/// the criterion's `max(0.0)` clamp assigns them (`f64::max` returns the
/// non-NaN operand), so a NaN eigenvalue contributes nothing either way.
/// The replacement also makes the copy satisfy
/// [`spectrum_is_descending`], which the repair paths rely on.
fn descending_copy(eigenvalues: &[f64]) -> Vec<f64> {
    let mut sorted: Vec<f64> = eigenvalues
        .iter()
        .map(|x| if x.is_nan() { 0.0 } else { *x })
        .collect();
    sorted.sort_by(|a, b| b.total_cmp(a));
    sorted
}

/// The λ-tail truncation criterion.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TruncationCriterion {
    /// Number of leading eigenvalues treated as "computed" (`m`; paper:
    /// 200). Clamped to the available count.
    pub computed: usize,
    /// Tail budget as a fraction of the retained spectrum (paper: 0.01).
    pub tail_fraction: f64,
}

impl Default for TruncationCriterion {
    fn default() -> Self {
        TruncationCriterion {
            computed: 200,
            tail_fraction: 0.01,
        }
    }
}

impl TruncationCriterion {
    /// Creates a criterion with the given `m` and tail fraction.
    pub fn new(computed: usize, tail_fraction: f64) -> Self {
        TruncationCriterion {
            computed,
            tail_fraction,
        }
    }

    /// Selects the smallest rank `r` satisfying
    /// `λ_m (n - m) + Σ_{i=r+1}^{m} λ_i ≤ tail_fraction · Σ_{i=1}^{r} λ_i`,
    /// taking `n = eigenvalues.len()` (i.e. the full spectrum was
    /// computed). See [`select_with_basis`](Self::select_with_basis) when
    /// only the leading eigenvalues are available (Lanczos).
    pub fn select(&self, eigenvalues: &[f64]) -> usize {
        self.select_with_basis(eigenvalues, eigenvalues.len())
    }

    /// Does rank `r` actually satisfy the tail bound
    /// `λ_m (n - m) + Σ_{i=r+1}^{m} λ_i ≤ tail_fraction · Σ_{i=1}^{r} λ_i`?
    ///
    /// [`select_with_basis`](Self::select_with_basis) returns `m` both
    /// when the bound is met exactly at `m` and when it cannot be met at
    /// all (a flat spectrum, or too few computed pairs). This predicate
    /// distinguishes the two, so callers can degrade gracefully — e.g.
    /// fall back from the KLE sampler (Algorithm 2) to the full Cholesky
    /// reference (Algorithm 1) — instead of silently under-covering the
    /// variance budget.
    pub fn budget_met_with_basis(&self, eigenvalues: &[f64], n: usize, r: usize) -> bool {
        if eigenvalues.is_empty() || r == 0 {
            return false;
        }
        if !spectrum_is_descending(eigenvalues) {
            let sorted = descending_copy(eigenvalues);
            return self.budget_met_descending(&sorted, n, r);
        }
        self.budget_met_descending(eigenvalues, n, r)
    }

    /// The tail-bound predicate, assuming a descending spectrum.
    fn budget_met_descending(&self, eigenvalues: &[f64], n: usize, r: usize) -> bool {
        let n = n.max(eigenvalues.len());
        let m = self.computed.min(eigenvalues.len()).max(1);
        if r > m {
            return false;
        }
        let lam = |i: usize| eigenvalues[i].max(0.0);
        let uncomputed = lam(m - 1) * (n - m) as f64;
        let head: f64 = (0..r).map(lam).sum();
        let tail: f64 = (r..m).map(lam).sum();
        uncomputed + tail <= self.tail_fraction * head
    }

    /// Like [`select`](Self::select) but with an explicit basis size `n`
    /// (`eigenvalues` may hold only the first `m ≤ n` values — the
    /// paper's exact situation, having "computed only the first 200").
    ///
    /// `eigenvalues` should be sorted descending; an out-of-order
    /// spectrum (an eigensolver-ordering bug upstream) is *repaired* by
    /// selecting against a descending-sorted copy rather than silently
    /// mis-pricing the tail — use
    /// [`select_with_basis_checked`](Self::select_with_basis_checked) to
    /// observe whether a repair happened. Negative tail eigenvalues
    /// (discretisation noise) are clamped to zero. Returns at least 1 and
    /// at most `m`.
    pub fn select_with_basis(&self, eigenvalues: &[f64], n: usize) -> usize {
        self.select_with_basis_checked(eigenvalues, n).0
    }

    /// Like [`select_with_basis`](Self::select_with_basis), additionally
    /// reporting whether the input spectrum was already descending
    /// (`true`) or had to be repaired by sorting (`false`). On a
    /// descending spectrum this is exactly `(select_with_basis(..), true)`.
    pub fn select_with_basis_checked(&self, eigenvalues: &[f64], n: usize) -> (usize, bool) {
        if !spectrum_is_descending(eigenvalues) {
            let sorted = descending_copy(eigenvalues);
            return (self.select_descending(&sorted, n), false);
        }
        (self.select_descending(eigenvalues, n), true)
    }

    /// The core rule, assuming a descending spectrum.
    fn select_descending(&self, eigenvalues: &[f64], n: usize) -> usize {
        let n = n.max(eigenvalues.len());
        if eigenvalues.is_empty() {
            return 1;
        }
        let m = self.computed.min(eigenvalues.len()).max(1);
        let lam = |i: usize| eigenvalues[i].max(0.0);
        // Uncomputed-tail bound: λ_m (n - m), using the m-th (last
        // computed) eigenvalue.
        let uncomputed = lam(m - 1) * (n - m) as f64;
        // Suffix sums of the computed spectrum.
        let mut head = 0.0;
        let mut tail: f64 = (0..m).map(lam).sum();
        for r in 1..=m {
            head += lam(r - 1);
            tail -= lam(r - 1);
            if uncomputed + tail <= self.tail_fraction * head {
                return r;
            }
        }
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budget_met_distinguishes_saturation_from_success() {
        // Geometric spectrum: the selected rank genuinely meets the bound.
        let ev: Vec<f64> = (0..100).map(|i| 0.5f64.powi(i)).collect();
        let crit = TruncationCriterion::new(100, 0.01);
        let r = crit.select(&ev);
        assert!(crit.budget_met_with_basis(&ev, ev.len(), r));
        // One mode short of the selected rank: bound violated.
        assert!(!crit.budget_met_with_basis(&ev, ev.len(), r - 1));
        // Flat spectrum: select() saturates at m but the budget is unmet.
        let flat = vec![1.0; 50];
        let crit_flat = TruncationCriterion::new(50, 0.01);
        let r_flat = crit_flat.select(&flat);
        assert_eq!(r_flat, 50);
        // Tail within the computed window is empty at r = m = n, so the
        // bound trivially holds here; shrink m below n to expose the
        // uncomputed tail.
        let crit_short = TruncationCriterion::new(10, 0.01);
        let r_short = crit_short.select_with_basis(&flat, 50);
        assert_eq!(r_short, 10);
        assert!(!crit_short.budget_met_with_basis(&flat, 50, r_short));
        // Degenerate inputs.
        assert!(!crit.budget_met_with_basis(&[], 0, 1));
        assert!(!crit.budget_met_with_basis(&ev, ev.len(), 0));
    }

    #[test]
    fn budget_met_tolerates_nan_spectrum() {
        // Regression: budget_met_with_basis used to recurse forever on a
        // NaN-poisoned spectrum — the sorted copy kept the NaN, so the
        // descending check re-fired the repair path unchanged until the
        // stack overflowed. It must terminate and agree with the NaN→0
        // descending copy.
        let poisoned = vec![2.0, f64::NAN, 1.0];
        let repaired = vec![2.0, 1.0, 0.0];
        let crit = TruncationCriterion::new(3, 0.01);
        for r in 1..=3 {
            assert_eq!(
                crit.budget_met_with_basis(&poisoned, 3, r),
                crit.budget_met_with_basis(&repaired, 3, r),
                "r = {r}"
            );
        }
        // The loop above exercises both verdicts (r = 1 violates the
        // bound, r = 3 meets it). An all-NaN spectrum degrades to the
        // all-zero one, whose 0 ≤ 0 bound is trivially met — the point
        // here is only that the call terminates.
        assert!(crit.budget_met_with_basis(&[f64::NAN, f64::NAN], 3, 2));
    }

    #[test]
    fn geometric_spectrum_small_rank() {
        // λ_i = 2^{-i}: tail after r is ~ equal to λ_r, so 1% needs ~7-8
        // doublings.
        let ev: Vec<f64> = (0..100).map(|i| 0.5f64.powi(i)).collect();
        let crit = TruncationCriterion::new(100, 0.01);
        let r = crit.select(&ev);
        assert!((7..=12).contains(&r), "r = {r}");
        // Verify the bound actually holds at the selected r.
        let head: f64 = ev[..r].iter().sum();
        let tail: f64 = ev[r..].iter().sum();
        assert!(tail <= 0.01 * head + 1e-12);
    }

    #[test]
    fn flat_spectrum_needs_everything() {
        let ev = vec![1.0; 50];
        let crit = TruncationCriterion::new(50, 0.01);
        assert_eq!(crit.select(&ev), 50, "flat spectrum cannot be truncated");
    }

    #[test]
    fn single_dominant_mode() {
        let mut ev = vec![0.0; 40];
        ev[0] = 100.0;
        let crit = TruncationCriterion::default();
        assert_eq!(crit.select(&ev), 1);
    }

    #[test]
    fn uncomputed_tail_matters() {
        // Spectrum cut at m = 5 with a big n: the λ_5 (n-5) bound keeps r
        // from being too small.
        let ev: Vec<f64> = (0..1000).map(|i| 1.0 / (1.0 + i as f64)).collect();
        let r_small_m = TruncationCriterion::new(5, 0.01).select(&ev);
        assert_eq!(r_small_m, 5, "harmonic spectrum can't meet 1% with m = 5");
    }

    #[test]
    fn negative_tail_clamped() {
        let ev = vec![4.0, 1.0, 1e-12, -1e-9, -1e-8];
        let r = TruncationCriterion::new(5, 0.01).select(&ev);
        assert!(r <= 2, "noise tail should not inflate the rank (r = {r})");
    }

    #[test]
    fn tighter_fraction_needs_larger_rank() {
        let ev: Vec<f64> = (0..200).map(|i| (-0.2 * i as f64).exp()).collect();
        let loose = TruncationCriterion::new(200, 0.05).select(&ev);
        let tight = TruncationCriterion::new(200, 0.001).select(&ev);
        assert!(tight > loose, "tight {tight} vs loose {loose}");
    }

    #[test]
    fn empty_and_tiny_inputs() {
        assert_eq!(TruncationCriterion::default().select(&[]), 1);
        assert_eq!(TruncationCriterion::default().select(&[3.0]), 1);
    }

    #[test]
    fn mis_sorted_spectrum_is_caught_and_repaired() {
        // Regression for the ordering guarantee: before the repair, an
        // ascending spectrum made λ_m the *largest* eigenvalue, blowing
        // up the uncomputed-tail bound (or, with m = n, silently
        // truncating the dominant modes). The criterion must now detect
        // the mis-ordering and select exactly as for the sorted copy.
        let sorted: Vec<f64> = (0..50).map(|i| (-0.3 * i as f64).exp()).collect();
        let mut reversed = sorted.clone();
        reversed.reverse();
        let crit = TruncationCriterion::new(50, 0.01);
        assert!(spectrum_is_descending(&sorted));
        assert!(!spectrum_is_descending(&reversed), "mis-sort not caught");
        let (r_sorted, clean) = crit.select_with_basis_checked(&sorted, 50);
        assert!(clean);
        let (r_reversed, repaired) = crit.select_with_basis_checked(&reversed, 50);
        assert!(!repaired, "repair must be reported");
        assert_eq!(r_sorted, r_reversed, "repair must match the sorted result");
        // A single swapped adjacent pair is also caught.
        let mut swapped = sorted.clone();
        swapped.swap(3, 4);
        assert!(!crit.select_with_basis_checked(&swapped, 50).1);
        assert_eq!(crit.select(&swapped), r_sorted);
        // budget_met agrees between mis-sorted input and its sorted copy.
        assert_eq!(
            crit.budget_met_with_basis(&reversed, 50, r_sorted),
            crit.budget_met_with_basis(&sorted, 50, r_sorted)
        );
    }

    #[test]
    fn ties_and_near_degenerate_pairs_are_descending() {
        // Exact ties and pairs split at rounding scale must NOT trigger
        // the repair path (they are legitimately descending) and must
        // select a stable rank.
        let tied = vec![2.0, 1.0, 1.0, 1.0, 0.5, 0.5, 1e-9, 1e-9];
        assert!(spectrum_is_descending(&tied));
        let crit = TruncationCriterion::new(8, 0.01);
        let (r, clean) = crit.select_with_basis_checked(&tied, 8);
        assert!(clean, "ties wrongly flagged as mis-sorted");
        assert!((1..=8).contains(&r));
        // Near-degenerate: differ by one ULP-scale nudge.
        let near = vec![1.0, 1.0 - 1e-15, 1.0 - 2e-15, 0.25];
        assert!(spectrum_is_descending(&near));
        assert!(crit.select_with_basis_checked(&near, 4).1);
        // NaN anywhere is never "descending"; selection still returns a
        // valid rank by repairing (NaN sorted to the back, clamped to 0).
        let poisoned = vec![2.0, f64::NAN, 1.0];
        assert!(!spectrum_is_descending(&poisoned));
        let (r_nan, clean_nan) = crit.select_with_basis_checked(&poisoned, 3);
        assert!(!clean_nan);
        assert!((1..=3).contains(&r_nan));
    }

    #[test]
    fn explicit_basis_size_inflates_uncomputed_tail() {
        // Same 50 computed eigenvalues; declaring a much larger basis
        // makes the λ_m (n - m) term dominate, pushing r up.
        let ev: Vec<f64> = (0..50).map(|i| (-0.1 * i as f64).exp()).collect();
        let small = TruncationCriterion::new(50, 0.01).select_with_basis(&ev, 50);
        let large = TruncationCriterion::new(50, 0.01).select_with_basis(&ev, 5000);
        assert!(large >= small, "{large} vs {small}");
        // Basis smaller than the list is clamped up (degenerate input).
        let clamped = TruncationCriterion::new(50, 0.01).select_with_basis(&ev, 1);
        assert_eq!(clamped, small);
    }
}
