//! Concurrency hammer for the [`ArtifactCache`]: many threads running
//! mixed warm/cold front-end queries against the memory layer, the disk
//! layer, and both at once. The contract under fire:
//!
//! - artifacts served from cache are **bitwise identical** to
//!   recomputation, from every thread, at every layer;
//! - duplicate eigensolves are bounded — a racing cold start may compute
//!   a spectrum at most once per thread, and once any thread stores it
//!   everyone else hits;
//! - concurrent disk writers never produce a torn read: a reader sees
//!   either a complete artifact or a clean miss, never garbage.

use klest_core::pipeline::{run_frontend, ArtifactCache, ExecPolicy, FrontEndConfig};
use klest_core::TruncationCriterion;
use klest_kernels::GaussianKernel;
use std::sync::atomic::{AtomicU64, Ordering};

const THREADS: usize = 8;
const ROUNDS: usize = 6;

/// Three distinct artifact-key chains (different mesh resolutions).
const AREA_FRACTIONS: [f64; 3] = [0.12, 0.1, 0.08];

fn config_for(area_fraction: f64) -> FrontEndConfig {
    FrontEndConfig::new(area_fraction, 28.0, TruncationCriterion::new(40, 0.01))
}

/// A stable bitwise fingerprint of everything a spectrum artifact
/// carries: eigenvalues, retained eigenvectors and triangle areas.
fn fingerprint(kle: &klest_core::GalerkinKle) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut mix = |bits: u64| {
        for b in bits.to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    for &v in kle.eigenvalues() {
        mix(v.to_bits());
    }
    for j in 0..kle.retained() {
        for v in kle.eigenfunction(j) {
            mix(v.to_bits());
        }
    }
    for &a in kle.areas() {
        mix(a.to_bits());
    }
    h
}

fn tmp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "klest-cache-hammer-{tag}-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create hammer dir");
    dir
}

/// Serial reference fingerprints, computed without any cache.
fn reference_fingerprints(kernel: &GaussianKernel) -> Vec<u64> {
    AREA_FRACTIONS
        .iter()
        .map(|&af| {
            let outcome = run_frontend(kernel, &config_for(af), ExecPolicy::Plain, None)
                .expect("reference front end");
            fingerprint(&outcome.kle)
        })
        .collect()
}

/// One shared memory+disk cache hammered by every thread: duplicate
/// eigensolves stay bounded and every served artifact is bitwise equal
/// to the uncached reference.
#[test]
fn shared_cache_hammer_is_bitwise_stable_with_bounded_eigensolves() {
    let kernel = GaussianKernel::with_correlation_distance(1.0);
    let reference = reference_fingerprints(&kernel);
    let dir = tmp_dir("shared");
    let cache = ArtifactCache::with_disk(&dir);
    let runs = AtomicU64::new(0);

    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let cache = &cache;
            let kernel = &kernel;
            let reference = &reference;
            let runs = &runs;
            scope.spawn(move || {
                for r in 0..ROUNDS {
                    // Rotate the start index per thread so cold starts race.
                    for i in 0..AREA_FRACTIONS.len() {
                        let c = (t + r + i) % AREA_FRACTIONS.len();
                        let outcome = run_frontend(
                            kernel,
                            &config_for(AREA_FRACTIONS[c]),
                            ExecPolicy::Plain,
                            Some(cache),
                        )
                        .expect("hammered front end");
                        assert_eq!(
                            fingerprint(&outcome.kle),
                            reference[c],
                            "thread {t} round {r} config {c}: cached artifact \
                             differs bitwise from the uncached reference"
                        );
                        runs.fetch_add(1, Ordering::Relaxed);
                    }
                }
            });
        }
    });

    let total = runs.load(Ordering::Relaxed);
    assert_eq!(total as usize, THREADS * ROUNDS * AREA_FRACTIONS.len());
    let snap = cache.snapshot();
    // Worst case every thread races the same cold config before any
    // store lands: one eigensolve per thread per config. One miss is
    // counted per eigensolve actually run.
    let bound = (THREADS * AREA_FRACTIONS.len()) as u64;
    assert!(
        snap.spectrum_misses <= bound,
        "duplicate eigensolves are unbounded: {} misses > {bound}",
        snap.spectrum_misses
    );
    // And warm traffic dominates: everything past the cold starts hits.
    assert!(
        snap.spectrum_hits >= total - bound,
        "warm queries missed the cache: {} hits of {total} runs",
        snap.spectrum_hits
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// Each thread gets its **own** cache instance sharing one disk
/// directory, so the disk layer is the only shared medium and every
/// lookup races the atomic tmp-file + rename writers. A reader must see
/// a complete artifact or a clean miss — never a torn file — and
/// everything loaded from disk must match the reference bitwise.
#[test]
fn racing_disk_writers_never_produce_a_torn_read() {
    let kernel = GaussianKernel::with_correlation_distance(1.0);
    let reference = reference_fingerprints(&kernel);
    let dir = tmp_dir("disk-race");

    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let dir = &dir;
            let kernel = &kernel;
            let reference = &reference;
            scope.spawn(move || {
                // A private memory layer per thread: disk is the only
                // thing these instances share.
                let cache = ArtifactCache::with_disk(dir.clone());
                for r in 0..ROUNDS {
                    for i in 0..AREA_FRACTIONS.len() {
                        let c = (t + r + i) % AREA_FRACTIONS.len();
                        let outcome = run_frontend(
                            kernel,
                            &config_for(AREA_FRACTIONS[c]),
                            ExecPolicy::Plain,
                            Some(&cache),
                        )
                        .expect("disk-racing front end");
                        assert_eq!(
                            fingerprint(&outcome.kle),
                            reference[c],
                            "thread {t} round {r} config {c}: disk round-trip \
                             changed the artifact"
                        );
                    }
                }
            });
        }
    });

    // After the race, a fresh instance must load every spectrum from
    // disk alone (no recomputation), still bitwise identical.
    let fresh = ArtifactCache::with_disk(&dir);
    let loaded: Vec<u64> = AREA_FRACTIONS
        .iter()
        .map(|&af| {
            let outcome = run_frontend(&kernel, &config_for(af), ExecPolicy::Plain, Some(&fresh))
                .expect("fresh load");
            fingerprint(&outcome.kle)
        })
        .collect();
    assert_eq!(loaded, reference, "disk artifacts drifted from reference");
    let snap = fresh.snapshot();
    assert_eq!(
        snap.spectrum_misses, 0,
        "fresh instance had to recompute: disk layer incomplete or torn"
    );
    // No leftover tmp files: every write either renamed in or was the
    // loser of a race and still renamed over the same content.
    let stray: Vec<_> = std::fs::read_dir(&dir)
        .expect("read hammer dir")
        .filter_map(Result::ok)
        .filter(|e| e.path().to_string_lossy().contains(".tmp"))
        .collect();
    assert!(stray.is_empty(), "torn/stray tmp files left behind: {stray:?}");
    let _ = std::fs::remove_dir_all(&dir);
}
