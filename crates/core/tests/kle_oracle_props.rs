//! Property-based oracle suite for the Galerkin KLE (klest-proptest).
//!
//! The analytic eigenpairs of the 1-D exponential kernel (Ghanem &
//! Spanos) — and their separable 2-D products — are the strongest
//! ground truth available for this solver. These properties pin the
//! Galerkin path to that oracle across *random* kernel decay rates, and
//! assert the Theorem-2 convergence order under mesh refinement, so any
//! future refactor of assembly/quadrature/eigensolve that drifts the
//! numbers fails here with a replayable seed.

use klest_core::analytic::separable_2d_eigenvalues;
use klest_core::convergence::eigenvalue_convergence;
use klest_core::{
    spectrum_is_descending, EigenSolver, GalerkinKle, KleOptions, QuadratureRule,
    TruncationCriterion,
};
use klest_geometry::Rect;
use klest_kernels::SeparableExponentialKernel;
use klest_mesh::MeshBuilder;
use klest_proptest::{check, check_config, check_result, strategies, Config, Strategy};
use klest_rng::StdRng;

fn galerkin_spectrum(c: f64, max_area: f64, count: usize) -> Vec<f64> {
    let mesh = MeshBuilder::new(Rect::unit_die())
        .max_area(max_area)
        .min_angle_degrees(28.0)
        .build()
        .expect("meshing succeeds");
    let options = KleOptions {
        quadrature: QuadratureRule::Centroid,
        max_eigenpairs: count,
        ..KleOptions::default()
    };
    GalerkinKle::compute(&mesh, &SeparableExponentialKernel::new(c), options)
        .expect("KLE computes")
        .eigenvalues()
        .to_vec()
}

/// Galerkin top eigenvalues match the separable analytic oracle for
/// *random* decay rates, not just the paper's c = 1.
#[test]
fn galerkin_matches_analytic_oracle_for_random_decay() {
    // Each case runs a full mesh + eigensolve; keep the count small and
    // fixed regardless of KLEST_PROPTEST_CASES.
    let name = "galerkin_matches_analytic_oracle_for_random_decay";
    let cfg = Config {
        cases: 4,
        ..Config::from_env(name)
    };
    check_config(name, &cfg, &strategies::f64_in(0.5..2.5), |&c| {
        let exact = separable_2d_eigenvalues(c, 1.0, 4);
        let approx = galerkin_spectrum(c, 0.02, 6);
        for (i, (a, e)) in approx.iter().zip(&exact).enumerate() {
            let rel = (a - e).abs() / e;
            if rel > 0.10 {
                return Err(format!(
                    "c = {c}: eigenvalue {i} galerkin {a} vs analytic {e} ({:.2}% off)",
                    100.0 * rel
                ));
            }
        }
        Ok(())
    });
}

/// The analytic-oracle tolerance tightens under mesh refinement with an
/// observed convergence order consistent with Theorem 2 (linear in h),
/// for random decay rates.
#[test]
fn convergence_order_against_oracle_is_at_least_linear() {
    let name = "convergence_order_against_oracle_is_at_least_linear";
    let cfg = Config {
        cases: 3,
        ..Config::from_env(name)
    };
    check_config(name, &cfg, &strategies::f64_in(0.6..2.0), |&c| {
        let kernel = SeparableExponentialKernel::new(c);
        let reference = separable_2d_eigenvalues(c, 1.0, 4);
        let study = eigenvalue_convergence(
            &kernel,
            &reference,
            &[0.08, 0.03, 0.012],
            4,
            QuadratureRule::Centroid,
        )
        .map_err(|e| format!("c = {c}: study failed: {e}"))?;
        let first = study.points.first().expect("rungs").error;
        let last = study.points.last().expect("rungs").error;
        if last >= first {
            return Err(format!(
                "c = {c}: refinement did not tighten the oracle error ({first} -> {last})"
            ));
        }
        if study.order < 0.6 {
            return Err(format!(
                "c = {c}: observed order {:.3} below the Theorem-2 linear rate",
                study.order
            ));
        }
        Ok(())
    });
}

/// Discrete Mercer trace identity: Σ λ equals the die area exactly (to
/// solver roundoff) for every valid kernel family, and the returned
/// spectrum is descending with no significantly negative values.
#[test]
fn trace_identity_and_spectrum_shape_for_any_kernel() {
    let name = "trace_identity_and_spectrum_shape_for_any_kernel";
    let cfg = Config {
        cases: 6,
        ..Config::from_env(name)
    };
    check_config(name, &cfg, &strategies::any_kernel(), |case| {
        let kernel = case.build();
        let mesh = MeshBuilder::new(Rect::unit_die())
            .max_area(0.05)
            .build()
            .expect("meshing succeeds");
        let kle = GalerkinKle::compute(&mesh, kernel.as_ref(), KleOptions::default())
            .map_err(|e| format!("{case:?}: KLE failed: {e}"))?;
        let trace: f64 = kle.eigenvalues().iter().sum();
        let area = mesh.total_area();
        if (trace - area).abs() > 1e-9 * area.max(1.0) {
            return Err(format!("{case:?}: trace {trace} vs area {area}"));
        }
        if !spectrum_is_descending(kle.eigenvalues()) {
            return Err(format!("{case:?}: spectrum not descending"));
        }
        let min = kle.eigenvalues().iter().copied().fold(f64::INFINITY, f64::min);
        if min < -1e-8 * area {
            return Err(format!("{case:?}: significantly negative eigenvalue {min}"));
        }
        Ok(())
    });
}

/// Truncation-rule properties over random descending spectra (with ties
/// and near-degenerate pairs): the selected rank is in bounds, the
/// claimed budget status matches an independent evaluation of the tail
/// bound, and a tighter tail fraction never selects a smaller rank.
#[test]
fn truncation_selection_properties() {
    let spectra = strategies::descending_spectrum(2..80);
    check(
        "truncation_selection_properties",
        &spectra,
        |spectrum| {
            let m = spectrum.len();
            let crit = TruncationCriterion::new(m, 0.01);
            let (r, clean) = crit.select_with_basis_checked(spectrum, m);
            if !clean {
                return Err("descending input flagged as mis-sorted".to_string());
            }
            if !(1..=m).contains(&r) {
                return Err(format!("rank {r} out of bounds 1..={m}"));
            }
            // budget_met agrees with select: met at r or saturated at m.
            let met = crit.budget_met_with_basis(spectrum, m, r);
            if met && r > 1 && crit.budget_met_with_basis(spectrum, m, r - 1) {
                return Err(format!("rank {r} not minimal: bound already met at {}", r - 1));
            }
            if !met && r != m {
                return Err(format!("bound unmet at selected rank {r} < m = {m}"));
            }
            // Monotonicity in the tail budget.
            let tighter = TruncationCriterion::new(m, 0.001).select(spectrum);
            if tighter < r {
                return Err(format!("tighter budget selected smaller rank {tighter} < {r}"));
            }
            Ok(())
        },
    );
}

/// The ordering repair is semantics-preserving: any permutation of a
/// descending spectrum selects the same rank as the sorted original,
/// and the repair is reported.
#[test]
fn truncation_is_permutation_invariant_via_repair() {
    let spectra = strategies::descending_spectrum(2..40);
    check(
        "truncation_is_permutation_invariant_via_repair",
        &spectra,
        |spectrum| {
            let m = spectrum.len();
            let crit = TruncationCriterion::new(m, 0.01);
            let r_sorted = crit.select(spectrum);
            // Deterministic shuffle: reverse, and interleave halves.
            let mut reversed = spectrum.clone();
            reversed.reverse();
            let mut interleaved = Vec::with_capacity(m);
            let (lo, hi) = spectrum.split_at(m / 2);
            for i in 0..lo.len().max(hi.len()) {
                if i < hi.len() {
                    interleaved.push(hi[i]);
                }
                if i < lo.len() {
                    interleaved.push(lo[i]);
                }
            }
            for shuffled in [&reversed, &interleaved] {
                let (r, clean) = crit.select_with_basis_checked(shuffled, m);
                let strictly_sorted = spectrum_is_descending(shuffled);
                if !strictly_sorted && clean {
                    return Err("mis-sorted spectrum not reported as repaired".to_string());
                }
                if r != r_sorted {
                    return Err(format!(
                        "permutation changed the selected rank: {r} vs {r_sorted}"
                    ));
                }
            }
            Ok(())
        },
    );
}

/// A strategy that simulates the upstream eigensolver-ordering bug:
/// descending spectra handed over in *ascending* order.
#[derive(Debug, Clone)]
struct MisSortedSpectrum(strategies::DescendingSpectrum);

impl Strategy for MisSortedSpectrum {
    type Value = Vec<f64>;

    fn generate(&self, rng: &mut StdRng) -> Vec<f64> {
        let mut v = self.0.generate(rng);
        // Guarantee a strict ordering violation even under all-tie draws.
        let bump = v.first().copied().unwrap_or(1.0);
        v.push(2.0 * bump);
        v.reverse();
        v
    }

    fn shrink(&self, value: &Vec<f64>) -> Vec<Vec<f64>> {
        self.0.shrink(value)
    }
}

/// Acceptance regression: a deliberately mis-sorted eigen spectrum *is
/// caught* by the property suite — the "spectra reaching the truncation
/// rule are descending" property fails with a replayable seed, and the
/// replay reproduces the exact counterexample. (Before the ordering
/// guarantee in `truncation.rs`, the mis-ordering passed through
/// silently and mis-priced the tail bound; now it is both detectable
/// via `select_with_basis_checked` and repaired.)
#[test]
fn mis_sorted_spectrum_is_caught_by_property_suite() {
    let strat = MisSortedSpectrum(strategies::descending_spectrum(2..30));
    let cfg = Config::new(0xBAD5EED).with_cases(16);
    let ordering_property = |spectrum: &Vec<f64>| {
        if spectrum_is_descending(spectrum) {
            Ok(())
        } else {
            Err("spectrum reached the truncation rule out of order".to_string())
        }
    };
    let failure = check_result("spectra_are_descending", &cfg, &strat, ordering_property)
        .expect_err("the mis-sorted spectrum must be caught");
    assert!(failure.to_string().contains("KLEST_PROPTEST_SEED"));
    // Replaying the printed seed reproduces the same counterexample.
    let mut replay = cfg.clone();
    replay.replay = Some(failure.case_seed);
    let replayed = check_result("spectra_are_descending", &replay, &strat, ordering_property)
        .expect_err("replay must reproduce the failure");
    assert_eq!(replayed.original, failure.original);
    // And the repaired selection path handles the same input gracefully.
    let mut rng = klest_rng::SeedableRng::seed_from_u64(failure.case_seed);
    let bad: Vec<f64> = strat.generate(&mut rng);
    let m = bad.len();
    let (rank, clean) = TruncationCriterion::new(m, 0.01).select_with_basis_checked(&bad, m);
    assert!(!clean, "repair must be reported for the caught spectrum");
    assert!((1..=m).contains(&rank));
}

/// Selecting against a Lanczos-style partial spectrum (m < n) never
/// claims a met budget that the full-information bound would reject.
#[test]
fn partial_spectrum_budget_is_conservative() {
    let spectra = strategies::descending_spectrum(8..60);
    check(
        "partial_spectrum_budget_is_conservative",
        &spectra,
        |spectrum| {
            let n = spectrum.len();
            let m = n / 2;
            let crit = TruncationCriterion::new(m, 0.01);
            let partial = &spectrum[..m];
            let r = crit.select_with_basis(partial, n);
            if crit.budget_met_with_basis(partial, n, r) {
                // The partial bound uses λ_m (n - m) ≥ true tail mass, so
                // the full-spectrum bound must also hold at this rank.
                let full = TruncationCriterion::new(n, 0.01);
                if !full.budget_met_with_basis(spectrum, n, r) {
                    return Err(format!(
                        "partial bound accepted rank {r} that the full spectrum rejects"
                    ));
                }
            }
            Ok(())
        },
    );
}

/// The matrix-free path answers to the same analytic oracle as the
/// dense one: for random decay rates, the leading eigenvalues computed
/// without ever assembling the Galerkin matrix match the separable
/// analytic spectrum within the dense path's tolerance, and agree with
/// the dense solve itself far more tightly (same discretization, so
/// only solver error separates them).
#[test]
fn matrix_free_spectrum_answers_to_the_analytic_oracle() {
    let name = "matrix_free_spectrum_answers_to_the_analytic_oracle";
    let cfg = Config {
        cases: 3,
        ..Config::from_env(name)
    };
    check_config(name, &cfg, &strategies::f64_in(0.5..2.5), |&c| {
        let mesh = MeshBuilder::new(Rect::unit_die())
            .max_area(0.02)
            .min_angle_degrees(28.0)
            .build()
            .expect("meshing succeeds");
        let kernel = SeparableExponentialKernel::new(c);
        let dense = GalerkinKle::compute(
            &mesh,
            &kernel,
            KleOptions {
                max_eigenpairs: 6,
                ..KleOptions::default()
            },
        )
        .map_err(|e| format!("c = {c}: dense KLE failed: {e}"))?;
        let free = GalerkinKle::compute(
            &mesh,
            &kernel,
            KleOptions {
                solver: EigenSolver::MatrixFree {
                    k: 6,
                    max_iters: 1000,
                },
                ..KleOptions::default()
            },
        )
        .map_err(|e| format!("c = {c}: matrix-free KLE failed: {e}"))?;
        let exact = separable_2d_eigenvalues(c, 1.0, 4);
        for (i, (a, e)) in free.eigenvalues().iter().zip(&exact).enumerate() {
            let rel = (a - e).abs() / e;
            if rel > 0.10 {
                return Err(format!(
                    "c = {c}: eigenvalue {i} matrix-free {a} vs analytic {e} ({:.2}% off)",
                    100.0 * rel
                ));
            }
        }
        let head = dense.eigenvalues()[0];
        for (i, (a, d)) in free
            .eigenvalues()
            .iter()
            .zip(dense.eigenvalues())
            .enumerate()
        {
            if (a - d).abs() > 1e-8 * head {
                return Err(format!(
                    "c = {c}: eigenvalue {i} matrix-free {a} vs dense {d} beyond solver tol"
                ));
            }
        }
        Ok(())
    });
}

/// Mercer-trace treatment of partial spectra: the matrix-free path only
/// computes the head of the spectrum, yet its variance accounting must
/// use the *exact* operator trace (the die area), so the head sum stays
/// strictly below the trace, `variance_captured` is the head/area ratio,
/// and the spectrum is descending and non-negative.
#[test]
fn matrix_free_partial_spectrum_respects_the_mercer_trace() {
    let name = "matrix_free_partial_spectrum_respects_the_mercer_trace";
    let cfg = Config {
        cases: 4,
        ..Config::from_env(name)
    };
    check_config(name, &cfg, &strategies::any_kernel(), |case| {
        let kernel = case.build();
        let mesh = MeshBuilder::new(Rect::unit_die())
            .max_area(0.05)
            .build()
            .expect("meshing succeeds");
        let k = 8.min(mesh.len() - 1);
        let kle = GalerkinKle::compute(
            &mesh,
            kernel.as_ref(),
            KleOptions {
                solver: EigenSolver::MatrixFree { k, max_iters: 1000 },
                ..KleOptions::default()
            },
        )
        .map_err(|e| format!("{case:?}: matrix-free KLE failed: {e}"))?;
        let area = mesh.total_area();
        let retained = kle.eigenvalues().len();
        if retained > k {
            return Err(format!("{case:?}: got {retained} pairs, asked {k}"));
        }
        if !spectrum_is_descending(kle.eigenvalues()) {
            return Err(format!("{case:?}: partial spectrum not descending"));
        }
        let head: f64 = kle.eigenvalues().iter().map(|&l| l.max(0.0)).sum();
        if head > area * (1.0 + 1e-9) {
            return Err(format!(
                "{case:?}: head sum {head} exceeds the Mercer trace {area}"
            ));
        }
        let captured = kle.variance_captured(retained);
        let expected = head / area;
        if (captured - expected).abs() > 1e-12 {
            return Err(format!(
                "{case:?}: variance_captured {captured} is not head/trace {expected}"
            ));
        }
        let min = kle.eigenvalues().iter().copied().fold(f64::INFINITY, f64::min);
        if min < -1e-8 * area {
            return Err(format!("{case:?}: significantly negative eigenvalue {min}"));
        }
        Ok(())
    });
}

/// Throwaway deterministic draw helper so the file's RNG use stays
/// seed-stable (guards against accidental ambient entropy in tests).
#[test]
fn oracle_suite_is_deterministic_across_runs() {
    let run = || {
        let mut rng: StdRng = klest_rng::SeedableRng::seed_from_u64(99);
        let strat = strategies::descending_spectrum(3..10);
        (0..5).map(|_| strat.generate(&mut rng)).collect::<Vec<_>>()
    };
    assert_eq!(run(), run());
}
