//! Operator-equivalence lockdown for the matrix-free Galerkin path.
//!
//! `GalerkinOperator::apply` must be **bitwise** identical to a matvec
//! against the dense `assemble_galerkin` matrix — for every shard count,
//! every quadrature rule, and with or without a live cancellation token.
//! The suite also pins the failure modes: a cancelled token surfaces a
//! typed `Cancelled` with the matvec stage, a NaN-poisoned kernel turns
//! into a typed error instead of a hung iteration, and `k >= n` falls
//! back to the dense solver with the full spectrum.

use klest_core::{
    assemble_galerkin, EigenSolver, GalerkinKle, GalerkinOperator, KleOptions, QuadratureRule,
};
use klest_geometry::{Point2, Rect};
use klest_kernels::{CovarianceKernel, GaussianKernel};
use klest_linalg::{LinalgError, LinearOperator};
use klest_mesh::{Mesh, MeshBuilder};
use klest_runtime::CancelToken;

/// Builds a mesh large enough to clear `PARALLEL_MIN_TRIANGLES` so the
/// sharded path actually engages.
fn parallel_mesh() -> Mesh {
    let mesh = MeshBuilder::new(Rect::unit_die())
        .max_area(0.02)
        .min_angle_degrees(28.0)
        .build()
        .expect("unit-die mesh");
    assert!(
        mesh.len() >= klest_core::PARALLEL_MIN_TRIANGLES,
        "mesh too small ({}) to exercise the sharded matvec",
        mesh.len()
    );
    mesh
}

/// Deterministic dense-ish probe vector (values in [-0.5, 0.5)).
fn probe(n: usize, seed: u64) -> Vec<f64> {
    let mut state = seed.wrapping_mul(0x9e3779b97f4a7c15).wrapping_add(1);
    (0..n)
        .map(|_| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 11) as f64 / (1u64 << 53) as f64) - 0.5
        })
        .collect()
}

#[test]
fn operator_apply_is_bitwise_equal_to_dense_matvec_for_any_shard_count() {
    let mesh = parallel_mesh();
    let kernel = GaussianKernel::with_correlation_distance(0.7);
    let n = mesh.len();
    for rule in [QuadratureRule::Centroid, QuadratureRule::ThreePoint] {
        let dense = assemble_galerkin(&mesh, &kernel, rule);
        let x = probe(n, 17);
        let mut want = vec![0.0; n];
        dense.apply(&x, &mut want).expect("dense matvec");
        for threads in [1usize, 2, 8] {
            let op = GalerkinOperator::new(&mesh, &kernel, rule, threads);
            let mut got = vec![0.0; n];
            op.apply(&x, &mut got).expect("operator matvec");
            assert_eq!(
                got, want,
                "shard count {threads} drifted bitwise from the dense matvec ({rule:?})"
            );
        }
    }
}

#[test]
fn operator_apply_is_bitwise_stable_under_a_live_token() {
    let mesh = parallel_mesh();
    let kernel = GaussianKernel::with_correlation_distance(0.5);
    let n = mesh.len();
    let x = probe(n, 99);
    let plain = GalerkinOperator::new(&mesh, &kernel, QuadratureRule::Centroid, 4);
    let mut want = vec![0.0; n];
    plain.apply(&x, &mut want).expect("plain matvec");

    let token = CancelToken::unlimited();
    let supervised =
        GalerkinOperator::new(&mesh, &kernel, QuadratureRule::Centroid, 4).with_token(&token);
    let mut got = vec![0.0; n];
    supervised.apply(&x, &mut got).expect("supervised matvec");
    assert_eq!(got, want, "live token changed the matvec bits");
}

#[test]
fn cancelled_token_surfaces_typed_matvec_stage() {
    let mesh = parallel_mesh();
    let kernel = GaussianKernel::with_correlation_distance(0.5);
    let n = mesh.len();
    let x = probe(n, 3);
    let token = CancelToken::unlimited();
    token.cancel();
    let op = GalerkinOperator::new(&mesh, &kernel, QuadratureRule::Centroid, 1).with_token(&token);
    let mut y = vec![0.0; n];
    match op.apply(&x, &mut y) {
        Err(LinalgError::Cancelled(c)) => {
            assert_eq!(c.stage, "galerkin/matvec");
            assert_eq!(c.completed, 0, "pre-tripped token completed no rows");
        }
        other => panic!("expected Cancelled, got {other:?}"),
    }
    // Sharded route reports the same typed stage.
    let op = GalerkinOperator::new(&mesh, &kernel, QuadratureRule::Centroid, 4).with_token(&token);
    match op.apply(&x, &mut y) {
        Err(LinalgError::Cancelled(c)) => assert_eq!(c.stage, "galerkin/matvec"),
        other => panic!("expected Cancelled from sharded apply, got {other:?}"),
    }
}

#[test]
fn operator_rejects_dimension_mismatch() {
    let mesh = parallel_mesh();
    let kernel = GaussianKernel::with_correlation_distance(0.5);
    let op = GalerkinOperator::new(&mesh, &kernel, QuadratureRule::Centroid, 1);
    let x = vec![0.0; mesh.len() + 1];
    let mut y = vec![0.0; mesh.len()];
    assert!(matches!(
        op.apply(&x, &mut y),
        Err(LinalgError::DimensionMismatch { .. })
    ));
}

/// A kernel that poisons every evaluation — the matrix-free solve must
/// refuse with a typed error rather than iterate on garbage.
struct NanKernel;

impl CovarianceKernel for NanKernel {
    fn eval(&self, _x: Point2, _y: Point2) -> f64 {
        f64::NAN
    }

    fn name(&self) -> &str {
        "nan-poisoned"
    }
}

#[test]
fn nan_poisoned_kernel_fails_typed_instead_of_looping() {
    let mesh = MeshBuilder::new(Rect::unit_die())
        .max_area(0.1)
        .min_angle_degrees(25.0)
        .build()
        .expect("mesh");
    let options = KleOptions {
        solver: EigenSolver::MatrixFree {
            k: 4,
            max_iters: 50,
        },
        ..KleOptions::default()
    };
    match GalerkinKle::compute(&mesh, &NanKernel, options) {
        Err(e) => {
            let msg = e.to_string();
            assert!(
                msg.contains("not finite"),
                "expected a non-finite diagnostic, got: {msg}"
            );
        }
        Ok(_) => panic!("NaN kernel must not produce a KLE"),
    }
}

#[test]
fn matrix_free_with_k_at_least_n_matches_full_dense_solve() {
    let mesh = MeshBuilder::new(Rect::unit_die())
        .max_area(0.15)
        .min_angle_degrees(25.0)
        .build()
        .expect("mesh");
    let kernel = GaussianKernel::with_correlation_distance(1.0);
    let n = mesh.len();
    let dense = GalerkinKle::compute(&mesh, &kernel, KleOptions::default()).expect("dense");
    let fallback = GalerkinKle::compute(
        &mesh,
        &kernel,
        KleOptions {
            solver: EigenSolver::MatrixFree {
                k: n + 5,
                max_iters: 100,
            },
            ..KleOptions::default()
        },
    )
    .expect("fallback");
    assert_eq!(fallback.eigenvalues().len(), n);
    assert_eq!(
        fallback.eigenvalues(),
        dense.eigenvalues(),
        "k >= n fallback must be the dense solver, bit for bit"
    );
}
