//! Axis-aligned bounding boxes.

use crate::Point2;

/// Axis-aligned bounding box.
///
/// Besides bounding geometry, the *half perimeter* of a net's pin bounding
/// box is the HPWL wire-load model used by the STA (paper Sec. 5.1).
///
/// ```
/// use klest_geometry::{BBox, Point2};
/// let b = BBox::from_points([
///     Point2::new(0.0, 0.0),
///     Point2::new(2.0, 1.0),
/// ]).unwrap();
/// assert_eq!(b.half_perimeter(), 3.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BBox {
    /// Lower-left corner.
    pub min: Point2,
    /// Upper-right corner.
    pub max: Point2,
}

impl BBox {
    /// Creates a box from two opposite corners (in any order).
    pub fn new(p: Point2, q: Point2) -> Self {
        BBox {
            min: Point2::new(p.x.min(q.x), p.y.min(q.y)),
            max: Point2::new(p.x.max(q.x), p.y.max(q.y)),
        }
    }

    /// A degenerate box containing a single point.
    pub fn from_point(p: Point2) -> Self {
        BBox { min: p, max: p }
    }

    /// Smallest box containing every point of the iterator, or `None` when
    /// the iterator is empty.
    pub fn from_points<I: IntoIterator<Item = Point2>>(points: I) -> Option<Self> {
        let mut it = points.into_iter();
        let first = it.next()?;
        let mut b = BBox::from_point(first);
        for p in it {
            b.expand(p);
        }
        Some(b)
    }

    /// Grows the box (in place) to include `p`.
    pub fn expand(&mut self, p: Point2) {
        self.min.x = self.min.x.min(p.x);
        self.min.y = self.min.y.min(p.y);
        self.max.x = self.max.x.max(p.x);
        self.max.y = self.max.y.max(p.y);
    }

    /// Union of two boxes.
    pub fn union(&self, other: &BBox) -> BBox {
        let mut b = *self;
        b.expand(other.min);
        b.expand(other.max);
        b
    }

    /// Box width (x extent).
    #[inline]
    pub fn width(&self) -> f64 {
        self.max.x - self.min.x
    }

    /// Box height (y extent).
    #[inline]
    pub fn height(&self) -> f64 {
        self.max.y - self.min.y
    }

    /// Half-perimeter wirelength: `width + height`.
    #[inline]
    pub fn half_perimeter(&self) -> f64 {
        self.width() + self.height()
    }

    /// Box area.
    #[inline]
    pub fn area(&self) -> f64 {
        self.width() * self.height()
    }

    /// Center of the box.
    #[inline]
    pub fn center(&self) -> Point2 {
        self.min.midpoint(self.max)
    }

    /// Does the box contain `p` (boundary included)?
    #[inline]
    pub fn contains(&self, p: Point2) -> bool {
        p.x >= self.min.x && p.x <= self.max.x && p.y >= self.min.y && p.y <= self.max.y
    }

    /// Do the two boxes overlap (boundary contact counts)?
    pub fn intersects(&self, other: &BBox) -> bool {
        self.min.x <= other.max.x
            && other.min.x <= self.max.x
            && self.min.y <= other.max.y
            && other.min.y <= self.max.y
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corners_normalized() {
        let b = BBox::new(Point2::new(2.0, -1.0), Point2::new(-1.0, 3.0));
        assert_eq!(b.min, Point2::new(-1.0, -1.0));
        assert_eq!(b.max, Point2::new(2.0, 3.0));
        assert_eq!(b.width(), 3.0);
        assert_eq!(b.height(), 4.0);
        assert_eq!(b.half_perimeter(), 7.0);
        assert_eq!(b.area(), 12.0);
        assert_eq!(b.center(), Point2::new(0.5, 1.0));
    }

    #[test]
    fn from_points_and_expand() {
        assert!(BBox::from_points(std::iter::empty()).is_none());
        let b = BBox::from_points([
            Point2::new(0.0, 0.5),
            Point2::new(-2.0, 0.0),
            Point2::new(1.0, 4.0),
        ])
        .unwrap();
        assert_eq!(b.min, Point2::new(-2.0, 0.0));
        assert_eq!(b.max, Point2::new(1.0, 4.0));
    }

    #[test]
    fn contains_and_intersects() {
        let a = BBox::new(Point2::new(0.0, 0.0), Point2::new(1.0, 1.0));
        let b = BBox::new(Point2::new(0.5, 0.5), Point2::new(2.0, 2.0));
        let c = BBox::new(Point2::new(3.0, 3.0), Point2::new(4.0, 4.0));
        assert!(a.contains(Point2::new(0.5, 0.5)));
        assert!(a.contains(Point2::new(1.0, 1.0)), "boundary");
        assert!(!a.contains(Point2::new(1.1, 0.5)));
        assert!(a.intersects(&b));
        assert!(b.intersects(&a));
        assert!(!a.intersects(&c));
        let u = a.union(&c);
        assert_eq!(u.min, Point2::new(0.0, 0.0));
        assert_eq!(u.max, Point2::new(4.0, 4.0));
    }

    #[test]
    fn degenerate_point_box() {
        let b = BBox::from_point(Point2::new(1.0, 2.0));
        assert_eq!(b.half_perimeter(), 0.0);
        assert!(b.contains(Point2::new(1.0, 2.0)));
        assert!(!b.contains(Point2::new(1.0, 2.1)));
    }
}
