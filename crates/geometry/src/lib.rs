//! # klest-geometry
//!
//! Plane geometry foundation for the `klest` workspace: points, vectors,
//! triangles, axis-aligned boxes, polygons and the orientation / in-circle
//! predicates used by the Delaunay mesher in `klest-mesh`.
//!
//! Everything works on the *normalized die*: the chip area is mapped to a
//! rectangle (usually `[-1, 1] x [-1, 1]`), matching the paper's Fig. 1.
//!
//! ```
//! use klest_geometry::{Point2, Triangle};
//!
//! let t = Triangle::new(
//!     Point2::new(0.0, 0.0),
//!     Point2::new(1.0, 0.0),
//!     Point2::new(0.0, 1.0),
//! );
//! assert!((t.area() - 0.5).abs() < 1e-12);
//! assert!(t.contains(Point2::new(0.25, 0.25)));
//! ```

#![deny(missing_docs)]

mod bbox;
mod point;
mod polygon;
mod predicates;
mod triangle;

pub use bbox::BBox;
pub use point::{Point2, Vector2};
pub use polygon::{Polygon, PolygonError, Rect};
pub use predicates::{in_circle, orient2d, orient2d_raw, Orientation};
pub use triangle::Triangle;

/// Tolerance used by geometric comparisons that must absorb floating-point
/// noise (e.g. point-on-edge tests during point location).
pub const GEOM_EPS: f64 = 1e-12;
