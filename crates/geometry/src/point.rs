//! Points and vectors in the plane.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

/// A location on the (normalized) die plane.
///
/// `Point2` is an affine point; displacement between points is a
/// [`Vector2`]. Both are plain `f64` pairs and are `Copy`.
///
/// ```
/// use klest_geometry::Point2;
/// let a = Point2::new(0.0, 0.0);
/// let b = Point2::new(3.0, 4.0);
/// assert_eq!(a.distance(b), 5.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Point2 {
    /// Horizontal coordinate.
    pub x: f64,
    /// Vertical coordinate.
    pub y: f64,
}

/// A displacement in the plane (difference of two [`Point2`]s).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Vector2 {
    /// Horizontal component.
    pub x: f64,
    /// Vertical component.
    pub y: f64,
}

impl Point2 {
    /// The origin `(0, 0)`.
    pub const ORIGIN: Point2 = Point2 { x: 0.0, y: 0.0 };

    /// Creates a point from its coordinates.
    #[inline]
    pub const fn new(x: f64, y: f64) -> Self {
        Point2 { x, y }
    }

    /// Euclidean (L2) distance to `other`.
    #[inline]
    pub fn distance(self, other: Point2) -> f64 {
        (self - other).norm()
    }

    /// Squared Euclidean distance to `other` (avoids the square root).
    #[inline]
    pub fn distance_sq(self, other: Point2) -> f64 {
        (self - other).norm_sq()
    }

    /// Manhattan (L1) distance to `other`, used by the separable
    /// exponential kernel of the paper's eq. (5).
    #[inline]
    pub fn distance_l1(self, other: Point2) -> f64 {
        (self.x - other.x).abs() + (self.y - other.y).abs()
    }

    /// Chebyshev (L-infinity) distance to `other`.
    #[inline]
    pub fn distance_linf(self, other: Point2) -> f64 {
        (self.x - other.x).abs().max((self.y - other.y).abs())
    }

    /// Midpoint of the segment from `self` to `other`.
    #[inline]
    pub fn midpoint(self, other: Point2) -> Point2 {
        Point2::new(0.5 * (self.x + other.x), 0.5 * (self.y + other.y))
    }

    /// Linear interpolation: `self` at `t = 0`, `other` at `t = 1`.
    #[inline]
    pub fn lerp(self, other: Point2, t: f64) -> Point2 {
        Point2::new(
            self.x + t * (other.x - self.x),
            self.y + t * (other.y - self.y),
        )
    }

    /// Coordinates as a `[x, y]` array.
    #[inline]
    pub fn to_array(self) -> [f64; 2] {
        [self.x, self.y]
    }

    /// Returns true when both coordinates are finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.x.is_finite() && self.y.is_finite()
    }
}

impl Vector2 {
    /// The zero vector.
    pub const ZERO: Vector2 = Vector2 { x: 0.0, y: 0.0 };

    /// Creates a vector from its components.
    #[inline]
    pub const fn new(x: f64, y: f64) -> Self {
        Vector2 { x, y }
    }

    /// Euclidean length.
    #[inline]
    pub fn norm(self) -> f64 {
        self.norm_sq().sqrt()
    }

    /// Squared Euclidean length.
    #[inline]
    pub fn norm_sq(self) -> f64 {
        self.x * self.x + self.y * self.y
    }

    /// Dot product with `other`.
    #[inline]
    pub fn dot(self, other: Vector2) -> f64 {
        self.x * other.x + self.y * other.y
    }

    /// Z-component of the 3-D cross product (signed parallelogram area).
    #[inline]
    pub fn cross(self, other: Vector2) -> f64 {
        self.x * other.y - self.y * other.x
    }

    /// The vector rotated 90 degrees counter-clockwise.
    #[inline]
    pub fn perp(self) -> Vector2 {
        Vector2::new(-self.y, self.x)
    }

    /// Unit vector in the same direction, or `None` if the vector is
    /// (numerically) zero.
    pub fn normalized(self) -> Option<Vector2> {
        let n = self.norm();
        if n > 0.0 && n.is_finite() {
            Some(self / n)
        } else {
            None
        }
    }
}

impl From<(f64, f64)> for Point2 {
    fn from((x, y): (f64, f64)) -> Self {
        Point2::new(x, y)
    }
}

impl From<[f64; 2]> for Point2 {
    fn from([x, y]: [f64; 2]) -> Self {
        Point2::new(x, y)
    }
}

impl From<(f64, f64)> for Vector2 {
    fn from((x, y): (f64, f64)) -> Self {
        Vector2::new(x, y)
    }
}

impl fmt::Display for Point2 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.x, self.y)
    }
}

impl fmt::Display for Vector2 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "<{}, {}>", self.x, self.y)
    }
}

impl Sub for Point2 {
    type Output = Vector2;
    #[inline]
    fn sub(self, rhs: Point2) -> Vector2 {
        Vector2::new(self.x - rhs.x, self.y - rhs.y)
    }
}

impl Add<Vector2> for Point2 {
    type Output = Point2;
    #[inline]
    fn add(self, rhs: Vector2) -> Point2 {
        Point2::new(self.x + rhs.x, self.y + rhs.y)
    }
}

impl Sub<Vector2> for Point2 {
    type Output = Point2;
    #[inline]
    fn sub(self, rhs: Vector2) -> Point2 {
        Point2::new(self.x - rhs.x, self.y - rhs.y)
    }
}

impl AddAssign<Vector2> for Point2 {
    #[inline]
    fn add_assign(&mut self, rhs: Vector2) {
        self.x += rhs.x;
        self.y += rhs.y;
    }
}

impl SubAssign<Vector2> for Point2 {
    #[inline]
    fn sub_assign(&mut self, rhs: Vector2) {
        self.x -= rhs.x;
        self.y -= rhs.y;
    }
}

impl Add for Vector2 {
    type Output = Vector2;
    #[inline]
    fn add(self, rhs: Vector2) -> Vector2 {
        Vector2::new(self.x + rhs.x, self.y + rhs.y)
    }
}

impl Sub for Vector2 {
    type Output = Vector2;
    #[inline]
    fn sub(self, rhs: Vector2) -> Vector2 {
        Vector2::new(self.x - rhs.x, self.y - rhs.y)
    }
}

impl Neg for Vector2 {
    type Output = Vector2;
    #[inline]
    fn neg(self) -> Vector2 {
        Vector2::new(-self.x, -self.y)
    }
}

impl Mul<f64> for Vector2 {
    type Output = Vector2;
    #[inline]
    fn mul(self, rhs: f64) -> Vector2 {
        Vector2::new(self.x * rhs, self.y * rhs)
    }
}

impl Mul<Vector2> for f64 {
    type Output = Vector2;
    #[inline]
    fn mul(self, rhs: Vector2) -> Vector2 {
        rhs * self
    }
}

impl Div<f64> for Vector2 {
    type Output = Vector2;
    #[inline]
    fn div(self, rhs: f64) -> Vector2 {
        Vector2::new(self.x / rhs, self.y / rhs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distance_345() {
        let a = Point2::new(0.0, 0.0);
        let b = Point2::new(3.0, 4.0);
        assert_eq!(a.distance(b), 5.0);
        assert_eq!(a.distance_sq(b), 25.0);
        assert_eq!(a.distance_l1(b), 7.0);
        assert_eq!(a.distance_linf(b), 4.0);
    }

    #[test]
    fn distance_is_symmetric() {
        let a = Point2::new(-0.3, 0.8);
        let b = Point2::new(0.95, -0.2);
        assert_eq!(a.distance(b), b.distance(a));
        assert_eq!(a.distance_l1(b), b.distance_l1(a));
    }

    #[test]
    fn midpoint_and_lerp() {
        let a = Point2::new(-1.0, -1.0);
        let b = Point2::new(1.0, 1.0);
        assert_eq!(a.midpoint(b), Point2::ORIGIN);
        assert_eq!(a.lerp(b, 0.0), a);
        assert_eq!(a.lerp(b, 1.0), b);
        assert_eq!(a.lerp(b, 0.25), Point2::new(-0.5, -0.5));
    }

    #[test]
    fn vector_algebra() {
        let u = Vector2::new(1.0, 2.0);
        let v = Vector2::new(3.0, -1.0);
        assert_eq!(u.dot(v), 1.0);
        assert_eq!(u.cross(v), -7.0);
        assert_eq!(u + v, Vector2::new(4.0, 1.0));
        assert_eq!(u - v, Vector2::new(-2.0, 3.0));
        assert_eq!(-u, Vector2::new(-1.0, -2.0));
        assert_eq!(u * 2.0, Vector2::new(2.0, 4.0));
        assert_eq!(2.0 * u, u * 2.0);
        assert_eq!(u / 2.0, Vector2::new(0.5, 1.0));
    }

    #[test]
    fn perp_is_ccw_rotation() {
        let u = Vector2::new(1.0, 0.0);
        assert_eq!(u.perp(), Vector2::new(0.0, 1.0));
        // perp is orthogonal and preserves length
        let v = Vector2::new(2.5, -3.5);
        assert_eq!(v.dot(v.perp()), 0.0);
        assert_eq!(v.perp().norm_sq(), v.norm_sq());
    }

    #[test]
    fn normalized_unit_length() {
        let v = Vector2::new(3.0, 4.0);
        let n = v.normalized().expect("nonzero");
        assert!((n.norm() - 1.0).abs() < 1e-15);
        assert!(Vector2::ZERO.normalized().is_none());
    }

    #[test]
    fn point_vector_ops() {
        let mut p = Point2::new(1.0, 1.0);
        p += Vector2::new(1.0, -1.0);
        assert_eq!(p, Point2::new(2.0, 0.0));
        p -= Vector2::new(2.0, 0.0);
        assert_eq!(p, Point2::ORIGIN);
        assert_eq!(Point2::new(1.0, 2.0) - Point2::ORIGIN, Vector2::new(1.0, 2.0));
    }

    #[test]
    fn conversions_and_display() {
        let p: Point2 = (1.0, 2.0).into();
        assert_eq!(p, Point2::new(1.0, 2.0));
        let q: Point2 = [3.0, 4.0].into();
        assert_eq!(q.to_array(), [3.0, 4.0]);
        assert_eq!(format!("{p}"), "(1, 2)");
        let v: Vector2 = (1.0, 2.0).into();
        assert_eq!(format!("{v}"), "<1, 2>");
    }

    #[test]
    fn finite_check() {
        assert!(Point2::new(1.0, 2.0).is_finite());
        assert!(!Point2::new(f64::NAN, 0.0).is_finite());
        assert!(!Point2::new(0.0, f64::INFINITY).is_finite());
    }
}
