//! Polygonal domains: the chip outline handed to the mesher.

use crate::predicates::orient2d_raw;
use crate::{BBox, Point2};

/// Signed "is left of directed edge a→b" value used by the winding-number
/// point-in-polygon test.
#[inline]
fn is_left(a: Point2, b: Point2, p: Point2) -> f64 {
    orient2d_raw(a, b, p)
}

/// An axis-aligned rectangular die region.
///
/// The paper normalizes the die to `[-1, 1] x [-1, 1]`; that rectangle is
/// [`Rect::unit_die`].
///
/// ```
/// use klest_geometry::{Point2, Rect};
/// let die = Rect::unit_die();
/// assert_eq!(die.area(), 4.0);
/// assert!(die.contains(Point2::new(0.0, 0.0)));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Rect {
    bbox: BBox,
}

impl Rect {
    /// Rectangle from two opposite corners (any order).
    pub fn new(p: Point2, q: Point2) -> Self {
        Rect { bbox: BBox::new(p, q) }
    }

    /// The normalized die `[-1, 1] x [-1, 1]` from the paper's Fig. 1.
    pub fn unit_die() -> Self {
        Rect::new(Point2::new(-1.0, -1.0), Point2::new(1.0, 1.0))
    }

    /// Bounding box (the rectangle itself).
    pub fn bbox(&self) -> BBox {
        self.bbox
    }

    /// Rectangle area.
    pub fn area(&self) -> f64 {
        self.bbox.area()
    }

    /// Width (x extent).
    pub fn width(&self) -> f64 {
        self.bbox.width()
    }

    /// Height (y extent).
    pub fn height(&self) -> f64 {
        self.bbox.height()
    }

    /// Is `p` inside or on the boundary?
    pub fn contains(&self, p: Point2) -> bool {
        self.bbox.contains(p)
    }

    /// Corners in counter-clockwise order starting at the lower-left.
    pub fn corners(&self) -> [Point2; 4] {
        [
            self.bbox.min,
            Point2::new(self.bbox.max.x, self.bbox.min.y),
            self.bbox.max,
            Point2::new(self.bbox.min.x, self.bbox.max.y),
        ]
    }

    /// The rectangle as a [`Polygon`].
    pub fn to_polygon(&self) -> Polygon {
        Polygon::new(self.corners().to_vec()).expect("rectangle corners form a valid polygon")
    }

    /// Maps a point in `[0,1]^2` to die coordinates.
    pub fn lerp(&self, u: f64, v: f64) -> Point2 {
        Point2::new(
            self.bbox.min.x + u * self.width(),
            self.bbox.min.y + v * self.height(),
        )
    }
}

/// Errors constructing a [`Polygon`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PolygonError {
    /// Fewer than three vertices were supplied.
    TooFewVertices,
    /// A vertex had a non-finite coordinate.
    NonFiniteVertex,
}

impl std::fmt::Display for PolygonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PolygonError::TooFewVertices => write!(f, "polygon needs at least 3 vertices"),
            PolygonError::NonFiniteVertex => write!(f, "polygon vertex is not finite"),
        }
    }
}

impl std::error::Error for PolygonError {}

/// A simple polygon given by its vertices in order (either winding).
///
/// The mesher accepts any simple polygonal die outline (paper Theorem 2
/// assumes a polygonal region); rectangles are the common case.
#[derive(Debug, Clone, PartialEq)]
pub struct Polygon {
    vertices: Vec<Point2>,
}

impl Polygon {
    /// Creates a polygon from its boundary vertices (at least three).
    ///
    /// # Errors
    ///
    /// Returns [`PolygonError::TooFewVertices`] for fewer than three
    /// vertices, and [`PolygonError::NonFiniteVertex`] if any coordinate is
    /// NaN or infinite.
    pub fn new(vertices: Vec<Point2>) -> Result<Self, PolygonError> {
        if vertices.len() < 3 {
            return Err(PolygonError::TooFewVertices);
        }
        if vertices.iter().any(|p| !p.is_finite()) {
            return Err(PolygonError::NonFiniteVertex);
        }
        Ok(Polygon { vertices })
    }

    /// Boundary vertices in order.
    pub fn vertices(&self) -> &[Point2] {
        &self.vertices
    }

    /// Number of vertices.
    pub fn len(&self) -> usize {
        self.vertices.len()
    }

    /// Always false: construction requires at least three vertices.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Signed area (positive for counter-clockwise winding) via the
    /// shoelace formula.
    pub fn signed_area(&self) -> f64 {
        let n = self.vertices.len();
        let mut sum = 0.0;
        for i in 0..n {
            let p = self.vertices[i];
            let q = self.vertices[(i + 1) % n];
            sum += p.x * q.y - q.x * p.y;
        }
        0.5 * sum
    }

    /// Unsigned area.
    pub fn area(&self) -> f64 {
        self.signed_area().abs()
    }

    /// Bounding box of the polygon.
    pub fn bbox(&self) -> BBox {
        BBox::from_points(self.vertices.iter().copied()).expect("polygon is non-empty")
    }

    /// Winding-number point-in-polygon test (boundary points count as
    /// inside).
    pub fn contains(&self, p: Point2) -> bool {
        let n = self.vertices.len();
        let mut winding = 0i32;
        for i in 0..n {
            let a = self.vertices[i];
            let b = self.vertices[(i + 1) % n];
            // Boundary check: p on segment ab.
            let cross = is_left(a, b, p);
            if cross.abs() < 1e-12 {
                let within_x = p.x >= a.x.min(b.x) - 1e-12 && p.x <= a.x.max(b.x) + 1e-12;
                let within_y = p.y >= a.y.min(b.y) - 1e-12 && p.y <= a.y.max(b.y) + 1e-12;
                if within_x && within_y {
                    return true;
                }
            }
            if a.y <= p.y {
                if b.y > p.y && cross > 0.0 {
                    winding += 1;
                }
            } else if b.y <= p.y && cross < 0.0 {
                winding -= 1;
            }
        }
        winding != 0
    }

    /// Boundary edges as vertex pairs.
    pub fn edges(&self) -> impl Iterator<Item = (Point2, Point2)> + '_ {
        let n = self.vertices.len();
        (0..n).map(move |i| (self.vertices[i], self.vertices[(i + 1) % n]))
    }
}

impl From<Rect> for Polygon {
    fn from(r: Rect) -> Self {
        r.to_polygon()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_die_basics() {
        let die = Rect::unit_die();
        assert_eq!(die.area(), 4.0);
        assert_eq!(die.width(), 2.0);
        assert_eq!(die.height(), 2.0);
        assert!(die.contains(Point2::new(1.0, -1.0)));
        assert!(!die.contains(Point2::new(1.1, 0.0)));
        assert_eq!(die.lerp(0.5, 0.5), Point2::ORIGIN);
        assert_eq!(die.lerp(0.0, 0.0), Point2::new(-1.0, -1.0));
        assert_eq!(die.lerp(1.0, 1.0), Point2::new(1.0, 1.0));
    }

    #[test]
    fn rect_to_polygon_ccw() {
        let p = Rect::unit_die().to_polygon();
        assert_eq!(p.len(), 4);
        assert_eq!(p.signed_area(), 4.0);
        assert!(!p.is_empty());
    }

    #[test]
    fn polygon_too_few_vertices() {
        let e = Polygon::new(vec![Point2::ORIGIN, Point2::new(1.0, 0.0)]);
        assert_eq!(e.unwrap_err(), PolygonError::TooFewVertices);
    }

    #[test]
    fn polygon_non_finite() {
        let e = Polygon::new(vec![
            Point2::ORIGIN,
            Point2::new(f64::NAN, 0.0),
            Point2::new(1.0, 1.0),
        ]);
        assert_eq!(e.unwrap_err(), PolygonError::NonFiniteVertex);
    }

    #[test]
    fn shoelace_l_shape() {
        // L-shaped hexagon with area 3.
        let poly = Polygon::new(vec![
            Point2::new(0.0, 0.0),
            Point2::new(2.0, 0.0),
            Point2::new(2.0, 1.0),
            Point2::new(1.0, 1.0),
            Point2::new(1.0, 2.0),
            Point2::new(0.0, 2.0),
        ])
        .unwrap();
        assert_eq!(poly.area(), 3.0);
        assert!(poly.contains(Point2::new(0.5, 1.5)));
        assert!(poly.contains(Point2::new(1.5, 0.5)));
        assert!(!poly.contains(Point2::new(1.5, 1.5)), "notch is outside");
        assert!(poly.contains(Point2::new(1.0, 1.0)), "reflex corner on boundary");
    }

    #[test]
    fn clockwise_polygon_contains() {
        // Same square, clockwise: contains must still work.
        let poly = Polygon::new(vec![
            Point2::new(0.0, 0.0),
            Point2::new(0.0, 1.0),
            Point2::new(1.0, 1.0),
            Point2::new(1.0, 0.0),
        ])
        .unwrap();
        assert_eq!(poly.signed_area(), -1.0);
        assert!(poly.contains(Point2::new(0.5, 0.5)));
        assert!(!poly.contains(Point2::new(1.5, 0.5)));
    }

    #[test]
    fn edges_iterate_closed_loop() {
        let poly = Rect::unit_die().to_polygon();
        let edges: Vec<_> = poly.edges().collect();
        assert_eq!(edges.len(), 4);
        assert_eq!(edges[3].1, poly.vertices()[0], "loop closes");
    }
}
