//! Orientation and in-circle predicates.
//!
//! These are the two predicates a Delaunay mesher needs. They are evaluated
//! in plain `f64` with a relative-error filter: results whose magnitude is
//! below the filter bound are classified as degenerate. For the meshes used
//! here (well-spaced refinement points on a normalized die) this is robust
//! in practice, and the property tests in `klest-mesh` exercise it.

use crate::Point2;

/// Result of an orientation test.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Orientation {
    /// The three points make a left turn (counter-clockwise).
    CounterClockwise,
    /// The three points make a right turn (clockwise).
    Clockwise,
    /// The three points are (numerically) collinear.
    Collinear,
}

/// Relative-error coefficient for the orientation filter
/// (`3 + 16 eps) eps` from Shewchuk's analysis, rounded up).
const ORIENT_ERR_BOUND: f64 = 3.3306690738754716e-16;
/// Relative-error coefficient for the in-circle filter.
const INCIRCLE_ERR_BOUND: f64 = 1.1102230246251565e-15 * 10.0;

/// Signed twice-area of the triangle `(a, b, c)`.
///
/// Positive when `(a, b, c)` is counter-clockwise. The raw value is also
/// useful: its magnitude is twice the triangle area.
#[inline]
pub fn orient2d_raw(a: Point2, b: Point2, c: Point2) -> f64 {
    (b.x - a.x) * (c.y - a.y) - (b.y - a.y) * (c.x - a.x)
}

/// Orientation of the point triple `(a, b, c)` with an error filter.
///
/// ```
/// use klest_geometry::{orient2d, Orientation, Point2};
/// let a = Point2::new(0.0, 0.0);
/// let b = Point2::new(1.0, 0.0);
/// assert_eq!(orient2d(a, b, Point2::new(0.0, 1.0)), Orientation::CounterClockwise);
/// assert_eq!(orient2d(a, b, Point2::new(0.0, -1.0)), Orientation::Clockwise);
/// assert_eq!(orient2d(a, b, Point2::new(2.0, 0.0)), Orientation::Collinear);
/// ```
pub fn orient2d(a: Point2, b: Point2, c: Point2) -> Orientation {
    let det = orient2d_raw(a, b, c);
    let detsum = ((b.x - a.x) * (c.y - a.y)).abs() + ((b.y - a.y) * (c.x - a.x)).abs();
    let bound = ORIENT_ERR_BOUND * detsum;
    if det > bound {
        Orientation::CounterClockwise
    } else if det < -bound {
        Orientation::Clockwise
    } else {
        Orientation::Collinear
    }
}

/// In-circle test: is `d` strictly inside the circumcircle of the
/// counter-clockwise triangle `(a, b, c)`?
///
/// Returns a positive value when `d` is inside, negative when outside, and
/// (approximately) zero when cocircular. Callers that need a boolean should
/// compare against zero; the magnitude has no geometric meaning beyond its
/// sign.
///
/// # Panics
///
/// Does not panic; degenerate (collinear) triangles yield a sign that
/// reflects the half-plane of `d`, which is what the Bowyer-Watson cavity
/// search wants for its ghost triangles.
pub fn in_circle(a: Point2, b: Point2, c: Point2, d: Point2) -> f64 {
    let adx = a.x - d.x;
    let ady = a.y - d.y;
    let bdx = b.x - d.x;
    let bdy = b.y - d.y;
    let cdx = c.x - d.x;
    let cdy = c.y - d.y;

    let abdet = adx * bdy - bdx * ady;
    let bcdet = bdx * cdy - cdx * bdy;
    let cadet = cdx * ady - adx * cdy;
    let alift = adx * adx + ady * ady;
    let blift = bdx * bdx + bdy * bdy;
    let clift = cdx * cdx + cdy * cdy;

    let det = alift * bcdet + blift * cadet + clift * abdet;
    let permanent =
        alift * bcdet.abs() + blift * cadet.abs() + clift * abdet.abs();
    let bound = INCIRCLE_ERR_BOUND * permanent;
    if det.abs() <= bound {
        0.0
    } else {
        det
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(x: f64, y: f64) -> Point2 {
        Point2::new(x, y)
    }

    #[test]
    fn orientation_basic() {
        assert_eq!(
            orient2d(p(0.0, 0.0), p(1.0, 0.0), p(1.0, 1.0)),
            Orientation::CounterClockwise
        );
        assert_eq!(
            orient2d(p(0.0, 0.0), p(1.0, 0.0), p(1.0, -1.0)),
            Orientation::Clockwise
        );
        assert_eq!(
            orient2d(p(0.0, 0.0), p(1.0, 1.0), p(2.0, 2.0)),
            Orientation::Collinear
        );
    }

    #[test]
    fn orientation_antisymmetry() {
        let (a, b, c) = (p(0.1, 0.2), p(0.9, -0.3), p(-0.5, 0.7));
        assert_eq!(orient2d(a, b, c), Orientation::CounterClockwise);
        assert_eq!(orient2d(a, c, b), Orientation::Clockwise);
        // cyclic permutation keeps orientation
        assert_eq!(orient2d(b, c, a), Orientation::CounterClockwise);
        assert_eq!(orient2d(c, a, b), Orientation::CounterClockwise);
    }

    #[test]
    fn orient_raw_is_twice_area() {
        let raw = orient2d_raw(p(0.0, 0.0), p(2.0, 0.0), p(0.0, 3.0));
        assert_eq!(raw, 6.0); // area 3, ccw
    }

    #[test]
    fn in_circle_unit_circle() {
        // Counter-clockwise triangle inscribed in the unit circle.
        let a = p(1.0, 0.0);
        let b = p(0.0, 1.0);
        let c = p(-1.0, 0.0);
        assert!(in_circle(a, b, c, p(0.0, 0.0)) > 0.0, "center is inside");
        assert!(in_circle(a, b, c, p(2.0, 0.0)) < 0.0, "far point is outside");
        assert_eq!(in_circle(a, b, c, p(0.0, -1.0)), 0.0, "cocircular");
    }

    #[test]
    fn in_circle_sign_flips_with_orientation() {
        let a = p(1.0, 0.0);
        let b = p(0.0, 1.0);
        let c = p(-1.0, 0.0);
        let d = p(0.1, 0.1);
        let ccw = in_circle(a, b, c, d);
        let cw = in_circle(a, c, b, d);
        assert!(ccw > 0.0);
        assert!(cw < 0.0);
    }

    #[test]
    fn in_circle_near_degenerate_is_zeroed() {
        // Four nearly-cocircular points: the filter must not produce a
        // confidently wrong sign.
        let a = p(1.0, 0.0);
        let b = p(0.0, 1.0);
        let c = p(-1.0, 0.0);
        let d = p(0.0, -1.0 - 1e-18);
        assert_eq!(in_circle(a, b, c, d), 0.0);
    }
}
