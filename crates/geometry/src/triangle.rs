//! Triangle primitives: area, centroid, circumcircle, angles, quality.

use crate::predicates::{orient2d_raw, Orientation};
use crate::{orient2d, Point2, GEOM_EPS};

/// A triangle given by its three corner points.
///
/// The corners may be in either winding; methods that care (signed area)
/// say so. The Galerkin method of the paper (Sec. 4) only needs the
/// unsigned [`area`](Triangle::area) and the [`centroid`](Triangle::centroid).
///
/// ```
/// use klest_geometry::{Point2, Triangle};
/// let t = Triangle::new(
///     Point2::new(0.0, 0.0),
///     Point2::new(2.0, 0.0),
///     Point2::new(0.0, 2.0),
/// );
/// assert_eq!(t.area(), 2.0);
/// let c = t.centroid();
/// assert!((c.x - 2.0 / 3.0).abs() < 1e-15);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Triangle {
    /// First corner.
    pub a: Point2,
    /// Second corner.
    pub b: Point2,
    /// Third corner.
    pub c: Point2,
}

impl Triangle {
    /// Creates a triangle from three corners.
    #[inline]
    pub const fn new(a: Point2, b: Point2, c: Point2) -> Self {
        Triangle { a, b, c }
    }

    /// Corners as an array, in construction order.
    #[inline]
    pub fn vertices(&self) -> [Point2; 3] {
        [self.a, self.b, self.c]
    }

    /// Signed area: positive for counter-clockwise winding.
    #[inline]
    pub fn signed_area(&self) -> f64 {
        0.5 * orient2d_raw(self.a, self.b, self.c)
    }

    /// Unsigned area `a_i` as used in the Galerkin matrix (paper eq. 18).
    #[inline]
    pub fn area(&self) -> f64 {
        self.signed_area().abs()
    }

    /// Centroid `x_Δ`, the quadrature node of the centroid rule (eq. 20).
    #[inline]
    pub fn centroid(&self) -> Point2 {
        Point2::new(
            (self.a.x + self.b.x + self.c.x) / 3.0,
            (self.a.y + self.b.y + self.c.y) / 3.0,
        )
    }

    /// Lengths of the three sides `(|bc|, |ca|, |ab|)` (opposite each corner).
    #[inline]
    pub fn side_lengths(&self) -> [f64; 3] {
        [
            self.b.distance(self.c),
            self.c.distance(self.a),
            self.a.distance(self.b),
        ]
    }

    /// Length of the longest side; the paper's `h` is the maximum of this
    /// over the whole triangulation (Theorem 2).
    #[inline]
    pub fn longest_side(&self) -> f64 {
        let [x, y, z] = self.side_lengths();
        x.max(y).max(z)
    }

    /// Length of the shortest side.
    #[inline]
    pub fn shortest_side(&self) -> f64 {
        let [x, y, z] = self.side_lengths();
        x.min(y).min(z)
    }

    /// Interior angles in radians, opposite corners `a`, `b`, `c`.
    ///
    /// Degenerate triangles yield NaN angles.
    pub fn angles(&self) -> [f64; 3] {
        let [la, lb, lc] = self.side_lengths();
        let angle = |opp: f64, s1: f64, s2: f64| {
            ((s1 * s1 + s2 * s2 - opp * opp) / (2.0 * s1 * s2))
                .clamp(-1.0, 1.0)
                .acos()
        };
        [angle(la, lb, lc), angle(lb, lc, la), angle(lc, la, lb)]
    }

    /// Smallest interior angle in radians (the Ruppert quality measure).
    pub fn min_angle(&self) -> f64 {
        let [x, y, z] = self.angles();
        x.min(y).min(z)
    }

    /// Circumcenter and circumradius, or `None` for a degenerate triangle.
    ///
    /// The circumcenter is equidistant from all three corners; Delaunay
    /// refinement inserts it to kill skinny triangles.
    pub fn circumcircle(&self) -> Option<(Point2, f64)> {
        let d = 2.0 * orient2d_raw(self.a, self.b, self.c);
        if d.abs() < GEOM_EPS {
            return None;
        }
        let (ax, ay) = (self.a.x, self.a.y);
        let (bx, by) = (self.b.x, self.b.y);
        let (cx, cy) = (self.c.x, self.c.y);
        let a2 = ax * ax + ay * ay;
        let b2 = bx * bx + by * by;
        let c2 = cx * cx + cy * cy;
        let ux = (a2 * (by - cy) + b2 * (cy - ay) + c2 * (ay - by)) / d;
        let uy = (a2 * (cx - bx) + b2 * (ax - cx) + c2 * (bx - ax)) / d;
        let center = Point2::new(ux, uy);
        Some((center, center.distance(self.a)))
    }

    /// Circumradius-to-shortest-edge ratio; Ruppert refinement bounds this
    /// by `1 / (2 sin(min_angle))`.
    pub fn radius_edge_ratio(&self) -> Option<f64> {
        let (_, r) = self.circumcircle()?;
        let s = self.shortest_side();
        if s < GEOM_EPS {
            None
        } else {
            Some(r / s)
        }
    }

    /// Does the triangle contain `p` (boundary included)?
    ///
    /// Works for either winding.
    pub fn contains(&self, p: Point2) -> bool {
        let orientations = [
            orient2d(self.a, self.b, p),
            orient2d(self.b, self.c, p),
            orient2d(self.c, self.a, p),
        ];
        let has_ccw = orientations.contains(&Orientation::CounterClockwise);
        let has_cw = orientations.contains(&Orientation::Clockwise);
        !(has_ccw && has_cw)
    }

    /// Barycentric coordinates of `p` with respect to `(a, b, c)`.
    ///
    /// Returns `None` for degenerate triangles. Inside points have all
    /// three coordinates in `[0, 1]`.
    pub fn barycentric(&self, p: Point2) -> Option<[f64; 3]> {
        let den = orient2d_raw(self.a, self.b, self.c);
        if den.abs() < GEOM_EPS {
            return None;
        }
        let wa = orient2d_raw(p, self.b, self.c) / den;
        let wb = orient2d_raw(self.a, p, self.c) / den;
        let wc = orient2d_raw(self.a, self.b, p) / den;
        Some([wa, wb, wc])
    }

    /// Returns the triangle with counter-clockwise winding.
    pub fn ccw(&self) -> Triangle {
        if self.signed_area() < 0.0 {
            Triangle::new(self.a, self.c, self.b)
        } else {
            *self
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit_right() -> Triangle {
        Triangle::new(
            Point2::new(0.0, 0.0),
            Point2::new(1.0, 0.0),
            Point2::new(0.0, 1.0),
        )
    }

    #[test]
    fn area_and_winding() {
        let t = unit_right();
        assert_eq!(t.area(), 0.5);
        assert_eq!(t.signed_area(), 0.5);
        let r = Triangle::new(t.a, t.c, t.b);
        assert_eq!(r.signed_area(), -0.5);
        assert_eq!(r.area(), 0.5);
        assert_eq!(r.ccw().signed_area(), 0.5);
    }

    #[test]
    fn centroid_is_average() {
        let t = Triangle::new(
            Point2::new(-1.0, -1.0),
            Point2::new(1.0, -1.0),
            Point2::new(0.0, 2.0),
        );
        let c = t.centroid();
        assert!((c.x - 0.0).abs() < 1e-15);
        assert!((c.y - 0.0).abs() < 1e-15);
    }

    #[test]
    fn angles_sum_to_pi() {
        let t = Triangle::new(
            Point2::new(0.2, 0.1),
            Point2::new(0.9, 0.3),
            Point2::new(0.4, 0.8),
        );
        let sum: f64 = t.angles().iter().sum();
        assert!((sum - std::f64::consts::PI).abs() < 1e-12);
    }

    #[test]
    fn equilateral_min_angle() {
        let h = 3f64.sqrt() / 2.0;
        let t = Triangle::new(
            Point2::new(0.0, 0.0),
            Point2::new(1.0, 0.0),
            Point2::new(0.5, h),
        );
        assert!((t.min_angle() - std::f64::consts::FRAC_PI_3).abs() < 1e-12);
        // radius-edge ratio of an equilateral is 1/sqrt(3)
        let rho = t.radius_edge_ratio().expect("non-degenerate");
        assert!((rho - 1.0 / 3f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn circumcircle_equidistant() {
        let t = Triangle::new(
            Point2::new(0.0, 0.0),
            Point2::new(4.0, 0.0),
            Point2::new(1.0, 3.0),
        );
        let (c, r) = t.circumcircle().expect("non-degenerate");
        for v in t.vertices() {
            assert!((c.distance(v) - r).abs() < 1e-12);
        }
    }

    #[test]
    fn circumcircle_degenerate_none() {
        let t = Triangle::new(
            Point2::new(0.0, 0.0),
            Point2::new(1.0, 1.0),
            Point2::new(2.0, 2.0),
        );
        assert!(t.circumcircle().is_none());
        assert!(t.barycentric(Point2::ORIGIN).is_none());
    }

    #[test]
    fn containment() {
        let t = unit_right();
        assert!(t.contains(Point2::new(0.25, 0.25)));
        assert!(t.contains(Point2::new(0.0, 0.0)), "corner");
        assert!(t.contains(Point2::new(0.5, 0.0)), "edge");
        assert!(t.contains(Point2::new(0.5, 0.5)), "hypotenuse");
        assert!(!t.contains(Point2::new(0.6, 0.6)));
        assert!(!t.contains(Point2::new(-0.1, 0.5)));
        // winding must not matter
        let r = Triangle::new(t.a, t.c, t.b);
        assert!(r.contains(Point2::new(0.25, 0.25)));
        assert!(!r.contains(Point2::new(0.6, 0.6)));
    }

    #[test]
    fn barycentric_roundtrip() {
        let t = Triangle::new(
            Point2::new(0.0, 0.0),
            Point2::new(3.0, 0.0),
            Point2::new(0.0, 3.0),
        );
        let p = Point2::new(1.0, 1.0);
        let [wa, wb, wc] = t.barycentric(p).expect("non-degenerate");
        assert!((wa + wb + wc - 1.0).abs() < 1e-12);
        let rx = wa * t.a.x + wb * t.b.x + wc * t.c.x;
        let ry = wa * t.a.y + wb * t.b.y + wc * t.c.y;
        assert!((rx - p.x).abs() < 1e-12);
        assert!((ry - p.y).abs() < 1e-12);
        // centroid has equal weights
        let [ca, cb, cc] = t.barycentric(t.centroid()).expect("non-degenerate");
        assert!((ca - 1.0 / 3.0).abs() < 1e-12);
        assert!((cb - 1.0 / 3.0).abs() < 1e-12);
        assert!((cc - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn side_lengths_ordering() {
        let t = unit_right();
        assert!((t.longest_side() - 2f64.sqrt()).abs() < 1e-15);
        assert_eq!(t.shortest_side(), 1.0);
    }
}
