//! Kernel algebra: combinators that build new valid kernels from valid
//! parts.
//!
//! Positive-definite kernels are closed under convex combination,
//! products, positive scaling and composition with linear coordinate
//! maps. These combinators let users express realistic variation models
//! — e.g. a long-range lithography component plus a short-range
//! layout-dependent one plus a purely random per-device "nugget"
//! (Pelgrom-style mismatch [11]) — and push them through the same
//! Galerkin/KLE pipeline as the built-ins.

use crate::{CovarianceKernel, KernelError};
use klest_geometry::Point2;

/// Convex combination of two kernels:
/// `K = w K_a + (1 - w) K_b`, valid for `w ∈ [0, 1]`.
///
/// ```
/// use klest_kernels::{BlendKernel, CovarianceKernel, ExponentialKernel, GaussianKernel};
/// use klest_geometry::Point2;
/// # fn main() -> Result<(), klest_kernels::KernelError> {
/// let k = BlendKernel::new(GaussianKernel::new(1.0), ExponentialKernel::new(2.0), 0.7)?;
/// assert!((k.eval(Point2::ORIGIN, Point2::ORIGIN) - 1.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BlendKernel<A, B> {
    a: A,
    b: B,
    weight: f64,
}

impl<A: CovarianceKernel, B: CovarianceKernel> BlendKernel<A, B> {
    /// Blends `a` (weight `w`) with `b` (weight `1 - w`).
    ///
    /// # Errors
    ///
    /// [`KernelError::NonPositiveParameter`] if `w` is outside `[0, 1]`.
    pub fn new(a: A, b: B, weight: f64) -> Result<Self, KernelError> {
        if !(0.0..=1.0).contains(&weight) {
            return Err(KernelError::NonPositiveParameter {
                name: "weight",
                value: weight,
            });
        }
        Ok(BlendKernel { a, b, weight })
    }

    /// The blend weight on the first kernel.
    pub fn weight(&self) -> f64 {
        self.weight
    }
}

impl<A: CovarianceKernel, B: CovarianceKernel> CovarianceKernel for BlendKernel<A, B> {
    fn eval(&self, x: Point2, y: Point2) -> f64 {
        self.weight * self.a.eval(x, y) + (1.0 - self.weight) * self.b.eval(x, y)
    }

    fn name(&self) -> &str {
        "blend"
    }

    fn correlation_at_distance(&self, r: f64) -> Option<f64> {
        let a = self.a.correlation_at_distance(r)?;
        let b = self.b.correlation_at_distance(r)?;
        Some(self.weight * a + (1.0 - self.weight) * b)
    }
}

/// Product of two kernels: `K = K_a · K_b` (Schur product theorem keeps
/// it valid; self-correlation stays 1).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProductKernel<A, B> {
    a: A,
    b: B,
}

impl<A: CovarianceKernel, B: CovarianceKernel> ProductKernel<A, B> {
    /// Multiplies two kernels.
    pub fn new(a: A, b: B) -> Self {
        ProductKernel { a, b }
    }
}

impl<A: CovarianceKernel, B: CovarianceKernel> CovarianceKernel for ProductKernel<A, B> {
    fn eval(&self, x: Point2, y: Point2) -> f64 {
        self.a.eval(x, y) * self.b.eval(x, y)
    }

    fn name(&self) -> &str {
        "product"
    }

    fn correlation_at_distance(&self, r: f64) -> Option<f64> {
        Some(self.a.correlation_at_distance(r)? * self.b.correlation_at_distance(r)?)
    }
}

/// Nugget kernel: mixes a spatially correlated component with a purely
/// random per-device component of relative variance `nugget`
/// (`K(x,x) = 1` still; `K(x,y) = (1-nugget)·K_base(x,y)` for `x ≠ y`).
///
/// This is the Pelgrom mismatch term [11]: even coincident devices are
/// not perfectly correlated. Note the resulting field is *discontinuous*
/// — the KLE of the correlated part should be computed on the base
/// kernel, with the nugget added as an independent per-gate normal
/// (which is exactly what [`split`](NuggetKernel::split) returns).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NuggetKernel<K> {
    base: K,
    nugget: f64,
}

impl<K: CovarianceKernel> NuggetKernel<K> {
    /// Wraps `base` with relative nugget variance `nugget ∈ [0, 1)`.
    ///
    /// # Errors
    ///
    /// [`KernelError::NonPositiveParameter`] if `nugget` is outside
    /// `[0, 1)`.
    pub fn new(base: K, nugget: f64) -> Result<Self, KernelError> {
        if !(0.0..1.0).contains(&nugget) {
            return Err(KernelError::NonPositiveParameter {
                name: "nugget",
                value: nugget,
            });
        }
        Ok(NuggetKernel { base, nugget })
    }

    /// `(correlated_weight, nugget_weight)` = `(1 - nugget, nugget)`:
    /// the variance split for samplers that draw the correlated part via
    /// KLE and add independent noise.
    pub fn split(&self) -> (f64, f64) {
        (1.0 - self.nugget, self.nugget)
    }

    /// The wrapped base kernel.
    pub fn base(&self) -> &K {
        &self.base
    }
}

impl<K: CovarianceKernel> CovarianceKernel for NuggetKernel<K> {
    fn eval(&self, x: Point2, y: Point2) -> f64 {
        if x == y {
            1.0
        } else {
            (1.0 - self.nugget) * self.base.eval(x, y)
        }
    }

    fn name(&self) -> &str {
        "nugget"
    }
}

/// Anisotropic wrapper: evaluates the base kernel after a linear map of
/// the coordinates, `K(x, y) = K_base(A x, A y)`. With a diagonal map
/// this stretches the correlation lengths per axis (e.g. lithography
/// scan direction); a rotation models tilted anisotropy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AnisotropicKernel<K> {
    base: K,
    /// Row-major 2x2 coordinate map.
    map: [[f64; 2]; 2],
}

impl<K: CovarianceKernel> AnisotropicKernel<K> {
    /// Wraps `base` with an explicit 2x2 map.
    ///
    /// # Errors
    ///
    /// [`KernelError::NonPositiveParameter`] if the map is singular
    /// (determinant ~ 0), which would collapse the die to a line.
    pub fn new(base: K, map: [[f64; 2]; 2]) -> Result<Self, KernelError> {
        let det = map[0][0] * map[1][1] - map[0][1] * map[1][0];
        if det.abs() < 1e-12 || !det.is_finite() {
            return Err(KernelError::NonPositiveParameter {
                name: "map determinant",
                value: det,
            });
        }
        Ok(AnisotropicKernel { base, map })
    }

    /// Axis-aligned stretch: correlation shrinks by `sx` along x and
    /// `sy` along y.
    ///
    /// # Errors
    ///
    /// [`KernelError::NonPositiveParameter`] for non-positive factors.
    pub fn stretched(base: K, sx: f64, sy: f64) -> Result<Self, KernelError> {
        if sx <= 0.0 || sy <= 0.0 {
            return Err(KernelError::NonPositiveParameter {
                name: "stretch",
                value: sx.min(sy),
            });
        }
        Self::new(base, [[sx, 0.0], [0.0, sy]])
    }

    fn apply(&self, p: Point2) -> Point2 {
        Point2::new(
            self.map[0][0] * p.x + self.map[0][1] * p.y,
            self.map[1][0] * p.x + self.map[1][1] * p.y,
        )
    }
}

impl<K: CovarianceKernel> CovarianceKernel for AnisotropicKernel<K> {
    fn eval(&self, x: Point2, y: Point2) -> f64 {
        self.base.eval(self.apply(x), self.apply(y))
    }

    fn name(&self) -> &str {
        "anisotropic"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ExponentialKernel, GaussianKernel};

    fn p(x: f64, y: f64) -> Point2 {
        Point2::new(x, y)
    }

    #[test]
    fn blend_interpolates() {
        let g = GaussianKernel::new(1.0);
        let e = ExponentialKernel::new(1.0);
        let k = BlendKernel::new(g, e, 0.25).unwrap();
        assert_eq!(k.weight(), 0.25);
        let (a, b) = (p(0.0, 0.0), p(0.6, 0.0));
        let expect = 0.25 * g.eval(a, b) + 0.75 * e.eval(a, b);
        assert!((k.eval(a, b) - expect).abs() < 1e-15);
        assert!((k.eval(a, a) - 1.0).abs() < 1e-15);
        let iso = k.correlation_at_distance(0.6).unwrap();
        assert!((iso - expect).abs() < 1e-15);
        assert!(BlendKernel::new(g, e, 1.5).is_err());
        assert!(BlendKernel::new(g, e, -0.1).is_err());
        assert_eq!(k.name(), "blend");
    }

    #[test]
    fn product_multiplies() {
        let g = GaussianKernel::new(1.0);
        let e = ExponentialKernel::new(2.0);
        let k = ProductKernel::new(g, e);
        let (a, b) = (p(0.1, 0.2), p(-0.4, 0.5));
        assert!((k.eval(a, b) - g.eval(a, b) * e.eval(a, b)).abs() < 1e-15);
        assert!((k.eval(a, a) - 1.0).abs() < 1e-15);
        assert!(k.correlation_at_distance(0.5).unwrap() < g.correlation_at_distance(0.5).unwrap());
        assert_eq!(k.name(), "product");
    }

    #[test]
    fn nugget_splits_variance() {
        let base = GaussianKernel::new(1.0);
        let k = NuggetKernel::new(base, 0.2).unwrap();
        assert_eq!(k.split(), (0.8, 0.2));
        assert_eq!(k.eval(p(0.3, 0.3), p(0.3, 0.3)), 1.0, "unit variance kept");
        let (a, b) = (p(0.0, 0.0), p(0.5, 0.0));
        assert!((k.eval(a, b) - 0.8 * base.eval(a, b)).abs() < 1e-15);
        assert_eq!(k.base().decay(), 1.0);
        assert!(NuggetKernel::new(base, 1.0).is_err());
        assert!(NuggetKernel::new(base, -0.1).is_err());
    }

    #[test]
    fn nugget_discontinuity_at_zero_distance() {
        // lim_{y -> x} K(x, y) = 1 - nugget < K(x, x) = 1: the defining
        // discontinuity of mismatch.
        let k = NuggetKernel::new(GaussianKernel::new(1.0), 0.3).unwrap();
        let x = p(0.1, 0.1);
        let near = k.eval(x, p(0.1 + 1e-9, 0.1));
        assert!((near - 0.7).abs() < 1e-6);
        assert_eq!(k.eval(x, x), 1.0);
    }

    #[test]
    fn anisotropic_stretch() {
        let base = GaussianKernel::new(1.0);
        let k = AnisotropicKernel::stretched(base, 1.0, 3.0).unwrap();
        // Same physical separation decays faster along y.
        let along_x = k.eval(p(0.0, 0.0), p(0.5, 0.0));
        let along_y = k.eval(p(0.0, 0.0), p(0.0, 0.5));
        assert!(along_y < along_x);
        assert!((k.eval(p(0.2, -0.3), p(0.2, -0.3)) - 1.0).abs() < 1e-15);
        // Isotropic base still isotropic within each axis direction.
        assert!((along_x - base.eval(p(0.0, 0.0), p(0.5, 0.0))).abs() < 1e-15);
        assert_eq!(k.name(), "anisotropic");
    }

    #[test]
    fn anisotropic_rotation_preserves_isotropy() {
        // A pure rotation must leave an isotropic kernel unchanged.
        let base = GaussianKernel::new(2.0);
        let th = 0.7f64;
        let rot = [[th.cos(), -th.sin()], [th.sin(), th.cos()]];
        let k = AnisotropicKernel::new(base, rot).unwrap();
        for (a, b) in [(p(0.1, 0.2), p(-0.5, 0.4)), (p(0.9, -0.9), p(-0.9, 0.9))] {
            assert!((k.eval(a, b) - base.eval(a, b)).abs() < 1e-12);
        }
    }

    #[test]
    fn anisotropic_rejects_singular_map() {
        let base = GaussianKernel::new(1.0);
        assert!(AnisotropicKernel::new(base, [[1.0, 2.0], [2.0, 4.0]]).is_err());
        assert!(AnisotropicKernel::stretched(base, 0.0, 1.0).is_err());
        assert!(AnisotropicKernel::stretched(base, 1.0, -2.0).is_err());
    }

    #[test]
    fn composites_remain_psd_empirically() {
        use crate::validity::check_positive_semidefinite;
        use klest_geometry::Rect;
        let g = GaussianKernel::new(2.0);
        let e = ExponentialKernel::new(1.0);
        let blend = BlendKernel::new(g, e, 0.5).unwrap();
        let product = ProductKernel::new(g, e);
        let nugget = NuggetKernel::new(g, 0.2).unwrap();
        let aniso = AnisotropicKernel::stretched(g, 1.0, 2.0).unwrap();
        for (name, report) in [
            ("blend", check_positive_semidefinite(&blend, Rect::unit_die(), 24, 6, 1).unwrap()),
            ("product", check_positive_semidefinite(&product, Rect::unit_die(), 24, 6, 2).unwrap()),
            ("nugget", check_positive_semidefinite(&nugget, Rect::unit_die(), 24, 6, 3).unwrap()),
            ("aniso", check_positive_semidefinite(&aniso, Rect::unit_die(), 24, 6, 4).unwrap()),
        ] {
            assert!(report.is_psd(), "{name}: min eig {}", report.min_eigenvalue);
        }
    }
}
