//! Least-squares kernel fitting (paper Fig. 3a).
//!
//! The paper picks its Gaussian decay rate `c` by best-fitting the
//! measurement-supported *linear* kernel of [12] — a cone with base radius
//! equal to half the normalized chip length. Fig. 3a compares the 1-D
//! best fits of the Gaussian and exponential kernels to that cone and
//! observes the Gaussian fits better. This module reproduces both the
//! 1-D and the (area-weighted) 2-D fits.

/// Number of radial samples in the least-squares objectives.
const FIT_SAMPLES: usize = 400;
/// Golden-section search tolerance on the decay rate.
const GOLD_TOL: f64 = 1e-10;

/// Outcome of fitting a one-parameter kernel family to a target.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FitResult {
    /// Best-fit decay rate.
    pub decay: f64,
    /// Sum of squared errors at the optimum.
    pub sse: f64,
}

/// Minimizes a unimodal function over `[lo, hi]` by golden-section search.
fn golden_min<F: Fn(f64) -> f64>(f: F, mut lo: f64, mut hi: f64) -> f64 {
    let inv_phi = (5.0f64.sqrt() - 1.0) / 2.0;
    let mut x1 = hi - inv_phi * (hi - lo);
    let mut x2 = lo + inv_phi * (hi - lo);
    let mut f1 = f(x1);
    let mut f2 = f(x2);
    while (hi - lo).abs() > GOLD_TOL * (lo.abs() + hi.abs()).max(1.0) {
        if f1 < f2 {
            hi = x2;
            x2 = x1;
            f2 = f1;
            x1 = hi - inv_phi * (hi - lo);
            f1 = f(x1);
        } else {
            lo = x1;
            x1 = x2;
            f1 = f2;
            x2 = lo + inv_phi * (hi - lo);
            f2 = f(x2);
        }
    }
    0.5 * (lo + hi)
}

/// The linear cone target `max(0, 1 - r/d)`.
#[inline]
fn cone(r: f64, d: f64) -> f64 {
    (1.0 - r / d).max(0.0)
}

/// Sum of squared errors between `model(c, r)` and the cone of distance
/// `d`, sampled uniformly in `r` over `[0, r_max]` with weight `w(r)`.
fn sse<M: Fn(f64, f64) -> f64, W: Fn(f64) -> f64>(
    model: &M,
    weight: &W,
    c: f64,
    d: f64,
    r_max: f64,
) -> f64 {
    let mut acc = 0.0;
    for i in 0..FIT_SAMPLES {
        let r = r_max * (i as f64 + 0.5) / FIT_SAMPLES as f64;
        let e = model(c, r) - cone(r, d);
        acc += weight(r) * e * e;
    }
    acc * r_max / FIT_SAMPLES as f64
}

/// Best 1-D fit of the Gaussian kernel `exp(-c r²)` to the linear cone
/// with correlation distance `dist` over `r ∈ [0, 2·dist]` (Fig. 3a).
pub fn fit_gaussian_to_linear_1d(dist: f64) -> FitResult {
    let model = |c: f64, r: f64| (-c * r * r).exp();
    let weight = |_r: f64| 1.0;
    let obj = |c: f64| sse(&model, &weight, c, dist, 2.0 * dist);
    let c = golden_min(obj, 1e-3, 100.0 / (dist * dist));
    FitResult { decay: c, sse: obj(c) }
}

/// Best 1-D fit of the exponential kernel `exp(-c r)` to the linear cone
/// (the weaker fit of Fig. 3a).
pub fn fit_exponential_to_linear_1d(dist: f64) -> FitResult {
    let model = |c: f64, r: f64| (-c * r).exp();
    let weight = |_r: f64| 1.0;
    let obj = |c: f64| sse(&model, &weight, c, dist, 2.0 * dist);
    let c = golden_min(obj, 1e-3, 100.0 / dist);
    FitResult { decay: c, sse: obj(c) }
}

/// Best 2-D (area-weighted, weight `∝ r`) fit of the Gaussian kernel to
/// the linear cone — the paper's procedure for choosing its experimental
/// `c`. Returns only the decay rate, since this is the common entry point
/// used by `GaussianKernel::with_correlation_distance`.
pub fn fit_gaussian_to_linear_2d(dist: f64) -> f64 {
    let model = |c: f64, r: f64| (-c * r * r).exp();
    let weight = |r: f64| r;
    let obj = |c: f64| sse(&model, &weight, c, dist, 2.0 * dist);
    golden_min(obj, 1e-3, 100.0 / (dist * dist))
}

/// Best 2-D fit of the exponential kernel to the linear cone.
pub fn fit_exponential_to_linear_2d(dist: f64) -> FitResult {
    let model = |c: f64, r: f64| (-c * r).exp();
    let weight = |r: f64| r;
    let obj = |c: f64| sse(&model, &weight, c, dist, 2.0 * dist);
    let c = golden_min(obj, 1e-3, 100.0 / dist);
    FitResult { decay: c, sse: obj(c) }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn golden_finds_parabola_minimum() {
        let m = golden_min(|x| (x - 3.0) * (x - 3.0) + 1.0, 0.0, 10.0);
        assert!((m - 3.0).abs() < 1e-7);
    }

    #[test]
    fn gaussian_fits_cone_better_than_exponential_1d() {
        // The headline observation of Fig. 3a.
        let g = fit_gaussian_to_linear_1d(1.0);
        let e = fit_exponential_to_linear_1d(1.0);
        assert!(
            g.sse < e.sse,
            "Gaussian SSE {} must beat exponential SSE {}",
            g.sse,
            e.sse
        );
    }

    #[test]
    fn gaussian_fits_cone_better_in_2d_too() {
        let d = 1.0;
        let gc = fit_gaussian_to_linear_2d(d);
        let model_g = |r: f64| (-gc * r * r).exp();
        let e = fit_exponential_to_linear_2d(d);
        let model_e = |r: f64| (-e.decay * r).exp();
        let mut sse_g = 0.0;
        let mut sse_e = 0.0;
        for i in 0..200 {
            let r = 2.0 * (i as f64 + 0.5) / 200.0;
            let t = (1.0 - r).max(0.0);
            sse_g += r * (model_g(r) - t).powi(2);
            sse_e += r * (model_e(r) - t).powi(2);
        }
        assert!(sse_g < sse_e);
    }

    #[test]
    fn fitted_decay_scales_inversely_with_distance() {
        // Doubling the correlation distance must quarter the Gaussian
        // decay (c has units 1/dist²).
        let c1 = fit_gaussian_to_linear_2d(1.0);
        let c2 = fit_gaussian_to_linear_2d(2.0);
        assert!((c1 / c2 - 4.0).abs() < 1e-3, "c1/c2 = {}", c1 / c2);
    }

    #[test]
    fn fitted_gaussian_is_sane() {
        // For dist = 1 the best-fit decay should be order-1: the kernel
        // should drop to ~0.5 around r ≈ 0.5 to mimic 1 - r.
        let c = fit_gaussian_to_linear_2d(1.0);
        assert!(c > 0.5 && c < 10.0, "c = {c}");
        let half_point = (std::f64::consts::LN_2 / c).sqrt();
        assert!(half_point > 0.2 && half_point < 0.9, "r(K=0.5) = {half_point}");
    }

    #[test]
    fn exponential_1d_fit_reference() {
        // The exponential best fit to 1 - r on [0, 2] is a stable number;
        // pin it to catch regressions in the objective.
        let e = fit_exponential_to_linear_1d(1.0);
        assert!(e.decay > 1.0 && e.decay < 4.0, "decay = {}", e.decay);
        // Re-running is deterministic.
        let e2 = fit_exponential_to_linear_1d(1.0);
        assert_eq!(e.decay, e2.decay);
        assert_eq!(e.sse, e2.sse);
    }
}
