//! Covariance-kernel trait and the kernel families from the paper.

use crate::special::{bessel_k, gamma};
use klest_geometry::Point2;
use std::fmt;

/// Errors constructing a kernel.
#[derive(Debug, Clone, PartialEq)]
pub enum KernelError {
    /// A shape parameter that must be strictly positive was not.
    NonPositiveParameter {
        /// Parameter name.
        name: &'static str,
        /// Offending value.
        value: f64,
    },
    /// The Matérn smoothness `s` must exceed 1 (the order `s-1` of the
    /// Bessel function must be positive for eq. (6) to normalize).
    SmoothnessTooSmall {
        /// The supplied `s`.
        s: f64,
    },
    /// A validity check or repair was asked to operate on an empty point
    /// set / matrix.
    EmptyPointSet,
    /// A numerical routine failed underneath a kernel operation.
    Numerical(klest_linalg::LinalgError),
}

impl fmt::Display for KernelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KernelError::NonPositiveParameter { name, value } => {
                write!(f, "kernel parameter {name} must be positive, got {value}")
            }
            KernelError::SmoothnessTooSmall { s } => {
                write!(f, "Matérn smoothness s must exceed 1, got {s}")
            }
            KernelError::EmptyPointSet => {
                write!(f, "kernel validity check needs at least one point")
            }
            KernelError::Numerical(e) => write!(f, "numerical failure in kernel routine: {e}"),
        }
    }
}

impl std::error::Error for KernelError {}

impl From<klest_linalg::LinalgError> for KernelError {
    fn from(e: klest_linalg::LinalgError) -> Self {
        KernelError::Numerical(e)
    }
}

/// A spatial covariance (equivalently, correlation — parameters are
/// normalized to unit variance) kernel over the die.
///
/// Implementations must be symmetric (`eval(x, y) == eval(y, x)`) and
/// normalized (`eval(x, x) == 1`); the property tests in `klest-core`
/// check both. Kernels are consumed by the Galerkin assembly, which
/// evaluates them at triangle centroids (paper eq. 21), so `eval` should
/// be cheap and thread-safe.
pub trait CovarianceKernel: Send + Sync {
    /// Correlation between locations `x` and `y`.
    fn eval(&self, x: Point2, y: Point2) -> f64;

    /// Short human-readable name used in reports and benches.
    fn name(&self) -> &str;

    /// For isotropic kernels, the correlation at separation distance `r`
    /// (`K(x, y) = rho(‖x−y‖)`); `None` for anisotropic kernels.
    fn correlation_at_distance(&self, r: f64) -> Option<f64> {
        let _ = r;
        None
    }

    /// A deterministic content key identifying this kernel *and its
    /// parameters* bit for bit, for artifact caching: two kernels with
    /// the same key must produce identical `eval` results everywhere.
    /// Parameters are encoded via `f64::to_bits` so the key is exact, not
    /// a lossy decimal rendering. `None` (the default) opts the kernel
    /// out of caching — correct-but-slow for implementations that do not
    /// provide a stable encoding.
    fn cache_key(&self) -> Option<String> {
        None
    }
}

impl<K: CovarianceKernel + ?Sized> CovarianceKernel for &K {
    fn eval(&self, x: Point2, y: Point2) -> f64 {
        (**self).eval(x, y)
    }
    fn name(&self) -> &str {
        (**self).name()
    }
    fn correlation_at_distance(&self, r: f64) -> Option<f64> {
        (**self).correlation_at_distance(r)
    }
    fn cache_key(&self) -> Option<String> {
        (**self).cache_key()
    }
}

/// The paper's test kernel (Fig. 1a): `K(x, y) = exp(-c ‖x−y‖²)`, also
/// called the *double exponential* or squared-exponential kernel.
///
/// ```
/// use klest_kernels::{CovarianceKernel, GaussianKernel};
/// use klest_geometry::Point2;
/// let k = GaussianKernel::new(1.0);
/// let r1 = k.eval(Point2::new(0.0, 0.0), Point2::new(1.0, 0.0));
/// assert!((r1 - (-1.0f64).exp()).abs() < 1e-15);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GaussianKernel {
    c: f64,
}

impl GaussianKernel {
    /// Creates the kernel with decay rate `c > 0`.
    ///
    /// # Panics
    ///
    /// Panics if `c <= 0`; use [`GaussianKernel::try_new`] for a fallible
    /// constructor.
    pub fn new(c: f64) -> Self {
        Self::try_new(c).expect("GaussianKernel decay rate must be positive")
    }

    /// Fallible constructor.
    ///
    /// # Errors
    ///
    /// [`KernelError::NonPositiveParameter`] if `c <= 0` or non-finite.
    pub fn try_new(c: f64) -> Result<Self, KernelError> {
        if c > 0.0 && c.is_finite() {
            Ok(GaussianKernel { c })
        } else {
            Err(KernelError::NonPositiveParameter { name: "c", value: c })
        }
    }

    /// Chooses `c` so the kernel best fits (least squares, area-weighted as
    /// in 2-D) an isotropic linear cone with the given correlation
    /// distance — the paper's procedure for its experiments ("we compute c
    /// to best fit an isotropic linear kernel in 2-D with correlation
    /// distance equal to half the normalized chip length").
    pub fn with_correlation_distance(dist: f64) -> Self {
        let c = crate::fit::fit_gaussian_to_linear_2d(dist);
        GaussianKernel { c }
    }

    /// The decay rate `c`.
    pub fn decay(&self) -> f64 {
        self.c
    }
}

impl CovarianceKernel for GaussianKernel {
    fn eval(&self, x: Point2, y: Point2) -> f64 {
        (-self.c * x.distance_sq(y)).exp()
    }

    fn name(&self) -> &str {
        "gaussian"
    }

    fn correlation_at_distance(&self, r: f64) -> Option<f64> {
        Some((-self.c * r * r).exp())
    }

    fn cache_key(&self) -> Option<String> {
        Some(format!("gaussian:c={:016x}", self.c.to_bits()))
    }
}

/// Isotropic exponential kernel `K(x, y) = exp(-c ‖x−y‖₂)`, suggested by
/// the correlogram extraction of [16].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExponentialKernel {
    c: f64,
}

impl ExponentialKernel {
    /// Creates the kernel with decay rate `c > 0`.
    ///
    /// # Panics
    ///
    /// Panics if `c <= 0`.
    pub fn new(c: f64) -> Self {
        Self::try_new(c).expect("ExponentialKernel decay rate must be positive")
    }

    /// Fallible constructor.
    ///
    /// # Errors
    ///
    /// [`KernelError::NonPositiveParameter`] if `c <= 0` or non-finite.
    pub fn try_new(c: f64) -> Result<Self, KernelError> {
        if c > 0.0 && c.is_finite() {
            Ok(ExponentialKernel { c })
        } else {
            Err(KernelError::NonPositiveParameter { name: "c", value: c })
        }
    }

    /// The decay rate `c`.
    pub fn decay(&self) -> f64 {
        self.c
    }
}

impl CovarianceKernel for ExponentialKernel {
    fn eval(&self, x: Point2, y: Point2) -> f64 {
        (-self.c * x.distance(y)).exp()
    }

    fn name(&self) -> &str {
        "exponential"
    }

    fn correlation_at_distance(&self, r: f64) -> Option<f64> {
        Some((-self.c * r).exp())
    }

    fn cache_key(&self) -> Option<String> {
        Some(format!("exponential:c={:016x}", self.c.to_bits()))
    }
}

/// The separable L1 exponential kernel of eq. (5):
/// `K(x, y) = exp(-c(|x₁−y₁| + |x₂−y₂|))`.
///
/// It factors into two 1-D exponential kernels, each with a known
/// analytic KLE ([8]); `klest-core` uses that as a ground truth for the
/// Galerkin solver. The paper notes its L1 decay is physically
/// unrealistic — it is kept as a validation vehicle.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SeparableExponentialKernel {
    c: f64,
}

impl SeparableExponentialKernel {
    /// Creates the kernel with per-axis decay rate `c > 0`.
    ///
    /// # Panics
    ///
    /// Panics if `c <= 0`.
    pub fn new(c: f64) -> Self {
        Self::try_new(c).expect("SeparableExponentialKernel decay rate must be positive")
    }

    /// Fallible constructor.
    ///
    /// # Errors
    ///
    /// [`KernelError::NonPositiveParameter`] if `c <= 0` or non-finite.
    pub fn try_new(c: f64) -> Result<Self, KernelError> {
        if c > 0.0 && c.is_finite() {
            Ok(SeparableExponentialKernel { c })
        } else {
            Err(KernelError::NonPositiveParameter { name: "c", value: c })
        }
    }

    /// The per-axis decay rate `c`.
    pub fn decay(&self) -> f64 {
        self.c
    }
}

impl CovarianceKernel for SeparableExponentialKernel {
    fn eval(&self, x: Point2, y: Point2) -> f64 {
        (-self.c * x.distance_l1(y)).exp()
    }

    fn name(&self) -> &str {
        "separable-exponential"
    }

    fn cache_key(&self) -> Option<String> {
        Some(format!("separable-exponential:c={:016x}", self.c.to_bits()))
    }
}

/// The kernel of [2]: `K(x, y) = exp(-c |r_x − r_y|)` where `r` is the
/// distance from the die origin.
///
/// The paper criticises it (all points on an origin-centred circle are
/// perfectly correlated); it is included as a baseline for that exact
/// comparison.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RadialExponentialKernel {
    c: f64,
}

impl RadialExponentialKernel {
    /// Creates the kernel with decay rate `c > 0`.
    ///
    /// # Panics
    ///
    /// Panics if `c <= 0`.
    pub fn new(c: f64) -> Self {
        Self::try_new(c).expect("RadialExponentialKernel decay rate must be positive")
    }

    /// Fallible constructor.
    ///
    /// # Errors
    ///
    /// [`KernelError::NonPositiveParameter`] if `c <= 0` or non-finite.
    pub fn try_new(c: f64) -> Result<Self, KernelError> {
        if c > 0.0 && c.is_finite() {
            Ok(RadialExponentialKernel { c })
        } else {
            Err(KernelError::NonPositiveParameter { name: "c", value: c })
        }
    }
}

impl CovarianceKernel for RadialExponentialKernel {
    fn eval(&self, x: Point2, y: Point2) -> f64 {
        let rx = (x - Point2::ORIGIN).norm();
        let ry = (y - Point2::ORIGIN).norm();
        (-self.c * (rx - ry).abs()).exp()
    }

    fn name(&self) -> &str {
        "radial-exponential"
    }

    fn cache_key(&self) -> Option<String> {
        Some(format!("radial-exponential:c={:016x}", self.c.to_bits()))
    }
}

/// The Matérn/Bessel kernel family of eq. (6), the form [1] extracts
/// robustly from measurement data:
///
/// `K(x, y) = 2 (bv/2)^{s-1} B_{s-1}(bv) / Γ(s-1)`, `v = ‖x−y‖₂`,
///
/// with `B` the modified Bessel function of the second kind. `b > 0` sets
/// the decay rate and `s > 1` the smoothness.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MaternKernel {
    b: f64,
    s: f64,
    /// Precomputed `1/Γ(s-1)`.
    inv_gamma: f64,
}

impl MaternKernel {
    /// Threshold below which the small-argument limit `K → 1` is used.
    const SMALL_ARG: f64 = 1e-8;

    /// Creates the kernel with decay `b > 0` and smoothness `s > 1`.
    ///
    /// # Errors
    ///
    /// [`KernelError::NonPositiveParameter`] for invalid `b`;
    /// [`KernelError::SmoothnessTooSmall`] for `s <= 1`.
    pub fn new(b: f64, s: f64) -> Result<Self, KernelError> {
        if !(b > 0.0 && b.is_finite()) {
            return Err(KernelError::NonPositiveParameter { name: "b", value: b });
        }
        if !(s > 1.0 && s.is_finite()) {
            return Err(KernelError::SmoothnessTooSmall { s });
        }
        Ok(MaternKernel {
            b,
            s,
            inv_gamma: 1.0 / gamma(s - 1.0),
        })
    }

    /// The decay parameter `b`.
    pub fn decay(&self) -> f64 {
        self.b
    }

    /// The smoothness parameter `s`.
    pub fn smoothness(&self) -> f64 {
        self.s
    }
}

impl CovarianceKernel for MaternKernel {
    fn eval(&self, x: Point2, y: Point2) -> f64 {
        self.correlation_at_distance(x.distance(y))
            .expect("Matérn kernel is isotropic")
    }

    fn name(&self) -> &str {
        "matern"
    }

    fn correlation_at_distance(&self, r: f64) -> Option<f64> {
        let z = self.b * r;
        if z < Self::SMALL_ARG {
            return Some(1.0);
        }
        let nu = self.s - 1.0;
        let k = bessel_k(nu, z).expect("z > 0 and nu > 0 by construction");
        Some((2.0 * (z / 2.0).powf(nu) * k * self.inv_gamma).min(1.0))
    }

    fn cache_key(&self) -> Option<String> {
        Some(format!(
            "matern:b={:016x}:s={:016x}",
            self.b.to_bits(),
            self.s.to_bits()
        ))
    }
}

/// The near-linear isotropic kernel suggested by the measurements of
/// [12]: `K(x, y) = max(0, 1 − ‖x−y‖ / d)` — a cone with base radius `d`.
///
/// [1] shows this kernel can violate positive semidefiniteness in 2-D;
/// the paper uses it only as the target of the Gaussian/exponential fits
/// in Fig. 3a, and so do we.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinearConeKernel {
    d: f64,
}

impl LinearConeKernel {
    /// Creates the cone with correlation distance `d > 0`.
    ///
    /// # Panics
    ///
    /// Panics if `d <= 0`.
    pub fn new(d: f64) -> Self {
        Self::try_new(d).expect("LinearConeKernel correlation distance must be positive")
    }

    /// Fallible constructor.
    ///
    /// # Errors
    ///
    /// [`KernelError::NonPositiveParameter`] if `d <= 0` or non-finite.
    pub fn try_new(d: f64) -> Result<Self, KernelError> {
        if d > 0.0 && d.is_finite() {
            Ok(LinearConeKernel { d })
        } else {
            Err(KernelError::NonPositiveParameter { name: "d", value: d })
        }
    }

    /// The correlation distance `d` (cone base radius).
    pub fn correlation_distance(&self) -> f64 {
        self.d
    }
}

impl CovarianceKernel for LinearConeKernel {
    fn eval(&self, x: Point2, y: Point2) -> f64 {
        self.correlation_at_distance(x.distance(y))
            .expect("cone kernel is isotropic")
    }

    fn name(&self) -> &str {
        "linear-cone"
    }

    fn correlation_at_distance(&self, r: f64) -> Option<f64> {
        Some((1.0 - r / self.d).max(0.0))
    }

    fn cache_key(&self) -> Option<String> {
        Some(format!("linear-cone:d={:016x}", self.d.to_bits()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(x: f64, y: f64) -> Point2 {
        Point2::new(x, y)
    }

    fn all_kernels() -> Vec<Box<dyn CovarianceKernel>> {
        vec![
            Box::new(GaussianKernel::new(2.0)),
            Box::new(ExponentialKernel::new(1.5)),
            Box::new(SeparableExponentialKernel::new(1.0)),
            Box::new(RadialExponentialKernel::new(1.0)),
            Box::new(MaternKernel::new(3.0, 2.5).unwrap()),
            Box::new(LinearConeKernel::new(1.0)),
        ]
    }

    #[test]
    fn unit_self_correlation() {
        for k in all_kernels() {
            for pt in [p(0.0, 0.0), p(0.7, -0.3), p(-1.0, 1.0)] {
                assert!(
                    (k.eval(pt, pt) - 1.0).abs() < 1e-12,
                    "{} violates K(x,x)=1",
                    k.name()
                );
            }
        }
    }

    #[test]
    fn symmetry() {
        let pairs = [
            (p(0.1, 0.2), p(-0.6, 0.9)),
            (p(0.0, 0.0), p(1.0, 1.0)),
            (p(-0.5, 0.5), p(0.5, -0.5)),
        ];
        for k in all_kernels() {
            for (a, b) in pairs {
                assert!(
                    (k.eval(a, b) - k.eval(b, a)).abs() < 1e-14,
                    "{} violates symmetry",
                    k.name()
                );
            }
        }
    }

    #[test]
    fn bounded_by_one_and_nonnegative() {
        for k in all_kernels() {
            for i in 0..10 {
                for j in 0..10 {
                    let a = p(-1.0 + 0.2 * i as f64, -1.0 + 0.2 * j as f64);
                    let v = k.eval(p(0.3, -0.2), a);
                    assert!(v <= 1.0 + 1e-12, "{}: K = {v} > 1", k.name());
                    assert!(v >= 0.0, "{}: K = {v} < 0", k.name());
                }
            }
        }
    }

    #[test]
    fn monotone_decay_for_isotropic() {
        let kernels: Vec<Box<dyn CovarianceKernel>> = vec![
            Box::new(GaussianKernel::new(2.0)),
            Box::new(ExponentialKernel::new(1.5)),
            Box::new(MaternKernel::new(3.0, 2.5).unwrap()),
            Box::new(LinearConeKernel::new(1.0)),
        ];
        for k in kernels {
            let mut prev = 1.0 + 1e-15;
            for i in 1..30 {
                let r = 0.1 * i as f64;
                let v = k.correlation_at_distance(r).expect("isotropic");
                assert!(v <= prev + 1e-12, "{} not monotone at r = {r}", k.name());
                prev = v;
            }
        }
    }

    #[test]
    fn gaussian_known_values() {
        let k = GaussianKernel::new(1.0);
        assert_eq!(k.decay(), 1.0);
        let v = k.eval(p(0.0, 0.0), p(0.0, 2.0));
        assert!((v - (-4.0f64).exp()).abs() < 1e-15);
        assert_eq!(k.correlation_at_distance(2.0), Some((-4.0f64).exp()));
    }

    #[test]
    fn separable_kernel_factors() {
        let c = 1.3;
        let k = SeparableExponentialKernel::new(c);
        assert_eq!(k.decay(), c);
        let a = p(0.2, -0.4);
        let b = p(-0.1, 0.5);
        let expected = (-c * (0.3f64)).exp() * (-c * (0.9f64)).exp();
        assert!((k.eval(a, b) - expected).abs() < 1e-12);
        // Not isotropic: no correlation_at_distance.
        assert!(k.correlation_at_distance(1.0).is_none());
    }

    #[test]
    fn radial_kernel_circle_artifact() {
        // [2]'s kernel: distinct points on an origin-centred circle are
        // perfectly correlated — the flaw the paper calls out.
        let k = RadialExponentialKernel::new(1.0);
        let a = p(1.0, 0.0);
        let b = p(0.0, 1.0);
        assert!((k.eval(a, b) - 1.0).abs() < 1e-12);
        assert!(k.eval(a, p(2.0, 0.0)) < 1.0);
    }

    #[test]
    fn matern_half_integer_closed_form() {
        // s = 1.5 → ν = 0.5: K(r) = exp(-b r) exactly.
        let b = 2.0;
        let k = MaternKernel::new(b, 1.5).unwrap();
        for i in 1..20 {
            let r = 0.1 * i as f64;
            let v = k.correlation_at_distance(r).unwrap();
            assert!(
                (v - (-b * r).exp()).abs() < 1e-10,
                "r = {r}: {v} vs {}",
                (-b * r).exp()
            );
        }
        assert_eq!(k.decay(), b);
        assert_eq!(k.smoothness(), 1.5);
    }

    #[test]
    fn matern_nu_three_halves_closed_form() {
        // s = 2.5 → ν = 1.5: K(r) = (1 + b r) exp(-b r).
        let b = 1.7;
        let k = MaternKernel::new(b, 2.5).unwrap();
        for i in 1..20 {
            let r = 0.15 * i as f64;
            let z = b * r;
            let expected = (1.0 + z) * (-z).exp();
            let v = k.correlation_at_distance(r).unwrap();
            assert!((v - expected).abs() < 1e-10, "r = {r}");
        }
    }

    #[test]
    fn cone_kernel_support() {
        let k = LinearConeKernel::new(0.5);
        assert_eq!(k.correlation_distance(), 0.5);
        assert_eq!(k.correlation_at_distance(0.25), Some(0.5));
        assert_eq!(k.correlation_at_distance(0.5), Some(0.0));
        assert_eq!(k.correlation_at_distance(2.0), Some(0.0));
    }

    #[test]
    fn constructor_errors() {
        assert!(GaussianKernel::try_new(0.0).is_err());
        assert!(GaussianKernel::try_new(-1.0).is_err());
        assert!(GaussianKernel::try_new(f64::NAN).is_err());
        assert!(ExponentialKernel::try_new(0.0).is_err());
        assert!(SeparableExponentialKernel::try_new(-2.0).is_err());
        assert!(RadialExponentialKernel::try_new(0.0).is_err());
        assert!(LinearConeKernel::try_new(0.0).is_err());
        assert!(matches!(
            MaternKernel::new(0.0, 2.0).unwrap_err(),
            KernelError::NonPositiveParameter { name: "b", .. }
        ));
        assert!(matches!(
            MaternKernel::new(1.0, 1.0).unwrap_err(),
            KernelError::SmoothnessTooSmall { .. }
        ));
        let msg = KernelError::SmoothnessTooSmall { s: 0.5 }.to_string();
        assert!(msg.contains("exceed 1"));
    }

    #[test]
    #[should_panic]
    fn gaussian_new_panics_on_invalid() {
        let _ = GaussianKernel::new(-1.0);
    }

    #[test]
    fn trait_object_and_reference_impls() {
        let k = GaussianKernel::new(1.0);
        let r = &k;
        assert_eq!(r.name(), "gaussian");
        assert_eq!(r.eval(p(0.0, 0.0), p(0.0, 0.0)), 1.0);
        assert!(r.correlation_at_distance(1.0).is_some());
        let dynk: &dyn CovarianceKernel = &k;
        assert_eq!(dynk.name(), "gaussian");
    }

    #[test]
    fn cache_keys_are_exact_and_parameter_sensitive() {
        // Every in-tree kernel opts into caching with a distinct key.
        let keys: Vec<String> = all_kernels()
            .iter()
            .map(|k| k.cache_key().expect("in-tree kernels provide keys"))
            .collect();
        for (i, a) in keys.iter().enumerate() {
            for b in keys.iter().skip(i + 1) {
                assert_ne!(a, b);
            }
        }
        // Same parameters -> same key; a one-ULP perturbation -> different.
        let c = 1.7;
        assert_eq!(
            GaussianKernel::new(c).cache_key(),
            GaussianKernel::new(c).cache_key()
        );
        let c_ulp = f64::from_bits(c.to_bits() + 1);
        assert_ne!(
            GaussianKernel::new(c).cache_key(),
            GaussianKernel::new(c_ulp).cache_key()
        );
        // The forwarding impl forwards keys too.
        let k = GaussianKernel::new(2.0);
        let forwarded = <&GaussianKernel as CovarianceKernel>::cache_key(&&k);
        assert_eq!(forwarded, k.cache_key());
    }
}
