//! # klest-kernels
//!
//! Spatial covariance kernels for intra-die variation modeling.
//!
//! A *covariance kernel* `K(x, y)` returns the correlation between a
//! normalized device parameter (channel length `L`, threshold `Vt`, oxide
//! thickness `tox`, width `W`) at two die locations (paper Sec. 2.2). This
//! crate provides the kernel families discussed in the paper:
//!
//! - [`GaussianKernel`] — `exp(-c ‖x−y‖²)`, the paper's test kernel
//!   (Fig. 1a),
//! - [`ExponentialKernel`] — isotropic `exp(-c ‖x−y‖)` ([16]),
//! - [`SeparableExponentialKernel`] — `exp(-c(|x₁−y₁| + |x₂−y₂|))`, the
//!   analytically solvable L1 kernel of eq. (5),
//! - [`RadialExponentialKernel`] — `exp(-c |‖x‖−‖y‖|)`, the physically
//!   unrealistic kernel of [2] (kept as a baseline),
//! - [`MaternKernel`] — the Bessel-family kernel of eq. (6) extracted by
//!   robust measurement fitting in [1],
//! - [`LinearConeKernel`] — the near-linear measurement-suggested kernel
//!   of [12] (potentially invalid in 2-D; used as a fit target, Fig. 3a).
//!
//! plus kernel *fitting* ([`fit`]) and empirical positive-semidefiniteness
//! *validation* ([`validity`]).
//!
//! ```
//! use klest_kernels::{CovarianceKernel, GaussianKernel};
//! use klest_geometry::Point2;
//!
//! let k = GaussianKernel::new(2.0);
//! let x = Point2::new(0.0, 0.0);
//! assert_eq!(k.eval(x, x), 1.0);
//! assert!(k.eval(x, Point2::new(1.0, 0.0)) < 1.0);
//! ```

#![deny(missing_docs)]

mod composite;
pub mod fit;
mod kernel;
pub mod special;
pub mod spectral;
pub mod validity;

pub use composite::{AnisotropicKernel, BlendKernel, NuggetKernel, ProductKernel};
pub use kernel::{
    CovarianceKernel, ExponentialKernel, GaussianKernel, KernelError, LinearConeKernel,
    MaternKernel, RadialExponentialKernel, SeparableExponentialKernel,
};
