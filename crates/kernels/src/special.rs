//! Special functions needed by the Matérn/Bessel covariance kernel of the
//! paper's eq. (6): the gamma function and the modified Bessel function of
//! the second kind `K_ν(x)` for real order `ν ≥ 0`.
//!
//! `K_ν` follows the classic two-regime scheme (Temme's series for small
//! arguments, a Steed continued fraction for large ones) with upward
//! recurrence in the order, as popularised by *Numerical Recipes*'
//! `bessik`. Accuracy is validated in the tests against closed forms at
//! half-integer orders and high-precision reference values.

/// Euler–Mascheroni constant.
const EULER_GAMMA: f64 = 0.577_215_664_901_532_9;

/// Lanczos coefficients (g = 7, n = 9).
#[allow(clippy::excessive_precision)]
const LANCZOS: [f64; 9] = [
    0.999_999_999_999_809_93,
    676.520_368_121_885_1,
    -1_259.139_216_722_402_8,
    771.323_428_777_653_13,
    -176.615_029_162_140_59,
    12.507_343_278_686_905,
    -0.138_571_095_265_720_12,
    9.984_369_578_019_571_6e-6,
    1.505_632_735_149_311_6e-7,
];

/// Natural log of the gamma function for `x > 0`.
///
/// # Panics
///
/// Panics if `x <= 0` (poles and the reflection branch are not needed by
/// this workspace; [`gamma`] handles negative non-integer arguments).
pub fn ln_gamma(x: f64) -> f64 {
    assert!(x > 0.0, "ln_gamma requires x > 0, got {x}");
    if x < 0.5 {
        // Reflection to keep the Lanczos series in its accurate range.
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut acc = LANCZOS[0];
    for (i, &c) in LANCZOS.iter().enumerate().skip(1) {
        acc += c / (x + i as f64);
    }
    let t = x + 7.5;
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + acc.ln()
}

/// Gamma function for real `x` away from the non-positive integers.
///
/// # Panics
///
/// Panics at poles (`x` a non-positive integer).
pub fn gamma(x: f64) -> f64 {
    if x > 0.0 {
        if x < 0.5 {
            let pi = std::f64::consts::PI;
            pi / ((pi * x).sin() * gamma(1.0 - x))
        } else {
            ln_gamma(x).exp()
        }
    } else {
        assert!(
            x.fract() != 0.0,
            "gamma has a pole at non-positive integer {x}"
        );
        let pi = std::f64::consts::PI;
        pi / ((pi * x).sin() * gamma(1.0 - x))
    }
}

/// Reciprocal gamma `1/Γ(x)`, finite everywhere (zero at the poles).
pub fn recip_gamma(x: f64) -> f64 {
    if x > 0.0 {
        (-ln_gamma(x)).exp()
    } else if x.fract() == 0.0 {
        0.0
    } else {
        1.0 / gamma(x)
    }
}

/// The Temme auxiliaries
/// `Γ₁(μ) = [1/Γ(1-μ) - 1/Γ(1+μ)] / (2μ)` and
/// `Γ₂(μ) = [1/Γ(1-μ) + 1/Γ(1+μ)] / 2`
/// for `|μ| <= 1/2`, with the `μ → 0` limit handled analytically
/// (`Γ₁(0) = −γ`, `Γ₂(0) = 1`).
fn temme_gammas(mu: f64) -> (f64, f64) {
    debug_assert!(mu.abs() <= 0.5 + 1e-12);
    if mu.abs() < 1e-7 {
        // Series: 1/Γ(1±μ) = 1 ± γμ + (γ²/2 − π²/12) μ² ∓ ..., so
        // Γ₁ = [1/Γ(1−μ) − 1/Γ(1+μ)]/(2μ) → −γ as μ → 0.
        let g1 = -EULER_GAMMA;
        let g2 = 1.0 + (EULER_GAMMA * EULER_GAMMA / 2.0
            - std::f64::consts::PI * std::f64::consts::PI / 12.0)
            * mu
            * mu;
        (g1, g2)
    } else {
        let rp = recip_gamma(1.0 + mu);
        let rm = recip_gamma(1.0 - mu);
        ((rm - rp) / (2.0 * mu), (rm + rp) / 2.0)
    }
}

/// Error from [`bessel_k`].
#[derive(Debug, Clone, PartialEq)]
pub enum SpecialFnError {
    /// The argument must be strictly positive (`K_ν` diverges at 0).
    NonPositiveArgument(f64),
    /// The order must be non-negative (use `K_{-ν} = K_ν` upstream).
    NegativeOrder(f64),
    /// A series or continued fraction failed to converge.
    NoConvergence,
}

impl std::fmt::Display for SpecialFnError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SpecialFnError::NonPositiveArgument(x) => {
                write!(f, "bessel_k requires x > 0, got {x}")
            }
            SpecialFnError::NegativeOrder(nu) => {
                write!(f, "bessel_k requires nu >= 0, got {nu}")
            }
            SpecialFnError::NoConvergence => write!(f, "bessel_k series failed to converge"),
        }
    }
}

impl std::error::Error for SpecialFnError {}

const BESSEL_EPS: f64 = 1e-16;
const BESSEL_MAX_ITER: usize = 10_000;
/// Crossover between the Temme series and the Steed continued fraction.
const BESSEL_XMIN: f64 = 2.0;

/// Modified Bessel function of the second kind `K_ν(x)` for real order
/// `ν >= 0` and `x > 0`.
///
/// ```
/// use klest_kernels::special::bessel_k;
/// // K_{1/2}(x) = sqrt(pi / (2x)) e^{-x}
/// let x = 1.7;
/// let exact = (std::f64::consts::PI / (2.0 * x)).sqrt() * (-x).exp();
/// assert!((bessel_k(0.5, x).unwrap() - exact).abs() < 1e-12);
/// ```
///
/// # Errors
///
/// See [`SpecialFnError`].
pub fn bessel_k(nu: f64, x: f64) -> Result<f64, SpecialFnError> {
    if x <= 0.0 || !x.is_finite() {
        return Err(SpecialFnError::NonPositiveArgument(x));
    }
    if nu < 0.0 {
        return Err(SpecialFnError::NegativeOrder(nu));
    }
    // Split the order into nl + mu with |mu| <= 1/2.
    let nl = (nu + 0.5).floor() as usize;
    let mu = nu - nl as f64;

    let (mut k_mu, mut k_mu1) = if x < BESSEL_XMIN {
        temme_series(mu, x)?
    } else {
        steed_cf2(mu, x)?
    };

    // Upward recurrence K_{ν+1} = K_{ν-1} + (2ν/x) K_ν.
    for i in 1..=nl {
        let k_next = (mu + i as f64) * (2.0 / x) * k_mu1 + k_mu;
        k_mu = k_mu1;
        k_mu1 = k_next;
    }
    Ok(k_mu)
}

/// Temme's series for `K_μ(x)` and `K_{μ+1}(x)`, `x <= 2`, `|μ| <= 1/2`.
fn temme_series(mu: f64, x: f64) -> Result<(f64, f64), SpecialFnError> {
    let pi = std::f64::consts::PI;
    let x1 = 0.5 * x;
    let pimu = pi * mu;
    let fact = if pimu.abs() < BESSEL_EPS {
        1.0
    } else {
        pimu / pimu.sin()
    };
    let d = -x1.ln();
    let e = mu * d;
    let fact2 = if e.abs() < BESSEL_EPS {
        1.0
    } else {
        e.sinh() / e
    };
    let (gam1, gam2) = temme_gammas(mu);
    // gampl = 1/Γ(1+μ), gammi = 1/Γ(1-μ)
    let gampl = gam2 - mu * gam1;
    let gammi = gam2 + mu * gam1;
    let mut ff = fact * (gam1 * e.cosh() + gam2 * fact2 * d);
    let mut sum = ff;
    let e_exp = e.exp();
    let mut p = 0.5 * e_exp / gampl;
    let mut q = 0.5 / (e_exp * gammi);
    let mut c = 1.0;
    let d2 = x1 * x1;
    let mut sum1 = p;
    for i in 1..=BESSEL_MAX_ITER {
        let fi = i as f64;
        ff = (fi * ff + p + q) / (fi * fi - mu * mu);
        c *= d2 / fi;
        p /= fi - mu;
        q /= fi + mu;
        let del = c * ff;
        sum += del;
        let del1 = c * (p - fi * ff);
        sum1 += del1;
        if del.abs() < sum.abs() * BESSEL_EPS {
            return Ok((sum, sum1 * 2.0 / x));
        }
    }
    Err(SpecialFnError::NoConvergence)
}

/// Steed's continued fraction CF2 for `K_μ(x)` and `K_{μ+1}(x)`, `x > 2`.
fn steed_cf2(mu: f64, x: f64) -> Result<(f64, f64), SpecialFnError> {
    let pi = std::f64::consts::PI;
    let mut b = 2.0 * (1.0 + x);
    let mut d = 1.0 / b;
    let mut h = d;
    let mut delh = d;
    let mut q1 = 0.0;
    let mut q2 = 1.0;
    let a1 = 0.25 - mu * mu;
    let mut q = a1;
    let mut c = a1;
    let mut a = -a1;
    let mut s = 1.0 + q * delh;
    let mut converged = false;
    for i in 2..=BESSEL_MAX_ITER {
        let fi = i as f64;
        a -= 2.0 * (fi - 1.0);
        c = -a * c / fi;
        let qnew = (q1 - b * q2) / a;
        q1 = q2;
        q2 = qnew;
        q += c * qnew;
        b += 2.0;
        d = 1.0 / (b + a * d);
        delh *= b * d - 1.0;
        h += delh;
        let dels = q * delh;
        s += dels;
        if (dels / s).abs() < BESSEL_EPS {
            converged = true;
            break;
        }
    }
    if !converged {
        return Err(SpecialFnError::NoConvergence);
    }
    let h = a1 * h;
    let k_mu = (pi / (2.0 * x)).sqrt() * (-x).exp() / s;
    let k_mu1 = k_mu * (mu + x + 0.5 - h) / x;
    Ok((k_mu, k_mu1))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, rel: f64) {
        let scale = b.abs().max(1e-300);
        assert!(
            ((a - b) / scale).abs() < rel,
            "{a} != {b} (rel {})",
            ((a - b) / scale).abs()
        );
    }

    #[test]
    fn gamma_integers_and_halves() {
        close(gamma(1.0), 1.0, 1e-14);
        close(gamma(2.0), 1.0, 1e-14);
        close(gamma(3.0), 2.0, 1e-14);
        close(gamma(4.0), 6.0, 1e-14);
        close(gamma(5.0), 24.0, 1e-14);
        close(gamma(0.5), std::f64::consts::PI.sqrt(), 1e-14);
        close(gamma(1.5), 0.5 * std::f64::consts::PI.sqrt(), 1e-14);
        close(gamma(2.5), 0.75 * std::f64::consts::PI.sqrt(), 1e-13);
    }

    #[test]
    fn ln_gamma_large_argument() {
        // ln(100!) = ln_gamma(101)
        let expected = (1..=100u64).map(|k| (k as f64).ln()).sum::<f64>();
        close(ln_gamma(101.0), expected, 1e-13);
    }

    #[test]
    fn gamma_reflection_negative() {
        // Γ(-0.5) = -2 sqrt(pi)
        close(gamma(-0.5), -2.0 * std::f64::consts::PI.sqrt(), 1e-13);
    }

    #[test]
    #[should_panic]
    fn gamma_pole_panics() {
        let _ = gamma(-2.0);
    }

    #[test]
    fn recip_gamma_at_poles_is_zero() {
        assert_eq!(recip_gamma(0.0), 0.0);
        assert_eq!(recip_gamma(-3.0), 0.0);
        close(recip_gamma(2.0), 1.0, 1e-14);
    }

    #[test]
    fn bessel_half_integer_closed_forms() {
        // K_{1/2}(x) = sqrt(pi/(2x)) e^{-x}
        // K_{3/2}(x) = sqrt(pi/(2x)) e^{-x} (1 + 1/x)
        // K_{5/2}(x) = sqrt(pi/(2x)) e^{-x} (1 + 3/x + 3/x^2)
        for &x in &[0.1, 0.5, 1.0, 1.9, 2.0, 2.1, 5.0, 10.0, 40.0] {
            let base = (std::f64::consts::PI / (2.0 * x)).sqrt() * (-x).exp();
            close(bessel_k(0.5, x).unwrap(), base, 1e-12);
            close(bessel_k(1.5, x).unwrap(), base * (1.0 + 1.0 / x), 1e-12);
            close(
                bessel_k(2.5, x).unwrap(),
                base * (1.0 + 3.0 / x + 3.0 / (x * x)),
                1e-12,
            );
        }
    }

    #[test]
    fn bessel_integer_reference_values() {
        // Reference values from Abramowitz & Stegun / mpmath.
        close(bessel_k(0.0, 1.0).unwrap(), 0.421_024_438_240_708_33, 1e-12);
        close(bessel_k(1.0, 1.0).unwrap(), 0.601_907_230_197_234_6, 1e-12);
        close(bessel_k(0.0, 0.1).unwrap(), 2.427_069_024_702_017, 1e-12);
        close(bessel_k(1.0, 0.1).unwrap(), 9.853_844_780_870_606, 1e-12);
        close(bessel_k(0.0, 5.0).unwrap(), 3.691_098_334_042_594e-3, 1e-12);
        close(bessel_k(2.0, 3.0).unwrap(), 6.151_045_847_174_204e-2, 1e-12);
    }

    #[test]
    fn bessel_recurrence_consistency() {
        // K_{ν+1}(x) = K_{ν-1}(x) + (2ν/x) K_ν(x), checked at non-trivial
        // real orders in both argument regimes.
        for &nu in &[0.3, 0.7, 1.2, 2.6] {
            for &x in &[0.4, 1.5, 2.5, 8.0] {
                let km = bessel_k(nu - 0.0, x).unwrap();
                let klo = bessel_k(nu - 1.0, x).unwrap_or_else(|_| bessel_k(1.0 - nu, x).unwrap());
                let khi = bessel_k(nu + 1.0, x).unwrap();
                close(khi, klo + (2.0 * nu / x) * km, 1e-10);
            }
        }
    }

    #[test]
    fn bessel_symmetric_in_order() {
        // K_{-ν} = K_ν: our API requires ν >= 0, but μ splitting inside
        // must respect the symmetry; check via recurrence identity with
        // fractional order close to 0.5 boundary.
        let x = 1.3;
        let a = bessel_k(0.49, x).unwrap();
        let b = bessel_k(0.51, x).unwrap();
        // Continuity across the μ-split boundary.
        assert!((a - b).abs() / a < 0.05);
    }

    #[test]
    fn bessel_decays_monotonically_in_x() {
        let nu = 1.7;
        let mut prev = f64::INFINITY;
        for i in 1..60 {
            let x = 0.1 * i as f64;
            let k = bessel_k(nu, x).unwrap();
            assert!(k < prev, "K must decrease in x (x = {x})");
            assert!(k > 0.0);
            prev = k;
        }
    }

    #[test]
    fn bessel_errors() {
        assert!(matches!(
            bessel_k(1.0, 0.0).unwrap_err(),
            SpecialFnError::NonPositiveArgument(_)
        ));
        assert!(matches!(
            bessel_k(1.0, -1.0).unwrap_err(),
            SpecialFnError::NonPositiveArgument(_)
        ));
        assert!(matches!(
            bessel_k(-0.5, 1.0).unwrap_err(),
            SpecialFnError::NegativeOrder(_)
        ));
        let msg = SpecialFnError::NonPositiveArgument(0.0).to_string();
        assert!(msg.contains("x > 0"));
    }

    #[test]
    // Full-precision mpmath references, deliberately beyond f64.
    #[allow(clippy::excessive_precision)]
    fn gamma_against_high_precision_references() {
        // 30-digit mpmath references; Lanczos (g = 7, n = 9) should hold
        // ~13 significant digits across the reflection and direct paths.
        close(gamma(0.1), 9.513_507_698_668_731_8, 1e-13);
        close(gamma(0.01), 99.432_585_119_150_603_7, 1e-13);
        close(gamma(3.7), 4.170_651_783_796_603_2, 1e-13);
        close(gamma(12.3), 8.338_536_789_996_985_5e7, 1e-13);
        // Near the f64 overflow edge (Γ(171.62…) ≈ f64::MAX).
        close(gamma(171.5), 9.483_367_566_824_799_3e307, 1e-12);
        // Reflection branch at negative non-integer arguments.
        close(gamma(-1.5), 2.363_271_801_207_354_7, 1e-13);
        close(gamma(-2.3), -1.447_107_394_255_917_3, 1e-13);
    }

    #[test]
    // Full-precision mpmath references, deliberately beyond f64.
    #[allow(clippy::excessive_precision)]
    fn ln_gamma_against_high_precision_references() {
        // Small arguments (near the x = 0 pole, reflection path), the
        // mid-range, and arguments far beyond where Γ itself overflows.
        close(ln_gamma(1e-8), 18.420_680_738_180_208_9, 1e-13);
        close(ln_gamma(0.1), 2.252_712_651_734_205_96, 1e-13);
        close(ln_gamma(2.5), 0.284_682_870_472_919_16, 1e-12);
        close(ln_gamma(101.0), 363.739_375_555_563_490_1, 1e-13);
        close(ln_gamma(1000.0), 5_905.220_423_209_181_2, 1e-13);
        close(ln_gamma(1e6), 12_815_504.569_147_611_66, 1e-13);
    }

    #[test]
    // Full-precision mpmath references, deliberately beyond f64.
    #[allow(clippy::excessive_precision)]
    fn bessel_small_order_references() {
        // Small real orders exercise the μ → 0 limit of the Temme
        // auxiliaries (Γ₁ → −γ), where naive 1/Γ differencing loses all
        // precision. mpmath (30 digits) references.
        close(bessel_k(0.1, 0.5).unwrap(), 0.930_086_529_131_478_534_7, 1e-12);
        close(bessel_k(0.1, 3.0).unwrap(), 3.479_013_223_789_180_276e-2, 1e-12);
        close(bessel_k(0.01, 1.0).unwrap(), 0.421_039_829_037_782_334_3, 1e-12);
        // Tiny argument: the log-singular region of the series.
        close(bessel_k(0.25, 1e-3).unwrap(), 11.756_476_271_934_458_64, 1e-12);
    }

    #[test]
    // Full-precision mpmath references, deliberately beyond f64.
    #[allow(clippy::excessive_precision)]
    fn bessel_large_argument_references() {
        // Deep in the exponential tail the continued fraction must keep
        // relative (not absolute) accuracy: values down to 1e-45.
        close(bessel_k(1.7, 50.0).unwrap(), 3.509_157_309_562_096_05e-23, 1e-12);
        close(bessel_k(0.0, 50.0).unwrap(), 3.410_167_749_789_495_514e-23, 1e-12);
        close(bessel_k(3.3, 100.0).unwrap(), 4.915_863_806_891_351_6e-45, 1e-12);
        close(bessel_k(5.5, 20.0).unwrap(), 1.196_403_480_199_839_484e-9, 1e-12);
    }

    #[test]
    // Full-precision mpmath references, deliberately beyond f64.
    #[allow(clippy::excessive_precision)]
    fn bessel_high_order_upward_recurrence_references() {
        // Large ν / moderate x stresses the upward order recurrence
        // (10 doublings from the μ seed) and large ν with x → 0 stresses
        // the x^{-ν} growth of the series.
        close(bessel_k(10.0, 2.5).unwrap(), 16_406.916_416_341_941_04, 1e-11);
        close(bessel_k(2.7, 0.01).unwrap(), 1_260_621.683_748_957_823, 1e-11);
    }

    #[test]
    fn matern_limit_small_argument() {
        // 2 (z/2)^ν K_ν(z) / Γ(ν) → 1 as z → 0+ for ν > 0 — the property
        // that makes eq. (6) a valid correlation (K(x,x) = 1).
        for &nu in &[0.5, 1.0, 1.8, 3.0] {
            let z = 1e-6;
            let v = 2.0 * (z / 2.0f64).powf(nu) * bessel_k(nu, z).unwrap() / gamma(nu);
            assert!((v - 1.0).abs() < 1e-3, "nu = {nu}: {v}");
        }
    }
}
