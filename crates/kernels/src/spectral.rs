//! Spectral validity of isotropic kernels.
//!
//! By Bochner's theorem an isotropic function `ρ(r)` is a valid 2-D
//! covariance iff its radial Fourier (Hankel) transform
//!
//! `S(ω) = ∫₀^∞ ρ(r) J₀(ω r) r dr`
//!
//! is non-negative for all `ω`. [1] uses exactly this machinery to show
//! the linear cone of [12] is invalid in 2-D while the Bessel/Matérn
//! family is valid; this module implements the check numerically so any
//! user-supplied isotropic decay can be vetted before it reaches the
//! Galerkin pipeline.

use crate::CovarianceKernel;

/// Bessel function of the first kind, order zero (Abramowitz & Stegun
/// 9.4.1 / 9.4.3 polynomial approximations, |error| < 1e-7).
pub fn bessel_j0(x: f64) -> f64 {
    let ax = x.abs();
    if ax <= 3.0 {
        let t = (ax / 3.0) * (ax / 3.0);
        1.0 + t * (-2.249_999_7
            + t * (1.265_620_8
                + t * (-0.316_386_6
                    + t * (0.044_447_9 + t * (-0.003_944_4 + t * 0.000_210_0)))))
    } else {
        let z = 3.0 / ax;
        let f0 = 0.797_884_56
            + z * (-0.000_000_77
                + z * (-0.005_527_40
                    + z * (-0.000_095_12
                        + z * (0.001_372_37 + z * (-0.000_728_05 + z * 0.000_144_76)))));
        let theta = ax - std::f64::consts::FRAC_PI_4
            + z * (-0.041_663_97
                + z * (-0.000_039_54
                    + z * (0.002_625_73
                        + z * (-0.000_541_25 + z * (-0.000_293_33 + z * 0.000_135_58)))));
        f0 * theta.cos() / ax.sqrt()
    }
}

/// Numerically evaluates the radial spectral density
/// `S(ω) = ∫₀^{r_max} ρ(r) J₀(ω r) r dr` with the midpoint rule.
///
/// `r_max` must be large enough that `ρ` has decayed to ~0 (for
/// compactly supported kernels, the support radius suffices).
pub fn spectral_density<K: CovarianceKernel + ?Sized>(
    kernel: &K,
    omega: f64,
    r_max: f64,
    steps: usize,
) -> Option<f64> {
    kernel.correlation_at_distance(0.0)?;
    let h = r_max / steps as f64;
    let mut acc = 0.0;
    for i in 0..steps {
        let r = (i as f64 + 0.5) * h;
        let rho = kernel
            .correlation_at_distance(r)
            .expect("isotropic checked above");
        acc += rho * bessel_j0(omega * r) * r;
    }
    Some(acc * h)
}

/// Result of a spectral validity scan.
#[derive(Debug, Clone, PartialEq)]
pub struct SpectralReport {
    /// Most negative density value seen.
    pub min_density: f64,
    /// The frequency at which it occurred.
    pub argmin_omega: f64,
    /// Scan tolerance: densities above `-tolerance` count as valid
    /// (quadrature noise).
    pub tolerance: f64,
}

impl SpectralReport {
    /// Did the density stay (numerically) non-negative?
    pub fn is_valid(&self) -> bool {
        self.min_density >= -self.tolerance
    }
}

/// Scans `S(ω)` over `ω ∈ (0, omega_max]` and reports the most negative
/// value. Returns `None` for anisotropic kernels (no radial profile).
pub fn check_spectral_validity<K: CovarianceKernel + ?Sized>(
    kernel: &K,
    omega_max: f64,
    scan_points: usize,
) -> Option<SpectralReport> {
    kernel.correlation_at_distance(0.0)?;
    // Integration horizon: where the kernel has decayed below 1e-6, capped.
    let mut r_max = 1.0;
    while r_max < 200.0
        && kernel
            .correlation_at_distance(r_max)
            .expect("isotropic")
            .abs()
            > 1e-6
    {
        r_max *= 1.5;
    }
    let steps = 4000;
    let mut min_density = f64::INFINITY;
    let mut argmin = 0.0;
    for i in 1..=scan_points {
        let omega = omega_max * i as f64 / scan_points as f64;
        let s = spectral_density(kernel, omega, r_max, steps).expect("isotropic");
        if s < min_density {
            min_density = s;
            argmin = omega;
        }
    }
    // Quadrature error budget: the integrand oscillates at frequency ω;
    // midpoint error scales with (h ω)² r_max. Keep a small absolute floor.
    let tolerance = 1e-4 * (r_max / steps as f64) * omega_max * r_max + 1e-9;
    Some(SpectralReport {
        min_density,
        argmin_omega: argmin,
        tolerance,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ExponentialKernel, GaussianKernel, LinearConeKernel, MaternKernel, SeparableExponentialKernel};

    #[test]
    fn j0_reference_values() {
        assert!((bessel_j0(0.0) - 1.0).abs() < 1e-7);
        assert!((bessel_j0(1.0) - 0.765_197_686_6).abs() < 1e-7);
        assert!((bessel_j0(2.0) - 0.223_890_779_1).abs() < 1e-7);
        assert!((bessel_j0(5.0) + 0.177_596_771_3).abs() < 1e-6);
        assert!((bessel_j0(10.0) + 0.245_935_764_5).abs() < 1e-6);
        // First two zeros.
        assert!(bessel_j0(2.404_825_557_695_773).abs() < 1e-6);
        assert!(bessel_j0(5.520_078_110_286_311).abs() < 1e-6);
        // Even function.
        assert_eq!(bessel_j0(-3.7), bessel_j0(3.7));
    }

    #[test]
    fn gaussian_density_matches_closed_form() {
        // For ρ(r) = exp(-c r²): S(ω) = exp(-ω²/(4c)) / (2c).
        let c = 2.0;
        let k = GaussianKernel::new(c);
        for &omega in &[0.5, 1.0, 2.0, 4.0] {
            let s = spectral_density(&k, omega, 8.0, 8000).expect("isotropic");
            let exact = (-omega * omega / (4.0 * c)).exp() / (2.0 * c);
            assert!(
                (s - exact).abs() < 1e-6,
                "omega {omega}: {s} vs {exact}"
            );
        }
    }

    #[test]
    fn exponential_density_matches_closed_form() {
        // For ρ(r) = exp(-c r): S(ω) = c / (c² + ω²)^{3/2}.
        let c = 1.5;
        let k = ExponentialKernel::new(c);
        for &omega in &[0.5, 1.5, 3.0] {
            let s = spectral_density(&k, omega, 30.0, 30_000).expect("isotropic");
            let exact = c / (c * c + omega * omega).powf(1.5);
            assert!((s - exact).abs() < 1e-4, "omega {omega}: {s} vs {exact}");
        }
    }

    #[test]
    fn valid_kernels_pass_scan() {
        let gaussian = GaussianKernel::new(2.0);
        let exponential = ExponentialKernel::new(1.0);
        let matern = MaternKernel::new(2.0, 2.5).unwrap();
        for (name, report) in [
            ("gaussian", check_spectral_validity(&gaussian, 20.0, 60).unwrap()),
            ("exponential", check_spectral_validity(&exponential, 20.0, 60).unwrap()),
            ("matern", check_spectral_validity(&matern, 20.0, 60).unwrap()),
        ] {
            assert!(report.is_valid(), "{name}: min S = {}", report.min_density);
        }
    }

    #[test]
    fn linear_cone_fails_scan() {
        // The [1] result that motivates the paper's kernel fitting: the
        // cone's 2-D spectral density goes negative.
        let cone = LinearConeKernel::new(1.0);
        let report = check_spectral_validity(&cone, 30.0, 120).unwrap();
        assert!(
            !report.is_valid(),
            "cone should be spectrally invalid, min S = {}",
            report.min_density
        );
        assert!(report.argmin_omega > 0.0);
    }

    #[test]
    fn anisotropic_kernel_returns_none() {
        let k = SeparableExponentialKernel::new(1.0);
        assert!(check_spectral_validity(&k, 10.0, 10).is_none());
        assert!(spectral_density(&k, 1.0, 5.0, 100).is_none());
    }
}
