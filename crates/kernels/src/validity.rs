//! Empirical positive-semidefiniteness checks.
//!
//! A valid covariance kernel must be non-negative definite over every
//! finite subset of the die (paper eq. 2). For kernels without a known
//! spectral-density proof this module provides a Monte Carlo check: sample
//! point sets, build the Gram matrix, and inspect its smallest eigenvalue.
//! [1] uses such checks to demonstrate that the linear cone kernel of
//! [12] is *invalid* in 2-D — reproduced in this module's tests.

use crate::CovarianceKernel;
use klest_geometry::{Point2, Rect};
use klest_linalg::{Matrix, SymmetricEigen};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Result of an empirical kernel-validity check.
#[derive(Debug, Clone, PartialEq)]
pub struct ValidityReport {
    /// Smallest Gram-matrix eigenvalue observed over all trials.
    pub min_eigenvalue: f64,
    /// Number of trials run.
    pub trials: usize,
    /// Points per trial.
    pub points_per_trial: usize,
    /// Eigenvalue threshold used to call a matrix indefinite (scaled to
    /// the problem size).
    pub tolerance: f64,
}

impl ValidityReport {
    /// Did every sampled Gram matrix look positive semidefinite?
    pub fn is_psd(&self) -> bool {
        self.min_eigenvalue >= -self.tolerance
    }
}

/// Samples `trials` random point sets of size `points_per_trial` in
/// `domain`, builds the kernel Gram matrix for each, and reports the most
/// negative eigenvalue seen.
///
/// This cannot *prove* validity, but it reliably exposes invalid kernels
/// (the cone kernel fails with a handful of trials) and gives confidence
/// for valid ones.
///
/// # Panics
///
/// Panics if `points_per_trial == 0`.
pub fn check_positive_semidefinite<K: CovarianceKernel + ?Sized>(
    kernel: &K,
    domain: Rect,
    points_per_trial: usize,
    trials: usize,
    seed: u64,
) -> ValidityReport {
    assert!(points_per_trial > 0, "need at least one point per trial");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut min_eig = f64::INFINITY;
    for _ in 0..trials {
        let pts: Vec<Point2> = (0..points_per_trial)
            .map(|_| domain.lerp(rng.gen::<f64>(), rng.gen::<f64>()))
            .collect();
        let gram = Matrix::from_fn(pts.len(), pts.len(), |i, j| kernel.eval(pts[i], pts[j]));
        let eig = SymmetricEigen::new(&gram).expect("gram matrix is square and non-empty");
        let smallest = *eig
            .eigenvalues()
            .last()
            .expect("at least one eigenvalue");
        min_eig = min_eig.min(smallest);
    }
    // Tolerance grows with matrix size: rounding alone perturbs
    // eigenvalues by O(n * eps * ||K||), and ||K|| <= n for a correlation
    // matrix.
    let n = points_per_trial as f64;
    ValidityReport {
        min_eigenvalue: min_eig,
        trials,
        points_per_trial,
        tolerance: 1e-10 * n * n,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ExponentialKernel, GaussianKernel, LinearConeKernel, MaternKernel};

    #[test]
    fn gaussian_is_psd() {
        let k = GaussianKernel::new(2.0);
        let report = check_positive_semidefinite(&k, Rect::unit_die(), 24, 8, 7);
        assert!(report.is_psd(), "min eig = {}", report.min_eigenvalue);
        assert_eq!(report.trials, 8);
        assert_eq!(report.points_per_trial, 24);
    }

    #[test]
    fn exponential_is_psd() {
        let k = ExponentialKernel::new(1.0);
        let report = check_positive_semidefinite(&k, Rect::unit_die(), 24, 8, 11);
        assert!(report.is_psd(), "min eig = {}", report.min_eigenvalue);
    }

    #[test]
    fn matern_is_psd() {
        let k = MaternKernel::new(2.0, 2.0).unwrap();
        let report = check_positive_semidefinite(&k, Rect::unit_die(), 20, 6, 13);
        assert!(report.is_psd(), "min eig = {}", report.min_eigenvalue);
    }

    #[test]
    fn cone_kernel_fails_in_2d() {
        // The claim of [1] that motivates the whole kernel-fitting story:
        // the linear cone is not a valid 2-D covariance.
        let k = LinearConeKernel::new(0.6);
        let report = check_positive_semidefinite(&k, Rect::unit_die(), 60, 12, 3);
        assert!(
            !report.is_psd(),
            "cone kernel unexpectedly looked PSD (min eig = {})",
            report.min_eigenvalue
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let k = GaussianKernel::new(1.0);
        let a = check_positive_semidefinite(&k, Rect::unit_die(), 10, 3, 42);
        let b = check_positive_semidefinite(&k, Rect::unit_die(), 10, 3, 42);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic]
    fn zero_points_panics() {
        let k = GaussianKernel::new(1.0);
        let _ = check_positive_semidefinite(&k, Rect::unit_die(), 0, 1, 0);
    }
}
