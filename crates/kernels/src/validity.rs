//! Empirical positive-semidefiniteness checks and nearest-PSD repair.
//!
//! A valid covariance kernel must be non-negative definite over every
//! finite subset of the die (paper eq. 2). For kernels without a known
//! spectral-density proof this module provides a Monte Carlo check: sample
//! point sets, build the Gram matrix, and inspect its smallest eigenvalue.
//! [1] uses such checks to demonstrate that the linear cone kernel of
//! [12] is *invalid* in 2-D — reproduced in this module's tests.
//!
//! Discretized kernels can also drift *slightly* indefinite through
//! fitting error or quadrature asymmetry (the pitfalls catalogued by
//! Safta & Najm for KLE construction). For those, [`repair_to_psd`]
//! projects the Gram matrix onto the PSD cone by eigenvalue clamping —
//! the nearest PSD matrix in Frobenius norm — instead of aborting the
//! pipeline.

use crate::{CovarianceKernel, KernelError};
use klest_geometry::{Point2, Rect};
use klest_linalg::{Matrix, SymmetricEigen};
use klest_rng::{Rng, SeedableRng, StdRng};

/// Result of an empirical kernel-validity check.
#[derive(Debug, Clone, PartialEq)]
pub struct ValidityReport {
    /// Smallest Gram-matrix eigenvalue observed over all trials.
    pub min_eigenvalue: f64,
    /// Number of trials run.
    pub trials: usize,
    /// Points per trial.
    pub points_per_trial: usize,
    /// Eigenvalue threshold used to call a matrix indefinite (scaled to
    /// the problem size).
    pub tolerance: f64,
}

impl ValidityReport {
    /// Did every sampled Gram matrix look positive semidefinite?
    pub fn is_psd(&self) -> bool {
        self.min_eigenvalue >= -self.tolerance
    }
}

/// Samples `trials` random point sets of size `points_per_trial` in
/// `domain`, builds the kernel Gram matrix for each, and reports the most
/// negative eigenvalue seen.
///
/// This cannot *prove* validity, but it reliably exposes invalid kernels
/// (the cone kernel fails with a handful of trials) and gives confidence
/// for valid ones.
///
/// # Errors
///
/// - [`KernelError::EmptyPointSet`] if `points_per_trial == 0`,
/// - [`KernelError::Numerical`] if a Gram eigendecomposition fails (e.g.
///   the kernel produced NaN entries).
pub fn check_positive_semidefinite<K: CovarianceKernel + ?Sized>(
    kernel: &K,
    domain: Rect,
    points_per_trial: usize,
    trials: usize,
    seed: u64,
) -> Result<ValidityReport, KernelError> {
    if points_per_trial == 0 {
        return Err(KernelError::EmptyPointSet);
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut min_eig = f64::INFINITY;
    for _ in 0..trials {
        let pts: Vec<Point2> = (0..points_per_trial)
            .map(|_| domain.lerp(rng.gen::<f64>(), rng.gen::<f64>()))
            .collect();
        let gram = Matrix::from_fn(pts.len(), pts.len(), |i, j| kernel.eval(pts[i], pts[j]));
        let eig = SymmetricEigen::new(&gram)?;
        let smallest = *eig
            .eigenvalues()
            .last()
            .expect("at least one eigenvalue");
        min_eig = min_eig.min(smallest);
    }
    // Tolerance grows with matrix size: rounding alone perturbs
    // eigenvalues by O(n * eps * ||K||), and ||K|| <= n for a correlation
    // matrix.
    let n = points_per_trial as f64;
    Ok(ValidityReport {
        min_eigenvalue: min_eig,
        trials,
        points_per_trial,
        tolerance: 1e-10 * n * n,
    })
}

/// Outcome of projecting an indefinite matrix onto the PSD cone.
#[derive(Debug, Clone)]
pub struct PsdRepair {
    /// The repaired (nearest-PSD) matrix.
    pub matrix: Matrix,
    /// How many eigenvalues were clamped up to zero.
    pub clamped: usize,
    /// The most negative eigenvalue before repair.
    pub min_eigenvalue_before: f64,
    /// Frobenius norm of the applied perturbation — for eigenvalue
    /// clamping this is exactly `sqrt(Σ λᵢ²)` over the clamped λᵢ, the
    /// smallest possible among all PSD projections.
    pub frobenius_delta: f64,
}

/// Projects symmetric `gram` onto the PSD cone if (and only if) it is
/// indefinite beyond `tolerance`.
///
/// Returns `Ok(None)` when the matrix is already PSD to within
/// `tolerance` — the repair is a guaranteed no-op on healthy inputs.
/// Otherwise the negative part of the spectrum is clamped to zero and the
/// matrix rebuilt as `Q max(Λ, 0) Qᵀ` (the nearest PSD matrix in
/// Frobenius norm), with the perturbation size recorded in the returned
/// [`PsdRepair`].
///
/// # Errors
///
/// - [`KernelError::EmptyPointSet`] for an empty matrix,
/// - [`KernelError::Numerical`] if the eigendecomposition fails (bad
///   shape, NaN entries).
pub fn repair_to_psd(gram: &Matrix, tolerance: f64) -> Result<Option<PsdRepair>, KernelError> {
    if gram.rows() == 0 || gram.cols() == 0 {
        return Err(KernelError::EmptyPointSet);
    }
    let eig = SymmetricEigen::new(gram)?;
    let min_before = *eig
        .eigenvalues()
        .last()
        .expect("at least one eigenvalue");
    if min_before >= -tolerance.abs() {
        return Ok(None);
    }
    let n = gram.rows();
    let mut clamped = 0usize;
    let mut delta_sq = 0.0;
    let clamped_values: Vec<f64> = eig
        .eigenvalues()
        .iter()
        .map(|&l| {
            if l < 0.0 {
                clamped += 1;
                delta_sq += l * l;
                0.0
            } else {
                l
            }
        })
        .collect();
    // Rebuild Q max(Λ,0) Qᵀ and re-symmetrize against rounding.
    let q = eig.eigenvectors();
    let mut scaled = q.clone();
    for i in 0..n {
        let row = scaled.row_mut(i);
        for (j, v) in row.iter_mut().enumerate() {
            *v *= clamped_values[j];
        }
    }
    let mut repaired = scaled.mul(&q.transpose())?;
    for i in 0..n {
        for j in (i + 1)..n {
            let avg = 0.5 * (repaired[(i, j)] + repaired[(j, i)]);
            repaired[(i, j)] = avg;
            repaired[(j, i)] = avg;
        }
    }
    Ok(Some(PsdRepair {
        matrix: repaired,
        clamped,
        min_eigenvalue_before: min_before,
        frobenius_delta: delta_sq.sqrt(),
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ExponentialKernel, GaussianKernel, LinearConeKernel, MaternKernel};

    #[test]
    fn gaussian_is_psd() {
        let k = GaussianKernel::new(2.0);
        let report = check_positive_semidefinite(&k, Rect::unit_die(), 24, 8, 7).unwrap();
        assert!(report.is_psd(), "min eig = {}", report.min_eigenvalue);
        assert_eq!(report.trials, 8);
        assert_eq!(report.points_per_trial, 24);
    }

    #[test]
    fn exponential_is_psd() {
        let k = ExponentialKernel::new(1.0);
        let report = check_positive_semidefinite(&k, Rect::unit_die(), 24, 8, 11).unwrap();
        assert!(report.is_psd(), "min eig = {}", report.min_eigenvalue);
    }

    #[test]
    fn matern_is_psd() {
        let k = MaternKernel::new(2.0, 2.0).unwrap();
        let report = check_positive_semidefinite(&k, Rect::unit_die(), 20, 6, 13).unwrap();
        assert!(report.is_psd(), "min eig = {}", report.min_eigenvalue);
    }

    #[test]
    fn cone_kernel_fails_in_2d() {
        // The claim of [1] that motivates the whole kernel-fitting story:
        // the linear cone is not a valid 2-D covariance.
        let k = LinearConeKernel::new(0.6);
        let report = check_positive_semidefinite(&k, Rect::unit_die(), 60, 12, 3).unwrap();
        assert!(
            !report.is_psd(),
            "cone kernel unexpectedly looked PSD (min eig = {})",
            report.min_eigenvalue
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let k = GaussianKernel::new(1.0);
        let a = check_positive_semidefinite(&k, Rect::unit_die(), 10, 3, 42).unwrap();
        let b = check_positive_semidefinite(&k, Rect::unit_die(), 10, 3, 42).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn zero_points_is_typed_error() {
        let k = GaussianKernel::new(1.0);
        assert!(matches!(
            check_positive_semidefinite(&k, Rect::unit_die(), 0, 1, 0),
            Err(KernelError::EmptyPointSet)
        ));
    }

    #[test]
    fn repair_is_noop_on_psd_matrix() {
        let k = GaussianKernel::new(1.5);
        let pts: Vec<Point2> = (0..12)
            .map(|i| {
                let t = i as f64 / 12.0;
                Point2::new(-1.0 + 2.0 * (t * 7.0).fract(), -1.0 + 2.0 * (t * 3.0).fract())
            })
            .collect();
        let gram = Matrix::from_fn(12, 12, |i, j| k.eval(pts[i], pts[j]));
        assert!(repair_to_psd(&gram, 1e-8).unwrap().is_none());
    }

    #[test]
    fn repair_clamps_indefinite_matrix() {
        // Symmetric, eigenvalues 3 and -1: clearly indefinite.
        let a = Matrix::from_rows(&[[1.0, 2.0].as_slice(), [2.0, 1.0].as_slice()]).unwrap();
        let repair = repair_to_psd(&a, 1e-12).unwrap().expect("indefinite");
        assert_eq!(repair.clamped, 1);
        assert!((repair.min_eigenvalue_before + 1.0).abs() < 1e-12);
        // The perturbation equals the clamped eigenvalue magnitude.
        assert!((repair.frobenius_delta - 1.0).abs() < 1e-12);
        // Repaired matrix is PSD.
        let eig = SymmetricEigen::new(&repair.matrix).unwrap();
        assert!(*eig.eigenvalues().last().unwrap() >= -1e-12);
        // And it is exactly the Frobenius-nearest projection: distance to
        // the original equals the recorded delta.
        let diff = repair.matrix.sub(&a).unwrap();
        let dist: f64 = diff
            .as_slice()
            .iter()
            .map(|v| v * v)
            .sum::<f64>()
            .sqrt();
        assert!((dist - repair.frobenius_delta).abs() < 1e-10);
    }

    #[test]
    fn repair_rejects_empty_and_nan() {
        assert!(matches!(
            repair_to_psd(&Matrix::zeros(0, 0), 1e-12),
            Err(KernelError::EmptyPointSet)
        ));
        let mut a = Matrix::zeros(2, 2);
        a[(0, 0)] = f64::NAN;
        assert!(matches!(
            repair_to_psd(&a, 1e-12),
            Err(KernelError::Numerical(_))
        ));
    }
}
