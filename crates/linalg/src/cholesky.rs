//! Cholesky factorisation — the `CholeskyUpperFactor` of Algorithm 1.

use crate::{vecops, LinalgError, Matrix};

/// Cholesky factorisation `A = L Lᵀ = Uᵀ U` of a symmetric positive
/// definite matrix.
///
/// The paper's Algorithm 1 draws correlated Monte Carlo samples as
/// `P = RandNormal(N, N_g) · U`; [`Cholesky::correlate`] performs exactly
/// that row transform (`x = L z`, i.e. `xᵀ = zᵀ U`).
///
/// ```
/// use klest_linalg::{Cholesky, Matrix};
/// # fn main() -> Result<(), klest_linalg::LinalgError> {
/// let a = Matrix::from_rows(&[
///     [4.0, 2.0].as_slice(),
///     [2.0, 3.0].as_slice(),
/// ])?;
/// let chol = Cholesky::new(&a)?;
/// let l = chol.lower();
/// let back = l.mul(&l.transpose())?;
/// assert!(back.sub(&a)?.max_abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Cholesky {
    /// Lower-triangular factor, row-major; entries above the diagonal are 0.
    l: Matrix,
}

impl Cholesky {
    /// Factors a symmetric positive definite matrix.
    ///
    /// Only the lower triangle of `a` is read; symmetry of the upper
    /// triangle is the caller's responsibility (covariance matrices built
    /// by this workspace are symmetric by construction).
    ///
    /// # Errors
    ///
    /// - [`LinalgError::NotSquare`] for a rectangular input,
    /// - [`LinalgError::Empty`] for a `0 x 0` input,
    /// - [`LinalgError::NotPositiveDefinite`] when a pivot is not strictly
    ///   positive (the matrix is singular or indefinite).
    pub fn new(a: &Matrix) -> Result<Self, LinalgError> {
        if !a.is_square() {
            return Err(LinalgError::NotSquare {
                dims: (a.rows(), a.cols()),
            });
        }
        let n = a.rows();
        if n == 0 {
            return Err(LinalgError::Empty);
        }
        let mut l = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..=i {
                // Dot product of two contiguous row prefixes: cache friendly.
                let s: f64 = {
                    let (ri, rj) = (l.row(i), l.row(j));
                    vecops::dot(&ri[..j], &rj[..j])
                };
                let aij = a[(i, j)];
                if i == j {
                    let d = aij - s;
                    if d <= 0.0 || !d.is_finite() {
                        return Err(LinalgError::NotPositiveDefinite { pivot: i });
                    }
                    l[(i, j)] = d.sqrt();
                } else {
                    l[(i, j)] = (aij - s) / l[(j, j)];
                }
            }
        }
        Ok(Cholesky { l })
    }

    /// Problem size `n`.
    pub fn dim(&self) -> usize {
        self.l.rows()
    }

    /// The lower-triangular factor `L`.
    pub fn lower(&self) -> &Matrix {
        &self.l
    }

    /// The upper-triangular factor `U = Lᵀ` (the paper's
    /// `CholeskyUpperFactor`). Allocates a new matrix.
    pub fn upper(&self) -> Matrix {
        self.l.transpose()
    }

    /// Transforms an i.i.d. standard-normal vector `z` into a sample with
    /// covariance `A`: returns `x = L z`.
    ///
    /// This is one row of Algorithm 1's `RandNormal(N, N_g) · U`.
    ///
    /// # Errors
    ///
    /// [`LinalgError::DimensionMismatch`] if `z.len() != n`.
    pub fn correlate(&self, z: &[f64]) -> Result<Vec<f64>, LinalgError> {
        let n = self.dim();
        if z.len() != n {
            return Err(LinalgError::DimensionMismatch {
                op: "correlate",
                left: (n, n),
                right: (z.len(), 1),
            });
        }
        Ok((0..n)
            .map(|i| vecops::dot(&self.l.row(i)[..=i], &z[..=i]))
            .collect())
    }

    /// In-place variant of [`correlate`](Cholesky::correlate) writing into
    /// `out` (`out = L z`); lets the Monte Carlo loop reuse buffers.
    ///
    /// # Errors
    ///
    /// [`LinalgError::DimensionMismatch`] if slice lengths differ from `n`.
    pub fn correlate_into(&self, z: &[f64], out: &mut [f64]) -> Result<(), LinalgError> {
        let n = self.dim();
        if z.len() != n || out.len() != n {
            return Err(LinalgError::DimensionMismatch {
                op: "correlate_into",
                left: (n, n),
                right: (z.len(), out.len()),
            });
        }
        for i in 0..n {
            out[i] = vecops::dot(&self.l.row(i)[..=i], &z[..=i]);
        }
        Ok(())
    }

    /// Solves `A x = b` via forward/back substitution.
    ///
    /// # Errors
    ///
    /// [`LinalgError::DimensionMismatch`] if `b.len() != n`.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>, LinalgError> {
        let n = self.dim();
        if b.len() != n {
            return Err(LinalgError::DimensionMismatch {
                op: "solve",
                left: (n, n),
                right: (b.len(), 1),
            });
        }
        // Forward: L y = b.
        let mut y = vec![0.0; n];
        for i in 0..n {
            let s = vecops::dot(&self.l.row(i)[..i], &y[..i]);
            y[i] = (b[i] - s) / self.l[(i, i)];
        }
        // Back: Lᵀ x = y (column access into L, so an index loop is the
        // clear form here).
        let mut x = vec![0.0; n];
        for i in (0..n).rev() {
            let mut s = y[i];
            #[allow(clippy::needless_range_loop)]
            for k in (i + 1)..n {
                s -= self.l[(k, i)] * x[k];
            }
            x[i] = s / self.l[(i, i)];
        }
        Ok(x)
    }

    /// `log(det A) = 2 Σ log L_ii`; useful for Gaussian log-likelihoods.
    pub fn log_det(&self) -> f64 {
        (0..self.dim()).map(|i| self.l[(i, i)].ln()).sum::<f64>() * 2.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spd3() -> Matrix {
        Matrix::from_rows(&[
            [4.0, 2.0, 0.6].as_slice(),
            [2.0, 5.0, 1.0].as_slice(),
            [0.6, 1.0, 3.0].as_slice(),
        ])
        .unwrap()
    }

    #[test]
    fn reconstructs_input() {
        let a = spd3();
        let chol = Cholesky::new(&a).unwrap();
        let l = chol.lower();
        let back = l.mul(&l.transpose()).unwrap();
        assert!(back.sub(&a).unwrap().max_abs() < 1e-12);
        assert_eq!(chol.dim(), 3);
    }

    #[test]
    fn upper_is_transpose_of_lower() {
        let chol = Cholesky::new(&spd3()).unwrap();
        let u = chol.upper();
        assert_eq!(&u.transpose(), chol.lower());
        // Strictly lower part of U is zero.
        for i in 0..3 {
            for j in 0..i {
                assert_eq!(u[(i, j)], 0.0);
            }
        }
    }

    #[test]
    fn rejects_indefinite() {
        let a = Matrix::from_rows(&[[1.0, 2.0].as_slice(), [2.0, 1.0].as_slice()]).unwrap();
        assert!(matches!(
            Cholesky::new(&a).unwrap_err(),
            LinalgError::NotPositiveDefinite { pivot: 1 }
        ));
    }

    #[test]
    fn rejects_bad_shapes() {
        assert!(matches!(
            Cholesky::new(&Matrix::zeros(2, 3)).unwrap_err(),
            LinalgError::NotSquare { .. }
        ));
        assert_eq!(
            Cholesky::new(&Matrix::zeros(0, 0)).unwrap_err(),
            LinalgError::Empty
        );
    }

    #[test]
    fn correlate_identity_is_noop() {
        let chol = Cholesky::new(&Matrix::identity(4)).unwrap();
        let z = vec![1.0, -2.0, 3.0, 0.5];
        assert_eq!(chol.correlate(&z).unwrap(), z);
    }

    #[test]
    fn correlate_matches_matrix_product() {
        let a = spd3();
        let chol = Cholesky::new(&a).unwrap();
        let z = vec![0.3, -1.2, 0.7];
        let x = chol.correlate(&z).unwrap();
        let expected = chol.lower().mul_vec(&z).unwrap();
        for (xi, ei) in x.iter().zip(expected.iter()) {
            assert!((xi - ei).abs() < 1e-14);
        }
        let mut out = vec![0.0; 3];
        chol.correlate_into(&z, &mut out).unwrap();
        assert_eq!(out, x);
    }

    #[test]
    fn correlate_wrong_len() {
        let chol = Cholesky::new(&spd3()).unwrap();
        assert!(chol.correlate(&[1.0]).is_err());
        let mut out = vec![0.0; 2];
        assert!(chol.correlate_into(&[1.0, 2.0, 3.0], &mut out).is_err());
    }

    #[test]
    fn solve_roundtrip() {
        let a = spd3();
        let chol = Cholesky::new(&a).unwrap();
        let x_true = vec![1.0, -2.0, 0.5];
        let b = a.mul_vec(&x_true).unwrap();
        let x = chol.solve(&b).unwrap();
        for (xi, ti) in x.iter().zip(x_true.iter()) {
            assert!((xi - ti).abs() < 1e-12);
        }
        assert!(chol.solve(&[1.0]).is_err());
    }

    #[test]
    fn log_det_diagonal() {
        let a = Matrix::from_rows(&[[4.0, 0.0].as_slice(), [0.0, 9.0].as_slice()]).unwrap();
        let chol = Cholesky::new(&a).unwrap();
        assert!((chol.log_det() - (36.0f64).ln()).abs() < 1e-12);
    }
}
