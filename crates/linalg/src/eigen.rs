//! Symmetric eigendecomposition: Householder tridiagonalisation followed
//! by the implicit-shift QL iteration (the classic EISPACK `tred2`/`tql2`
//! pair). This is the numerical engine behind the Galerkin eigenproblem of
//! the paper (eq. 15) — the role Matlab's `eig` played for the authors.

use crate::{LinalgError, Matrix};
use klest_runtime::CancelToken;

/// Maximum QL sweeps per eigenvalue before giving up.
const MAX_QL_ITERATIONS: usize = 64;

/// Eigendecomposition `A = Q Λ Qᵀ` of a real symmetric matrix.
///
/// Eigenvalues are sorted in **descending** order (the paper indexes
/// eigenpairs by decreasing λ) and eigenvectors are the matching columns
/// of [`eigenvectors`](SymmetricEigen::eigenvectors), each of unit
/// Euclidean norm.
///
/// ```
/// use klest_linalg::{Matrix, SymmetricEigen};
/// # fn main() -> Result<(), klest_linalg::LinalgError> {
/// let a = Matrix::from_rows(&[
///     [6.0, 2.0, 0.0].as_slice(),
///     [2.0, 3.0, 0.0].as_slice(),
///     [0.0, 0.0, 1.0].as_slice(),
/// ])?;
/// let eig = SymmetricEigen::new(&a)?;
/// assert!((eig.eigenvalues()[0] - 7.0).abs() < 1e-12);
/// assert!((eig.eigenvalues()[1] - 2.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct SymmetricEigen {
    values: Vec<f64>,
    /// Column `j` is the eigenvector for `values[j]`.
    vectors: Matrix,
    /// True when the QL iteration failed to converge and the cyclic
    /// Jacobi fallback produced the decomposition instead.
    used_fallback: bool,
}

impl SymmetricEigen {
    /// Computes the full eigendecomposition of symmetric `a`.
    ///
    /// Only symmetry up to rounding is assumed; the strictly lower triangle
    /// is used where the algorithm reads one of the two mirrored entries.
    /// If the implicit-QL iteration exhausts its budget, the slower but
    /// unconditionally convergent cyclic Jacobi solver takes over; check
    /// [`used_fallback`](SymmetricEigen::used_fallback) to observe that
    /// degradation.
    ///
    /// # Errors
    ///
    /// - [`LinalgError::NotSquare`] / [`LinalgError::Empty`] for bad shapes,
    /// - [`LinalgError::NonFinite`] if any entry is NaN or infinite,
    /// - [`LinalgError::NoConvergence`] if both QL and the Jacobi fallback
    ///   exceed their iteration budgets (does not happen for finite
    ///   symmetric input in practice).
    pub fn new(a: &Matrix) -> Result<Self, LinalgError> {
        Self::new_inner(a, None)
    }

    /// Like [`new`](SymmetricEigen::new), but polling `token` once per QL
    /// sweep (and per Jacobi sweep on the fallback path) so a deadline can
    /// cancel a long eigensolve cooperatively.
    ///
    /// # Errors
    ///
    /// Everything [`new`](SymmetricEigen::new) reports, plus
    /// [`LinalgError::Cancelled`] when the token trips; its `completed`
    /// field counts eigenvalues already converged at the trip.
    pub fn new_with_token(a: &Matrix, token: &CancelToken) -> Result<Self, LinalgError> {
        Self::new_inner(a, Some(token))
    }

    fn new_inner(a: &Matrix, token: Option<&CancelToken>) -> Result<Self, LinalgError> {
        if !a.is_square() {
            return Err(LinalgError::NotSquare {
                dims: (a.rows(), a.cols()),
            });
        }
        let n = a.rows();
        if n == 0 {
            return Err(LinalgError::Empty);
        }
        for i in 0..n {
            for (j, &v) in a.row(i).iter().enumerate() {
                if !v.is_finite() {
                    return Err(LinalgError::NonFinite { row: i, col: j });
                }
            }
        }
        let mut z = a.clone();
        let mut d = vec![0.0; n];
        let mut e = vec![0.0; n];
        tred2(&mut z, &mut d, &mut e);
        let used_fallback = match tql2(&mut d, &mut e, &mut z, token) {
            Ok(()) => false,
            Err(LinalgError::NoConvergence { .. }) => {
                // Degradation path: cyclic Jacobi converges unconditionally
                // for finite symmetric input, at higher cost.
                klest_obs::counter_add("eigen.ql_fallbacks", 1);
                let (values, vectors) = crate::jacobi::jacobi_eigen(a, token)?;
                d.copy_from_slice(&values);
                z = vectors;
                true
            }
            Err(other) => return Err(other),
        };
        // Sort eigenpairs by descending eigenvalue. total_cmp keeps the
        // sort well-defined even if a rogue NaN slips through the solver.
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by(|&i, &j| f64::total_cmp(&d[j], &d[i]));
        let values: Vec<f64> = order.iter().map(|&i| d[i]).collect();
        let mut vectors = Matrix::zeros(n, n);
        for (new_col, &old_col) in order.iter().enumerate() {
            for row in 0..n {
                vectors[(row, new_col)] = z[(row, old_col)];
            }
        }
        Ok(SymmetricEigen {
            values,
            vectors,
            used_fallback,
        })
    }

    /// Computes the eigendecomposition with the cyclic Jacobi solver
    /// directly, bypassing the Householder/QL path entirely.
    ///
    /// This is the degradation engine [`new`](SymmetricEigen::new) falls
    /// back to on QL non-convergence, exposed so differential test
    /// suites can cross-check the two independent algorithms on the same
    /// input (QL-vs-Jacobi equivalence is a standing workspace
    /// property). Results use the same contract as `new`: descending
    /// eigenvalues, unit-norm eigenvector columns.
    ///
    /// # Errors
    ///
    /// Same shape/finiteness errors as [`new`](SymmetricEigen::new), and
    /// [`LinalgError::NoConvergence`] if the Jacobi sweep budget is
    /// exhausted (does not happen for finite symmetric input in
    /// practice).
    pub fn new_jacobi(a: &Matrix) -> Result<Self, LinalgError> {
        if !a.is_square() {
            return Err(LinalgError::NotSquare {
                dims: (a.rows(), a.cols()),
            });
        }
        let n = a.rows();
        if n == 0 {
            return Err(LinalgError::Empty);
        }
        for i in 0..n {
            for (j, &v) in a.row(i).iter().enumerate() {
                if !v.is_finite() {
                    return Err(LinalgError::NonFinite { row: i, col: j });
                }
            }
        }
        let (d, z) = crate::jacobi::jacobi_eigen(a, None)?;
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by(|&i, &j| f64::total_cmp(&d[j], &d[i]));
        let values: Vec<f64> = order.iter().map(|&i| d[i]).collect();
        let mut vectors = Matrix::zeros(n, n);
        for (new_col, &old_col) in order.iter().enumerate() {
            for row in 0..n {
                vectors[(row, new_col)] = z[(row, old_col)];
            }
        }
        Ok(SymmetricEigen {
            values,
            vectors,
            used_fallback: false,
        })
    }

    /// True when the decomposition came from the cyclic Jacobi fallback
    /// after the QL iteration failed to converge.
    pub fn used_fallback(&self) -> bool {
        self.used_fallback
    }

    /// Eigenvalues in descending order.
    pub fn eigenvalues(&self) -> &[f64] {
        &self.values
    }

    /// Eigenvector matrix; column `j` pairs with `eigenvalues()[j]`.
    pub fn eigenvectors(&self) -> &Matrix {
        &self.vectors
    }

    /// Copy of the `j`-th eigenvector.
    ///
    /// # Panics
    ///
    /// Panics if `j` is out of range.
    pub fn eigenvector(&self, j: usize) -> Vec<f64> {
        self.vectors.col(j)
    }

    /// Problem size.
    pub fn dim(&self) -> usize {
        self.values.len()
    }

    /// Reconstructs `Q Λ Qᵀ`; mostly for tests and diagnostics.
    pub fn reconstruct(&self) -> Matrix {
        let n = self.dim();
        let mut scaled = self.vectors.clone();
        for i in 0..n {
            let row = scaled.row_mut(i);
            for (j, v) in row.iter_mut().enumerate() {
                *v *= self.values[j];
            }
        }
        scaled
            .mul(&self.vectors.transpose())
            .expect("square dimensions agree")
    }
}

/// Householder reduction of the symmetric matrix stored in `z` to
/// tridiagonal form. On exit `d` holds the diagonal, `e[1..]` the
/// subdiagonal, and `z` the accumulated orthogonal transform.
///
/// Port of EISPACK `tred2` (0-based).
fn tred2(z: &mut Matrix, d: &mut [f64], e: &mut [f64]) {
    let n = d.len();
    for i in (1..n).rev() {
        let l = i - 1;
        let mut h = 0.0;
        if l > 0 {
            let scale: f64 = (0..=l).map(|k| z[(i, k)].abs()).sum();
            if scale == 0.0 {
                e[i] = z[(i, l)];
            } else {
                for k in 0..=l {
                    z[(i, k)] /= scale;
                    h += z[(i, k)] * z[(i, k)];
                }
                let mut f = z[(i, l)];
                let g = if f >= 0.0 { -h.sqrt() } else { h.sqrt() };
                e[i] = scale * g;
                h -= f * g;
                z[(i, l)] = f - g;
                f = 0.0;
                for j in 0..=l {
                    z[(j, i)] = z[(i, j)] / h;
                    let mut g = 0.0;
                    for k in 0..=j {
                        g += z[(j, k)] * z[(i, k)];
                    }
                    for k in (j + 1)..=l {
                        g += z[(k, j)] * z[(i, k)];
                    }
                    e[j] = g / h;
                    f += e[j] * z[(i, j)];
                }
                let hh = f / (h + h);
                for j in 0..=l {
                    let f = z[(i, j)];
                    let g = e[j] - hh * f;
                    e[j] = g;
                    for k in 0..=j {
                        let upd = f * e[k] + g * z[(i, k)];
                        z[(j, k)] -= upd;
                    }
                }
            }
        } else {
            e[i] = z[(i, l)];
        }
        d[i] = h;
    }
    d[0] = 0.0;
    e[0] = 0.0;
    for i in 0..n {
        if d[i] != 0.0 {
            for j in 0..i {
                let mut g = 0.0;
                for k in 0..i {
                    g += z[(i, k)] * z[(k, j)];
                }
                for k in 0..i {
                    let upd = g * z[(k, i)];
                    z[(k, j)] -= upd;
                }
            }
        }
        d[i] = z[(i, i)];
        z[(i, i)] = 1.0;
        for j in 0..i {
            z[(j, i)] = 0.0;
            z[(i, j)] = 0.0;
        }
    }
}

/// Implicit-shift QL iteration on the tridiagonal matrix `(d, e)`,
/// accumulating rotations into the columns of `z`.
///
/// Port of EISPACK `tql2` (0-based). Polls `token` (when supplied) once per
/// QL sweep; a trip surfaces as [`LinalgError::Cancelled`] with `completed`
/// set to the number of eigenvalues already converged.
fn tql2(
    d: &mut [f64],
    e: &mut [f64],
    z: &mut Matrix,
    token: Option<&CancelToken>,
) -> Result<(), LinalgError> {
    let n = d.len();
    if n == 1 {
        return Ok(());
    }
    for i in 1..n {
        e[i - 1] = e[i];
    }
    e[n - 1] = 0.0;
    // Absolute deflation floor: subdiagonals below eps * ||T|| are
    // numerically zero. A purely relative test stalls in the
    // rank-deficient tail of smooth-kernel spectra, where neighbouring
    // d's are themselves ~eps² of the matrix norm.
    let anorm = (0..n).fold(0.0f64, |m, i| m.max(d[i].abs() + e[i].abs()));
    let floor = f64::EPSILON * anorm;
    // Total QL sweeps across all eigenvalues, reported as the
    // `eigen.ql_iterations` counter — the paper-replication diagnostic
    // for eigensolve effort versus mesh size (accumulated locally so the
    // hot loop stays untouched when the obs sink is off).
    let mut total_iterations: u64 = 0;
    for l in 0..n {
        let mut iter = 0;
        loop {
            // Look for a single small subdiagonal element to split.
            let mut m = l;
            while m + 1 < n {
                let dd = d[m].abs() + d[m + 1].abs();
                if e[m].abs() <= f64::EPSILON * dd + floor {
                    break;
                }
                m += 1;
            }
            if m == l {
                break;
            }
            iter += 1;
            total_iterations += 1;
            if iter > MAX_QL_ITERATIONS {
                klest_obs::counter_add("eigen.ql_iterations", total_iterations);
                return Err(LinalgError::NoConvergence { index: l });
            }
            if let Some(token) = token {
                if let Err(c) = token.checkpoint("eigen/ql") {
                    klest_obs::counter_add("eigen.ql_iterations", total_iterations);
                    return Err(LinalgError::Cancelled(c.with_completed(l)));
                }
            }
            // Wilkinson shift.
            let mut g = (d[l + 1] - d[l]) / (2.0 * e[l]);
            let mut r = g.hypot(1.0);
            g = d[m] - d[l] + e[l] / (g + r.abs().copysign(if g >= 0.0 { 1.0 } else { -1.0 }));
            let mut s = 1.0;
            let mut c = 1.0;
            let mut p = 0.0;
            let mut underflow = false;
            for i in (l..m).rev() {
                let mut f = s * e[i];
                let b = c * e[i];
                r = f.hypot(g);
                e[i + 1] = r;
                if r == 0.0 {
                    // Deflate: rotation underflowed.
                    d[i + 1] -= p;
                    e[m] = 0.0;
                    underflow = true;
                    break;
                }
                s = f / r;
                c = g / r;
                g = d[i + 1] - p;
                r = (d[i] - g) * s + 2.0 * c * b;
                p = s * r;
                d[i + 1] = g + p;
                g = c * r - b;
                // Accumulate the rotation into the eigenvector columns.
                for k in 0..n {
                    f = z[(k, i + 1)];
                    z[(k, i + 1)] = s * z[(k, i)] + c * f;
                    z[(k, i)] = c * z[(k, i)] - s * f;
                }
            }
            if underflow {
                continue;
            }
            d[l] -= p;
            e[l] = g;
            e[m] = 0.0;
        }
    }
    klest_obs::counter_add("eigen.ql_iterations", total_iterations);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vecops;

    fn assert_close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() < tol, "{a} != {b} (tol {tol})");
    }

    #[test]
    fn eigen_2x2_known() {
        let a = Matrix::from_rows(&[[2.0, 1.0].as_slice(), [1.0, 2.0].as_slice()]).unwrap();
        let eig = SymmetricEigen::new(&a).unwrap();
        assert_close(eig.eigenvalues()[0], 3.0, 1e-12);
        assert_close(eig.eigenvalues()[1], 1.0, 1e-12);
        // Eigenvector for λ=3 is (1,1)/sqrt(2) up to sign.
        let v = eig.eigenvector(0);
        assert_close(v[0].abs(), std::f64::consts::FRAC_1_SQRT_2, 1e-12);
        assert_close(v[0], v[1], 1e-12);
    }

    #[test]
    fn eigen_diagonal() {
        let a = Matrix::from_rows(&[
            [3.0, 0.0, 0.0].as_slice(),
            [0.0, -1.0, 0.0].as_slice(),
            [0.0, 0.0, 7.0].as_slice(),
        ])
        .unwrap();
        let eig = SymmetricEigen::new(&a).unwrap();
        assert_eq!(eig.eigenvalues(), &[7.0, 3.0, -1.0]);
    }

    #[test]
    fn eigen_1x1_and_errors() {
        let a = Matrix::from_rows(&[[5.0].as_slice()]).unwrap();
        let eig = SymmetricEigen::new(&a).unwrap();
        assert_eq!(eig.eigenvalues(), &[5.0]);
        assert_eq!(eig.dim(), 1);
        assert!(SymmetricEigen::new(&Matrix::zeros(2, 3)).is_err());
        assert!(SymmetricEigen::new(&Matrix::zeros(0, 0)).is_err());
    }

    #[test]
    fn reconstruction_and_orthogonality() {
        // Pseudo-random symmetric matrix.
        let n = 24;
        let mut seed = 0x9e3779b97f4a7c15u64;
        let mut rnd = || {
            seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((seed >> 11) as f64 / (1u64 << 53) as f64) - 0.5
        };
        let mut a = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..=i {
                let v = rnd();
                a[(i, j)] = v;
                a[(j, i)] = v;
            }
        }
        let eig = SymmetricEigen::new(&a).unwrap();
        // Reconstruction.
        let back = eig.reconstruct();
        assert!(back.sub(&a).unwrap().max_abs() < 1e-10);
        // Orthonormal columns.
        for i in 0..n {
            let vi = eig.eigenvector(i);
            assert_close(vecops::norm(&vi), 1.0, 1e-10);
            for j in (i + 1)..n {
                let vj = eig.eigenvector(j);
                assert!(vecops::dot(&vi, &vj).abs() < 1e-10);
            }
        }
        // Descending order.
        for w in eig.eigenvalues().windows(2) {
            assert!(w[0] >= w[1]);
        }
    }

    #[test]
    fn eigen_equation_residual() {
        let a = Matrix::from_rows(&[
            [4.0, 1.0, 0.5, 0.0].as_slice(),
            [1.0, 3.0, 0.2, 0.1].as_slice(),
            [0.5, 0.2, 2.0, 0.3].as_slice(),
            [0.0, 0.1, 0.3, 1.0].as_slice(),
        ])
        .unwrap();
        let eig = SymmetricEigen::new(&a).unwrap();
        for j in 0..4 {
            let v = eig.eigenvector(j);
            let av = a.mul_vec(&v).unwrap();
            for (avi, vi) in av.iter().zip(v.iter()) {
                assert_close(*avi, eig.eigenvalues()[j] * vi, 1e-10);
            }
        }
    }

    #[test]
    fn trace_and_sum_of_eigenvalues_agree() {
        let a = Matrix::from_rows(&[
            [1.0, 2.0, 3.0].as_slice(),
            [2.0, 5.0, 4.0].as_slice(),
            [3.0, 4.0, 9.0].as_slice(),
        ])
        .unwrap();
        let eig = SymmetricEigen::new(&a).unwrap();
        let trace = 1.0 + 5.0 + 9.0;
        let sum: f64 = eig.eigenvalues().iter().sum();
        assert_close(sum, trace, 1e-10);
    }

    #[test]
    fn repeated_eigenvalues() {
        // 2*I has a doubly degenerate eigenvalue; vectors must still be
        // orthonormal.
        let a = Matrix::from_rows(&[[2.0, 0.0].as_slice(), [0.0, 2.0].as_slice()]).unwrap();
        let eig = SymmetricEigen::new(&a).unwrap();
        assert_eq!(eig.eigenvalues(), &[2.0, 2.0]);
        let v0 = eig.eigenvector(0);
        let v1 = eig.eigenvector(1);
        assert!(vecops::dot(&v0, &v1).abs() < 1e-12);
    }

    #[test]
    fn nan_poisoned_input_returns_typed_error() {
        // Regression: the eigenvalue sort used partial_cmp + expect, so a
        // NaN reaching it panicked. NaN must now surface as a typed error
        // at the input gate, never a panic.
        let mut a =
            Matrix::from_rows(&[[2.0, 1.0].as_slice(), [1.0, 2.0].as_slice()]).unwrap();
        a[(0, 1)] = f64::NAN;
        match SymmetricEigen::new(&a) {
            Err(LinalgError::NonFinite { row: 0, col: 1 }) => {}
            other => panic!("expected NonFinite error, got {other:?}"),
        }
        a[(0, 1)] = f64::INFINITY;
        assert!(matches!(
            SymmetricEigen::new(&a),
            Err(LinalgError::NonFinite { .. })
        ));
    }

    #[test]
    fn healthy_input_does_not_use_fallback() {
        let a = Matrix::from_rows(&[[2.0, 1.0].as_slice(), [1.0, 2.0].as_slice()]).unwrap();
        let eig = SymmetricEigen::new(&a).unwrap();
        assert!(!eig.used_fallback());
    }

    #[test]
    fn cancelled_token_surfaces_typed_error() {
        use klest_runtime::CancelToken;
        // A matrix large enough that the QL iteration needs at least one
        // sweep; an already-cancelled token must trip the very first
        // checkpoint and surface the runtime's typed marker.
        let n = 32;
        let mut seed = 3u64;
        let mut rnd = || {
            seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((seed >> 11) as f64 / (1u64 << 53) as f64) - 0.5
        };
        let mut a = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..=i {
                let v = rnd();
                a[(i, j)] = v;
                a[(j, i)] = v;
            }
        }
        let token = CancelToken::unlimited();
        token.cancel();
        match SymmetricEigen::new_with_token(&a, &token) {
            Err(LinalgError::Cancelled(c)) => assert_eq!(c.stage, "eigen/ql"),
            other => panic!("expected Cancelled, got {other:?}"),
        }
        // An untripped token changes nothing.
        let live = CancelToken::unlimited();
        let eig = SymmetricEigen::new_with_token(&a, &live).unwrap();
        let plain = SymmetricEigen::new(&a).unwrap();
        for (x, y) in eig.eigenvalues().iter().zip(plain.eigenvalues()) {
            assert_eq!(x, y);
        }
    }

    #[test]
    fn trip_mid_solve_reports_progress() {
        use klest_runtime::CancelToken;
        let n = 48;
        let mut seed = 11u64;
        let mut rnd = || {
            seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((seed >> 11) as f64 / (1u64 << 53) as f64) - 0.5
        };
        let mut a = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..=i {
                let v = rnd();
                a[(i, j)] = v;
                a[(j, i)] = v;
            }
        }
        let token = CancelToken::unlimited();
        token.trip_after_checkpoints(5);
        match SymmetricEigen::new_with_token(&a, &token) {
            Err(LinalgError::Cancelled(c)) => {
                assert_eq!(c.stage, "eigen/ql");
                // Five sweeps cannot have converged 48 eigenvalues.
                assert!(c.completed < n, "completed {}", c.completed);
            }
            other => panic!("expected Cancelled, got {other:?}"),
        }
    }

    #[test]
    fn moderately_large_random() {
        let n = 80;
        let mut seed = 42u64;
        let mut rnd = || {
            seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((seed >> 11) as f64 / (1u64 << 53) as f64) - 0.5
        };
        let mut a = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..=i {
                let v = rnd();
                a[(i, j)] = v;
                a[(j, i)] = v;
            }
        }
        let eig = SymmetricEigen::new(&a).unwrap();
        let back = eig.reconstruct();
        assert!(back.sub(&a).unwrap().max_abs() < 1e-9);
    }
}
