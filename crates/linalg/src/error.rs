//! Error type shared by the linear-algebra routines.

use std::fmt;

/// Errors reported by `klest-linalg` operations.
#[derive(Debug, Clone, PartialEq)]
pub enum LinalgError {
    /// Matrix dimensions do not match the operation
    /// (e.g. multiplying `m x n` by `p x q` with `n != p`).
    DimensionMismatch {
        /// What was being attempted.
        op: &'static str,
        /// Dimensions of the left operand.
        left: (usize, usize),
        /// Dimensions of the right operand.
        right: (usize, usize),
    },
    /// The operation requires a square matrix.
    NotSquare {
        /// Actual dimensions.
        dims: (usize, usize),
    },
    /// Cholesky factorisation hit a non-positive pivot: the matrix is not
    /// (numerically) positive definite. Carries the failing pivot index.
    NotPositiveDefinite {
        /// Index of the failing pivot.
        pivot: usize,
    },
    /// The eigensolver failed to converge within its iteration budget.
    NoConvergence {
        /// Index of the eigenvalue that failed to converge.
        index: usize,
    },
    /// A zero-sized matrix was supplied where a non-empty one is required.
    Empty,
    /// An entry that must be strictly positive (e.g. a mass-matrix
    /// diagonal / triangle area) was not.
    NonPositiveEntry {
        /// Index of the offending entry.
        index: usize,
        /// The value found.
        value: f64,
    },
    /// A matrix entry is NaN or infinite where finite input is required.
    NonFinite {
        /// Row of the first offending entry.
        row: usize,
        /// Column of the first offending entry.
        col: usize,
    },
    /// The operation was cancelled cooperatively (deadline or explicit
    /// cancel) before completing; carries the runtime's typed partial-result
    /// marker. `completed` counts converged eigenvalues (QL) or finished
    /// sweeps (Jacobi).
    Cancelled(klest_runtime::Cancelled),
}

impl fmt::Display for LinalgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinalgError::DimensionMismatch { op, left, right } => write!(
                f,
                "dimension mismatch in {op}: {}x{} vs {}x{}",
                left.0, left.1, right.0, right.1
            ),
            LinalgError::NotSquare { dims } => {
                write!(f, "matrix must be square, got {}x{}", dims.0, dims.1)
            }
            LinalgError::NotPositiveDefinite { pivot } => {
                write!(f, "matrix is not positive definite (pivot {pivot})")
            }
            LinalgError::NoConvergence { index } => {
                write!(f, "eigensolver failed to converge at eigenvalue {index}")
            }
            LinalgError::Empty => write!(f, "matrix must be non-empty"),
            LinalgError::NonPositiveEntry { index, value } => {
                write!(f, "entry {index} must be positive, got {value}")
            }
            LinalgError::NonFinite { row, col } => {
                write!(f, "matrix entry ({row}, {col}) is not finite")
            }
            LinalgError::Cancelled(c) => write!(f, "{c}"),
        }
    }
}

impl std::error::Error for LinalgError {}

impl From<klest_runtime::Cancelled> for LinalgError {
    fn from(c: klest_runtime::Cancelled) -> Self {
        LinalgError::Cancelled(c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = LinalgError::DimensionMismatch {
            op: "mul",
            left: (2, 3),
            right: (4, 5),
        };
        assert_eq!(e.to_string(), "dimension mismatch in mul: 2x3 vs 4x5");
        assert_eq!(
            LinalgError::NotSquare { dims: (2, 3) }.to_string(),
            "matrix must be square, got 2x3"
        );
        assert_eq!(
            LinalgError::NotPositiveDefinite { pivot: 7 }.to_string(),
            "matrix is not positive definite (pivot 7)"
        );
        assert_eq!(
            LinalgError::NoConvergence { index: 3 }.to_string(),
            "eigensolver failed to converge at eigenvalue 3"
        );
        assert_eq!(LinalgError::Empty.to_string(), "matrix must be non-empty");
        let cancelled: LinalgError = klest_runtime::Cancelled {
            stage: "eigen/ql",
            completed: 12,
            budget: None,
        }
        .into();
        assert!(cancelled.to_string().contains("eigen/ql"));
        assert!(cancelled.to_string().contains("12"));
    }

    #[test]
    fn error_is_std_error() {
        fn takes_error<E: std::error::Error>(_: E) {}
        takes_error(LinalgError::Empty);
    }
}
