//! Generalized eigenproblem `K d = λ Φ d` with diagonal `Φ` — the matrix
//! form of the paper's Galerkin system (eq. 13).
//!
//! With an orthogonal piecewise-constant basis, `Φ = diag(a_1, ..., a_n)`
//! (triangle areas). Rather than forming the *non-symmetric* `Φ⁻¹ K` of
//! eq. (15), we apply the symmetric similarity
//! `A = Φ^{-1/2} K Φ^{-1/2}`, solve the standard symmetric problem
//! `A u = λ u`, and map back `d = Φ^{-1/2} u`. The spectra coincide, and
//! staying symmetric keeps the solver robust (guaranteed real eigenpairs).

use crate::{LinalgError, Matrix, SymmetricEigen};
use klest_runtime::CancelToken;

/// Solution of `K d = λ Φ d` for symmetric `K` and positive diagonal `Φ`.
///
/// Eigenvalues are sorted descending, matching the KLE convention of the
/// paper. Each eigenvector `d_j` is normalized so that `Σ_i d_{ji}² Φ_ii
/// = 1`, which makes the corresponding piecewise-constant eigenfunction
/// `f_j` orthonormal in `L²(D)` (paper Sec. 2.2).
///
/// ```
/// use klest_linalg::{DiagonalGep, Matrix};
/// # fn main() -> Result<(), klest_linalg::LinalgError> {
/// let k = Matrix::from_rows(&[
///     [2.0, 0.0].as_slice(),
///     [0.0, 1.0].as_slice(),
/// ])?;
/// let gep = DiagonalGep::solve(&k, &[2.0, 1.0])?;
/// assert!((gep.eigenvalues()[0] - 1.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct DiagonalGep {
    values: Vec<f64>,
    /// Column `j` is the generalized eigenvector `d_j`.
    vectors: Matrix,
}

impl DiagonalGep {
    /// Solves the generalized problem.
    ///
    /// # Errors
    ///
    /// - [`LinalgError::NotSquare`] / [`LinalgError::Empty`] for bad shapes,
    /// - [`LinalgError::DimensionMismatch`] if `phi_diag.len() != n`,
    /// - [`LinalgError::NonPositiveEntry`] if any `Φ_ii <= 0`,
    /// - [`LinalgError::NoConvergence`] from the inner eigensolver.
    pub fn solve(k: &Matrix, phi_diag: &[f64]) -> Result<Self, LinalgError> {
        Self::solve_inner(k, phi_diag, None)
    }

    /// Like [`solve`](DiagonalGep::solve), but polling `token` inside the
    /// eigensolver so a deadline can cancel the solve cooperatively;
    /// additionally reports [`LinalgError::Cancelled`].
    pub fn solve_with_token(
        k: &Matrix,
        phi_diag: &[f64],
        token: &CancelToken,
    ) -> Result<Self, LinalgError> {
        Self::solve_inner(k, phi_diag, Some(token))
    }

    fn solve_inner(
        k: &Matrix,
        phi_diag: &[f64],
        token: Option<&CancelToken>,
    ) -> Result<Self, LinalgError> {
        if !k.is_square() {
            return Err(LinalgError::NotSquare {
                dims: (k.rows(), k.cols()),
            });
        }
        let n = k.rows();
        if n == 0 {
            return Err(LinalgError::Empty);
        }
        if phi_diag.len() != n {
            return Err(LinalgError::DimensionMismatch {
                op: "gep",
                left: (n, n),
                right: (phi_diag.len(), 1),
            });
        }
        let mut inv_sqrt = Vec::with_capacity(n);
        for (i, &p) in phi_diag.iter().enumerate() {
            if p <= 0.0 || !p.is_finite() {
                return Err(LinalgError::NonPositiveEntry { index: i, value: p });
            }
            inv_sqrt.push(1.0 / p.sqrt());
        }
        // A = Φ^{-1/2} K Φ^{-1/2}
        let a = Matrix::from_fn(n, n, |i, j| k[(i, j)] * inv_sqrt[i] * inv_sqrt[j]);
        let eig = match token {
            Some(token) => SymmetricEigen::new_with_token(&a, token)?,
            None => SymmetricEigen::new(&a)?,
        };
        // d = Φ^{-1/2} u, column by column.
        let mut vectors = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..n {
                vectors[(i, j)] = eig.eigenvectors()[(i, j)] * inv_sqrt[i];
            }
        }
        Ok(DiagonalGep {
            values: eig.eigenvalues().to_vec(),
            vectors,
        })
    }

    /// Generalized eigenvalues, descending.
    pub fn eigenvalues(&self) -> &[f64] {
        &self.values
    }

    /// Generalized eigenvectors; column `j` pairs with `eigenvalues()[j]`.
    pub fn eigenvectors(&self) -> &Matrix {
        &self.vectors
    }

    /// Copy of the `j`-th generalized eigenvector.
    ///
    /// # Panics
    ///
    /// Panics if `j` is out of range.
    pub fn eigenvector(&self, j: usize) -> Vec<f64> {
        self.vectors.col(j)
    }

    /// Problem size.
    pub fn dim(&self) -> usize {
        self.values.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_mass_reduces_to_standard() {
        let k = Matrix::from_rows(&[[2.0, 1.0].as_slice(), [1.0, 2.0].as_slice()]).unwrap();
        let gep = DiagonalGep::solve(&k, &[1.0, 1.0]).unwrap();
        let eig = SymmetricEigen::new(&k).unwrap();
        for (a, b) in gep.eigenvalues().iter().zip(eig.eigenvalues()) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn satisfies_generalized_equation() {
        let k = Matrix::from_rows(&[
            [3.0, 1.0, 0.2].as_slice(),
            [1.0, 2.0, 0.4].as_slice(),
            [0.2, 0.4, 1.5].as_slice(),
        ])
        .unwrap();
        let phi = [0.5, 1.5, 2.0];
        let gep = DiagonalGep::solve(&k, &phi).unwrap();
        for j in 0..3 {
            let d = gep.eigenvector(j);
            let kd = k.mul_vec(&d).unwrap();
            let lam = gep.eigenvalues()[j];
            for i in 0..3 {
                assert!(
                    (kd[i] - lam * phi[i] * d[i]).abs() < 1e-10,
                    "K d = λ Φ d violated at ({i}, {j})"
                );
            }
        }
    }

    #[test]
    fn phi_normalization() {
        // Σ_i d_i² Φ_ii = 1 for every eigenvector.
        let k = Matrix::from_rows(&[
            [3.0, 1.0, 0.2].as_slice(),
            [1.0, 2.0, 0.4].as_slice(),
            [0.2, 0.4, 1.5].as_slice(),
        ])
        .unwrap();
        let phi = [0.5, 1.5, 2.0];
        let gep = DiagonalGep::solve(&k, &phi).unwrap();
        for j in 0..3 {
            let d = gep.eigenvector(j);
            let weighted: f64 = d.iter().zip(phi.iter()).map(|(di, pi)| di * di * pi).sum();
            assert!((weighted - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn phi_orthogonality_between_eigenvectors() {
        let k = Matrix::from_rows(&[
            [3.0, 1.0, 0.2].as_slice(),
            [1.0, 2.0, 0.4].as_slice(),
            [0.2, 0.4, 1.5].as_slice(),
        ])
        .unwrap();
        let phi = [0.5, 1.5, 2.0];
        let gep = DiagonalGep::solve(&k, &phi).unwrap();
        for i in 0..3 {
            for j in (i + 1)..3 {
                let di = gep.eigenvector(i);
                let dj = gep.eigenvector(j);
                let w: f64 = di
                    .iter()
                    .zip(dj.iter())
                    .zip(phi.iter())
                    .map(|((a, b), p)| a * b * p)
                    .sum();
                assert!(w.abs() < 1e-12, "Φ-orthogonality violated ({i},{j})");
            }
        }
    }

    #[test]
    fn rejects_invalid_inputs() {
        let k = Matrix::identity(2);
        assert!(matches!(
            DiagonalGep::solve(&k, &[1.0]).unwrap_err(),
            LinalgError::DimensionMismatch { .. }
        ));
        assert!(matches!(
            DiagonalGep::solve(&k, &[1.0, 0.0]).unwrap_err(),
            LinalgError::NonPositiveEntry { index: 1, .. }
        ));
        assert!(matches!(
            DiagonalGep::solve(&k, &[1.0, -2.0]).unwrap_err(),
            LinalgError::NonPositiveEntry { index: 1, .. }
        ));
        assert!(DiagonalGep::solve(&Matrix::zeros(2, 3), &[1.0, 1.0]).is_err());
        assert!(DiagonalGep::solve(&Matrix::zeros(0, 0), &[]).is_err());
    }

    #[test]
    fn diagonal_k_diagonal_phi() {
        // K = diag(2, 1), Φ = diag(2, 1) → λ = {1, 1}
        let k = Matrix::from_rows(&[[2.0, 0.0].as_slice(), [0.0, 1.0].as_slice()]).unwrap();
        let gep = DiagonalGep::solve(&k, &[2.0, 1.0]).unwrap();
        assert!((gep.eigenvalues()[0] - 1.0).abs() < 1e-12);
        assert!((gep.eigenvalues()[1] - 1.0).abs() < 1e-12);
        assert_eq!(gep.dim(), 2);
    }
}
