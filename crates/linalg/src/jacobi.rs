//! Cyclic Jacobi eigensolver for real symmetric matrices.
//!
//! Slower than the Householder + QL pipeline in [`crate::eigen`]
//! (O(n³) per sweep with a handful of sweeps, against one-shot
//! tridiagonalisation), but unconditionally convergent for finite
//! symmetric input: every rotation strictly shrinks the off-diagonal
//! Frobenius norm. That makes it the designated fallback when the
//! implicit-QL iteration exhausts its budget on a pathological spectrum —
//! the eigensolver degradation path of the fault-tolerance layer.

use crate::{LinalgError, Matrix};
use klest_runtime::CancelToken;

/// Maximum number of full cyclic sweeps before giving up.
const MAX_SWEEPS: usize = 64;

/// Computes the eigendecomposition of symmetric `a` by cyclic Jacobi
/// rotations. Returns `(eigenvalues, eigenvector_columns)`, unsorted.
///
/// The caller is expected to have validated shape and finiteness (this is
/// an internal engine for [`crate::SymmetricEigen`]). `token` (when
/// supplied) is polled once per sweep so a deadline can cancel the solve.
///
/// # Errors
///
/// [`LinalgError::NoConvergence`] if the off-diagonal mass has not reached
/// round-off level after [`MAX_SWEEPS`] sweeps — which for finite
/// symmetric input does not happen in practice — and
/// [`LinalgError::Cancelled`] (with `completed` = finished sweeps) when the
/// token trips.
pub(crate) fn jacobi_eigen(
    a: &Matrix,
    token: Option<&CancelToken>,
) -> Result<(Vec<f64>, Matrix), LinalgError> {
    let n = a.rows();
    let mut m = a.clone();
    let mut v = Matrix::identity(n);
    // Convergence floor scaled to the matrix magnitude.
    let norm: f64 = (0..n)
        .map(|i| (0..n).map(|j| m[(i, j)] * m[(i, j)]).sum::<f64>())
        .sum::<f64>()
        .sqrt();
    let tol = f64::EPSILON * norm.max(f64::MIN_POSITIVE);

    for sweep in 0..MAX_SWEEPS {
        if let Some(token) = token {
            if let Err(c) = token.checkpoint("eigen/jacobi") {
                klest_obs::counter_add("eigen.jacobi_sweeps", sweep as u64);
                return Err(LinalgError::Cancelled(c.with_completed(sweep)));
            }
        }
        let off: f64 = (0..n)
            .map(|i| ((i + 1)..n).map(|j| m[(i, j)] * m[(i, j)]).sum::<f64>())
            .sum::<f64>()
            .sqrt();
        if off <= tol {
            klest_obs::counter_add("eigen.jacobi_sweeps", sweep as u64);
            let values = (0..n).map(|i| m[(i, i)]).collect();
            return Ok((values, v));
        }
        for p in 0..n {
            for q in (p + 1)..n {
                let apq = m[(p, q)];
                if apq.abs() <= tol / (n as f64) {
                    continue;
                }
                // Classic two-sided rotation annihilating m[p][q].
                let theta = (m[(q, q)] - m[(p, p)]) / (2.0 * apq);
                let t = if theta >= 0.0 {
                    1.0 / (theta + theta.hypot(1.0))
                } else {
                    -1.0 / (-theta + theta.hypot(1.0))
                };
                let c = 1.0 / t.hypot(1.0);
                let s = t * c;
                for k in 0..n {
                    let mkp = m[(k, p)];
                    let mkq = m[(k, q)];
                    m[(k, p)] = c * mkp - s * mkq;
                    m[(k, q)] = s * mkp + c * mkq;
                }
                for k in 0..n {
                    let mpk = m[(p, k)];
                    let mqk = m[(q, k)];
                    m[(p, k)] = c * mpk - s * mqk;
                    m[(q, k)] = s * mpk + c * mqk;
                }
                for k in 0..n {
                    let vkp = v[(k, p)];
                    let vkq = v[(k, q)];
                    v[(k, p)] = c * vkp - s * vkq;
                    v[(k, q)] = s * vkp + c * vkq;
                }
            }
        }
    }
    klest_obs::counter_add("eigen.jacobi_sweeps", MAX_SWEEPS as u64);
    Err(LinalgError::NoConvergence { index: 0 })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vecops;

    #[test]
    fn diagonalizes_known_matrix() {
        let a = Matrix::from_rows(&[[2.0, 1.0].as_slice(), [1.0, 2.0].as_slice()]).unwrap();
        let (values, vectors) = jacobi_eigen(&a, None).unwrap();
        let mut sorted = values.clone();
        sorted.sort_by(f64::total_cmp);
        assert!((sorted[0] - 1.0).abs() < 1e-12);
        assert!((sorted[1] - 3.0).abs() < 1e-12);
        // Columns satisfy A v = λ v.
        for j in 0..2 {
            let v: Vec<f64> = (0..2).map(|i| vectors[(i, j)]).collect();
            let av = a.mul_vec(&v).unwrap();
            for (x, y) in av.iter().zip(&v) {
                assert!((x - values[j] * y).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn orthonormal_vectors_on_random_symmetric() {
        let n = 16;
        let mut seed = 7u64;
        let mut rnd = || {
            seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((seed >> 11) as f64 / (1u64 << 53) as f64) - 0.5
        };
        let mut a = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..=i {
                let x = rnd();
                a[(i, j)] = x;
                a[(j, i)] = x;
            }
        }
        let (values, vectors) = jacobi_eigen(&a, None).unwrap();
        let trace: f64 = (0..n).map(|i| a[(i, i)]).sum();
        let sum: f64 = values.iter().sum();
        assert!((trace - sum).abs() < 1e-9);
        for i in 0..n {
            let vi: Vec<f64> = (0..n).map(|k| vectors[(k, i)]).collect();
            assert!((vecops::norm(&vi) - 1.0).abs() < 1e-9);
            for j in (i + 1)..n {
                let vj: Vec<f64> = (0..n).map(|k| vectors[(k, j)]).collect();
                assert!(vecops::dot(&vi, &vj).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn handles_already_diagonal() {
        let a = Matrix::from_rows(&[
            [5.0, 0.0, 0.0].as_slice(),
            [0.0, -2.0, 0.0].as_slice(),
            [0.0, 0.0, 1.0].as_slice(),
        ])
        .unwrap();
        let (values, _) = jacobi_eigen(&a, None).unwrap();
        let mut sorted = values;
        sorted.sort_by(f64::total_cmp);
        assert_eq!(sorted, vec![-2.0, 1.0, 5.0]);
    }
}
