//! Lanczos iteration for the leading eigenpairs of a symmetric matrix.
//!
//! The paper only needs the first ~200 eigenpairs of the n = 1546
//! Galerkin matrix (its authors used Matlab, whose `eigs` is
//! Lanczos-based). The full Householder+QL solve is O(n³); Lanczos with
//! `m ≪ n` iterations costs O(m n² + m² n) and recovers the leading
//! spectrum to high accuracy because KLE spectra decay fast.
//!
//! Full reorthogonalisation is used — at m ≤ a few hundred the extra
//! O(m² n) is cheap and removes the classic ghost-eigenvalue problem.
//!
//! Two engines share this module:
//!
//! - [`PartialEigen::lanczos`]: the in-memory tridiagonal reference over
//!   a dense [`Matrix`] (unchanged historical behaviour, bit for bit);
//! - [`PartialEigen::lanczos_op`]: the matrix-free engine over any
//!   [`LinearOperator`] — full reorthogonalisation plus thick restart,
//!   never materializing the matrix, with O(n·m) peak memory.

use crate::{vecops, LinalgError, LinearOperator, Matrix, SymmetricEigen};

/// Relative residual tolerance below which a Ritz pair counts as
/// converged in [`PartialEigen::lanczos_op`].
const RITZ_REL_TOL: f64 = 1e-10;

/// A residual norm below this is an invariant subspace: the Krylov space
/// cannot be extended from this start vector.
const INVARIANT_TOL: f64 = 1e-13;

/// Deterministic pseudo-random start vector (no RNG dependency),
/// normalized. Shared by both Lanczos engines so the dense and
/// matrix-free paths explore the same Krylov space.
fn seeded_start(n: usize) -> Vec<f64> {
    let mut q0 = vec![0.0; n];
    let mut state = 0x853c49e6748fea9bu64;
    for v in q0.iter_mut() {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        *v = ((state >> 11) as f64 / (1u64 << 53) as f64) - 0.5;
    }
    let norm = vecops::norm(&q0);
    vecops::scale(&mut q0, 1.0 / norm);
    q0
}

/// Orthogonalizes `v` against every vector in `basis` (one MGS pass),
/// normalizes and pushes it — unless it collapses below the invariant
/// tolerance, in which case it is linearly dependent and dropped.
fn push_orthonormalized(basis: &mut Vec<Vec<f64>>, mut v: Vec<f64>) {
    for q in basis.iter() {
        let proj = vecops::dot(&v, q);
        vecops::axpy(-proj, q, &mut v);
    }
    let norm = vecops::norm(&v);
    if norm >= INVARIANT_TOL {
        vecops::scale(&mut v, 1.0 / norm);
        basis.push(v);
    }
}

/// Checkpointable state of the matrix-free thick-restart engine, captured
/// at a cycle boundary.
///
/// A restart cycle of [`PartialEigen::lanczos_op`] is a pure function of
/// the basis it starts from and the remaining apply budget: the projected
/// (tridiagonal-plus-spikes) block, residual frontier and Ritz pairs are
/// all recomputed inside the cycle. So the only state that must survive a
/// crash is the restart basis and the apply count — resuming from a
/// captured state replays the remaining cycles **bitwise identically** to
/// the uninterrupted run (the serialization stores exact f64 bit
/// patterns, so a disk round-trip loses nothing).
#[derive(Debug, Clone, PartialEq)]
pub struct LanczosState {
    basis: Vec<Vec<f64>>,
    applied: usize,
}

const STATE_HEADER: &str = "klest-lanczos-state/v1";

impl LanczosState {
    /// Operator applications consumed up to this checkpoint (counted
    /// against the `max_iters` budget on resume).
    pub fn applied(&self) -> usize {
        self.applied
    }

    /// Number of basis vectors in the restart frontier.
    pub fn basis_len(&self) -> usize {
        self.basis.len()
    }

    /// Dimension of the underlying operator.
    pub fn dim(&self) -> usize {
        self.basis.first().map_or(0, Vec::len)
    }

    /// Serializes the state as text with exact f64 bit patterns
    /// (hex-encoded `to_bits`), so deserialize→resume is bitwise
    /// indistinguishable from never having stopped.
    pub fn serialize(&self) -> String {
        let mut out = String::new();
        out.push_str(STATE_HEADER);
        out.push('\n');
        out.push_str(&format!(
            "dim {}\nvectors {}\napplied {}\n",
            self.dim(),
            self.basis.len(),
            self.applied
        ));
        for v in &self.basis {
            let mut first = true;
            for &x in v {
                if !first {
                    out.push(' ');
                }
                out.push_str(&format!("{:016x}", x.to_bits()));
                first = false;
            }
            out.push('\n');
        }
        out
    }

    /// Parses a [`serialize`](Self::serialize)d state. `None` on any
    /// structural damage (wrong header, counts, word widths) — torn or
    /// corrupted checkpoints degrade to "no checkpoint", never a panic.
    pub fn deserialize(text: &str) -> Option<LanczosState> {
        let mut lines = text.lines();
        if lines.next()? != STATE_HEADER {
            return None;
        }
        let dim: usize = lines.next()?.strip_prefix("dim ")?.parse().ok()?;
        let vectors: usize = lines.next()?.strip_prefix("vectors ")?.parse().ok()?;
        let applied: usize = lines.next()?.strip_prefix("applied ")?.parse().ok()?;
        if dim == 0 || vectors == 0 {
            return None;
        }
        let mut basis = Vec::with_capacity(vectors);
        for _ in 0..vectors {
            let line = lines.next()?;
            let mut v = Vec::with_capacity(dim);
            for word in line.split(' ') {
                if word.len() != 16 {
                    return None;
                }
                v.push(f64::from_bits(u64::from_str_radix(word, 16).ok()?));
            }
            if v.len() != dim {
                return None;
            }
            basis.push(v);
        }
        if lines.next().is_some() {
            return None;
        }
        Some(LanczosState { basis, applied })
    }
}

/// Result of a partial (Lanczos) eigendecomposition: the leading `k`
/// eigenpairs in descending order.
#[derive(Debug, Clone)]
pub struct PartialEigen {
    values: Vec<f64>,
    /// `n x k`; column `j` pairs with `values[j]`.
    vectors: Matrix,
}

impl PartialEigen {
    /// Computes the `k` algebraically largest eigenpairs of symmetric
    /// `a` using `m >= k` Lanczos iterations (a small multiple of `k`,
    /// e.g. `2k`, is usually ample for decaying spectra).
    ///
    /// # Errors
    ///
    /// - [`LinalgError::NotSquare`] / [`LinalgError::Empty`] for bad
    ///   shapes,
    /// - [`LinalgError::DimensionMismatch`] if `k == 0` or `k > m > n`
    ///   constraints are violated,
    /// - [`LinalgError::NoConvergence`] from the inner tridiagonal solve.
    pub fn lanczos(a: &Matrix, k: usize, m: usize) -> Result<Self, LinalgError> {
        if !a.is_square() {
            return Err(LinalgError::NotSquare {
                dims: (a.rows(), a.cols()),
            });
        }
        let n = a.rows();
        if n == 0 {
            return Err(LinalgError::Empty);
        }
        let m = m.min(n);
        if k == 0 || k > m {
            return Err(LinalgError::DimensionMismatch {
                op: "lanczos",
                left: (k, 1),
                right: (m, 1),
            });
        }
        // Krylov basis, row `i` = Lanczos vector q_i (row-major friendly).
        let mut q = Matrix::zeros(m, n);
        let mut alpha = vec![0.0; m];
        let mut beta = vec![0.0; m]; // beta[i] couples q_{i} and q_{i+1}
        q.row_mut(0).copy_from_slice(&seeded_start(n));
        let mut w = vec![0.0; n];
        let mut steps = m;
        for i in 0..m {
            // w = A q_i
            {
                let qi = q.row(i);
                for (row, wv) in w.iter_mut().enumerate() {
                    *wv = vecops::dot(a.row(row), qi);
                }
            }
            alpha[i] = vecops::dot(&w, q.row(i));
            // w -= alpha_i q_i + beta_{i-1} q_{i-1}
            {
                let qi = q.row(i).to_vec();
                vecops::axpy(-alpha[i], &qi, &mut w);
            }
            if i > 0 {
                let qprev = q.row(i - 1).to_vec();
                vecops::axpy(-beta[i - 1], &qprev, &mut w);
            }
            // Full reorthogonalisation (twice is enough in practice).
            for _ in 0..2 {
                for j in 0..=i {
                    let proj = vecops::dot(&w, q.row(j));
                    let qj = q.row(j).to_vec();
                    vecops::axpy(-proj, &qj, &mut w);
                }
            }
            let b = vecops::norm(&w);
            if i + 1 < m {
                if b < 1e-13 {
                    // Invariant subspace found early; truncate the basis.
                    steps = i + 1;
                    break;
                }
                beta[i] = b;
                let qnext = q.row_mut(i + 1);
                for (dst, src) in qnext.iter_mut().zip(w.iter()) {
                    *dst = src / b;
                }
            }
        }

        // Solve the small tridiagonal problem T = tri(alpha, beta).
        let mut t = Matrix::zeros(steps, steps);
        for i in 0..steps {
            t[(i, i)] = alpha[i];
            if i + 1 < steps {
                t[(i, i + 1)] = beta[i];
                t[(i + 1, i)] = beta[i];
            }
        }
        let eig = SymmetricEigen::new(&t)?;
        let k = k.min(steps);
        // Ritz vectors: v_j = Qᵀ s_j (rows of q are the basis).
        let mut vectors = Matrix::zeros(n, k);
        for j in 0..k {
            let s = eig.eigenvector(j);
            for (i, &si) in s.iter().enumerate() {
                let qi = q.row(i);
                for (row, &qv) in qi.iter().enumerate() {
                    vectors[(row, j)] += si * qv;
                }
            }
            // Normalise against accumulated rounding.
            let col: Vec<f64> = (0..n).map(|r| vectors[(r, j)]).collect();
            let norm = vecops::norm(&col);
            for r in 0..n {
                vectors[(r, j)] /= norm;
            }
        }
        Ok(PartialEigen {
            values: eig.eigenvalues()[..k].to_vec(),
            vectors,
        })
    }

    /// Computes the `k` algebraically largest eigenpairs of a symmetric
    /// [`LinearOperator`] without ever materializing it: Lanczos with
    /// full reorthogonalisation and thick restart. Peak memory is
    /// O(n·m) for the Krylov basis (`m ≈ 2k + 10` per cycle), never
    /// O(n²).
    ///
    /// Each restart cycle grows the basis to `m` vectors, solves the
    /// projected (Rayleigh–Ritz) problem, and — if the leading `k` Ritz
    /// pairs have residual estimates above the convergence tolerance —
    /// restarts from those Ritz vectors plus the out-of-span residual
    /// direction. `max_iters` bounds the **total operator applications**
    /// across all cycles, so a non-converging (e.g. NaN-poisoned)
    /// operator surfaces a typed error instead of looping.
    ///
    /// Like [`lanczos`](Self::lanczos), a degenerate spectrum whose
    /// reachable Krylov space is smaller than `k` legitimately returns
    /// fewer pairs.
    ///
    /// # Errors
    ///
    /// - [`LinalgError::Empty`] for a zero-dimensional operator,
    /// - [`LinalgError::DimensionMismatch`] if `k == 0`, `k > n` or
    ///   `max_iters == 0`,
    /// - [`LinalgError::NonFinite`] when an operator application
    ///   produces NaN/∞ (`row` = vector index, `col` = Lanczos step),
    /// - [`LinalgError::NoConvergence`] when `max_iters` applications
    ///   were spent without the leading pairs converging,
    /// - any error the operator itself reports (e.g.
    ///   [`LinalgError::Cancelled`] from a token-aware operator).
    pub fn lanczos_op<Op: LinearOperator + ?Sized>(
        op: &Op,
        k: usize,
        max_iters: usize,
    ) -> Result<Self, LinalgError> {
        Self::lanczos_op_with_state(op, k, max_iters, None, &mut |_| {})
    }

    /// [`lanczos_op`](Self::lanczos_op) with checkpoint/resume hooks.
    ///
    /// `on_cycle` is invoked at every thick-restart boundary with the
    /// [`LanczosState`] the next cycle starts from; persisting it (e.g.
    /// through a `CheckpointStore`) makes the eigensolve restartable.
    /// Passing a captured state back as `resume` continues the solve from
    /// that boundary and — because a cycle is a pure function of its
    /// restart basis and remaining apply budget — produces **bitwise
    /// identical** eigenpairs to the uninterrupted run with the same
    /// `(op, k, max_iters)`. Each boundary also passes the
    /// `lanczos/cycle` [`klest_runtime::crash_point`], the deterministic
    /// kill point the chaos suite aborts at.
    ///
    /// # Errors
    ///
    /// As for [`lanczos_op`](Self::lanczos_op), plus
    /// [`LinalgError::DimensionMismatch`] (`op = "lanczos_resume"`) when
    /// `resume` disagrees with the operator dimension or the cycle basis
    /// size implied by `k`.
    pub fn lanczos_op_with_state<Op: LinearOperator + ?Sized>(
        op: &Op,
        k: usize,
        max_iters: usize,
        resume: Option<&LanczosState>,
        on_cycle: &mut dyn FnMut(&LanczosState),
    ) -> Result<Self, LinalgError> {
        let n = op.dim();
        if n == 0 {
            return Err(LinalgError::Empty);
        }
        if k == 0 || k > n || max_iters == 0 {
            return Err(LinalgError::DimensionMismatch {
                op: "lanczos_op",
                left: (k, 1),
                right: (n, max_iters),
            });
        }
        // Per-cycle Krylov dimension: the same small multiple of k the
        // dense KLE path uses, clamped to the space size.
        let m = (2 * k + 10).min(n);
        let (mut basis, mut applied) = match resume {
            Some(state) => {
                let fits = !state.basis.is_empty()
                    && state.basis.len() <= m
                    && state.basis.iter().all(|v| v.len() == n);
                if !fits {
                    return Err(LinalgError::DimensionMismatch {
                        op: "lanczos_resume",
                        left: (state.basis.len(), state.dim()),
                        right: (m, n),
                    });
                }
                (state.basis.clone(), state.applied)
            }
            None => (vec![seeded_start(n)], 0usize),
        };
        let mut u = vec![0.0; n];
        loop {
            // One restart cycle: fill the projected matrix column by
            // column, expanding the basis at the frontier. With full
            // reorthogonalisation the projection T = Qᵀ A Q is computed
            // exactly (dense, not assumed tridiagonal), which is what
            // makes restarting from Ritz vectors seamless.
            let mut t = Matrix::zeros(m, m);
            let mut beta_last = 0.0;
            let mut residual: Option<Vec<f64>> = None;
            let mut invariant = false;
            let mut i = 0usize;
            while i < basis.len() {
                if applied >= max_iters {
                    return Err(LinalgError::NoConvergence { index: 0 });
                }
                op.apply(&basis[i], &mut u)?;
                applied += 1;
                if let Some(row) = u.iter().position(|v| !v.is_finite()) {
                    return Err(LinalgError::NonFinite { row, col: i });
                }
                for (j, qj) in basis.iter().enumerate() {
                    let v = vecops::dot(qj, &u);
                    t[(j, i)] = v;
                    t[(i, j)] = v;
                }
                if i + 1 == basis.len() {
                    // Frontier: orthogonalize A q_i against the whole
                    // basis (two passes) to get the next direction.
                    let mut w = u.clone();
                    for _ in 0..2 {
                        for qj in &basis {
                            let proj = vecops::dot(&w, qj);
                            vecops::axpy(-proj, qj, &mut w);
                        }
                    }
                    let b = vecops::norm(&w);
                    beta_last = b;
                    if b < INVARIANT_TOL {
                        invariant = true;
                        i += 1;
                        break;
                    }
                    vecops::scale(&mut w, 1.0 / b);
                    if basis.len() < m {
                        basis.push(w);
                    } else {
                        // Basis full: keep the residual direction for
                        // the thick restart instead of growing.
                        residual = Some(w);
                    }
                }
                i += 1;
            }
            let s = basis.len().min(i);
            // Rayleigh–Ritz on span(basis).
            let ts = Matrix::from_fn(s, s, |r, c| t[(r, c)]);
            let eig = SymmetricEigen::new(&ts)?;
            let avail = k.min(s);
            // Residual estimate for Ritz pair j: the out-of-span defect
            // of the basis lives entirely in the last expansion
            // direction, so ‖A v_j − θ_j v_j‖ ≈ β · |s_{last,j}|.
            let head = eig.eigenvalues()[0].abs().max(f64::MIN_POSITIVE);
            let converged = |j: usize| {
                beta_last * eig.eigenvector(j)[s - 1].abs() <= RITZ_REL_TOL * head
            };
            let done = invariant || s == n || (0..avail).all(converged);
            if done {
                let mut vectors = Matrix::zeros(n, avail);
                for j in 0..avail {
                    let sj = eig.eigenvector(j);
                    for (bi, &si) in basis.iter().zip(sj.iter()) {
                        for (row, &qv) in bi.iter().enumerate() {
                            vectors[(row, j)] += si * qv;
                        }
                    }
                    let col = vectors.col(j);
                    let norm = vecops::norm(&col);
                    for row in 0..n {
                        vectors[(row, j)] /= norm;
                    }
                }
                return Ok(PartialEigen {
                    values: eig.eigenvalues()[..avail].to_vec(),
                    vectors,
                });
            }
            // Thick restart: leading Ritz vectors plus the residual
            // direction seed the next cycle. One modified-Gram-Schmidt
            // pass guards against drift from near-degenerate Ritz pairs;
            // a vector that collapses under it is simply dropped.
            let mut next: Vec<Vec<f64>> = Vec::with_capacity(avail + 1);
            for j in 0..avail {
                let sj = eig.eigenvector(j);
                let mut v = vec![0.0; n];
                for (bi, &si) in basis.iter().zip(sj.iter()) {
                    vecops::axpy(si, bi, &mut v);
                }
                push_orthonormalized(&mut next, v);
            }
            if let Some(w) = residual {
                push_orthonormalized(&mut next, w);
            }
            if next.is_empty() {
                // Cannot happen for a finite spectrum (the leading Ritz
                // vector is unit norm), but stay typed rather than loop.
                return Err(LinalgError::NoConvergence { index: 0 });
            }
            basis = next;
            // Cycle boundary: the (basis, applied) pair now on hand is
            // the complete state of the solve — surface it to the
            // checkpoint observer, then pass the deterministic kill
            // point the chaos suite aborts at.
            on_cycle(&LanczosState {
                basis: basis.clone(),
                applied,
            });
            klest_runtime::crash_point("lanczos/cycle");
        }
    }

    /// The leading eigenvalues, descending.
    pub fn eigenvalues(&self) -> &[f64] {
        &self.values
    }

    /// Ritz vectors; column `j` pairs with `eigenvalues()[j]`.
    pub fn eigenvectors(&self) -> &Matrix {
        &self.vectors
    }

    /// Copy of the `j`-th eigenvector.
    ///
    /// # Panics
    ///
    /// Panics if `j` is out of range.
    pub fn eigenvector(&self, j: usize) -> Vec<f64> {
        self.vectors.col(j)
    }

    /// Number of converged pairs returned.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether no pairs were returned (cannot happen via
    /// [`lanczos`](PartialEigen::lanczos), which requires `k >= 1`).
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn random_spd(n: usize, seed: u64, decay: f64) -> Matrix {
        // SPD with controlled spectral decay: A = V diag(d) Vᵀ for a
        // random orthogonal-ish V via QR-free symmetrisation. Simpler:
        // start diagonal with decay, apply a few random Jacobi rotations.
        let mut a = Matrix::zeros(n, n);
        for i in 0..n {
            a[(i, i)] = (-decay * i as f64).exp();
        }
        let mut state = seed;
        let mut rnd = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 11) as f64 / (1u64 << 53) as f64) - 0.5
        };
        for _ in 0..4 * n {
            let p = (rnd().abs() * n as f64) as usize % n;
            let q = (rnd().abs() * n as f64) as usize % n;
            if p == q {
                continue;
            }
            let theta = rnd();
            let (c, s) = (theta.cos(), theta.sin());
            // A <- G A Gᵀ with Givens rotation in (p, q).
            for j in 0..n {
                let (apj, aqj) = (a[(p, j)], a[(q, j)]);
                a[(p, j)] = c * apj - s * aqj;
                a[(q, j)] = s * apj + c * aqj;
            }
            for i in 0..n {
                let (aip, aiq) = (a[(i, p)], a[(i, q)]);
                a[(i, p)] = c * aip - s * aiq;
                a[(i, q)] = s * aip + c * aiq;
            }
        }
        // Force exact symmetry against rounding.
        for i in 0..n {
            for j in 0..i {
                let v = 0.5 * (a[(i, j)] + a[(j, i)]);
                a[(i, j)] = v;
                a[(j, i)] = v;
            }
        }
        a
    }

    #[test]
    fn matches_full_solver_on_leading_pairs() {
        let a = random_spd(60, 42, 0.15);
        let full = SymmetricEigen::new(&a).unwrap();
        let partial = PartialEigen::lanczos(&a, 8, 30).unwrap();
        assert_eq!(partial.len(), 8);
        assert!(!partial.is_empty());
        for j in 0..8 {
            let rel = (partial.eigenvalues()[j] - full.eigenvalues()[j]).abs()
                / full.eigenvalues()[j].abs().max(1e-300);
            assert!(rel < 1e-8, "eigenvalue {j}: rel error {rel}");
        }
    }

    #[test]
    fn ritz_vectors_satisfy_eigen_equation() {
        let a = random_spd(40, 7, 0.3);
        let partial = PartialEigen::lanczos(&a, 5, 25).unwrap();
        for j in 0..5 {
            let v = partial.eigenvector(j);
            let av = a.mul_vec(&v).unwrap();
            let lam = partial.eigenvalues()[j];
            let residual: f64 = av
                .iter()
                .zip(&v)
                .map(|(x, y)| (x - lam * y) * (x - lam * y))
                .sum::<f64>()
                .sqrt();
            assert!(residual < 1e-7, "pair {j}: residual {residual}");
        }
    }

    #[test]
    fn ritz_vectors_are_orthonormal() {
        let a = random_spd(50, 11, 0.2);
        let partial = PartialEigen::lanczos(&a, 6, 24).unwrap();
        for i in 0..6 {
            let vi = partial.eigenvector(i);
            assert!((vecops::norm(&vi) - 1.0).abs() < 1e-10);
            for j in (i + 1)..6 {
                let vj = partial.eigenvector(j);
                assert!(vecops::dot(&vi, &vj).abs() < 1e-8, "({i},{j})");
            }
        }
    }

    #[test]
    fn early_invariant_subspace_termination() {
        // Rank-2 matrix: Lanczos finds the invariant subspace in ~3 steps.
        let n = 20;
        let mut a = Matrix::zeros(n, n);
        a[(0, 0)] = 3.0;
        a[(1, 1)] = 1.0;
        let partial = PartialEigen::lanczos(&a, 2, 15).unwrap();
        assert!((partial.eigenvalues()[0] - 3.0).abs() < 1e-10);
        assert!((partial.eigenvalues()[1] - 1.0).abs() < 1e-10);
    }

    #[test]
    fn input_validation() {
        let a = Matrix::identity(5);
        assert!(PartialEigen::lanczos(&a, 0, 3).is_err());
        assert!(PartialEigen::lanczos(&a, 4, 3).is_err());
        assert!(PartialEigen::lanczos(&Matrix::zeros(2, 3), 1, 2).is_err());
        assert!(PartialEigen::lanczos(&Matrix::zeros(0, 0), 1, 1).is_err());
        // k and m clamp to n (distinct spectrum, so the full Krylov
        // space is reachable — a degenerate spectrum like the identity
        // legitimately terminates after one step).
        let mut d = Matrix::zeros(5, 5);
        for i in 0..5 {
            d[(i, i)] = (i + 1) as f64;
        }
        let ok = PartialEigen::lanczos(&d, 3, 100).unwrap();
        assert_eq!(ok.len(), 3);
        assert!((ok.eigenvalues()[0] - 5.0).abs() < 1e-10);
        assert!((ok.eigenvalues()[2] - 3.0).abs() < 1e-10);
    }

    #[test]
    fn degenerate_spectrum_terminates_early_with_fewer_pairs() {
        // Identity: the Krylov space from any start vector is 1-D, so a
        // single (correct) pair comes back even when more were asked.
        let a = Matrix::identity(5);
        let partial = PartialEigen::lanczos(&a, 3, 5).unwrap();
        assert_eq!(partial.len(), 1);
        assert!((partial.eigenvalues()[0] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn operator_engine_matches_full_solver() {
        let a = random_spd(60, 42, 0.15);
        let full = SymmetricEigen::new(&a).unwrap();
        let partial = PartialEigen::lanczos_op(&a, 8, 500).unwrap();
        assert_eq!(partial.len(), 8);
        for j in 0..8 {
            let rel = (partial.eigenvalues()[j] - full.eigenvalues()[j]).abs()
                / full.eigenvalues()[j].abs().max(1e-300);
            assert!(rel < 1e-8, "eigenvalue {j}: rel error {rel}");
            let v = partial.eigenvector(j);
            let av = a.mul_vec(&v).unwrap();
            let lam = partial.eigenvalues()[j];
            let res: f64 = av
                .iter()
                .zip(&v)
                .map(|(x, y)| (x - lam * y) * (x - lam * y))
                .sum::<f64>()
                .sqrt();
            assert!(res < 1e-7, "pair {j}: residual {res}");
        }
    }

    #[test]
    fn operator_engine_restarts_on_slow_spectra() {
        // decay 0.02 over n = 80 gives eigenvalue ratios near 1, so a
        // single (2k+10)-step cycle does not converge and the thick
        // restart has to do real work.
        let a = random_spd(80, 5, 0.02);
        let full = SymmetricEigen::new(&a).unwrap();
        let partial = PartialEigen::lanczos_op(&a, 4, 500).unwrap();
        assert_eq!(partial.len(), 4);
        for j in 0..4 {
            let rel = (partial.eigenvalues()[j] - full.eigenvalues()[j]).abs()
                / full.eigenvalues()[j].abs().max(1e-300);
            assert!(rel < 1e-8, "eigenvalue {j}: rel error {rel}");
        }
    }

    #[test]
    fn operator_engine_handles_clustered_spectrum() {
        // Two near-degenerate clusters: {3, 3-1e-9} and {1, 1-1e-9}.
        let n = 30;
        let mut a = Matrix::zeros(n, n);
        a[(0, 0)] = 3.0;
        a[(1, 1)] = 3.0 - 1e-9;
        a[(2, 2)] = 1.0;
        a[(3, 3)] = 1.0 - 1e-9;
        for i in 4..n {
            a[(i, i)] = 0.1;
        }
        let partial = PartialEigen::lanczos_op(&a, 4, 500).unwrap();
        assert_eq!(partial.len(), 4);
        let want = [3.0, 3.0 - 1e-9, 1.0, 1.0 - 1e-9];
        for (j, w) in want.iter().enumerate() {
            assert!(
                (partial.eigenvalues()[j] - w).abs() < 1e-8,
                "clustered eigenvalue {j}: got {}",
                partial.eigenvalues()[j]
            );
        }
    }

    #[test]
    fn operator_engine_degenerate_spectrum_returns_fewer_pairs() {
        let a = Matrix::identity(5);
        let partial = PartialEigen::lanczos_op(&a, 3, 100).unwrap();
        assert_eq!(partial.len(), 1);
        assert!((partial.eigenvalues()[0] - 1.0).abs() < 1e-12);
    }

    struct NanOperator(usize);

    impl LinearOperator for NanOperator {
        fn dim(&self) -> usize {
            self.0
        }

        fn apply(&self, _x: &[f64], y: &mut [f64]) -> Result<(), LinalgError> {
            y.fill(f64::NAN);
            Ok(())
        }
    }

    #[test]
    fn nan_operator_surfaces_typed_error_instead_of_looping() {
        let err = PartialEigen::lanczos_op(&NanOperator(10), 2, 50).unwrap_err();
        assert!(matches!(err, LinalgError::NonFinite { .. }), "{err:?}");
    }

    #[test]
    fn exhausted_apply_budget_is_no_convergence() {
        // A healthy operator with a tiny budget: the first cycle cannot
        // even fill its basis, so the typed budget error comes back.
        let a = random_spd(40, 9, 0.05);
        let err = PartialEigen::lanczos_op(&a, 4, 3).unwrap_err();
        assert!(matches!(err, LinalgError::NoConvergence { .. }), "{err:?}");
    }

    fn bits_of(eig: &PartialEigen) -> (Vec<u64>, Vec<u64>) {
        let values = eig.eigenvalues().iter().map(|v| v.to_bits()).collect();
        let n = eig.eigenvectors().rows();
        let mut vec_bits = Vec::new();
        for j in 0..eig.len() {
            for r in 0..n {
                vec_bits.push(eig.eigenvectors()[(r, j)].to_bits());
            }
        }
        (values, vec_bits)
    }

    #[test]
    fn resume_from_every_cycle_is_bitwise_identical() {
        // Slow spectrum forces several thick-restart cycles, so there are
        // real checkpoints to resume from.
        let a = random_spd(80, 5, 0.02);
        let mut checkpoints: Vec<LanczosState> = Vec::new();
        let uninterrupted =
            PartialEigen::lanczos_op_with_state(&a, 4, 500, None, &mut |s| {
                checkpoints.push(s.clone())
            })
            .unwrap();
        assert!(
            checkpoints.len() >= 2,
            "expected several restart cycles, got {}",
            checkpoints.len()
        );
        let want = bits_of(&uninterrupted);
        for (i, cp) in checkpoints.iter().enumerate() {
            // Disk round-trip through the textual format, then resume.
            let wire = cp.serialize();
            let restored = LanczosState::deserialize(&wire).unwrap();
            assert_eq!(&restored, cp, "serialization must be lossless");
            let resumed =
                PartialEigen::lanczos_op_with_state(&a, 4, 500, Some(&restored), &mut |_| {})
                    .unwrap();
            assert_eq!(
                bits_of(&resumed),
                want,
                "resume from cycle {i} must be bitwise identical"
            );
        }
    }

    #[test]
    fn converged_solve_emits_no_checkpoints_and_wrapper_is_unchanged() {
        // Fast decay converges within the first cycle: no restart, no
        // checkpoint, and the thin wrapper must match bit for bit.
        let mut d = Matrix::zeros(5, 5);
        for i in 0..5 {
            d[(i, i)] = (i + 1) as f64;
        }
        let mut cycles = 0usize;
        let with_state =
            PartialEigen::lanczos_op_with_state(&d, 5, 100, None, &mut |_| cycles += 1).unwrap();
        let plain = PartialEigen::lanczos_op(&d, 5, 100).unwrap();
        assert_eq!(cycles, 0, "k = n fills the space in one cycle");
        assert_eq!(bits_of(&with_state), bits_of(&plain));
        // And on a case that does restart, the wrapper still matches the
        // hook-bearing engine bit for bit.
        let a = random_spd(60, 42, 0.15);
        let with_state = PartialEigen::lanczos_op_with_state(&a, 8, 500, None, &mut |_| {}).unwrap();
        let plain = PartialEigen::lanczos_op(&a, 8, 500).unwrap();
        assert_eq!(bits_of(&with_state), bits_of(&plain));
    }

    #[test]
    fn state_deserialize_rejects_damage() {
        let a = random_spd(80, 5, 0.02);
        let mut first: Option<LanczosState> = None;
        let _ = PartialEigen::lanczos_op_with_state(&a, 4, 500, None, &mut |s| {
            if first.is_none() {
                first = Some(s.clone());
            }
        })
        .unwrap();
        let wire = first.unwrap().serialize();
        // Torn tail, wrong header, truncated word, trailing garbage.
        assert!(LanczosState::deserialize(&wire[..wire.len() - 9]).is_none());
        assert!(LanczosState::deserialize(&wire.replacen("v1", "v9", 1)).is_none());
        let mangled = wire.replacen(" ", "  ", 1);
        assert!(LanczosState::deserialize(&mangled).is_none());
        let trailing = format!("{wire}deadbeefdeadbeef\n");
        assert!(LanczosState::deserialize(&trailing).is_none());
        assert!(LanczosState::deserialize("").is_none());
    }

    #[test]
    fn resume_rejects_mismatched_operator() {
        let a = random_spd(80, 5, 0.02);
        let mut first: Option<LanczosState> = None;
        let _ = PartialEigen::lanczos_op_with_state(&a, 4, 500, None, &mut |s| {
            if first.is_none() {
                first = Some(s.clone());
            }
        })
        .unwrap();
        let state = first.unwrap();
        // Wrong dimension: the state came from an 80-dim operator.
        let b = random_spd(40, 9, 0.05);
        let err = PartialEigen::lanczos_op_with_state(&b, 4, 500, Some(&state), &mut |_| {})
            .unwrap_err();
        assert!(matches!(err, LinalgError::DimensionMismatch { op: "lanczos_resume", .. }));
    }

    #[test]
    fn operator_engine_input_validation() {
        let a = Matrix::identity(5);
        assert!(PartialEigen::lanczos_op(&a, 0, 10).is_err());
        assert!(PartialEigen::lanczos_op(&a, 6, 10).is_err());
        assert!(PartialEigen::lanczos_op(&a, 2, 0).is_err());
        assert!(PartialEigen::lanczos_op(&Matrix::zeros(0, 0), 1, 10).is_err());
        // k == n is legal and exact.
        let mut d = Matrix::zeros(5, 5);
        for i in 0..5 {
            d[(i, i)] = (i + 1) as f64;
        }
        let ok = PartialEigen::lanczos_op(&d, 5, 100).unwrap();
        assert_eq!(ok.len(), 5);
        assert!((ok.eigenvalues()[0] - 5.0).abs() < 1e-10);
        assert!((ok.eigenvalues()[4] - 1.0).abs() < 1e-10);
    }
}
