//! Lanczos iteration for the leading eigenpairs of a symmetric matrix.
//!
//! The paper only needs the first ~200 eigenpairs of the n = 1546
//! Galerkin matrix (its authors used Matlab, whose `eigs` is
//! Lanczos-based). The full Householder+QL solve is O(n³); Lanczos with
//! `m ≪ n` iterations costs O(m n² + m² n) and recovers the leading
//! spectrum to high accuracy because KLE spectra decay fast.
//!
//! Full reorthogonalisation is used — at m ≤ a few hundred the extra
//! O(m² n) is cheap and removes the classic ghost-eigenvalue problem.

use crate::{vecops, LinalgError, Matrix, SymmetricEigen};

/// Result of a partial (Lanczos) eigendecomposition: the leading `k`
/// eigenpairs in descending order.
#[derive(Debug, Clone)]
pub struct PartialEigen {
    values: Vec<f64>,
    /// `n x k`; column `j` pairs with `values[j]`.
    vectors: Matrix,
}

impl PartialEigen {
    /// Computes the `k` algebraically largest eigenpairs of symmetric
    /// `a` using `m >= k` Lanczos iterations (a small multiple of `k`,
    /// e.g. `2k`, is usually ample for decaying spectra).
    ///
    /// # Errors
    ///
    /// - [`LinalgError::NotSquare`] / [`LinalgError::Empty`] for bad
    ///   shapes,
    /// - [`LinalgError::DimensionMismatch`] if `k == 0` or `k > m > n`
    ///   constraints are violated,
    /// - [`LinalgError::NoConvergence`] from the inner tridiagonal solve.
    pub fn lanczos(a: &Matrix, k: usize, m: usize) -> Result<Self, LinalgError> {
        if !a.is_square() {
            return Err(LinalgError::NotSquare {
                dims: (a.rows(), a.cols()),
            });
        }
        let n = a.rows();
        if n == 0 {
            return Err(LinalgError::Empty);
        }
        let m = m.min(n);
        if k == 0 || k > m {
            return Err(LinalgError::DimensionMismatch {
                op: "lanczos",
                left: (k, 1),
                right: (m, 1),
            });
        }
        // Krylov basis, row `i` = Lanczos vector q_i (row-major friendly).
        let mut q = Matrix::zeros(m, n);
        let mut alpha = vec![0.0; m];
        let mut beta = vec![0.0; m]; // beta[i] couples q_{i} and q_{i+1}
        // Deterministic pseudo-random start vector (no RNG dependency).
        {
            let q0 = q.row_mut(0);
            let mut state = 0x853c49e6748fea9bu64;
            for v in q0.iter_mut() {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                *v = ((state >> 11) as f64 / (1u64 << 53) as f64) - 0.5;
            }
            let norm = vecops::norm(q0);
            vecops::scale(q0, 1.0 / norm);
        }
        let mut w = vec![0.0; n];
        let mut steps = m;
        for i in 0..m {
            // w = A q_i
            {
                let qi = q.row(i);
                for (row, wv) in w.iter_mut().enumerate() {
                    *wv = vecops::dot(a.row(row), qi);
                }
            }
            alpha[i] = vecops::dot(&w, q.row(i));
            // w -= alpha_i q_i + beta_{i-1} q_{i-1}
            {
                let qi = q.row(i).to_vec();
                vecops::axpy(-alpha[i], &qi, &mut w);
            }
            if i > 0 {
                let qprev = q.row(i - 1).to_vec();
                vecops::axpy(-beta[i - 1], &qprev, &mut w);
            }
            // Full reorthogonalisation (twice is enough in practice).
            for _ in 0..2 {
                for j in 0..=i {
                    let proj = vecops::dot(&w, q.row(j));
                    let qj = q.row(j).to_vec();
                    vecops::axpy(-proj, &qj, &mut w);
                }
            }
            let b = vecops::norm(&w);
            if i + 1 < m {
                if b < 1e-13 {
                    // Invariant subspace found early; truncate the basis.
                    steps = i + 1;
                    break;
                }
                beta[i] = b;
                let qnext = q.row_mut(i + 1);
                for (dst, src) in qnext.iter_mut().zip(w.iter()) {
                    *dst = src / b;
                }
            }
        }

        // Solve the small tridiagonal problem T = tri(alpha, beta).
        let mut t = Matrix::zeros(steps, steps);
        for i in 0..steps {
            t[(i, i)] = alpha[i];
            if i + 1 < steps {
                t[(i, i + 1)] = beta[i];
                t[(i + 1, i)] = beta[i];
            }
        }
        let eig = SymmetricEigen::new(&t)?;
        let k = k.min(steps);
        // Ritz vectors: v_j = Qᵀ s_j (rows of q are the basis).
        let mut vectors = Matrix::zeros(n, k);
        for j in 0..k {
            let s = eig.eigenvector(j);
            for (i, &si) in s.iter().enumerate() {
                let qi = q.row(i);
                for (row, &qv) in qi.iter().enumerate() {
                    vectors[(row, j)] += si * qv;
                }
            }
            // Normalise against accumulated rounding.
            let col: Vec<f64> = (0..n).map(|r| vectors[(r, j)]).collect();
            let norm = vecops::norm(&col);
            for r in 0..n {
                vectors[(r, j)] /= norm;
            }
        }
        Ok(PartialEigen {
            values: eig.eigenvalues()[..k].to_vec(),
            vectors,
        })
    }

    /// The leading eigenvalues, descending.
    pub fn eigenvalues(&self) -> &[f64] {
        &self.values
    }

    /// Ritz vectors; column `j` pairs with `eigenvalues()[j]`.
    pub fn eigenvectors(&self) -> &Matrix {
        &self.vectors
    }

    /// Copy of the `j`-th eigenvector.
    ///
    /// # Panics
    ///
    /// Panics if `j` is out of range.
    pub fn eigenvector(&self, j: usize) -> Vec<f64> {
        self.vectors.col(j)
    }

    /// Number of converged pairs returned.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether no pairs were returned (cannot happen via
    /// [`lanczos`](PartialEigen::lanczos), which requires `k >= 1`).
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn random_spd(n: usize, seed: u64, decay: f64) -> Matrix {
        // SPD with controlled spectral decay: A = V diag(d) Vᵀ for a
        // random orthogonal-ish V via QR-free symmetrisation. Simpler:
        // start diagonal with decay, apply a few random Jacobi rotations.
        let mut a = Matrix::zeros(n, n);
        for i in 0..n {
            a[(i, i)] = (-decay * i as f64).exp();
        }
        let mut state = seed;
        let mut rnd = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 11) as f64 / (1u64 << 53) as f64) - 0.5
        };
        for _ in 0..4 * n {
            let p = (rnd().abs() * n as f64) as usize % n;
            let q = (rnd().abs() * n as f64) as usize % n;
            if p == q {
                continue;
            }
            let theta = rnd();
            let (c, s) = (theta.cos(), theta.sin());
            // A <- G A Gᵀ with Givens rotation in (p, q).
            for j in 0..n {
                let (apj, aqj) = (a[(p, j)], a[(q, j)]);
                a[(p, j)] = c * apj - s * aqj;
                a[(q, j)] = s * apj + c * aqj;
            }
            for i in 0..n {
                let (aip, aiq) = (a[(i, p)], a[(i, q)]);
                a[(i, p)] = c * aip - s * aiq;
                a[(i, q)] = s * aip + c * aiq;
            }
        }
        // Force exact symmetry against rounding.
        for i in 0..n {
            for j in 0..i {
                let v = 0.5 * (a[(i, j)] + a[(j, i)]);
                a[(i, j)] = v;
                a[(j, i)] = v;
            }
        }
        a
    }

    #[test]
    fn matches_full_solver_on_leading_pairs() {
        let a = random_spd(60, 42, 0.15);
        let full = SymmetricEigen::new(&a).unwrap();
        let partial = PartialEigen::lanczos(&a, 8, 30).unwrap();
        assert_eq!(partial.len(), 8);
        assert!(!partial.is_empty());
        for j in 0..8 {
            let rel = (partial.eigenvalues()[j] - full.eigenvalues()[j]).abs()
                / full.eigenvalues()[j].abs().max(1e-300);
            assert!(rel < 1e-8, "eigenvalue {j}: rel error {rel}");
        }
    }

    #[test]
    fn ritz_vectors_satisfy_eigen_equation() {
        let a = random_spd(40, 7, 0.3);
        let partial = PartialEigen::lanczos(&a, 5, 25).unwrap();
        for j in 0..5 {
            let v = partial.eigenvector(j);
            let av = a.mul_vec(&v).unwrap();
            let lam = partial.eigenvalues()[j];
            let residual: f64 = av
                .iter()
                .zip(&v)
                .map(|(x, y)| (x - lam * y) * (x - lam * y))
                .sum::<f64>()
                .sqrt();
            assert!(residual < 1e-7, "pair {j}: residual {residual}");
        }
    }

    #[test]
    fn ritz_vectors_are_orthonormal() {
        let a = random_spd(50, 11, 0.2);
        let partial = PartialEigen::lanczos(&a, 6, 24).unwrap();
        for i in 0..6 {
            let vi = partial.eigenvector(i);
            assert!((vecops::norm(&vi) - 1.0).abs() < 1e-10);
            for j in (i + 1)..6 {
                let vj = partial.eigenvector(j);
                assert!(vecops::dot(&vi, &vj).abs() < 1e-8, "({i},{j})");
            }
        }
    }

    #[test]
    fn early_invariant_subspace_termination() {
        // Rank-2 matrix: Lanczos finds the invariant subspace in ~3 steps.
        let n = 20;
        let mut a = Matrix::zeros(n, n);
        a[(0, 0)] = 3.0;
        a[(1, 1)] = 1.0;
        let partial = PartialEigen::lanczos(&a, 2, 15).unwrap();
        assert!((partial.eigenvalues()[0] - 3.0).abs() < 1e-10);
        assert!((partial.eigenvalues()[1] - 1.0).abs() < 1e-10);
    }

    #[test]
    fn input_validation() {
        let a = Matrix::identity(5);
        assert!(PartialEigen::lanczos(&a, 0, 3).is_err());
        assert!(PartialEigen::lanczos(&a, 4, 3).is_err());
        assert!(PartialEigen::lanczos(&Matrix::zeros(2, 3), 1, 2).is_err());
        assert!(PartialEigen::lanczos(&Matrix::zeros(0, 0), 1, 1).is_err());
        // k and m clamp to n (distinct spectrum, so the full Krylov
        // space is reachable — a degenerate spectrum like the identity
        // legitimately terminates after one step).
        let mut d = Matrix::zeros(5, 5);
        for i in 0..5 {
            d[(i, i)] = (i + 1) as f64;
        }
        let ok = PartialEigen::lanczos(&d, 3, 100).unwrap();
        assert_eq!(ok.len(), 3);
        assert!((ok.eigenvalues()[0] - 5.0).abs() < 1e-10);
        assert!((ok.eigenvalues()[2] - 3.0).abs() < 1e-10);
    }

    #[test]
    fn degenerate_spectrum_terminates_early_with_fewer_pairs() {
        // Identity: the Krylov space from any start vector is 1-D, so a
        // single (correct) pair comes back even when more were asked.
        let a = Matrix::identity(5);
        let partial = PartialEigen::lanczos(&a, 3, 5).unwrap();
        assert_eq!(partial.len(), 1);
        assert!((partial.eigenvalues()[0] - 1.0).abs() < 1e-12);
    }
}
