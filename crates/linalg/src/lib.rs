//! # klest-linalg
//!
//! Dense numerical linear algebra for the `klest` workspace, written from
//! scratch (the paper's reference implementation leaned on Matlab/LAPACK):
//!
//! - [`Matrix`]: dense row-major `f64` matrix with (optionally threaded)
//!   multiplication,
//! - [`Cholesky`]: the `CholeskyUpperFactor` of the paper's Algorithm 1,
//! - [`SymmetricEigen`]: Householder tridiagonalisation + implicit-shift QL,
//!   the solver behind the Galerkin eigenproblem (paper eq. 15),
//! - [`DiagonalGep`]: the generalized eigenproblem `K d = λ Φ d` with
//!   diagonal `Φ` (paper eq. 13), reduced to a symmetric standard problem,
//! - [`LinearOperator`] / [`ScaledOperator`]: the operator-apply seam for
//!   matrix-free eigensolves ([`PartialEigen::lanczos_op`]) that never
//!   materialize the matrix.
//!
//! ```
//! use klest_linalg::{Matrix, SymmetricEigen};
//!
//! # fn main() -> Result<(), klest_linalg::LinalgError> {
//! let a = Matrix::from_rows(&[
//!     [2.0, 1.0].as_slice(),
//!     [1.0, 2.0].as_slice(),
//! ])?;
//! let eig = SymmetricEigen::new(&a)?;
//! assert!((eig.eigenvalues()[0] - 3.0).abs() < 1e-12);
//! assert!((eig.eigenvalues()[1] - 1.0).abs() < 1e-12);
//! # Ok(())
//! # }
//! ```

#![deny(missing_docs)]

mod cholesky;
mod eigen;
mod error;
mod gep;
mod jacobi;
mod lanczos;
mod matrix;
mod operator;
pub mod vecops;

pub use cholesky::Cholesky;
pub use eigen::SymmetricEigen;
pub use error::LinalgError;
pub use gep::DiagonalGep;
pub use lanczos::{LanczosState, PartialEigen};
pub use matrix::Matrix;
pub use operator::{LinearOperator, ScaledOperator};
