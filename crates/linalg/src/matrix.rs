//! Dense row-major matrix.

use crate::LinalgError;
use std::fmt;
use std::ops::{Index, IndexMut};

/// Dense `f64` matrix in row-major storage.
///
/// Sized for the workloads in this workspace: Galerkin matrices up to a few
/// thousand rows and the `N x N_g` Monte Carlo sample blocks of the SSTA.
/// Multiplication can fan out across threads ([`Matrix::mul_threaded`]).
///
/// ```
/// use klest_linalg::Matrix;
/// # fn main() -> Result<(), klest_linalg::LinalgError> {
/// let a = Matrix::from_fn(2, 2, |i, j| (i + j) as f64);
/// let b = Matrix::identity(2);
/// let c = a.mul(&b)?;
/// assert_eq!(c, a);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// An `rows x cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// The `n x n` identity.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Builds a matrix by evaluating `f(row, col)` at every entry.
    pub fn from_fn<F: FnMut(usize, usize) -> f64>(rows: usize, cols: usize, mut f: F) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for i in 0..rows {
            for j in 0..cols {
                data.push(f(i, j));
            }
        }
        Matrix { rows, cols, data }
    }

    /// Builds a matrix from row slices.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::Empty`] for zero rows and
    /// [`LinalgError::DimensionMismatch`] for ragged rows.
    pub fn from_rows(rows: &[&[f64]]) -> Result<Self, LinalgError> {
        let r = rows.len();
        if r == 0 {
            return Err(LinalgError::Empty);
        }
        let c = rows[0].len();
        if c == 0 {
            return Err(LinalgError::Empty);
        }
        let mut data = Vec::with_capacity(r * c);
        for (i, row) in rows.iter().enumerate() {
            if row.len() != c {
                return Err(LinalgError::DimensionMismatch {
                    op: "from_rows",
                    left: (i, row.len()),
                    right: (0, c),
                });
            }
            data.extend_from_slice(row);
        }
        Ok(Matrix { rows: r, cols: c, data })
    }

    /// Takes ownership of a row-major buffer.
    ///
    /// # Errors
    ///
    /// [`LinalgError::DimensionMismatch`] if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Result<Self, LinalgError> {
        if data.len() != rows * cols {
            return Err(LinalgError::DimensionMismatch {
                op: "from_vec",
                left: (rows, cols),
                right: (data.len(), 1),
            });
        }
        Ok(Matrix { rows, cols, data })
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Is the matrix square?
    #[inline]
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Borrow row `i` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `i >= rows`.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Borrow row `i` mutably.
    ///
    /// # Panics
    ///
    /// Panics if `i >= rows`.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Copy of column `j`.
    ///
    /// # Panics
    ///
    /// Panics if `j >= cols`.
    pub fn col(&self, j: usize) -> Vec<f64> {
        (0..self.rows).map(|i| self[(i, j)]).collect()
    }

    /// Borrow the contiguous block of `count` rows starting at row
    /// `start` (row-major, so a row block is one flat slice). Parallel
    /// producers use this to hand out disjoint regions.
    ///
    /// # Panics
    ///
    /// Panics if `start + count > rows`.
    #[inline]
    pub fn row_block(&self, start: usize, count: usize) -> &[f64] {
        assert!(
            start + count <= self.rows,
            "row block {start}..{} exceeds {} rows",
            start + count,
            self.rows
        );
        &self.data[start * self.cols..(start + count) * self.cols]
    }

    /// Borrow the contiguous block of `count` rows starting at row
    /// `start` mutably.
    ///
    /// # Panics
    ///
    /// Panics if `start + count > rows`.
    #[inline]
    pub fn row_block_mut(&mut self, start: usize, count: usize) -> &mut [f64] {
        assert!(
            start + count <= self.rows,
            "row block {start}..{} exceeds {} rows",
            start + count,
            self.rows
        );
        &mut self.data[start * self.cols..(start + count) * self.cols]
    }

    /// Splits the whole matrix into disjoint mutable row blocks at the
    /// given row boundaries (`bounds[i]..bounds[i+1]` is block `i`;
    /// implicit leading 0 and trailing `rows`). The returned slices
    /// partition the buffer, so independent threads may fill them
    /// concurrently through a scoped spawn.
    ///
    /// # Panics
    ///
    /// Panics if `bounds` is not non-decreasing or exceeds `rows`.
    pub fn split_row_blocks_mut(&mut self, bounds: &[usize]) -> Vec<&mut [f64]> {
        let cols = self.cols;
        let mut blocks = Vec::with_capacity(bounds.len() + 1);
        let mut rest: &mut [f64] = &mut self.data;
        let mut prev = 0usize;
        for &b in bounds {
            assert!(b >= prev && b <= self.rows, "bad row bound {b}");
            let (head, tail) = rest.split_at_mut((b - prev) * cols);
            blocks.push(head);
            rest = tail;
            prev = b;
        }
        blocks.push(rest);
        blocks
    }

    /// The underlying row-major buffer.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Consumes the matrix, returning the row-major buffer.
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// Transpose.
    pub fn transpose(&self) -> Matrix {
        let mut t = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            let row = self.row(i);
            for (j, &v) in row.iter().enumerate() {
                t[(j, i)] = v;
            }
        }
        t
    }

    /// Matrix product `self * rhs` (single-threaded, cache-friendly i-k-j
    /// loop ordering).
    ///
    /// # Errors
    ///
    /// [`LinalgError::DimensionMismatch`] if inner dimensions differ.
    pub fn mul(&self, rhs: &Matrix) -> Result<Matrix, LinalgError> {
        if self.cols != rhs.rows {
            return Err(LinalgError::DimensionMismatch {
                op: "mul",
                left: (self.rows, self.cols),
                right: (rhs.rows, rhs.cols),
            });
        }
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        for i in 0..self.rows {
            let a_row = self.row(i);
            let out_row = out.row_mut(i);
            for (k, &aik) in a_row.iter().enumerate() {
                if aik == 0.0 {
                    continue;
                }
                let b_row = rhs.row(k);
                for (o, &b) in out_row.iter_mut().zip(b_row.iter()) {
                    *o += aik * b;
                }
            }
        }
        Ok(out)
    }

    /// Matrix product using up to `threads` worker threads, splitting the
    /// left operand by row blocks. Falls back to [`Matrix::mul`] for small
    /// problems or `threads <= 1`.
    ///
    /// # Errors
    ///
    /// [`LinalgError::DimensionMismatch`] if inner dimensions differ.
    pub fn mul_threaded(&self, rhs: &Matrix, threads: usize) -> Result<Matrix, LinalgError> {
        if self.cols != rhs.rows {
            return Err(LinalgError::DimensionMismatch {
                op: "mul",
                left: (self.rows, self.cols),
                right: (rhs.rows, rhs.cols),
            });
        }
        let work = self.rows.saturating_mul(self.cols).saturating_mul(rhs.cols);
        if threads <= 1 || work < 1 << 20 {
            return self.mul(rhs);
        }
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        let chunk = self.rows.div_ceil(threads);
        let cols = self.cols;
        std::thread::scope(|scope| {
            for (block, out_block) in self
                .data
                .chunks(chunk * cols)
                .zip(out.data.chunks_mut(chunk * rhs.cols))
            {
                scope.spawn(move || {
                    for (a_row, out_row) in
                        block.chunks(cols).zip(out_block.chunks_mut(rhs.cols))
                    {
                        for (k, &aik) in a_row.iter().enumerate() {
                            if aik == 0.0 {
                                continue;
                            }
                            let b_row = rhs.row(k);
                            for (o, &b) in out_row.iter_mut().zip(b_row.iter()) {
                                *o += aik * b;
                            }
                        }
                    }
                });
            }
        });
        Ok(out)
    }

    /// Matrix-vector product `self * x`.
    ///
    /// # Errors
    ///
    /// [`LinalgError::DimensionMismatch`] if `x.len() != cols`.
    pub fn mul_vec(&self, x: &[f64]) -> Result<Vec<f64>, LinalgError> {
        if x.len() != self.cols {
            return Err(LinalgError::DimensionMismatch {
                op: "mul_vec",
                left: (self.rows, self.cols),
                right: (x.len(), 1),
            });
        }
        Ok((0..self.rows)
            .map(|i| crate::vecops::dot(self.row(i), x))
            .collect())
    }

    /// Scales every entry in place.
    pub fn scale(&mut self, s: f64) {
        for v in &mut self.data {
            *v *= s;
        }
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|v| v * v).sum::<f64>().sqrt()
    }

    /// Largest absolute entry (max norm); 0 for an empty matrix.
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0f64, |m, v| m.max(v.abs()))
    }

    /// Maximum absolute asymmetry `|A_ij - A_ji|`; 0 for symmetric.
    ///
    /// # Errors
    ///
    /// [`LinalgError::NotSquare`] for rectangular matrices.
    pub fn asymmetry(&self) -> Result<f64, LinalgError> {
        if !self.is_square() {
            return Err(LinalgError::NotSquare {
                dims: (self.rows, self.cols),
            });
        }
        let mut worst = 0.0f64;
        for i in 0..self.rows {
            for j in (i + 1)..self.cols {
                worst = worst.max((self[(i, j)] - self[(j, i)]).abs());
            }
        }
        Ok(worst)
    }

    /// Entrywise difference `self - rhs`.
    ///
    /// # Errors
    ///
    /// [`LinalgError::DimensionMismatch`] if shapes differ.
    pub fn sub(&self, rhs: &Matrix) -> Result<Matrix, LinalgError> {
        if self.rows != rhs.rows || self.cols != rhs.cols {
            return Err(LinalgError::DimensionMismatch {
                op: "sub",
                left: (self.rows, self.cols),
                right: (rhs.rows, rhs.cols),
            });
        }
        let data = self
            .data
            .iter()
            .zip(rhs.data.iter())
            .map(|(a, b)| a - b)
            .collect();
        Ok(Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        })
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;
    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        debug_assert!(i < self.rows && j < self.cols);
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        debug_assert!(i < self.rows && j < self.cols);
        &mut self.data[i * self.cols + j]
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        let show = self.rows.min(8);
        for i in 0..show {
            let cols = self.cols.min(8);
            let row: Vec<String> = self.row(i)[..cols].iter().map(|v| format!("{v:>10.4}")).collect();
            let ellipsis = if self.cols > 8 { " ..." } else { "" };
            writeln!(f, "  [{}{}]", row.join(", "), ellipsis)?;
        }
        if self.rows > show {
            writeln!(f, "  ...")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn row_blocks_partition_the_buffer() {
        let mut m = Matrix::from_fn(6, 3, |i, j| (i * 10 + j) as f64);
        assert_eq!(m.row_block(0, 2), &[0.0, 1.0, 2.0, 10.0, 11.0, 12.0]);
        assert_eq!(m.row_block(5, 1), m.row(5));
        m.row_block_mut(2, 1)[0] = -1.0;
        assert_eq!(m[(2, 0)], -1.0);
        // Disjoint mutable blocks cover every row exactly once.
        let rows = m.rows();
        let cols = m.cols();
        let blocks = m.split_row_blocks_mut(&[2, 4]);
        assert_eq!(blocks.len(), 3);
        assert_eq!(blocks[0].len(), 2 * cols);
        assert_eq!(blocks[1].len(), 2 * cols);
        assert_eq!(blocks[2].len(), 2 * cols);
        let total: usize = blocks.iter().map(|b| b.len()).sum();
        assert_eq!(total, rows * cols);
        blocks.into_iter().for_each(|b| b.fill(0.0));
        assert_eq!(m.max_abs(), 0.0);
    }

    #[test]
    #[should_panic]
    fn row_block_out_of_range_panics() {
        let m = Matrix::zeros(3, 3);
        let _ = m.row_block(2, 2);
    }

    #[test]
    fn construction() {
        let z = Matrix::zeros(2, 3);
        assert_eq!(z.rows(), 2);
        assert_eq!(z.cols(), 3);
        assert!(!z.is_square());
        assert!(z.as_slice().iter().all(|&v| v == 0.0));

        let i = Matrix::identity(3);
        assert!(i.is_square());
        assert_eq!(i[(0, 0)], 1.0);
        assert_eq!(i[(0, 1)], 0.0);

        let f = Matrix::from_fn(2, 2, |i, j| (10 * i + j) as f64);
        assert_eq!(f[(1, 0)], 10.0);
        assert_eq!(f[(1, 1)], 11.0);
    }

    #[test]
    fn from_rows_errors() {
        assert_eq!(Matrix::from_rows(&[]).unwrap_err(), LinalgError::Empty);
        let ragged = Matrix::from_rows(&[[1.0, 2.0].as_slice(), [3.0].as_slice()]);
        assert!(matches!(
            ragged.unwrap_err(),
            LinalgError::DimensionMismatch { .. }
        ));
    }

    #[test]
    fn from_vec_roundtrip() {
        let m = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        assert_eq!(m[(0, 1)], 2.0);
        assert_eq!(m.clone().into_vec(), vec![1.0, 2.0, 3.0, 4.0]);
        assert!(Matrix::from_vec(2, 2, vec![1.0]).is_err());
    }

    #[test]
    fn transpose_involution() {
        let m = Matrix::from_fn(3, 2, |i, j| (i * 2 + j) as f64);
        let t = m.transpose();
        assert_eq!(t.rows(), 2);
        assert_eq!(t.cols(), 3);
        assert_eq!(t[(0, 2)], m[(2, 0)]);
        assert_eq!(t.transpose(), m);
    }

    #[test]
    fn mul_identity_and_known() {
        let a = Matrix::from_rows(&[[1.0, 2.0].as_slice(), [3.0, 4.0].as_slice()]).unwrap();
        let i = Matrix::identity(2);
        assert_eq!(a.mul(&i).unwrap(), a);
        assert_eq!(i.mul(&a).unwrap(), a);
        let b = Matrix::from_rows(&[[5.0, 6.0].as_slice(), [7.0, 8.0].as_slice()]).unwrap();
        let c = a.mul(&b).unwrap();
        assert_eq!(c[(0, 0)], 19.0);
        assert_eq!(c[(0, 1)], 22.0);
        assert_eq!(c[(1, 0)], 43.0);
        assert_eq!(c[(1, 1)], 50.0);
    }

    #[test]
    fn mul_dimension_mismatch() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        assert!(matches!(
            a.mul(&b).unwrap_err(),
            LinalgError::DimensionMismatch { op: "mul", .. }
        ));
        assert!(a.mul_vec(&[1.0, 2.0]).is_err());
    }

    #[test]
    fn mul_threaded_matches_serial() {
        let a = Matrix::from_fn(37, 53, |i, j| ((i * 7 + j * 13) % 11) as f64 - 5.0);
        let b = Matrix::from_fn(53, 29, |i, j| ((i * 3 + j * 17) % 7) as f64 - 3.0);
        let serial = a.mul(&b).unwrap();
        for threads in [1, 2, 4, 8] {
            let par = a.mul_threaded(&b, threads).unwrap();
            let diff = serial.sub(&par).unwrap().max_abs();
            assert_eq!(diff, 0.0, "threads = {threads}");
        }
    }

    #[test]
    fn mul_threaded_large_forced() {
        // Big enough to cross the parallel threshold.
        let a = Matrix::from_fn(128, 128, |i, j| ((i + j) % 5) as f64);
        let b = Matrix::from_fn(128, 128, |i, j| ((i * j) % 3) as f64);
        let serial = a.mul(&b).unwrap();
        let par = a.mul_threaded(&b, 4).unwrap();
        assert_eq!(serial.sub(&par).unwrap().max_abs(), 0.0);
    }

    #[test]
    fn mul_vec_known() {
        let a = Matrix::from_rows(&[[1.0, 2.0].as_slice(), [3.0, 4.0].as_slice()]).unwrap();
        let y = a.mul_vec(&[1.0, 1.0]).unwrap();
        assert_eq!(y, vec![3.0, 7.0]);
    }

    #[test]
    fn norms_and_asymmetry() {
        let a = Matrix::from_rows(&[[3.0, 0.0].as_slice(), [0.0, 4.0].as_slice()]).unwrap();
        assert_eq!(a.frobenius_norm(), 5.0);
        assert_eq!(a.max_abs(), 4.0);
        assert_eq!(a.asymmetry().unwrap(), 0.0);
        let b = Matrix::from_rows(&[[0.0, 1.0].as_slice(), [2.0, 0.0].as_slice()]).unwrap();
        assert_eq!(b.asymmetry().unwrap(), 1.0);
        assert!(Matrix::zeros(2, 3).asymmetry().is_err());
    }

    #[test]
    fn rows_and_cols_access() {
        let m = Matrix::from_fn(3, 3, |i, j| (i * 3 + j) as f64);
        assert_eq!(m.row(1), &[3.0, 4.0, 5.0]);
        assert_eq!(m.col(2), vec![2.0, 5.0, 8.0]);
        let mut m2 = m.clone();
        m2.row_mut(0)[0] = 42.0;
        assert_eq!(m2[(0, 0)], 42.0);
        let mut m3 = m;
        m3.scale(2.0);
        assert_eq!(m3[(2, 2)], 16.0);
    }

    #[test]
    fn debug_format_is_nonempty() {
        let m = Matrix::identity(2);
        let s = format!("{m:?}");
        assert!(s.contains("Matrix 2x2"));
        let big = Matrix::zeros(20, 20);
        assert!(format!("{big:?}").contains("..."));
    }
}
