//! Operator-apply abstraction for matrix-free iterative eigensolves.
//!
//! The Lanczos engine only ever touches its matrix through matrix–vector
//! products, so a trait with a single `apply` is all that is needed to
//! run it over operators whose entries are generated on the fly. That is
//! what unlocks large meshes: the dense Galerkin matrix of a
//! 10⁵-triangle mesh is 80 GB, while its *action* on a vector needs O(n)
//! memory per application.

use crate::{vecops, LinalgError, Matrix};

/// A symmetric linear operator defined by its action `y = A x`.
///
/// Implementations must be **deterministic**: the same `x` must produce
/// the same `y` bitwise on every call (and, for sharded operators, for
/// every worker count) — the iterative solvers rely on replayable
/// arithmetic for seeded reproducibility and cache keying.
pub trait LinearOperator {
    /// Operator dimension `n` (square: maps `R^n → R^n`).
    fn dim(&self) -> usize;

    /// Computes `y = A x`; `x` and `y` both have length
    /// [`dim`](Self::dim).
    ///
    /// # Errors
    ///
    /// Implementation-defined: an on-the-fly operator may report
    /// cooperative cancellation ([`LinalgError::Cancelled`]) or a
    /// poisoned entry ([`LinalgError::NonFinite`]). The trivial dense
    /// adapter only reports shape mismatches.
    fn apply(&self, x: &[f64], y: &mut [f64]) -> Result<(), LinalgError>;
}

impl<T: LinearOperator + ?Sized> LinearOperator for &T {
    fn dim(&self) -> usize {
        (**self).dim()
    }

    fn apply(&self, x: &[f64], y: &mut [f64]) -> Result<(), LinalgError> {
        (**self).apply(x, y)
    }
}

/// A dense matrix is the trivial operator: `apply` is the row-major
/// matvec `y[i] = dot(row_i, x)` — the same floating-point expression,
/// in the same order, as the dense Lanczos inner loop, so dense and
/// operator-backed solves are interchangeable bitwise.
impl LinearOperator for Matrix {
    fn dim(&self) -> usize {
        self.rows()
    }

    fn apply(&self, x: &[f64], y: &mut [f64]) -> Result<(), LinalgError> {
        if !self.is_square() {
            return Err(LinalgError::NotSquare {
                dims: (self.rows(), self.cols()),
            });
        }
        if x.len() != self.cols() || y.len() != self.rows() {
            return Err(LinalgError::DimensionMismatch {
                op: "operator apply",
                left: (self.rows(), self.cols()),
                right: (x.len(), y.len()),
            });
        }
        for (row, out) in y.iter_mut().enumerate() {
            *out = vecops::dot(self.row(row), x);
        }
        Ok(())
    }
}

/// The diagonal similarity transform `D A D` of an inner operator, with
/// `D = diag(scale)` — the matrix-free form of the symmetric reduction
/// `Φ^{-1/2} K Φ^{-1/2}` the generalized Galerkin eigenproblem uses
/// (paper eq. 13 via [`crate::DiagonalGep`]).
///
/// `apply` computes `y = D (A (D x))`: one O(n) pre-scale, one inner
/// apply, one O(n) post-scale — the inner operator is never modified,
/// so its bitwise-determinism guarantees carry over.
pub struct ScaledOperator<Op> {
    inner: Op,
    scale: Vec<f64>,
}

impl<Op: LinearOperator> ScaledOperator<Op> {
    /// Wraps `inner` with the similarity diagonal `scale`.
    ///
    /// # Errors
    ///
    /// - [`LinalgError::DimensionMismatch`] if `scale.len() != inner.dim()`,
    /// - [`LinalgError::NonFinite`] if a scale entry is NaN or infinite
    ///   (reported with `col = 0`).
    pub fn new(inner: Op, scale: Vec<f64>) -> Result<Self, LinalgError> {
        if scale.len() != inner.dim() {
            return Err(LinalgError::DimensionMismatch {
                op: "scaled operator",
                left: (inner.dim(), inner.dim()),
                right: (scale.len(), 1),
            });
        }
        if let Some(row) = scale.iter().position(|v| !v.is_finite()) {
            return Err(LinalgError::NonFinite { row, col: 0 });
        }
        Ok(ScaledOperator { inner, scale })
    }

    /// The wrapped operator.
    pub fn inner(&self) -> &Op {
        &self.inner
    }

    /// The similarity diagonal.
    pub fn scale(&self) -> &[f64] {
        &self.scale
    }
}

impl<Op: LinearOperator> LinearOperator for ScaledOperator<Op> {
    fn dim(&self) -> usize {
        self.inner.dim()
    }

    fn apply(&self, x: &[f64], y: &mut [f64]) -> Result<(), LinalgError> {
        if x.len() != self.scale.len() || y.len() != self.scale.len() {
            return Err(LinalgError::DimensionMismatch {
                op: "scaled operator apply",
                left: (self.scale.len(), self.scale.len()),
                right: (x.len(), y.len()),
            });
        }
        let scaled: Vec<f64> = x.iter().zip(&self.scale).map(|(v, s)| v * s).collect();
        self.inner.apply(&scaled, y)?;
        for (out, s) in y.iter_mut().zip(&self.scale) {
            *out *= s;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dense_adapter_matches_mul_vec() {
        let a = Matrix::from_rows(&[
            [2.0, 1.0, 0.5].as_slice(),
            [1.0, 3.0, -1.0].as_slice(),
            [0.5, -1.0, 4.0].as_slice(),
        ])
        .unwrap();
        let x = vec![1.0, -2.0, 0.25];
        let mut y = vec![0.0; 3];
        a.apply(&x, &mut y).unwrap();
        let reference = a.mul_vec(&x).unwrap();
        assert_eq!(y, reference);
    }

    #[test]
    fn dense_adapter_validates_shapes() {
        let a = Matrix::zeros(2, 3);
        let mut y = vec![0.0; 2];
        assert!(matches!(
            a.apply(&[1.0, 2.0, 3.0], &mut y),
            Err(LinalgError::NotSquare { .. })
        ));
        let a = Matrix::identity(3);
        assert!(matches!(
            a.apply(&[1.0, 2.0], &mut y),
            Err(LinalgError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn scaled_operator_is_the_similarity_transform() {
        let a = Matrix::from_rows(&[[2.0, 1.0].as_slice(), [1.0, 3.0].as_slice()]).unwrap();
        let s = vec![0.5, 2.0];
        let op = ScaledOperator::new(&a, s.clone()).unwrap();
        assert_eq!(op.dim(), 2);
        let x = vec![1.0, 1.0];
        let mut y = vec![0.0; 2];
        op.apply(&x, &mut y).unwrap();
        // y_i = s_i * Σ_j a_ij s_j x_j
        for i in 0..2 {
            let expected = s[i] * (0..2).map(|j| a[(i, j)] * s[j] * x[j]).sum::<f64>();
            assert!((y[i] - expected).abs() < 1e-15);
        }
    }

    #[test]
    fn scaled_operator_validates_inputs() {
        let a = Matrix::identity(3);
        assert!(matches!(
            ScaledOperator::new(&a, vec![1.0; 2]),
            Err(LinalgError::DimensionMismatch { .. })
        ));
        assert!(matches!(
            ScaledOperator::new(&a, vec![1.0, f64::NAN, 1.0]),
            Err(LinalgError::NonFinite { row: 1, .. })
        ));
    }
}
