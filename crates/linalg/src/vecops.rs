//! Small vector kernels shared across the workspace.
//!
//! These operate on plain `&[f64]` slices so callers are not forced into a
//! vector newtype.

/// Dot product of two equal-length slices.
///
/// # Panics
///
/// Panics in debug builds if the lengths differ; in release builds the
/// shorter length wins (standard `zip` semantics).
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b.iter()).map(|(x, y)| x * y).sum()
}

/// Euclidean norm.
#[inline]
pub fn norm(a: &[f64]) -> f64 {
    dot(a, a).sqrt()
}

/// `y += alpha * x`.
///
/// # Panics
///
/// Panics in debug builds if the lengths differ.
#[inline]
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    debug_assert_eq!(x.len(), y.len());
    for (yi, xi) in y.iter_mut().zip(x.iter()) {
        *yi += alpha * xi;
    }
}

/// Scales a slice in place.
#[inline]
pub fn scale(a: &mut [f64], s: f64) {
    for v in a {
        *v *= s;
    }
}

/// Largest absolute difference between two equal-length slices.
///
/// # Panics
///
/// Panics in debug builds if the lengths differ.
pub fn max_abs_diff(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter()
        .zip(b.iter())
        .fold(0.0f64, |m, (x, y)| m.max((x - y).abs()))
}

/// Arithmetic mean; 0 for an empty slice.
pub fn mean(a: &[f64]) -> f64 {
    if a.is_empty() {
        0.0
    } else {
        a.iter().sum::<f64>() / a.len() as f64
    }
}

/// Unbiased sample variance; 0 for fewer than two samples.
pub fn variance(a: &[f64]) -> f64 {
    if a.len() < 2 {
        return 0.0;
    }
    let m = mean(a);
    a.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (a.len() - 1) as f64
}

/// Sample standard deviation (square root of [`variance`]).
pub fn std_dev(a: &[f64]) -> f64 {
    variance(a).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_and_norm() {
        assert_eq!(dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
        assert_eq!(norm(&[3.0, 4.0]), 5.0);
        assert_eq!(dot(&[], &[]), 0.0);
    }

    #[test]
    fn axpy_and_scale() {
        let mut y = vec![1.0, 1.0];
        axpy(2.0, &[3.0, 4.0], &mut y);
        assert_eq!(y, vec![7.0, 9.0]);
        scale(&mut y, 0.5);
        assert_eq!(y, vec![3.5, 4.5]);
    }

    #[test]
    fn diffs() {
        assert_eq!(max_abs_diff(&[1.0, 2.0], &[1.5, 1.0]), 1.0);
        assert_eq!(max_abs_diff(&[], &[]), 0.0);
    }

    #[test]
    fn stats() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert_eq!(mean(&xs), 5.0);
        assert!((variance(&xs) - 32.0 / 7.0).abs() < 1e-12);
        assert!((std_dev(&xs) - (32.0f64 / 7.0).sqrt()).abs() < 1e-12);
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(variance(&[1.0]), 0.0);
    }
}
