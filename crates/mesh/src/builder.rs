//! Quality mesh generation: Delaunay refinement with minimum-angle and
//! maximum-area constraints (Ruppert-style) over rectangular or simple
//! polygonal die outlines (Theorem 2 assumes any polygonal region).

use crate::delaunay::DelaunayTriangulation;
use crate::{Mesh, MeshError};
use klest_geometry::{Point2, Polygon, Rect, Triangle};
use klest_runtime::CancelToken;

/// Builder for a quality triangulation of a rectangular die.
///
/// Matches the knobs the paper passes to *Triangle* [24]: a minimum
/// interior angle (28° in the paper) and a maximum triangle area (0.1% of
/// the chip area, giving n = 1546 triangles on the unit die).
///
/// ```
/// use klest_geometry::Rect;
/// use klest_mesh::MeshBuilder;
/// # fn main() -> Result<(), klest_mesh::MeshError> {
/// let mesh = MeshBuilder::new(Rect::unit_die())
///     .max_area(0.004)           // 0.1% of the 4.0 die area
///     .min_angle_degrees(28.0)
///     .build()?;
/// assert!(mesh.len() > 1000);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct MeshBuilder {
    domain: Rect,
    /// Polygonal die outline; `domain` is its bounding box when set.
    boundary: Option<Polygon>,
    max_area: Option<f64>,
    min_angle_rad: f64,
    max_points: usize,
}

impl MeshBuilder {
    /// Starts a builder for the given rectangular domain.
    pub fn new(domain: Rect) -> Self {
        MeshBuilder {
            domain,
            boundary: None,
            max_area: None,
            min_angle_rad: 20f64.to_radians(),
            max_points: 100_000,
        }
    }

    /// Starts a builder for a simple polygonal die (Theorem 2 assumes any
    /// polygonal region). The boundary is densely seeded so the Delaunay
    /// edges conform to it; triangles whose centroid falls outside the
    /// outline (hull fill across notches of non-convex dies) are dropped
    /// at the end.
    pub fn polygon(boundary: Polygon) -> Self {
        let bbox = boundary.bbox();
        MeshBuilder {
            domain: Rect::new(bbox.min, bbox.max),
            boundary: Some(boundary),
            max_area: None,
            min_angle_rad: 20f64.to_radians(),
            max_points: 100_000,
        }
    }

    /// Sets the maximum triangle area constraint (absolute units).
    pub fn max_area(mut self, area: f64) -> Self {
        self.max_area = Some(area);
        self
    }

    /// Sets the maximum triangle area as a fraction of the domain area
    /// (the paper's "0.1% of the chip area" is `0.001`).
    pub fn max_area_fraction(mut self, fraction: f64) -> Self {
        let area = match &self.boundary {
            Some(poly) => poly.area(),
            None => self.domain.area(),
        };
        self.max_area = Some(fraction * area);
        self
    }

    /// Is `p` inside the die (polygon outline when present)?
    fn domain_contains(&self, p: Point2) -> bool {
        match &self.boundary {
            Some(poly) => poly.contains(p),
            None => self.domain.contains(p),
        }
    }

    /// Sets the minimum-angle quality constraint in degrees.
    ///
    /// Values up to ~33° are honoured reliably (Ruppert's termination
    /// bound); the paper uses 28°.
    pub fn min_angle_degrees(mut self, degrees: f64) -> Self {
        self.min_angle_rad = degrees.to_radians();
        self
    }

    /// Caps the number of inserted vertices (default 100 000).
    pub fn max_points(mut self, n: usize) -> Self {
        self.max_points = n;
        self
    }

    /// Runs Delaunay refinement.
    ///
    /// # Errors
    ///
    /// - [`MeshError::InvalidConstraint`] for non-positive area / angle or
    ///   an angle above 34° (refinement would not terminate),
    /// - [`MeshError::PointBudgetExhausted`] if the budget is hit first,
    /// - [`MeshError::EmptyMesh`] for degenerate domains.
    pub fn build(&self) -> Result<Mesh, MeshError> {
        self.build_inner(None)
    }

    /// Runs Delaunay refinement under a cancellation token, polling it once
    /// per boundary-seed insertion (Bowyer–Watson) and once per Ruppert
    /// refinement split so a hostile domain cannot keep the mesher busy
    /// past its deadline.
    ///
    /// # Errors
    ///
    /// Everything [`build`](MeshBuilder::build) reports, plus
    /// [`MeshError::Cancelled`] when the token trips; its `completed` field
    /// counts points inserted before cancellation.
    pub fn build_with_token(&self, token: &CancelToken) -> Result<Mesh, MeshError> {
        self.build_inner(Some(token))
    }

    fn build_inner(&self, token: Option<&CancelToken>) -> Result<Mesh, MeshError> {
        let _span = klest_obs::span("mesh/build");
        if let Some(a) = self.max_area {
            if !(a > 0.0 && a.is_finite()) {
                return Err(MeshError::InvalidConstraint {
                    name: "max_area",
                    value: a,
                });
            }
        }
        if !(self.min_angle_rad > 0.0 && self.min_angle_rad < 34f64.to_radians()) {
            return Err(MeshError::InvalidConstraint {
                name: "min_angle_degrees",
                value: self.min_angle_rad.to_degrees(),
            });
        }
        let bbox = self.domain.bbox();
        let mut dt = DelaunayTriangulation::new(bbox.min, bbox.max);
        // Seed the die boundary with points spaced so that boundary edges
        // are already shorter than the target length; this keeps
        // circumcenters of boundary triangles inside the domain most of
        // the time and sidesteps full encroachment bookkeeping.
        let target_len = match self.max_area {
            // Equilateral triangle of area A has side sqrt(4A/sqrt(3)).
            Some(a) => (4.0 * a / 3f64.sqrt()).sqrt(),
            None => bbox.width().max(bbox.height()),
        };
        // One cancellation poll per Bowyer–Watson insertion; `completed`
        // reports points already triangulated when the budget trips.
        let poll = |dt: &DelaunayTriangulation, stage| -> Result<(), MeshError> {
            if let Some(token) = token {
                token
                    .checkpoint(stage)
                    .map_err(|c| MeshError::Cancelled(c.with_completed(dt.len())))?;
            }
            Ok(())
        };
        match &self.boundary {
            None => {
                let nx = (bbox.width() / target_len).ceil().max(1.0) as usize;
                let ny = (bbox.height() / target_len).ceil().max(1.0) as usize;
                for i in 0..=nx {
                    poll(&dt, "mesh/seed")?;
                    let x = bbox.min.x + bbox.width() * i as f64 / nx as f64;
                    dt.insert(Point2::new(x, bbox.min.y));
                    dt.insert(Point2::new(x, bbox.max.y));
                }
                for j in 1..ny {
                    poll(&dt, "mesh/seed")?;
                    let y = bbox.min.y + bbox.height() * j as f64 / ny as f64;
                    dt.insert(Point2::new(bbox.min.x, y));
                    dt.insert(Point2::new(bbox.max.x, y));
                }
            }
            Some(poly) => {
                for (a, b) in poly.edges() {
                    let len = a.distance(b);
                    let steps = (len / target_len).ceil().max(1.0) as usize;
                    for k in 0..steps {
                        poll(&dt, "mesh/seed")?;
                        dt.insert(a.lerp(b, k as f64 / steps as f64));
                    }
                }
            }
        }

        // Refinement loop: repeatedly split the worst offending triangle.
        let mut stall_guard = 0usize;
        loop {
            poll(&dt, "mesh/refine")?;
            if dt.len() > self.max_points {
                return Err(MeshError::PointBudgetExhausted {
                    max_points: self.max_points,
                });
            }
            let (points, mut tris) = dt.snapshot();
            if self.boundary.is_some() {
                // Ignore hull-fill triangles outside a non-convex outline.
                tris.retain(|&[a, b, c]| {
                    self.domain_contains(Triangle::new(points[a], points[b], points[c]).centroid())
                });
            }
            let Some((_, tri)) = self.worst_offender(&points, &tris) else {
                break;
            };
            let inserted = self.split(&mut dt, &tri);
            if !inserted {
                stall_guard += 1;
                if stall_guard > 50 {
                    // Give up on un-splittable slivers rather than spin;
                    // quality statistics are still reported honestly via
                    // Mesh::quality().
                    break;
                }
            } else {
                stall_guard = 0;
            }
        }

        let (points, mut triangles) = dt.finish();
        if self.boundary.is_some() {
            triangles.retain(|&[a, b, c]| {
                self.domain_contains(Triangle::new(points[a], points[b], points[c]).centroid())
            });
        }
        let mesh =
            Mesh::from_parts_with_boundary(self.domain, self.boundary.clone(), points, triangles)?;
        if klest_obs::enabled() {
            klest_obs::gauge_set("mesh.triangles", mesh.len() as f64);
            klest_obs::gauge_set("mesh.vertices", mesh.points().len() as f64);
            // Degree bounds bracketing the quality constraints the paper
            // uses (28° minimum angle, 60° equilateral optimum).
            let hist = klest_obs::histogram(
                "mesh.min_angle_deg",
                &[20.0, 25.0, 28.0, 30.0, 32.0, 34.0, 36.0, 40.0, 45.0, 50.0, 55.0, 60.0],
            );
            for tri in mesh.iter() {
                hist.observe(tri.min_angle().to_degrees());
            }
        }
        Ok(mesh)
    }

    /// Finds the most offending triangle: area violations first (largest
    /// excess), then angle violations (smallest angle).
    fn worst_offender(
        &self,
        points: &[Point2],
        tris: &[[usize; 3]],
    ) -> Option<(usize, Triangle)> {
        let mut worst: Option<(f64, usize)> = None;
        for (i, &[a, b, c]) in tris.iter().enumerate() {
            let t = Triangle::new(points[a], points[b], points[c]);
            let mut badness = 0.0f64;
            if let Some(max_area) = self.max_area {
                if t.area() > max_area {
                    badness = badness.max(1000.0 * t.area() / max_area);
                }
            }
            let min_angle = t.min_angle();
            if min_angle < self.min_angle_rad {
                badness = badness.max(self.min_angle_rad / min_angle.max(1e-12));
            }
            if badness > 0.0 {
                match worst {
                    Some((wb, _)) if wb >= badness => {}
                    _ => worst = Some((badness, i)),
                }
            }
        }
        worst.map(|(_, i)| {
            let [a, b, c] = tris[i];
            (i, Triangle::new(points[a], points[b], points[c]))
        })
    }

    /// Splits a triangle: inserts its circumcenter when that lies inside
    /// the domain, otherwise the midpoint of its longest edge (always
    /// inside a convex domain). Returns whether a point was inserted.
    fn split(&self, dt: &mut DelaunayTriangulation, tri: &Triangle) -> bool {
        if let Some((cc, _)) = tri.circumcircle() {
            if self.domain_contains(cc) && dt.insert(cc).is_some() {
                return true;
            }
        }
        // Longest-edge midpoint fallback (always inside a convex die;
        // checked for polygonal ones).
        let [la, lb, lc] = tri.side_lengths();
        let mid = if la >= lb && la >= lc {
            tri.b.midpoint(tri.c)
        } else if lb >= lc {
            tri.c.midpoint(tri.a)
        } else {
            tri.a.midpoint(tri.b)
        };
        if self.boundary.is_some() && !self.domain_contains(mid) {
            return false;
        }
        dt.insert(mid).is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coarse_mesh_covers_domain() {
        let mesh = MeshBuilder::new(Rect::unit_die())
            .max_area(0.5)
            .min_angle_degrees(20.0)
            .build()
            .unwrap();
        assert!((mesh.total_area() - 4.0).abs() < 1e-9);
        for c in mesh.centroids() {
            assert!(mesh.domain().contains(*c));
        }
    }

    #[test]
    fn area_constraint_is_met() {
        let max_area = 0.05;
        let mesh = MeshBuilder::new(Rect::unit_die())
            .max_area(max_area)
            .min_angle_degrees(25.0)
            .build()
            .unwrap();
        for (i, &a) in mesh.areas().iter().enumerate() {
            assert!(a <= max_area * (1.0 + 1e-9), "triangle {i}: area {a}");
        }
        assert!((mesh.total_area() - 4.0).abs() < 1e-9);
    }

    #[test]
    fn angle_constraint_mostly_met() {
        let mesh = MeshBuilder::new(Rect::unit_die())
            .max_area(0.02)
            .min_angle_degrees(28.0)
            .build()
            .unwrap();
        let q = mesh.quality();
        // Ruppert-lite may leave a handful of boundary slivers; the bulk
        // must satisfy the constraint and the worst must not be degenerate.
        assert!(q.min_angle_deg > 20.0, "worst angle {}", q.min_angle_deg);
        let violating = mesh
            .iter()
            .filter(|t| t.min_angle().to_degrees() < 28.0)
            .count();
        assert!(
            (violating as f64) < 0.02 * mesh.len() as f64 + 2.0,
            "{violating} of {} below 28 deg",
            mesh.len()
        );
    }

    #[test]
    fn paper_scale_mesh() {
        // The paper's configuration: 0.1% of chip area, 28 deg -> n = 1546.
        // Our mesher lands in the same regime (> 1000, < 3500).
        let mesh = MeshBuilder::new(Rect::unit_die())
            .max_area_fraction(0.001)
            .min_angle_degrees(28.0)
            .build()
            .unwrap();
        assert!(
            mesh.len() > 1000 && mesh.len() < 3500,
            "n = {}",
            mesh.len()
        );
        assert!((mesh.total_area() - 4.0).abs() < 1e-8);
    }

    #[test]
    fn invalid_constraints_rejected() {
        assert!(matches!(
            MeshBuilder::new(Rect::unit_die()).max_area(-1.0).build(),
            Err(MeshError::InvalidConstraint { name: "max_area", .. })
        ));
        assert!(matches!(
            MeshBuilder::new(Rect::unit_die())
                .min_angle_degrees(45.0)
                .build(),
            Err(MeshError::InvalidConstraint {
                name: "min_angle_degrees",
                ..
            })
        ));
    }

    #[test]
    fn point_budget_enforced() {
        let r = MeshBuilder::new(Rect::unit_die())
            .max_area(0.0001)
            .max_points(50)
            .build();
        assert!(matches!(r, Err(MeshError::PointBudgetExhausted { max_points: 50 })));
    }

    #[test]
    fn non_square_domain() {
        let domain = Rect::new(Point2::new(0.0, 0.0), Point2::new(4.0, 1.0));
        let mesh = MeshBuilder::new(domain)
            .max_area(0.1)
            .min_angle_degrees(25.0)
            .build()
            .unwrap();
        assert!((mesh.total_area() - 4.0).abs() < 1e-9);
        assert!(mesh.len() >= 40);
    }

    #[test]
    fn l_shaped_die() {
        // L-shaped hexagon with area 3.
        let poly = Polygon::new(vec![
            Point2::new(0.0, 0.0),
            Point2::new(2.0, 0.0),
            Point2::new(2.0, 1.0),
            Point2::new(1.0, 1.0),
            Point2::new(1.0, 2.0),
            Point2::new(0.0, 2.0),
        ])
        .unwrap();
        let mesh = MeshBuilder::polygon(poly.clone())
            .max_area(0.02)
            .min_angle_degrees(25.0)
            .build()
            .unwrap();
        // Covers (approximately) the polygon, not its bounding box.
        assert!(
            (mesh.total_area() - 3.0).abs() < 0.05,
            "area {} should be ~3 (polygon), not 4 (bbox)",
            mesh.total_area()
        );
        assert!(mesh.boundary().is_some());
        // Every centroid is inside the outline; none in the notch.
        for c in mesh.centroids() {
            assert!(poly.contains(*c), "centroid {c} escaped the L");
            assert!(mesh.domain_contains(*c));
        }
        // The notch interior has no containing triangle.
        let notch = Point2::new(1.5, 1.5);
        assert!(!mesh.domain_contains(notch));
        assert!(mesh.locator().locate(notch).is_none());
        // A point deep inside the L is found.
        assert!(mesh.locator().locate(Point2::new(0.5, 0.5)).is_some());
        // Area constraint honoured.
        for &a in mesh.areas() {
            assert!(a <= 0.02 * (1.0 + 1e-9));
        }
    }

    #[test]
    fn triangular_die() {
        let poly = Polygon::new(vec![
            Point2::new(-1.0, -1.0),
            Point2::new(1.0, -1.0),
            Point2::new(0.0, 1.0),
        ])
        .unwrap();
        let mesh = MeshBuilder::polygon(poly)
            .max_area_fraction(0.01)
            .min_angle_degrees(25.0)
            .build()
            .unwrap();
        assert!((mesh.total_area() - 2.0).abs() < 0.03, "{}", mesh.total_area());
        assert!(mesh.len() > 60);
    }

    #[test]
    fn cancelled_token_stops_refinement_with_typed_error() {
        use klest_runtime::CancelToken;
        let token = CancelToken::unlimited();
        token.cancel();
        let r = MeshBuilder::new(Rect::unit_die())
            .max_area(0.001)
            .build_with_token(&token);
        match r {
            Err(MeshError::Cancelled(c)) => assert_eq!(c.stage, "mesh/seed"),
            other => panic!("expected Cancelled, got {other:?}"),
        }
    }

    #[test]
    fn trip_mid_refinement_reports_inserted_points() {
        use klest_runtime::CancelToken;
        let token = CancelToken::unlimited();
        token.trip_after_checkpoints(200);
        let r = MeshBuilder::new(Rect::unit_die())
            .max_area(0.0005)
            .build_with_token(&token);
        match r {
            Err(MeshError::Cancelled(c)) => {
                assert_eq!(c.stage, "mesh/refine");
                assert!(c.completed > 0, "no points recorded");
            }
            other => panic!("expected Cancelled, got {other:?}"),
        }
    }

    #[test]
    fn live_token_changes_nothing() {
        use klest_runtime::CancelToken;
        let token = CancelToken::unlimited();
        let with = MeshBuilder::new(Rect::unit_die())
            .max_area(0.05)
            .min_angle_degrees(25.0)
            .build_with_token(&token)
            .unwrap();
        let without = MeshBuilder::new(Rect::unit_die())
            .max_area(0.05)
            .min_angle_degrees(25.0)
            .build()
            .unwrap();
        assert_eq!(with.len(), without.len());
        assert_eq!(with.points().len(), without.points().len());
    }

    #[test]
    fn refinement_scales_with_area_budget() {
        let coarse = MeshBuilder::new(Rect::unit_die())
            .max_area(0.1)
            .build()
            .unwrap();
        let fine = MeshBuilder::new(Rect::unit_die())
            .max_area(0.01)
            .build()
            .unwrap();
        assert!(fine.len() > 4 * coarse.len());
        assert!(fine.max_side() < coarse.max_side());
    }
}
