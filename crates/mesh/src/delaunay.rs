//! Incremental Bowyer–Watson Delaunay triangulation.
//!
//! Points are inserted one at a time: the *cavity* of triangles whose
//! circumcircle contains the new point is removed and re-triangulated as a
//! fan from the new point to the cavity boundary. A super-triangle
//! enclosing the working area hosts the construction and is stripped at
//! the end.
//!
//! The implementation favours simplicity and robustness over asymptotics:
//! the cavity search scans all live triangles (O(T) per insertion), which
//! is ample for the few-thousand-point meshes the paper's experiments use
//! (n = 1546 triangles).

use klest_geometry::{in_circle, orient2d_raw, Point2};


/// Minimum squared distance between distinct vertices; nearer insertions
/// are rejected as duplicates.
const DUPLICATE_EPS_SQ: f64 = 1e-18;

/// An incremental Delaunay triangulation.
///
/// ```
/// use klest_geometry::Point2;
/// use klest_mesh::delaunay::DelaunayTriangulation;
///
/// let mut dt = DelaunayTriangulation::new(Point2::new(-1.0, -1.0), Point2::new(1.0, 1.0));
/// dt.insert(Point2::new(-1.0, -1.0));
/// dt.insert(Point2::new(1.0, -1.0));
/// dt.insert(Point2::new(1.0, 1.0));
/// dt.insert(Point2::new(-1.0, 1.0));
/// let (points, triangles) = dt.finish();
/// assert_eq!(points.len(), 4);
/// assert_eq!(triangles.len(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct DelaunayTriangulation {
    /// All vertices; indices 0..3 are the super-triangle corners.
    points: Vec<Point2>,
    /// Live triangles as CCW vertex index triples.
    triangles: Vec<[usize; 3]>,
}

impl DelaunayTriangulation {
    /// Creates a triangulation whose super-triangle comfortably encloses
    /// the axis-aligned box `(lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if the box is degenerate or non-finite.
    pub fn new(lo: Point2, hi: Point2) -> Self {
        assert!(lo.is_finite() && hi.is_finite(), "bounds must be finite");
        let w = (hi.x - lo.x).abs().max(1e-9);
        let h = (hi.y - lo.y).abs().max(1e-9);
        let cx = 0.5 * (lo.x + hi.x);
        let cy = 0.5 * (lo.y + hi.y);
        let m = 20.0 * w.max(h);
        // Large triangle around the box.
        let a = Point2::new(cx - m, cy - m * 0.7);
        let b = Point2::new(cx + m, cy - m * 0.7);
        let c = Point2::new(cx, cy + m);
        DelaunayTriangulation {
            points: vec![a, b, c],
            triangles: vec![[0, 1, 2]],
        }
    }

    /// Number of user (non-super-triangle) vertices inserted so far.
    pub fn len(&self) -> usize {
        self.points.len() - 3
    }

    /// Has no user vertex been inserted yet?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Inserts a point, returning its vertex index (in *user* indexing,
    /// i.e. the index it will have after [`finish`](Self::finish)), or
    /// `None` if the point duplicates an existing vertex.
    pub fn insert(&mut self, p: Point2) -> Option<usize> {
        // Duplicate rejection.
        for existing in &self.points[3..] {
            if existing.distance_sq(p) < DUPLICATE_EPS_SQ {
                return None;
            }
        }
        let pi = self.points.len();
        self.points.push(p);

        // Cavity: every live triangle whose circumcircle contains p.
        // Cocircular cases (in_circle == 0) are included to keep the
        // cavity star-shaped under degeneracy.
        let mut cavity = Vec::new();
        for (t, tri) in self.triangles.iter().enumerate() {
            let [a, b, c] = *tri;
            if in_circle(self.points[a], self.points[b], self.points[c], p) >= 0.0 {
                // For strictly outside circumcircles in_circle < 0; zero
                // (cocircular/filtered) joins the cavity only when p is
                // actually relevant — containment keeps it conservative.
                let ic = in_circle(self.points[a], self.points[b], self.points[c], p);
                if ic > 0.0 || self.triangle_contains(t, p) {
                    cavity.push(t);
                }
            }
        }
        if cavity.is_empty() {
            // Numerically filtered to nothing: fall back to the containing
            // triangle so insertion always succeeds.
            if let Some(t) = (0..self.triangles.len()).find(|&t| self.triangle_contains(t, p)) {
                cavity.push(t);
            } else {
                // Outside the super-triangle: reject.
                self.points.pop();
                return None;
            }
        }

        // Boundary edges: edges used by exactly one cavity triangle.
        // Collected into a sorted Vec (not a HashMap) so that triangle
        // creation order — and therefore the whole refinement cascade —
        // is deterministic run to run.
        let mut edges: Vec<(usize, usize)> = Vec::with_capacity(3 * cavity.len());
        for &t in &cavity {
            let [a, b, c] = self.triangles[t];
            for (u, v) in [(a, b), (b, c), (c, a)] {
                edges.push((u.min(v), u.max(v)));
            }
        }
        edges.sort_unstable();
        let mut boundary: Vec<(usize, usize)> = Vec::with_capacity(edges.len());
        let mut i = 0;
        while i < edges.len() {
            let mut j = i + 1;
            while j < edges.len() && edges[j] == edges[i] {
                j += 1;
            }
            if j - i == 1 {
                boundary.push(edges[i]);
            }
            i = j;
        }

        // Remove cavity triangles (swap-remove from the back).
        cavity.sort_unstable_by(|a, b| b.cmp(a));
        for t in cavity {
            self.triangles.swap_remove(t);
        }

        // Fan from p to each boundary edge, oriented CCW.
        for (u, v) in boundary {
            let (a, b) = if orient2d_raw(self.points[u], self.points[v], p) > 0.0 {
                (u, v)
            } else {
                (v, u)
            };
            if orient2d_raw(self.points[a], self.points[b], p).abs() > 0.0 {
                self.triangles.push([a, b, pi]);
            }
        }
        Some(pi - 3)
    }

    fn triangle_contains(&self, t: usize, p: Point2) -> bool {
        let [a, b, c] = self.triangles[t];
        let (pa, pb, pc) = (self.points[a], self.points[b], self.points[c]);
        let d1 = orient2d_raw(pa, pb, p);
        let d2 = orient2d_raw(pb, pc, p);
        let d3 = orient2d_raw(pc, pa, p);
        let has_neg = d1 < 0.0 || d2 < 0.0 || d3 < 0.0;
        let has_pos = d1 > 0.0 || d2 > 0.0 || d3 > 0.0;
        !(has_neg && has_pos)
    }

    /// Current triangles that do not touch the super-triangle, as user
    /// vertex index triples, plus the user points. Non-consuming version
    /// of [`finish`](Self::finish) used during refinement.
    pub fn snapshot(&self) -> (Vec<Point2>, Vec<[usize; 3]>) {
        let points: Vec<Point2> = self.points[3..].to_vec();
        let triangles = self
            .triangles
            .iter()
            .filter(|tri| tri.iter().all(|&v| v >= 3))
            .map(|tri| [tri[0] - 3, tri[1] - 3, tri[2] - 3])
            .collect();
        (points, triangles)
    }

    /// Finishes the triangulation: strips the super-triangle and returns
    /// `(points, triangles)` with CCW triangles in user indexing.
    pub fn finish(self) -> (Vec<Point2>, Vec<[usize; 3]>) {
        self.snapshot()
    }
}

#[cfg(test)]
mod tests {
    use std::collections::HashMap;
    use super::*;
    use klest_geometry::Triangle;

    fn square_dt() -> DelaunayTriangulation {
        let mut dt =
            DelaunayTriangulation::new(Point2::new(0.0, 0.0), Point2::new(1.0, 1.0));
        for p in [
            Point2::new(0.0, 0.0),
            Point2::new(1.0, 0.0),
            Point2::new(1.0, 1.0),
            Point2::new(0.0, 1.0),
        ] {
            dt.insert(p);
        }
        dt
    }

    #[test]
    fn square_two_triangles() {
        let (points, tris) = square_dt().finish();
        assert_eq!(points.len(), 4);
        assert_eq!(tris.len(), 2);
        let area: f64 = tris
            .iter()
            .map(|&[a, b, c]| Triangle::new(points[a], points[b], points[c]).area())
            .sum();
        assert!((area - 1.0).abs() < 1e-12);
    }

    #[test]
    fn triangles_are_ccw() {
        let mut dt = square_dt();
        dt.insert(Point2::new(0.5, 0.5));
        dt.insert(Point2::new(0.25, 0.75));
        let (points, tris) = dt.finish();
        for &[a, b, c] in &tris {
            let t = Triangle::new(points[a], points[b], points[c]);
            assert!(t.signed_area() > 0.0, "triangle {a},{b},{c} not CCW");
        }
    }

    #[test]
    fn duplicate_points_rejected() {
        let mut dt = square_dt();
        assert_eq!(dt.len(), 4);
        assert!(dt.insert(Point2::new(0.0, 0.0)).is_none());
        assert_eq!(dt.len(), 4);
        assert!(!dt.is_empty());
    }

    #[test]
    fn outside_super_triangle_rejected() {
        let mut dt = square_dt();
        assert!(dt.insert(Point2::new(1e6, 1e6)).is_none());
        assert_eq!(dt.len(), 4);
    }

    #[test]
    fn delaunay_property_random_points() {
        let mut dt =
            DelaunayTriangulation::new(Point2::new(0.0, 0.0), Point2::new(1.0, 1.0));
        // Deterministic pseudo-random points.
        let mut seed = 12345u64;
        let mut rnd = || {
            seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (seed >> 11) as f64 / (1u64 << 53) as f64
        };
        let mut pts = vec![
            Point2::new(0.0, 0.0),
            Point2::new(1.0, 0.0),
            Point2::new(1.0, 1.0),
            Point2::new(0.0, 1.0),
        ];
        for _ in 0..60 {
            pts.push(Point2::new(rnd(), rnd()));
        }
        for &p in &pts {
            dt.insert(p);
        }
        let (points, tris) = dt.finish();
        // Empty circumcircle property: no vertex strictly inside any
        // triangle's circumcircle.
        for &[a, b, c] in &tris {
            for (vi, &v) in points.iter().enumerate() {
                if vi == a || vi == b || vi == c {
                    continue;
                }
                let ic = in_circle(points[a], points[b], points[c], v);
                assert!(
                    ic <= 1e-9,
                    "vertex {vi} strictly inside circumcircle of ({a},{b},{c}): {ic}"
                );
            }
        }
        // Convex-hull area (unit square) is fully covered.
        let area: f64 = tris
            .iter()
            .map(|&[a, b, c]| Triangle::new(points[a], points[b], points[c]).area())
            .sum();
        assert!((area - 1.0).abs() < 1e-9, "area = {area}");
    }

    #[test]
    fn interior_edges_shared_by_two_triangles() {
        let mut dt = square_dt();
        dt.insert(Point2::new(0.5, 0.5));
        dt.insert(Point2::new(0.3, 0.7));
        dt.insert(Point2::new(0.8, 0.2));
        let (points, tris) = dt.finish();
        let mut edge_count: HashMap<(usize, usize), usize> = HashMap::new();
        for &[a, b, c] in &tris {
            for (u, v) in [(a, b), (b, c), (c, a)] {
                *edge_count.entry((u.min(v), u.max(v))).or_default() += 1;
            }
        }
        for (&(u, v), &count) in &edge_count {
            assert!(
                count == 1 || count == 2,
                "edge ({u},{v}) shared by {count} triangles"
            );
            if count == 1 {
                // Boundary edge must lie on the unit square boundary.
                let (p, q) = (points[u], points[v]);
                let on_boundary = |p: Point2| {
                    p.x.abs() < 1e-12
                        || (p.x - 1.0).abs() < 1e-12
                        || p.y.abs() < 1e-12
                        || (p.y - 1.0).abs() < 1e-12
                };
                assert!(on_boundary(p) && on_boundary(q));
            }
        }
    }

    #[test]
    fn collinear_grid_points() {
        // A regular grid has many cocircular quadruples; construction must
        // survive and cover the square.
        let mut dt =
            DelaunayTriangulation::new(Point2::new(0.0, 0.0), Point2::new(1.0, 1.0));
        for i in 0..5 {
            for j in 0..5 {
                dt.insert(Point2::new(i as f64 / 4.0, j as f64 / 4.0));
            }
        }
        let (points, tris) = dt.finish();
        assert_eq!(points.len(), 25);
        let area: f64 = tris
            .iter()
            .map(|&[a, b, c]| Triangle::new(points[a], points[b], points[c]).area())
            .sum();
        assert!((area - 1.0).abs() < 1e-9, "area = {area}");
        assert_eq!(tris.len(), 32, "4x4 cells, 2 triangles each");
    }
}
