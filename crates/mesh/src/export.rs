//! Mesh and field export for visualization.
//!
//! Two formats:
//! - Wavefront OBJ (vertices + triangular faces, optionally lifting a
//!   per-triangle scalar field into the z coordinate of a face-split
//!   copy) — loads in any 3-D viewer to inspect eigenfunctions or
//!   sampled fields,
//! - CSV (`x,y` per vertex and `a,b,c` per triangle) for scripting.

use crate::Mesh;
use std::fmt::Write as _;

/// Serialises the mesh as a flat (z = 0) Wavefront OBJ string.
pub fn to_obj(mesh: &Mesh) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "# klest mesh: {} triangles", mesh.len());
    for p in mesh.points() {
        let _ = writeln!(out, "v {} {} 0", p.x, p.y);
    }
    for &[a, b, c] in mesh.triangle_indices() {
        // OBJ indices are 1-based.
        let _ = writeln!(out, "f {} {} {}", a + 1, b + 1, c + 1);
    }
    out
}

/// Serialises the mesh with a per-triangle scalar `field` lifted to the
/// z axis (each triangle becomes an independent flat facet at its field
/// value — the piecewise-constant surfaces of Figs. 1(b) and 4).
///
/// # Panics
///
/// Panics if `field.len() != mesh.len()`.
pub fn to_obj_with_field(mesh: &Mesh, field: &[f64], z_scale: f64) -> String {
    assert_eq!(field.len(), mesh.len(), "one field value per triangle");
    let mut out = String::new();
    let _ = writeln!(
        out,
        "# klest mesh + field: {} triangles, z scale {z_scale}",
        mesh.len()
    );
    for (t, &[a, b, c]) in mesh.triangle_indices().iter().enumerate() {
        let z = field[t] * z_scale;
        for &v in &[a, b, c] {
            let p = mesh.points()[v];
            let _ = writeln!(out, "v {} {} {}", p.x, p.y, z);
        }
    }
    for t in 0..mesh.len() {
        let base = 3 * t + 1;
        let _ = writeln!(out, "f {} {} {}", base, base + 1, base + 2);
    }
    out
}

/// Serialises the mesh as two CSV blocks: a vertex table and a triangle
/// (index) table, separated by a blank line.
pub fn to_csv(mesh: &Mesh) -> String {
    let mut out = String::from("x,y\n");
    for p in mesh.points() {
        let _ = writeln!(out, "{},{}", p.x, p.y);
    }
    out.push('\n');
    out.push_str("a,b,c\n");
    for &[a, b, c] in mesh.triangle_indices() {
        let _ = writeln!(out, "{a},{b},{c}");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MeshBuilder;
    use klest_geometry::Rect;

    fn mesh() -> Mesh {
        MeshBuilder::new(Rect::unit_die()).max_area(0.5).build().unwrap()
    }

    #[test]
    fn obj_counts_match() {
        let m = mesh();
        let obj = to_obj(&m);
        let vertices = obj.lines().filter(|l| l.starts_with("v ")).count();
        let faces = obj.lines().filter(|l| l.starts_with("f ")).count();
        assert_eq!(vertices, m.points().len());
        assert_eq!(faces, m.len());
        // All face indices are in range (1-based).
        for line in obj.lines().filter(|l| l.starts_with("f ")) {
            for tok in line.split_whitespace().skip(1) {
                let idx: usize = tok.parse().unwrap();
                assert!(idx >= 1 && idx <= vertices);
            }
        }
    }

    #[test]
    fn obj_with_field_has_facet_per_triangle() {
        let m = mesh();
        let field: Vec<f64> = (0..m.len()).map(|i| i as f64).collect();
        let obj = to_obj_with_field(&m, &field, 0.1);
        let vertices = obj.lines().filter(|l| l.starts_with("v ")).count();
        let faces = obj.lines().filter(|l| l.starts_with("f ")).count();
        assert_eq!(vertices, 3 * m.len());
        assert_eq!(faces, m.len());
        // The z of the second facet's vertices equals field[1] * scale.
        let zs: Vec<f64> = obj
            .lines()
            .filter(|l| l.starts_with("v "))
            .skip(3)
            .take(3)
            .map(|l| l.split_whitespace().nth(3).unwrap().parse().unwrap())
            .collect();
        for z in zs {
            assert!((z - 0.1).abs() < 1e-12);
        }
    }

    #[test]
    #[should_panic]
    fn obj_with_wrong_field_length_panics() {
        let m = mesh();
        let _ = to_obj_with_field(&m, &[1.0], 1.0);
    }

    #[test]
    fn csv_roundtrip_counts() {
        let m = mesh();
        let csv = to_csv(&m);
        let blocks: Vec<&str> = csv.split("\n\n").collect();
        assert_eq!(blocks.len(), 2);
        assert_eq!(blocks[0].lines().count(), m.points().len() + 1);
        assert_eq!(blocks[1].lines().count(), m.len() + 1);
    }
}
