//! # klest-mesh
//!
//! Triangulation of the die area — the role Shewchuk's *Triangle* [24]
//! plays in the paper. Provides:
//!
//! - incremental Bowyer–Watson Delaunay triangulation ([`delaunay`]),
//! - Ruppert-style quality refinement with minimum-angle and maximum-area
//!   constraints ([`MeshBuilder`]), mirroring the paper's
//!   "minimum angle of 28° and maximum triangle area of 0.1% of the chip
//!   area" mesh,
//! - point location ([`TriangleLocator`]), the
//!   `IndexOfContainingTriangle()` of Algorithm 2, backed by a uniform
//!   grid index,
//! - mesh quality statistics ([`MeshQuality`]).
//!
//! ```
//! use klest_geometry::{Point2, Rect};
//! use klest_mesh::MeshBuilder;
//!
//! # fn main() -> Result<(), klest_mesh::MeshError> {
//! let mesh = MeshBuilder::new(Rect::unit_die())
//!     .max_area(0.05)
//!     .min_angle_degrees(25.0)
//!     .build()?;
//! assert!((mesh.total_area() - 4.0).abs() < 1e-9);
//! let locator = mesh.locator();
//! let idx = locator.locate(Point2::new(0.3, -0.4)).unwrap();
//! assert!(mesh.triangle(idx).contains(Point2::new(0.3, -0.4)));
//! # Ok(())
//! # }
//! ```

#![deny(missing_docs)]

mod builder;
pub mod delaunay;
pub mod export;
mod locate;
mod mesh;
mod quality;

pub use builder::MeshBuilder;
pub use locate::TriangleLocator;
pub use mesh::{Mesh, MeshError};
pub use quality::MeshQuality;
