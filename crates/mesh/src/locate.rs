//! Point location: `IndexOfContainingTriangle()` from Algorithm 2.
//!
//! Algorithm 2 maps every gate location to the triangle containing it; the
//! paper notes this "can be made efficient using some space indexing
//! (grid, tree, etc.) scheme". This module implements the grid scheme: a
//! uniform bucket grid over the domain, each bucket holding the triangles
//! whose bounding box overlaps it.

use crate::Mesh;
use klest_geometry::{BBox, Point2};

/// Grid-backed point-in-triangle locator.
///
/// Queries are O(triangles per bucket), a small constant for quality
/// meshes; `Mesh::locate_linear` is the O(n) baseline the benches compare
/// against.
#[derive(Debug, Clone)]
pub struct TriangleLocator {
    bbox: BBox,
    nx: usize,
    ny: usize,
    /// Flattened `nx x ny` buckets of triangle indices.
    buckets: Vec<Vec<u32>>,
    /// Triangle geometry snapshot (corner points), avoiding a borrow of
    /// the mesh.
    triangles: Vec<[Point2; 3]>,
}

impl TriangleLocator {
    /// Builds a locator for `mesh`, sizing the grid to roughly one
    /// triangle per bucket.
    pub fn new(mesh: &Mesh) -> Self {
        let bbox = mesh.domain().bbox();
        let n = mesh.len();
        let aspect = (bbox.width() / bbox.height()).max(1e-9);
        let ny = ((n as f64 / aspect).sqrt().ceil() as usize).max(1);
        let nx = ((n as f64 / ny as f64).ceil() as usize).max(1);
        let mut buckets = vec![Vec::new(); nx * ny];
        let mut triangles = Vec::with_capacity(n);
        for i in 0..n {
            let t = mesh.triangle(i);
            triangles.push([t.a, t.b, t.c]);
            let tb = BBox::from_points([t.a, t.b, t.c]).expect("triangle");
            let (ix0, iy0) = Self::cell_of(bbox, nx, ny, tb.min);
            let (ix1, iy1) = Self::cell_of(bbox, nx, ny, tb.max);
            for iy in iy0..=iy1 {
                for ix in ix0..=ix1 {
                    buckets[iy * nx + ix].push(i as u32);
                }
            }
        }
        TriangleLocator {
            bbox,
            nx,
            ny,
            buckets,
            triangles,
        }
    }

    fn cell_of(bbox: BBox, nx: usize, ny: usize, p: Point2) -> (usize, usize) {
        let fx = ((p.x - bbox.min.x) / bbox.width().max(1e-300)).clamp(0.0, 1.0);
        let fy = ((p.y - bbox.min.y) / bbox.height().max(1e-300)).clamp(0.0, 1.0);
        let ix = ((fx * nx as f64) as usize).min(nx - 1);
        let iy = ((fy * ny as f64) as usize).min(ny - 1);
        (ix, iy)
    }

    /// Index of a triangle containing `p`, or `None` if `p` lies outside
    /// the mesh.
    pub fn locate(&self, p: Point2) -> Option<usize> {
        if !self.bbox.contains(p) {
            return None;
        }
        let (ix, iy) = Self::cell_of(self.bbox, self.nx, self.ny, p);
        for &ti in &self.buckets[iy * self.nx + ix] {
            let [a, b, c] = self.triangles[ti as usize];
            if klest_geometry::Triangle::new(a, b, c).contains(p) {
                return Some(ti as usize);
            }
        }
        // Boundary-precision fallback: scan neighbouring buckets.
        for dy in -1i64..=1 {
            for dx in -1i64..=1 {
                if dx == 0 && dy == 0 {
                    continue;
                }
                let jx = ix as i64 + dx;
                let jy = iy as i64 + dy;
                if jx < 0 || jy < 0 || jx >= self.nx as i64 || jy >= self.ny as i64 {
                    continue;
                }
                for &ti in &self.buckets[jy as usize * self.nx + jx as usize] {
                    let [a, b, c] = self.triangles[ti as usize];
                    if klest_geometry::Triangle::new(a, b, c).contains(p) {
                        return Some(ti as usize);
                    }
                }
            }
        }
        None
    }

    /// Like [`locate`](Self::locate), but never fails: a point outside the
    /// mesh (a gate placed off-die, or a query lost to floating-point
    /// sliver gaps between triangles) is clamped to the triangle with the
    /// nearest centroid. Returns the triangle index and whether clamping
    /// occurred, so callers can record the degradation instead of
    /// panicking mid-simulation.
    pub fn locate_or_nearest(&self, p: Point2) -> (usize, bool) {
        if let Some(i) = self.locate(p) {
            return (i, false);
        }
        // O(n) scan over centroids; only taken on the (rare) miss path.
        let mut best = 0usize;
        let mut best_d2 = f64::INFINITY;
        for (i, &[a, b, c]) in self.triangles.iter().enumerate() {
            let cx = (a.x + b.x + c.x) / 3.0;
            let cy = (a.y + b.y + c.y) / 3.0;
            let d2 = (p.x - cx).powi(2) + (p.y - cy).powi(2);
            if d2 < best_d2 {
                best_d2 = d2;
                best = i;
            }
        }
        (best, true)
    }

    /// Grid dimensions `(nx, ny)`, for diagnostics.
    pub fn grid_dims(&self) -> (usize, usize) {
        (self.nx, self.ny)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MeshBuilder;
    use klest_geometry::Rect;

    fn mesh() -> Mesh {
        MeshBuilder::new(Rect::unit_die())
            .max_area(0.02)
            .min_angle_degrees(25.0)
            .build()
            .unwrap()
    }

    #[test]
    fn locates_centroids_exactly() {
        let m = mesh();
        let loc = m.locator();
        for (i, &c) in m.centroids().iter().enumerate() {
            let found = loc.locate(c).expect("centroid must be inside");
            // The found triangle must contain the centroid (it may be a
            // different index only if the centroid sits on an edge, which
            // cannot happen for a centroid of a non-degenerate triangle).
            assert_eq!(found, i, "centroid of triangle {i} located in {found}");
        }
    }

    #[test]
    fn agrees_with_linear_scan_on_random_points() {
        let m = mesh();
        let loc = m.locator();
        let mut seed = 99u64;
        let mut rnd = || {
            seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
            (seed >> 11) as f64 / (1u64 << 53) as f64
        };
        for _ in 0..500 {
            let p = Point2::new(-1.0 + 2.0 * rnd(), -1.0 + 2.0 * rnd());
            let fast = loc.locate(p);
            let slow = m.locate_linear(p);
            match (fast, slow) {
                (Some(f), Some(_)) => {
                    assert!(m.triangle(f).contains(p), "located triangle must contain p")
                }
                (None, None) => {}
                (f, s) => panic!("grid {f:?} vs linear {s:?} disagree at {p}"),
            }
        }
    }

    #[test]
    fn outside_returns_none() {
        let m = mesh();
        let loc = m.locator();
        assert!(loc.locate(Point2::new(2.0, 0.0)).is_none());
        assert!(loc.locate(Point2::new(0.0, -5.0)).is_none());
    }

    #[test]
    fn boundary_points_found() {
        let m = mesh();
        let loc = m.locator();
        for p in [
            Point2::new(-1.0, -1.0),
            Point2::new(1.0, 1.0),
            Point2::new(0.0, 1.0),
            Point2::new(-1.0, 0.3),
        ] {
            let i = loc.locate(p).expect("boundary point must be found");
            assert!(m.triangle(i).contains(p));
        }
    }

    #[test]
    fn locate_or_nearest_matches_locate_inside() {
        let m = mesh();
        let loc = m.locator();
        for &c in m.centroids().iter().take(50) {
            let (i, clamped) = loc.locate_or_nearest(c);
            assert!(!clamped);
            assert_eq!(Some(i), loc.locate(c));
        }
    }

    #[test]
    fn locate_or_nearest_clamps_outside_points() {
        let m = mesh();
        let loc = m.locator();
        // Far off-die: must clamp to the triangle nearest the approach
        // direction, and report the clamp.
        let (i, clamped) = loc.locate_or_nearest(Point2::new(5.0, 0.2));
        assert!(clamped);
        let c = m.centroids()[i];
        // The chosen centroid must be the true nearest one.
        let d2 = |q: Point2| (5.0 - q.x).powi(2) + (0.2 - q.y).powi(2);
        let best = m
            .centroids()
            .iter()
            .map(|&q| d2(q))
            .fold(f64::INFINITY, f64::min);
        assert!((d2(c) - best).abs() < 1e-12);
        // Nearest triangle to a point right of the die hugs the x = 1 edge.
        assert!(c.x > 0.5, "clamped to {c}, expected near right edge");
    }

    #[test]
    fn grid_dims_scale_with_mesh() {
        let m = mesh();
        let loc = m.locator();
        let (nx, ny) = loc.grid_dims();
        assert!(nx * ny >= m.len() / 2);
    }
}
