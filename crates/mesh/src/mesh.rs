//! The finished mesh consumed by the Galerkin assembly.

use crate::{MeshQuality, TriangleLocator};
use klest_geometry::{Point2, Polygon, Rect, Triangle};
use std::fmt;

/// Errors from mesh construction.
#[derive(Debug, Clone, PartialEq)]
pub enum MeshError {
    /// The refinement loop hit its point budget before satisfying the
    /// quality constraints; relax `min_angle`/`max_area` or raise
    /// `max_points`.
    PointBudgetExhausted {
        /// The budget that was hit.
        max_points: usize,
    },
    /// A constraint parameter was out of range.
    InvalidConstraint {
        /// Which parameter.
        name: &'static str,
        /// The supplied value.
        value: f64,
    },
    /// The mesh ended up empty (degenerate domain).
    EmptyMesh,
    /// A triangle has (numerically) zero or non-finite area — a sliver
    /// that would poison the mass matrix `Φ` (paper eq. 18).
    DegenerateTriangle {
        /// Index of the offending triangle.
        index: usize,
        /// Its signed area.
        area: f64,
    },
    /// A triangle references a vertex index outside the point list.
    InvalidVertexIndex {
        /// Index of the offending triangle.
        triangle: usize,
        /// The out-of-range vertex index.
        vertex: usize,
        /// Number of points available.
        points: usize,
    },
    /// Mesh construction was cancelled cooperatively (deadline or explicit
    /// cancel); carries the runtime's typed partial-result marker.
    /// `completed` counts points inserted before the trip.
    Cancelled(klest_runtime::Cancelled),
}

impl fmt::Display for MeshError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MeshError::PointBudgetExhausted { max_points } => {
                write!(f, "mesh refinement exhausted its {max_points}-point budget")
            }
            MeshError::InvalidConstraint { name, value } => {
                write!(f, "invalid mesh constraint {name} = {value}")
            }
            MeshError::EmptyMesh => write!(f, "triangulation produced no triangles"),
            MeshError::DegenerateTriangle { index, area } => {
                write!(f, "triangle {index} is degenerate (area {area:e})")
            }
            MeshError::InvalidVertexIndex {
                triangle,
                vertex,
                points,
            } => write!(
                f,
                "triangle {triangle} references vertex {vertex} but only {points} points exist"
            ),
            MeshError::Cancelled(c) => write!(f, "{c}"),
        }
    }
}

impl std::error::Error for MeshError {}

impl From<klest_runtime::Cancelled> for MeshError {
    fn from(c: klest_runtime::Cancelled) -> Self {
        MeshError::Cancelled(c)
    }
}

/// A triangulation of the die with precomputed per-triangle data.
///
/// The Galerkin method only consumes [`centroids`](Mesh::centroids) and
/// [`areas`](Mesh::areas) (paper eq. 18/21); the full geometry stays
/// available for point location and diagnostics.
#[derive(Debug, Clone)]
pub struct Mesh {
    domain: Rect,
    /// Non-rectangular die outline, when the mesh covers a polygon
    /// (`domain` is then its bounding box).
    boundary: Option<Polygon>,
    points: Vec<Point2>,
    triangles: Vec<[usize; 3]>,
    centroids: Vec<Point2>,
    areas: Vec<f64>,
    max_side: f64,
}

impl Mesh {
    /// Assembles a mesh from raw triangulation output.
    ///
    /// # Errors
    ///
    /// [`MeshError::EmptyMesh`] if there are no triangles.
    pub fn from_parts(
        domain: Rect,
        points: Vec<Point2>,
        triangles: Vec<[usize; 3]>,
    ) -> Result<Self, MeshError> {
        Self::from_parts_with_boundary(domain, None, points, triangles)
    }

    /// Assembles a mesh of a polygonal die: `domain` is the bounding box,
    /// `boundary` the actual outline (used by containment queries).
    ///
    /// # Errors
    ///
    /// - [`MeshError::EmptyMesh`] if there are no triangles,
    /// - [`MeshError::InvalidVertexIndex`] if a triangle references a
    ///   vertex outside the point list,
    /// - [`MeshError::DegenerateTriangle`] if a triangle has zero or
    ///   non-finite area (a sliver would put a zero on the diagonal of
    ///   the mass matrix `Φ` and break the eigenproblem reduction).
    pub fn from_parts_with_boundary(
        domain: Rect,
        boundary: Option<Polygon>,
        points: Vec<Point2>,
        triangles: Vec<[usize; 3]>,
    ) -> Result<Self, MeshError> {
        if triangles.is_empty() {
            return Err(MeshError::EmptyMesh);
        }
        let mut centroids = Vec::with_capacity(triangles.len());
        let mut areas = Vec::with_capacity(triangles.len());
        let mut max_side = 0.0f64;
        for (i, &[a, b, c]) in triangles.iter().enumerate() {
            for v in [a, b, c] {
                if v >= points.len() {
                    return Err(MeshError::InvalidVertexIndex {
                        triangle: i,
                        vertex: v,
                        points: points.len(),
                    });
                }
            }
            let t = Triangle::new(points[a], points[b], points[c]);
            let area = t.area();
            if !(area.is_finite() && area > 0.0) {
                return Err(MeshError::DegenerateTriangle { index: i, area });
            }
            centroids.push(t.centroid());
            areas.push(area);
            max_side = max_side.max(t.longest_side());
        }
        Ok(Mesh {
            domain,
            boundary,
            points,
            triangles,
            centroids,
            areas,
            max_side,
        })
    }

    /// The rectangular die region (the bounding box, for polygonal dies).
    pub fn domain(&self) -> Rect {
        self.domain
    }

    /// The polygonal die outline, if this mesh covers a non-rectangular
    /// die.
    pub fn boundary(&self) -> Option<&Polygon> {
        self.boundary.as_ref()
    }

    /// Is `p` inside the meshed die (polygon outline when present, the
    /// rectangle otherwise)?
    pub fn domain_contains(&self, p: Point2) -> bool {
        match &self.boundary {
            Some(poly) => poly.contains(p),
            None => self.domain.contains(p),
        }
    }

    /// Mesh vertices.
    pub fn points(&self) -> &[Point2] {
        &self.points
    }

    /// Triangles as CCW vertex-index triples.
    pub fn triangle_indices(&self) -> &[[usize; 3]] {
        &self.triangles
    }

    /// Number of triangles `n` — the Galerkin basis size.
    pub fn len(&self) -> usize {
        self.triangles.len()
    }

    /// A mesh is never empty (construction rejects that).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The `i`-th triangle as a geometric [`Triangle`].
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    pub fn triangle(&self, i: usize) -> Triangle {
        let [a, b, c] = self.triangles[i];
        Triangle::new(self.points[a], self.points[b], self.points[c])
    }

    /// Iterator over all triangles.
    pub fn iter(&self) -> impl Iterator<Item = Triangle> + '_ {
        (0..self.len()).map(move |i| self.triangle(i))
    }

    /// Per-triangle centroids `x_Δ` (quadrature nodes, paper eq. 20).
    pub fn centroids(&self) -> &[Point2] {
        &self.centroids
    }

    /// Per-triangle areas `a_i` (the diagonal of `Φ`, paper eq. 18).
    pub fn areas(&self) -> &[f64] {
        &self.areas
    }

    /// The paper's `h`: longest triangle side in the partition
    /// (Theorem 2's convergence parameter).
    pub fn max_side(&self) -> f64 {
        self.max_side
    }

    /// Sum of triangle areas; equals the domain area for a conforming
    /// mesh.
    pub fn total_area(&self) -> f64 {
        self.areas.iter().sum()
    }

    /// Quality statistics for diagnostics and tests.
    pub fn quality(&self) -> MeshQuality {
        MeshQuality::measure(self)
    }

    /// Builds a grid-backed point locator
    /// (`IndexOfContainingTriangle()` from Algorithm 2).
    pub fn locator(&self) -> TriangleLocator {
        TriangleLocator::new(self)
    }

    /// Linear-scan point location; the ablation baseline for the grid
    /// index. Returns the index of a triangle containing `p`.
    pub fn locate_linear(&self, p: Point2) -> Option<usize> {
        (0..self.len()).find(|&i| self.triangle(i).contains(p))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_triangle_mesh() -> Mesh {
        // Unit square split along the diagonal.
        let points = vec![
            Point2::new(0.0, 0.0),
            Point2::new(1.0, 0.0),
            Point2::new(1.0, 1.0),
            Point2::new(0.0, 1.0),
        ];
        let triangles = vec![[0, 1, 2], [0, 2, 3]];
        Mesh::from_parts(
            Rect::new(Point2::new(0.0, 0.0), Point2::new(1.0, 1.0)),
            points,
            triangles,
        )
        .unwrap()
    }

    #[test]
    fn precomputed_quantities() {
        let m = two_triangle_mesh();
        assert_eq!(m.len(), 2);
        assert!(!m.is_empty());
        assert_eq!(m.areas(), &[0.5, 0.5]);
        assert!((m.total_area() - 1.0).abs() < 1e-15);
        assert!((m.max_side() - 2f64.sqrt()).abs() < 1e-15);
        assert_eq!(m.centroids().len(), 2);
        assert_eq!(m.points().len(), 4);
        assert_eq!(m.triangle_indices().len(), 2);
        assert_eq!(m.iter().count(), 2);
    }

    #[test]
    fn empty_mesh_rejected() {
        let e = Mesh::from_parts(Rect::unit_die(), vec![], vec![]);
        assert_eq!(e.unwrap_err(), MeshError::EmptyMesh);
    }

    #[test]
    fn locate_linear_finds_containing() {
        let m = two_triangle_mesh();
        let i = m.locate_linear(Point2::new(0.9, 0.5)).unwrap();
        assert!(m.triangle(i).contains(Point2::new(0.9, 0.5)));
        let j = m.locate_linear(Point2::new(0.1, 0.5)).unwrap();
        assert!(m.triangle(j).contains(Point2::new(0.1, 0.5)));
        assert!(m.locate_linear(Point2::new(2.0, 2.0)).is_none());
    }

    #[test]
    fn degenerate_triangle_rejected() {
        // Three collinear points: zero area.
        let points = vec![
            Point2::new(0.0, 0.0),
            Point2::new(0.5, 0.5),
            Point2::new(1.0, 1.0),
        ];
        let e = Mesh::from_parts(Rect::unit_die(), points, vec![[0, 1, 2]]);
        assert!(matches!(
            e.unwrap_err(),
            MeshError::DegenerateTriangle { index: 0, .. }
        ));
    }

    #[test]
    fn non_finite_vertex_rejected() {
        let points = vec![
            Point2::new(0.0, 0.0),
            Point2::new(f64::NAN, 0.0),
            Point2::new(0.0, 1.0),
        ];
        let e = Mesh::from_parts(Rect::unit_die(), points, vec![[0, 1, 2]]);
        assert!(matches!(
            e.unwrap_err(),
            MeshError::DegenerateTriangle { index: 0, .. }
        ));
    }

    #[test]
    fn out_of_range_vertex_index_rejected() {
        let points = vec![Point2::new(0.0, 0.0), Point2::new(1.0, 0.0)];
        let e = Mesh::from_parts(Rect::unit_die(), points, vec![[0, 1, 7]]);
        assert_eq!(
            e.unwrap_err(),
            MeshError::InvalidVertexIndex {
                triangle: 0,
                vertex: 7,
                points: 2
            }
        );
    }

    #[test]
    fn error_display() {
        assert!(MeshError::PointBudgetExhausted { max_points: 10 }
            .to_string()
            .contains("10-point"));
        assert!(MeshError::InvalidConstraint {
            name: "max_area",
            value: -1.0
        }
        .to_string()
        .contains("max_area"));
        assert!(MeshError::EmptyMesh.to_string().contains("no triangles"));
    }
}
