//! Mesh quality statistics.

use crate::Mesh;

/// Summary statistics of a triangulation, used by diagnostics, tests and
/// the experiment logs in EXPERIMENTS.md.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MeshQuality {
    /// Number of triangles.
    pub triangles: usize,
    /// Number of vertices.
    pub vertices: usize,
    /// Smallest interior angle over the mesh, degrees.
    pub min_angle_deg: f64,
    /// Largest triangle area.
    pub max_area: f64,
    /// Smallest triangle area.
    pub min_area: f64,
    /// Longest triangle side — the paper's `h` (Theorem 2).
    pub max_side: f64,
    /// Sum of triangle areas.
    pub total_area: f64,
}

impl MeshQuality {
    /// Measures `mesh`.
    pub fn measure(mesh: &Mesh) -> Self {
        let mut min_angle = f64::INFINITY;
        let mut max_area = 0.0f64;
        let mut min_area = f64::INFINITY;
        for t in mesh.iter() {
            min_angle = min_angle.min(t.min_angle());
            max_area = max_area.max(t.area());
            min_area = min_area.min(t.area());
        }
        MeshQuality {
            triangles: mesh.len(),
            vertices: mesh.points().len(),
            min_angle_deg: min_angle.to_degrees(),
            max_area,
            min_area,
            max_side: mesh.max_side(),
            total_area: mesh.total_area(),
        }
    }
}

impl std::fmt::Display for MeshQuality {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} triangles / {} vertices, min angle {:.1} deg, area [{:.2e}, {:.2e}], h = {:.3e}",
            self.triangles,
            self.vertices,
            self.min_angle_deg,
            self.min_area,
            self.max_area,
            self.max_side
        )
    }
}

#[cfg(test)]
mod tests {
    use crate::MeshBuilder;
    use klest_geometry::Rect;

    #[test]
    fn quality_is_consistent_with_mesh() {
        let mesh = MeshBuilder::new(Rect::unit_die())
            .max_area(0.05)
            .min_angle_degrees(25.0)
            .build()
            .unwrap();
        let q = mesh.quality();
        assert_eq!(q.triangles, mesh.len());
        assert_eq!(q.vertices, mesh.points().len());
        assert!(q.min_area > 0.0);
        assert!(q.min_area <= q.max_area);
        assert!(q.max_area <= 0.05 * (1.0 + 1e-9));
        assert!((q.total_area - 4.0).abs() < 1e-9);
        assert_eq!(q.max_side, mesh.max_side());
        let text = q.to_string();
        assert!(text.contains("triangles"));
        assert!(text.contains("min angle"));
    }

    #[test]
    fn euler_formula_sanity() {
        // For a triangulated disk (simply connected): V - E + F = 1 where
        // F counts triangles; E = (3F + boundary_edges) / 2. We just check
        // the derived inequality F < 2V which holds for planar
        // triangulations.
        let mesh = MeshBuilder::new(Rect::unit_die())
            .max_area(0.02)
            .build()
            .unwrap();
        let q = mesh.quality();
        assert!(q.triangles < 2 * q.vertices);
    }
}
