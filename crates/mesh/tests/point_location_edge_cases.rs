//! Point-location edge cases: queries exactly on vertices, exactly on
//! shared edges, just outside the hull, and the degenerate-input
//! rejection paths of [`Mesh::from_parts`]. These are the boundary
//! conditions `IndexOfContainingTriangle()` (Algorithm 2) must survive
//! when gates land on mesh seams.

use klest_geometry::{Point2, Rect};
use klest_mesh::{Mesh, MeshBuilder, MeshError};
use klest_rng::{Rng, SeedableRng, StdRng};

/// Unit square split along the main diagonal into two triangles.
fn two_triangle_mesh() -> Mesh {
    let points = vec![
        Point2::new(0.0, 0.0),
        Point2::new(1.0, 0.0),
        Point2::new(1.0, 1.0),
        Point2::new(0.0, 1.0),
    ];
    Mesh::from_parts(
        Rect::new(Point2::new(0.0, 0.0), Point2::new(1.0, 1.0)),
        points,
        vec![[0, 1, 2], [0, 2, 3]],
    )
    .expect("two-triangle unit square is a valid mesh")
}

#[test]
fn query_on_vertex_is_located() {
    let mesh = two_triangle_mesh();
    let locator = mesh.locator();
    // Every mesh vertex belongs to at least one triangle; the locator
    // must report one that actually contains it.
    for &v in mesh.points() {
        let idx = locator.locate(v).unwrap_or_else(|| {
            panic!("vertex {v:?} not located");
        });
        assert!(
            mesh.triangle(idx).contains(v),
            "triangle {idx} does not contain its own vertex {v:?}"
        );
    }
}

#[test]
fn query_on_shared_edge_is_located_consistently() {
    let mesh = two_triangle_mesh();
    let locator = mesh.locator();
    // Midpoint of the diagonal shared by both triangles: either index is
    // acceptable, but the reported triangle must contain the point and
    // the linear scan must agree up to the same ambiguity.
    let on_edge = Point2::new(0.5, 0.5);
    let fast = locator.locate(on_edge).expect("edge point located");
    assert!(mesh.triangle(fast).contains(on_edge));
    let slow = mesh.locate_linear(on_edge).expect("linear scan finds it");
    assert!(mesh.triangle(slow).contains(on_edge));

    // Midpoints of the boundary edges as well.
    for p in [
        Point2::new(0.5, 0.0),
        Point2::new(1.0, 0.5),
        Point2::new(0.5, 1.0),
        Point2::new(0.0, 0.5),
    ] {
        let idx = locator.locate(p).expect("boundary edge point located");
        assert!(mesh.triangle(idx).contains(p), "{p:?} not in triangle {idx}");
    }
}

#[test]
fn query_outside_hull_misses_and_clamps() {
    let mesh = two_triangle_mesh();
    let locator = mesh.locator();
    for p in [
        Point2::new(-0.1, 0.5),
        Point2::new(1.1, 0.5),
        Point2::new(0.5, -1e-9),
        Point2::new(2.0, 2.0),
    ] {
        assert_eq!(locator.locate(p), None, "{p:?} should be outside");
        assert_eq!(mesh.locate_linear(p), None);
        // The never-fail variant clamps to a valid triangle and reports
        // that clamping happened.
        let (idx, clamped) = locator.locate_or_nearest(p);
        assert!(clamped, "{p:?} should have been clamped");
        assert!(idx < mesh.len());
    }
    // Inside points are never flagged as clamped.
    let (_, clamped) = locator.locate_or_nearest(Point2::new(0.25, 0.25));
    assert!(!clamped);
}

#[test]
fn collinear_triangle_is_rejected_as_degenerate() {
    let points = vec![
        Point2::new(0.0, 0.0),
        Point2::new(0.5, 0.5),
        Point2::new(1.0, 1.0),
    ];
    let err = Mesh::from_parts(Rect::unit_die(), points, vec![[0, 1, 2]])
        .expect_err("collinear vertices must be rejected");
    assert!(matches!(err, MeshError::DegenerateTriangle { index: 0, .. }));
}

#[test]
fn repeated_vertex_triangle_is_rejected_as_degenerate() {
    let p = Point2::new(0.25, 0.25);
    let points = vec![p, p, Point2::new(0.75, 0.5)];
    let err = Mesh::from_parts(Rect::unit_die(), points, vec![[0, 1, 2]])
        .expect_err("zero-area (repeated-vertex) triangle must be rejected");
    assert!(matches!(err, MeshError::DegenerateTriangle { index: 0, .. }));
}

/// On a refined production-style mesh, the grid locator and the
/// exhaustive linear scan agree for random interior, boundary-hugging
/// and exterior queries.
#[test]
fn locator_matches_linear_scan_on_refined_mesh() {
    let mesh = MeshBuilder::new(Rect::unit_die())
        .max_area_fraction(0.02)
        .min_angle_degrees(25.0)
        .build()
        .expect("refined unit-die mesh");
    let locator = mesh.locator();
    let mut rng = StdRng::seed_from_u64(0x10_CA7E);
    for _ in 0..500 {
        let p = Point2::new(rng.gen_range(-1.2..1.2), rng.gen_range(-1.2..1.2));
        let fast = locator.locate(p);
        let slow = mesh.locate_linear(p);
        match (fast, slow) {
            (None, None) => {}
            (Some(i), Some(j)) => {
                assert!(
                    i == j || (mesh.triangle(i).contains(p) && mesh.triangle(j).contains(p)),
                    "locator {i} vs linear {j} at {p:?}"
                );
            }
            (got, want) => panic!("locator {got:?} vs linear {want:?} at {p:?}"),
        }
    }
    // Every mesh vertex and every edge midpoint of every triangle is
    // located inside a containing triangle.
    for i in 0..mesh.len() {
        let t = mesh.triangle(i);
        let [a, b, c] = t.vertices();
        for p in [a, b, c, a.midpoint(b), b.midpoint(c), c.midpoint(a)] {
            let idx = locator
                .locate(p)
                .unwrap_or_else(|| panic!("seam point {p:?} of triangle {i} not located"));
            assert!(mesh.triangle(idx).contains(p));
        }
    }
}
