//! A small in-tree JSON writer.
//!
//! The workspace builds fully offline, so run reports cannot lean on
//! `serde_json`. This value type covers exactly what a
//! [`crate::report::RunReport`] needs: deterministic rendering (object
//! keys keep their insertion order — callers sort where sorting is the
//! contract) and a hard guarantee that non-finite floats never leak into
//! the output (they render as `null`, keeping every report parseable).

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A float; NaN and ±∞ render as `null`.
    Num(f64),
    /// An unsigned integer (span timings, counters).
    UInt(u64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; keys render in insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Convenience constructor for string values.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Convenience constructor for objects from `(key, value)` pairs.
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Renders the value as pretty-printed JSON (two-space indent) with a
    /// trailing newline.
    pub fn to_pretty_string(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    /// Renders the value as single-line compact JSON (no whitespace, no
    /// trailing newline) — the shape newline-delimited metrics streams
    /// need, with the same escaping and non-finite→`null` guarantees as
    /// the pretty printer.
    pub fn to_compact_string(&self) -> String {
        let mut out = String::new();
        self.write_compact(&mut out);
        out
    }

    fn write_compact(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(v) => {
                if v.is_finite() {
                    let _ = write!(out, "{v}");
                } else {
                    out.push_str("null");
                }
            }
            Json::UInt(v) => {
                let _ = write!(out, "{v}");
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write_compact(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, k);
                    out.push(':');
                    v.write_compact(out);
                }
                out.push('}');
            }
        }
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(v) => {
                if v.is_finite() {
                    // Display for f64 is shortest-roundtrip decimal, which
                    // is always valid JSON.
                    let _ = write!(out, "{v}");
                } else {
                    out.push_str("null");
                }
            }
            Json::UInt(v) => {
                let _ = write!(out, "{v}");
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    item.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push(']');
            }
            Json::Obj(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push('}');
            }
        }
    }
}

fn push_indent(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

/// Writes `s` as a quoted JSON string with the mandatory escapes.
fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_render() {
        assert_eq!(Json::Null.to_pretty_string(), "null\n");
        assert_eq!(Json::Bool(true).to_pretty_string(), "true\n");
        assert_eq!(Json::UInt(42).to_pretty_string(), "42\n");
        assert_eq!(Json::Num(1.5).to_pretty_string(), "1.5\n");
        assert_eq!(Json::str("hi").to_pretty_string(), "\"hi\"\n");
    }

    #[test]
    fn non_finite_floats_become_null() {
        assert_eq!(Json::Num(f64::NAN).to_pretty_string(), "null\n");
        assert_eq!(Json::Num(f64::INFINITY).to_pretty_string(), "null\n");
        assert_eq!(Json::Num(f64::NEG_INFINITY).to_pretty_string(), "null\n");
    }

    #[test]
    fn strings_escape_controls_and_quotes() {
        let s = Json::str("a\"b\\c\nd\te\u{1}").to_pretty_string();
        assert_eq!(s, "\"a\\\"b\\\\c\\nd\\te\\u0001\"\n");
    }

    #[test]
    fn objects_keep_insertion_order() {
        let v = Json::obj(vec![
            ("zeta", Json::UInt(1)),
            ("alpha", Json::Arr(vec![Json::UInt(2), Json::Null])),
        ]);
        let s = v.to_pretty_string();
        let zeta = s.find("zeta").expect("zeta key");
        let alpha = s.find("alpha").expect("alpha key");
        assert!(zeta < alpha, "insertion order preserved:\n{s}");
        assert!(s.contains("[\n"), "arrays pretty-print:\n{s}");
    }

    #[test]
    fn empty_containers_are_compact() {
        assert_eq!(Json::Arr(vec![]).to_pretty_string(), "[]\n");
        assert_eq!(Json::Obj(vec![]).to_pretty_string(), "{}\n");
    }

    #[test]
    fn compact_rendering_is_single_line_and_escaped() {
        let v = Json::obj(vec![
            ("s", Json::str("a\"b\nc")),
            ("n", Json::Num(f64::NAN)),
            ("a", Json::Arr(vec![Json::UInt(1), Json::Bool(false)])),
            ("o", Json::Obj(vec![])),
        ]);
        assert_eq!(
            v.to_compact_string(),
            r#"{"s":"a\"b\nc","n":null,"a":[1,false],"o":{}}"#
        );
    }
}
