//! `klest-obs` — zero-dependency observability for the KLE→SSTA
//! pipeline: hierarchical span timers, a thread-safe metrics registry
//! (counters / gauges / histograms), an event log for degradation
//! repairs, and a machine-readable run-report serializer.
//!
//! Design constraints (see DESIGN.md, "Observability"):
//!
//! - **std-only.** The workspace builds with an empty registry; the JSON
//!   writer is in-tree ([`json`]).
//! - **Off by default, near-free when off.** All recording funnels
//!   through a global [`enabled`] switch; with the sink off a `span()`
//!   or `counter_add()` call is one relaxed atomic load — no clock
//!   reads, no allocation, no locks — so instrumented hot paths bench
//!   identically to uninstrumented ones.
//! - **Exact under concurrency.** Counters are atomics; histogram bins
//!   sit behind a mutex; both survive the scoped-thread parallelism of
//!   the Monte Carlo loop without losing updates.
//! - **Deterministic reports.** Metric maps serialise name-sorted, spans
//!   in first-seen order, events in record order; non-finite floats
//!   render as `null`. For a fixed seeded run, two reports differ only
//!   in timing values.
//!
//! Typical use:
//!
//! ```
//! klest_obs::reset();
//! klest_obs::enable();
//! {
//!     let _outer = klest_obs::span("kle");
//!     let _inner = klest_obs::span("galerkin/assemble");
//!     klest_obs::counter_add("galerkin.kernel_evals", 128);
//! }
//! let report = klest_obs::report::RunReport::collect(
//!     "klest", "0.1.0", "kle", &["kle".to_string()]);
//! let json = report.to_json();
//! assert!(json.contains("\"kle/galerkin/assemble\""));
//! klest_obs::disable();
//! klest_obs::reset();
//! ```

pub mod json;
pub mod registry;
pub mod report;
pub mod span;
pub mod window;

pub use registry::{
    counter, counter_add, disable, enable, enabled, event, gauge_set, histogram,
    histogram_observe, reset, snapshot, Counter, Event, HistState, Histogram, Snapshot, SpanEntry,
    DEFAULT_BOUNDS,
};
pub use report::{render_trace, span_tree, RunReport, SpanNode};
pub use span::{capture_begin, capture_end, span, SpanGuard};
pub use window::{
    DeadlineSlo, MetricsRates, MetricsSnapshot, SlidingWindow, SloSnapshot, LATENCY_MS_BOUNDS,
};

#[cfg(test)]
pub(crate) fn test_lock() -> std::sync::MutexGuard<'static, ()> {
    // The registry is process-global; tests that enable/reset it must
    // not interleave. Poisoning is irrelevant for a unit value.
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}
