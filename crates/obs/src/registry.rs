//! The process-wide metrics/span/event registry behind the `klest-obs`
//! facade.
//!
//! One global [`Registry`] sits behind an `AtomicBool` master switch.
//! Every recording entry point checks the switch first, so with the sink
//! off the instrumentation scattered through the numeric crates costs a
//! single relaxed atomic load — no allocation, no locking, no timestamp
//! reads. Benches with reporting disabled therefore measure the same
//! machine code they measured before the instrumentation existed.
//!
//! Concurrency: counters are atomics (lock-free once a [`Counter`]
//! handle is held), histograms keep their bins behind a `Mutex` (exact
//! totals under the scoped-thread hammering the parallel Monte Carlo
//! loop produces), and the span store / event log are mutexed vectors.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock};

/// Locks a mutex, recovering the data from a poisoned lock: a panicking
/// thread must not take the whole registry (and every later report) down
/// with it — metrics are diagnostics, not invariants.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// A monotonically increasing counter handle.
///
/// Handles share the underlying atomic: clone freely, increment from any
/// thread. Note that a handle obtained via [`counter`] bypasses the
/// enabled check — hot loops that cache a handle should themselves be
/// gated on [`enabled`], or use [`counter_add`] which checks.
#[derive(Debug, Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Histogram state; doubles as the snapshot type.
#[derive(Debug, Clone, PartialEq)]
pub struct HistState {
    /// Upper bucket bounds (inclusive), ascending.
    pub bounds: Vec<f64>,
    /// Per-bucket counts; `counts.len() == bounds.len() + 1`, the last
    /// bucket collecting everything above the largest bound.
    pub counts: Vec<u64>,
    /// Total observations.
    pub count: u64,
    /// Sum of observed values.
    pub sum: f64,
    /// Smallest observation (`+∞` while empty; reports render `null`).
    pub min: f64,
    /// Largest observation (`-∞` while empty; reports render `null`).
    pub max: f64,
}

impl HistState {
    fn new(bounds: &[f64]) -> Self {
        HistState {
            bounds: bounds.to_vec(),
            counts: vec![0; bounds.len() + 1],
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// An empty state with the given (ascending, inclusive-upper) bucket
    /// bounds. Public so windowed aggregators ([`crate::window`]) can
    /// build sub-histograms sharing this snapshot type.
    pub fn with_bounds(bounds: &[f64]) -> Self {
        HistState::new(bounds)
    }

    /// Records one finite observation directly into this state (the
    /// lock-free core of [`Histogram::observe`]; callers own the
    /// synchronisation). Non-finite values are dropped.
    pub fn record(&mut self, v: f64) {
        if !v.is_finite() {
            return;
        }
        let i = self
            .bounds
            .iter()
            .position(|&b| v <= b)
            .unwrap_or(self.bounds.len());
        self.counts[i] += 1;
        self.count += 1;
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Folds `other` into `self`. Bucket counts are added positionally,
    /// so both states must share bounds (windowed slots do by
    /// construction); mismatched shapes fold only the shared prefix and
    /// spill the rest into the overflow bucket.
    pub fn merge_from(&mut self, other: &HistState) {
        for (i, &c) in other.counts.iter().enumerate() {
            let last = self.counts.len() - 1;
            self.counts[i.min(last)] += c;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Mean of the observed values (`NaN`-free: `None` while empty).
    pub fn mean(&self) -> Option<f64> {
        if self.count == 0 {
            None
        } else {
            Some(self.sum / self.count as f64)
        }
    }

    /// Streaming quantile estimate for `q ∈ [0, 1]` by linear
    /// interpolation inside the bucket containing the target order
    /// statistic, clamped to the exact observed `[min, max]`. The error
    /// versus the exact sorted quantile is bounded by the width of that
    /// bucket (both values lie inside it). `None` while empty or for an
    /// out-of-range/non-finite `q`.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.count == 0 || !q.is_finite() || !(0.0..=1.0).contains(&q) {
            return None;
        }
        // 1-based rank of the order statistic at quantile q: the
        // smallest value with at least ceil(q * count) observations at
        // or below it.
        let target = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut below = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            if below + c >= target {
                // Bucket i spans (lo, hi]; interpolate by rank within it.
                let lo = if i == 0 {
                    self.min
                } else {
                    self.bounds[i - 1]
                };
                let hi = if i < self.bounds.len() {
                    self.bounds[i]
                } else {
                    self.max
                };
                let frac = (target - below) as f64 / c as f64;
                let est = lo + frac * (hi - lo);
                return Some(est.clamp(self.min, self.max));
            }
            below += c;
        }
        // Unreachable for consistent counts; fall back to the max.
        Some(self.max)
    }
}

/// A histogram with mutex-guarded bins (exact under concurrency).
#[derive(Debug)]
pub struct Histogram {
    inner: Mutex<HistState>,
}

impl Histogram {
    fn new(bounds: &[f64]) -> Self {
        Histogram {
            inner: Mutex::new(HistState::new(bounds)),
        }
    }

    /// Records one observation. Non-finite values are dropped (they would
    /// poison `sum` and leak into reports), never counted.
    pub fn observe(&self, v: f64) {
        lock(&self.inner).record(v);
    }

    /// Copies the current state out.
    pub fn snapshot(&self) -> HistState {
        lock(&self.inner).clone()
    }
}

/// One completed-span accumulation line: full slash-separated path,
/// number of completions and total wall time.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanEntry {
    /// Slash-separated path, e.g. `ssta/kle/galerkin/assemble`.
    pub path: String,
    /// How many guards with this path completed.
    pub count: u64,
    /// Accumulated wall-clock nanoseconds.
    pub wall_ns: u64,
}

/// One recorded event (e.g. a degradation repair), in record order.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Free-form category, e.g. `degradation`.
    pub category: String,
    /// Human-readable message.
    pub message: String,
}

/// A point-in-time copy of everything the registry holds. Metric maps
/// are sorted by name (BTreeMap order); spans keep first-seen order and
/// events keep record order.
#[derive(Debug, Clone, Default)]
pub struct Snapshot {
    /// Counter values by name.
    pub counters: Vec<(String, u64)>,
    /// Gauge values by name.
    pub gauges: Vec<(String, f64)>,
    /// Histogram states by name.
    pub histograms: Vec<(String, HistState)>,
    /// Completed spans in first-seen order.
    pub spans: Vec<SpanEntry>,
    /// Events in record order.
    pub events: Vec<Event>,
}

pub(crate) struct Registry {
    enabled: AtomicBool,
    counters: Mutex<BTreeMap<String, Counter>>,
    gauges: Mutex<BTreeMap<String, f64>>,
    histograms: Mutex<BTreeMap<String, Arc<Histogram>>>,
    // First-seen order matters for trace rendering; linear lookup is fine
    // for the few dozen span paths a run produces.
    spans: Mutex<Vec<SpanEntry>>,
    events: Mutex<Vec<Event>>,
}

impl Registry {
    fn new() -> Self {
        Registry {
            enabled: AtomicBool::new(false),
            counters: Mutex::new(BTreeMap::new()),
            gauges: Mutex::new(BTreeMap::new()),
            histograms: Mutex::new(BTreeMap::new()),
            spans: Mutex::new(Vec::new()),
            events: Mutex::new(Vec::new()),
        }
    }
}

static REGISTRY: OnceLock<Registry> = OnceLock::new();

pub(crate) fn registry() -> &'static Registry {
    REGISTRY.get_or_init(Registry::new)
}

/// Turns the global sink on. Until this is called every recording entry
/// point is a near no-op (one relaxed atomic load).
pub fn enable() {
    registry().enabled.store(true, Ordering::SeqCst);
}

/// Turns the global sink off. Already-collected data stays readable via
/// [`snapshot`] until the next [`reset`].
pub fn disable() {
    registry().enabled.store(false, Ordering::SeqCst);
}

/// Whether the sink is on. Instrumented code gates any work beyond a
/// plain function call (loops, formatting, `Instant::now`) on this.
#[inline]
pub fn enabled() -> bool {
    registry().enabled.load(Ordering::Relaxed)
}

/// Clears all metrics, spans and events. The enabled flag is untouched.
pub fn reset() {
    let r = registry();
    lock(&r.counters).clear();
    lock(&r.gauges).clear();
    lock(&r.histograms).clear();
    lock(&r.spans).clear();
    lock(&r.events).clear();
}

/// Returns (registering on first use) the counter handle for `name`.
pub fn counter(name: &str) -> Counter {
    let mut c = lock(&registry().counters);
    match c.get(name) {
        Some(existing) => existing.clone(),
        None => {
            let fresh = Counter::default();
            c.insert(name.to_string(), fresh.clone());
            fresh
        }
    }
}

/// Adds `n` to counter `name` if the sink is on; near no-op otherwise.
pub fn counter_add(name: &str, n: u64) {
    if enabled() {
        counter(name).add(n);
    }
}

/// Sets gauge `name` to `v` (last write wins) if the sink is on.
pub fn gauge_set(name: &str, v: f64) {
    if enabled() {
        lock(&registry().gauges).insert(name.to_string(), v);
    }
}

/// Default histogram bounds: one decade per bucket across the ranges the
/// pipeline's millisecond-scale timings and dimensionless ratios occupy.
pub const DEFAULT_BOUNDS: [f64; 10] = [
    1e-3, 1e-2, 1e-1, 1.0, 10.0, 100.0, 1e3, 1e4, 1e5, 1e6,
];

/// Returns (registering with `bounds` on first use) the histogram
/// `name`. The bounds of the first registration win.
pub fn histogram(name: &str, bounds: &[f64]) -> Arc<Histogram> {
    let mut h = lock(&registry().histograms);
    match h.get(name) {
        Some(existing) => Arc::clone(existing),
        None => {
            let fresh = Arc::new(Histogram::new(bounds));
            h.insert(name.to_string(), Arc::clone(&fresh));
            fresh
        }
    }
}

/// Observes `v` in histogram `name` (default decade bounds) if the sink
/// is on; near no-op otherwise.
pub fn histogram_observe(name: &str, v: f64) {
    if enabled() {
        histogram(name, &DEFAULT_BOUNDS).observe(v);
    }
}

/// Records an event if the sink is on. Degradation repairs route through
/// here so a run report carries them next to the timings they explain.
pub fn event(category: &str, message: &str) {
    if enabled() {
        lock(&registry().events).push(Event {
            category: category.to_string(),
            message: message.to_string(),
        });
    }
}

/// Accumulates one completed span into the store (first-seen order).
pub(crate) fn record_span(path: &str, wall_ns: u64) {
    let mut spans = lock(&registry().spans);
    match spans.iter_mut().find(|e| e.path == path) {
        Some(e) => {
            e.count += 1;
            e.wall_ns = e.wall_ns.saturating_add(wall_ns);
        }
        None => spans.push(SpanEntry {
            path: path.to_string(),
            count: 1,
            wall_ns,
        }),
    }
}

/// Copies everything out of the registry.
pub fn snapshot() -> Snapshot {
    let r = registry();
    Snapshot {
        counters: lock(&r.counters)
            .iter()
            .map(|(k, v)| (k.clone(), v.get()))
            .collect(),
        gauges: lock(&r.gauges).iter().map(|(k, &v)| (k.clone(), v)).collect(),
        histograms: lock(&r.histograms)
            .iter()
            .map(|(k, v)| (k.clone(), v.snapshot()))
            .collect(),
        spans: lock(&r.spans).clone(),
        events: lock(&r.events).clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_lock;

    #[test]
    fn disabled_sink_records_nothing() {
        let _g = test_lock();
        reset();
        disable();
        counter_add("t.c", 5);
        gauge_set("t.g", 1.0);
        histogram_observe("t.h", 2.0);
        event("cat", "msg");
        let s = snapshot();
        assert!(s.counters.is_empty());
        assert!(s.gauges.is_empty());
        assert!(s.histograms.is_empty());
        assert!(s.events.is_empty());
    }

    #[test]
    fn enabled_sink_accumulates() {
        let _g = test_lock();
        reset();
        enable();
        counter_add("t.c", 5);
        counter_add("t.c", 2);
        gauge_set("t.g", 1.0);
        gauge_set("t.g", 3.5);
        histogram_observe("t.h", 0.5);
        histogram_observe("t.h", 50.0);
        histogram_observe("t.h", f64::NAN); // dropped
        event("cat", "msg");
        let s = snapshot();
        assert_eq!(s.counters, vec![("t.c".to_string(), 7)]);
        assert_eq!(s.gauges, vec![("t.g".to_string(), 3.5)]);
        let (_, h) = &s.histograms[0];
        assert_eq!(h.count, 2);
        assert_eq!(h.sum, 50.5);
        assert_eq!(h.min, 0.5);
        assert_eq!(h.max, 50.0);
        assert_eq!(h.counts.iter().sum::<u64>(), 2);
        assert_eq!(s.events.len(), 1);
        disable();
        reset();
    }

    #[test]
    fn histogram_bucket_edges_are_inclusive() {
        let h = Histogram::new(&[1.0, 10.0]);
        h.observe(1.0); // first bucket (v <= 1.0)
        h.observe(1.5); // second bucket
        h.observe(11.0); // overflow bucket
        let s = h.snapshot();
        assert_eq!(s.counts, vec![1, 1, 1]);
        assert_eq!(s.mean(), Some((1.0 + 1.5 + 11.0) / 3.0));
        assert_eq!(Histogram::new(&[1.0]).snapshot().mean(), None);
    }

    #[test]
    fn metrics_registry_is_exact_under_scoped_thread_hammering() {
        // Satellite: the same shape of concurrency the parallel Monte
        // Carlo loop produces — scoped threads all incrementing the same
        // counter and observing into the same histogram. Totals must be
        // exact: atomics for counters, a mutex for histogram bins.
        let _g = test_lock();
        reset();
        enable();
        const THREADS: usize = 8;
        const PER_THREAD: usize = 10_000;
        let c = counter("hammer.count");
        let h = histogram("hammer.hist", &[0.25, 0.5, 0.75]);
        std::thread::scope(|scope| {
            for t in 0..THREADS {
                let c = c.clone();
                let h = Arc::clone(&h);
                scope.spawn(move || {
                    for i in 0..PER_THREAD {
                        c.add(1);
                        counter_add("hammer.count2", 1);
                        h.observe((i % 4) as f64 * 0.25);
                        let _ = t;
                    }
                });
            }
        });
        let s = snapshot();
        let total = (THREADS * PER_THREAD) as u64;
        let get = |name: &str| {
            s.counters
                .iter()
                .find(|(k, _)| k == name)
                .map(|(_, v)| *v)
                .expect("counter exists")
        };
        assert_eq!(get("hammer.count"), total, "handle increments lost");
        assert_eq!(get("hammer.count2"), total, "by-name increments lost");
        let hist = &s
            .histograms
            .iter()
            .find(|(k, _)| k == "hammer.hist")
            .expect("histogram exists")
            .1;
        assert_eq!(hist.count, total, "histogram observations lost");
        // i % 4 yields 0.0/0.25/0.5/0.75; bounds are inclusive, so both
        // 0.0 and 0.25 land in the first bucket and nothing overflows.
        assert_eq!(
            hist.counts,
            vec![total / 2, total / 4, total / 4, 0],
            "histogram bin counts lost or misplaced"
        );
        assert_eq!(hist.min, 0.0);
        assert_eq!(hist.max, 0.75);
        disable();
        reset();
    }

    #[test]
    fn reset_clears_everything_but_keeps_enabled_flag() {
        let _g = test_lock();
        reset();
        enable();
        counter_add("r.c", 1);
        event("a", "b");
        reset();
        assert!(enabled(), "reset must not flip the switch");
        let s = snapshot();
        assert!(s.counters.is_empty() && s.events.is_empty());
        disable();
    }
}
