//! Machine-readable run reports and the human trace rendering.
//!
//! Schema `klest-run-report/v1` (documented in DESIGN.md,
//! "Observability"): a top-level object with `schema`, `tool`,
//! `command`, `argv`, then `spans` (the nested timer tree), `counters`,
//! `gauges`, `histograms` (all name-sorted) and `events` (record order).
//! Rendering is deterministic — for a fixed seeded command the byte
//! stream differs between runs only in timing values — and non-finite
//! floats are rendered as `null` by the JSON writer, never `NaN`/`Inf`.

use crate::json::Json;
use crate::registry::{HistState, Snapshot, SpanEntry};

/// One node of the reconstructed span tree.
#[derive(Debug, Clone)]
pub struct SpanNode {
    /// Last path segment.
    pub name: String,
    /// Full slash-separated path.
    pub path: String,
    /// Completions recorded directly at this path (0 for a node that
    /// exists only as a prefix of deeper paths).
    pub count: u64,
    /// Accumulated wall nanoseconds recorded directly at this path.
    pub wall_ns: u64,
    /// Child nodes, first-seen order.
    pub children: Vec<SpanNode>,
}

/// Rebuilds the span tree from the flat path-keyed entries, preserving
/// first-seen order and creating empty intermediate nodes for paths that
/// were only ever seen as prefixes.
pub fn span_tree(entries: &[SpanEntry]) -> Vec<SpanNode> {
    let mut roots: Vec<SpanNode> = Vec::new();
    for e in entries {
        let mut nodes = &mut roots;
        let mut prefix = String::new();
        let mut segments = e.path.split('/').peekable();
        while let Some(seg) = segments.next() {
            if !prefix.is_empty() {
                prefix.push('/');
            }
            prefix.push_str(seg);
            let pos = match nodes.iter().position(|n| n.name == seg) {
                Some(i) => i,
                None => {
                    nodes.push(SpanNode {
                        name: seg.to_string(),
                        path: prefix.clone(),
                        count: 0,
                        wall_ns: 0,
                        children: Vec::new(),
                    });
                    nodes.len() - 1
                }
            };
            if segments.peek().is_none() {
                nodes[pos].count += e.count;
                nodes[pos].wall_ns = nodes[pos].wall_ns.saturating_add(e.wall_ns);
            }
            nodes = &mut nodes[pos].children;
        }
    }
    roots
}

/// A collected run report ready for serialisation.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Tool name (e.g. `klest`).
    pub tool: String,
    /// Tool version.
    pub version: String,
    /// The subcommand that ran.
    pub command: String,
    /// Full argument vector (including the subcommand).
    pub argv: Vec<String>,
    /// Registry contents at collection time.
    pub snapshot: Snapshot,
}

impl RunReport {
    /// Snapshots the global registry into a report.
    pub fn collect(tool: &str, version: &str, command: &str, argv: &[String]) -> Self {
        RunReport {
            tool: tool.to_string(),
            version: version.to_string(),
            command: command.to_string(),
            argv: argv.to_vec(),
            snapshot: crate::snapshot(),
        }
    }

    /// Renders the report as pretty-printed JSON (trailing newline).
    pub fn to_json(&self) -> String {
        let spans = span_tree(&self.snapshot.spans);
        Json::obj(vec![
            ("schema", Json::str("klest-run-report/v1")),
            (
                "tool",
                Json::obj(vec![
                    ("name", Json::str(&self.tool)),
                    ("version", Json::str(&self.version)),
                ]),
            ),
            ("command", Json::str(&self.command)),
            (
                "argv",
                Json::Arr(self.argv.iter().map(Json::str).collect()),
            ),
            ("spans", Json::Arr(spans.iter().map(span_to_json).collect())),
            (
                "counters",
                Json::Obj(
                    self.snapshot
                        .counters
                        .iter()
                        .map(|(k, v)| (k.clone(), Json::UInt(*v)))
                        .collect(),
                ),
            ),
            (
                "gauges",
                Json::Obj(
                    self.snapshot
                        .gauges
                        .iter()
                        .map(|(k, v)| (k.clone(), Json::Num(*v)))
                        .collect(),
                ),
            ),
            (
                "histograms",
                Json::Obj(
                    self.snapshot
                        .histograms
                        .iter()
                        .map(|(k, h)| (k.clone(), hist_to_json(h)))
                        .collect(),
                ),
            ),
            (
                "events",
                Json::Arr(
                    self.snapshot
                        .events
                        .iter()
                        .map(|e| {
                            Json::obj(vec![
                                ("category", Json::str(&e.category)),
                                ("message", Json::str(&e.message)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
        .to_pretty_string()
    }
}

fn span_to_json(n: &SpanNode) -> Json {
    Json::obj(vec![
        ("name", Json::str(&n.name)),
        ("path", Json::str(&n.path)),
        ("count", Json::UInt(n.count)),
        ("wall_ns", Json::UInt(n.wall_ns)),
        (
            "children",
            Json::Arr(n.children.iter().map(span_to_json).collect()),
        ),
    ])
}

fn hist_to_json(h: &HistState) -> Json {
    Json::obj(vec![
        ("count", Json::UInt(h.count)),
        ("sum", Json::Num(h.sum)),
        // Exact mean from the running sum (not bucket-midpoint
        // estimated); `None` while empty renders as null via NaN.
        ("mean", Json::Num(h.mean().unwrap_or(f64::NAN))),
        ("min", Json::Num(h.min)),
        ("max", Json::Num(h.max)),
        (
            "bounds",
            Json::Arr(h.bounds.iter().map(|&b| Json::Num(b)).collect()),
        ),
        (
            "counts",
            Json::Arr(h.counts.iter().map(|&c| Json::UInt(c)).collect()),
        ),
    ])
}

/// Human-readable duration with unit scaling.
fn fmt_ns(ns: u64) -> String {
    if ns < 10_000 {
        format!("{ns} ns")
    } else if ns < 10_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 10_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

/// Renders the current registry contents as an indented span tree plus
/// metric and event summaries — the `--trace` output.
pub fn render_trace() -> String {
    let snap = crate::snapshot();
    let mut out = String::new();
    out.push_str("-- trace: span tree (wall clock) --\n");
    fn walk(out: &mut String, nodes: &[SpanNode], depth: usize) {
        for n in nodes {
            let indent = "  ".repeat(depth);
            let label = format!("{indent}{}", n.name);
            if n.count > 0 {
                out.push_str(&format!(
                    "{label:<42} {:>4}x {:>12}\n",
                    n.count,
                    fmt_ns(n.wall_ns)
                ));
            } else {
                out.push_str(&format!("{label}\n"));
            }
            walk(out, &n.children, depth + 1);
        }
    }
    walk(&mut out, &span_tree(&snap.spans), 0);
    if !snap.counters.is_empty() {
        out.push_str("-- counters --\n");
        for (k, v) in &snap.counters {
            out.push_str(&format!("{k:<42} {v}\n"));
        }
    }
    if !snap.gauges.is_empty() {
        out.push_str("-- gauges --\n");
        for (k, v) in &snap.gauges {
            out.push_str(&format!("{k:<42} {v}\n"));
        }
    }
    if !snap.histograms.is_empty() {
        out.push_str("-- histograms --\n");
        for (k, h) in &snap.histograms {
            let mean = h.mean().map_or_else(|| "-".to_string(), |m| format!("{m:.4}"));
            out.push_str(&format!(
                "{k:<42} n={} mean={mean} min={} max={}\n",
                h.count,
                if h.count == 0 { "-".to_string() } else { format!("{:.4}", h.min) },
                if h.count == 0 { "-".to_string() } else { format!("{:.4}", h.max) },
            ));
        }
    }
    if !snap.events.is_empty() {
        out.push_str("-- events --\n");
        for e in &snap.events {
            out.push_str(&format!("[{}] {}\n", e.category, e.message));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::SpanEntry;
    use crate::test_lock;

    fn entry(path: &str, count: u64, wall_ns: u64) -> SpanEntry {
        SpanEntry {
            path: path.to_string(),
            count,
            wall_ns,
        }
    }

    #[test]
    fn tree_nests_and_creates_intermediate_nodes() {
        let entries = vec![
            entry("ssta/kle/mesh/build", 1, 10),
            entry("ssta/kle/galerkin/assemble", 1, 20),
            entry("ssta", 1, 100),
        ];
        let tree = span_tree(&entries);
        assert_eq!(tree.len(), 1);
        let ssta = &tree[0];
        assert_eq!(ssta.name, "ssta");
        assert_eq!(ssta.count, 1);
        assert_eq!(ssta.wall_ns, 100);
        let kle = &ssta.children[0];
        assert_eq!(kle.name, "kle");
        assert_eq!(kle.count, 0, "intermediate node");
        let mesh = &kle.children[0];
        assert_eq!(mesh.path, "ssta/kle/mesh");
        assert_eq!(mesh.children[0].name, "build");
        assert_eq!(kle.children[1].children[0].name, "assemble");
    }

    #[test]
    fn report_json_has_stable_shape_and_no_nonfinite() {
        let _g = test_lock();
        crate::reset();
        crate::enable();
        crate::counter_add("z.counter", 3);
        crate::counter_add("a.counter", 1);
        crate::gauge_set("g.nan", f64::NAN);
        crate::histogram_observe("h.empty_min", f64::INFINITY); // dropped
        {
            let _s = crate::span("cmd");
        }
        crate::event("degradation", "something was repaired");
        let report = RunReport::collect("klest", "0.1.0", "cmd", &["cmd".to_string()]);
        crate::disable();
        crate::reset();
        let json = report.to_json();
        assert!(json.starts_with("{\n  \"schema\": \"klest-run-report/v1\""), "{json}");
        // Name-sorted metric keys.
        let a = json.find("a.counter").expect("a.counter");
        let z = json.find("z.counter").expect("z.counter");
        assert!(a < z, "counters sorted by name");
        // Non-finite gauge renders as null, and nothing non-finite leaks.
        assert!(json.contains("\"g.nan\": null"), "{json}");
        assert!(!json.contains("NaN") && !json.contains("inf\""), "{json}");
        assert!(json.contains("\"events\""), "{json}");
        assert!(json.contains("something was repaired"));
        assert!(json.ends_with("}\n"));
    }

    #[test]
    fn trace_renders_nested_indentation() {
        let _g = test_lock();
        crate::reset();
        crate::enable();
        {
            let _outer = crate::span("outer");
            let _inner = crate::span("inner");
        }
        let trace = render_trace();
        crate::disable();
        crate::reset();
        let outer_line = trace.lines().find(|l| l.starts_with("outer")).expect("outer");
        let inner_line = trace.lines().find(|l| l.trim_start().starts_with("inner")).expect("inner");
        assert!(outer_line.contains("1x"));
        assert!(inner_line.starts_with("  "), "child indented: {inner_line:?}");
    }

    #[test]
    fn fmt_ns_scales_units() {
        assert_eq!(fmt_ns(999), "999 ns");
        assert_eq!(fmt_ns(1_500_000), "1500.00 µs");
        assert_eq!(fmt_ns(2_500_000_000), "2500.00 ms");
        assert_eq!(fmt_ns(12_000_000_000), "12.00 s");
    }
}
