//! Hierarchical wall-clock span timers.
//!
//! A span is a RAII guard: creation takes the timestamp, drop records
//! `(full path, elapsed)` into the global registry. Nesting is tracked
//! per thread — a span created while another is live on the same thread
//! gets the live span's path as a prefix, so `span("assemble")` inside
//! `span("kle")` accumulates under `kle/assemble`. Span *names* may
//! themselves contain slashes (`span("galerkin/assemble")`); the report
//! tree treats every slash as a nesting level.
//!
//! With the sink disabled, [`span`] returns an inert guard without
//! touching thread-local state or the clock.

use std::cell::RefCell;
use std::time::Instant;

use crate::registry::SpanEntry;

thread_local! {
    /// Stack of full paths of the spans live on this thread.
    static SPAN_STACK: RefCell<Vec<String>> = const { RefCell::new(Vec::new()) };

    /// Per-thread trace capture: when `Some`, completed spans on this
    /// thread also accumulate here (path-keyed, first-seen order) so a
    /// serving daemon can hand one request's stage timings back in its
    /// response without turning the global sink on.
    static CAPTURE: RefCell<Option<Vec<SpanEntry>>> = const { RefCell::new(None) };
}

/// Starts capturing completed spans on the *current thread* into a
/// private buffer (replacing any capture already active). Spans record
/// here in addition to the global registry (when [`crate::enabled`]),
/// and even with the global sink off — per-request tracing must work
/// without globally-accumulating telemetry.
pub fn capture_begin() {
    CAPTURE.with(|c| *c.borrow_mut() = Some(Vec::new()));
}

/// Stops the current thread's capture and returns the accumulated
/// spans (empty if no capture was active). Entries are path-keyed in
/// first-seen order, same semantics as the registry's span store.
pub fn capture_end() -> Vec<SpanEntry> {
    CAPTURE.with(|c| c.borrow_mut().take()).unwrap_or_default()
}

fn capture_active() -> bool {
    CAPTURE.with(|c| c.borrow().is_some())
}

fn capture_record(path: &str, wall_ns: u64) {
    CAPTURE.with(|c| {
        if let Some(entries) = c.borrow_mut().as_mut() {
            match entries.iter_mut().find(|e| e.path == path) {
                Some(e) => {
                    e.count += 1;
                    e.wall_ns = e.wall_ns.saturating_add(wall_ns);
                }
                None => entries.push(SpanEntry {
                    path: path.to_string(),
                    count: 1,
                    wall_ns,
                }),
            }
        }
    });
}

/// RAII guard for one timed region; see [`span`].
#[derive(Debug)]
pub struct SpanGuard {
    live: Option<(String, Instant)>,
}

/// Opens a span named `name` under the innermost live span of this
/// thread. Returns an inert guard when the sink is off and no capture
/// is active on this thread.
pub fn span(name: &str) -> SpanGuard {
    if !crate::enabled() && !capture_active() {
        return SpanGuard { live: None };
    }
    let path = SPAN_STACK.with(|stack| {
        let mut stack = stack.borrow_mut();
        let path = match stack.last() {
            Some(parent) => format!("{parent}/{name}"),
            None => name.to_string(),
        };
        stack.push(path.clone());
        path
    });
    SpanGuard {
        live: Some((path, Instant::now())),
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some((path, start)) = self.live.take() {
            let wall_ns = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
            SPAN_STACK.with(|stack| {
                let mut stack = stack.borrow_mut();
                // Guards drop in reverse creation order under normal
                // scoping; tolerate out-of-order drops by removing the
                // matching entry wherever it sits.
                if let Some(i) = stack.iter().rposition(|p| *p == path) {
                    stack.remove(i);
                }
            });
            if crate::enabled() {
                crate::registry::record_span(&path, wall_ns);
            }
            capture_record(&path, wall_ns);
        }
    }
}

/// Opens a span (macro form, mirroring the `span!("name")` idiom).
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::span($name)
    };
}

#[cfg(test)]
mod tests {
    use crate::{disable, enable, reset, snapshot, span, test_lock};

    #[test]
    fn disabled_spans_record_nothing() {
        let _g = test_lock();
        reset();
        disable();
        {
            let _a = span("quiet");
        }
        assert!(snapshot().spans.is_empty());
    }

    #[test]
    fn nested_spans_accumulate_under_parent_paths() {
        let _g = test_lock();
        reset();
        enable();
        {
            let _outer = span("outer");
            {
                let _inner = span("inner");
                let _ = 1 + 1;
            }
            {
                let _inner = span("inner");
            }
            let _slashed = span("a/b");
        }
        let spans = snapshot().spans;
        let paths: Vec<&str> = spans.iter().map(|e| e.path.as_str()).collect();
        assert_eq!(paths, vec!["outer/inner", "outer/a/b", "outer"]);
        let inner = &spans[0];
        assert_eq!(inner.count, 2, "same path accumulates");
        let outer = &spans[2];
        assert!(outer.wall_ns >= inner.wall_ns, "parent covers child");
        disable();
        reset();
    }

    #[test]
    fn sibling_after_drop_is_root_level() {
        let _g = test_lock();
        reset();
        enable();
        {
            let _a = span("first");
        }
        {
            let _b = span("second");
        }
        let paths: Vec<String> = snapshot().spans.into_iter().map(|e| e.path).collect();
        assert_eq!(paths, vec!["first", "second"]);
        disable();
        reset();
    }

    #[test]
    fn capture_works_with_global_sink_off() {
        let _g = test_lock();
        reset();
        disable();
        super::capture_begin();
        {
            let _outer = span("req");
            let _inner = span("kle");
        }
        let captured = super::capture_end();
        let paths: Vec<&str> = captured.iter().map(|e| e.path.as_str()).collect();
        assert_eq!(paths, vec!["req/kle", "req"]);
        // Nothing leaked into the global registry.
        assert!(snapshot().spans.is_empty());
        // Capture is one-shot: ended means empty until begun again.
        {
            let _after = span("after");
        }
        assert!(super::capture_end().is_empty());
    }

    #[test]
    fn capture_accumulates_alongside_enabled_sink() {
        let _g = test_lock();
        reset();
        enable();
        super::capture_begin();
        {
            let _a = span("stage");
        }
        {
            let _b = span("stage");
        }
        let captured = super::capture_end();
        assert_eq!(captured.len(), 1);
        assert_eq!(captured[0].count, 2, "same path accumulates in capture");
        assert_eq!(snapshot().spans[0].count, 2, "global sink still records");
        disable();
        reset();
    }

    #[test]
    fn spans_on_fresh_threads_start_at_root() {
        let _g = test_lock();
        reset();
        enable();
        let _outer = span("main_thread");
        std::thread::scope(|scope| {
            scope.spawn(|| {
                let _w = span("worker");
            });
        });
        let paths: Vec<String> = snapshot().spans.into_iter().map(|e| e.path).collect();
        // The worker thread has its own (empty) stack: no false nesting
        // under another thread's span.
        assert_eq!(paths, vec!["worker"]);
        disable();
        reset();
    }
}
