//! Windowed metrics for long-lived processes: sliding-window histograms
//! on an injected logical clock, streaming quantile estimates, a
//! deadline-SLO accumulator and rate-producing metrics snapshots.
//!
//! Everything the batch-shaped registry collects is cumulative since
//! process start — the right shape for a run report, the wrong shape for
//! a daemon an operator asks "how is the tail latency *now*?". The types
//! here answer that question without a background thread and without any
//! clock reads of their own:
//!
//! - [`SlidingWindow`]: a ring of fixed-bucket sub-histograms rotated on
//!   a caller-supplied logical tick (milliseconds since an epoch the
//!   caller owns). Observations older than the window fall out when
//!   their slot is recycled; [`SlidingWindow::merged`] folds the live
//!   slots into one [`HistState`] for quantile queries.
//! - [`HistState::quantile`]: streaming quantile estimate by linear
//!   interpolation inside the bucket holding the target order statistic;
//!   the error is bounded by that bucket's width.
//! - [`DeadlineSlo`]: windowed fraction-of-queries-within-deadline plus
//!   the remaining error budget against a target fraction.
//! - [`MetricsSnapshot`]: a point-in-time copy of the registry stamped
//!   with a logical tick; two snapshots diff into [`MetricsRates`]
//!   (per-second counter rates, cache-hit ratio) and serialise as one
//!   compact `klest-metrics/v1` line an external scraper can tail.

use std::sync::{Mutex, MutexGuard};

use crate::json::Json;
use crate::registry::{HistState, Snapshot};

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Default latency bucket bounds (milliseconds) for serving windows:
/// roughly 1-2-5 per decade from 1 ms to 30 s.
pub const LATENCY_MS_BOUNDS: [f64; 14] = [
    1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 200.0, 500.0, 1e3, 2e3, 5e3, 1e4, 3e4,
];

struct WindowState {
    /// Ring of sub-histograms; `slots[s % slots.len()]` holds absolute
    /// slot `s` while it is live.
    slots: Vec<HistState>,
    /// Absolute index (tick / slot_width) of the newest live slot.
    head: u64,
    /// True until the first observation/rotation initialises `head`.
    empty: bool,
}

/// A sliding-window histogram: a ring of fixed-bucket sub-histograms
/// rotated on a logical clock the caller injects (no `Instant::now()`
/// in here — the tick is typically derived from a timestamp the serving
/// path already took for its own latency measurement).
///
/// The window covers `slots * slot_width_ms` milliseconds; rotation
/// recycles the oldest slot, so merged statistics cover at least
/// `(slots - 1)` and at most `slots` full slot widths.
pub struct SlidingWindow {
    bounds: Vec<f64>,
    slot_width_ms: u64,
    inner: Mutex<WindowState>,
}

impl SlidingWindow {
    /// A window of `slots` sub-histograms, each `slot_width_ms` wide,
    /// sharing `bounds` (inclusive upper bucket bounds, ascending).
    /// `slots` is clamped to ≥ 2 and `slot_width_ms` to ≥ 1.
    pub fn new(slots: usize, slot_width_ms: u64, bounds: &[f64]) -> SlidingWindow {
        let slots = slots.max(2);
        SlidingWindow {
            bounds: bounds.to_vec(),
            slot_width_ms: slot_width_ms.max(1),
            inner: Mutex::new(WindowState {
                slots: (0..slots).map(|_| HistState::with_bounds(bounds)).collect(),
                head: 0,
                empty: true,
            }),
        }
    }

    /// Total window span, milliseconds.
    pub fn span_ms(&self) -> u64 {
        self.slot_width_ms * lock(&self.inner).slots.len() as u64
    }

    /// Rotates the ring so `slot` is the head, clearing every slot the
    /// head skips over. A tick that goes backwards (caller clock
    /// weirdness) records into the current head instead of rotating.
    fn rotate_to(state: &mut WindowState, bounds: &[f64], slot: u64) {
        if state.empty {
            state.head = slot;
            state.empty = false;
            return;
        }
        if slot <= state.head {
            return;
        }
        let n = state.slots.len() as u64;
        let steps = (slot - state.head).min(n);
        for k in 1..=steps {
            let idx = ((state.head + k) % n) as usize;
            state.slots[idx] = HistState::with_bounds(bounds);
        }
        state.head = slot;
    }

    /// Records `v` at logical time `tick_ms`. Non-finite values are
    /// dropped, like [`crate::Histogram::observe`].
    pub fn observe(&self, tick_ms: u64, v: f64) {
        if !v.is_finite() {
            return;
        }
        let slot = tick_ms / self.slot_width_ms;
        let mut state = lock(&self.inner);
        Self::rotate_to(&mut state, &self.bounds, slot);
        let n = state.slots.len() as u64;
        let head = state.head;
        state.slots[(head % n) as usize].record(v);
    }

    /// Folds the live slots into one [`HistState`] as of `tick_ms`
    /// (rotating first, so observations older than the window are gone).
    pub fn merged(&self, tick_ms: u64) -> HistState {
        let slot = tick_ms / self.slot_width_ms;
        let mut state = lock(&self.inner);
        Self::rotate_to(&mut state, &self.bounds, slot);
        let mut merged = HistState::with_bounds(&self.bounds);
        for s in &state.slots {
            merged.merge_from(s);
        }
        merged
    }
}

/// A point-in-time [`DeadlineSlo`] reading.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SloSnapshot {
    /// Target fraction of queries that must complete within deadline.
    pub target: f64,
    /// Deadline-carrying queries observed in the window.
    pub total: u64,
    /// Of those, how many met their deadline.
    pub met: u64,
}

impl SloSnapshot {
    /// Fraction of windowed queries that met their deadline (`None`
    /// while the window is empty).
    pub fn fraction(&self) -> Option<f64> {
        if self.total == 0 {
            None
        } else {
            Some(self.met as f64 / self.total as f64)
        }
    }

    /// Remaining error budget in `[0, 1]`: 1 while no allowed-violation
    /// budget has been consumed, 0 once violations reach or exceed
    /// `total * (1 - target)`. `None` while the window is empty or the
    /// target allows no violations at all.
    pub fn error_budget_remaining(&self) -> Option<f64> {
        if self.total == 0 {
            return None;
        }
        let allowed = self.total as f64 * (1.0 - self.target);
        if allowed <= 0.0 {
            return None;
        }
        let violations = (self.total - self.met) as f64;
        Some((1.0 - violations / allowed).clamp(0.0, 1.0))
    }
}

struct SloState {
    /// Ring of `(met, total)` pairs.
    slots: Vec<(u64, u64)>,
    head: u64,
    empty: bool,
}

/// Windowed deadline-SLO accumulator: records, per completed query with
/// a deadline, whether it finished in time, and reports the windowed
/// fraction plus the error budget remaining against `target`.
///
/// Same logical-clock contract as [`SlidingWindow`]: the caller injects
/// ticks, nothing here reads a clock.
pub struct DeadlineSlo {
    target: f64,
    slot_width_ms: u64,
    inner: Mutex<SloState>,
}

impl DeadlineSlo {
    /// An SLO window of `slots` × `slot_width_ms` against `target`
    /// (clamped into `[0, 1]`).
    pub fn new(target: f64, slots: usize, slot_width_ms: u64) -> DeadlineSlo {
        DeadlineSlo {
            target: target.clamp(0.0, 1.0),
            slot_width_ms: slot_width_ms.max(1),
            inner: Mutex::new(SloState {
                slots: vec![(0, 0); slots.max(2)],
                head: 0,
                empty: true,
            }),
        }
    }

    /// The target fraction.
    pub fn target(&self) -> f64 {
        self.target
    }

    fn rotate_to(state: &mut SloState, slot: u64) {
        if state.empty {
            state.head = slot;
            state.empty = false;
            return;
        }
        if slot <= state.head {
            return;
        }
        let n = state.slots.len() as u64;
        let steps = (slot - state.head).min(n);
        for k in 1..=steps {
            let idx = ((state.head + k) % n) as usize;
            state.slots[idx] = (0, 0);
        }
        state.head = slot;
    }

    /// Records one deadline-carrying query at `tick_ms`.
    pub fn record(&self, tick_ms: u64, within_deadline: bool) {
        let slot = tick_ms / self.slot_width_ms;
        let mut state = lock(&self.inner);
        Self::rotate_to(&mut state, slot);
        let n = state.slots.len() as u64;
        let head = state.head;
        let cell = &mut state.slots[(head % n) as usize];
        cell.1 += 1;
        if within_deadline {
            cell.0 += 1;
        }
    }

    /// The windowed reading as of `tick_ms`.
    pub fn snapshot(&self, tick_ms: u64) -> SloSnapshot {
        let slot = tick_ms / self.slot_width_ms;
        let mut state = lock(&self.inner);
        Self::rotate_to(&mut state, slot);
        let (met, total) = state
            .slots
            .iter()
            .fold((0, 0), |(m, t), (sm, st)| (m + sm, t + st));
        SloSnapshot {
            target: self.target,
            total,
            met,
        }
    }
}

/// Per-second counter rates between two [`MetricsSnapshot`]s.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsRates {
    /// Wall (logical) time between the snapshots, milliseconds.
    pub interval_ms: u64,
    /// `(counter name, delta / interval)` for every counter present in
    /// the later snapshot, name-sorted. Counters absent from the earlier
    /// snapshot rate from zero.
    pub per_sec: Vec<(String, f64)>,
}

impl MetricsRates {
    /// The rate for `name`, if that counter moved between snapshots.
    pub fn get(&self, name: &str) -> Option<f64> {
        self.per_sec
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| *v)
    }
}

/// A registry snapshot stamped with a logical tick, diffable into rates
/// and serialisable as one `klest-metrics/v1` line.
#[derive(Debug, Clone)]
pub struct MetricsSnapshot {
    /// Caller-defined logical time (typically ms since daemon start).
    pub tick_ms: u64,
    /// Registry contents at capture time.
    pub snapshot: Snapshot,
}

impl MetricsSnapshot {
    /// Captures the global registry at logical time `tick_ms`.
    pub fn capture(tick_ms: u64) -> MetricsSnapshot {
        MetricsSnapshot {
            tick_ms,
            snapshot: crate::snapshot(),
        }
    }

    /// Wraps an already-taken snapshot (tests, replay).
    pub fn from_snapshot(tick_ms: u64, snapshot: Snapshot) -> MetricsSnapshot {
        MetricsSnapshot { tick_ms, snapshot }
    }

    /// The value of counter `name` in this snapshot (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.snapshot
            .counters
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| *v)
            .unwrap_or(0)
    }

    /// Hit ratio over every `<prefix>…​.hits` / `.misses` counter pair
    /// (e.g. `pipeline.cache.` for the artifact cache); `None` when no
    /// traffic was recorded.
    pub fn hit_ratio(&self, prefix: &str) -> Option<f64> {
        let sum_of = |suffix: &str| -> u64 {
            self.snapshot
                .counters
                .iter()
                .filter(|(k, _)| k.starts_with(prefix) && k.ends_with(suffix))
                .map(|(_, v)| *v)
                .sum()
        };
        let hits = sum_of(".hits");
        let misses = sum_of(".misses");
        if hits + misses == 0 {
            None
        } else {
            Some(hits as f64 / (hits + misses) as f64)
        }
    }

    /// Diffs this (later) snapshot against `earlier` into per-second
    /// counter rates. A later tick equal to (or before) the earlier one
    /// yields an empty rate set rather than dividing by zero.
    pub fn rates_since(&self, earlier: &MetricsSnapshot) -> MetricsRates {
        let interval_ms = self.tick_ms.saturating_sub(earlier.tick_ms);
        if interval_ms == 0 {
            return MetricsRates::default();
        }
        let secs = interval_ms as f64 / 1e3;
        let per_sec = self
            .snapshot
            .counters
            .iter()
            .map(|(name, later)| {
                let before = earlier.counter(name);
                (name.clone(), later.saturating_sub(before) as f64 / secs)
            })
            .collect();
        MetricsRates {
            interval_ms,
            per_sec,
        }
    }

    /// Renders the snapshot (plus optional rates) as one compact
    /// `klest-metrics/v1` JSON line — the newline-delimited format
    /// `--metrics-out` emits and external scrapers tail.
    ///
    /// Deterministic: counters/gauges/histograms render name-sorted (the
    /// snapshot's own order), rates in the same order, non-finite floats
    /// as `null`. Spans and events are deliberately excluded — they
    /// belong to run reports and per-request traces.
    pub fn to_json_line(&self, rates: Option<&MetricsRates>) -> String {
        let mut members = vec![
            ("schema".to_string(), Json::str("klest-metrics/v1")),
            ("tick_ms".to_string(), Json::UInt(self.tick_ms)),
            (
                "counters".to_string(),
                Json::Obj(
                    self.snapshot
                        .counters
                        .iter()
                        .map(|(k, v)| (k.clone(), Json::UInt(*v)))
                        .collect(),
                ),
            ),
            (
                "gauges".to_string(),
                Json::Obj(
                    self.snapshot
                        .gauges
                        .iter()
                        .map(|(k, v)| (k.clone(), Json::Num(*v)))
                        .collect(),
                ),
            ),
            (
                "histograms".to_string(),
                Json::Obj(
                    self.snapshot
                        .histograms
                        .iter()
                        .map(|(k, h)| (k.clone(), hist_summary_json(h)))
                        .collect(),
                ),
            ),
        ];
        if let Some(rates) = rates {
            members.push((
                "rates".to_string(),
                Json::Obj(vec![
                    ("interval_ms".to_string(), Json::UInt(rates.interval_ms)),
                    (
                        "per_sec".to_string(),
                        Json::Obj(
                            rates
                                .per_sec
                                .iter()
                                .map(|(k, v)| (k.clone(), Json::Num(*v)))
                                .collect(),
                        ),
                    ),
                ]),
            ));
        }
        Json::Obj(members).to_compact_string()
    }
}

/// Compact per-histogram summary for metrics lines: exact count / sum /
/// min / max plus interpolated tail quantiles.
fn hist_summary_json(h: &HistState) -> Json {
    let q = |q: f64| match h.quantile(q) {
        Some(v) => Json::Num(v),
        None => Json::Null,
    };
    Json::obj(vec![
        ("count", Json::UInt(h.count)),
        ("sum", Json::Num(h.sum)),
        ("min", Json::Num(h.min)),
        ("max", Json::Num(h.max)),
        ("p50", q(0.50)),
        ("p95", q(0.95)),
        ("p99", q(0.99)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn window_rotation_forgets_old_slots() {
        let w = SlidingWindow::new(3, 100, &[10.0, 100.0]);
        w.observe(0, 5.0);
        w.observe(150, 50.0);
        // Both still inside the 300 ms window.
        let m = w.merged(200);
        assert_eq!(m.count, 2);
        // Advance far enough that slot 0 (the 5.0) is recycled but slot
        // 1 (the 50.0) survives.
        let m = w.merged(350);
        assert_eq!(m.count, 1);
        assert_eq!(m.min, 50.0);
        // Far beyond the window: empty.
        let m = w.merged(10_000);
        assert_eq!(m.count, 0);
        assert_eq!(m.mean(), None);
    }

    #[test]
    fn window_tick_going_backwards_is_tolerated() {
        let w = SlidingWindow::new(4, 10, &[10.0]);
        w.observe(500, 1.0);
        w.observe(400, 2.0); // backwards: records into the current head
        assert_eq!(w.merged(500).count, 2);
        assert_eq!(w.span_ms(), 40);
    }

    #[test]
    fn quantiles_interpolate_within_buckets() {
        let mut h = HistState::with_bounds(&[10.0, 20.0, 30.0]);
        for v in [1.0, 2.0, 3.0, 12.0, 14.0, 18.0, 22.0, 25.0, 28.0, 29.0] {
            h.record(v);
        }
        // p50 lands on the 5th of 10 values (14.0), inside (10, 20].
        let p50 = h.quantile(0.5).expect("non-empty");
        assert!((10.0..=20.0).contains(&p50), "{p50}");
        // p99 targets the last value (29.0), inside (20, 30].
        let p99 = h.quantile(0.99).expect("non-empty");
        assert!((20.0..=30.0).contains(&p99), "{p99}");
        // Quantiles are monotone in q.
        let p95 = h.quantile(0.95).expect("non-empty");
        assert!(p50 <= p95 && p95 <= p99, "{p50} {p95} {p99}");
        // Degenerate inputs.
        assert_eq!(HistState::with_bounds(&[1.0]).quantile(0.5), None);
        assert_eq!(h.quantile(f64::NAN), None);
        assert_eq!(h.quantile(-0.1), None);
    }

    #[test]
    fn quantile_clamps_to_observed_extremes() {
        let mut h = HistState::with_bounds(&[100.0]);
        h.record(40.0);
        h.record(60.0);
        let p0 = h.quantile(0.0).expect("non-empty");
        let p100 = h.quantile(1.0).expect("non-empty");
        assert!(p0 >= 40.0, "{p0}");
        assert!(p100 <= 60.0, "{p100}");
    }

    #[test]
    fn slo_window_tracks_fraction_and_budget() {
        let slo = DeadlineSlo::new(0.9, 4, 100);
        for i in 0..9 {
            slo.record(i * 10, true);
        }
        slo.record(95, false);
        let s = slo.snapshot(100);
        assert_eq!(s.total, 10);
        assert_eq!(s.met, 9);
        assert_eq!(s.fraction(), Some(0.9));
        // 10 queries at target 0.9 allow exactly 1 violation: budget 0.
        assert_eq!(s.error_budget_remaining(), Some(0.0));
        // The window forgets: far in the future everything is gone.
        let s = slo.snapshot(100_000);
        assert_eq!(s.total, 0);
        assert_eq!(s.fraction(), None);
        assert_eq!(s.error_budget_remaining(), None);
    }

    #[test]
    fn slo_target_one_has_no_budget() {
        let slo = DeadlineSlo::new(1.0, 2, 100);
        slo.record(0, true);
        let s = slo.snapshot(0);
        assert_eq!(s.fraction(), Some(1.0));
        assert_eq!(s.error_budget_remaining(), None);
    }

    #[test]
    fn rates_diff_counters_per_second() {
        let earlier = MetricsSnapshot::from_snapshot(
            1_000,
            Snapshot {
                counters: vec![("serve.admitted".into(), 10)],
                ..Snapshot::default()
            },
        );
        let later = MetricsSnapshot::from_snapshot(
            3_000,
            Snapshot {
                counters: vec![
                    ("serve.admitted".into(), 50),
                    ("serve.shed.overload".into(), 4),
                ],
                ..Snapshot::default()
            },
        );
        let rates = later.rates_since(&earlier);
        assert_eq!(rates.interval_ms, 2_000);
        assert_eq!(rates.get("serve.admitted"), Some(20.0));
        assert_eq!(rates.get("serve.shed.overload"), Some(2.0));
        // Zero interval: no rates, no division by zero.
        assert_eq!(later.rates_since(&later), MetricsRates::default());
    }

    #[test]
    fn hit_ratio_sums_prefixed_pairs() {
        let snap = MetricsSnapshot::from_snapshot(
            0,
            Snapshot {
                counters: vec![
                    ("pipeline.cache.mesh.hits".into(), 3),
                    ("pipeline.cache.mesh.misses".into(), 1),
                    ("pipeline.cache.spectrum.hits".into(), 5),
                    ("pipeline.cache.spectrum.misses".into(), 3),
                    ("unrelated.hits".into(), 100),
                ],
                ..Snapshot::default()
            },
        );
        assert_eq!(snap.hit_ratio("pipeline.cache."), Some(8.0 / 12.0));
        assert_eq!(snap.hit_ratio("nothing."), None);
    }

    #[test]
    fn metrics_line_is_compact_and_deterministic() {
        let mut h = HistState::with_bounds(&[10.0, 100.0]);
        h.record(5.0);
        h.record(50.0);
        let snap = MetricsSnapshot::from_snapshot(
            1_234,
            Snapshot {
                counters: vec![("a.count".into(), 7)],
                gauges: vec![("g.depth".into(), 3.0)],
                histograms: vec![("h.lat".into(), h)],
                ..Snapshot::default()
            },
        );
        let line = snap.to_json_line(None);
        assert!(!line.contains('\n'), "{line}");
        assert!(line.starts_with(r#"{"schema":"klest-metrics/v1","tick_ms":1234"#), "{line}");
        assert!(line.contains(r#""a.count":7"#), "{line}");
        assert!(line.contains(r#""p50":"#), "{line}");
        assert_eq!(line, snap.to_json_line(None), "byte-stable");
    }
}
