//! Golden-file determinism test for the `klest-metrics/v1` snapshot
//! line: a fixed pair of registry snapshots must render byte-for-byte
//! identically to the checked-in golden line, every time.

use klest_obs::{HistState, MetricsSnapshot, Snapshot};

fn fixture() -> (MetricsSnapshot, MetricsSnapshot) {
    let earlier = MetricsSnapshot::from_snapshot(
        1_000,
        Snapshot {
            counters: vec![("serve.admitted".to_string(), 10)],
            ..Snapshot::default()
        },
    );
    let mut lat = HistState::with_bounds(&[10.0, 100.0]);
    lat.record(5.0);
    lat.record(50.0);
    let later = MetricsSnapshot::from_snapshot(
        3_000,
        Snapshot {
            counters: vec![
                ("pipeline.cache.spectrum.hits".to_string(), 8),
                ("pipeline.cache.spectrum.misses".to_string(), 2),
                ("serve.admitted".to_string(), 50),
                ("serve.shed.overload".to_string(), 4),
            ],
            gauges: vec![("serve.queue.depth".to_string(), 3.0)],
            histograms: vec![("serve.latency_ms.warm".to_string(), lat)],
            ..Snapshot::default()
        },
    );
    (earlier, later)
}

#[test]
fn metrics_v1_line_matches_golden_file() {
    let (earlier, later) = fixture();
    let rates = later.rates_since(&earlier);
    let line = later.to_json_line(Some(&rates));

    let golden_path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/metrics_v1.txt");
    let golden = std::fs::read_to_string(golden_path).expect("golden file readable");
    assert_eq!(
        line,
        golden.trim_end(),
        "klest-metrics/v1 encoding drifted from {golden_path}"
    );

    // Determinism: a second render of the same snapshots is identical.
    let again = later.to_json_line(Some(&later.rates_since(&earlier)));
    assert_eq!(line, again, "metrics line must be byte-stable");
}

#[test]
fn derived_readings_from_fixture() {
    let (earlier, later) = fixture();
    let rates = later.rates_since(&earlier);
    assert_eq!(rates.interval_ms, 2_000);
    assert_eq!(rates.get("serve.admitted"), Some(20.0));
    assert_eq!(rates.get("serve.shed.overload"), Some(2.0));
    assert_eq!(later.hit_ratio("pipeline.cache."), Some(0.8));
}
