//! Property tests for the windowed-metrics layer: sliding-window
//! quantile estimates must track the exact sorted quantiles of the
//! observed values, with error bounded by one bucket width.

use klest_obs::{HistState, SlidingWindow};
use klest_proptest::check;
use klest_proptest::strategies::{f64_in, usize_in, vec_of};

/// Uniform bucket grid over [0, 100] with the given width.
fn grid_bounds(width: f64) -> Vec<f64> {
    let mut bounds = Vec::new();
    let mut b = width;
    while b < 100.0 + width / 2.0 {
        bounds.push(b);
        b += width;
    }
    bounds
}

/// The exact order statistic the estimator targets: the smallest value
/// with at least `ceil(q * n)` observations at or below it.
fn exact_quantile(sorted: &[f64], q: f64) -> f64 {
    let n = sorted.len();
    let rank = ((q * n as f64).ceil() as usize).clamp(1, n);
    sorted[rank - 1]
}

#[test]
fn windowed_quantiles_match_exact_within_bucket_width() {
    let strat = (
        vec_of(f64_in(0.0..100.0), 1..200),
        usize_in(0..3), // bucket-width selector: 2.5 / 5 / 10
    );
    check("obs.window.quantile_vs_exact", &strat, |(values, wsel)| {
        let width = [2.5, 5.0, 10.0][*wsel];
        let bounds = grid_bounds(width);
        // Spread observations across the live window: ascending ticks
        // inside one span, so rotation never recycles a filled slot.
        let w = SlidingWindow::new(4, 100, &bounds);
        let n = values.len();
        for (i, &v) in values.iter().enumerate() {
            w.observe((i as u64 * 399) / n as u64, v);
        }
        let merged = w.merged(399);
        if merged.count != n as u64 {
            return Err(format!("window lost observations: {} != {n}", merged.count));
        }
        let mut sorted = values.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        for q in [0.0, 0.25, 0.5, 0.9, 0.95, 0.99, 1.0] {
            let est = merged
                .quantile(q)
                .ok_or_else(|| "quantile None on non-empty window".to_string())?;
            let exact = exact_quantile(&sorted, q);
            // Both the estimate and the exact order statistic lie in the
            // same bucket, so they differ by at most its width.
            if (est - exact).abs() > width + 1e-9 {
                return Err(format!(
                    "q={q}: estimate {est} vs exact {exact} off by more than \
                     bucket width {width} (n={n})"
                ));
            }
        }
        Ok(())
    });
}

#[test]
fn merged_window_equals_direct_histogram() {
    let strat = vec_of(f64_in(0.0..100.0), 1..100);
    check("obs.window.merge_equals_direct", &strat, |values| {
        let bounds = grid_bounds(10.0);
        let w = SlidingWindow::new(8, 50, &bounds);
        let mut direct = HistState::with_bounds(&bounds);
        let n = values.len();
        for (i, &v) in values.iter().enumerate() {
            w.observe((i as u64 * 399) / n as u64, v);
            direct.record(v);
        }
        let merged = w.merged(399);
        // Counts and extremes are exact; `sum` may differ in the last
        // ulp because the window adds per-slot partial sums.
        if merged.counts != direct.counts
            || merged.count != direct.count
            || merged.min != direct.min
            || merged.max != direct.max
        {
            return Err(format!(
                "merged window diverged from direct histogram:\n{merged:?}\nvs\n{direct:?}"
            ));
        }
        let tol = 1e-12 * direct.sum.abs().max(1.0);
        if (merged.sum - direct.sum).abs() > tol {
            return Err(format!(
                "merged sum {} vs direct {} beyond reassociation tolerance",
                merged.sum, direct.sum
            ));
        }
        Ok(())
    });
}
