//! # klest-proptest
//!
//! A small, dependency-free, *deterministic* property-based testing
//! framework for the `klest` workspace. It exists because the paper's
//! value proposition is numerical trustworthiness: every refactor of the
//! Galerkin/KLE/SSTA pipeline should be checkable against analytic
//! oracles and differential cross-checks over a broad, reproducible
//! input space — offline, with no external crates.
//!
//! The design mirrors the classic QuickCheck loop with three workspace
//! constraints baked in:
//!
//! - **Determinism.** Every case seed derives from a master seed through
//!   a [`SplitMix64`] stream; the same master seed produces the same
//!   cases on every platform, forever. The master seed is the property
//!   name hash mixed with a fixed workspace constant (overridable via
//!   `KLEST_PROPTEST_MASTER_SEED` for CI smoke passes).
//! - **Replayability.** A failing case prints its own 64-bit case seed;
//!   `KLEST_PROPTEST_SEED=<property>:<seed>` re-runs exactly that one
//!   case of that one property (every other property runs normally) so
//!   a CI failure reproduces locally in milliseconds.
//! - **Shrinking.** On failure the runner greedily walks
//!   [`Strategy::shrink`] candidates, keeping any that still fail, and
//!   reports the minimal counterexample it reached along with the
//!   original.
//!
//! ```
//! use klest_proptest::{check, strategies};
//!
//! // Squares of reals in [-10, 10) are never negative.
//! check("square_nonneg", &strategies::f64_in(-10.0..10.0), |x| {
//!     if x * x >= 0.0 {
//!         Ok(())
//!     } else {
//!         Err(format!("{x}² < 0"))
//!     }
//! });
//! ```

#![deny(missing_docs)]

pub mod strategies;
mod strategy;

pub use strategy::Strategy;

use klest_rng::{Rng, SeedableRng, SplitMix64, StdRng};
use std::fmt;

/// Environment variable that replays exactly one case: set it to the
/// `<property>:<seed>` pair printed by a failure report. Only the named
/// property enters replay mode; every other property in the test binary
/// runs normally, so the replay session is not muddied by unrelated
/// strategies reinterpreting the same case seed. A bare `<seed>` is also
/// accepted — scoped by [`PROPERTY_ENV`] when that is set, applied to
/// all properties otherwise.
pub const SEED_ENV: &str = "KLEST_PROPTEST_SEED";

/// Environment variable scoping a bare [`SEED_ENV`] seed to one
/// property by name; properties that don't match run normally.
pub const PROPERTY_ENV: &str = "KLEST_PROPTEST_PROPERTY";

/// Environment variable overriding the number of cases per property
/// (e.g. a short CI smoke pass sets a small count).
pub const CASES_ENV: &str = "KLEST_PROPTEST_CASES";

/// Environment variable overriding the master seed mixed into every
/// property's stream (a randomized CI pass sets this to the run id).
pub const MASTER_SEED_ENV: &str = "KLEST_PROPTEST_MASTER_SEED";

/// Fixed workspace constant mixed with the property-name hash to form
/// the default master seed.
const WORKSPACE_SEED: u64 = 0x6b6c_6573_7400_2008; // "klest" + DATE 2008

/// Per-property run configuration. [`Config::from_env`] is what
/// [`check`] uses; construct one directly to pin cases/seed in-code.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Config {
    /// Number of generated cases (ignored when `replay` is set).
    pub cases: usize,
    /// Master seed for the case-seed stream.
    pub seed: u64,
    /// Upper bound on accepted shrink steps.
    pub max_shrink_steps: usize,
    /// When set, run exactly one case with this case seed.
    pub replay: Option<u64>,
}

impl Config {
    /// A configuration with the workspace defaults (64 cases, 200 shrink
    /// steps) and the given master seed.
    pub fn new(seed: u64) -> Self {
        Config {
            cases: 64,
            seed,
            max_shrink_steps: 200,
            replay: None,
        }
    }

    /// Builds the configuration [`check`] uses for a named property:
    /// master seed = FNV-1a(name) ⊕ workspace constant (or the
    /// `KLEST_PROPTEST_MASTER_SEED` override), case count from
    /// `KLEST_PROPTEST_CASES` if set, and single-case replay mode when
    /// `KLEST_PROPTEST_SEED` names this property (see [`SEED_ENV`]).
    pub fn from_env(name: &str) -> Self {
        let master = read_env_u64(MASTER_SEED_ENV).unwrap_or(WORKSPACE_SEED);
        let mut cfg = Config::new(master ^ fnv1a(name.as_bytes()));
        if let Some(cases) = read_env_u64(CASES_ENV) {
            cfg.cases = (cases as usize).max(1);
        }
        cfg.replay = replay_for(
            name,
            std::env::var(SEED_ENV).ok().as_deref(),
            std::env::var(PROPERTY_ENV).ok().as_deref(),
        );
        cfg
    }

    /// Returns the configuration with a different case count.
    pub fn with_cases(mut self, cases: usize) -> Self {
        self.cases = cases.max(1);
        self
    }
}

fn read_env_u64(var: &str) -> Option<u64> {
    std::env::var(var).ok()?.trim().parse().ok()
}

/// Resolves the replay request for property `name` from the raw
/// [`SEED_ENV`] / [`PROPERTY_ENV`] values. `<property>:<seed>` (the form
/// failure reports print) replays only the named property; a bare seed
/// is scoped by the property filter when present and global otherwise.
/// The split is on the *last* `:` so property names containing colons
/// still round-trip. Returns `None` — run normally — for properties the
/// request is not scoped to, and for unparseable values.
fn replay_for(name: &str, seed_env: Option<&str>, property_env: Option<&str>) -> Option<u64> {
    let raw = seed_env?.trim();
    let (scope, seed_str) = match raw.rsplit_once(':') {
        Some((prop, seed)) => (Some(prop), seed),
        None => (property_env, raw),
    };
    let seed = seed_str.trim().parse().ok()?;
    match scope {
        Some(prop) if prop.trim() != name => None,
        _ => Some(seed),
    }
}

/// FNV-1a over bytes: stable across platforms and runs, good enough to
/// decorrelate per-property streams.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Statistics from a passing run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CheckStats {
    /// Number of cases generated and checked.
    pub cases_run: usize,
}

/// A property failure: the original counterexample, the shrunk minimal
/// one, and everything needed to replay it. `Display` (and `Debug`,
/// which forwards to it so `expect` prints the full report) renders the
/// human-facing report.
#[derive(Clone, PartialEq)]
pub struct PropFailure {
    /// The property's name as given to the runner.
    pub property: String,
    /// Index of the failing case within the run.
    pub case_index: usize,
    /// The case seed — feed to `KLEST_PROPTEST_SEED` as
    /// `<property>:<seed>` (the report's replay line) to replay.
    pub case_seed: u64,
    /// `Debug` rendering of the originally generated counterexample.
    pub original: String,
    /// `Debug` rendering of the shrunk minimal counterexample.
    pub shrunk: String,
    /// How many shrink steps were accepted.
    pub shrink_steps: usize,
    /// The failure message of the (shrunk) counterexample.
    pub message: String,
}

impl fmt::Display for PropFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "property '{}' failed at case {} (seed {})",
            self.property, self.case_index, self.case_seed
        )?;
        writeln!(f, "  message:  {}", self.message)?;
        writeln!(f, "  original: {}", self.original)?;
        writeln!(
            f,
            "  shrunk ({} step(s)): {}",
            self.shrink_steps, self.shrunk
        )?;
        write!(
            f,
            "  replay:   {}={}:{} cargo test",
            SEED_ENV, self.property, self.case_seed
        )
    }
}

impl fmt::Debug for PropFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // `expect` on a failing check prints Debug; forward to the
        // human-facing report so the replay seed always reaches the user.
        write!(f, "\n{self}")
    }
}

/// Runs `property` against `config.cases` generated values, shrinking
/// the first failure. This is the non-panicking core — use it to assert
/// that a property *fails* (regression tests for the framework itself
/// and for deliberately broken inputs).
///
/// # Errors
///
/// Returns the shrunk [`PropFailure`] for the first failing case.
pub fn check_result<S, F>(
    name: &str,
    config: &Config,
    strategy: &S,
    property: F,
) -> Result<CheckStats, Box<PropFailure>>
where
    S: Strategy,
    F: Fn(&S::Value) -> Result<(), String>,
{
    if let Some(case_seed) = config.replay {
        run_case(name, config, strategy, &property, 0, case_seed)?;
        return Ok(CheckStats { cases_run: 1 });
    }
    let mut seeder = SplitMix64::new(config.seed);
    for index in 0..config.cases {
        let case_seed = seeder.next_u64();
        run_case(name, config, strategy, &property, index, case_seed)?;
    }
    Ok(CheckStats {
        cases_run: config.cases,
    })
}

/// Runs `property` under the environment-derived [`Config`] for `name`
/// and aborts the enclosing test with a replayable report on failure.
/// This is the entry point ordinary property tests call.
pub fn check<S, F>(name: &str, strategy: &S, property: F)
where
    S: Strategy,
    F: Fn(&S::Value) -> Result<(), String>,
{
    check_config(name, &Config::from_env(name), strategy, property);
}

/// [`check`] with an explicit configuration (still honouring replay mode
/// if `config.replay` is set).
pub fn check_config<S, F>(name: &str, config: &Config, strategy: &S, property: F)
where
    S: Strategy,
    F: Fn(&S::Value) -> Result<(), String>,
{
    // A failed property must abort the test; `expect` on the typed
    // failure is the framework's one documented abort site (the custom
    // Debug impl prints the full replayable report).
    let _ = check_result(name, config, strategy, property).expect("property failed");
}

fn run_case<S, F>(
    name: &str,
    config: &Config,
    strategy: &S,
    property: &F,
    index: usize,
    case_seed: u64,
) -> Result<(), Box<PropFailure>>
where
    S: Strategy,
    F: Fn(&S::Value) -> Result<(), String>,
{
    let mut rng = StdRng::seed_from_u64(case_seed);
    let value = strategy.generate(&mut rng);
    match property(&value) {
        Ok(()) => Ok(()),
        Err(message) => Err(Box::new(shrink_failure(
            name, config, strategy, property, index, case_seed, value, message,
        ))),
    }
}

/// Greedy shrink: repeatedly take the first shrink candidate that still
/// fails, until no candidate fails or the step budget is exhausted.
#[allow(clippy::too_many_arguments)]
fn shrink_failure<S, F>(
    name: &str,
    config: &Config,
    strategy: &S,
    property: &F,
    case_index: usize,
    case_seed: u64,
    original: S::Value,
    original_message: String,
) -> PropFailure
where
    S: Strategy,
    F: Fn(&S::Value) -> Result<(), String>,
{
    let original_repr = format!("{original:?}");
    let mut current = original;
    let mut message = original_message;
    let mut steps = 0usize;
    'outer: while steps < config.max_shrink_steps {
        for candidate in strategy.shrink(&current) {
            if let Err(m) = property(&candidate) {
                current = candidate;
                message = m;
                steps += 1;
                continue 'outer;
            }
        }
        break;
    }
    PropFailure {
        property: name.to_string(),
        case_index,
        case_seed,
        original: original_repr,
        shrunk: format!("{current:?}"),
        shrink_steps: steps,
        message,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategies;

    #[test]
    fn same_seed_same_cases() {
        // Determinism contract: record the generated stream twice.
        let cfg = Config::new(42).with_cases(16);
        let strat = strategies::f64_in(0.0..1.0);
        let collect = || {
            let mut seen = Vec::new();
            let mut seeder = SplitMix64::new(cfg.seed);
            for _ in 0..cfg.cases {
                let mut rng = StdRng::seed_from_u64(seeder.next_u64());
                seen.push(strat.generate(&mut rng));
            }
            seen
        };
        assert_eq!(collect(), collect());
    }

    #[test]
    fn passing_property_reports_case_count() {
        let cfg = Config::new(7).with_cases(20);
        let stats = check_result("always_ok", &cfg, &strategies::usize_in(0..100), |_| Ok(()))
            .unwrap();
        assert_eq!(stats.cases_run, 20);
    }

    #[test]
    fn failure_shrinks_to_minimal_counterexample() {
        // Property "x < 50" fails for x >= 50; the minimal failing usize
        // under halving-toward-0 shrinking is exactly 50.
        let cfg = Config::new(3).with_cases(64);
        let failure = check_result("lt_50", &cfg, &strategies::usize_in(0..1000), |&x| {
            if x < 50 {
                Ok(())
            } else {
                Err(format!("{x} >= 50"))
            }
        })
        .unwrap_err();
        assert_eq!(failure.shrunk, "50", "report: {failure}");
        assert!(failure.message.contains(">= 50"));
    }

    #[test]
    fn replay_seed_reproduces_the_exact_case() {
        let cfg = Config::new(11).with_cases(64);
        let strat = strategies::f64_in(-1.0..1.0);
        let failure = check_result("negative", &cfg, &strat, |&x| {
            if x >= 0.0 {
                Ok(())
            } else {
                Err(format!("{x} < 0"))
            }
        })
        .unwrap_err();
        // Re-run just that case through replay mode: same generated value.
        let mut replay_cfg = cfg.clone();
        replay_cfg.replay = Some(failure.case_seed);
        let replayed = check_result("negative", &replay_cfg, &strat, |&x| {
            if x >= 0.0 {
                Ok(())
            } else {
                Err(format!("{x} < 0"))
            }
        })
        .unwrap_err();
        assert_eq!(replayed.original, failure.original);
        assert_eq!(replayed.case_seed, failure.case_seed);
    }

    #[test]
    fn failure_report_contains_replay_instructions() {
        let cfg = Config::new(5).with_cases(8);
        let failure = check_result("always_fails", &cfg, &strategies::usize_in(0..4), |_| {
            Err("nope".to_string())
        })
        .unwrap_err();
        let report = failure.to_string();
        assert!(report.contains(SEED_ENV), "{report}");
        assert!(report.contains(&failure.case_seed.to_string()), "{report}");
        assert!(report.contains("shrunk"), "{report}");
    }

    #[test]
    fn replay_request_is_scoped_to_one_property() {
        // The `<property>:<seed>` form (what failure reports print)
        // replays only the named property; others run normally.
        assert_eq!(replay_for("mercer_psd", Some("mercer_psd:42"), None), Some(42));
        assert_eq!(replay_for("delaunay", Some("mercer_psd:42"), None), None);
        // A bare seed is scoped by the property filter when present…
        assert_eq!(replay_for("mercer_psd", Some("42"), Some("mercer_psd")), Some(42));
        assert_eq!(replay_for("delaunay", Some("42"), Some("mercer_psd")), None);
        // …and global otherwise (backwards compatible).
        assert_eq!(replay_for("anything", Some("42"), None), Some(42));
        // Last-colon split: property names containing ':' round-trip.
        assert_eq!(replay_for("a:b", Some("a:b:7"), None), Some(7));
        // Unparseable seeds and unset env mean "run normally".
        assert_eq!(replay_for("p", Some("p:not_a_seed"), None), None);
        assert_eq!(replay_for("p", None, Some("p")), None);
    }

    #[test]
    fn report_replay_line_is_property_scoped() {
        let cfg = Config::new(5).with_cases(8);
        let failure = check_result("scoped_prop", &cfg, &strategies::usize_in(0..4), |_| {
            Err("nope".to_string())
        })
        .unwrap_err();
        let report = failure.to_string();
        assert!(
            report.contains(&format!("{}=scoped_prop:{}", SEED_ENV, failure.case_seed)),
            "{report}"
        );
    }

    #[test]
    fn per_property_seeds_differ() {
        assert_ne!(
            Config::from_env("property_a").seed,
            Config::from_env("property_b").seed
        );
    }

    #[test]
    #[should_panic(expected = "property failed")]
    fn check_config_panics_with_report() {
        let cfg = Config::new(9).with_cases(4);
        check_config("doomed", &cfg, &strategies::usize_in(0..10), |_| {
            Err("doomed".to_string())
        });
    }

    #[test]
    fn shrink_step_budget_is_respected() {
        let mut cfg = Config::new(13).with_cases(1);
        cfg.max_shrink_steps = 3;
        let failure = check_result("budget", &cfg, &strategies::usize_in(0..1_000_000), |_| {
            Err("always".to_string())
        })
        .unwrap_err();
        assert!(failure.shrink_steps <= 3);
    }
}
