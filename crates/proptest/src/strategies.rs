//! Built-in strategies for the domain objects the workspace's property
//! suites exercise: scalars, vectors, points, polygons, meshes, SPD
//! matrices, physically-valid kernels and descending eigen-spectra.
//!
//! Shrinking conventions: scalars shrink toward a simple in-range anchor
//! (zero, or the range midpoint for geometry), collections shrink by
//! dropping elements, meshes shrink by coarsening, and SPD matrices
//! shrink to leading principal submatrices (which stay SPD).

use crate::Strategy;
use klest_geometry::{Point2, Polygon, Rect};
use klest_kernels::{
    CovarianceKernel, ExponentialKernel, GaussianKernel, MaternKernel, RadialExponentialKernel,
    SeparableExponentialKernel,
};
use klest_linalg::Matrix;
use klest_mesh::{Mesh, MeshBuilder};
use klest_rng::{Rng, StdRng};
use std::ops::Range;

/// Uniform `f64` in `[start, end)`, shrinking toward the in-range value
/// closest to zero.
pub fn f64_in(range: Range<f64>) -> F64In {
    F64In { range }
}

/// See [`f64_in`].
#[derive(Debug, Clone)]
pub struct F64In {
    range: Range<f64>,
}

impl F64In {
    fn anchor(&self) -> f64 {
        if self.range.start > 0.0 {
            self.range.start
        } else if self.range.end <= 0.0 {
            // Shrink toward the top of an all-negative range (closest to 0
            // while staying strictly inside the half-open range).
            self.range.start.midpoint(self.range.end)
        } else {
            0.0
        }
    }
}

impl Strategy for F64In {
    type Value = f64;

    fn generate(&self, rng: &mut StdRng) -> f64 {
        rng.gen_range(self.range.clone())
    }

    fn shrink(&self, value: &f64) -> Vec<f64> {
        let anchor = self.anchor();
        if (*value - anchor).abs() < 1e-12 {
            return Vec::new();
        }
        // Most aggressive first: jump to the anchor, then halve toward it.
        vec![anchor, anchor.midpoint(*value)]
    }
}

/// Uniform `usize` in `[start, end)`, shrinking toward `start`.
pub fn usize_in(range: Range<usize>) -> UsizeIn {
    UsizeIn { range }
}

/// See [`usize_in`].
#[derive(Debug, Clone)]
pub struct UsizeIn {
    range: Range<usize>,
}

impl Strategy for UsizeIn {
    type Value = usize;

    fn generate(&self, rng: &mut StdRng) -> usize {
        rng.gen_range(self.range.clone())
    }

    fn shrink(&self, value: &usize) -> Vec<usize> {
        let lo = self.range.start;
        if *value == lo {
            return Vec::new();
        }
        let mid = lo + (*value - lo) / 2;
        let mut out = vec![lo];
        if mid != lo && mid != *value {
            out.push(mid);
        }
        if *value - 1 != lo && *value - 1 != mid {
            out.push(*value - 1);
        }
        out
    }
}

/// A vector of `len_range` draws from `elem`, shrinking by dropping
/// chunks/elements and by shrinking individual elements.
pub fn vec_of<S: Strategy>(elem: S, len_range: Range<usize>) -> VecOf<S> {
    VecOf { elem, len_range }
}

/// See [`vec_of`].
#[derive(Debug, Clone)]
pub struct VecOf<S> {
    elem: S,
    len_range: Range<usize>,
}

impl<S: Strategy> Strategy for VecOf<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
        let len = rng.gen_range(self.len_range.clone());
        (0..len).map(|_| self.elem.generate(rng)).collect()
    }

    fn shrink(&self, value: &Vec<S::Value>) -> Vec<Vec<S::Value>> {
        let min_len = self.len_range.start;
        let mut out = Vec::new();
        // Drop the back half, then single elements (front to back).
        if value.len() > min_len {
            let half = (value.len() + min_len).div_ceil(2);
            if half < value.len() {
                out.push(value[..half].to_vec());
            }
            for i in 0..value.len() {
                let mut v = value.clone();
                v.remove(i);
                out.push(v);
            }
        }
        // Shrink each element in place (first shrink candidate only, to
        // bound the fan-out).
        for i in 0..value.len() {
            if let Some(simpler) = self.elem.shrink(&value[i]).into_iter().next() {
                let mut v = value.clone();
                v[i] = simpler;
                out.push(v);
            }
        }
        out
    }
}

/// A point uniform in `rect`, shrinking toward the rect centre (which
/// stays interior for every sub-rectangle).
pub fn point_in(rect: Rect) -> PointIn {
    PointIn { rect }
}

/// See [`point_in`].
#[derive(Debug, Clone)]
pub struct PointIn {
    rect: Rect,
}

impl Strategy for PointIn {
    type Value = Point2;

    fn generate(&self, rng: &mut StdRng) -> Point2 {
        let u: f64 = rng.gen();
        let v: f64 = rng.gen();
        self.rect.lerp(u, v)
    }

    fn shrink(&self, value: &Point2) -> Vec<Point2> {
        let centre = self.rect.lerp(0.5, 0.5);
        if value.distance(centre) < 1e-12 {
            return Vec::new();
        }
        vec![centre, value.midpoint(centre)]
    }
}

/// `count_range` points uniform in `rect` (a [`vec_of`] of
/// [`point_in`]).
pub fn points_in(rect: Rect, count_range: Range<usize>) -> VecOf<PointIn> {
    vec_of(point_in(rect), count_range)
}

/// A simple (star-shaped, hence non-self-intersecting) polygon inside
/// `rect`: vertices at sorted random angles around the centre with
/// random radii. Shrinks by dropping vertices down to a triangle.
pub fn polygon_in(rect: Rect, vertex_range: Range<usize>) -> PolygonIn {
    PolygonIn { rect, vertex_range }
}

/// See [`polygon_in`].
#[derive(Debug, Clone)]
pub struct PolygonIn {
    rect: Rect,
    vertex_range: Range<usize>,
}

impl Strategy for PolygonIn {
    type Value = Polygon;

    fn generate(&self, rng: &mut StdRng) -> Polygon {
        let n = rng.gen_range(self.vertex_range.clone()).max(3);
        let centre = self.rect.lerp(0.5, 0.5);
        let r_max = 0.45 * self.rect.width().min(self.rect.height());
        loop {
            let mut angles: Vec<f64> = (0..n)
                .map(|_| rng.gen_range(0.0..std::f64::consts::TAU))
                .collect();
            angles.sort_by(f64::total_cmp);
            // Reject near-coincident angles (degenerate edges).
            let distinct = angles
                .windows(2)
                .all(|w| w[1] - w[0] > 1e-3);
            if !distinct {
                continue;
            }
            let vertices: Vec<Point2> = angles
                .iter()
                .map(|&a| {
                    let r = rng.gen_range(0.3 * r_max..r_max);
                    Point2::new(centre.x + r * a.cos(), centre.y + r * a.sin())
                })
                .collect();
            if let Ok(poly) = Polygon::new(vertices) {
                return poly;
            }
        }
    }

    fn shrink(&self, value: &Polygon) -> Vec<Polygon> {
        let verts = value.vertices();
        if verts.len() <= 3 {
            return Vec::new();
        }
        let mut out = Vec::new();
        for i in 0..verts.len() {
            let mut v = verts.to_vec();
            v.remove(i);
            if let Ok(poly) = Polygon::new(v) {
                out.push(poly);
            }
        }
        out
    }
}

/// A mesh generated by [`MeshBuilder`] on the unit die with a random
/// area budget, bundled with the parameters that built it so shrinking
/// can re-run the builder on a coarser budget.
#[derive(Clone)]
pub struct GeneratedMesh {
    /// The `max_area_fraction` handed to the builder.
    pub max_area_fraction: f64,
    /// The `min_angle_degrees` handed to the builder.
    pub min_angle_deg: f64,
    /// The built mesh.
    pub mesh: Mesh,
}

impl std::fmt::Debug for GeneratedMesh {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "GeneratedMesh {{ max_area_fraction: {:.4}, min_angle_deg: {:.1}, triangles: {} }}",
            self.max_area_fraction,
            self.min_angle_deg,
            self.mesh.len()
        )
    }
}

/// A unit-die mesh with `max_area_fraction` drawn from `area_range`
/// (values in roughly `0.005..0.25` keep tests fast). Shrinks by
/// coarsening: quadrupling the area budget toward `area_range.end`.
pub fn unit_die_mesh(area_range: Range<f64>, min_angle_deg: f64) -> UnitDieMesh {
    UnitDieMesh {
        area_range,
        min_angle_deg,
    }
}

/// See [`unit_die_mesh`].
#[derive(Debug, Clone)]
pub struct UnitDieMesh {
    area_range: Range<f64>,
    min_angle_deg: f64,
}

impl UnitDieMesh {
    fn build(&self, fraction: f64) -> Option<GeneratedMesh> {
        MeshBuilder::new(Rect::unit_die())
            .max_area_fraction(fraction)
            .min_angle_degrees(self.min_angle_deg)
            .build()
            .ok()
            .map(|mesh| GeneratedMesh {
                max_area_fraction: fraction,
                min_angle_deg: self.min_angle_deg,
                mesh,
            })
    }
}

impl Strategy for UnitDieMesh {
    type Value = GeneratedMesh;

    fn generate(&self, rng: &mut StdRng) -> GeneratedMesh {
        loop {
            let fraction = rng.gen_range(self.area_range.clone());
            if let Some(m) = self.build(fraction) {
                return m;
            }
        }
    }

    fn shrink(&self, value: &GeneratedMesh) -> Vec<GeneratedMesh> {
        let coarser = (value.max_area_fraction * 4.0).min(self.area_range.end * 0.999);
        if coarser <= value.max_area_fraction * 1.01 {
            return Vec::new();
        }
        self.build(coarser).into_iter().collect()
    }
}

/// A random symmetric positive-definite matrix `A Aᵀ + εI` with size
/// drawn from `n_range` and entries of `A` uniform in `[-1, 1)`.
/// Shrinks to leading principal submatrices, which remain SPD.
pub fn spd_matrix(n_range: Range<usize>) -> SpdMatrix {
    SpdMatrix { n_range }
}

/// See [`spd_matrix`].
#[derive(Debug, Clone)]
pub struct SpdMatrix {
    n_range: Range<usize>,
}

impl Strategy for SpdMatrix {
    type Value = Matrix;

    fn generate(&self, rng: &mut StdRng) -> Matrix {
        let n = rng.gen_range(self.n_range.clone()).max(1);
        let a = Matrix::from_fn(n, n, |_, _| rng.gen_range(-1.0..1.0));
        let mut s = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..n {
                let mut acc = 0.0;
                for k in 0..n {
                    acc += a[(i, k)] * a[(j, k)];
                }
                s[(i, j)] = acc;
            }
        }
        for i in 0..n {
            s[(i, i)] += 1e-6 * n as f64;
        }
        s
    }

    fn shrink(&self, value: &Matrix) -> Vec<Matrix> {
        let n = value.rows();
        let min_n = self.n_range.start.max(1);
        if n <= min_n {
            return Vec::new();
        }
        let mut out = Vec::new();
        for target in [min_n, (n + min_n) / 2, n - 1] {
            if target < n && out.iter().all(|m: &Matrix| m.rows() != target) {
                out.push(Matrix::from_fn(target, target, |i, j| value[(i, j)]));
            }
        }
        out
    }
}

/// A physically-valid covariance kernel drawn from every family the
/// workspace ships (all 2-D-valid — the 1-D-only [`LinearConeKernel`]
/// is deliberately excluded; feed it explicitly to test PSD *violation*
/// detection).
///
/// [`LinearConeKernel`]: klest_kernels::LinearConeKernel
#[derive(Debug, Clone, PartialEq)]
pub enum KernelCase {
    /// `exp(-c·d²)` (the paper's Table 1 kernel).
    Gaussian {
        /// Decay rate `c`.
        c: f64,
    },
    /// `exp(-c·d)` along Euclidean distance, as a separable product.
    Separable {
        /// Decay rate `c`.
        c: f64,
    },
    /// `exp(-c·(|Δx|+|Δy|))` (L1 exponential).
    Exponential {
        /// Decay rate `c`.
        c: f64,
    },
    /// `exp(-c·‖Δ‖)` (radial exponential).
    Radial {
        /// Decay rate `c`.
        c: f64,
    },
    /// The Matérn family (b, s) — requires `b > 0`, `s > 1`.
    Matern {
        /// Scale parameter `b`.
        b: f64,
        /// Smoothness parameter `s`.
        s: f64,
    },
}

impl KernelCase {
    /// Instantiates the concrete kernel.
    ///
    /// # Panics
    ///
    /// Never for values produced by [`any_kernel`] — all generated
    /// parameters satisfy the family constraints by construction.
    pub fn build(&self) -> Box<dyn CovarianceKernel> {
        match *self {
            KernelCase::Gaussian { c } => Box::new(GaussianKernel::new(c)),
            KernelCase::Separable { c } => Box::new(SeparableExponentialKernel::new(c)),
            KernelCase::Exponential { c } => Box::new(ExponentialKernel::new(c)),
            KernelCase::Radial { c } => Box::new(RadialExponentialKernel::new(c)),
            KernelCase::Matern { b, s } => match MaternKernel::new(b, s) {
                Ok(k) => Box::new(k),
                Err(_) => Box::new(GaussianKernel::new(1.0)),
            },
        }
    }
}

/// A valid-kernel strategy over every 2-D family. Shrinks parameters
/// toward 1 and families toward the (simplest) Gaussian.
pub fn any_kernel() -> AnyKernel {
    AnyKernel {}
}

/// See [`any_kernel`].
#[derive(Debug, Clone)]
pub struct AnyKernel {}

impl Strategy for AnyKernel {
    type Value = KernelCase;

    fn generate(&self, rng: &mut StdRng) -> KernelCase {
        match rng.gen_range(0..5u32) {
            0 => KernelCase::Gaussian {
                c: rng.gen_range(0.2..6.0),
            },
            1 => KernelCase::Separable {
                c: rng.gen_range(0.2..6.0),
            },
            2 => KernelCase::Exponential {
                c: rng.gen_range(0.2..6.0),
            },
            3 => KernelCase::Radial {
                c: rng.gen_range(0.2..6.0),
            },
            _ => KernelCase::Matern {
                b: rng.gen_range(0.5..3.0),
                s: rng.gen_range(1.2..3.0),
            },
        }
    }

    fn shrink(&self, value: &KernelCase) -> Vec<KernelCase> {
        let canonical = KernelCase::Gaussian { c: 1.0 };
        if *value == canonical {
            return Vec::new();
        }
        let mut out = vec![canonical];
        let toward_one = |x: f64| 1.0f64.midpoint(x);
        out.push(match *value {
            KernelCase::Gaussian { c } => KernelCase::Gaussian { c: toward_one(c) },
            KernelCase::Separable { c } => KernelCase::Separable { c: toward_one(c) },
            KernelCase::Exponential { c } => KernelCase::Exponential { c: toward_one(c) },
            KernelCase::Radial { c } => KernelCase::Radial { c: toward_one(c) },
            KernelCase::Matern { b, s } => KernelCase::Matern {
                b: toward_one(b),
                s: 1.2f64.midpoint(s),
            },
        });
        out
    }
}

/// A strictly-positive descending eigen-spectrum with occasional exact
/// ties and near-degenerate pairs (the regimes that break naive
/// truncation logic). Shrinks by truncating to prefixes.
pub fn descending_spectrum(len_range: Range<usize>) -> DescendingSpectrum {
    DescendingSpectrum { len_range }
}

/// See [`descending_spectrum`].
#[derive(Debug, Clone)]
pub struct DescendingSpectrum {
    len_range: Range<usize>,
}

impl Strategy for DescendingSpectrum {
    type Value = Vec<f64>;

    fn generate(&self, rng: &mut StdRng) -> Vec<f64> {
        let len = rng.gen_range(self.len_range.clone()).max(1);
        let mut spectrum = Vec::with_capacity(len);
        let mut current = rng.gen_range(0.5..2.0);
        for _ in 0..len {
            spectrum.push(current);
            let u: f64 = rng.gen();
            let ratio = if u < 0.15 {
                1.0 // exact tie
            } else if u < 0.3 {
                1.0 - 1e-13 // near-degenerate pair
            } else {
                rng.gen_range(0.3..0.98)
            };
            current *= ratio;
        }
        spectrum
    }

    fn shrink(&self, value: &Vec<f64>) -> Vec<Vec<f64>> {
        let min_len = self.len_range.start.max(1);
        if value.len() <= min_len {
            return Vec::new();
        }
        let mut out = Vec::new();
        for target in [min_len, (value.len() + min_len) / 2, value.len() - 1] {
            if target < value.len() && out.iter().all(|v: &Vec<f64>| v.len() != target) {
                out.push(value[..target].to_vec());
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use klest_rng::SeedableRng;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    #[test]
    fn scalar_strategies_respect_ranges() {
        let f = f64_in(-2.0..3.0);
        let u = usize_in(2..9);
        let mut r = rng(1);
        for _ in 0..200 {
            let x = f.generate(&mut r);
            assert!((-2.0..3.0).contains(&x));
            let n = u.generate(&mut r);
            assert!((2..9).contains(&n));
        }
    }

    #[test]
    fn f64_shrinks_toward_zero_anchor() {
        let s = f64_in(-5.0..5.0);
        let candidates = s.shrink(&4.0);
        assert_eq!(candidates[0], 0.0);
        assert!(candidates[1].abs() < 4.0);
        assert!(s.shrink(&0.0).is_empty());
    }

    #[test]
    fn usize_shrink_makes_progress() {
        let s = usize_in(3..100);
        let mut v = 97usize;
        let mut steps = 0;
        while let Some(&c) = s.shrink(&v).first() {
            assert!(c < v);
            v = c;
            steps += 1;
            assert!(steps < 100, "no fixed point");
        }
        assert_eq!(v, 3);
    }

    #[test]
    fn points_stay_inside_rect() {
        let rect = Rect::new(Point2::new(1.0, 2.0), Point2::new(3.0, 5.0));
        let s = point_in(rect);
        let mut r = rng(2);
        for _ in 0..100 {
            let p = s.generate(&mut r);
            assert!(rect.contains(p), "{p:?}");
            for q in s.shrink(&p) {
                assert!(rect.contains(q), "{q:?}");
            }
        }
    }

    #[test]
    fn polygons_are_simple_and_shrink_to_triangles() {
        let s = polygon_in(Rect::unit_die(), 3..9);
        let mut r = rng(3);
        for _ in 0..25 {
            let poly = s.generate(&mut r);
            assert!(poly.len() >= 3);
            assert!(poly.area() > 0.0);
            let mut current = poly;
            while let Some(smaller) = s.shrink(&current).into_iter().next() {
                assert!(smaller.len() < current.len());
                current = smaller;
            }
            assert_eq!(current.len(), 3);
        }
    }

    #[test]
    fn meshes_build_and_coarsen() {
        let s = unit_die_mesh(0.02..0.25, 25.0);
        let mut r = rng(4);
        let m = s.generate(&mut r);
        assert!(m.mesh.len() >= 4);
        if let Some(coarser) = s.shrink(&m).into_iter().next() {
            assert!(coarser.max_area_fraction > m.max_area_fraction);
        }
    }

    #[test]
    fn spd_matrices_have_positive_diagonal_and_symmetry() {
        let s = spd_matrix(2..8);
        let mut r = rng(5);
        for _ in 0..20 {
            let m = s.generate(&mut r);
            for i in 0..m.rows() {
                assert!(m[(i, i)] > 0.0);
                for j in 0..m.cols() {
                    assert!((m[(i, j)] - m[(j, i)]).abs() < 1e-12);
                }
            }
            for sub in s.shrink(&m) {
                assert!(sub.rows() < m.rows());
                assert!(sub.rows() >= 2);
            }
        }
    }

    #[test]
    fn kernels_build_and_evaluate_to_unit_variance() {
        let s = any_kernel();
        let mut r = rng(6);
        for _ in 0..40 {
            let case = s.generate(&mut r);
            let k = case.build();
            let p = Point2::new(0.3, 0.7);
            let v = k.eval(p, p);
            assert!((v - 1.0).abs() < 1e-9, "{case:?}: K(p,p) = {v}");
        }
    }

    #[test]
    fn spectra_are_positive_descending_with_ties() {
        let s = descending_spectrum(5..40);
        let mut r = rng(7);
        let mut saw_tie = false;
        for _ in 0..50 {
            let spec = s.generate(&mut r);
            for w in spec.windows(2) {
                assert!(w[1] <= w[0], "not descending: {spec:?}");
                if w[1] == w[0] {
                    saw_tie = true;
                }
            }
            assert!(spec.iter().all(|&x| x > 0.0));
        }
        assert!(saw_tie, "tie regime never generated");
    }
}
