//! The [`Strategy`] abstraction: a seeded generator plus a shrinker.

use klest_rng::StdRng;
use std::fmt;

/// A generator of test values with an optional shrinker.
///
/// `generate` must be a pure function of the RNG stream — no ambient
/// state, no wall clock — so that a case seed fully determines the value
/// (the replay contract). `shrink` proposes *simpler* candidates for a
/// failing value, most aggressive first; the runner greedily accepts the
/// first candidate that still fails. Shrinking must make progress toward
/// a fixed point (each candidate strictly simpler), otherwise the
/// runner's step budget cuts the walk short.
pub trait Strategy {
    /// The generated value type.
    type Value: Clone + fmt::Debug;

    /// Draws one value from the RNG.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Proposes simpler variants of a failing value (may be empty).
    fn shrink(&self, _value: &Self::Value) -> Vec<Self::Value> {
        Vec::new()
    }
}

impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);

    fn generate(&self, rng: &mut StdRng) -> Self::Value {
        (self.0.generate(rng), self.1.generate(rng))
    }

    fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
        let mut out = Vec::new();
        for a in self.0.shrink(&value.0) {
            out.push((a, value.1.clone()));
        }
        for b in self.1.shrink(&value.1) {
            out.push((value.0.clone(), b));
        }
        out
    }
}

impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);

    fn generate(&self, rng: &mut StdRng) -> Self::Value {
        (
            self.0.generate(rng),
            self.1.generate(rng),
            self.2.generate(rng),
        )
    }

    fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
        let mut out = Vec::new();
        for a in self.0.shrink(&value.0) {
            out.push((a, value.1.clone(), value.2.clone()));
        }
        for b in self.1.shrink(&value.1) {
            out.push((value.0.clone(), b, value.2.clone()));
        }
        for c in self.2.shrink(&value.2) {
            out.push((value.0.clone(), value.1.clone(), c));
        }
        out
    }
}
