//! # klest-rng
//!
//! Small, dependency-free, deterministic pseudo-random number generation
//! for the `klest` workspace. The whole workspace must build and test
//! fully offline, so instead of pulling in the `rand` ecosystem this
//! crate provides the thin slice of it we actually use:
//!
//! - [`SplitMix64`] — the classic 64-bit mixer, used both as a seeder and
//!   as a standalone generator,
//! - [`StdRng`] — the workspace's default generator, a xoshiro256++
//!   seeded through SplitMix64 (same construction the xoshiro authors
//!   recommend),
//! - the [`Rng`] / [`SeedableRng`] traits mirroring the minimal `rand`
//!   surface the workspace consumes (`gen::<f64>()`, `gen_range`,
//!   `seed_from_u64`).
//!
//! Determinism is part of the contract: the same seed yields the same
//! stream on every platform and every run, which the experiment harnesses
//! and regression tests rely on.
//!
//! ```
//! use klest_rng::{Rng, SeedableRng, StdRng};
//!
//! let mut rng = StdRng::seed_from_u64(42);
//! let u: f64 = rng.gen();
//! assert!((0.0..1.0).contains(&u));
//! let i = rng.gen_range(0..10usize);
//! assert!(i < 10);
//! ```

#![deny(missing_docs)]

use std::ops::Range;

/// Construction from a 64-bit seed. Same seed, same stream, forever.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// A sample drawn uniformly from a type's "standard" distribution
/// (`[0, 1)` for floats, the full range for integers).
pub trait StandardSample: Sized {
    /// Draws one value from `rng`.
    fn standard<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

/// A sample drawn uniformly from a half-open `start..end` range.
pub trait RangeSample: Sized {
    /// Draws one value in `[range.start, range.end)` from `rng`.
    fn uniform_in<R: Rng + ?Sized>(rng: &mut R, range: Range<Self>) -> Self;
}

/// The minimal generator interface: a source of uniform 64-bit words plus
/// the derived draws the workspace uses.
pub trait Rng {
    /// The next uniform 64-bit word of the stream.
    fn next_u64(&mut self) -> u64;

    /// A standard draw: `f64` in `[0, 1)` (53-bit resolution), or a full
    /// range integer.
    fn gen<T: StandardSample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::standard(self)
    }

    /// A uniform draw from `range` (half-open).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T: RangeSample>(&mut self, range: Range<T>) -> T
    where
        Self: Sized,
    {
        T::uniform_in(self, range)
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

impl StandardSample for u64 {
    fn standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for u32 {
    fn standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl StandardSample for f64 {
    fn standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // 53 high bits -> [0, 1) with full double resolution.
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl StandardSample for bool {
    fn standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Lemire-style unbiased bounded integer draw.
fn bounded_u64<R: Rng + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    // Rejection sampling on the top bits: unbiased and branch-cheap.
    let threshold = bound.wrapping_neg() % bound;
    loop {
        let r = rng.next_u64();
        let (hi, lo) = {
            let wide = (r as u128) * (bound as u128);
            ((wide >> 64) as u64, wide as u64)
        };
        if lo >= threshold {
            return hi;
        }
    }
}

macro_rules! impl_range_int {
    ($($t:ty),*) => {$(
        impl RangeSample for $t {
            fn uniform_in<R: Rng + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "empty range in gen_range");
                let span = (range.end as u64).wrapping_sub(range.start as u64);
                range.start + bounded_u64(rng, span) as $t
            }
        }
    )*};
}
impl_range_int!(usize, u64, u32, u16, u8);

macro_rules! impl_range_signed {
    ($($t:ty),*) => {$(
        impl RangeSample for $t {
            fn uniform_in<R: Rng + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "empty range in gen_range");
                let span = (range.end as i64).wrapping_sub(range.start as i64) as u64;
                (range.start as i64).wrapping_add(bounded_u64(rng, span) as i64) as $t
            }
        }
    )*};
}
impl_range_signed!(i64, i32, i16, i8, isize);

impl RangeSample for f64 {
    fn uniform_in<R: Rng + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
        assert!(range.start < range.end, "empty range in gen_range");
        let u: f64 = StandardSample::standard(rng);
        range.start + u * (range.end - range.start)
    }
}

/// SplitMix64: one 64-bit state word, an additive Weyl sequence and a
/// strong finalizing mixer. Passes BigCrush; its main role here is to
/// expand a single `u64` seed into the larger xoshiro state without
/// correlated lanes, but it is a perfectly good generator on its own for
/// non-cryptographic workloads.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates the generator from a seed.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }
}

impl SeedableRng for SplitMix64 {
    fn seed_from_u64(seed: u64) -> Self {
        SplitMix64::new(seed)
    }
}

impl Rng for SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// The workspace's default generator: xoshiro256++ (Blackman & Vigna),
/// 256 bits of state, period 2²⁵⁶ − 1, seeded via [`SplitMix64`].
///
/// Named `StdRng` so call sites read like the `rand` idiom they replace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StdRng {
    s: [u64; 4],
}

impl StdRng {
    /// Snapshot of the full 256-bit generator state, for checkpointing.
    /// Feeding it back through [`StdRng::from_state`] resumes the stream
    /// exactly where it left off.
    pub fn state(&self) -> [u64; 4] {
        self.s
    }

    /// Rebuilds a generator from a [`StdRng::state`] snapshot.
    ///
    /// The all-zero state is a xoshiro fixed point (the stream would be
    /// constant zero); it is replaced by the `seed_from_u64(0)` state so
    /// a corrupted snapshot degrades to a valid generator instead of a
    /// broken one.
    pub fn from_state(s: [u64; 4]) -> Self {
        if s == [0; 4] {
            return StdRng::seed_from_u64(0);
        }
        StdRng { s }
    }
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut mixer = SplitMix64::new(seed);
        let s = [
            mixer.next_u64(),
            mixer.next_u64(),
            mixer.next_u64(),
            mixer.next_u64(),
        ];
        StdRng { s }
    }
}

impl Rng for StdRng {
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0]
            .wrapping_add(s[3])
            .rotate_left(23)
            .wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(StdRng::seed_from_u64(7).next_u64(), c.next_u64());
    }

    #[test]
    fn state_roundtrip_resumes_stream_exactly() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..17 {
            rng.next_u64();
        }
        let snap = rng.state();
        let tail: Vec<u64> = (0..32).map(|_| rng.next_u64()).collect();
        let mut resumed = StdRng::from_state(snap);
        let replay: Vec<u64> = (0..32).map(|_| resumed.next_u64()).collect();
        assert_eq!(tail, replay);
        // The degenerate all-zero snapshot maps to the seed-0 generator.
        assert_eq!(
            StdRng::from_state([0; 4]).next_u64(),
            StdRng::seed_from_u64(0).next_u64()
        );
    }

    #[test]
    fn splitmix_reference_vector() {
        // Known-answer values for SplitMix64 with seed 1234567
        // (from the public-domain reference implementation).
        let mut rng = SplitMix64::new(1234567);
        assert_eq!(rng.next_u64(), 6457827717110365317);
        assert_eq!(rng.next_u64(), 3203168211198807973);
    }

    #[test]
    fn unit_interval_draws() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
            sum += u;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn gen_range_covers_and_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let i = rng.gen_range(0..10usize);
            seen[i] = true;
        }
        assert!(seen.iter().all(|&s| s), "all buckets hit: {seen:?}");
        for _ in 0..1000 {
            let x = rng.gen_range(-2.0f64..3.0);
            assert!((-2.0..3.0).contains(&x));
            let k = rng.gen_range(5..6u32);
            assert_eq!(k, 5);
            let n = rng.gen_range(-10..-3i64);
            assert!((-10..-3).contains(&n));
        }
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = StdRng::seed_from_u64(1);
        let _ = rng.gen_range(3..3usize);
    }

    #[test]
    fn bounded_draw_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(99);
        let mut counts = [0usize; 7];
        let n = 70_000;
        for _ in 0..n {
            counts[rng.gen_range(0..7usize)] += 1;
        }
        let expected = n / 7;
        for (i, &c) in counts.iter().enumerate() {
            let dev = (c as f64 - expected as f64).abs() / expected as f64;
            assert!(dev < 0.05, "bucket {i}: {c} vs {expected}");
        }
    }

    #[test]
    fn rng_trait_object_through_reference() {
        // `&mut R` forwards, so generic helpers can borrow generators.
        fn draw<R: Rng>(mut rng: R) -> u64 {
            rng.next_u64()
        }
        let mut rng = StdRng::seed_from_u64(5);
        let direct = StdRng::seed_from_u64(5).next_u64();
        assert_eq!(draw(&mut rng), direct);
    }
}
