//! Crash-consistent named checkpoints plus deterministic kill points.
//!
//! Two primitives make the stack restartable at any instant:
//!
//! - [`CheckpointStore`]: a directory of named, generation-stamped,
//!   checksummed checkpoint files written with the full crash-safe
//!   ladder (unique temp file → fsync → atomic rename → directory
//!   fsync). A torn or corrupted checkpoint is *quarantined* — renamed
//!   aside and counted — never silently trusted or silently dropped, so
//!   recovery code can distinguish "no checkpoint" from "damaged
//!   checkpoint".
//! - [`crash_point`] / [`arm_crash_point`]: deterministic kill points.
//!   Library code marks the instants at which a real process death is
//!   survivable; tests arm the N-th arrival at a named site to die.
//!   [`CrashMode::Unwind`] simulates process exit in-test by panicking
//!   with an [`AbortSignal`] payload that the [`Supervisor`] refuses to
//!   retry (catch-point unwinding); [`CrashMode::Abort`] calls the real
//!   `std::process::abort`, which the crash-smoke script uses against a
//!   live `klest serve`. The environment hook `KLEST_CRASH_AT=site:N`
//!   arms a real abort from outside the process.
//!
//! [`Supervisor`]: crate::Supervisor

use std::fs;
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

/// FNV-1a 64-bit hash — the integrity checksum for checkpoint payloads
/// and journal records (dependency-free, stable across platforms).
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

const HEADER: &str = "klest-checkpoint/v1";
const EXT: &str = "ckpt";

/// Monotonic uniquifier for temp file names, so concurrent saves (or a
/// crash-leftover temp from a previous life) can never collide.
static TMP_SEQ: AtomicU64 = AtomicU64::new(0);

/// A directory of named crash-consistent checkpoints.
///
/// Every [`save`](CheckpointStore::save) is atomic and durable: the new
/// payload is written to a unique temp file, fsynced, renamed over the
/// live name and the directory entry is fsynced — a crash at any instant
/// leaves either the previous generation or the new one, never a torn
/// file under the live name. Every [`load`](CheckpointStore::load)
/// validates the embedded length and FNV-1a checksum; damage is
/// quarantined (renamed to `*.quarantine`, counted in the
/// `runtime.checkpoint.quarantined` obs counter) instead of being
/// silently skipped.
#[derive(Debug)]
pub struct CheckpointStore {
    dir: PathBuf,
    generation: AtomicU64,
    quarantined: AtomicU64,
}

impl CheckpointStore {
    /// Opens (creating if needed) a checkpoint directory. The next
    /// generation stamp continues monotonically from the largest
    /// generation already on disk, so stamps survive restarts.
    ///
    /// # Errors
    ///
    /// Any I/O error creating or scanning the directory.
    pub fn open(dir: impl Into<PathBuf>) -> io::Result<CheckpointStore> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        let mut max_gen = 0u64;
        for entry in fs::read_dir(&dir)? {
            let path = entry?.path();
            if path.extension().and_then(|e| e.to_str()) != Some(EXT) {
                continue;
            }
            if let Ok(text) = fs::read_to_string(&path) {
                if let Some(g) = parse_generation(&text) {
                    max_gen = max_gen.max(g);
                }
            }
        }
        Ok(CheckpointStore {
            dir,
            generation: AtomicU64::new(max_gen),
            quarantined: AtomicU64::new(0),
        })
    }

    /// The directory this store writes into.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Checkpoints quarantined by this store since it was opened.
    pub fn quarantined(&self) -> u64 {
        self.quarantined.load(Ordering::Relaxed)
    }

    /// Atomically and durably replaces checkpoint `name` with `payload`,
    /// returning the generation stamp of the new entry.
    ///
    /// # Errors
    ///
    /// [`io::ErrorKind::InvalidInput`] for a `name` outside
    /// `[A-Za-z0-9._-]`, otherwise any I/O error from the write ladder.
    pub fn save(&self, name: &str, payload: &str) -> io::Result<u64> {
        validate_name(name)?;
        let generation = self.generation.fetch_add(1, Ordering::Relaxed) + 1;
        let framed = format!(
            "{HEADER}\nname {name}\ngeneration {generation}\nlen {}\nfnv1a64 {:016x}\n{payload}",
            payload.len(),
            fnv1a64(payload.as_bytes()),
        );
        let live = self.path_of(name);
        let seq = TMP_SEQ.fetch_add(1, Ordering::Relaxed);
        let tmp = self
            .dir
            .join(format!(".{name}.tmp.{}.{seq}", std::process::id()));
        let result = (|| {
            let mut f = fs::File::create(&tmp)?;
            f.write_all(framed.as_bytes())?;
            f.sync_all()?;
            fs::rename(&tmp, &live)?;
            fsync_dir(&self.dir);
            Ok(generation)
        })();
        if result.is_err() {
            let _ = fs::remove_file(&tmp);
        }
        result
    }

    /// Loads checkpoint `name`, returning its generation stamp and
    /// payload. `None` means "no usable checkpoint": either the file
    /// does not exist, or it failed validation — in which case it has
    /// been quarantined (renamed to `*.quarantine` and counted), so a
    /// later save starts from a clean name.
    pub fn load(&self, name: &str) -> Option<(u64, String)> {
        if validate_name(name).is_err() {
            return None;
        }
        let path = self.path_of(name);
        let text = match fs::read_to_string(&path) {
            Ok(text) => text,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return None,
            Err(_) => {
                self.quarantine(&path);
                return None;
            }
        };
        match parse_checkpoint(&text, name) {
            Some(parsed) => Some(parsed),
            None => {
                self.quarantine(&path);
                None
            }
        }
    }

    /// Removes checkpoint `name` (absence is not an error).
    ///
    /// # Errors
    ///
    /// Any I/O error other than the file not existing.
    pub fn clear(&self, name: &str) -> io::Result<()> {
        validate_name(name)?;
        match fs::remove_file(self.path_of(name)) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(e),
        }
    }

    fn path_of(&self, name: &str) -> PathBuf {
        self.dir.join(format!("{name}.{EXT}"))
    }

    fn quarantine(&self, path: &Path) {
        let mut aside = path.as_os_str().to_owned();
        aside.push(".quarantine");
        if fs::rename(path, PathBuf::from(aside)).is_ok() {
            self.quarantined.fetch_add(1, Ordering::Relaxed);
            klest_obs::counter_add("runtime.checkpoint.quarantined", 1);
        }
    }
}

fn validate_name(name: &str) -> io::Result<()> {
    let ok = !name.is_empty()
        && !name.starts_with('.')
        && name
            .bytes()
            .all(|b| b.is_ascii_alphanumeric() || matches!(b, b'.' | b'_' | b'-'));
    if ok {
        Ok(())
    } else {
        Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("invalid checkpoint name {name:?}"),
        ))
    }
}

fn parse_generation(text: &str) -> Option<u64> {
    let mut lines = text.lines();
    if lines.next()? != HEADER {
        return None;
    }
    lines.next()?; // name
    lines.next()?.strip_prefix("generation ")?.parse().ok()
}

/// Validates a framed checkpoint file against `name`; `None` on any
/// header, length or checksum mismatch (including a torn tail).
fn parse_checkpoint(text: &str, name: &str) -> Option<(u64, String)> {
    let rest = text.strip_prefix(HEADER)?.strip_prefix('\n')?;
    let rest = rest.strip_prefix("name ")?;
    let (got_name, rest) = rest.split_once('\n')?;
    if got_name != name {
        return None;
    }
    let rest = rest.strip_prefix("generation ")?;
    let (gen_str, rest) = rest.split_once('\n')?;
    let generation: u64 = gen_str.parse().ok()?;
    let rest = rest.strip_prefix("len ")?;
    let (len_str, rest) = rest.split_once('\n')?;
    let len: usize = len_str.parse().ok()?;
    let rest = rest.strip_prefix("fnv1a64 ")?;
    let (sum_str, payload) = rest.split_once('\n')?;
    let sum = u64::from_str_radix(sum_str, 16).ok()?;
    if payload.len() != len || fnv1a64(payload.as_bytes()) != sum {
        return None;
    }
    Some((generation, payload.to_string()))
}

/// Best-effort fsync of a directory entry (rename durability). Ignored on
/// platforms where directories cannot be opened for sync.
fn fsync_dir(dir: &Path) {
    if let Ok(f) = fs::File::open(dir) {
        let _ = f.sync_all();
    }
}

// ---------------------------------------------------------------------------
// Deterministic kill points.
// ---------------------------------------------------------------------------

/// Panic payload of a *simulated* process abort fired at a
/// [`crash_point`] (or by a fault plan's `abort_at`). The
/// [`Supervisor`](crate::Supervisor) recognises this payload and
/// re-raises it instead of retrying — process-death semantics, delivered
/// by unwinding to the test's catch point.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AbortSignal {
    /// The kill-point site that fired (e.g. `"mc/batch"`).
    pub site: String,
}

/// Simulates a process abort at `site` by panicking with an
/// [`AbortSignal`]. Never returns.
pub fn simulated_abort(site: impl Into<String>) -> ! {
    std::panic::panic_any(AbortSignal { site: site.into() })
}

/// How an armed [`crash_point`] kills the process when it fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrashMode {
    /// Real death: `std::process::abort()` — no destructors, no flush.
    /// What the crash-smoke script injects into a live daemon.
    Abort,
    /// Simulated death: panic with an [`AbortSignal`] payload, which the
    /// supervisor refuses to retry, so it unwinds to the test's
    /// `catch_unwind`.
    Unwind,
}

#[derive(Debug)]
struct ArmedCrash {
    site: String,
    /// Arrivals left before firing (fires when this reaches zero).
    remaining: u64,
    mode: CrashMode,
}

/// Fast-path gate: crash points in hot loops cost one relaxed load when
/// nothing is armed.
static ANY_ARMED: AtomicBool = AtomicBool::new(false);

fn plan() -> &'static Mutex<Vec<ArmedCrash>> {
    static PLAN: OnceLock<Mutex<Vec<ArmedCrash>>> = OnceLock::new();
    PLAN.get_or_init(|| {
        let mut armed = Vec::new();
        // KLEST_CRASH_AT=site:N arms a real abort on the N-th arrival at
        // `site` (N >= 1; a bare site means N = 1). This is the external
        // hook the crash-smoke script uses against a release binary.
        if let Ok(spec) = std::env::var("KLEST_CRASH_AT") {
            let (site, n) = match spec.rsplit_once(':') {
                Some((site, n)) => (site.to_string(), n.parse().unwrap_or(1)),
                None => (spec, 1),
            };
            if !site.is_empty() {
                armed.push(ArmedCrash {
                    site,
                    remaining: n,
                    mode: CrashMode::Abort,
                });
                ANY_ARMED.store(true, Ordering::Relaxed);
            }
        }
        Mutex::new(armed)
    })
}

/// Arms the `hits`-th arrival at `site` to fire with `mode`
/// (`hits = 1` means the very next arrival). Used by chaos tests;
/// production processes arm via `KLEST_CRASH_AT` instead.
pub fn arm_crash_point(site: &str, hits: u64, mode: CrashMode) {
    let mut armed = plan().lock().unwrap_or_else(|e| e.into_inner());
    armed.push(ArmedCrash {
        site: site.to_string(),
        remaining: hits.max(1),
        mode,
    });
    ANY_ARMED.store(true, Ordering::Relaxed);
}

/// Disarms every armed crash point (tests call this in cleanup).
pub fn disarm_crash_points() {
    let mut armed = plan().lock().unwrap_or_else(|e| e.into_inner());
    armed.clear();
    ANY_ARMED.store(false, Ordering::Relaxed);
}

/// A deterministic kill point. Library code places these at the instants
/// where crash-consistency is claimed (after a checkpoint is durable,
/// after a journal record is fsynced); when a test or the environment
/// has armed `site`, the scheduled arrival dies — really
/// ([`CrashMode::Abort`]) or by [`AbortSignal`] unwinding
/// ([`CrashMode::Unwind`]). Unarmed, it costs one relaxed atomic load
/// (plus a one-time environment check on the very first arrival).
pub fn crash_point(site: &str) {
    // The first arrival must consult the plan unconditionally: the
    // KLEST_CRASH_AT environment arming only raises ANY_ARMED when the
    // plan is first built, and nothing else builds it in a process that
    // never calls arm_crash_point.
    static ENV_INIT: std::sync::Once = std::sync::Once::new();
    ENV_INIT.call_once(|| {
        let _ = plan();
    });
    if !ANY_ARMED.load(Ordering::Relaxed) {
        return;
    }
    let fire = {
        let mut armed = plan().lock().unwrap_or_else(|e| e.into_inner());
        let mut fire = None;
        if let Some(pos) = armed.iter().position(|c| c.site == site) {
            let crash = &mut armed[pos];
            crash.remaining -= 1;
            if crash.remaining == 0 {
                fire = Some(armed.remove(pos).mode);
                if armed.is_empty() {
                    ANY_ARMED.store(false, Ordering::Relaxed);
                }
            }
        }
        fire
    };
    match fire {
        Some(CrashMode::Abort) => {
            // Real, immediate process death — the whole point is that no
            // destructor, flush or drain handler runs.
            eprintln!("klest: injected crash at {site}");
            std::process::abort();
        }
        Some(CrashMode::Unwind) => simulated_abort(site),
        None => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tempdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "klest-ckpt-{tag}-{}-{}",
            std::process::id(),
            TMP_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn save_load_roundtrip_with_generations() {
        let dir = tempdir("roundtrip");
        let store = CheckpointStore::open(&dir).unwrap();
        let g1 = store.save("mc", "payload one").unwrap();
        let g2 = store.save("mc", "payload two").unwrap();
        assert!(g2 > g1);
        let (g, payload) = store.load("mc").unwrap();
        assert_eq!(g, g2);
        assert_eq!(payload, "payload two");
        // Generations continue monotonically across a reopen ("restart").
        let reopened = CheckpointStore::open(&dir).unwrap();
        let g3 = reopened.save("mc", "payload three").unwrap();
        assert!(g3 > g2, "generation must survive restart: {g3} vs {g2}");
        assert_eq!(reopened.load("mc").unwrap().1, "payload three");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_checkpoint_is_none_without_quarantine() {
        let dir = tempdir("missing");
        let store = CheckpointStore::open(&dir).unwrap();
        assert!(store.load("nope").is_none());
        assert_eq!(store.quarantined(), 0);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_checkpoint_is_quarantined_not_trusted() {
        let dir = tempdir("torn");
        let store = CheckpointStore::open(&dir).unwrap();
        store.save("lanczos", "0123456789abcdef").unwrap();
        // Tear the file: truncate mid-payload, exactly what a crash
        // during a non-atomic write would leave.
        let live = dir.join("lanczos.ckpt");
        let text = fs::read_to_string(&live).unwrap();
        fs::write(&live, &text[..text.len() - 5]).unwrap();
        assert!(store.load("lanczos").is_none());
        assert_eq!(store.quarantined(), 1);
        assert!(!live.exists(), "damaged file must be moved aside");
        assert!(dir.join("lanczos.ckpt.quarantine").exists());
        // The quarantined name is clean again for the next save.
        store.save("lanczos", "recovered").unwrap();
        assert_eq!(store.load("lanczos").unwrap().1, "recovered");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupted_checksum_is_quarantined() {
        let dir = tempdir("corrupt");
        let store = CheckpointStore::open(&dir).unwrap();
        store.save("serve", "state").unwrap();
        let live = dir.join("serve.ckpt");
        let text = fs::read_to_string(&live).unwrap();
        // Flip a payload byte, keeping the length intact.
        fs::write(&live, text.replace("state", "stale")).unwrap();
        assert!(store.load("serve").is_none());
        assert_eq!(store.quarantined(), 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn payload_with_newlines_and_empty_payload_roundtrip() {
        let dir = tempdir("newlines");
        let store = CheckpointStore::open(&dir).unwrap();
        let payload = "line1\nline2\n\nline4";
        store.save("multi", payload).unwrap();
        assert_eq!(store.load("multi").unwrap().1, payload);
        store.save("empty", "").unwrap();
        assert_eq!(store.load("empty").unwrap().1, "");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn hostile_names_are_rejected() {
        let dir = tempdir("names");
        let store = CheckpointStore::open(&dir).unwrap();
        for bad in ["", "../escape", "a/b", ".hidden", "nul\0byte"] {
            assert!(store.save(bad, "x").is_err(), "{bad:?} must be rejected");
            assert!(store.load(bad).is_none());
        }
        store.clear("never-existed").unwrap();
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn clear_removes_checkpoint() {
        let dir = tempdir("clear");
        let store = CheckpointStore::open(&dir).unwrap();
        store.save("gone", "x").unwrap();
        store.clear("gone").unwrap();
        assert!(store.load("gone").is_none());
        assert_eq!(store.quarantined(), 0);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn fnv_reference_vectors() {
        // Public-domain FNV-1a test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn unwind_crash_point_fires_on_scheduled_arrival_only() {
        disarm_crash_points();
        arm_crash_point("test/site", 3, CrashMode::Unwind);
        crash_point("test/site"); // 1st: survives
        crash_point("other/site"); // different site: ignored
        crash_point("test/site"); // 2nd: survives
        let caught = std::panic::catch_unwind(|| crash_point("test/site"));
        let payload = caught.expect_err("3rd arrival must fire");
        let signal = payload
            .downcast_ref::<AbortSignal>()
            .expect("AbortSignal payload");
        assert_eq!(signal.site, "test/site");
        // The armed point is consumed: further arrivals survive.
        crash_point("test/site");
        disarm_crash_points();
    }
}
