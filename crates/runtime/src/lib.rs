//! Deadline-aware supervised runtime for the KLE→SSTA pipeline.
//!
//! The paper's pitch is that kernel-KLE makes Monte Carlo SSTA practical at
//! scale; a practical *service* must additionally bound its own runtime. This
//! crate provides the two primitives the rest of the workspace builds on:
//!
//! - [`CancelToken`] / [`Budget`]: a cheap cooperative-cancellation handle
//!   (one relaxed atomic load on the fast path) carrying an optional
//!   wall-clock deadline. Tokens form a hierarchy: [`CancelToken::child`]
//!   derives a per-stage token whose effective deadline is the minimum of
//!   the parent's remaining budget and the stage's own allowance, so a stage
//!   can never outlive the run that spawned it. Long-running loops call
//!   [`CancelToken::checkpoint`] and bail out with a typed [`Cancelled`]
//!   partial result instead of running open-ended.
//! - [`Supervisor`]: a scoped worker pool with fault isolation. Each shard
//!   runs under `catch_unwind`; a panicking shard is retried a bounded
//!   number of times with exponential backoff, and the results of shards
//!   that did complete are salvaged instead of being discarded with the
//!   whole pool. [`Supervisor::run_one`] applies the same isolation and
//!   retry ladder to a single unit of work on the caller's thread — the
//!   shape a request-serving worker loop needs.
//! - [`BoundedQueue`] / [`WaitGroup`]: the admission and drain primitives
//!   for long-lived services — non-blocking typed-rejection pushes (load
//!   shedding), blocking pops, close-for-drain semantics and a
//!   deadline-aware all-workers-exited barrier.
//! - [`CheckpointStore`] / [`crash_point`]: crash-consistent named
//!   checkpoints (atomic, fsynced, checksummed, quarantine-on-damage)
//!   plus deterministic kill points — [`CrashMode::Unwind`] simulates
//!   process death in-test via an [`AbortSignal`] panic the supervisor
//!   refuses to retry; [`CrashMode::Abort`] (and the `KLEST_CRASH_AT`
//!   environment hook) is the real `std::process::abort`.
//!
//! The crate is std-only (its single in-workspace dependency, `klest-obs`,
//! is used for retry/fault counters) and sits below `klest-linalg`,
//! `klest-mesh`, `klest-core` and `klest-ssta` in the crate DAG so all of
//! them can thread tokens through their inner loops.

#![deny(missing_docs)]

mod checkpoint;
mod queue;
mod supervisor;
mod token;
mod usage;

pub use checkpoint::{
    arm_crash_point, crash_point, disarm_crash_points, fnv1a64, simulated_abort, AbortSignal,
    CheckpointStore, CrashMode,
};
pub use queue::{BoundedQueue, PushError, WaitGroup};
pub use supervisor::{ShardStatus, SupervisedRun, Supervisor};
pub use token::{Budget, CancelToken, Cancelled, StageBudgets};
pub use usage::{BusyGuard, PoolUsage};
