//! Bounded admission queue and drain primitives for long-lived services.
//!
//! [`BoundedQueue`] is the load-shedding front door a daemon puts between
//! request ingestion and its worker pool: pushes never block (a full
//! queue is a typed [`PushError::Full`] the caller turns into an
//! "overloaded, retry later" rejection), pops block until an item
//! arrives or the queue is closed *and* drained, and [`BoundedQueue::close`]
//! flips the queue into drain mode — producers are refused, consumers
//! keep draining what was already admitted. [`WaitGroup`] is the matching
//! "all workers have exited" barrier with a timeout, so a drain can be
//! given a wall-clock budget.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

fn lock<'a, T>(m: &'a Mutex<T>) -> MutexGuard<'a, T> {
    // Queue state is a plain VecDeque + flags; a panicking holder cannot
    // leave it structurally broken, so poisoning is ignored.
    match m.lock() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// Why a push was refused.
///
/// Both variants hand the item back so the caller can shed it with a
/// typed response instead of losing it.
#[derive(Debug)]
pub enum PushError<T> {
    /// The queue is at capacity — shed the item (load shedding).
    Full(T),
    /// The queue is closed for draining — no new work is admitted.
    Closed(T),
}

impl<T> PushError<T> {
    /// The refused item, regardless of reason.
    pub fn into_inner(self) -> T {
        match self {
            PushError::Full(item) | PushError::Closed(item) => item,
        }
    }
}

struct QueueState<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// A bounded multi-producer / multi-consumer queue with non-blocking
/// admission and close-for-drain semantics (see module docs).
pub struct BoundedQueue<T> {
    state: Mutex<QueueState<T>>,
    available: Condvar,
    capacity: usize,
}

impl<T> BoundedQueue<T> {
    /// A queue admitting at most `capacity` items (clamped to ≥ 1).
    pub fn new(capacity: usize) -> BoundedQueue<T> {
        BoundedQueue {
            state: Mutex::new(QueueState {
                items: VecDeque::new(),
                closed: false,
            }),
            available: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// The admission bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Items currently queued (racy by nature; for gauges and hints).
    pub fn len(&self) -> usize {
        lock(&self.state).items.len()
    }

    /// True when no items are queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// True once [`close`](Self::close) has been called.
    pub fn is_closed(&self) -> bool {
        lock(&self.state).closed
    }

    /// Non-blocking admission: enqueues `item` and returns the new depth,
    /// or refuses with a typed [`PushError`] when full or closed.
    ///
    /// # Errors
    ///
    /// [`PushError::Full`] at capacity, [`PushError::Closed`] after
    /// [`close`](Self::close); both return the item.
    pub fn push(&self, item: T) -> Result<usize, PushError<T>> {
        let mut state = lock(&self.state);
        if state.closed {
            return Err(PushError::Closed(item));
        }
        if state.items.len() >= self.capacity {
            return Err(PushError::Full(item));
        }
        state.items.push_back(item);
        let depth = state.items.len();
        drop(state);
        self.available.notify_one();
        Ok(depth)
    }

    /// Blocking removal: waits until an item is available and returns it,
    /// or returns `None` once the queue is closed *and* empty (the worker
    /// exit signal). Items admitted before `close` are always delivered.
    pub fn pop(&self) -> Option<T> {
        let mut state = lock(&self.state);
        loop {
            if let Some(item) = state.items.pop_front() {
                return Some(item);
            }
            if state.closed {
                return None;
            }
            state = match self.available.wait(state) {
                Ok(guard) => guard,
                Err(poisoned) => poisoned.into_inner(),
            };
        }
    }

    /// Non-blocking removal.
    pub fn try_pop(&self) -> Option<T> {
        lock(&self.state).items.pop_front()
    }

    /// Closes the queue: subsequent pushes are refused with
    /// [`PushError::Closed`], blocked and future pops drain the remaining
    /// items and then return `None`. Idempotent.
    pub fn close(&self) {
        lock(&self.state).closed = true;
        self.available.notify_all();
    }
}

/// A counter of in-flight workers with a deadline-aware wait: the drain
/// barrier a service pairs with [`BoundedQueue::close`].
pub struct WaitGroup {
    count: Mutex<usize>,
    zero: Condvar,
}

impl Default for WaitGroup {
    fn default() -> Self {
        Self::new()
    }
}

impl WaitGroup {
    /// An empty group.
    pub fn new() -> WaitGroup {
        WaitGroup {
            count: Mutex::new(0),
            zero: Condvar::new(),
        }
    }

    /// Registers `n` workers.
    pub fn add(&self, n: usize) {
        *lock(&self.count) += n;
    }

    /// Marks one worker finished.
    pub fn done(&self) {
        let mut count = lock(&self.count);
        *count = count.saturating_sub(1);
        if *count == 0 {
            self.zero.notify_all();
        }
    }

    /// Workers still registered.
    pub fn active(&self) -> usize {
        *lock(&self.count)
    }

    /// Waits until every registered worker called [`done`](Self::done) or
    /// `timeout` elapses; returns `true` when the group reached zero in
    /// time.
    pub fn wait_timeout(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        let mut count = lock(&self.count);
        while *count > 0 {
            let left = deadline.saturating_duration_since(Instant::now());
            if left.is_zero() {
                return false;
            }
            count = match self.zero.wait_timeout(count, left) {
                Ok((guard, _)) => guard,
                Err(poisoned) => poisoned.into_inner().0,
            };
        }
        true
    }

    /// Waits without a deadline until the group reaches zero.
    pub fn wait(&self) {
        let mut count = lock(&self.count);
        while *count > 0 {
            count = match self.zero.wait(count) {
                Ok(guard) => guard,
                Err(poisoned) => poisoned.into_inner(),
            };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::thread;

    #[test]
    fn push_pop_fifo() {
        let q = BoundedQueue::new(4);
        assert_eq!(q.push(1).unwrap(), 1);
        assert_eq!(q.push(2).unwrap(), 2);
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert!(q.is_empty());
        assert_eq!(q.capacity(), 4);
    }

    #[test]
    fn full_queue_sheds_typed() {
        let q = BoundedQueue::new(2);
        q.push("a").unwrap();
        q.push("b").unwrap();
        match q.push("c") {
            Err(PushError::Full(item)) => assert_eq!(item, "c"),
            other => unreachable!("expected Full, got {other:?}"),
        }
        // Popping frees a slot.
        assert_eq!(q.pop(), Some("a"));
        assert!(q.push("c").is_ok());
    }

    #[test]
    fn closed_queue_refuses_but_drains() {
        let q = BoundedQueue::new(4);
        q.push(10).unwrap();
        q.close();
        assert!(q.is_closed());
        match q.push(11) {
            Err(e @ PushError::Closed(_)) => assert_eq!(e.into_inner(), 11),
            other => unreachable!("expected Closed, got {other:?}"),
        }
        // Admitted items still drain; then pops observe the close.
        assert_eq!(q.pop(), Some(10));
        assert_eq!(q.pop(), None);
        assert_eq!(q.try_pop(), None);
    }

    #[test]
    fn blocked_pop_wakes_on_close() {
        let q = BoundedQueue::<usize>::new(1);
        thread::scope(|scope| {
            let handle = scope.spawn(|| q.pop());
            thread::sleep(Duration::from_millis(20));
            q.close();
            assert_eq!(handle.join().unwrap(), None);
        });
    }

    #[test]
    fn concurrent_producers_consumers_lose_nothing() {
        let q = &BoundedQueue::new(8);
        let consumed = &AtomicUsize::new(0);
        let shed = &AtomicUsize::new(0);
        thread::scope(|scope| {
            for _ in 0..3 {
                scope.spawn(move || {
                    while q.pop().is_some() {
                        consumed.fetch_add(1, Ordering::Relaxed);
                    }
                });
            }
            thread::scope(|inner| {
                for p in 0..4usize {
                    inner.spawn(move || {
                        for i in 0..100 {
                            if q.push(p * 100 + i).is_err() {
                                shed.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                    });
                }
            });
            q.close();
        });
        assert_eq!(
            consumed.load(Ordering::Relaxed) + shed.load(Ordering::Relaxed),
            400,
            "every push is either consumed or typed-shed"
        );
    }

    #[test]
    fn wait_group_times_out_and_completes() {
        let wg = WaitGroup::new();
        wg.add(1);
        assert_eq!(wg.active(), 1);
        assert!(!wg.wait_timeout(Duration::from_millis(10)));
        wg.done();
        assert!(wg.wait_timeout(Duration::from_millis(10)));
        assert_eq!(wg.active(), 0);
        wg.wait(); // already zero: returns immediately
    }

    #[test]
    fn wait_group_releases_waiter_across_threads() {
        let wg = WaitGroup::new();
        wg.add(2);
        thread::scope(|scope| {
            scope.spawn(|| {
                thread::sleep(Duration::from_millis(10));
                wg.done();
                wg.done();
            });
            assert!(wg.wait_timeout(Duration::from_secs(5)));
        });
    }
}
