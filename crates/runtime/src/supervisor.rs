//! Fault-isolating scoped worker pool with bounded retries.

use std::panic::{self, AssertUnwindSafe};
use std::thread;
use std::time::Duration;

use crate::CancelToken;

/// What happened to one shard of a supervised run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ShardStatus {
    /// First attempt succeeded.
    Completed,
    /// The shard panicked at least once but a retry succeeded.
    Recovered {
        /// Number of retries it took (total attempts minus one).
        retries: usize,
    },
    /// Every attempt panicked (or cancellation forbade further retries);
    /// the shard produced no result.
    Faulted {
        /// Total attempts made, including the first.
        attempts: usize,
        /// The panic payload of the last attempt, stringified.
        message: String,
    },
}

impl ShardStatus {
    /// True for [`ShardStatus::Faulted`].
    pub fn is_fault(&self) -> bool {
        matches!(self, ShardStatus::Faulted { .. })
    }

    /// Retries consumed by this shard (0 for a clean first attempt).
    pub fn retries(&self) -> usize {
        match self {
            ShardStatus::Completed => 0,
            ShardStatus::Recovered { retries } => *retries,
            ShardStatus::Faulted { attempts, .. } => attempts.saturating_sub(1),
        }
    }
}

/// Outcome of [`Supervisor::run`]: per-shard results and fates.
///
/// `results[i]` is `None` exactly when `status[i]` is
/// [`ShardStatus::Faulted`] — the salvage invariant: completed shards keep
/// their results even when siblings fault or the run is cancelled.
#[derive(Debug)]
pub struct SupervisedRun<T> {
    /// Per-shard results, in shard order.
    pub results: Vec<Option<T>>,
    /// Per-shard fates, in shard order.
    pub status: Vec<ShardStatus>,
}

impl<T> SupervisedRun<T> {
    /// Total retries consumed across all shards.
    pub fn total_retries(&self) -> usize {
        self.status.iter().map(ShardStatus::retries).sum()
    }

    /// Shards that produced no result.
    pub fn fault_count(&self) -> usize {
        self.status.iter().filter(|s| s.is_fault()).count()
    }
}

/// A scoped worker pool that isolates panics per shard.
///
/// Each shard's closure runs under `catch_unwind`; a panic is converted into
/// a typed [`ShardStatus::Faulted`] after `max_retries` bounded-backoff
/// retries instead of propagating and killing the sibling shards. Workers
/// are expected to poll the supplied [`CancelToken`] and return partial
/// results on cancellation — the supervisor never kills a thread, it only
/// declines to retry once the token has tripped.
#[derive(Debug, Clone)]
pub struct Supervisor {
    token: CancelToken,
    max_retries: usize,
    backoff: Duration,
}

impl Supervisor {
    /// Default bound on retries per shard (total attempts = retries + 1).
    pub const DEFAULT_MAX_RETRIES: usize = 2;

    /// Default base backoff; attempt `k` sleeps `backoff * 2^(k-1)`.
    pub const DEFAULT_BACKOFF: Duration = Duration::from_millis(10);

    /// A supervisor handing clones of `token` to every shard.
    pub fn new(token: CancelToken) -> Supervisor {
        Supervisor {
            token,
            max_retries: Self::DEFAULT_MAX_RETRIES,
            backoff: Self::DEFAULT_BACKOFF,
        }
    }

    /// Overrides the retry bound (0 disables retries entirely).
    #[must_use]
    pub fn with_max_retries(mut self, max_retries: usize) -> Supervisor {
        self.max_retries = max_retries;
        self
    }

    /// Overrides the base backoff between retries.
    #[must_use]
    pub fn with_backoff(mut self, backoff: Duration) -> Supervisor {
        self.backoff = backoff;
        self
    }

    /// The token this supervisor distributes to shards.
    pub fn token(&self) -> &CancelToken {
        &self.token
    }

    /// Runs one unit of work on the calling thread under the same panic
    /// isolation and bounded-backoff retry ladder as [`Supervisor::run`].
    ///
    /// This is the per-request form a serving worker loop uses: the worker
    /// thread pops a request, runs it through `run_one`, and a panicking
    /// request becomes a typed [`ShardStatus::Faulted`] for that request
    /// alone — the worker thread (and every other in-flight request)
    /// survives. `shard` is an identity echoed to the closure (request
    /// ordinals work well); retries rerun the closure with the same value.
    pub fn run_one<T, F>(&self, shard: usize, work: F) -> (Option<T>, ShardStatus)
    where
        F: Fn(usize, &CancelToken) -> T,
    {
        supervise_shard(
            shard,
            self.token.clone(),
            &work,
            self.max_retries,
            self.backoff,
        )
    }

    /// [`Supervisor::run_one`] wrapped in an obs span named `span_name`,
    /// opened on the calling thread so the stages the work runs (mesh /
    /// assemble / eigensolve / …) nest under it on the worker's span
    /// stack. With per-thread capture active
    /// ([`klest_obs::capture_begin`]) the whole attempt tree lands in
    /// the captured trace even when the global sink is off — the shape
    /// per-request response tracing needs.
    pub fn run_one_in_span<T, F>(
        &self,
        shard: usize,
        span_name: &str,
        work: F,
    ) -> (Option<T>, ShardStatus)
    where
        F: Fn(usize, &CancelToken) -> T,
    {
        let _span = klest_obs::span(span_name);
        self.run_one(shard, work)
    }

    /// Runs `work(shard, token)` for every shard on its own scoped thread,
    /// isolating panics and salvaging the results of shards that complete.
    ///
    /// The closure must be idempotent per shard: a retried shard reruns the
    /// closure with the same shard index (deterministic workloads derive
    /// their RNG streams from it, so retries reproduce the original shard).
    pub fn run<T, F>(&self, shards: usize, work: F) -> SupervisedRun<T>
    where
        T: Send,
        F: Fn(usize, &CancelToken) -> T + Sync,
    {
        klest_obs::gauge_set("supervisor.shards", shards as f64);
        let work = &work;
        let outcomes: Vec<(Option<T>, ShardStatus)> = thread::scope(|scope| {
            let handles: Vec<_> = (0..shards)
                .map(|shard| {
                    let token = self.token.clone();
                    let max_retries = self.max_retries;
                    let backoff = self.backoff;
                    scope.spawn(move || supervise_shard(shard, token, work, max_retries, backoff))
                })
                .collect();
            handles
                .into_iter()
                .map(|handle| match handle.join() {
                    Ok(outcome) => outcome,
                    // A simulated process abort propagates out of the pool
                    // like real death would take the whole process down.
                    Err(payload) if payload.is::<crate::AbortSignal>() => {
                        panic::resume_unwind(payload)
                    }
                    // Otherwise the supervision loop itself cannot panic
                    // (work runs under catch_unwind); stay typed if it
                    // ever does.
                    Err(payload) => (
                        None,
                        ShardStatus::Faulted {
                            attempts: 1,
                            message: panic_message(payload.as_ref()),
                        },
                    ),
                })
                .collect()
        });
        let mut results = Vec::with_capacity(shards);
        let mut status = Vec::with_capacity(shards);
        for (result, st) in outcomes {
            results.push(result);
            status.push(st);
        }
        SupervisedRun { results, status }
    }
}

fn supervise_shard<T, F>(
    shard: usize,
    token: CancelToken,
    work: &F,
    max_retries: usize,
    backoff: Duration,
) -> (Option<T>, ShardStatus)
where
    F: Fn(usize, &CancelToken) -> T,
{
    let mut attempts = 0usize;
    loop {
        attempts += 1;
        match panic::catch_unwind(AssertUnwindSafe(|| work(shard, &token))) {
            Ok(value) => {
                let status = if attempts == 1 {
                    ShardStatus::Completed
                } else {
                    klest_obs::counter_add("supervisor.recovered", 1);
                    ShardStatus::Recovered {
                        retries: attempts - 1,
                    }
                };
                return (Some(value), status);
            }
            Err(payload) => {
                // A simulated process abort must behave like process
                // death: not retried, not absorbed into a Faulted shard —
                // re-raised so it unwinds to the crash test's catch point.
                if payload.is::<crate::AbortSignal>() {
                    panic::resume_unwind(payload);
                }
                klest_obs::counter_add("supervisor.panics", 1);
                let message = panic_message(payload.as_ref());
                if attempts > max_retries || token.is_cancelled() {
                    klest_obs::counter_add("supervisor.faults", 1);
                    return (None, ShardStatus::Faulted { attempts, message });
                }
                klest_obs::counter_add("supervisor.retries", 1);
                // Exponential backoff, clamped so a retry never sleeps past
                // the deadline it would be cancelled at anyway.
                let shift = (attempts - 1).min(16) as u32;
                let pause = backoff.saturating_mul(1u32 << shift);
                let pause = token.remaining().map_or(pause, |left| pause.min(left));
                thread::sleep(pause);
            }
        }
    }
}

/// Best-effort extraction of a panic payload's message.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Budget;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::time::Instant;

    /// Silences the default "thread panicked" stderr spew for tests that
    /// inject panics on purpose, restoring the hook afterwards. The mutex
    /// serialises hook swaps across concurrently running tests.
    fn with_quiet_panics<R>(f: impl FnOnce() -> R) -> R {
        static HOOK_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
        let _guard = HOOK_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let prev = panic::take_hook();
        panic::set_hook(Box::new(|_| {}));
        let out = f();
        panic::set_hook(prev);
        out
    }

    #[test]
    fn clean_run_salvages_everything() {
        let sup = Supervisor::new(CancelToken::unlimited());
        let run = sup.run(4, |shard, _token| shard * 10);
        assert_eq!(run.results, vec![Some(0), Some(10), Some(20), Some(30)]);
        assert!(run.status.iter().all(|s| *s == ShardStatus::Completed));
        assert_eq!(run.total_retries(), 0);
        assert_eq!(run.fault_count(), 0);
    }

    #[test]
    fn panicking_shard_is_retried_and_recovers() {
        with_quiet_panics(|| {
            let fired = AtomicUsize::new(0);
            let sup = Supervisor::new(CancelToken::unlimited())
                .with_backoff(Duration::from_millis(1));
            let run = sup.run(3, |shard, _token| {
                if shard == 1 && fired.fetch_add(1, Ordering::SeqCst) == 0 {
                    std::panic::panic_any("injected: shard 1 first attempt".to_string());
                }
                shard
            });
            assert_eq!(run.results, vec![Some(0), Some(1), Some(2)]);
            assert_eq!(run.status[1], ShardStatus::Recovered { retries: 1 });
            assert_eq!(run.total_retries(), 1);
            assert_eq!(run.fault_count(), 0);
        });
    }

    #[test]
    fn persistent_panic_becomes_typed_fault_and_siblings_survive() {
        with_quiet_panics(|| {
            let sup = Supervisor::new(CancelToken::unlimited())
                .with_max_retries(2)
                .with_backoff(Duration::from_millis(1));
            let run = sup.run(3, |shard, _token| {
                if shard == 2 {
                    std::panic::panic_any("always broken");
                }
                shard + 100
            });
            assert_eq!(run.results[0], Some(100));
            assert_eq!(run.results[1], Some(101));
            assert_eq!(run.results[2], None);
            match &run.status[2] {
                ShardStatus::Faulted { attempts, message } => {
                    assert_eq!(*attempts, 3); // 1 initial + 2 retries
                    assert!(message.contains("always broken"), "{message}");
                }
                other => unreachable!("expected fault, got {other:?}"),
            }
            assert_eq!(run.fault_count(), 1);
            assert_eq!(run.total_retries(), 2);
        });
    }

    #[test]
    fn zero_retries_faults_immediately() {
        with_quiet_panics(|| {
            let sup = Supervisor::new(CancelToken::unlimited()).with_max_retries(0);
            let run = sup.run(1, |_, _| -> usize { std::panic::panic_any("boom") });
            match &run.status[0] {
                ShardStatus::Faulted { attempts, .. } => assert_eq!(*attempts, 1),
                other => unreachable!("expected fault, got {other:?}"),
            }
        });
    }

    #[test]
    fn cancelled_token_forbids_retries() {
        with_quiet_panics(|| {
            let token = CancelToken::unlimited();
            token.cancel();
            let sup = Supervisor::new(token).with_max_retries(5);
            let start = Instant::now();
            let run = sup.run(1, |_, _| -> usize { std::panic::panic_any("boom") });
            assert_eq!(run.status[0].retries(), 0);
            assert!(run.status[0].is_fault());
            // No backoff sleeps were taken.
            assert!(start.elapsed() < Duration::from_secs(1));
        });
    }

    #[test]
    fn workers_observe_deadline_and_salvage_partials() {
        let token = CancelToken::with_budget(Budget::wall(Duration::from_millis(50)));
        let sup = Supervisor::new(token);
        // Each worker counts checkpoints until its token trips; a "hung"
        // worker (shard 0) would loop forever without cooperative cancel.
        let run = sup.run(2, |shard, token| {
            let mut done = 0usize;
            loop {
                if token.checkpoint("test/loop").is_err() {
                    return (shard, done);
                }
                done += 1;
                if shard == 1 && done == 3 {
                    return (shard, done); // finishes well before deadline
                }
                thread::sleep(Duration::from_millis(1));
            }
        });
        let r0 = run.results[0].as_ref().map(|r| r.1);
        assert_eq!(run.results[1], Some((1, 3)));
        assert!(r0.is_some_and(|n| n > 0), "hung shard salvaged {r0:?}");
        assert_eq!(run.fault_count(), 0);
    }

    #[test]
    fn abort_signal_is_not_retried_and_unwinds_to_catch_point() {
        with_quiet_panics(|| {
            let attempts = AtomicUsize::new(0);
            let sup = Supervisor::new(CancelToken::unlimited()).with_max_retries(5);
            let caught = panic::catch_unwind(AssertUnwindSafe(|| {
                sup.run(2, |shard, _token| {
                    if shard == 1 {
                        attempts.fetch_add(1, Ordering::SeqCst);
                        crate::simulated_abort("test/abort");
                    }
                    shard
                })
            }));
            let payload = caught.expect_err("abort must unwind out of the pool");
            let signal = payload
                .downcast_ref::<crate::AbortSignal>()
                .expect("AbortSignal payload");
            assert_eq!(signal.site, "test/abort");
            // Process-death semantics: exactly one arrival, zero retries.
            assert_eq!(attempts.load(Ordering::SeqCst), 1);
        });
    }

    #[test]
    fn non_string_payload_is_reported() {
        with_quiet_panics(|| {
            let sup = Supervisor::new(CancelToken::unlimited()).with_max_retries(0);
            let run = sup.run(1, |_, _| -> usize { std::panic::panic_any(17u32) });
            match &run.status[0] {
                ShardStatus::Faulted { message, .. } => {
                    assert!(message.contains("non-string"), "{message}");
                }
                other => unreachable!("expected fault, got {other:?}"),
            }
        });
    }
}
