//! Cooperative cancellation: budgets, tokens and the typed `Cancelled` error.

use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Sentinel for "no deterministic trip installed" in
/// [`CancelToken::trip_after_checkpoints`].
const TRIP_DISABLED: u64 = u64::MAX;

/// A wall-clock allowance for a run or a pipeline stage.
///
/// `Budget` is deliberately tiny: either unlimited or a `Duration`. The
/// deadline arithmetic lives in [`CancelToken`], which snapshots
/// `Instant::now()` when the budget is attached.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Budget {
    wall: Option<Duration>,
}

impl Budget {
    /// No wall-clock limit; checkpoints only trip on explicit `cancel()`.
    pub const UNLIMITED: Budget = Budget { wall: None };

    /// A budget of exactly `wall` from the moment a token adopts it.
    pub fn wall(wall: Duration) -> Budget {
        Budget { wall: Some(wall) }
    }

    /// Parses a budget from (fractional) seconds, as supplied on the CLI.
    ///
    /// Returns `None` for NaN, infinite, zero or negative inputs — the
    /// caller turns that into its own typed invalid-argument error.
    pub fn try_from_secs(secs: f64) -> Option<Budget> {
        if !secs.is_finite() || secs <= 0.0 {
            return None;
        }
        Some(Budget::wall(Duration::from_secs_f64(secs)))
    }

    /// The wall-clock limit, if any.
    pub fn limit(&self) -> Option<Duration> {
        self.wall
    }

    /// True when this budget imposes no wall-clock limit.
    pub fn is_unlimited(&self) -> bool {
        self.wall.is_none()
    }
}

/// Per-stage wall-clock allowances, keyed by stage name (`mesh`, `eigen`,
/// `mc`, ...).
///
/// Parsed from the CLI's `--stage-budget mesh=0.5,mc=2` flag; consulted when
/// deriving child tokens so each supervised stage gets
/// `min(global remaining, stage allowance)`.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct StageBudgets {
    entries: Vec<(String, Duration)>,
}

impl StageBudgets {
    /// An empty set: every stage inherits the parent budget unchanged.
    pub fn none() -> StageBudgets {
        StageBudgets::default()
    }

    /// Parses the comma-separated `stage=secs` list used by the CLI, e.g.
    /// `"mesh=0.5,mc=2"`. Later entries for the same stage override earlier
    /// ones.
    ///
    /// # Errors
    ///
    /// Returns the offending fragment when an entry is not `name=secs` or
    /// the seconds are not a positive finite number.
    pub fn parse(spec: &str) -> Result<StageBudgets, String> {
        let mut budgets = StageBudgets::default();
        for entry in spec.split(',').filter(|e| !e.trim().is_empty()) {
            let entry = entry.trim();
            let Some((stage, secs)) = entry.split_once('=') else {
                return Err(format!("`{entry}` (expected stage=secs)"));
            };
            let Ok(secs) = secs.trim().parse::<f64>() else {
                return Err(format!("`{entry}` (seconds must be numeric)"));
            };
            let Some(budget) = Budget::try_from_secs(secs) else {
                return Err(format!("`{entry}` (seconds must be positive and finite)"));
            };
            let limit = budget.limit().unwrap_or_default();
            budgets.set(stage.trim(), limit);
        }
        Ok(budgets)
    }

    /// Sets (or replaces) the allowance for `stage`.
    pub fn set(&mut self, stage: &str, wall: Duration) {
        if let Some(slot) = self.entries.iter_mut().find(|(s, _)| s == stage) {
            slot.1 = wall;
        } else {
            self.entries.push((stage.to_string(), wall));
        }
    }

    /// The allowance for `stage`, as a [`Budget`]; unlimited when unset.
    pub fn budget(&self, stage: &str) -> Budget {
        self.entries
            .iter()
            .find(|(s, _)| s == stage)
            .map(|(_, wall)| Budget::wall(*wall))
            .unwrap_or(Budget::UNLIMITED)
    }

    /// True when no stage has an allowance.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// Typed partial-result marker: a stage was cancelled cooperatively.
///
/// `stage` names the checkpoint that tripped, `completed` counts the units
/// of work (samples, rows, points, sweeps — stage-defined) finished before
/// the trip, and `budget` echoes the wall-clock allowance that expired, when
/// the trip came from a deadline rather than an explicit `cancel()`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Cancelled {
    /// Checkpoint label, e.g. `"mc/sample"` or `"mesh/refine"`.
    pub stage: &'static str,
    /// Units of work completed before cancellation (stage-defined).
    pub completed: usize,
    /// The wall-clock allowance of the token that tripped, if it had one.
    pub budget: Option<Duration>,
}

impl Cancelled {
    /// Replaces the progress count — checkpoints themselves cannot know how
    /// much the caller salvaged, so loops annotate on the way out:
    /// `token.checkpoint("mc/sample").map_err(|c| c.with_completed(done))`.
    #[must_use]
    pub fn with_completed(mut self, completed: usize) -> Cancelled {
        self.completed = completed;
        self
    }
}

impl fmt::Display for Cancelled {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "stage `{}` cancelled after {} completed unit(s)",
            self.stage, self.completed
        )?;
        if let Some(budget) = self.budget {
            write!(f, " (budget {:.3}s exhausted)", budget.as_secs_f64())?;
        }
        Ok(())
    }
}

impl std::error::Error for Cancelled {}

struct TokenInner {
    cancelled: AtomicBool,
    /// Instant past which every checkpoint trips; `None` = no deadline.
    deadline: Option<Instant>,
    /// The allowance `deadline` was derived from, echoed into [`Cancelled`].
    budget: Option<Duration>,
    /// Deterministic test hook: checkpoints left before tripping;
    /// [`TRIP_DISABLED`] means the hook is off.
    trip_after: AtomicU64,
    /// Hierarchy link: a child also trips when any ancestor does.
    parent: Option<CancelToken>,
}

/// Cooperative cancellation handle shared across threads.
///
/// Cloning is cheap (an `Arc` bump) and all clones observe the same state.
/// The fast path of [`checkpoint`](CancelToken::checkpoint) is a single
/// relaxed atomic load, so it is safe to call once per Monte Carlo sample,
/// per inserted mesh point, per assembled Galerkin row or per eigensolver
/// sweep without measurable overhead.
#[derive(Clone)]
pub struct CancelToken {
    inner: Arc<TokenInner>,
}

impl fmt::Debug for CancelToken {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CancelToken")
            .field("cancelled", &self.is_cancelled())
            .field("budget", &self.inner.budget)
            .finish()
    }
}

impl CancelToken {
    /// A token that never trips on its own; only [`cancel`](Self::cancel)
    /// (or the deterministic trip hook) fires it. This is what the
    /// non-supervised library entry points use internally.
    pub fn unlimited() -> CancelToken {
        CancelToken::with_budget(Budget::UNLIMITED)
    }

    /// A root token adopting `budget`, with the deadline measured from now.
    pub fn with_budget(budget: Budget) -> CancelToken {
        let now = Instant::now();
        CancelToken {
            inner: Arc::new(TokenInner {
                cancelled: AtomicBool::new(false),
                deadline: budget.limit().map(|w| now + w),
                budget: budget.limit(),
                trip_after: AtomicU64::new(TRIP_DISABLED),
                parent: None,
            }),
        }
    }

    /// Derives a per-stage child token.
    ///
    /// The child's effective deadline is the earlier of the parent's
    /// remaining deadline and `now + budget`; it additionally trips whenever
    /// any ancestor is cancelled, so a stage can never outlive its run.
    pub fn child(&self, budget: Budget) -> CancelToken {
        let now = Instant::now();
        let own = budget.limit().map(|w| now + w);
        let deadline = match (own, self.effective_deadline()) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (Some(a), None) => Some(a),
            (None, b) => b,
        };
        CancelToken {
            inner: Arc::new(TokenInner {
                cancelled: AtomicBool::new(false),
                deadline,
                budget: budget.limit().or(self.inner.budget),
                trip_after: AtomicU64::new(TRIP_DISABLED),
                parent: Some(self.clone()),
            }),
        }
    }

    /// Requests cancellation; every clone and descendant observes it at its
    /// next checkpoint. Idempotent.
    pub fn cancel(&self) {
        self.inner.cancelled.store(true, Ordering::Release);
    }

    /// Arms the deterministic test hook: the next `n` checkpoints succeed,
    /// every one after that trips as if the token had been cancelled. Used
    /// by property and fault-injection tests to cancel at an exact,
    /// clock-free point in a computation.
    pub fn trip_after_checkpoints(&self, n: u64) {
        self.inner.trip_after.store(n, Ordering::Release);
    }

    /// True when this token (or an ancestor) is cancelled or past deadline.
    ///
    /// Unlike [`checkpoint`](Self::checkpoint) this never consumes the
    /// deterministic trip hook's countdown.
    pub fn is_cancelled(&self) -> bool {
        if self.inner.cancelled.load(Ordering::Acquire) {
            return true;
        }
        if let Some(deadline) = self.inner.deadline {
            if Instant::now() >= deadline {
                self.inner.cancelled.store(true, Ordering::Release);
                return true;
            }
        }
        if let Some(parent) = &self.inner.parent {
            if parent.is_cancelled() {
                self.inner.cancelled.store(true, Ordering::Release);
                return true;
            }
        }
        false
    }

    /// The cancellation probe long-running loops call once per unit of work.
    ///
    /// Returns `Err(Cancelled)` (with `completed == 0`; annotate with
    /// [`Cancelled::with_completed`]) when the token is cancelled, past its
    /// deadline, an ancestor tripped, or the deterministic trip hook ran
    /// out. The fast path — no deadline, no hook, not cancelled — is one
    /// relaxed atomic load.
    pub fn checkpoint(&self, stage: &'static str) -> Result<(), Cancelled> {
        if self.inner.cancelled.load(Ordering::Relaxed) {
            return Err(self.cancelled_err(stage));
        }
        if self.inner.trip_after.load(Ordering::Relaxed) != TRIP_DISABLED {
            let spent = self
                .inner
                .trip_after
                .fetch_update(Ordering::AcqRel, Ordering::Acquire, |n| n.checked_sub(1));
            if spent.is_err() {
                // Countdown exhausted: behave exactly like a cancellation.
                self.inner.cancelled.store(true, Ordering::Release);
                return Err(self.cancelled_err(stage));
            }
        }
        if self.is_cancelled() {
            return Err(self.cancelled_err(stage));
        }
        Ok(())
    }

    /// Wall-clock remaining before the effective deadline; `None` when no
    /// deadline applies (zero once the deadline has passed).
    pub fn remaining(&self) -> Option<Duration> {
        self.effective_deadline()
            .map(|d| d.saturating_duration_since(Instant::now()))
    }

    /// The budget this token (or the nearest budgeted ancestor) adopted.
    pub fn budget(&self) -> Option<Duration> {
        self.inner.budget
    }

    fn effective_deadline(&self) -> Option<Instant> {
        // Child deadlines are already clamped to the ancestor chain at
        // construction; only explicit cancellation needs chain traversal.
        self.inner.deadline
    }

    fn cancelled_err(&self, stage: &'static str) -> Cancelled {
        Cancelled {
            stage,
            completed: 0,
            budget: self.inner.budget,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn unlimited_token_never_trips() {
        let token = CancelToken::unlimited();
        for _ in 0..10_000 {
            assert!(token.checkpoint("loop").is_ok());
        }
        assert!(!token.is_cancelled());
        assert_eq!(token.remaining(), None);
        assert_eq!(token.budget(), None);
    }

    #[test]
    fn explicit_cancel_trips_all_clones() {
        let token = CancelToken::unlimited();
        let clone = token.clone();
        token.cancel();
        let err = clone.checkpoint("stage").unwrap_err();
        assert_eq!(err.stage, "stage");
        assert_eq!(err.completed, 0);
        assert_eq!(err.budget, None);
    }

    #[test]
    fn deadline_trips_after_expiry() {
        let token = CancelToken::with_budget(Budget::wall(Duration::from_millis(20)));
        assert!(token.checkpoint("early").is_ok());
        thread::sleep(Duration::from_millis(40));
        let err = token.checkpoint("late").unwrap_err();
        assert_eq!(err.budget, Some(Duration::from_millis(20)));
        assert!(token.is_cancelled());
    }

    #[test]
    fn child_inherits_parent_cancellation() {
        let parent = CancelToken::unlimited();
        let child = parent.child(Budget::UNLIMITED);
        assert!(child.checkpoint("stage").is_ok());
        parent.cancel();
        assert!(child.checkpoint("stage").is_err());
        assert!(child.is_cancelled());
    }

    #[test]
    fn child_deadline_is_clamped_to_parent() {
        let parent = CancelToken::with_budget(Budget::wall(Duration::from_millis(30)));
        // A generous stage budget cannot extend past the parent's deadline.
        let child = parent.child(Budget::wall(Duration::from_secs(3600)));
        thread::sleep(Duration::from_millis(60));
        assert!(child.checkpoint("stage").is_err());
    }

    #[test]
    fn cancelling_child_leaves_parent_alive() {
        let parent = CancelToken::unlimited();
        let child = parent.child(Budget::UNLIMITED);
        child.cancel();
        assert!(child.is_cancelled());
        assert!(parent.checkpoint("stage").is_ok());
    }

    #[test]
    fn trip_after_checkpoints_is_exact() {
        let token = CancelToken::unlimited();
        token.trip_after_checkpoints(5);
        for i in 0..5 {
            assert!(token.checkpoint("count").is_ok(), "checkpoint {i}");
        }
        assert!(token.checkpoint("count").is_err());
        // And it stays tripped.
        assert!(token.checkpoint("count").is_err());
        assert!(token.is_cancelled());
    }

    #[test]
    fn cancelled_with_completed_and_display() {
        let c = Cancelled {
            stage: "mc/sample",
            completed: 0,
            budget: Some(Duration::from_millis(1500)),
        }
        .with_completed(42);
        assert_eq!(c.completed, 42);
        let text = c.to_string();
        assert!(text.contains("mc/sample"), "{text}");
        assert!(text.contains("42"), "{text}");
        assert!(text.contains("1.500"), "{text}");
        let unbudgeted = Cancelled {
            stage: "x",
            completed: 0,
            budget: None,
        };
        assert!(!unbudgeted.to_string().contains("budget"));
    }

    #[test]
    fn budget_parsing() {
        assert_eq!(Budget::try_from_secs(1.5), Some(Budget::wall(Duration::from_millis(1500))));
        assert_eq!(Budget::try_from_secs(0.0), None);
        assert_eq!(Budget::try_from_secs(-2.0), None);
        assert_eq!(Budget::try_from_secs(f64::NAN), None);
        assert_eq!(Budget::try_from_secs(f64::INFINITY), None);
        assert!(Budget::UNLIMITED.is_unlimited());
        assert!(!Budget::wall(Duration::from_secs(1)).is_unlimited());
    }

    #[test]
    fn stage_budgets_parse_and_lookup() {
        let budgets = StageBudgets::parse("mesh=0.5, mc=2").unwrap();
        assert_eq!(budgets.budget("mesh").limit(), Some(Duration::from_millis(500)));
        assert_eq!(budgets.budget("mc").limit(), Some(Duration::from_secs(2)));
        assert!(budgets.budget("eigen").is_unlimited());
        assert!(!budgets.is_empty());
        assert!(StageBudgets::none().is_empty());
        // Later entries override.
        let b = StageBudgets::parse("mc=1,mc=3").unwrap();
        assert_eq!(b.budget("mc").limit(), Some(Duration::from_secs(3)));
    }

    #[test]
    fn stage_budgets_reject_malformed() {
        assert!(StageBudgets::parse("mesh").is_err());
        assert!(StageBudgets::parse("mesh=abc").is_err());
        assert!(StageBudgets::parse("mesh=-1").is_err());
        assert!(StageBudgets::parse("mesh=0").is_err());
        assert!(StageBudgets::parse("mesh=inf").is_err());
        // Empty fragments are tolerated (trailing commas).
        assert!(StageBudgets::parse("mc=1,").is_ok());
        assert!(StageBudgets::parse("").unwrap().is_empty());
    }

    #[test]
    fn checkpoint_under_contention() {
        let token = CancelToken::unlimited();
        token.trip_after_checkpoints(1000);
        let passed: usize = thread::scope(|scope| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    let t = token.clone();
                    scope.spawn(move || {
                        let mut ok = 0usize;
                        for _ in 0..1000 {
                            if t.checkpoint("hammer").is_ok() {
                                ok += 1;
                            }
                        }
                        ok
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        });
        // Exactly the armed number of checkpoints may pass, racing threads
        // must never exceed it (checked_sub saturates at the sentinel).
        assert_eq!(passed, 1000);
        assert!(token.is_cancelled());
    }
}
